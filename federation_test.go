package siphoc_test

import (
	"testing"
	"time"

	"siphoc"
)

// TestFederationSmoke is the CI gate for the federation layer: two trunked
// islands behind a sharded provider pool, every client attached, and a small
// cross-island call population established concurrently with two-way voice.
func TestFederationSmoke(t *testing.T) {
	fed, err := siphoc.NewFederationScenario(siphoc.FederationConfig{
		Islands:           2,
		GatewaysPerIsland: 1,
		ClientsPerIsland:  2,
		Shards:            2,
		Trunk:             true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()

	if err := fed.WaitAttached(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	gen := fed.NewCallGenerator(siphoc.CallGenConfig{
		Concurrent:  4,
		VoiceFrames: 10,
	})
	rep, err := gen.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Established != rep.Attempted || rep.Failed != 0 {
		t.Fatalf("calls: %d/%d established, %d failed", rep.Established, rep.Attempted, rep.Failed)
	}
	if rep.PeakConcurrent != rep.Attempted {
		t.Fatalf("peak concurrency %d, want the whole population %d up at once",
			rep.PeakConcurrent, rep.Attempted)
	}
	if rep.SetupP50 <= 0 || rep.SetupP99 < rep.SetupP50 {
		t.Fatalf("setup percentiles out of order: p50=%v p99=%v", rep.SetupP50, rep.SetupP99)
	}
	if rep.MOSMean < 3 {
		t.Fatalf("mean MOS %.2f below toll quality on a clean network (report %+v)", rep.MOSMean, rep)
	}
	if rep.Trunk.PayloadsBatched == 0 || rep.Trunk.FramesRecv == 0 {
		t.Fatalf("gateway trunks never engaged: %+v", rep.Trunk)
	}
	if rep.Trunk.PayloadsDelivered != rep.Trunk.PayloadsBatched {
		t.Fatalf("trunk dropped payloads: %+v", rep.Trunk)
	}
}

// TestFederationOverlayResolution brings up a federation with the P2P
// overlay registrar enabled and checks that cross-island calls resolve
// through the DHT — not the central provider tier: every island proxy
// publishes its registrations into the overlay, and the callers' resolution
// counters show overlay hits with zero typed resolver failures.
func TestFederationOverlayResolution(t *testing.T) {
	fed, err := siphoc.NewFederationScenario(siphoc.FederationConfig{
		Islands:           2,
		GatewaysPerIsland: 1,
		ClientsPerIsland:  2,
		Overlay:           true,
		OverlayNodes:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if len(fed.Overlay()) != 6 {
		t.Fatalf("overlay tier has %d nodes, want 6", len(fed.Overlay()))
	}
	if err := fed.WaitAttached(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	gen := fed.NewCallGenerator(siphoc.CallGenConfig{
		Concurrent:  4,
		VoiceFrames: 10,
	})
	rep, err := gen.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Established != rep.Attempted || rep.Failed != 0 {
		t.Fatalf("calls: %d/%d established, %d failed", rep.Established, rep.Attempted, rep.Failed)
	}

	var overlayRouted, dnsRouted, resolverErrors int64
	for _, sc := range fed.Islands() {
		for _, ps := range sc.Metrics().Proxies {
			overlayRouted += ps.OverlayRouted
			dnsRouted += ps.InternetRouted
			resolverErrors += ps.ResolverErrors
		}
	}
	if overlayRouted == 0 {
		t.Fatal("no call resolved through the overlay registrar")
	}
	if dnsRouted != 0 {
		t.Fatalf("%d calls fell through to the DNS/provider tier with the overlay up", dnsRouted)
	}
	if resolverErrors != 0 {
		t.Fatalf("%d typed resolver failures during a clean run", resolverErrors)
	}
}

// TestFederationShardRebalance drives the registrar tier through a shard
// crash and restart from the scenario level, scheduled on an island's fault
// plan: bindings homed on the dead shard re-home on re-registration, and the
// restarted shard takes its AORs back.
func TestFederationShardRebalance(t *testing.T) {
	fed, err := siphoc.NewFederationScenario(siphoc.FederationConfig{
		Islands:           2,
		GatewaysPerIsland: 1,
		ClientsPerIsland:  1,
		Shards:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.WaitAttached(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	pool := fed.Pool()
	clients := fed.Clients()
	phones := make([]*siphoc.Phone, 0, 6)
	for i := range 6 {
		user := []string{"ann", "bob", "cam", "dee", "eli", "fay"}[i]
		pool.AddAccount(user)
		ph, err := clients[i%len(clients)].NewPhone(user, "fed.example")
		if err != nil {
			t.Fatal(err)
		}
		if err := ph.Register(); err != nil {
			t.Fatalf("register %s: %v", user, err)
		}
		phones = append(phones, ph)
	}
	waitBindings := func(want int) {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			n := 0
			for _, ph := range phones {
				if _, ok := pool.Binding(ph.AOR()); ok {
					n++
				}
			}
			if n >= want {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("bindings never reached %d", want)
	}
	waitBindings(len(phones))

	// Find a shard (≠ 0, the DNS front door) owning at least one AOR.
	victim := -1
	for _, ph := range phones {
		if i := pool.Map().OwnerIndex(ph.AOR()); i > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Skip("rendezvous hashing put every test AOR on shard 0")
	}
	moved := make([]*siphoc.Phone, 0, len(phones))
	for _, ph := range phones {
		if pool.Map().OwnerIndex(ph.AOR()) == victim {
			moved = append(moved, ph)
		}
	}

	// Crash the shard via an island fault plan: federation islands compose
	// with the fault harness instead of forking it.
	island := fed.Island(0)
	fs := siphoc.NewFaultScenario(island, 42)
	fs.Plan().At(0, "crash provider shard", func() { pool.CrashShard(victim) })
	if err := fs.Run(); err != nil {
		t.Fatal(err)
	}
	fs.Wait()

	// The dead shard's bindings are gone; everyone else's survive.
	for _, ph := range moved {
		if _, ok := pool.Binding(ph.AOR()); ok {
			t.Fatalf("%s still bound after its shard crashed", ph.AOR())
		}
	}
	// Re-registration re-homes the orphaned AORs on surviving shards.
	for _, ph := range moved {
		if err := ph.Register(); err != nil {
			t.Fatalf("re-register %s: %v", ph.AOR(), err)
		}
	}
	waitBindings(len(phones))
	for _, ph := range moved {
		if got := pool.Map().OwnerIndex(ph.AOR()); got == victim {
			t.Fatalf("%s still owned by the crashed shard %d", ph.AOR(), got)
		}
	}

	// Restart: ownership reverts, and another registration round lands the
	// bindings back on the recovered shard.
	if err := pool.RestartShard(victim); err != nil {
		t.Fatal(err)
	}
	for _, ph := range moved {
		if got := pool.Map().OwnerIndex(ph.AOR()); got != victim {
			t.Fatalf("%s owned by shard %d after restart, want %d", ph.AOR(), got, victim)
		}
		if err := ph.Register(); err != nil {
			t.Fatalf("re-register %s after restart: %v", ph.AOR(), err)
		}
	}
	waitBindings(len(phones))
	for _, ph := range moved {
		if sh := pool.Shard(victim); sh != nil {
			if _, ok := sh.Binding(ph.AOR()); !ok {
				t.Fatalf("%s not bound on the restarted owner shard", ph.AOR())
			}
		}
	}
}
