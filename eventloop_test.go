// Event-loop core validation: the sharded virtual-time scheduler must be
// behaviourally indistinguishable from the goroutine-per-timer core — same
// hello/TC emission counts, same converged route tables — while keeping the
// process goroutine count O(shards) instead of O(nodes).
package siphoc_test

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"siphoc"
	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/routing/olsr"
)

// goldenRun drives a 5×5 OLSR grid on a fake clock for 1.5 s of virtual
// time, stepping 1 ms at a time and letting each step's work drain before
// the next, and returns a per-node fingerprint: timer-fire counts plus the
// converged route table. Stepping at 1 ms — the per-hop delivery delay, and
// a divisor of every protocol interval — keeps all deadlines on integer
// milliseconds, so both cores see identical timer schedules.
func goldenRun(t *testing.T, eventLoop bool) map[netem.NodeID]string {
	t.Helper()
	fake := clock.NewFake(time.Unix(1_000_000, 0))
	olsrCfg := olsr.Config{
		HelloInterval: 50 * time.Millisecond,
		TCInterval:    125 * time.Millisecond,
		MaxTTL:        16,
		RouteWait:     time.Minute,
		Clock:         fake,
	}
	opts := []siphoc.ScenarioOption{
		siphoc.WithRadio(netem.Config{Range: 100, BaseDelay: time.Millisecond, Clock: fake}),
		siphoc.WithOLSR(&olsrCfg),
		siphoc.WithClock(fake),
		siphoc.WithoutObservability(),
	}
	if eventLoop {
		opts = append(opts, siphoc.WithEventLoop())
	}
	sc, err := siphoc.NewScenarioWith(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	nodes, err := sc.Grid(5, 5, 80, siphoc.WithoutConnectionProvider())
	if err != nil {
		t.Fatal(err)
	}

	// activity changes whenever any node transmits, forwards, recomputes or
	// (re-)arms a timer; a stable reading means the current virtual instant
	// has drained. The pending-timer count is part of the fingerprint so a
	// loop that has fired but not yet re-armed still reads as busy.
	activity := func() [2]int64 {
		st := sc.Network().Stats()
		sum := st.RoutingFrames + st.Deliveries
		for _, n := range nodes {
			s := n.Routing().(*olsr.Protocol).Stats()
			sum += s.HelloSent + s.TCSent + s.TCFwd + s.Recompute + s.RecomputeSkipped
		}
		return [2]int64{sum, int64(fake.PendingTimers())}
	}
	settle := func() {
		last, stable := activity(), 0
		for i := 0; i < 4000 && stable < 5; i++ {
			runtime.Gosched()
			time.Sleep(100 * time.Microsecond)
			if cur := activity(); cur == last {
				stable++
			} else {
				last, stable = cur, 0
			}
		}
	}
	// The goroutine core arms its 2×N hello/TC timers asynchronously after
	// Start returns; stepping the clock before every loop has parked on its
	// first timer would shift that node's whole schedule. (The event loop
	// registers tasks synchronously in Start; its single worker holds one
	// timer for the earliest deadline.)
	minArmed := 1
	if !eventLoop {
		minArmed = 2 * len(nodes)
	}
	for i := 0; i < 10000 && fake.PendingTimers() < minArmed; i++ {
		time.Sleep(100 * time.Microsecond)
	}
	if got := fake.PendingTimers(); got < minArmed {
		t.Fatalf("only %d timers armed before first advance (want >= %d)", got, minArmed)
	}
	settle()
	for step := 0; step < 1500; step++ {
		fake.Advance(time.Millisecond)
		settle()
	}

	out := make(map[netem.NodeID]string, len(nodes))
	for _, n := range nodes {
		p := n.Routing().(*olsr.Protocol)
		s := p.Stats()
		lines := make([]string, 0, 24)
		for _, e := range p.Routes() {
			lines = append(lines, fmt.Sprintf("%s via %s hops=%d", e.Dst, e.NextHop, e.Hops))
		}
		sort.Strings(lines)
		out[n.ID()] = fmt.Sprintf("hello=%d tc=%d routes[%s]",
			s.HelloSent, s.TCSent, strings.Join(lines, ";"))
	}
	return out
}

// TestEventLoopGoldenEquivalence pins bit-identical protocol behaviour
// between the goroutine core and the event-loop core: same seeded fake
// clock, same grid, same config — every node must emit the same number of
// hellos and TCs and converge to the same route table.
func TestEventLoopGoldenEquivalence(t *testing.T) {
	legacy := goldenRun(t, false)
	event := goldenRun(t, true)
	for id, want := range legacy {
		if got := event[id]; got != want {
			t.Errorf("node %s diverges:\n  goroutine core: %s\n  event loop:     %s", id, want, got)
		}
	}
	if len(event) != len(legacy) {
		t.Errorf("node count differs: %d vs %d", len(legacy), len(event))
	}
}

// eventLoopGoroutines brings up a side×side event-loop grid and returns the
// steady-state goroutine count, tearing the scenario down (and verifying it
// leaks nothing) before returning.
func eventLoopGoroutines(t *testing.T, side int) int {
	t.Helper()
	baseline := runtime.NumGoroutine()
	sc, err := siphoc.NewScenarioWith(
		siphoc.WithOLSR(nil),
		siphoc.WithoutObservability(),
		siphoc.WithEventLoop(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Grid(side, side, 80, siphoc.WithoutConnectionProvider()); err != nil {
		sc.Close()
		t.Fatal(err)
	}
	// Let transient bring-up goroutines (parallel node construction) exit.
	var n int
	for range 100 {
		time.Sleep(5 * time.Millisecond)
		if cur := runtime.NumGoroutine(); cur == n {
			break
		} else {
			n = cur
		}
	}
	sc.Close()
	if err := siphoc.SettleGoroutines(baseline, 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestEventLoopGoroutinesIndependentOfN pins the tentpole resource claim:
// post-bring-up goroutine count is a function of the shard count, not the
// node count. The goroutine core pays ~7 goroutines per node, so growing a
// grid from 16 to 64 nodes adds hundreds there; the event loop must add
// approximately none.
func TestEventLoopGoroutinesIndependentOfN(t *testing.T) {
	small := eventLoopGoroutines(t, 4) // 16 nodes
	large := eventLoopGoroutines(t, 8) // 64 nodes
	if grew := large - small; grew > 8 {
		t.Fatalf("goroutines grew with node count: %d at 16 nodes, %d at 64 nodes (+%d); want O(shards), not O(N)",
			small, large, grew)
	}
}
