package siphoc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func hasPhase(tr *CallTrace, phase string) bool {
	for _, sp := range tr.Spans {
		if sp.Phase == phase {
			return true
		}
	}
	return false
}

// TestCallTraceThreeHop is the trace-integrity check of the observability
// layer: a call across a 3-hop chain must yield a timeline with at least four
// distinct phases whose setup breakdown tiles the setup window exactly and
// agrees with the latency the caller observed via WaitEstablished.
func TestCallTraceThreeHop(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind RoutingKind
	}{
		{"AODV", RoutingAODV},
		{"OLSR", RoutingOLSR},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc, nodes := newChainScenario(t, 3, ScenarioConfig{Routing: tc.kind})
			if sc.Observer() == nil {
				t.Fatal("observability should be enabled by default")
			}
			alice := registerPhone(t, nodes[0], "alice")
			registerPhone(t, nodes[2], "bob")

			call, err := alice.Dial("bob@" + domain)
			if err != nil {
				t.Fatal(err)
			}
			if err := call.WaitEstablished(callTimeout); err != nil {
				t.Fatal(err)
			}
			// Stream a little voice so the callee's media.start span (ended
			// by the first received RTP packet) closes, then poll the trace
			// until it shows up.
			call.SendVoice(5)
			var tr *CallTrace
			deadline := time.Now().Add(5 * time.Second)
			for {
				tr = call.Trace()
				if hasPhase(tr, PhaseMediaStart) || time.Now().After(deadline) {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}

			if tr.Empty() {
				t.Fatal("trace is empty")
			}
			for _, phase := range []string{PhaseSetup, PhaseSLPResolve, PhaseSIPLeg, PhaseMediaStart} {
				if !hasPhase(tr, phase) {
					t.Errorf("trace is missing a %s span:\n%s", phase, tr)
				}
			}
			distinct := make(map[string]bool)
			for _, sp := range tr.Spans {
				distinct[sp.Phase] = true
				if sp.Duration() <= 0 {
					t.Errorf("span %s on %s has non-positive duration %v", sp.Phase, sp.Node, sp.Duration())
				}
			}
			if len(distinct) < 4 {
				t.Errorf("trace has %d distinct phases, want >= 4:\n%s", len(distinct), tr)
			}

			// Sum consistency: the breakdown tiles the setup window exactly,
			// and the window matches the caller-observed setup latency.
			breakdown := tr.SetupBreakdown()
			var sum time.Duration
			seen := make(map[string]time.Duration)
			for _, pd := range breakdown {
				sum += pd.Duration
				seen[pd.Phase] = pd.Duration
			}
			if sum != tr.SetupDuration() {
				t.Errorf("breakdown sums to %v, setup window is %v", sum, tr.SetupDuration())
			}
			if seen[PhaseSLPResolve] <= 0 {
				t.Errorf("breakdown has no %s share: %v", PhaseSLPResolve, breakdown)
			}
			if seen[PhaseSIPTransaction] <= 0 {
				t.Errorf("breakdown has no %s share: %v", PhaseSIPTransaction, breakdown)
			}
			const jitter = 20 * time.Millisecond
			if d := tr.SetupDuration() - call.SetupDuration(); d > jitter || d < -jitter {
				t.Errorf("trace setup %v vs observed setup %v (|delta| > %v)",
					tr.SetupDuration(), call.SetupDuration(), jitter)
			}

			if err := call.Hangup(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMetricsSnapshot checks that the merged Metrics snapshot covers every
// node's components and that the instrumentation counters actually moved
// during a call.
func TestMetricsSnapshot(t *testing.T) {
	sc, nodes := newChainScenario(t, 2, ScenarioConfig{})
	alice := registerPhone(t, nodes[0], "alice")
	registerPhone(t, nodes[1], "bob")

	call, err := alice.Dial("bob@" + domain)
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(callTimeout); err != nil {
		t.Fatal(err)
	}
	if err := call.Hangup(); err != nil {
		t.Fatal(err)
	}

	// Close first so every counter is frozen and equality is exact.
	sc.Close()
	m := sc.Metrics()

	if m.Network.TotalFrames() < 1 {
		t.Errorf("Metrics().Network saw no frames: %+v", m.Network)
	}
	for _, n := range nodes {
		id := n.ID()
		if got, want := m.Proxies[id], n.Proxy().Stats(); got != want {
			t.Errorf("node %s: Metrics().Proxies = %+v, proxy reports %+v", id, got, want)
		}
		if _, ok := m.SLP[id]; !ok {
			t.Errorf("node %s missing from Metrics().SLP", id)
		}
	}

	for _, counter := range []string{"voip.calls.placed", "voip.calls.established", "sip.tx.invites", "netem.frames"} {
		if m.Registry.Counters[counter] < 1 {
			t.Errorf("registry counter %q = %d, want >= 1", counter, m.Registry.Counters[counter])
		}
	}
	if m.Registry.Histograms["voip.setup.delay"].Count < 1 {
		t.Error("voip.setup.delay histogram never observed a sample")
	}

	// The proxy on alice's node handled her REGISTER and routed her INVITE.
	if p := m.Proxies[nodes[0].ID()]; p.Registers < 1 || p.RequestsRouted < 1 {
		t.Errorf("proxy on %s barely worked: %+v", nodes[0].ID(), p)
	}
}

// TestMetricsConcurrentWithTraffic hammers the snapshot path while a call is
// live; run with -race this is the audit that Stats() never copies mutating
// state.
func TestMetricsConcurrentWithTraffic(t *testing.T) {
	sc, nodes := newChainScenario(t, 3, ScenarioConfig{})
	alice := registerPhone(t, nodes[0], "alice")
	registerPhone(t, nodes[2], "bob")

	call, err := alice.Dial("bob@" + domain)
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(callTimeout); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = sc.Metrics()
				_ = call.Trace()
			}
		}()
	}
	call.SendVoice(10)
	close(stop)
	wg.Wait()
	if err := call.Hangup(); err != nil {
		t.Fatal(err)
	}
}

// TestDialContextCancelAbandonsSetup cancels the dial context while the
// callee is still ringing and expects the call to conclude with 487.
func TestDialContextCancelAbandonsSetup(t *testing.T) {
	_, nodes := newChainScenario(t, 2, ScenarioConfig{})
	alice := registerPhone(t, nodes[0], "alice")
	bob, err := nodes[1].NewPhoneWith(PhoneConfig{User: "bob", Domain: domain, NoAutoAnswer: true})
	if err != nil {
		t.Fatal(err)
	}
	var regErr error
	for range 5 {
		if regErr = bob.Register(); regErr == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if regErr != nil {
		t.Fatalf("register bob: %v", regErr)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	call, err := alice.DialContext(ctx, "bob@"+domain)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until bob is actually ringing.
	select {
	case <-bob.Incoming():
	case <-time.After(callTimeout):
		t.Fatal("callee never rang")
	}

	// A context-bound wait on a still-ringing call returns the ctx error.
	wctx, wcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer wcancel()
	if err := call.WaitEstablishedContext(wctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("WaitEstablishedContext = %v, want deadline exceeded", err)
	}

	cancel()
	if err := call.WaitEnded(callTimeout); err != nil {
		t.Fatal(err)
	}
	if call.State() != CallFailed || call.FailCode() != 487 {
		t.Errorf("call state %v code %d, want failed/487", call.State(), call.FailCode())
	}
}
