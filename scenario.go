package siphoc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/core"
	"siphoc/internal/internet"
	"siphoc/internal/netem"
	"siphoc/internal/obs"
	"siphoc/internal/routing/olsr"
	"siphoc/internal/rtp"
	"siphoc/internal/slp"
)

// RoutingKind selects the MANET routing protocol for a scenario or node.
type RoutingKind int

// Supported routing protocols ("currently, our system supports two routing
// protocols, AODV and OLSR" — paper §3.1).
const (
	RoutingAODV RoutingKind = iota + 1
	RoutingOLSR
)

// String implements fmt.Stringer.
func (k RoutingKind) String() string {
	switch k {
	case RoutingAODV:
		return "AODV"
	case RoutingOLSR:
		return "OLSR"
	default:
		return fmt.Sprintf("routing(%d)", int(k))
	}
}

// ScenarioConfig configures a whole deployment.
//
// ScenarioConfig is the legacy positional surface: new code should build
// scenarios with NewScenarioWith and ScenarioOption values, which compose
// (a federation island can also carry a fault plan) instead of growing this
// struct. The fields remain as thin wrappers for one release.
type ScenarioConfig struct {
	// Radio tunes the MANET medium; the zero value uses netem defaults
	// (100 m range, ~0.5 ms per-hop delay).
	Radio netem.Config
	// Routing selects the routing protocol (default AODV).
	Routing RoutingKind
	// SLPMode selects MANET SLP dissemination (default piggyback).
	SLPMode slp.Mode
	// SLP overrides the full SLP agent configuration; when set, SLPMode
	// is ignored.
	SLP *slp.Config
	// OLSR overrides the OLSR protocol configuration for OLSR nodes
	// (Clock and Obs are filled from the scenario when unset, and
	// TimeScale still applies on top). Nil keeps olsr.SimConfig — whose
	// timings suit small networks; large grids need intervals scaled
	// with node count to keep the control-plane load inside the machine.
	OLSR *olsr.Config
	// Internet, when true, creates a simulated Internet that gateway
	// nodes can bridge to.
	Internet bool
	// InternetDelay is the Internet per-hop latency (default 5ms).
	InternetDelay time.Duration
	// EventLoop runs the deployment on the sharded virtual-time event-loop
	// core: netem delivers frames inline on its delivery shards, and every
	// recurring protocol timer (OLSR hello/TC, AODV hello and discovery
	// retries, SLP refresh, SIP retransmission/linger/expiry) runs on a
	// shared clock.Scheduler instead of dedicated goroutines. Post-bring-up
	// goroutine count becomes O(shards), not O(nodes) — the difference
	// between thousands of runnable goroutines and a handful at 32×32.
	EventLoop bool
	// Shards bounds the event-loop worker count (0 = GOMAXPROCS). Only
	// meaningful with EventLoop.
	Shards int
	// TimeScale stretches protocol timers; 1.0 (default) uses the fast
	// simulation timings throughout.
	TimeScale float64
	// Clock is the time source (default the system clock).
	Clock clock.Clock
	// NoObservability disables the scenario-wide metrics registry and call
	// tracer (kept separate so the zero value of ScenarioConfig observes;
	// disable for overhead-sensitive benchmarks). See Scenario.Observer,
	// Scenario.Metrics and Call.Trace.
	NoObservability bool
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Routing == 0 {
		c.Routing = RoutingAODV
	}
	if c.SLPMode == 0 {
		c.SLPMode = slp.ModePiggyback
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	return c
}

// ScenarioOption customizes scenario construction. Options are the canonical
// construction surface (NewScenarioWith); they compose where ScenarioConfig
// fields fork — a federation island can also carry a fault plan, share a
// media pacer, and override routing, all in one call.
type ScenarioOption func(*scenarioBuild)

// scenarioBuild accumulates option state before the Scenario exists.
type scenarioBuild struct {
	cfg       ScenarioConfig
	pacer     *rtp.Pacer            // shared external pacer (not closed by Scenario.Close)
	inet      *internet.Internet    // shared external Internet (not closed by Scenario.Close)
	obs       *obs.Observer         // shared external observer
	prefix    string                // federation: the island's address prefix ("10.2.0")
	trunk     bool                  // enable gateway trunk multiplexing
	faultSeed *int64                // attach a deterministic fault plan
	overlay   core.OverlayDirectory // P2P overlay registrar shared by the scenario's proxies
}

// WithRadio tunes the MANET medium (range, delay, loss, seed).
func WithRadio(r netem.Config) ScenarioOption {
	return func(b *scenarioBuild) { b.cfg.Radio = r }
}

// WithRoutingKind selects the MANET routing protocol scenario-wide (the
// per-node override remains WithRouting, a NodeOption).
func WithRoutingKind(k RoutingKind) ScenarioOption {
	return func(b *scenarioBuild) { b.cfg.Routing = k }
}

// WithOLSR selects OLSR routing with an optional configuration override
// (nil keeps olsr.SimConfig; see ScenarioConfig.OLSR for the scaling rules).
func WithOLSR(cfg *olsr.Config) ScenarioOption {
	return func(b *scenarioBuild) {
		b.cfg.Routing = RoutingOLSR
		b.cfg.OLSR = cfg
	}
}

// WithSLPMode selects the MANET SLP dissemination mode.
func WithSLPMode(m slp.Mode) ScenarioOption {
	return func(b *scenarioBuild) { b.cfg.SLPMode = m }
}

// WithInternet attaches a simulated Internet with the given per-hop latency
// (0 keeps the 5 ms default) that gateway nodes can bridge to.
func WithInternet(delay time.Duration) ScenarioOption {
	return func(b *scenarioBuild) {
		b.cfg.Internet = true
		b.cfg.InternetDelay = delay
	}
}

// WithTimeScale stretches protocol timers by the given factor.
func WithTimeScale(f float64) ScenarioOption {
	return func(b *scenarioBuild) { b.cfg.TimeScale = f }
}

// WithEventLoop switches the scenario to the sharded event-loop core (see
// ScenarioConfig.EventLoop): inline frame delivery and all recurring
// protocol timers on one shared scheduler, O(shards) goroutines instead of
// O(nodes). Protocol behaviour is unchanged — the golden equivalence tests
// pin bit-identical hello/TC emission and route tables against the
// goroutine core on a fake clock.
func WithEventLoop() ScenarioOption {
	return func(b *scenarioBuild) { b.cfg.EventLoop = true }
}

// WithClock sets the scenario time source (fake clocks give deterministic
// schedules).
func WithClock(c clock.Clock) ScenarioOption {
	return func(b *scenarioBuild) { b.cfg.Clock = c }
}

// WithoutObservability disables the scenario-wide metrics registry and call
// tracer, for overhead-sensitive benchmarks.
func WithoutObservability() ScenarioOption {
	return func(b *scenarioBuild) { b.cfg.NoObservability = true }
}

// WithMediaPacer shares an externally owned RTP pacer instead of creating a
// per-scenario one. The scenario does not close it; the owner does. This is
// how several federated islands pace all their media on one scheduler.
func WithMediaPacer(p *rtp.Pacer) ScenarioOption {
	return func(b *scenarioBuild) { b.pacer = p }
}

// WithTrunking enables gateway-side trunk multiplexing: concurrent RTP
// streams crossing the same gateway pair are batched into one paced
// inter-gateway flow (see core.TrunkConfig). The trunk rides the scenario's
// media pacer.
func WithTrunking() ScenarioOption {
	return func(b *scenarioBuild) { b.trunk = true }
}

// WithOverlayDirectory hands every proxy in the scenario a P2P overlay
// registrar (the Kademlia DHT of internal/overlay) as a third resolver
// backend: the proxy publishes its registrations into the overlay and, when
// attached, resolves AORs that miss the MANET SLP cache through it before
// falling back to DNS. The usual deployment is a passive overlay client
// (overlay.Config.Passive) shared by an island's proxies; the scenario does
// not close the directory — its owner does.
func WithOverlayDirectory(dir core.OverlayDirectory) ScenarioOption {
	return func(b *scenarioBuild) { b.overlay = dir }
}

// WithFaultPlan attaches a deterministic, seeded fault plan to the scenario;
// retrieve the harness with Scenario.Faults(). This replaces wrapping the
// scenario in NewFaultScenario by hand and composes with WithFederation.
func WithFaultPlan(seed int64) ScenarioOption {
	return func(b *scenarioBuild) { b.faultSeed = &seed }
}

// WithFederation makes the scenario one island of a federation: it shares
// the federation's clock, observer, simulated Internet and media pacer
// (none of which Scenario.Close touches), scopes the Connection Provider's
// locality test to the island's address prefix, enables trunking when the
// federation asks for it, and switches the proxy's SLP resolver to
// cache-only (see core.ProxyConfig.SLPCacheOnly for why).
func WithFederation(f *FederationScenario, islandPrefix string) ScenarioOption {
	return func(b *scenarioBuild) {
		b.cfg.Internet = true
		b.cfg.Clock = f.clk
		b.cfg.TimeScale = f.cfg.TimeScale
		b.obs = f.observer
		b.inet = f.inet
		b.pacer = f.pacer
		b.prefix = islandPrefix
		b.trunk = f.cfg.Trunk
	}
}

// withConfig seeds the build from a legacy positional config.
func withConfig(cfg ScenarioConfig) ScenarioOption {
	return func(b *scenarioBuild) { b.cfg = cfg }
}

// Scenario is a complete deployment: a MANET, optionally a simulated
// Internet with SIP providers, and the set of SIPHoc nodes.
type Scenario struct {
	cfg   ScenarioConfig
	clk   clock.Clock
	obs   *obs.Observer    // nil when NoObservability
	sched *clock.Scheduler // event-loop timer core; nil in goroutine mode

	net   *netem.Network
	inet  *internet.Internet
	pacer *rtp.Pacer // shared by every phone's media sessions

	ownInet  bool                  // close inet on Close (false for federation islands)
	ownPacer bool                  // close pacer on Close (false when shared)
	prefix   string                // federation island address prefix ("" = standalone)
	trunk    bool                  // gateway nodes run trunk multiplexing
	overlay  core.OverlayDirectory // shared overlay registrar (not closed here)
	faults   *FaultScenario

	mu         sync.Mutex
	nodes      map[netem.NodeID]*Node
	providers  []*internet.Provider
	inetPhones []*Phone
	closed     bool
}

// NewScenario builds an empty deployment from the legacy positional config.
// New code should prefer NewScenarioWith.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	return NewScenarioWith(withConfig(cfg))
}

// NewScenarioWith builds an empty deployment from functional options.
func NewScenarioWith(opts ...ScenarioOption) (*Scenario, error) {
	var b scenarioBuild
	for _, opt := range opts {
		opt(&b)
	}
	cfg := b.cfg.withDefaults()
	radio := cfg.Radio
	if radio.Clock == nil {
		radio.Clock = cfg.Clock
	}
	observer := b.obs
	if observer == nil && !cfg.NoObservability {
		observer = obs.New(cfg.Clock)
	}
	if radio.Obs == nil {
		radio.Obs = observer
	}
	var sched *clock.Scheduler
	if cfg.EventLoop {
		radio.EventLoop = true
		radio.Shards = cfg.Shards
		sched = clock.NewScheduler(cfg.Clock, cfg.Shards)
	}
	s := &Scenario{
		cfg:     cfg,
		clk:     cfg.Clock,
		obs:     observer,
		sched:   sched,
		net:     netem.NewNetwork(radio),
		prefix:  b.prefix,
		trunk:   b.trunk,
		overlay: b.overlay,
		nodes:   make(map[netem.NodeID]*Node),
	}
	if b.pacer != nil {
		s.pacer = b.pacer
	} else {
		s.pacer = rtp.NewPacer(cfg.Clock)
		s.ownPacer = true
	}
	switch {
	case b.inet != nil:
		s.inet = b.inet
	case cfg.Internet:
		s.inet = internet.New(internet.Config{Delay: cfg.InternetDelay, Clock: cfg.Clock})
		s.ownInet = true
	}
	if b.faultSeed != nil {
		s.faults = NewFaultScenario(s, *b.faultSeed)
	}
	return s, nil
}

// Faults returns the scenario's deterministic fault harness, or nil unless
// the scenario was built with WithFaultPlan.
func (s *Scenario) Faults() *FaultScenario { return s.faults }

// Network exposes the MANET medium (stats, topology control, mobility).
func (s *Scenario) Network() *netem.Network { return s.net }

// Observer returns the scenario-wide observability handle shared by every
// node's components: the metrics registry and the call tracer. It is nil
// when the scenario was created with NoObservability — and a nil Observer
// is itself valid (every method no-ops), so callers never need to check.
func (s *Scenario) Observer() *Observer { return s.obs }

// Internet exposes the simulated Internet, or nil.
func (s *Scenario) Internet() *internet.Internet { return s.inet }

// Clock returns the scenario's time source.
func (s *Scenario) Clock() clock.Clock { return s.clk }

// Scheduler returns the shared event-loop timer core, or nil when the
// scenario runs on the legacy goroutine-per-timer core.
func (s *Scenario) Scheduler() *clock.Scheduler { return s.sched }

// MediaPacer returns the scenario-wide RTP frame scheduler shared by every
// phone's media sessions (one goroutine paces all concurrent streams).
func (s *Scenario) MediaPacer() *rtp.Pacer { return s.pacer }

// AddNode creates a full SIPHoc node (routing protocol, MANET SLP,
// Connection Provider, proxy — plus a Gateway Provider for gateway nodes)
// at the given position and starts all its services.
func (s *Scenario) AddNode(id NodeID, pos Position, opts ...NodeOption) (*Node, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("siphoc: scenario closed")
	}
	s.mu.Unlock()
	n, err := s.newNode(id, pos, opts...)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.nodes[id] = n
	s.mu.Unlock()
	return n, nil
}

// Node returns the node with the given ID, or nil.
func (s *Scenario) Node(id NodeID) *Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodes[id]
}

// Nodes returns all nodes in creation order of their IDs.
func (s *Scenario) Nodes() []*Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Node, 0, len(s.nodes))
	for _, id := range s.net.Nodes() {
		if n, ok := s.nodes[id]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Chain creates count nodes in a line with the given spacing, producing a
// multihop path (the paper's firewalled-testbed topology). Node IDs are
// "10.0.0.1" … "10.0.0.<count>". Nodes are brought up in parallel.
func (s *Scenario) Chain(count int, spacing float64, opts ...NodeOption) ([]*Node, error) {
	specs := make([]nodeSpec, count)
	for i := range count {
		specs[i] = nodeSpec{id: netem.NodeName("10.0.0", i+1), pos: Position{X: float64(i) * spacing}}
	}
	return s.addNodes(specs, opts...)
}

// Grid creates rows×cols nodes on a regular grid (the campus scenario).
// Nodes are brought up in parallel.
func (s *Scenario) Grid(rows, cols int, spacing float64, opts ...NodeOption) ([]*Node, error) {
	specs := make([]nodeSpec, 0, rows*cols)
	for r := range rows {
		for c := range cols {
			specs = append(specs, nodeSpec{
				id:  netem.NodeName("10.0.0", r*cols+c+1),
				pos: Position{X: float64(c) * spacing, Y: float64(r) * spacing},
			})
		}
	}
	return s.addNodes(specs, opts...)
}

type nodeSpec struct {
	id  NodeID
	pos Position
}

// closeParallelism bounds concurrent node bring-up/teardown.
func closeParallelism() int {
	limit := runtime.GOMAXPROCS(0) * 2
	if limit < 4 {
		limit = 4
	}
	return limit
}

// addNodes brings up a batch of nodes with bounded parallelism: each node's
// construction starts seven goroutines and a handful of port bindings, and
// doing that for hundreds of nodes sequentially dominates large-scenario
// setup. A semaphore caps the in-flight constructions; the first error wins,
// later ones are dropped, and every node already up is torn down so the
// caller never sees a half-built topology. Results keep spec order.
func (s *Scenario) addNodes(specs []nodeSpec, opts ...NodeOption) ([]*Node, error) {
	nodes := make([]*Node, len(specs))
	limit := closeParallelism()
	if limit > len(specs) {
		limit = len(specs)
	}
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, limit)
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
	)
	for i, sp := range specs {
		if failed.Load() {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, sp nodeSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			if failed.Load() {
				return
			}
			n, err := s.AddNode(sp.id, sp.pos, opts...)
			if err != nil {
				failed.Store(true)
				errOnce.Do(func() { firstErr = fmt.Errorf("siphoc: bring up node %s: %w", sp.id, err) })
				return
			}
			nodes[i] = n
		}(i, sp)
	}
	wg.Wait()
	if failed.Load() {
		for _, n := range nodes {
			if n != nil {
				s.RemoveNode(n.ID())
			}
		}
		return nil, firstErr
	}
	return nodes, nil
}

// AddProvider creates an Internet SIP provider (requires Internet: true).
func (s *Scenario) AddProvider(cfg ProviderConfig) (*Provider, error) {
	if s.inet == nil {
		return nil, fmt.Errorf("siphoc: scenario has no Internet")
	}
	if cfg.Clock == nil {
		cfg.Clock = s.clk
	}
	p, err := internet.NewProvider(s.inet, cfg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.providers = append(s.providers, p)
	s.mu.Unlock()
	return p, nil
}

// AddInternetPhone creates a softphone directly attached to the Internet
// (e.g. the remote party of a MANET-to-Internet call): a host named hostID
// is added to the Internet and the phone uses the provider responsible for
// domain as its proxy.
func (s *Scenario) AddInternetPhone(user, domain string, hostID NodeID) (*Phone, error) {
	return s.AddInternetPhoneWithPassword(user, "", domain, hostID)
}

// AddInternetPhoneWithPassword is AddInternetPhone with digest credentials
// for providers that require authentication.
func (s *Scenario) AddInternetPhoneWithPassword(user, password, domain string, hostID NodeID) (*Phone, error) {
	if s.inet == nil {
		return nil, fmt.Errorf("siphoc: scenario has no Internet")
	}
	var prov *internet.Provider
	s.mu.Lock()
	for _, p := range s.providers {
		if p.Domain() == domain {
			prov = p
			break
		}
	}
	s.mu.Unlock()
	if prov == nil {
		return nil, fmt.Errorf("siphoc: no provider for domain %q", domain)
	}
	host, err := s.inet.AddHost(hostID)
	if err != nil {
		return nil, err
	}
	ph := newInternetPhone(host, user, password, domain, prov.ProxyAddr(), s.clk, s.pacer)
	if err := ph.Start(); err != nil {
		s.inet.RemoveHost(hostID)
		return nil, err
	}
	s.mu.Lock()
	s.inetPhones = append(s.inetPhones, ph)
	s.mu.Unlock()
	return ph, nil
}

// WaitAttached blocks until the node reports Internet connectivity or the
// timeout elapses. For nodes with a Connection Provider the timeout error
// wraps core.ErrNoGateway (re-exported as ErrNoGateway), so callers can
// errors.Is the "no usable gateway" condition. The wait spans the whole
// timeout even while the provider's own retry budget is exhausted: a
// gateway appearing late still attaches the node.
func (s *Scenario) WaitAttached(n *Node, timeout time.Duration) error {
	deadline := s.clk.Now().Add(timeout)
	for {
		if n.InternetAttached() {
			return nil
		}
		if s.clk.Now().After(deadline) {
			if n.connp != nil {
				return fmt.Errorf("siphoc: node %s not attached after %v: %w", n.ID(), timeout, core.ErrNoGateway)
			}
			return fmt.Errorf("siphoc: node %s never attached to the Internet", n.ID())
		}
		s.clk.Sleep(10 * time.Millisecond)
	}
}

// RemoveNode stops a node and removes it from the MANET (simulating a crash
// or power-off).
func (s *Scenario) RemoveNode(id NodeID) {
	s.mu.Lock()
	n := s.nodes[id]
	delete(s.nodes, id)
	s.mu.Unlock()
	if n != nil {
		n.Close()
	}
	s.net.RemoveHost(id)
}

// Close stops everything.
func (s *Scenario) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	nodes := make([]*Node, 0, len(s.nodes))
	for _, n := range s.nodes {
		nodes = append(nodes, n)
	}
	providers := s.providers
	inetPhones := s.inetPhones
	s.mu.Unlock()
	for _, ph := range inetPhones {
		ph.Stop()
	}
	// Close nodes in parallel: a sequential sweep leaves survivors running
	// long enough to notice the shrinking neighbourhood (NeighborHold) and
	// churn through route rebuilds on a collapsing topology — on a 400-node
	// grid that turns teardown from seconds into minutes.
	var wg sync.WaitGroup
	sem := make(chan struct{}, closeParallelism())
	for _, n := range nodes {
		sem <- struct{}{}
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			defer func() { <-sem }()
			n.Close()
		}(n)
	}
	wg.Wait()
	for _, p := range providers {
		p.Close()
	}
	if s.faults != nil {
		s.faults.Stop()
	}
	if s.inet != nil && s.ownInet {
		s.inet.Close()
	}
	s.net.Close()
	if s.sched != nil {
		s.sched.Close()
	}
	if s.ownPacer {
		s.pacer.Close()
	}
}
