package siphoc

// Metrics is the merged observability snapshot of a whole scenario: one call
// replaces the scattered per-component Stats() accessors. The per-node maps
// are keyed by node ID; nodes without the component are absent from the map.
type Metrics struct {
	// Network counts traffic on the radio medium by frame class.
	Network NetworkStats
	// Proxies holds each node's SIPHoc proxy counters.
	Proxies map[NodeID]ProxyStats
	// Gateways holds each gateway node's Gateway Provider counters.
	Gateways map[NodeID]GatewayStats
	// ConnProviders holds each node's Connection Provider counters.
	ConnProviders map[NodeID]ConnStats
	// SLP holds each node's MANET SLP agent counters.
	SLP map[NodeID]SLPStats
	// Registry is the scenario-wide metrics registry (named counters,
	// gauges and latency histograms recorded by the instrumentation
	// hooks). Zero when the scenario was built with NoObservability.
	Registry RegistrySnapshot
}

// Metrics captures the merged snapshot of every node's components plus the
// shared metrics registry. Safe to call concurrently with live traffic: all
// underlying counters are atomics.
func (s *Scenario) Metrics() Metrics {
	m := Metrics{
		Network:       s.net.Stats(),
		Proxies:       make(map[NodeID]ProxyStats),
		Gateways:      make(map[NodeID]GatewayStats),
		ConnProviders: make(map[NodeID]ConnStats),
		SLP:           make(map[NodeID]SLPStats),
		Registry:      s.obs.Snapshot(),
	}
	for _, n := range s.Nodes() {
		id := n.ID()
		if p := n.Proxy(); p != nil {
			m.Proxies[id] = p.Stats()
		}
		if g := n.Gateway(); g != nil {
			m.Gateways[id] = g.Stats()
		}
		if c := n.ConnectionProvider(); c != nil {
			m.ConnProviders[id] = c.Stats()
		}
		if a := n.SLP(); a != nil {
			m.SLP[id] = a.Stats()
		}
	}
	return m
}
