// Command benchcmp diffs a fresh benchmark run against a committed
// BENCH_*.json snapshot (both in cmd/benchjson format) and exits non-zero
// when a guarded metric regresses beyond tolerance:
//
//	benchcmp BENCH_scale.json BENCH_scale.json.new
//
// Guarded metrics are convergence_ms and allocs/node/s (the two scale-study
// numbers that creep when the control plane grows overhead), lookup_ms and
// allocs/op (the overlay registrar's lookup latency and allocation bill,
// gated against BENCH_dht.json), and the scale study's GC pressure metrics
// heap_alloc_mb / gc_cycles / gc_pause_ms. The time/alloc metrics may grow
// at most 25% over the committed value; the noisier GC metrics get wider
// per-metric tolerances. Benchmarks present only in the fresh run (new grid
// sizes) or only in the snapshot (retired ones) are reported and skipped, so
// adding a scale point never trips the gate.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// Result mirrors cmd/benchjson's per-line object.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report mirrors cmd/benchjson's document.
type Report struct {
	Package    string   `json:"package,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// guarded lists the metrics the gate watches with the allowed growth factor
// for each; missing metrics are skipped so the tool works for snapshots that
// don't report them. The GC metrics (emitted by BenchmarkControlScale since
// the dense-state routing core) get wider tolerances: cycle counts and
// especially pause totals are noisier run to run than the time/alloc
// metrics, and the gate exists to catch the routing state growing
// GC-visible again — a regression there shows up as multiples, not
// percentages. They also get an absolute floor: below it a ratio is pure
// noise (a 0.2 ms pause total doubling to 0.5 ms says nothing), so the
// gate only engages once the committed value is large enough to ratio.
var guarded = []struct {
	name      string
	tolerance float64
	floor     float64 // skip the gate when the committed value is below this
}{
	{"convergence_ms", 1.25, 0},
	{"allocs/node/s", 1.25, 0},
	{"lookup_ms", 1.25, 0},
	{"allocs/op", 1.25, 0},
	{"heap_alloc_mb", 1.5, 8},
	{"gc_cycles", 1.5, 5},
	{"gc_pause_ms", 2.0, 1},
}

func load(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp <committed.json> <fresh.json>")
		os.Exit(2)
	}
	committed, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	fresh, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	base := make(map[string]Result, len(committed.Benchmarks))
	for _, b := range committed.Benchmarks {
		base[b.Name] = b
	}
	seen := make(map[string]bool, len(fresh.Benchmarks))
	failed := false
	for _, nb := range fresh.Benchmarks {
		seen[nb.Name] = true
		ob, ok := base[nb.Name]
		if !ok {
			fmt.Printf("%s: new benchmark, no baseline — skipped\n", nb.Name)
			continue
		}
		for _, g := range guarded {
			ov, okOld := ob.Metrics[g.name]
			nv, okNew := nb.Metrics[g.name]
			if !okOld || !okNew || ov <= 0 || ov < g.floor {
				continue
			}
			ratio := nv / ov
			if ratio > g.tolerance {
				failed = true
				fmt.Printf("%s: %s regressed %.0f -> %.0f (%.2fx, limit %.2fx)\n",
					nb.Name, g.name, ov, nv, ratio, g.tolerance)
			} else {
				fmt.Printf("%s: %s %.0f -> %.0f (%.2fx) ok\n", nb.Name, g.name, ov, nv, ratio)
			}
		}
	}
	for _, ob := range committed.Benchmarks {
		if !seen[ob.Name] {
			fmt.Printf("%s: missing from fresh run — skipped\n", ob.Name)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchcmp: guarded metrics regressed beyond tolerance")
		os.Exit(1)
	}
}
