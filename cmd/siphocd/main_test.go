package main

import (
	"testing"
)

func TestPeerListParsing(t *testing.T) {
	p := peerList{}
	if err := p.Set("10.0.0.2=127.0.0.1:7002"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("10.0.0.3=127.0.0.1:7003"); err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 || p["10.0.0.2"] != "127.0.0.1:7002" {
		t.Fatalf("peers = %v", p)
	}
	if err := p.Set("missing-equals"); err == nil {
		t.Fatal("malformed peer accepted")
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestProviderListParsing(t *testing.T) {
	var p providerList
	if err := p.Set("voicehoc.ch=alice,bob"); err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0].Domain != "voicehoc.ch" || len(p[0].Accounts) != 2 {
		t.Fatalf("providers = %+v", p)
	}
	if err := p.Set("nodomain"); err == nil {
		t.Fatal("malformed provider accepted")
	}
}

func TestCredentialListParsing(t *testing.T) {
	var c credentialList
	if err := c.Set("alice@voicehoc.ch=alice:wonderland"); err != nil {
		t.Fatal(err)
	}
	if len(c) != 1 || c[0].aor != "alice@voicehoc.ch" || c[0].user != "alice" || c[0].pass != "wonderland" {
		t.Fatalf("credentials = %+v", c)
	}
	for _, bad := range []string{"no-equals", "aor=nopass"} {
		if err := c.Set(bad); err == nil {
			t.Fatalf("malformed credential %q accepted", bad)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-listen", "127.0.0.1:0"}); err == nil {
		t.Fatal("missing -id accepted")
	}
	if err := run([]string{"-id", "x", "-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
