// Command siphocd runs one headless SIPHoc MANET node as a real network
// daemon over UDP: routing protocol, MANET SLP, Connection Provider, SIP
// proxy — and optionally a Gateway Provider with an in-process Internet.
//
// A three-node chain on loopback, with the last node a gateway hosting a
// SIP provider:
//
//	siphocd -id 10.0.0.1 -listen 127.0.0.1:7001 -peer 10.0.0.2=127.0.0.1:7002
//	siphocd -id 10.0.0.2 -listen 127.0.0.1:7002 -peer 10.0.0.1=127.0.0.1:7001 -peer 10.0.0.3=127.0.0.1:7003
//	siphocd -id 10.0.0.3 -listen 127.0.0.1:7003 -peer 10.0.0.2=127.0.0.1:7002 \
//	        -gateway -provider voicehoc.ch=alice,bob
//
// Softphones then join the MANET with cmd/softphone.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"siphoc/internal/daemon"
	"siphoc/internal/netem"
)

type peerList map[netem.NodeID]string

func (p peerList) String() string { return fmt.Sprint(map[netem.NodeID]string(p)) }

func (p peerList) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("peer must be id=udpaddr, got %q", v)
	}
	p[netem.NodeID(id)] = addr
	return nil
}

type credentialList []credential

type credential struct {
	aor, user, pass string
}

func (c *credentialList) String() string { return fmt.Sprintf("%d credential(s)", len(*c)) }

func (c *credentialList) Set(v string) error {
	aor, userpass, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("credential must be aor=user:password, got %q", v)
	}
	user, pass, ok := strings.Cut(userpass, ":")
	if !ok {
		return fmt.Errorf("credential must be aor=user:password, got %q", v)
	}
	*c = append(*c, credential{aor: aor, user: user, pass: pass})
	return nil
}

type providerList []daemon.ProviderSpec

func (p *providerList) String() string { return fmt.Sprint([]daemon.ProviderSpec(*p)) }

func (p *providerList) Set(v string) error {
	domain, accts, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("provider must be domain=user1,user2, got %q", v)
	}
	*p = append(*p, daemon.ProviderSpec{Domain: domain, Accounts: strings.Split(accts, ",")})
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "siphocd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("siphocd", flag.ContinueOnError)
	peers := peerList{}
	var providers providerList
	var (
		id      = fs.String("id", "", "node id, e.g. 10.0.0.1 (required)")
		listen  = fs.String("listen", "127.0.0.1:0", "UDP address of the MANET link layer")
		routing = fs.String("routing", "aodv", "aodv | olsr")
		fast    = fs.Bool("fast", false, "use fast (simulation-scale) protocol timers")
		gateway = fs.Bool("gateway", false, "run a Gateway Provider with an in-process Internet")
		status  = fs.Duration("status", 10*time.Second, "status report interval (0 disables)")
	)
	var credentials credentialList
	fs.Var(peers, "peer", "neighbour as id=udpaddr (repeatable)")
	fs.Var(&providers, "provider", "gateway-hosted SIP provider as domain=user1,user2 (repeatable)")
	fs.Var(&credentials, "credential", "upstream digest credentials as aor=user:password (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	d, err := daemon.Start(daemon.Config{
		ID:        netem.NodeID(*id),
		Listen:    *listen,
		Peers:     peers,
		Routing:   *routing,
		Fast:      *fast,
		Gateway:   *gateway,
		Providers: providers,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	for _, c := range credentials {
		d.Proxy().SetUpstreamCredentials(c.aor, c.user, c.pass)
	}
	fmt.Printf("siphocd: node %s up (%s routing, gateway=%v), %d peer(s)\n",
		*id, strings.ToUpper(*routing), *gateway, len(peers))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *status > 0 {
		t := time.NewTicker(*status)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-sig:
			fmt.Println("siphocd: shutting down")
			return nil
		case <-tick:
			fmt.Print(d.Status())
		}
	}
}
