// Command softphone is an interactive VoIP phone on a full SIPHoc node (the
// iPAQ deployment of the paper: the whole service set plus the phone on one
// device), joining a multi-process MANET over UDP.
//
//	softphone -id 10.0.0.4 -listen 127.0.0.1:7004 \
//	          -peer 10.0.0.2=127.0.0.1:7002 -user alice -domain voicehoc.ch
//
// Commands on stdin: register | call <aor> | answer | reject | hangup |
// status | quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"siphoc/internal/daemon"
	"siphoc/internal/netem"
	"siphoc/internal/voip"
)

type peerList map[netem.NodeID]string

func (p peerList) String() string { return fmt.Sprint(map[netem.NodeID]string(p)) }

func (p peerList) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("peer must be id=udpaddr, got %q", v)
	}
	p[netem.NodeID(id)] = addr
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "softphone:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("softphone", flag.ContinueOnError)
	peers := peerList{}
	var (
		id      = fs.String("id", "", "node id (required)")
		listen  = fs.String("listen", "127.0.0.1:0", "UDP address of the MANET link layer")
		routing = fs.String("routing", "aodv", "aodv | olsr")
		fast    = fs.Bool("fast", true, "use fast protocol timers (default for interactive use)")
		user    = fs.String("user", "", "SIP user (required)")
		domain  = fs.String("domain", "voicehoc.ch", "SIP domain")
		auto    = fs.Bool("autoanswer", false, "answer incoming calls automatically")
	)
	fs.Var(peers, "peer", "neighbour as id=udpaddr (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" || *user == "" {
		return fmt.Errorf("-id and -user are required")
	}
	d, err := daemon.Start(daemon.Config{
		ID: netem.NodeID(*id), Listen: *listen, Peers: peers,
		Routing: *routing, Fast: *fast,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	ph, err := d.NewPhone(*user, *domain, *auto)
	if err != nil {
		return err
	}
	fmt.Printf("softphone: %s@%s on node %s (outbound proxy: local SIPHoc proxy)\n", *user, *domain, *id)
	fmt.Println("softphone: commands: register | call <aor> | answer | reject | hangup | status | quit")

	var (
		mu      sync.Mutex
		current *voip.Call
		ringing *voip.Call
	)
	go func() {
		for inc := range ph.Incoming() {
			mu.Lock()
			ringing = inc
			mu.Unlock()
			fmt.Printf("\nsoftphone: *** RING *** incoming call %s (answer/reject)\n> ", inc.ID())
		}
	}()

	in := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for in.Scan() {
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "register":
			if err := ph.Register(); err != nil {
				fmt.Println("softphone: register failed:", err)
			} else {
				fmt.Println("softphone: registered", ph.AOR())
			}
		case "call":
			if len(fields) != 2 {
				fmt.Println("softphone: usage: call <aor>")
				break
			}
			call, err := ph.Dial(fields[1])
			if err != nil {
				fmt.Println("softphone: dial failed:", err)
				break
			}
			mu.Lock()
			current = call
			mu.Unlock()
			go func() {
				if err := call.WaitEstablished(30 * time.Second); err != nil {
					fmt.Printf("\nsoftphone: call failed: %v\n> ", err)
					return
				}
				fmt.Printf("\nsoftphone: call established in %v; streaming voice\n> ",
					call.SetupDuration().Round(time.Millisecond))
				call.SendVoice(250) // ~5 seconds of audio
			}()
		case "answer":
			mu.Lock()
			c := ringing
			if c != nil {
				current, ringing = c, nil
			}
			mu.Unlock()
			if c == nil {
				fmt.Println("softphone: no ringing call")
				break
			}
			if err := c.Answer(); err != nil {
				fmt.Println("softphone: answer failed:", err)
			} else {
				fmt.Println("softphone: answered")
			}
		case "reject":
			mu.Lock()
			c := ringing
			ringing = nil
			mu.Unlock()
			if c == nil {
				fmt.Println("softphone: no ringing call")
				break
			}
			_ = c.Reject(0)
			fmt.Println("softphone: rejected")
		case "hangup":
			mu.Lock()
			c := current
			current = nil
			mu.Unlock()
			if c == nil {
				fmt.Println("softphone: no active call")
				break
			}
			if err := c.Hangup(); err != nil {
				fmt.Println("softphone: hangup failed:", err)
			} else {
				st := c.MediaStats()
				fmt.Printf("softphone: call ended; received %d frames, loss %.1f%%, MOS %.2f\n",
					st.Received, st.LossRate*100, st.MOS)
			}
		case "status":
			fmt.Print(d.Status())
			mu.Lock()
			if current != nil {
				fmt.Printf("softphone: call %s state=%s media=%+v\n",
					current.ID(), current.State(), current.MediaStats())
			}
			mu.Unlock()
		case "quit", "exit":
			return nil
		default:
			fmt.Println("softphone: unknown command", fields[0])
		}
		fmt.Print("> ")
	}
	return in.Err()
}
