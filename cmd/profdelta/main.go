// Command profdelta diffs two `go tool pprof -top` summaries so profile
// drift shows up in review, not after merge:
//
//	profdelta PROFILE_scale.txt PROFILE_scale.txt.new
//
// `make profile` writes the fresh flat-top-10 summary (CPU and alloc_space
// sections) to PROFILE_scale.txt.new, runs this tool against the committed
// PROFILE_scale.txt, then promotes the fresh file. The delta it prints —
// per-function flat% changes, entries that joined or left each top-10 — is
// informational: the committed summary's diff is the review artifact, and
// the hard regression gate stays with cmd/benchcmp's guarded metrics. The
// tool exits 0 unless its inputs are unreadable, so a first run with no
// committed baseline still works (it reports every line as new).
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// entry is one pprof -top row: a function and its flat share of the profile.
type entry struct {
	name  string
	flat  float64 // flat% as a number, e.g. 11.61
	order int     // position within its section's top-N
}

// section is one `-top` table ("cpu", "alloc_space", ...), keyed by the
// pprof Type: header that precedes it.
type section struct {
	kind    string
	entries []entry
}

// parse splits a pprof -top text dump into sections of flat% rows. Rows look
// like:
//
//	16.75s 11.61% 11.61%     19.25s 13.34%  runtime.findObject
//	13902.32MB 61.08% 61.08% 13902.32MB 61.08%  olsr.(*Protocol).recomputeImpl
//
// i.e. five numeric columns (flat, flat%, sum%, cum, cum%) then the symbol.
func parse(path string) ([]section, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var secs []section
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "Type:"); ok {
			kind := strings.Fields(rest)
			name := "?"
			if len(kind) > 0 {
				name = kind[0]
			}
			secs = append(secs, section{kind: name})
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 6 || !strings.HasSuffix(fields[1], "%") {
			continue
		}
		flat, err := strconv.ParseFloat(strings.TrimSuffix(fields[1], "%"), 64)
		if err != nil {
			continue
		}
		if len(secs) == 0 {
			secs = append(secs, section{kind: "?"})
		}
		s := &secs[len(secs)-1]
		s.entries = append(s.entries, entry{
			name:  strings.Join(fields[5:], " "),
			flat:  flat,
			order: len(s.entries),
		})
	}
	return secs, sc.Err()
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: profdelta <committed.txt> <fresh.txt>")
		os.Exit(2)
	}
	fresh, err := parse(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "profdelta:", err)
		os.Exit(2)
	}
	committed, err := parse(os.Args[1])
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("profdelta: no committed baseline at %s — every entry is new\n", os.Args[1])
			committed = nil
		} else {
			fmt.Fprintln(os.Stderr, "profdelta:", err)
			os.Exit(2)
		}
	}
	base := make(map[string]map[string]entry) // section kind -> function -> entry
	for _, s := range committed {
		m := make(map[string]entry, len(s.entries))
		for _, e := range s.entries {
			m[e.name] = e
		}
		base[s.kind] = m
	}
	for _, s := range fresh {
		old := base[s.kind]
		fmt.Printf("— %s flat-top-%d vs committed —\n", s.kind, len(s.entries))
		seen := make(map[string]bool, len(s.entries))
		for _, e := range s.entries {
			seen[e.name] = true
			if oe, ok := old[e.name]; ok {
				mark := " "
				if e.flat > oe.flat+0.01 {
					mark = "+"
				} else if e.flat < oe.flat-0.01 {
					mark = "-"
				}
				fmt.Printf("  %s %6.2f%% -> %6.2f%%  %s\n", mark, oe.flat, e.flat, e.name)
			} else {
				fmt.Printf("  * entered %6.2f%%  %s\n", e.flat, e.name)
			}
		}
		for _, oe := range sortedByOrder(old) {
			if !seen[oe.name] {
				fmt.Printf("  · left   (was %5.2f%%)  %s\n", oe.flat, oe.name)
			}
		}
	}
}

// sortedByOrder returns a section map's entries in their original top-N
// order, so "left the top-10" lines print in a stable, meaningful order.
func sortedByOrder(m map[string]entry) []entry {
	out := make([]entry, len(m))
	for _, e := range m {
		out[e.order] = e
	}
	return out
}
