// Command experiments regenerates the paper's figures and evaluation claims
// (the index is DESIGN.md §4; measured outcomes are recorded in
// EXPERIMENTS.md). Run all of them or a comma-separated subset:
//
//	experiments -run all
//	experiments -run E1,E3,E8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"siphoc/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	sel := fs.String("run", "all", "comma-separated experiment IDs (E1..E10) or 'all'")
	list := fs.Bool("list", false, "list available experiments and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-55s (%s)\n", e.ID, e.Title, e.Paper)
		}
		return nil
	}
	var selected []experiments.Experiment
	if *sel == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*sel, ",") {
			e, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}
	failures := 0
	for _, e := range selected {
		start := time.Now()
		if err := e.Run(os.Stdout); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "\n%s FAILED after %v: %v\n", e.ID, time.Since(start).Round(time.Millisecond), err)
			continue
		}
		fmt.Printf("\n%s completed in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	return nil
}
