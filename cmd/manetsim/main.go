// Command manetsim runs a configurable wireless-ad-hoc-VoIP scenario on the
// in-memory MANET emulator and reports call statistics — the workhorse for
// exploring the system beyond the paper's 10-laptop testbed.
//
//	manetsim -nodes 25 -topology grid -routing olsr -calls 20 -loss 0.05
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"siphoc"
	"siphoc/internal/netem"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "manetsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("manetsim", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 10, "number of MANET nodes")
		topology = fs.String("topology", "chain", "chain | grid | random")
		routingF = fs.String("routing", "aodv", "aodv | olsr")
		calls    = fs.Int("calls", 10, "number of calls to place between random pairs")
		talk     = fs.Int("talk", 25, "voice frames per call (20ms each)")
		loss     = fs.Float64("loss", 0, "per-frame radio loss probability")
		seed     = fs.Int64("seed", 1, "layout / pairing RNG seed")
		mobility = fs.Bool("mobility", false, "enable random-waypoint mobility during calls")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	routing := siphoc.RoutingAODV
	if *routingF == "olsr" {
		routing = siphoc.RoutingOLSR
	} else if *routingF != "aodv" {
		return fmt.Errorf("unknown routing %q", *routingF)
	}
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{
		Radio:   netem.Config{LossRate: *loss, Seed: *seed},
		Routing: routing,
	})
	if err != nil {
		return err
	}
	defer sc.Close()

	var members []*siphoc.Node
	switch *topology {
	case "chain":
		members, err = sc.Chain(*nodes, 90)
	case "grid":
		side := 1
		for side*side < *nodes {
			side++
		}
		members, err = sc.Grid(side, side, 80)
	case "random":
		for i := range *nodes {
			rng := rand.New(rand.NewSource(*seed + int64(i)))
			n, e := sc.AddNode(netem.NodeName("10.0.0", i+1),
				siphoc.Position{X: rng.Float64() * 400, Y: rng.Float64() * 400})
			if e != nil {
				return e
			}
			members = append(members, n)
		}
	default:
		return fmt.Errorf("unknown topology %q", *topology)
	}
	if err != nil {
		return err
	}
	fmt.Printf("MANET: %d nodes, %s topology, %s routing, %.0f%% loss\n",
		len(members), *topology, routing, *loss*100)

	// One phone per node, all on the same "provider" domain.
	phones := make([]*siphoc.Phone, len(members))
	for i, n := range members {
		ph, err := n.NewPhone(fmt.Sprintf("user%d", i+1), "voicehoc.ch")
		if err != nil {
			return err
		}
		if err := registerWithRetry(ph); err != nil {
			return fmt.Errorf("register %s: %w", ph.AOR(), err)
		}
		phones[i] = ph
	}
	fmt.Printf("registered %d phones with their local proxies\n\n", len(phones))

	var mover *netem.Waypoint
	stopMove := make(chan struct{})
	if *mobility {
		mover = netem.NewWaypoint(sc.Network(), 500, 500, 1, 2, *seed)
		go func() {
			ticker := time.NewTicker(100 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-stopMove:
					return
				case <-ticker.C:
					mover.Step(0.1)
				}
			}
		}()
	}
	defer close(stopMove)

	rng := rand.New(rand.NewSource(*seed))
	var (
		ok, failed int
		totalSetup time.Duration
		worstMOS   = 5.0
	)
	for c := range *calls {
		i := rng.Intn(len(phones))
		j := rng.Intn(len(phones))
		for j == i {
			j = rng.Intn(len(phones))
		}
		caller, callee := phones[i], phones[j]
		call, err := caller.Dial(callee.AOR())
		if err != nil {
			return err
		}
		if err := call.WaitEstablished(20 * time.Second); err != nil {
			failed++
			fmt.Printf("call %2d: %s -> %s FAILED (%v)\n", c+1, caller.AOR(), callee.AOR(), err)
			continue
		}
		call.SendVoice(*talk)
		time.Sleep(100 * time.Millisecond)
		var mos float64
		select {
		case inc := <-callee.Incoming():
			st := inc.MediaStats()
			mos = st.MOS
			if mos < worstMOS {
				worstMOS = mos
			}
		default:
		}
		setup := call.SetupDuration()
		totalSetup += setup
		ok++
		fmt.Printf("call %2d: %s -> %s ok, setup %8v, MOS %.2f\n",
			c+1, caller.AOR(), callee.AOR(), setup.Round(time.Millisecond), mos)
		_ = call.Hangup()
	}
	fmt.Printf("\nsummary: %d/%d calls succeeded", ok, *calls)
	if ok > 0 {
		fmt.Printf(", avg setup %v, worst MOS %.2f", (totalSetup / time.Duration(ok)).Round(time.Millisecond), worstMOS)
	}
	fmt.Println()
	st := sc.Network().Stats()
	fmt.Printf("radio: %d routing frames (%d B), %d data frames (%d B), %d lost\n",
		st.RoutingFrames, st.RoutingBytes, st.DataFrames, st.DataBytes, st.Lost)
	if failed > 0 {
		return fmt.Errorf("%d call(s) failed", failed)
	}
	return nil
}

func registerWithRetry(ph *siphoc.Phone) error {
	var err error
	for range 5 {
		if err = ph.Register(); err == nil {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return err
}
