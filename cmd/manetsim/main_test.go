package main

import (
	"testing"
)

func TestRunSmallChain(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full simulation")
	}
	if err := run([]string{"-nodes", "3", "-calls", "2", "-talk", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGridOLSR(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full simulation")
	}
	if err := run([]string{"-nodes", "4", "-topology", "grid", "-routing", "olsr", "-calls", "2", "-talk", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-routing", "ospf"}); err == nil {
		t.Fatal("unknown routing accepted")
	}
	if err := run([]string{"-topology", "torus"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
