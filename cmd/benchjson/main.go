// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark runs can be committed and diffed
// (BENCH_netem.json, BENCH_sip.json — see the Makefile bench target).
//
// Each benchmark line
//
//	BenchmarkSIPParse-8   618181   1937 ns/op   1728 B/op   18 allocs/op
//
// becomes an object with the name, iteration count, and one entry per
// reported metric keyed by its unit.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	Package    string   `json:"package,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	rep := Report{Benchmarks: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine decodes "BenchmarkName-P  N  value unit  value unit ...".
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	// Strip the -GOMAXPROCS suffix for stable names across machines.
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
