// Federation scale study: the paper's single MANET / single provider setup
// (§5) federated into K islands × M gateways over a sharded provider tier.
// BenchmarkFederation drives a 3×2 federation through a ramped call-generator
// workload of 1000 concurrent cross-island calls, reporting setup-latency and
// MOS percentiles from the obs histograms plus the inter-gateway frame counts
// that quantify trunk multiplexing. Run via `make fed` (-benchtime 1x),
// committed as BENCH_fed.json; the trunked/untrunked pair is the before/after
// table in EXPERIMENTS.md.
package siphoc_test

import (
	"fmt"
	"testing"
	"time"

	"siphoc"
)

func BenchmarkFederation(b *testing.B) {
	calls := 1000
	if testing.Short() {
		calls = 50
	}
	for _, trunked := range []bool{true, false} {
		mode := "untrunked"
		if trunked {
			mode = "trunked"
		}
		b.Run(fmt.Sprintf("islands_3x2/calls_%d/%s", calls, mode), func(b *testing.B) {
			for b.Loop() {
				runFederationPoint(b, trunked, calls)
			}
		})
	}
}

func runFederationPoint(b *testing.B, trunked bool, calls int) {
	fed, err := siphoc.NewFederationScenario(siphoc.FederationConfig{
		Islands:           3,
		GatewaysPerIsland: 2,
		ClientsPerIsland:  6,
		Shards:            4,
		Trunk:             trunked,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer fed.Close()
	if err := fed.WaitAttached(time.Minute); err != nil {
		b.Fatal(err)
	}

	// A generous establish timeout matters under congestion (the untrunked
	// variant's expected behaviour at this scale): failing fast and
	// redialing adds INVITE load mid-ramp and makes the collapse worse,
	// while patient callers let the system drain and recover.
	gen := fed.NewCallGenerator(siphoc.CallGenConfig{
		Concurrent:       calls,
		EstablishTimeout: 2 * time.Minute,
	})
	rep, err := gen.Run()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Established == 0 {
		b.Fatalf("no calls established: %+v", rep)
	}

	b.ReportMetric(float64(rep.Established), "established")
	b.ReportMetric(float64(rep.Failed), "failed")
	b.ReportMetric(float64(rep.PeakConcurrent), "peak_concurrent")
	b.ReportMetric(float64(rep.SetupP50.Milliseconds()), "setup_p50_ms")
	b.ReportMetric(float64(rep.SetupP99.Milliseconds()), "setup_p99_ms")
	b.ReportMetric(rep.MOSP10, "mos_p10")
	b.ReportMetric(rep.MOSP50, "mos_p50")
	// Inter-gateway datagrams on the Internet during the workload: the
	// trunked/untrunked ratio of this metric is the packet-rate reduction.
	b.ReportMetric(float64(rep.InternetDataFrames), "inet_data_frames")
	if trunked && rep.Trunk.FramesSent > 0 {
		b.ReportMetric(
			float64(rep.Trunk.PayloadsBatched)/float64(rep.Trunk.FramesSent),
			"payloads/trunkframe")
	}
}
