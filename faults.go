package siphoc

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"siphoc/internal/netem"
)

// FaultScenario couples a Scenario with a deterministic netem.FaultPlan and
// adds the scenario-level faults the raw plan cannot express: node crashes
// and restarts (which also drive the SLP cache-invalidation hook on every
// surviving node) and gateway churn (a gateway node crash is exactly that).
// After the plan has run, CheckInvariants asserts the recovery contract:
// every injected fault executed, every tracked call either recovered
// (established/ended) or failed with a terminal error — none stuck past the
// deadline — and every call trace still tiles its setup window exactly.
//
// Build the plan first (Plan, CrashNode, RestartNode, Track), then Run and
// Wait, then CheckInvariants. The builder is not safe for concurrent use
// with Run.
type FaultScenario struct {
	sc   *Scenario
	plan *netem.FaultPlan

	mu      sync.Mutex
	tracked []*Call
	errs    []error
}

// NewFaultScenario wraps sc with a fault plan seeded with seed, scheduled on
// the scenario's clock and traced by its observer.
func NewFaultScenario(sc *Scenario, seed int64) *FaultScenario {
	return &FaultScenario{
		sc:   sc,
		plan: netem.NewFaultPlan(sc.Network(), netem.FaultPlanConfig{Seed: seed, Obs: sc.obs}),
	}
}

// Scenario returns the wrapped deployment.
func (f *FaultScenario) Scenario() *Scenario { return f.sc }

// Plan exposes the underlying netem plan for link-level faults (cuts,
// degradation, partitions, random flaps).
func (f *FaultScenario) Plan() *netem.FaultPlan { return f.plan }

// CrashNode schedules a hard node crash at offset: the node's services stop,
// it disappears from the radio, and every surviving node's SLP cache drops
// the adverts the dead node originated — the fault-event invalidation hook,
// so calls don't chase stale bindings until natural TTL expiry.
func (f *FaultScenario) CrashNode(offset time.Duration, id NodeID) *FaultScenario {
	f.plan.At(offset, "crash node "+string(id), func() {
		f.sc.RemoveNode(id)
		for _, n := range f.sc.Nodes() {
			n.SLP().InvalidateOrigin(id)
		}
	})
	return f
}

// RestartNode schedules a node (re)start at offset — typically the recovery
// half of a CrashNode, or a replacement gateway appearing. Startup errors
// are collected and surfaced by CheckInvariants.
func (f *FaultScenario) RestartNode(offset time.Duration, id NodeID, pos Position, opts ...NodeOption) *FaultScenario {
	f.plan.At(offset, "restart node "+string(id), func() {
		if _, err := f.sc.AddNode(id, pos, opts...); err != nil {
			f.mu.Lock()
			f.errs = append(f.errs, fmt.Errorf("restart %s: %w", id, err))
			f.mu.Unlock()
		}
	})
	return f
}

// Track registers calls whose outcome CheckInvariants must account for.
func (f *FaultScenario) Track(calls ...*Call) *FaultScenario {
	f.mu.Lock()
	f.tracked = append(f.tracked, calls...)
	f.mu.Unlock()
	return f
}

// Run starts executing the plan; see netem.FaultPlan.Run.
func (f *FaultScenario) Run() error { return f.plan.Run() }

// Wait blocks until every scheduled fault has been injected.
func (f *FaultScenario) Wait() { f.plan.Wait() }

// Stop cancels outstanding faults.
func (f *FaultScenario) Stop() { f.plan.Stop() }

// Log returns the executed-fault log; on a fake clock the log of a seeded
// plan is bit-identical across runs.
func (f *FaultScenario) Log() []netem.FaultRecord { return f.plan.Log() }

// CheckInvariants verifies the recovery contract after the plan has run:
//
//   - every scheduled fault was injected (the plan was not stopped short)
//     and no scheduled callback (RestartNode) failed;
//   - within settle, every tracked call leaves the transient setup states:
//     it is established, cleanly ended, or failed with a terminal status —
//     a call still ringing past the deadline is stuck and fails the check;
//   - every tracked call's trace still tiles its setup window exactly
//     (the phase breakdown sums to the setup duration), so fault spans did
//     not corrupt the timeline accounting of internal/obs.
//
// Goroutine hygiene is the caller's half: capture runtime.NumGoroutine()
// before building the scenario and call SettleGoroutines after Close.
func (f *FaultScenario) CheckInvariants(settle time.Duration) error {
	if got, want := len(f.plan.Log()), f.plan.Len(); got != want {
		return fmt.Errorf("siphoc: %d of %d scheduled faults injected", got, want)
	}
	f.mu.Lock()
	errs := append([]error(nil), f.errs...)
	tracked := append([]*Call(nil), f.tracked...)
	f.mu.Unlock()
	if len(errs) > 0 {
		return fmt.Errorf("siphoc: fault callbacks failed: %v", errs)
	}

	deadline := f.sc.clk.Now().Add(settle)
	for _, c := range tracked {
		for {
			st := c.State()
			if st == CallEstablished || st == CallEnded || st == CallFailed {
				break
			}
			if f.sc.clk.Now().After(deadline) {
				return fmt.Errorf("siphoc: call %s stuck in state %v past deadline", c.ID(), st)
			}
			f.sc.clk.Sleep(10 * time.Millisecond)
		}
	}
	for _, c := range tracked {
		tr := c.Trace()
		if tr.Empty() {
			continue
		}
		if _, _, ok := tr.Window(); !ok {
			continue // setup never completed (terminal failure): no window to tile
		}
		var sum time.Duration
		for _, ph := range tr.SetupBreakdown() {
			sum += ph.Duration
		}
		if sum != tr.SetupDuration() {
			return fmt.Errorf("siphoc: call %s trace not tile-complete: phases sum to %v, setup window %v",
				c.ID(), sum, tr.SetupDuration())
		}
	}
	return nil
}

// SettleGoroutines waits (in wall-clock time — goroutine exit is a runtime
// matter, not a simulated-clock one) until the process goroutine count drops
// to baseline+slack, returning an error listing the leak size if it never
// does. Fault tests capture the baseline before building a scenario and call
// this after tearing it down to prove fault handling leaks nothing.
func SettleGoroutines(baseline, slack int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	n := runtime.NumGoroutine()
	for {
		if n <= baseline+slack {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("siphoc: %d goroutines leaked (%d running, baseline %d+%d)",
				n-baseline-slack, n, baseline, slack)
		}
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
}
