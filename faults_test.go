package siphoc

import (
	"runtime"
	"testing"
	"time"
)

// Scenario-level fault matrix: every case builds a live call mesh, runs a
// seeded FaultScenario against it, and then holds the harness to its own
// contract — CheckInvariants (faults all injected, no stuck calls, traces
// tile-complete) plus a zero-goroutine-leak check after teardown.

// establishCall dials bob from alice and returns both call legs established.
func establishCall(t *testing.T, alice, bob *Phone) (caller, callee *Call) {
	t.Helper()
	call, err := alice.Dial("bob@" + domain)
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(20 * time.Second); err != nil {
		t.Fatalf("call setup: %v", err)
	}
	select {
	case callee = <-bob.Incoming():
	case <-time.After(time.Second):
		t.Fatal("no callee leg")
	}
	return call, callee
}

// pumpUntilReceived keeps streaming short voice bursts until the callee's
// received-frame count exceeds floor, proving the media path works (again).
func pumpUntilReceived(t *testing.T, caller, callee *Call, floor int64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		caller.SendVoice(5)
		time.Sleep(100 * time.Millisecond)
		if callee.MediaStats().Received > floor {
			return
		}
	}
	t.Fatalf("media never recovered: received=%d, want >%d", callee.MediaStats().Received, floor)
}

func TestFaultMatrix(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, sc *Scenario, nodes []*Node, fs *FaultScenario)
	}{
		{
			// An established call survives a network partition that cuts the
			// caller off: media blackholes, the partition heals, AODV
			// re-discovers the path and the same session flows again.
			name: "mid-call partition heals",
			run: func(t *testing.T, sc *Scenario, nodes []*Node, fs *FaultScenario) {
				alice := registerPhone(t, nodes[0], "alice")
				bob := registerPhone(t, nodes[2], "bob")
				caller, callee := establishCall(t, alice, bob)
				fs.Track(caller)
				caller.SendVoice(5)
				time.Sleep(150 * time.Millisecond)
				before := callee.MediaStats().Received
				if before == 0 {
					t.Fatal("no media before the fault")
				}
				west := []NodeID{nodes[0].ID()}
				east := []NodeID{nodes[1].ID(), nodes[2].ID()}
				fs.Plan().
					Partition(50*time.Millisecond, west, east).
					HealPartition(650*time.Millisecond, west, east)
				if err := fs.Run(); err != nil {
					t.Fatal(err)
				}
				fs.Wait()
				pumpUntilReceived(t, caller, callee, before+5, 30*time.Second)
				if caller.State() != CallEstablished {
					t.Fatalf("call state after heal = %v", caller.State())
				}
			},
		},
		{
			// The only relay crashes mid-call and a replacement appears in
			// the same spot: the route re-forms through it and media
			// recovers without the session wedging.
			name: "relay crash then restart recovers media",
			run: func(t *testing.T, sc *Scenario, nodes []*Node, fs *FaultScenario) {
				alice := registerPhone(t, nodes[0], "alice")
				bob := registerPhone(t, nodes[2], "bob")
				caller, callee := establishCall(t, alice, bob)
				fs.Track(caller)
				caller.SendVoice(5)
				time.Sleep(150 * time.Millisecond)
				before := callee.MediaStats().Received
				if before == 0 {
					t.Fatal("no media before the fault")
				}
				fs.CrashNode(50*time.Millisecond, nodes[1].ID())
				fs.RestartNode(450*time.Millisecond, "10.0.0.99", Position{X: 90})
				if err := fs.Run(); err != nil {
					t.Fatal(err)
				}
				fs.Wait()
				pumpUntilReceived(t, caller, callee, before+5, 30*time.Second)
			},
		},
		{
			// The callee's node crashes; the invalidation hook purges its
			// SLP binding everywhere, so the next call fails fast with a
			// clean terminal status instead of chasing the stale advert
			// until a transaction timeout.
			name: "callee crash fails next call fast",
			run: func(t *testing.T, sc *Scenario, nodes []*Node, fs *FaultScenario) {
				alice := registerPhone(t, nodes[0], "alice")
				registerPhone(t, nodes[2], "bob")
				// Let the binding disseminate before the crash.
				if _, err := nodes[0].SLP().Lookup("sip", "bob@"+domain, 10*time.Second); err != nil {
					t.Fatal(err)
				}
				fs.CrashNode(10*time.Millisecond, nodes[2].ID())
				if err := fs.Run(); err != nil {
					t.Fatal(err)
				}
				fs.Wait()
				call, err := alice.Dial("bob@" + domain)
				if err != nil {
					t.Fatal(err)
				}
				fs.Track(call)
				if err := call.WaitEstablished(15 * time.Second); err == nil {
					t.Fatal("call to a crashed node established")
				}
				if call.State() != CallFailed {
					t.Fatalf("state = %v", call.State())
				}
				switch call.FailCode() {
				case 404, 408, 480, 500:
				default:
					t.Fatalf("unexpected fail code %d", call.FailCode())
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			sc, err := NewScenario(ScenarioConfig{})
			if err != nil {
				t.Fatal(err)
			}
			nodes, err := sc.Chain(3, 90)
			if err != nil {
				sc.Close()
				t.Fatal(err)
			}
			fs := NewFaultScenario(sc, 42)
			func() {
				defer fs.Stop()
				tc.run(t, sc, nodes, fs)
			}()
			if err := fs.CheckInvariants(10 * time.Second); err != nil {
				t.Error(err)
			}
			sc.Close()
			if err := SettleGoroutines(base, 0, 5*time.Second); err != nil {
				t.Error(err)
			}
		})
	}
}
