package siphoc_test

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMultiProcessDeployment is the deployment-mode proof at full fidelity:
// it builds the real binaries and runs a three-node MANET as separate OS
// processes on loopback UDP — a relay daemon plus two interactive
// softphones — then drives a complete call over their stdin/stdout. This is
// the in-repo equivalent of the paper's multi-laptop testbed.
func TestMultiProcessDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and spawns processes")
	}
	bin := t.TempDir()
	for _, tool := range []string{"siphocd", "softphone"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v: %s", tool, err, out)
		}
	}
	ports := freeUDPPorts(t, 3)
	addr := func(i int) string { return ports[i] }

	// Relay daemon in the middle.
	relay := exec.Command(filepath.Join(bin, "siphocd"),
		"-id", "10.0.0.2", "-listen", addr(1), "-fast", "-status", "0",
		"-peer", "10.0.0.1="+addr(0),
		"-peer", "10.0.0.3="+addr(2),
	)
	relayOut := startProc(t, relay, nil)
	waitForLine(t, relayOut, "node 10.0.0.2 up", 30*time.Second)

	// Bob's softphone, auto-answering.
	bobIn, bobOut := startPhone(t, bin, "bob", "10.0.0.3", addr(2), addr(1), true)
	// Alice's softphone.
	aliceIn, aliceOut := startPhone(t, bin, "alice", "10.0.0.1", addr(0), addr(1), false)

	// Register both (retrying while routes form).
	registerProc(t, bobIn, bobOut, "bob")
	registerProc(t, aliceIn, aliceOut, "alice")

	// Alice calls Bob across the relay.
	fmt.Fprintln(aliceIn, "call bob@voicehoc.ch")
	waitForLine(t, aliceOut, "call established", 30*time.Second)

	// Tear down and quit cleanly.
	fmt.Fprintln(aliceIn, "hangup")
	waitForLine(t, aliceOut, "call ended", 15*time.Second)
	fmt.Fprintln(aliceIn, "quit")
	fmt.Fprintln(bobIn, "quit")
}

func startPhone(t *testing.T, bin, user, id, listen, peerAddr string, auto bool) (io.Writer, *procOutput) {
	t.Helper()
	args := []string{
		"-id", id, "-listen", listen, "-user", user,
		"-peer", "10.0.0.2=" + peerAddr,
	}
	if auto {
		args = append(args, "-autoanswer")
	}
	cmd := exec.Command(filepath.Join(bin, "softphone"), args...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	out := startProc(t, cmd, stdin)
	waitForLine(t, out, "softphone: "+user+"@", 30*time.Second)
	return stdin, out
}

func registerProc(t *testing.T, in io.Writer, out *procOutput, user string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		fmt.Fprintln(in, "register")
		if out.waitFor("registered "+user+"@", 2*time.Second) {
			return
		}
	}
	t.Fatalf("%s never registered; output:\n%s", user, out.dump())
}

// procOutput tails a process's combined output.
type procOutput struct {
	mu    sync.Mutex
	lines []string
}

func (p *procOutput) append(line string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lines = append(p.lines, line)
}

func (p *procOutput) contains(substr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, l := range p.lines {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

func (p *procOutput) waitFor(substr string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if p.contains(substr) {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

func (p *procOutput) dump() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.lines, "\n")
}

// startProc launches cmd, tails its output, and arranges cleanup. stdin is
// closed at cleanup when provided.
func startProc(t *testing.T, cmd *exec.Cmd, stdin io.Closer) *procOutput {
	t.Helper()
	out := &procOutput{}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			out.append(sc.Text())
		}
	}()
	t.Cleanup(func() {
		if stdin != nil {
			stdin.Close()
		}
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() {
			_ = cmd.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	})
	return out
}

func waitForLine(t *testing.T, out *procOutput, substr string, timeout time.Duration) {
	t.Helper()
	if !out.waitFor(substr, timeout) {
		t.Fatalf("never saw %q; output:\n%s", substr, out.dump())
	}
}

func freeUDPPorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	conns := make([]net.PacketConn, 0, n)
	for range n {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, pc)
		addrs = append(addrs, pc.LocalAddr().String())
	}
	for _, pc := range conns {
		pc.Close()
	}
	return addrs
}
