package siphoc

import (
	"testing"
	"time"

	"siphoc/internal/netem"
)

// Failure-injection tests: the behaviours the paper's emergency-response
// motivation depends on but its evaluation never stresses.

// TestCallSurvivesPacketLoss runs the Figure-3 flow over a 15%-loss radio:
// SIP retransmissions must still complete the call, and media quality must
// degrade (lower MOS) rather than collapse.
func TestCallSurvivesPacketLoss(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{
		Radio: netem.Config{LossRate: 0.15, Seed: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	nodes, err := sc.Chain(3, 90)
	if err != nil {
		t.Fatal(err)
	}
	alice := registerPhone(t, nodes[0], "alice")
	bob := registerPhone(t, nodes[2], "bob")
	call, err := alice.Dial("bob@" + domain)
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(30 * time.Second); err != nil {
		t.Fatalf("call over lossy radio: %v", err)
	}
	const frames = 100
	call.SendVoice(frames)
	time.Sleep(300 * time.Millisecond)
	var bobCall *Call
	select {
	case bobCall = <-bob.Incoming():
	case <-time.After(time.Second):
		t.Fatal("no callee leg")
	}
	st := bobCall.MediaStats()
	if st.Received == 0 {
		t.Fatal("no media survived the loss")
	}
	// Per-hop loss 15% over 2 hops ≈ 28% end to end; allow slack but the
	// stream must be visibly degraded and non-empty.
	if st.LossRate == 0 {
		t.Fatalf("loss rate 0 on a lossy network: %+v", st)
	}
	if st.MOS >= 4.3 {
		t.Fatalf("MOS %f did not degrade under loss", st.MOS)
	}
	if st.MOS < 1 {
		t.Fatalf("MOS out of range: %f", st.MOS)
	}
	_ = call.Hangup()
}

// TestCalleeNodeDiesMidSetup kills the callee's node right after dialing:
// the caller must get a clean failure, not a hang.
func TestCalleeNodeDiesMidSetup(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	nodes, err := sc.Chain(3, 90)
	if err != nil {
		t.Fatal(err)
	}
	alice := registerPhone(t, nodes[0], "alice")
	registerPhone(t, nodes[2], "bob")
	// Wait until the binding has disseminated, then kill Bob's node.
	if _, err := nodes[0].SLP().Lookup("sip", "bob@"+domain, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	sc.RemoveNode(nodes[2].ID())
	call, err := alice.Dial("bob@" + domain)
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(30 * time.Second); err == nil {
		t.Fatal("call to a dead node established")
	}
	if call.State() != CallFailed {
		t.Fatalf("state = %v", call.State())
	}
	// 408 (transaction timeout) or 404/480 depending on where it died.
	switch call.FailCode() {
	case 404, 408, 480, 500:
	default:
		t.Fatalf("unexpected fail code %d", call.FailCode())
	}
}

// TestRelayDiesMidCallMediaRecovers kills the only relay of an established
// call; once a replacement relay appears, AODV re-discovers the path and
// media flows again.
func TestRelayDiesMidCallMediaRecovers(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	nodes, err := sc.Chain(3, 90)
	if err != nil {
		t.Fatal(err)
	}
	alice := registerPhone(t, nodes[0], "alice")
	bob := registerPhone(t, nodes[2], "bob")
	call, err := alice.Dial("bob@" + domain)
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	var bobCall *Call
	select {
	case bobCall = <-bob.Incoming():
	case <-time.After(time.Second):
		t.Fatal("no callee leg")
	}
	call.SendVoice(10)
	time.Sleep(200 * time.Millisecond)
	before := bobCall.MediaStats().Received
	if before == 0 {
		t.Fatal("no media before the failure")
	}
	// Kill the relay; voice now blackholes.
	sc.RemoveNode(nodes[1].ID())
	time.Sleep(100 * time.Millisecond)
	call.SendVoice(5)
	// Bring up a replacement relay in the same spot.
	if _, err := sc.AddNode("10.0.0.99", Position{X: 90}); err != nil {
		t.Fatal(err)
	}
	// Give AODV time to notice the broken link and keep streaming; the
	// route re-forms through the new relay.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		call.SendVoice(5)
		time.Sleep(100 * time.Millisecond)
		if bobCall.MediaStats().Received > before+5 {
			return // media flows again
		}
	}
	t.Fatalf("media never recovered: before=%d after=%d", before, bobCall.MediaStats().Received)
}

// TestSLPStaleBindingAfterNodeDeath: when a registered user's node dies,
// other caches keep the stale binding until its TTL; calls fail cleanly in
// the meantime and the advert eventually expires.
func TestSLPStaleBindingExpires(t *testing.T) {
	slpCfg := &struct{}{}
	_ = slpCfg
	sc, err := NewScenario(ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	nodes, err := sc.Chain(2, 80)
	if err != nil {
		t.Fatal(err)
	}
	registerPhone(t, nodes[1], "bob")
	if _, err := nodes[0].SLP().Lookup("sip", "bob@"+domain, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	sc.RemoveNode(nodes[1].ID())
	// The stale entry is still cached (TTL 30s) — a call fails with a
	// transaction timeout rather than hanging.
	alice := registerPhone(t, nodes[0], "alice")
	call, err := alice.Dial("bob@" + domain)
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(30 * time.Second); err == nil {
		t.Fatal("call via stale binding established")
	}
}
