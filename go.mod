module siphoc

go 1.24
