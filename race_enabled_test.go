//go:build race

package siphoc_test

// raceEnabled reports whether this binary was built with -race. The race
// detector multiplies CPU cost several-fold, which matters to tests whose
// assertions depend on the machine keeping a real-time protocol cadence.
const raceEnabled = true
