package siphoc

import (
	"testing"
	"time"
)

func TestScenarioErrorPaths(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.AddNode("n1", Position{}); err != nil {
		t.Fatal(err)
	}
	// Duplicate node ID.
	if _, err := sc.AddNode("n1", Position{}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	// Gateway without an Internet.
	if _, err := sc.AddNode("gw", Position{}, WithGateway()); err == nil {
		t.Fatal("gateway without Internet accepted")
	}
	// Provider without an Internet.
	if _, err := sc.AddProvider(ProviderConfig{Domain: "x.ch"}); err == nil {
		t.Fatal("provider without Internet accepted")
	}
	// Internet phone without an Internet.
	if _, err := sc.AddInternetPhone("u", "x.ch", "h"); err == nil {
		t.Fatal("internet phone without Internet accepted")
	}
	// Unknown routing kind.
	if _, err := sc.AddNode("n2", Position{}, WithRouting(RoutingKind(99))); err == nil {
		t.Fatal("unknown routing kind accepted")
	}
}

func TestScenarioNodeAccessors(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{Routing: RoutingOLSR})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	n, err := sc.AddNode("10.0.0.1", Position{X: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Node("10.0.0.1") != n {
		t.Fatal("Node lookup mismatch")
	}
	if sc.Node("ghost") != nil {
		t.Fatal("ghost node found")
	}
	if got := sc.Nodes(); len(got) != 1 || got[0] != n {
		t.Fatalf("Nodes() = %v", got)
	}
	if n.ID() != "10.0.0.1" || n.RoutingName() != "OLSR" {
		t.Fatalf("accessors: id=%v routing=%v", n.ID(), n.RoutingName())
	}
	if n.Gateway() != nil {
		t.Fatal("non-gateway has a Gateway Provider")
	}
	if n.ConnectionProvider() == nil {
		t.Fatal("node lacks a Connection Provider")
	}
	if n.InternetAttached() {
		t.Fatal("isolated node claims Internet attachment")
	}
	if n.Host() == nil || n.SLP() == nil || n.Proxy() == nil || n.Routing() == nil {
		t.Fatal("nil component accessor")
	}
}

func TestScenarioRemoveNodeAndClose(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := sc.AddNode("x", Position{})
	if err != nil {
		t.Fatal(err)
	}
	_ = n
	sc.RemoveNode("x")
	if sc.Node("x") != nil {
		t.Fatal("removed node still present")
	}
	sc.RemoveNode("x") // idempotent
	sc.Close()
	sc.Close() // idempotent
	if _, err := sc.AddNode("y", Position{}); err == nil {
		t.Fatal("AddNode after Close accepted")
	}
}

func TestWithoutConnectionProviderOption(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	n, err := sc.AddNode("iso", Position{}, WithoutConnectionProvider())
	if err != nil {
		t.Fatal(err)
	}
	if n.ConnectionProvider() != nil {
		t.Fatal("connection provider present despite option")
	}
}

func TestTimeScaleStretchesTimers(t *testing.T) {
	// A scenario with TimeScale 3 must still complete a call (the scale
	// multiplies protocol timers uniformly).
	sc, err := NewScenario(ScenarioConfig{TimeScale: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	nodes, err := sc.Chain(2, 80)
	if err != nil {
		t.Fatal(err)
	}
	alice := registerPhone(t, nodes[0], "alice")
	registerPhone(t, nodes[1], "bob")
	call, err := alice.Dial("bob@" + domain)
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	_ = call.Hangup()
}

func TestRoutingKindString(t *testing.T) {
	if RoutingAODV.String() != "AODV" || RoutingOLSR.String() != "OLSR" {
		t.Fatal("routing names wrong")
	}
	if RoutingKind(9).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
}
