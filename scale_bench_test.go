// Control-plane scale study: the paper defers "how does the system behave as
// the number of nodes grows" (§6); BenchmarkControlScale answers it on square
// OLSR grids from 25 to 400 nodes, measuring bring-up time, corner-to-corner
// convergence time, steady-state recomputes per node, and steady-state
// allocation rate. Run via `make bench` (-benchtime 1x), committed as
// BENCH_scale.json.
package siphoc_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"siphoc"
	"siphoc/internal/netem"
	"siphoc/internal/routing/olsr"
)

// controlScaleOLSR returns OLSR timing scaled to the node count. The TC flood
// volume grows O(N²) with the node count at fixed intervals, so a fixed
// 40 ms HELLO beat saturates the machine long before 400 nodes — timers then
// slip past the hold times and links flap, which is genuine protocol
// behaviour under CPU starvation, not measurement noise. Real deployments
// tune intervals to network size (RFC 3626 defaults to 2 s HELLO / 5 s TC);
// this scales linearly between the simulation beat and the RFC one.
func controlScaleOLSR(nodes int) olsr.Config {
	hello := time.Duration(nodes) * 2500 * time.Microsecond
	if hello < 40*time.Millisecond {
		hello = 40 * time.Millisecond
	}
	// A 20×20 grid has a 38-hop diameter and a 32×32 one 62; the default
	// MaxTTL 32 would truncate corner-to-corner TC flooding.
	ttl := uint8(64)
	if nodes > 20*20 {
		ttl = 96
	}
	// Fisheye scoping scaled to the grid: a full-TTL flood costs O(N)
	// forwards, so the sustainable far rate shrinks as the grid grows.
	// Every 4th round at near-TTL 8 is fine to 400 nodes; at 1024 the far
	// floods are stretched to every 8th round and the near zone shrinks to
	// TTL 4 — worst-case convergence is one far period (the per-node phase
	// stagger spreads the floods evenly across rounds), and the near-zone
	// cut funds that cadence inside one core's forwarding budget. (Every
	// 6th round was tried and is worse: the extra full floods sit past the
	// core's saturation edge, and the backlog they build delays convergence
	// more than the faster far cadence gains.)
	far, near := 4, uint8(8)
	// NeighborHold defaults to 3×HELLO: a node may miss two beats before
	// its links drop. During 1024-node bring-up the flood backlog delays
	// HELLO timers by more than that, and once links expire the network
	// melts down (selectors empty, TC emission stops, every reformation
	// triggers a recompute that deepens the backlog). Five beats of slack
	// rides out the transient; link-death detection slows accordingly,
	// which a static scale study never notices.
	hold := time.Duration(0) // 0 = default 3×HELLO
	if nodes > 20*20 {
		far, near = 8, 4
		hold = 5 * hello
	}
	return olsr.Config{
		HelloInterval:   hello,
		TCInterval:      hello * 5 / 2,
		NeighborHold:    hold,
		MaxTTL:          ttl,
		RouteWait:       2 * time.Minute,
		Fisheye:         true,
		FisheyeNearTTL:  near,
		FisheyeFarEvery: far,
	}
}

// controlScaleScenario builds the scale-study deployment on the event-loop
// core: the goroutine-per-timer core dies of scheduler overload near 20×20
// (see EXPERIMENTS.md), so the scale study runs on the sharded scheduler.
func controlScaleScenario(side int) (*siphoc.Scenario, error) {
	cfg := controlScaleOLSR(side * side)
	return siphoc.NewScenarioWith(
		siphoc.WithOLSR(&cfg),
		siphoc.WithoutObservability(),
		siphoc.WithEventLoop(),
	)
}

// waitNextHop polls until the protocol has a route to dst.
func waitNextHop(p *olsr.Protocol, dst netem.NodeID, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if _, ok := p.NextHop(dst); ok {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("no route to %s within %v", dst, timeout)
}

// sumRecomputes totals executed route rebuilds across the grid.
func sumRecomputes(nodes []*siphoc.Node) int64 {
	var n int64
	for _, nd := range nodes {
		n += nd.Routing().(*olsr.Protocol).Stats().Recompute
	}
	return n
}

func BenchmarkControlScale(b *testing.B) {
	sides := []int{5, 10, 15, 20, 32}
	if testing.Short() {
		sides = []int{5, 10}
	}
	for _, side := range sides {
		b.Run(fmt.Sprintf("grid_%dx%d", side, side), func(b *testing.B) {
			for b.Loop() {
				runControlScalePoint(b, side)
			}
		})
	}
}

func runControlScalePoint(b *testing.B, side int) {
	sc, err := controlScaleScenario(side)
	if err != nil {
		b.Fatal(err)
	}
	defer sc.Close()

	// GC pressure is measured across the whole point (bring-up +
	// convergence + steady window): that is where the routing core's
	// allocation shape shows up as collector work.
	var msStart runtime.MemStats
	runtime.ReadMemStats(&msStart)

	t0 := time.Now()
	nodes, err := sc.Grid(side, side, 80, siphoc.WithoutConnectionProvider())
	if err != nil {
		b.Fatal(err)
	}
	bringup := time.Since(t0)

	// Convergence: both far corners can route to each other, i.e. topology
	// information crossed the full grid diameter in both directions.
	first := nodes[0].Routing().(*olsr.Protocol)
	last := nodes[len(nodes)-1].Routing().(*olsr.Protocol)
	t1 := time.Now()
	if err := waitNextHop(first, nodes[len(nodes)-1].ID(), 4*time.Minute); err != nil {
		b.Fatal(err)
	}
	if err := waitNextHop(last, nodes[0].ID(), 4*time.Minute); err != nil {
		b.Fatal(err)
	}
	convergence := time.Since(t1)

	// Steady state: drain a full fisheye far period plus slack before
	// measuring. Corner-to-corner routes come up well before every node has
	// heard every origin's staggered full-TTL flood, and each late far
	// flood still delivers first-seen topology — genuine changes, not
	// steady state. Only after one far period is every arrival a pure
	// refresh and recomputes track topology changes (≈0), not messages.
	cfg := controlScaleOLSR(side * side)
	tc := cfg.TCInterval
	drain := 2 * tc
	if cfg.Fisheye {
		drain += time.Duration(cfg.FisheyeFarEvery) * tc
	}
	time.Sleep(drain)
	window := 2 * tc
	recBefore := sumRecomputes(nodes)
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	time.Sleep(window)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	rec := sumRecomputes(nodes) - recBefore
	allocs := float64(msAfter.Mallocs - msBefore.Mallocs)

	n := float64(side * side)
	b.ReportMetric(float64(bringup.Milliseconds()), "bringup_ms")
	b.ReportMetric(float64(convergence.Milliseconds()), "convergence_ms")
	b.ReportMetric(float64(rec)/n, "recomputes/node")
	b.ReportMetric(allocs/n/window.Seconds(), "allocs/node/s")
	// Memory-pressure telemetry for BENCH_scale.json: live heap at the end
	// of the steady window, plus collector cycles and stop-the-world pause
	// accumulated over the whole point. These are what regress first when
	// routing state grows GC-visible pointers or per-rebuild minting creeps
	// back in — cmd/benchcmp guards them alongside convergence_ms.
	b.ReportMetric(float64(msAfter.HeapAlloc)/(1<<20), "heap_alloc_mb")
	b.ReportMetric(float64(msAfter.NumGC-msStart.NumGC), "gc_cycles")
	b.ReportMetric(float64(msAfter.PauseTotalNs-msStart.PauseTotalNs)/1e6, "gc_pause_ms")
}

// TestControlScaleSmoke is the `make check` scale gate, now at the size
// that killed the goroutine core: a 32×32 (1024-node) OLSR grid on the
// event-loop core must bring up in parallel, converge corner to corner,
// keep the post-bring-up goroutine count O(shards) — not O(N) — and hold
// the incremental-recompute bound (steady-state rebuilds stay O(topology
// changes), not O(control messages)).
//
// Under -short or -race the grid shrinks to the pre-event-loop gate size
// (10×10 at the seed's relaxed cadence): the race detector multiplies CPU
// cost several-fold, and a 1024-node control plane saturates a small
// machine already without it — timers would slip past hold times and the
// links would genuinely flap, failing the test for reasons that are about
// the host, not the code. The small variant still runs the identical
// event-loop core and assertions.
func TestControlScaleSmoke(t *testing.T) {
	side := 32
	cfg := controlScaleOLSR(side * side)
	if testing.Short() || raceEnabled {
		side = 10
		cfg = controlScaleOLSR(side * side)
		cfg.HelloInterval = 500 * time.Millisecond
		cfg.TCInterval = 1250 * time.Millisecond
	}
	baseline := runtime.NumGoroutine()
	sc, err := siphoc.NewScenarioWith(
		siphoc.WithOLSR(&cfg),
		siphoc.WithoutObservability(),
		siphoc.WithEventLoop(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	nodes, err := sc.Grid(side, side, 80, siphoc.WithoutConnectionProvider())
	if err != nil {
		t.Fatal(err)
	}

	// The event-loop resource claim: 1024 nodes must not cost 1024×k
	// goroutines. The budget covers the delivery shards, the scheduler
	// workers and a little transient slack — with the goroutine core this
	// number would be ~7000.
	if g := runtime.NumGoroutine(); g > baseline+64 {
		t.Errorf("post-bring-up goroutines = %d (baseline %d) for %d nodes; want O(shards)",
			g, baseline, len(nodes))
	}

	first := nodes[0].Routing().(*olsr.Protocol)
	last := nodes[len(nodes)-1].Routing().(*olsr.Protocol)
	if err := waitNextHop(first, nodes[len(nodes)-1].ID(), 4*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := waitNextHop(last, nodes[0].ID(), 4*time.Minute); err != nil {
		t.Fatal(err)
	}

	// Drain trailing rebuilds — including one full fisheye far period, so
	// late staggered full-TTL floods finish delivering first-seen topology
	// — then require near-zero recomputes over a measurement window on the
	// static converged grid.
	tc := cfg.TCInterval
	drain := 2 * tc
	if cfg.Fisheye {
		drain += time.Duration(cfg.FisheyeFarEvery) * tc
	}
	time.Sleep(drain)
	before := sumRecomputes(nodes)
	window := 2 * tc
	time.Sleep(window)
	rec := sumRecomputes(nodes) - before
	if max := int64(3 * len(nodes)); rec > max {
		t.Fatalf("steady-state recomputes = %d over %v for %d nodes (want ≤ %d): O(messages), not O(changes)",
			rec, window, len(nodes), max)
	}
}
