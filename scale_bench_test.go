// Control-plane scale study: the paper defers "how does the system behave as
// the number of nodes grows" (§6); BenchmarkControlScale answers it on square
// OLSR grids from 25 to 400 nodes, measuring bring-up time, corner-to-corner
// convergence time, steady-state recomputes per node, and steady-state
// allocation rate. Run via `make bench` (-benchtime 1x), committed as
// BENCH_scale.json.
package siphoc_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"siphoc"
	"siphoc/internal/netem"
	"siphoc/internal/routing/olsr"
)

// controlScaleOLSR returns OLSR timing scaled to the node count. The TC flood
// volume grows O(N²) with the node count at fixed intervals, so a fixed
// 40 ms HELLO beat saturates the machine long before 400 nodes — timers then
// slip past the hold times and links flap, which is genuine protocol
// behaviour under CPU starvation, not measurement noise. Real deployments
// tune intervals to network size (RFC 3626 defaults to 2 s HELLO / 5 s TC);
// this scales linearly between the simulation beat and the RFC one.
func controlScaleOLSR(nodes int) olsr.Config {
	hello := time.Duration(nodes) * 2500 * time.Microsecond
	if hello < 40*time.Millisecond {
		hello = 40 * time.Millisecond
	}
	return olsr.Config{
		HelloInterval: hello,
		TCInterval:    hello * 5 / 2,
		// A 20×20 grid has a 38-hop diameter; the default MaxTTL 32
		// would truncate corner-to-corner TC flooding.
		MaxTTL:    64,
		RouteWait: 2 * time.Minute,
	}
}

func controlScaleScenario(side int) (*siphoc.Scenario, error) {
	cfg := controlScaleOLSR(side * side)
	return siphoc.NewScenario(siphoc.ScenarioConfig{
		Routing:         siphoc.RoutingOLSR,
		OLSR:            &cfg,
		NoObservability: true,
	})
}

// waitNextHop polls until the protocol has a route to dst.
func waitNextHop(p *olsr.Protocol, dst netem.NodeID, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if _, ok := p.NextHop(dst); ok {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("no route to %s within %v", dst, timeout)
}

// sumRecomputes totals executed route rebuilds across the grid.
func sumRecomputes(nodes []*siphoc.Node) int64 {
	var n int64
	for _, nd := range nodes {
		n += nd.Routing().(*olsr.Protocol).Stats().Recompute
	}
	return n
}

func BenchmarkControlScale(b *testing.B) {
	sides := []int{5, 10, 15, 20}
	if testing.Short() {
		sides = []int{5, 10}
	}
	for _, side := range sides {
		b.Run(fmt.Sprintf("grid_%dx%d", side, side), func(b *testing.B) {
			for b.Loop() {
				runControlScalePoint(b, side)
			}
		})
	}
}

func runControlScalePoint(b *testing.B, side int) {
	sc, err := controlScaleScenario(side)
	if err != nil {
		b.Fatal(err)
	}
	defer sc.Close()

	t0 := time.Now()
	nodes, err := sc.Grid(side, side, 80, siphoc.WithoutConnectionProvider())
	if err != nil {
		b.Fatal(err)
	}
	bringup := time.Since(t0)

	// Convergence: both far corners can route to each other, i.e. topology
	// information crossed the full grid diameter in both directions.
	first := nodes[0].Routing().(*olsr.Protocol)
	last := nodes[len(nodes)-1].Routing().(*olsr.Protocol)
	t1 := time.Now()
	if err := waitNextHop(first, nodes[len(nodes)-1].ID(), 2*time.Minute); err != nil {
		b.Fatal(err)
	}
	if err := waitNextHop(last, nodes[0].ID(), 2*time.Minute); err != nil {
		b.Fatal(err)
	}
	convergence := time.Since(t1)

	// Steady state: let trailing rebuilds drain for a couple of TC rounds,
	// then measure a window. On a static converged grid every HELLO/TC is a
	// pure refresh, so executed recomputes track topology changes (≈0), not
	// message arrivals.
	tc := controlScaleOLSR(side * side).TCInterval
	time.Sleep(2 * tc)
	window := 2 * tc
	recBefore := sumRecomputes(nodes)
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	time.Sleep(window)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	rec := sumRecomputes(nodes) - recBefore
	allocs := float64(msAfter.Mallocs - msBefore.Mallocs)

	n := float64(side * side)
	b.ReportMetric(float64(bringup.Milliseconds()), "bringup_ms")
	b.ReportMetric(float64(convergence.Milliseconds()), "convergence_ms")
	b.ReportMetric(float64(rec)/n, "recomputes/node")
	b.ReportMetric(allocs/n/window.Seconds(), "allocs/node/s")
}

// TestControlScaleSmoke is the `make check` scale gate: a 10×10 OLSR grid
// must bring up in parallel, converge corner to corner, and hold the
// incremental-recompute bound — steady-state rebuilds stay O(topology
// changes), not O(control messages). Timing leaves headroom for -race.
func TestControlScaleSmoke(t *testing.T) {
	const side = 10
	cfg := olsr.Config{
		HelloInterval: 500 * time.Millisecond,
		TCInterval:    1250 * time.Millisecond,
		MaxTTL:        64,
		RouteWait:     time.Minute,
	}
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{
		Routing:         siphoc.RoutingOLSR,
		OLSR:            &cfg,
		NoObservability: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	nodes, err := sc.Grid(side, side, 80, siphoc.WithoutConnectionProvider())
	if err != nil {
		t.Fatal(err)
	}
	first := nodes[0].Routing().(*olsr.Protocol)
	last := nodes[len(nodes)-1].Routing().(*olsr.Protocol)
	if err := waitNextHop(first, nodes[len(nodes)-1].ID(), time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := waitNextHop(last, nodes[0].ID(), time.Minute); err != nil {
		t.Fatal(err)
	}

	// Drain trailing rebuilds, then require near-zero recomputes over a
	// measurement window on the static converged grid.
	time.Sleep(2 * cfg.TCInterval)
	before := sumRecomputes(nodes)
	window := 2 * cfg.TCInterval
	time.Sleep(window)
	rec := sumRecomputes(nodes) - before
	if max := int64(3 * len(nodes)); rec > max {
		t.Fatalf("steady-state recomputes = %d over %v for %d nodes (want ≤ %d): O(messages), not O(changes)",
			rec, window, len(nodes), max)
	}
}
