package siphoc

import (
	"fmt"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/internet"
	"siphoc/internal/netem"
	"siphoc/internal/obs"
	"siphoc/internal/overlay"
	"siphoc/internal/rtp"
	"siphoc/internal/sip"
)

// FederationConfig sizes a multi-MANET federation: K islands, each its own
// radio medium with M gateway nodes, joined only through one simulated
// Internet that also carries the sharded provider tier.
type FederationConfig struct {
	// Islands is the number of MANET islands K (default 3).
	Islands int
	// GatewaysPerIsland is M, the Internet-bridging nodes per island
	// (default 2; they share the inter-gateway trunk load).
	GatewaysPerIsland int
	// ClientsPerIsland is the number of non-gateway nodes per island
	// (default 3); phones are hosted on these.
	ClientsPerIsland int
	// Shards is the provider pool's registrar shard count (default 2).
	Shards int
	// Domain is the federation's SIP domain (default "fed.example").
	// Every phone in every island registers user@Domain.
	Domain string
	// Spacing is the intra-island distance between neighbouring nodes in
	// metres (default 80, one radio hop at the default 100 m range).
	Spacing float64
	// InternetDelay is the Internet per-hop latency (0 keeps the 5 ms
	// default).
	InternetDelay time.Duration
	// Trunk enables gateway-side trunk multiplexing: concurrent RTP
	// streams crossing the same gateway pair collapse into one paced
	// inter-gateway flow.
	Trunk bool
	// Overlay stands up a P2P overlay registrar (the Kademlia DHT of
	// internal/overlay) on the simulated Internet and hands every island a
	// passive overlay client: proxies publish their registrations into the
	// DHT and resolve cross-island AORs through it *before* the DNS/provider
	// fallback — federation without a central registrar tier.
	Overlay bool
	// OverlayNodes is the number of full DHT nodes in the overlay tier
	// (default 8; only used when Overlay is set).
	OverlayNodes int
	// Routing selects each island's MANET routing protocol (default OLSR —
	// proactive routing keeps SLP caches warm across the island).
	Routing RoutingKind
	// TimeScale stretches protocol timers (default 1).
	TimeScale float64
	// Clock is the shared time source for every island, the Internet and
	// the media pacer (default the system clock).
	Clock clock.Clock
	// NoObservability disables the federation-wide observer.
	NoObservability bool
}

func (c FederationConfig) withDefaults() FederationConfig {
	if c.Islands == 0 {
		c.Islands = 3
	}
	if c.GatewaysPerIsland == 0 {
		c.GatewaysPerIsland = 2
	}
	if c.ClientsPerIsland == 0 {
		c.ClientsPerIsland = 3
	}
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.Domain == "" {
		c.Domain = "fed.example"
	}
	if c.Spacing == 0 {
		c.Spacing = 80
	}
	if c.Routing == 0 {
		c.Routing = RoutingOLSR
	}
	if c.Overlay && c.OverlayNodes == 0 {
		c.OverlayNodes = 8
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	return c
}

// FederationScenario wires K MANET islands × M gateways each × a sharded
// provider pool into one deployment. Every island is an ordinary Scenario
// built with WithFederation, so the whole per-island API (nodes, phones,
// faults, metrics) keeps working; the federation owns the shared pieces —
// clock, observer, simulated Internet, media pacer and the provider pool.
//
// Island i owns the address prefix "10.<i+1>.0": its nodes are
// "10.<i+1>.0.1" … with the gateways first. Calls between islands resolve
// through the pool (the SLP hop is cache-only on islands, so inter-island
// AORs fail over to DNS immediately) and their media crosses gateway
// tunnels — trunked into shared inter-gateway flows when Trunk is set.
type FederationScenario struct {
	cfg      FederationConfig
	clk      clock.Clock
	observer *obs.Observer
	inet     *internet.Internet
	pacer    *rtp.Pacer
	pool     *internet.ProviderPool
	islands  []*Scenario

	// P2P overlay registrar tier (nil unless cfg.Overlay): full DHT nodes
	// on Internet hosts, one passive client per island, and the shared
	// timer core they all run on.
	osched   *clock.Scheduler
	dht      []*overlay.Node
	oclients []*overlay.Node
}

// NewFederationScenario brings up the shared infrastructure, the provider
// pool and every island with its nodes. The returned federation is ready
// for WaitAttached/phone provisioning.
func NewFederationScenario(cfg FederationConfig) (*FederationScenario, error) {
	cfg = cfg.withDefaults()
	f := &FederationScenario{cfg: cfg, clk: cfg.Clock}
	if !cfg.NoObservability {
		f.observer = obs.New(cfg.Clock)
	}
	f.inet = internet.New(internet.Config{Delay: cfg.InternetDelay, Clock: cfg.Clock})
	f.pacer = rtp.NewPacer(cfg.Clock)

	sipCfg := sip.SimConfig()
	sipCfg.Clock = cfg.Clock
	pool, err := internet.NewProviderPool(f.inet, internet.PoolConfig{
		Domain: cfg.Domain,
		Shards: cfg.Shards,
		SIP:    sipCfg,
		Clock:  cfg.Clock,
		// Federation workloads run for minutes; the 60 s default would
		// expire bindings mid-ramp (island proxies and phones use the same
		// hour-long TTL — see newNode / NewPhoneWith).
		BindingTTL: time.Hour,
	})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("siphoc: federation provider pool: %w", err)
	}
	f.pool = pool

	if cfg.Overlay {
		if err := f.startOverlay(); err != nil {
			f.Close()
			return nil, err
		}
	}

	for i := range cfg.Islands {
		sc, err := f.addIsland(i)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.islands = append(f.islands, sc)
	}
	return f, nil
}

// IslandPrefix returns the address prefix owned by island i ("10.1.0" for
// island 0).
func (f *FederationScenario) IslandPrefix(i int) string {
	return fmt.Sprintf("10.%d.0", i+1)
}

// startOverlay brings up the DHT registrar tier on the simulated Internet:
// OverlayNodes full nodes bootstrapped off the first one, plus one passive
// client per island (it publishes and resolves for the island's proxies but
// stores nothing and stays out of the other nodes' k-buckets). The whole
// tier's timers run on one shared scheduler, so its goroutine count is
// independent of the overlay size.
func (f *FederationScenario) startOverlay() error {
	f.osched = clock.NewScheduler(f.cfg.Clock, 1)
	var boot []netem.NodeID
	newNode := func(id netem.NodeID, passive bool) (*overlay.Node, error) {
		host, err := f.inet.AddHost(id)
		if err != nil {
			return nil, fmt.Errorf("siphoc: overlay host %s: %w", id, err)
		}
		n, err := overlay.New(overlay.Config{
			Host:      host,
			Sched:     f.osched,
			Clock:     f.cfg.Clock,
			Bootstrap: boot,
			Passive:   passive,
			Obs:       f.observer,
		})
		if err != nil {
			return nil, fmt.Errorf("siphoc: overlay node %s: %w", id, err)
		}
		if err := n.Start(); err != nil {
			return nil, fmt.Errorf("siphoc: overlay node %s: %w", id, err)
		}
		return n, nil
	}
	for k := range f.cfg.OverlayNodes {
		id := netem.NodeID(fmt.Sprintf("dht-%d", k+1))
		n, err := newNode(id, false)
		if err != nil {
			return err
		}
		f.dht = append(f.dht, n)
		if k == 0 {
			boot = []netem.NodeID{id}
		}
	}
	for i := range f.cfg.Islands {
		c, err := newNode(netem.NodeID(fmt.Sprintf("dht-client-%d", i+1)), true)
		if err != nil {
			return err
		}
		f.oclients = append(f.oclients, c)
	}
	return nil
}

func (f *FederationScenario) addIsland(i int) (*Scenario, error) {
	prefix := f.IslandPrefix(i)
	opts := []ScenarioOption{
		WithFederation(f, prefix),
		WithRoutingKind(f.cfg.Routing),
	}
	if f.oclients != nil {
		opts = append(opts, WithOverlayDirectory(f.oclients[i]))
	}
	sc, err := NewScenarioWith(opts...)
	if err != nil {
		return nil, err
	}
	// One line of nodes per island, gateways first: a gateway is always
	// within a couple of hops, and the line exercises multihop media.
	total := f.cfg.GatewaysPerIsland + f.cfg.ClientsPerIsland
	specs := make([]nodeSpec, 0, total)
	for j := range total {
		specs = append(specs, nodeSpec{
			id:  NodeID(fmt.Sprintf("%s.%d", prefix, j+1)),
			pos: Position{X: float64(j) * f.cfg.Spacing, Y: float64(i) * 10_000},
		})
	}
	gws, clients := specs[:f.cfg.GatewaysPerIsland], specs[f.cfg.GatewaysPerIsland:]
	if _, err := sc.addNodes(gws, WithGateway()); err != nil {
		sc.Close()
		return nil, fmt.Errorf("siphoc: island %d gateways: %w", i, err)
	}
	if _, err := sc.addNodes(clients); err != nil {
		sc.Close()
		return nil, fmt.Errorf("siphoc: island %d clients: %w", i, err)
	}
	return sc, nil
}

// Islands returns every island scenario in index order.
func (f *FederationScenario) Islands() []*Scenario { return f.islands }

// Island returns island i.
func (f *FederationScenario) Island(i int) *Scenario { return f.islands[i] }

// Pool returns the sharded provider tier.
func (f *FederationScenario) Pool() *internet.ProviderPool { return f.pool }

// Overlay returns the full DHT nodes of the P2P overlay registrar tier, or
// nil unless the federation was built with FederationConfig.Overlay.
func (f *FederationScenario) Overlay() []*overlay.Node { return f.dht }

// OverlayClient returns island i's passive overlay client (the directory its
// proxies publish into and resolve through), or nil without Overlay.
func (f *FederationScenario) OverlayClient(i int) *overlay.Node {
	if i < 0 || i >= len(f.oclients) {
		return nil
	}
	return f.oclients[i]
}

// Internet returns the shared simulated Internet.
func (f *FederationScenario) Internet() *internet.Internet { return f.inet }

// Clock returns the federation-wide time source.
func (f *FederationScenario) Clock() clock.Clock { return f.clk }

// Observer returns the federation-wide observability handle (nil with
// NoObservability; a nil Observer is valid and no-ops).
func (f *FederationScenario) Observer() *Observer { return f.observer }

// MediaPacer returns the federation-wide RTP scheduler: one goroutine paces
// every phone's media and every gateway trunk across all islands.
func (f *FederationScenario) MediaPacer() *rtp.Pacer { return f.pacer }

// Clients returns every non-gateway node across all islands, island by
// island — the hosts a call workload provisions phones on.
func (f *FederationScenario) Clients() []*Node {
	var out []*Node
	for i, sc := range f.islands {
		prefix := f.IslandPrefix(i)
		for j := range f.cfg.ClientsPerIsland {
			id := NodeID(fmt.Sprintf("%s.%d", prefix, f.cfg.GatewaysPerIsland+j+1))
			if n := sc.Node(id); n != nil {
				out = append(out, n)
			}
		}
	}
	return out
}

// WaitAttached blocks until every client node in every island reports
// Internet connectivity through its island gateways.
func (f *FederationScenario) WaitAttached(timeout time.Duration) error {
	deadline := f.clk.Now().Add(timeout)
	for _, n := range f.Clients() {
		remain := deadline.Sub(f.clk.Now())
		if remain <= 0 {
			remain = time.Millisecond
		}
		sc := n.scenario
		if err := sc.WaitAttached(n, remain); err != nil {
			return err
		}
	}
	return nil
}

// TrunkStats sums trunk counters across every gateway in the federation.
func (f *FederationScenario) TrunkStats() TrunkStats {
	var total TrunkStats
	for _, sc := range f.islands {
		for _, n := range sc.Nodes() {
			if g := n.Gateway(); g != nil {
				ts := g.TrunkStats()
				total.FramesSent += ts.FramesSent
				total.FramesRecv += ts.FramesRecv
				total.PayloadsBatched += ts.PayloadsBatched
				total.PayloadsDelivered += ts.PayloadsDelivered
				total.InlineFlushes += ts.InlineFlushes
				total.PacedFlushes += ts.PacedFlushes
			}
		}
	}
	return total
}

// Close tears the whole federation down: islands first (they skip the
// shared pieces), then the overlay tier, the pool, the Internet and the
// pacer.
func (f *FederationScenario) Close() {
	for _, sc := range f.islands {
		sc.Close()
	}
	for _, c := range f.oclients {
		c.Close()
	}
	for _, n := range f.dht {
		n.Close()
	}
	if f.osched != nil {
		f.osched.Close()
	}
	if f.pool != nil {
		f.pool.Close()
	}
	if f.inet != nil {
		f.inet.Close()
	}
	if f.pacer != nil {
		f.pacer.Close()
	}
}
