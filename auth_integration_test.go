package siphoc

import (
	"testing"
	"time"
)

// TestAuthenticatingProvider exercises RFC 2617 digest authentication end
// to end: the provider challenges REGISTERs; the proxy answers upstream
// challenges with provisioned credentials; the Internet-side phone answers
// with its own password; wrong credentials stay out.
func TestAuthenticatingProvider(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{Internet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	prov, err := sc.AddProvider(ProviderConfig{Domain: domain, RequireAuth: true})
	if err != nil {
		t.Fatal(err)
	}
	prov.AddAccountWithPassword("alice", "wonderland")
	prov.AddAccountWithPassword("carol", "xmaskey")

	if _, err := sc.AddNode("10.0.0.1", Position{}, WithGateway()); err != nil {
		t.Fatal(err)
	}
	node, err := sc.AddNode("10.0.0.2", Position{X: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.WaitAttached(node, 20*time.Second); err != nil {
		t.Fatal(err)
	}

	// Internet-side phone with the right password registers directly.
	carol, err := sc.AddInternetPhone("carol", domain, "ua.carol.net")
	if err != nil {
		t.Fatal(err)
	}
	if err := carol.Register(); err == nil {
		t.Fatal("passwordless registration accepted by authenticating provider")
	}
	carolAuthed, err := sc.AddInternetPhoneWithPassword("carol", "xmaskey", domain, "ua.carol2.net")
	if err != nil {
		t.Fatal(err)
	}
	if err := carolAuthed.Register(); err != nil {
		t.Fatalf("authenticated registration failed: %v", err)
	}
	if prov.Stats().Challenged == 0 {
		t.Fatal("provider never issued a challenge")
	}

	// MANET-side: the proxy needs provisioned credentials for alice.
	alice := registerPhone(t, node, "alice")
	_ = alice
	aor := "alice@" + domain
	// Without credentials the upstream registration fails with 401.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && node.Proxy().UpstreamStatus(aor) == 0 {
		time.Sleep(20 * time.Millisecond)
	}
	if code := node.Proxy().UpstreamStatus(aor); code != 401 {
		t.Fatalf("upstream status without credentials = %d, want 401", code)
	}
	// Provision the credentials and re-register.
	node.Proxy().SetUpstreamCredentials(aor, "alice", "wonderland")
	if err := alice.Register(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && node.Proxy().UpstreamStatus(aor) != 200 {
		time.Sleep(20 * time.Millisecond)
	}
	if code := node.Proxy().UpstreamStatus(aor); code != 200 {
		t.Fatalf("upstream status with credentials = %d, want 200", code)
	}
	if _, ok := prov.Binding(aor); !ok {
		t.Fatal("authenticated upstream binding missing at the provider")
	}

	// Wrong password is rejected.
	node.Proxy().SetUpstreamCredentials(aor, "alice", "wrong")
	if err := alice.Register(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if code := node.Proxy().UpstreamStatus(aor); code == 200 {
		// The last attempt must not have succeeded with a bad password;
		// note the earlier good binding may still be cached at the
		// provider, which is fine — we check the status, not the binding.
		t.Fatalf("upstream status with wrong password = %d", code)
	}
}
