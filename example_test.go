package siphoc_test

import (
	"fmt"
	"time"

	"siphoc"
)

// Example reproduces the paper's headline scenario: two users on opposite
// ends of a multihop MANET chain call each other with no centralized SIP
// server anywhere.
func Example() {
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{})
	if err != nil {
		fmt.Println("scenario:", err)
		return
	}
	defer sc.Close()
	nodes, err := sc.Chain(3, 90)
	if err != nil {
		fmt.Println("chain:", err)
		return
	}
	alice, _ := nodes[0].NewPhone("alice", "voicehoc.ch")
	bob, _ := nodes[2].NewPhone("bob", "voicehoc.ch")
	for _, ph := range []*siphoc.Phone{alice, bob} {
		for range 5 {
			if err = ph.Register(); err == nil {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if err != nil {
			fmt.Println("register:", err)
			return
		}
	}
	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		fmt.Println("dial:", err)
		return
	}
	if err := call.WaitEstablished(20 * time.Second); err != nil {
		fmt.Println("setup:", err)
		return
	}
	fmt.Println("call established:", call.State() == siphoc.CallEstablished)
	fmt.Println("voice frames sent:", call.SendVoice(10))
	_ = call.Hangup()
	fmt.Println("call ended:", call.State() == siphoc.CallEnded)
	// Output:
	// call established: true
	// voice frames sent: 10
	// call ended: true
}

// ExampleScenario_internet shows transparent Internet calling: once a
// gateway node exists, a MANET user's official SIP address reaches an
// Internet subscriber through the layer-2 tunnel.
func ExampleScenario_internet() {
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{Internet: true})
	if err != nil {
		fmt.Println("scenario:", err)
		return
	}
	defer sc.Close()
	prov, _ := sc.AddProvider(siphoc.ProviderConfig{Domain: "voicehoc.ch"})
	prov.AddAccount("alice")
	prov.AddAccount("carol")
	if _, err := sc.AddNode("10.0.0.1", siphoc.Position{X: 50}, siphoc.WithGateway()); err != nil {
		fmt.Println("gateway:", err)
		return
	}
	node, _ := sc.AddNode("10.0.0.2", siphoc.Position{})
	carol, _ := sc.AddInternetPhone("carol", "voicehoc.ch", "ua.carol.net")
	_ = carol.Register()
	if err := sc.WaitAttached(node, 30*time.Second); err != nil {
		fmt.Println("attach:", err)
		return
	}
	alice, _ := node.NewPhone("alice", "voicehoc.ch")
	for range 5 {
		if err = alice.Register(); err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	call, err := alice.Dial("carol@voicehoc.ch")
	if err != nil {
		fmt.Println("dial:", err)
		return
	}
	if err := call.WaitEstablished(20 * time.Second); err != nil {
		fmt.Println("setup:", err)
		return
	}
	fmt.Println("MANET to Internet call established:", call.State() == siphoc.CallEstablished)
	_ = call.Hangup()
	// Output:
	// MANET to Internet call established: true
}
