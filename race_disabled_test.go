//go:build !race

package siphoc_test

const raceEnabled = false
