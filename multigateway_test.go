package siphoc

import (
	"testing"
	"time"
)

// TestTwoGatewaysCoexist verifies the multi-gateway extension: several
// gateway services live in the SLP caches simultaneously, and when the one
// in use dies the Connection Provider fails over to the survivor without a
// new gateway having to appear.
func TestTwoGatewaysCoexist(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{Internet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	prov, err := sc.AddProvider(ProviderConfig{Domain: domain})
	if err != nil {
		t.Fatal(err)
	}
	prov.AddAccount("alice")
	node, err := sc.AddNode("10.0.0.1", Position{})
	if err != nil {
		t.Fatal(err)
	}
	gw1, err := sc.AddNode("10.0.0.2", Position{X: 50}, WithGateway())
	if err != nil {
		t.Fatal(err)
	}
	gw2, err := sc.AddNode("10.0.0.3", Position{X: 60}, WithGateway())
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.WaitAttached(node, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	// Both gateway services must be visible in the node's SLP cache.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(node.SLP().Services("gateway")) >= 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := node.SLP().Services("gateway"); len(got) < 2 {
		t.Fatalf("gateway services visible = %d, want 2: %+v", len(got), got)
	}
	// Kill whichever gateway is in use; the node must fail over to the
	// survivor (whose advert is already cached).
	used := node.ConnectionProvider().Gateway()
	var survivor NodeID
	switch used {
	case gw1.ID():
		survivor = gw2.ID()
	case gw2.ID():
		survivor = gw1.ID()
	default:
		t.Fatalf("attached via unknown gateway %q", used)
	}
	sc.RemoveNode(used)
	deadline = time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if node.InternetAttached() && node.ConnectionProvider().Gateway() == survivor {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("never failed over to %s (attached=%v via %q)",
		survivor, node.InternetAttached(), node.ConnectionProvider().Gateway())
}
