// Package siphoc is a library reproduction of "Wireless Ad Hoc VoIP"
// (Stuedi & Alonso, MNCNA @ ACM/IFIP/USENIX Middleware 2007): a SIP
// middleware that lets out-of-the-box VoIP applications place calls in
// mobile ad hoc networks with no centralized SIP server, and transparently
// reach the Internet as soon as any node in the MANET has connectivity.
//
// The package is the public facade over the implementation packages:
//
//   - internal/netem: packet-level MANET emulator (radio range, delay,
//     loss, mobility) replacing the paper's laptop/iPAQ testbed
//   - internal/routing/{aodv,olsr}: the two routing protocols the system
//     supports, with the piggyback extension slot on control messages
//   - internal/slp: MANET SLP — decentralized service location via routing
//     message piggybacking
//   - internal/sip, internal/sdp, internal/rtp: the SIP/SDP/RTP stacks
//   - internal/core: the SIPHoc proxy, Gateway Provider and Connection
//     Provider
//   - internal/internet: the simulated fixed Internet with SIP providers
//   - internal/voip: the softphone user agent
//
// The typical entry point is Scenario: create one, add nodes (each node
// automatically runs the full SIPHoc service set), create phones on nodes,
// and place calls:
//
//	sc, _ := siphoc.NewScenario(siphoc.ScenarioConfig{})
//	defer sc.Close()
//	nodes, _ := sc.Chain(3, 90)
//	alice, _ := nodes[0].NewPhone("alice", "voicehoc.ch")
//	bob, _ := nodes[2].NewPhone("bob", "voicehoc.ch")
//	_ = alice.Register()
//	_ = bob.Register()
//	call, _ := alice.Dial("bob@voicehoc.ch")
//	_ = call.WaitEstablished(10 * time.Second)
package siphoc

import (
	"siphoc/internal/core"
	"siphoc/internal/internet"
	"siphoc/internal/netem"
	"siphoc/internal/obs"
	"siphoc/internal/rtp"
	"siphoc/internal/sip"
	"siphoc/internal/slp"
	"siphoc/internal/voip"
)

// Re-exported core types, so users of the facade never have to import the
// internal packages (which the toolchain would reject anyway).
type (
	// NodeID identifies a node on the MANET or the Internet.
	NodeID = netem.NodeID
	// Position is a node's 2-D location in metres.
	Position = netem.Position
	// Phone is a softphone user agent bound to a node.
	Phone = voip.Phone
	// Call is one voice call.
	Call = voip.Call
	// PhoneConfig mirrors a softphone's account settings (paper Fig. 2).
	PhoneConfig = voip.Config
	// MediaStats is the receive-side call-quality snapshot.
	MediaStats = rtp.Stats
	// MediaPacer is the shared RTP frame scheduler; see Scenario.MediaPacer.
	MediaPacer = rtp.Pacer
	// MediaStream is a handle to one in-flight voice stream; see
	// Call.StartVoice.
	MediaStream = rtp.Stream
	// Provider is a centralized Internet SIP provider.
	Provider = internet.Provider
	// ProviderConfig describes one Internet SIP provider.
	ProviderConfig = internet.ProviderConfig
	// Service is one SLP service registration.
	Service = slp.Service
	// SIPAddr is a SIP transport address (node + port).
	SIPAddr = sip.Addr
	// NetworkStats counts traffic on the radio medium by frame class.
	NetworkStats = netem.Stats
	// FaultPlan is a deterministic, seeded schedule of network faults; see
	// FaultScenario for the scenario-level harness built on it.
	FaultPlan = netem.FaultPlan
	// FaultRecord is one executed fault in a plan's replayable log.
	FaultRecord = netem.FaultRecord
	// FaultKind classifies an injected fault.
	FaultKind = netem.FaultKind
	// LinkQuality is a per-link loss/latency override used by fault plans.
	LinkQuality = netem.LinkQuality
	// ProxyStats counts SIPHoc proxy activity.
	ProxyStats = core.ProxyStats
	// GatewayStats counts Gateway Provider activity (tunnels, frames).
	GatewayStats = core.GatewayStats
	// TrunkStats counts inter-gateway trunk multiplexing activity.
	TrunkStats = core.TrunkStats
	// ProviderPool is the sharded provider tier of a federation.
	ProviderPool = internet.ProviderPool
	// PoolConfig sizes a sharded provider tier.
	PoolConfig = internet.PoolConfig
	// PoolStats aggregates provider counters across a pool's shards.
	PoolStats = internet.PoolStats
	// Resolver is one lookup backend in the proxy's routing policy; see
	// core.ResolverChain and ProxyConfig.Resolvers for composing chains.
	Resolver = core.Resolver
	// ConnStats counts Connection Provider activity (attaches, frames).
	ConnStats = core.ConnStats
	// SLPStats counts MANET SLP agent activity (lookups, cache hits).
	SLPStats = slp.AgentStats

	// Observer is the scenario-wide observability handle: the metrics
	// registry plus the call tracer. A nil *Observer is the disabled mode
	// (every method no-ops).
	Observer = obs.Observer
	// CallTrace is one call's stitched span timeline; see Call.Trace.
	CallTrace = obs.CallTrace
	// Span is one timed phase inside a call trace.
	Span = obs.Span
	// PhaseDuration is one row of a trace's setup-delay breakdown.
	PhaseDuration = obs.PhaseDuration
	// RegistrySnapshot is a point-in-time copy of the metrics registry.
	RegistrySnapshot = obs.RegistrySnapshot
	// HistogramSnapshot is a latency histogram copy inside a snapshot.
	HistogramSnapshot = obs.HistogramSnapshot
)

// Trace phase names, as they appear in CallTrace spans and breakdowns.
const (
	PhaseSetup          = obs.PhaseSetup
	PhaseSLPResolve     = obs.PhaseSLPResolve
	PhaseRouteDiscovery = obs.PhaseRouteDiscovery
	PhaseGatewayAttach  = obs.PhaseGatewayAttach
	PhaseSIPTransaction = obs.PhaseSIPTransaction
	PhaseSIPLeg         = obs.PhaseSIPLeg
	PhaseMediaStart     = obs.PhaseMediaStart
)

// Call and phone state constants re-exported for switch statements.
const (
	CallSetup       = voip.StateSetup
	CallRinging     = voip.StateRinging
	CallEstablished = voip.StateEstablished
	CallEnded       = voip.StateEnded
	CallFailed      = voip.StateFailed
)

// SLP dissemination modes (the E9 ablation).
const (
	SLPPiggyback = slp.ModePiggyback
	SLPMulticast = slp.ModeMulticast
)

// ErrNoGateway is the typed error surfaced when a node exhausts its gateway
// acquisition budget (or a bounded wait for attachment times out): no usable
// gateway is reachable. Test with errors.Is.
var ErrNoGateway = core.ErrNoGateway
