// Campus: the paper's motivating "free voice communication within a
// university campus" scenario — a 5×5 grid of 25 devices, pedestrians
// walking around under random-waypoint mobility, calls between random pairs
// resolved entirely through MANET SLP, including one mid-mobility call that
// must survive topology change.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"siphoc"
	"siphoc/internal/netem"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{
		Routing: siphoc.RoutingOLSR, // proactive routing suits a dense campus
	})
	if err != nil {
		return err
	}
	defer sc.Close()

	nodes, err := sc.Grid(5, 5, 80)
	if err != nil {
		return err
	}
	fmt.Printf("campus MANET: %d devices on a 5x5 grid (OLSR routing)\n", len(nodes))

	phones := make([]*siphoc.Phone, len(nodes))
	for i, n := range nodes {
		ph, err := n.NewPhone(fmt.Sprintf("student%d", i+1), "campus.edu")
		if err != nil {
			return err
		}
		if err := registerWithRetry(ph); err != nil {
			return err
		}
		phones[i] = ph
	}
	fmt.Printf("all %d students registered with their local proxies\n\n", len(phones))

	// Static calls between far-apart pairs.
	rng := rand.New(rand.NewSource(7))
	for k := range 5 {
		i, j := rng.Intn(len(phones)), rng.Intn(len(phones))
		if i == j {
			continue
		}
		call, err := phones[i].Dial(phones[j].AOR())
		if err != nil {
			return err
		}
		if err := call.WaitEstablished(20 * time.Second); err != nil {
			return fmt.Errorf("call %d: %w", k+1, err)
		}
		call.SendVoice(25)
		fmt.Printf("call %d: %s -> %s ok (setup %v)\n",
			k+1, phones[i].AOR(), phones[j].AOR(), call.SetupDuration().Round(time.Millisecond))
		_ = call.Hangup()
	}

	// Mobility: students start walking; calls must still go through.
	fmt.Println("\nstudents start walking (random waypoint, 1-2 m/s)...")
	mover := netem.NewWaypoint(sc.Network(), 400, 400, 1, 2, 11)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				mover.Step(0.5) // 10x accelerated walking
			}
		}
	}()
	time.Sleep(time.Second) // let the topology actually change
	call, err := phones[0].Dial(phones[len(phones)-1].AOR())
	if err != nil {
		return err
	}
	if err := call.WaitEstablished(30 * time.Second); err != nil {
		return fmt.Errorf("mid-mobility call: %w", err)
	}
	call.SendVoice(50)
	fmt.Printf("mid-mobility call ok (setup %v)\n", call.SetupDuration().Round(time.Millisecond))
	return call.Hangup()
}

func registerWithRetry(ph *siphoc.Phone) error {
	var err error
	for range 5 {
		if err = ph.Register(); err == nil {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return err
}
