// Quickstart: the paper's headline scenario in ~40 lines. Two users on
// opposite ends of a three-node MANET chain register with their local
// SIPHoc proxies and call each other — no centralized SIP server exists
// anywhere (paper Figure 3).
package main

import (
	"fmt"
	"log"
	"time"

	"siphoc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{})
	if err != nil {
		return err
	}
	defer sc.Close()

	// Three nodes in a line, 90 m apart with 100 m radio range: Alice and
	// Bob cannot hear each other directly and must relay via the middle.
	nodes, err := sc.Chain(3, 90)
	if err != nil {
		return err
	}
	alice, err := nodes[0].NewPhone("alice", "voicehoc.ch")
	if err != nil {
		return err
	}
	bob, err := nodes[2].NewPhone("bob", "voicehoc.ch")
	if err != nil {
		return err
	}
	if err := alice.Register(); err != nil {
		return err
	}
	if err := bob.Register(); err != nil {
		return err
	}
	fmt.Println("registered", alice.AOR(), "and", bob.AOR(), "with their local proxies")

	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		return err
	}
	if err := call.WaitEstablished(20 * time.Second); err != nil {
		return err
	}
	fmt.Printf("call established in %v over 2 hops\n", call.SetupDuration().Round(time.Millisecond))

	call.SendVoice(50) // one second of voice
	time.Sleep(200 * time.Millisecond)
	bobCall := <-bob.Incoming()
	st := bobCall.MediaStats()
	fmt.Printf("bob received %d/%d frames, MOS %.2f\n", st.Received, st.Expected, st.MOS)

	return call.Hangup()
}
