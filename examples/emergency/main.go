// Emergency response: the paper's disaster scenario — fixed infrastructure
// is down, responders form an ad hoc network, and a truck with a satellite
// uplink acts as the gateway. Responders call each other locally, reach
// headquarters on the Internet through the gateway, and keep working when
// the truck moves away and a second uplink takes over.
package main

import (
	"fmt"
	"log"
	"time"

	"siphoc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{Internet: true})
	if err != nil {
		return err
	}
	defer sc.Close()

	// Headquarters' SIP provider and operator on the intact Internet.
	prov, err := sc.AddProvider(siphoc.ProviderConfig{Domain: "rescue.org"})
	if err != nil {
		return err
	}
	for _, u := range []string{"medic1", "medic2", "firechief", "hq"} {
		prov.AddAccount(u)
	}
	hq, err := sc.AddInternetPhone("hq", "rescue.org", "ops.rescue.org")
	if err != nil {
		return err
	}
	if err := hq.Register(); err != nil {
		return err
	}

	// The incident site: three responders in a line plus the uplink truck
	// at the end.
	medic1N, err := sc.AddNode("10.0.0.1", siphoc.Position{X: 0})
	if err != nil {
		return err
	}
	if _, err := sc.AddNode("10.0.0.2", siphoc.Position{X: 90}); err != nil {
		return err
	}
	chiefN, err := sc.AddNode("10.0.0.3", siphoc.Position{X: 180})
	if err != nil {
		return err
	}
	truck, err := sc.AddNode("10.0.0.9", siphoc.Position{X: 250}, siphoc.WithGateway())
	if err != nil {
		return err
	}
	fmt.Println("incident site: medic1 -- medic2 -- firechief -- uplink truck (gateway)")

	medic1, err := medic1N.NewPhone("medic1", "rescue.org")
	if err != nil {
		return err
	}
	chief, err := chiefN.NewPhone("firechief", "rescue.org")
	if err != nil {
		return err
	}
	if err := registerWithRetry(medic1); err != nil {
		return err
	}
	if err := registerWithRetry(chief); err != nil {
		return err
	}

	// Local coordination call: works even with zero Internet.
	call, err := medic1.Dial("firechief@rescue.org")
	if err != nil {
		return err
	}
	if err := call.WaitEstablished(20 * time.Second); err != nil {
		return fmt.Errorf("site-local call: %w", err)
	}
	fmt.Printf("site-local call medic1 -> firechief ok (%v, no infrastructure used)\n",
		call.SetupDuration().Round(time.Millisecond))
	_ = call.Hangup()

	// Reach headquarters through the truck.
	if err := sc.WaitAttached(medic1N, 30*time.Second); err != nil {
		return err
	}
	fmt.Println("uplink found via MANET SLP; site is attached to the Internet")
	call, err = medic1.Dial("hq@rescue.org")
	if err != nil {
		return err
	}
	if err := call.WaitEstablished(20 * time.Second); err != nil {
		return fmt.Errorf("call to HQ: %w", err)
	}
	call.SendVoice(25)
	fmt.Printf("medic1 -> hq@rescue.org ok (%v, via gateway tunnel)\n",
		call.SetupDuration().Round(time.Millisecond))
	_ = call.Hangup()

	// HQ calls back into the field at the medic's official address.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := prov.Binding("medic1@rescue.org"); ok {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	call, err = hq.Dial("medic1@rescue.org")
	if err != nil {
		return err
	}
	if err := call.WaitEstablished(20 * time.Second); err != nil {
		return fmt.Errorf("HQ -> field call: %w", err)
	}
	fmt.Printf("hq -> medic1@rescue.org ok (%v, Internet into the MANET)\n",
		call.SetupDuration().Round(time.Millisecond))
	_ = call.Hangup()

	// The truck leaves; a helicopter uplink replaces it.
	sc.RemoveNode(truck.ID())
	fmt.Println("\nuplink truck departed; site lost Internet connectivity")
	deadline = time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) && medic1N.InternetAttached() {
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := sc.AddNode("10.0.0.10", siphoc.Position{X: 240}, siphoc.WithGateway()); err != nil {
		return err
	}
	if err := sc.WaitAttached(medic1N, 60*time.Second); err != nil {
		return fmt.Errorf("helicopter failover: %w", err)
	}
	fmt.Println("helicopter uplink arrived; site re-attached automatically")
	call, err = medic1.Dial("hq@rescue.org")
	if err != nil {
		return err
	}
	if err := call.WaitEstablished(20 * time.Second); err != nil {
		return fmt.Errorf("call to HQ after failover: %w", err)
	}
	fmt.Printf("medic1 -> hq ok again (%v) - connectivity churn was transparent\n",
		call.SetupDuration().Round(time.Millisecond))
	return call.Hangup()
}

func registerWithRetry(ph *siphoc.Phone) error {
	var err error
	for range 5 {
		if err = ph.Register(); err == nil {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return err
}
