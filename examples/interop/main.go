// Interop: the paper's §3.2 provider study as a runnable demo. Three SIP
// providers mirror the ones the authors tested (siphoc.ch, netvoip.ch,
// polyphone.ethz.ch): users keep their official SIP addresses in the MANET,
// and the provider that demands a special outbound proxy reproduces the
// paper's documented incompatibility with SIPHoc's localhost-proxy trick.
package main

import (
	"fmt"
	"log"
	"time"

	"siphoc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{Internet: true})
	if err != nil {
		return err
	}
	defer sc.Close()

	specs := []struct {
		cfg  siphoc.ProviderConfig
		note string
	}{
		{siphoc.ProviderConfig{Domain: "siphoc.ch"}, "proxy at the domain"},
		{siphoc.ProviderConfig{Domain: "netvoip.ch"}, "proxy at the domain"},
		{siphoc.ProviderConfig{Domain: "polyphone.ethz.ch", ProxyHost: "sipgate.ethz.ch"},
			"requires special outbound proxy"},
	}
	for _, s := range specs {
		prov, err := sc.AddProvider(s.cfg)
		if err != nil {
			return err
		}
		prov.AddAccount("alice")
	}

	if _, err := sc.AddNode("10.0.0.1", siphoc.Position{}, siphoc.WithGateway()); err != nil {
		return err
	}
	node, err := sc.AddNode("10.0.0.2", siphoc.Position{X: 50})
	if err != nil {
		return err
	}
	if err := sc.WaitAttached(node, 30*time.Second); err != nil {
		return err
	}
	fmt.Println("MANET node attached to the Internet through the gateway")
	fmt.Println()

	for _, s := range specs {
		ph, err := node.NewPhone("alice", s.cfg.Domain)
		if err != nil {
			return err
		}
		if err := registerWithRetry(ph); err != nil {
			return fmt.Errorf("local register at %s: %w", s.cfg.Domain, err)
		}
		aor := "alice@" + s.cfg.Domain
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) && node.Proxy().UpstreamStatus(aor) == 0 {
			time.Sleep(20 * time.Millisecond)
		}
		code := node.Proxy().UpstreamStatus(aor)
		verdict := "works transparently"
		if code != 200 {
			verdict = fmt.Sprintf("FAILS (status %d) - the paper's open issue", code)
		}
		fmt.Printf("%-20s (%s): upstream registration %s\n", s.cfg.Domain, s.note, verdict)
	}
	return nil
}

func registerWithRetry(ph *siphoc.Phone) error {
	var err error
	for range 5 {
		if err = ph.Register(); err == nil {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return err
}
