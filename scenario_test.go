package siphoc

import (
	"strings"
	"testing"
	"time"
)

const (
	domain      = "voicehoc.ch"
	callTimeout = 15 * time.Second
)

func newChainScenario(t *testing.T, n int, cfg ScenarioConfig) (*Scenario, []*Node) {
	t.Helper()
	sc, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sc.Close)
	nodes, err := sc.Chain(n, 90)
	if err != nil {
		t.Fatal(err)
	}
	return sc, nodes
}

// registerPhone creates and registers a phone, retrying registration a few
// times to ride out initial route discovery on cold networks.
func registerPhone(t *testing.T, n *Node, user string) *Phone {
	t.Helper()
	ph, err := n.NewPhone(user, domain)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for range 5 {
		if lastErr = ph.Register(); lastErr == nil {
			return ph
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("register %s: %v", user, lastErr)
	return nil
}

// TestCallWithinMANET is the paper's Figure 3 flow end to end: two users on
// opposite ends of a multihop chain register with their local proxies and
// establish a call with no centralized server anywhere.
func TestCallWithinMANET(t *testing.T) {
	_, nodes := newChainScenario(t, 3, ScenarioConfig{})
	alice := registerPhone(t, nodes[0], "alice")
	bob := registerPhone(t, nodes[2], "bob")
	_ = bob

	call, err := alice.Dial("bob@" + domain)
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(callTimeout); err != nil {
		t.Fatalf("call setup: %v", err)
	}
	if call.SetupDuration() <= 0 {
		t.Fatal("setup duration not recorded")
	}
	// Voice flows end to end.
	if sent := call.SendVoice(20); sent != 20 {
		t.Fatalf("sent %d frames", sent)
	}
	// Find Bob's call leg and verify media arrived.
	var bobCall *Call
	select {
	case bobCall = <-bob.Incoming():
	case <-time.After(time.Second):
		t.Fatal("bob never saw the incoming call")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && bobCall.MediaStats().Received < 20 {
		time.Sleep(10 * time.Millisecond)
	}
	st := bobCall.MediaStats()
	if st.Received != 20 || st.Lost != 0 {
		t.Fatalf("media stats = %+v", st)
	}
	if st.MOS < 3.5 {
		t.Fatalf("MOS = %f over a clean 2-hop path", st.MOS)
	}
	// Tear down.
	if err := call.Hangup(); err != nil {
		t.Fatalf("hangup: %v", err)
	}
	if err := bobCall.WaitEnded(5 * time.Second); err != nil {
		t.Fatalf("bob teardown: %v", err)
	}
	// Both SLP-based resolutions happened: Alice's proxy resolved Bob via
	// MANET SLP, Bob's proxy delivered locally.
	if s := nodes[0].Proxy().Stats(); s.SLPResolutions == 0 {
		t.Fatalf("caller proxy never used SLP: %+v", s)
	}
	if s := nodes[2].Proxy().Stats(); s.LocalDeliveries == 0 {
		t.Fatalf("callee proxy never delivered locally: %+v", s)
	}
}

func TestCallWithinMANETOverOLSR(t *testing.T) {
	_, nodes := newChainScenario(t, 4, ScenarioConfig{Routing: RoutingOLSR})
	alice := registerPhone(t, nodes[0], "alice")
	bob := registerPhone(t, nodes[3], "bob")
	_ = bob
	call, err := alice.Dial("bob@" + domain)
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(callTimeout); err != nil {
		t.Fatalf("call setup over OLSR: %v", err)
	}
	if err := call.Hangup(); err != nil {
		t.Fatal(err)
	}
}

func TestCallToUnknownUserFails(t *testing.T) {
	_, nodes := newChainScenario(t, 2, ScenarioConfig{})
	alice := registerPhone(t, nodes[0], "alice")
	call, err := alice.Dial("nobody@" + domain)
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(callTimeout); err == nil {
		t.Fatal("call to unknown user established")
	}
	if call.State() != CallFailed {
		t.Fatalf("state = %v", call.State())
	}
	if code := call.FailCode(); code != 404 && code != 408 {
		t.Fatalf("fail code = %d", code)
	}
}

func TestCalleeRejectsCall(t *testing.T) {
	sc, nodes := newChainScenario(t, 2, ScenarioConfig{})
	_ = sc
	alice := registerPhone(t, nodes[0], "alice")
	bobNode := nodes[1]
	bob, err := bobNode.NewPhoneWith(PhoneConfig{User: "bob", Domain: domain, NoAutoAnswer: true})
	if err != nil {
		t.Fatal(err)
	}
	for range 5 {
		if err = bob.Register(); err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	call, err := alice.Dial("bob@" + domain)
	if err != nil {
		t.Fatal(err)
	}
	var inc *Call
	select {
	case inc = <-bob.Incoming():
	case <-time.After(callTimeout):
		t.Fatal("bob never rang")
	}
	if err := inc.Reject(486); err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(callTimeout); err == nil {
		t.Fatal("rejected call established")
	}
	if call.FailCode() != 486 {
		t.Fatalf("fail code = %d", call.FailCode())
	}
}

func TestSLPDumpShowsRegistration(t *testing.T) {
	_, nodes := newChainScenario(t, 1, ScenarioConfig{})
	registerPhone(t, nodes[0], "alice")
	dump := nodes[0].SLP().Dump()
	for _, want := range []string{"loaded routing plugin: AODV", "sip/alice@" + domain} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

// internetScenario builds: MANET chain of n nodes where the last node is a
// gateway, a provider for voicehoc.ch, and an Internet-side phone
// carol@voicehoc.ch.
func internetScenario(t *testing.T, n int) (*Scenario, []*Node, *Provider, *Phone) {
	t.Helper()
	sc, err := NewScenario(ScenarioConfig{Internet: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sc.Close)
	prov, err := sc.AddProvider(ProviderConfig{Domain: domain})
	if err != nil {
		t.Fatal(err)
	}
	prov.AddAccount("alice")
	prov.AddAccount("bob")
	prov.AddAccount("carol")
	nodes := make([]*Node, 0, n)
	for i := range n {
		var opts []NodeOption
		if i == n-1 {
			opts = append(opts, WithGateway())
		}
		node, err := sc.AddNode(NodeID("10.0.0."+string(rune('1'+i))), Position{X: float64(i) * 90}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	carol, err := sc.AddInternetPhone("carol", domain, "ua.carol.net")
	if err != nil {
		t.Fatal(err)
	}
	if err := carol.Register(); err != nil {
		t.Fatalf("carol register: %v", err)
	}
	return sc, nodes, prov, carol
}

// TestOutboundInternetCall is the paper's §3.2 forward path: a MANET user
// calls an Internet user through a gateway node's tunnel.
func TestOutboundInternetCall(t *testing.T) {
	sc, nodes, _, carol := internetScenario(t, 3)
	_ = carol
	if err := sc.WaitAttached(nodes[0], 20*time.Second); err != nil {
		t.Fatal(err)
	}
	alice := registerPhone(t, nodes[0], "alice")
	call, err := alice.Dial("carol@" + domain)
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(callTimeout); err != nil {
		t.Fatalf("MANET->Internet call: %v", err)
	}
	// Media crosses the tunnel.
	if sent := call.SendVoice(10); sent != 10 {
		t.Fatalf("sent %d", sent)
	}
	if err := call.Hangup(); err != nil {
		t.Fatal(err)
	}
	if s := nodes[0].Proxy().Stats(); s.InternetRouted == 0 {
		t.Fatalf("proxy stats: %+v", s)
	}
}

// TestInboundInternetCall is the paper's §3.2 reverse path: once the MANET
// is attached, calls from the Internet reach MANET users at their official
// SIP addresses.
func TestInboundInternetCall(t *testing.T) {
	sc, nodes, prov, carol := internetScenario(t, 3)
	if err := sc.WaitAttached(nodes[0], 20*time.Second); err != nil {
		t.Fatal(err)
	}
	alice := registerPhone(t, nodes[0], "alice")
	_ = alice
	// Wait for the proxy's upstream registration to land.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := prov.Binding("alice@" + domain); ok {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, ok := prov.Binding("alice@" + domain); !ok {
		t.Fatalf("upstream registration never reached the provider (status %d)",
			nodes[0].Proxy().UpstreamStatus("alice@"+domain))
	}
	call, err := carol.Dial("alice@" + domain)
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(callTimeout); err != nil {
		t.Fatalf("Internet->MANET call: %v", err)
	}
	if err := call.Hangup(); err != nil {
		t.Fatal(err)
	}
}

// TestProviderInteropMatrix reproduces the paper's provider experience:
// providers whose proxy lives at their domain work transparently; a
// provider requiring a special outbound proxy breaks because SIPHoc
// overwrites the outbound proxy with localhost (§3.2, open issue).
func TestProviderInteropMatrix(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{Internet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	good1, err := sc.AddProvider(ProviderConfig{Domain: "siphoc.ch"})
	if err != nil {
		t.Fatal(err)
	}
	good2, err := sc.AddProvider(ProviderConfig{Domain: "netvoip.ch"})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := sc.AddProvider(ProviderConfig{Domain: "polyphone.ethz.ch", ProxyHost: "sipgate.ethz.ch"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Provider{good1, good2, bad} {
		p.AddAccount("alice")
	}
	gw, err := sc.AddNode("10.0.0.1", Position{}, WithGateway())
	if err != nil {
		t.Fatal(err)
	}
	node, err := sc.AddNode("10.0.0.2", Position{X: 50})
	if err != nil {
		t.Fatal(err)
	}
	_ = gw
	if err := sc.WaitAttached(node, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	results := make(map[string]bool)
	for _, p := range []*Provider{good1, good2, bad} {
		ph, err := node.NewPhone("alice", p.Domain())
		if err != nil {
			t.Fatal(err)
		}
		if err := ph.Register(); err != nil {
			t.Fatalf("local register at %s: %v", p.Domain(), err)
		}
		aor := "alice@" + p.Domain()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) && node.Proxy().UpstreamStatus(aor) == 0 {
			time.Sleep(20 * time.Millisecond)
		}
		results[p.Domain()] = node.Proxy().UpstreamStatus(aor) == 200
	}
	if !results["siphoc.ch"] || !results["netvoip.ch"] {
		t.Fatalf("well-behaved providers failed: %+v", results)
	}
	if results["polyphone.ethz.ch"] {
		t.Fatal("outbound-proxy provider unexpectedly worked — the paper's open issue should reproduce")
	}
}

// TestGatewayChurnTransparency (E10): calls keep working after the gateway
// disappears and a new one shows up.
func TestGatewayFailover(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{Internet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	prov, err := sc.AddProvider(ProviderConfig{Domain: domain})
	if err != nil {
		t.Fatal(err)
	}
	prov.AddAccount("alice")
	node, err := sc.AddNode("10.0.0.1", Position{})
	if err != nil {
		t.Fatal(err)
	}
	gw1, err := sc.AddNode("10.0.0.2", Position{X: 50}, WithGateway())
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.WaitAttached(node, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	// Kill the gateway: the node must detach.
	sc.RemoveNode(gw1.ID())
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && node.InternetAttached() {
		time.Sleep(20 * time.Millisecond)
	}
	if node.InternetAttached() {
		t.Fatal("node still attached after gateway death")
	}
	// Bring up a replacement gateway: the node must re-attach.
	if _, err := sc.AddNode("10.0.0.3", Position{X: 60}, WithGateway()); err != nil {
		t.Fatal(err)
	}
	if err := sc.WaitAttached(node, 30*time.Second); err != nil {
		t.Fatalf("failover: %v", err)
	}
}
