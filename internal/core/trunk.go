package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"siphoc/internal/netem"
	"siphoc/internal/rtp"
)

// TrunkPort is the Internet-side port trunk-enabled gateways exchange
// aggregated media frames on.
const TrunkPort = 9100

// Trunk frame wire format:
//
//	kind u8 | count u16 | { len u16 | marshalled netem datagram }*
//
// Each entry is a whole tunnelled datagram exactly as it would have crossed
// the Internet on its own; trunking changes packaging, not payload bytes, so
// the receiving side reproduces the untrunked byte stream bit for bit.
const (
	trunkFrameKind = 1
	trunkHeaderLen = 3
)

// newTrunkFrame resets buf to an empty frame with the header reserved.
func newTrunkFrame(buf []byte) []byte {
	return append(buf[:0], 0, 0, 0)
}

// appendTrunkPayload appends one marshalled datagram to a frame body.
// Allocation-free once the frame's capacity has grown to its working set.
func appendTrunkPayload(frame []byte, payload []byte) []byte {
	frame = binary.BigEndian.AppendUint16(frame, uint16(len(payload)))
	return append(frame, payload...)
}

// finishTrunkFrame stamps the header of a frame built with
// appendTrunkPayload and returns the wire-ready bytes.
func finishTrunkFrame(frame []byte, count uint16) []byte {
	frame[0] = trunkFrameKind
	binary.BigEndian.PutUint16(frame[1:trunkHeaderLen], count)
	return frame
}

// walkTrunkFrame calls fn for every payload in a received frame, in order.
// The payload slices alias frame. Allocation-free.
func walkTrunkFrame(frame []byte, fn func(payload []byte)) error {
	if len(frame) < trunkHeaderLen || frame[0] != trunkFrameKind {
		return fmt.Errorf("core: not a trunk frame")
	}
	count := int(binary.BigEndian.Uint16(frame[1:trunkHeaderLen]))
	rest := frame[trunkHeaderLen:]
	for i := 0; i < count; i++ {
		if len(rest) < 2 {
			return fmt.Errorf("core: trunk frame truncated at entry %d", i)
		}
		n := int(binary.BigEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if len(rest) < n {
			return fmt.Errorf("core: trunk payload %d truncated", i)
		}
		fn(rest[:n])
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: %d trailing bytes after trunk frame", len(rest))
	}
	return nil
}

// TrunkConfig enables and tunes inter-gateway media trunking. When two
// trunk-enabled gateways carry concurrent tunnelled flows toward each other,
// the sender batches every datagram of a batching window into one trunk frame
// instead of paying per-RTP-packet Internet datagram overhead.
type TrunkConfig struct {
	// Pacer schedules deferred flushes. Required: trunk flows ride the same
	// frame scheduler as the media streams they aggregate.
	Pacer *rtp.Pacer
	// Port is the Internet-side trunk listener port (default TrunkPort).
	Port uint16
	// Interval is the batching window (default rtp.FrameDuration, so
	// trunking adds at most one media frame of queueing delay — and none at
	// all to a flow that is alone on its trunk).
	Interval time.Duration
	// MaxFrame bounds a trunk frame's size in bytes; a flow flushes early
	// rather than exceed it, and oversized single payloads bypass the trunk
	// (default netem.MTU - 128).
	MaxFrame int
}

func (c TrunkConfig) withDefaults() TrunkConfig {
	if c.Port == 0 {
		c.Port = TrunkPort
	}
	if c.Interval == 0 {
		c.Interval = rtp.FrameDuration
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = netem.MTU - 128
	}
	return c
}

// TrunkStats counts trunk activity on one gateway.
type TrunkStats struct {
	FramesSent        int64 // trunk frames sent to peer gateways
	FramesRecv        int64 // trunk frames received
	PayloadsBatched   int64 // tunnelled datagrams folded into trunk frames
	PayloadsDelivered int64 // datagrams fanned back out of received frames
	InlineFlushes     int64 // flushes sent immediately (flow was idle)
	PacedFlushes      int64 // flushes fired by the pacer at window end
}

type trunkCounters struct {
	framesSent        atomic.Int64
	framesRecv        atomic.Int64
	payloadsBatched   atomic.Int64
	payloadsDelivered atomic.Int64
	inlineFlushes     atomic.Int64
	pacedFlushes      atomic.Int64
}

func (c *trunkCounters) snapshot() TrunkStats {
	return TrunkStats{
		FramesSent:        c.framesSent.Load(),
		FramesRecv:        c.framesRecv.Load(),
		PayloadsBatched:   c.payloadsBatched.Load(),
		PayloadsDelivered: c.payloadsDelivered.Load(),
		InlineFlushes:     c.inlineFlushes.Load(),
		PacedFlushes:      c.pacedFlushes.Load(),
	}
}

// gatewayTrunk is the trunk engine of one gateway: a listener on the
// gateway's Internet host plus one paced flow per destination gateway.
type gatewayTrunk struct {
	g    *GatewayProvider
	cfg  TrunkConfig
	conn *netem.Conn

	mu     sync.Mutex
	flows  map[netem.NodeID]*trunkFlow
	closed bool

	stats trunkCounters
	wg    sync.WaitGroup
}

// trunkFlow batches datagrams toward one destination gateway. The flush
// policy keeps trunking invisible to a lone stream: a payload arriving on an
// idle flow whose window has already elapsed is sent inline immediately, so
// single-stream timing is identical to the untrunked path; only payloads that
// arrive while the window is open wait for its end (a pacer task).
type trunkFlow struct {
	t   *gatewayTrunk
	dst netem.NodeID

	mu        sync.Mutex
	buf       []byte // frame under construction (header reserved)
	count     uint16
	lastFlush time.Time
	scheduled bool
	task      *rtp.Task
}

func newGatewayTrunk(g *GatewayProvider, cfg TrunkConfig) (*gatewayTrunk, error) {
	cfg = cfg.withDefaults()
	if cfg.Pacer == nil {
		return nil, fmt.Errorf("core: trunk needs a pacer")
	}
	conn, err := g.selfHost.Listen(cfg.Port)
	if err != nil {
		return nil, fmt.Errorf("core: trunk bind: %w", err)
	}
	t := &gatewayTrunk{
		g:     g,
		cfg:   cfg,
		conn:  conn,
		flows: make(map[netem.NodeID]*trunkFlow),
	}
	t.wg.Add(1)
	go t.recvLoop()
	return t, nil
}

func (t *gatewayTrunk) close() {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	t.conn.Close()
	t.wg.Wait()
}

func (t *gatewayTrunk) flow(dst netem.NodeID) *trunkFlow {
	t.mu.Lock()
	defer t.mu.Unlock()
	f := t.flows[dst]
	if f == nil {
		f = &trunkFlow{t: t, dst: dst, buf: newTrunkFrame(nil)}
		f.task = rtp.NewTask(f.fire, nil)
		t.flows[dst] = f
	}
	return f
}

// enqueue hands one marshalled tunnelled datagram to the trunk toward dst.
// It reports false when the payload cannot be trunked (oversized) and must
// travel the untrunked path instead.
func (t *gatewayTrunk) enqueue(dst netem.NodeID, payload []byte) bool {
	if trunkHeaderLen+2+len(payload) > t.cfg.MaxFrame {
		return false
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return false
	}
	t.mu.Unlock()
	t.stats.payloadsBatched.Add(1)
	t.flow(dst).enqueue(payload)
	return true
}

func (f *trunkFlow) enqueue(payload []byte) {
	t := f.t
	now := t.cfg.Pacer.Clock().Now()
	f.mu.Lock()
	if f.count == 0 && !now.Before(f.lastFlush.Add(t.cfg.Interval)) {
		// Idle flow, window elapsed: send immediately so a lone stream sees
		// exactly the untrunked packet timing.
		f.buf = appendTrunkPayload(f.buf, payload)
		f.count++
		f.flushLocked(now, &t.stats.inlineFlushes)
		f.mu.Unlock()
		return
	}
	if f.count > 0 && len(f.buf)+2+len(payload) > t.cfg.MaxFrame {
		// Window still open but the frame is full: flush early.
		f.flushLocked(now, &t.stats.pacedFlushes)
	}
	f.buf = appendTrunkPayload(f.buf, payload)
	f.count++
	if !f.scheduled {
		f.scheduled = true
		due := f.lastFlush.Add(t.cfg.Interval)
		if due.Before(now) {
			due = now
		}
		t.cfg.Pacer.Schedule(f.task, due)
	}
	f.mu.Unlock()
}

// fire runs on the pacer goroutine at the end of a batching window. It is
// one-shot: the flow parks until the next enqueue re-arms it, so an idle
// trunk costs the pacer nothing.
func (f *trunkFlow) fire() (time.Duration, bool) {
	now := f.t.cfg.Pacer.Clock().Now()
	f.mu.Lock()
	f.scheduled = false
	if f.count > 0 {
		f.flushLocked(now, &f.t.stats.pacedFlushes)
	}
	f.mu.Unlock()
	return 0, false
}

func (f *trunkFlow) flushLocked(now time.Time, kind *atomic.Int64) {
	t := f.t
	frame := finishTrunkFrame(f.buf, f.count)
	if err := t.conn.WriteTo(frame, f.dst, t.cfg.Port); err == nil {
		t.stats.framesSent.Add(1)
		kind.Add(1)
	}
	f.buf = newTrunkFrame(f.buf)
	f.count = 0
	f.lastFlush = now
}

func (t *gatewayTrunk) recvLoop() {
	defer t.wg.Done()
	var scratch netem.Datagram
	deliver := func(payload []byte) {
		if err := netem.UnmarshalDatagramInto(&scratch, payload); err != nil {
			return
		}
		t.stats.payloadsDelivered.Add(1)
		t.g.deliverTrunked(&scratch)
	}
	for {
		dg, ok := t.conn.Recv()
		if !ok {
			return
		}
		t.stats.framesRecv.Add(1)
		_ = walkTrunkFrame(dg.Data, deliver)
	}
}
