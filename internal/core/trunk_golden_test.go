package core

// Trunk equivalence tests: inter-gateway trunking changes how media crosses
// the Internet (batched trunk frames instead of one datagram per RTP packet)
// but must not change what arrives — the played bytes, their timing and the
// resulting MOS have to be identical to the untrunked path. The fixtures run
// a two-island federation (each island a MANET of one client and one gateway,
// joined only by the simulated Internet) on a fake clock, using the
// settle-then-step driver from the rtp golden tests so both variants execute
// the same deterministic schedule.

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/internet"
	"siphoc/internal/netem"
	"siphoc/internal/rtp"
	"siphoc/internal/slp"
)

// islandRoutes is a static intra-island next-hop table: cross-island
// destinations are unknown, so they fall through to the Connection Provider's
// default handler and take the tunnel.
type islandRoutes struct{ next map[netem.NodeID]netem.NodeID }

func (r islandRoutes) NextHop(dst netem.NodeID) (netem.NodeID, bool) {
	nh, ok := r.next[dst]
	return nh, ok
}
func (r islandRoutes) RequestRoute(dst netem.NodeID, done func(bool)) {
	_, ok := r.next[dst]
	done(ok)
}

// trunkIsland is one MANET island: a client node one radio hop from its
// gateway, with SLP in multicast mode (no routing protocol needed at this
// scale) and a Connection Provider scoped to the island's address prefix.
type trunkIsland struct {
	net    *netem.Network
	client *netem.Host
	gwHost *netem.Host
	gw     *GatewayProvider
	cp     *ConnectionProvider
}

func buildTrunkIsland(t *testing.T, clk clock.Clock, prefix string, inet *internet.Internet, pacer *rtp.Pacer, trunked bool) *trunkIsland {
	t.Helper()
	is := &trunkIsland{}
	is.net = netem.NewNetwork(netem.Config{BaseDelay: 700 * time.Microsecond, Clock: clk})
	t.Cleanup(is.net.Close)

	clientID := netem.NodeID(prefix + ".0.1")
	gwID := netem.NodeID(prefix + ".0.2")
	var err error
	if is.client, err = is.net.AddHost(clientID, netem.Position{}); err != nil {
		t.Fatal(err)
	}
	if is.gwHost, err = is.net.AddHost(gwID, netem.Position{X: 50}); err != nil {
		t.Fatal(err)
	}
	is.client.SetRouteProvider(islandRoutes{next: map[netem.NodeID]netem.NodeID{gwID: gwID}})
	is.gwHost.SetRouteProvider(islandRoutes{next: map[netem.NodeID]netem.NodeID{clientID: clientID}})

	agents := make(map[netem.NodeID]*slp.Agent)
	for _, h := range []*netem.Host{is.client, is.gwHost} {
		agent := slp.NewAgent(h, slp.Config{Mode: slp.ModeMulticast, Clock: clk})
		if err := agent.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(agent.Stop)
		agents[h.ID()] = agent
	}

	gwCfg := GatewayConfig{ClientTTL: time.Hour, Clock: clk}
	if trunked {
		gwCfg.Trunk = &TrunkConfig{Pacer: pacer}
	}
	is.gw = NewGatewayProvider(is.gwHost, inet, agents[gwID], gwCfg)
	if err := is.gw.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(is.gw.Stop)

	is.cp = NewConnectionProvider(is.client, agents[clientID], ConnProviderConfig{
		ProbeInterval: 100 * time.Millisecond,
		LookupTimeout: 200 * time.Millisecond,
		AckTimeout:    500 * time.Millisecond,
		Clock:         clk,
		IsLocal: func(id netem.NodeID) bool {
			return strings.HasPrefix(string(id), prefix+".")
		},
	})
	if err := is.cp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(is.cp.Stop)
	return is
}

// fedSim drives a two-island federation on a fake clock with the
// settle-then-step pattern: settle waits for event quiescence at the current
// fake instant, step advances in 2 ms increments (a divisor of the 20 ms
// media cadence).
type fedSim struct {
	clk      *clock.Fake
	nets     []*netem.Network
	sessions []*rtp.Session

	rawMu    sync.Mutex
	rawData  [][]byte
	rawTimes []time.Time
}

type fedSnap struct {
	frames  int64
	deliv   int64
	recv    int64
	raw     int
	pending int
}

func (s *fedSim) snap() fedSnap {
	var out fedSnap
	for _, n := range s.nets {
		st := n.Stats()
		out.frames += st.TotalFrames()
		out.deliv += st.Deliveries
	}
	for _, sess := range s.sessions {
		out.recv += sess.Stats().Received
	}
	s.rawMu.Lock()
	out.raw = len(s.rawData)
	s.rawMu.Unlock()
	out.pending = s.clk.PendingTimers()
	return out
}

func (s *fedSim) settle() {
	prev := s.snap()
	stable := 0
	for stable < 3 {
		time.Sleep(150 * time.Microsecond)
		cur := s.snap()
		if cur == prev {
			stable++
		} else {
			stable = 0
			prev = cur
		}
	}
}

func (s *fedSim) step(n int) {
	for range n {
		s.clk.Advance(2 * time.Millisecond)
		s.settle()
	}
}

// trunkGoldenResult is everything observable about one golden federation
// call: the receiving session's accounting plus the raw bytes (and arrival
// instants) captured on the reverse direction.
type trunkGoldenResult struct {
	played, late, missing int64
	stats                 rtp.Stats
	rawData               [][]byte
	rawTimes              []time.Time
	trunkA, trunkB        TrunkStats
	internetData          int64
}

// runTrunkGoldenCall runs one bidirectional cross-island media exchange:
// client A streams to client B's session (quality accounting) while client B
// streams to a raw capture port on client A (bit-level accounting).
func runTrunkGoldenCall(t *testing.T, trunked bool) trunkGoldenResult {
	t.Helper()
	sim := &fedSim{clk: clock.NewFake(time.Unix(3_000_000, 0))}
	inet := internet.New(internet.Config{Delay: 700 * time.Microsecond, Clock: sim.clk})
	t.Cleanup(inet.Close)
	pacer := rtp.NewPacer(sim.clk)
	t.Cleanup(pacer.Close)

	a := buildTrunkIsland(t, sim.clk, "10.1", inet, pacer, trunked)
	b := buildTrunkIsland(t, sim.clk, "10.2", inet, pacer, trunked)
	sim.nets = []*netem.Network{a.net, b.net, inet.Network()}

	connA, err := a.client.Listen(4000)
	if err != nil {
		t.Fatal(err)
	}
	connB, err := b.client.Listen(4001)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := a.client.Listen(4002)
	if err != nil {
		t.Fatal(err)
	}
	sessA := rtp.NewSessionWithPacer(connA, sim.clk, 11, pacer)
	sessB := rtp.NewSessionWithPacer(connB, sim.clk, 22, pacer)
	t.Cleanup(sessA.Close)
	t.Cleanup(sessB.Close)
	sim.sessions = []*rtp.Session{sessA, sessB}

	rawDone := make(chan struct{})
	go func() {
		defer close(rawDone)
		for {
			dg, ok := raw.Recv()
			if !ok {
				return
			}
			sim.rawMu.Lock()
			sim.rawData = append(sim.rawData, append([]byte(nil), dg.Data...))
			sim.rawTimes = append(sim.rawTimes, sim.clk.Now())
			sim.rawMu.Unlock()
		}
	}()

	// Drive both islands to Internet attachment.
	sim.settle()
	for i := 0; i < 1000 && !(a.cp.Attached() && b.cp.Attached()); i++ {
		sim.step(1)
	}
	if !a.cp.Attached() || !b.cp.Attached() {
		t.Fatal("islands never attached to their gateways")
	}
	// Align both variants on the same absolute fake instant before media
	// starts, so the clock values embedded in voice payloads — and therefore
	// the raw bytes on the wire — are comparable bit for bit.
	target := time.Unix(3_000_000, 0).Add(4 * time.Second)
	for sim.clk.Now().Before(target) {
		sim.step(1)
	}
	if !sim.clk.Now().Equal(target) {
		t.Fatalf("media start misaligned: %v", sim.clk.Now())
	}

	const frames = 50
	internetBefore := inet.Network().Stats().DataFrames
	stAB := sessA.StartStream(b.client.ID(), 4001, frames)
	stBA := sessB.StartStream(a.client.ID(), 4002, frames)
	sim.settle()
	for {
		sim.step(1)
		select {
		case <-stAB.Done():
		default:
			continue
		}
		select {
		case <-stBA.Done():
		default:
			continue
		}
		break
	}
	sim.step(150) // 300 ms: drain in-flight frames and the playout buffer

	if sent := stAB.Wait(); sent != frames {
		t.Fatalf("A->B sent = %d, want %d", sent, frames)
	}
	if sent := stBA.Wait(); sent != frames {
		t.Fatalf("B->A sent = %d, want %d", sent, frames)
	}

	res := trunkGoldenResult{
		stats:        sessB.Stats(),
		trunkA:       a.gw.TrunkStats(),
		trunkB:       b.gw.TrunkStats(),
		internetData: inet.Network().Stats().DataFrames - internetBefore,
	}
	res.played, res.late, res.missing = sessB.PlayoutStats()
	raw.Close()
	<-rawDone
	res.rawData = sim.rawData
	res.rawTimes = sim.rawTimes
	return res
}

// TestTrunkGoldenEquivalence runs the same seeded cross-island call with and
// without trunking and demands bit-identical media on the wire, identical
// arrival instants, and identical playout/quality accounting. With one stream
// per direction every flush is inline, so trunking must be invisible.
func TestTrunkGoldenEquivalence(t *testing.T) {
	plain := runTrunkGoldenCall(t, false)
	trunked := runTrunkGoldenCall(t, true)

	if plain.played != trunked.played || plain.late != trunked.late || plain.missing != trunked.missing {
		t.Fatalf("playout diverged: untrunked %d/%d/%d, trunked %d/%d/%d",
			plain.played, plain.late, plain.missing,
			trunked.played, trunked.late, trunked.missing)
	}
	if plain.stats != trunked.stats {
		t.Fatalf("receiver stats diverged:\nuntrunked %+v\ntrunked  %+v", plain.stats, trunked.stats)
	}
	if plain.stats.MOS == 0 || plain.played == 0 {
		t.Fatalf("degenerate golden run: played=%d stats=%+v", plain.played, plain.stats)
	}
	if len(plain.rawData) != len(trunked.rawData) {
		t.Fatalf("raw arrival count diverged: %d vs %d", len(plain.rawData), len(trunked.rawData))
	}
	if len(plain.rawData) == 0 {
		t.Fatal("raw capture recorded nothing")
	}
	for i := range plain.rawData {
		if !bytes.Equal(plain.rawData[i], trunked.rawData[i]) {
			t.Fatalf("raw packet %d differs between variants", i)
		}
		if !plain.rawTimes[i].Equal(trunked.rawTimes[i]) {
			t.Fatalf("raw packet %d arrival diverged: %v vs %v",
				i, plain.rawTimes[i], trunked.rawTimes[i])
		}
	}

	// The equivalence is only meaningful if the trunk actually carried the
	// media: both gateways must have trunked every cross-island packet.
	for name, ts := range map[string]TrunkStats{"gwA": trunked.trunkA, "gwB": trunked.trunkB} {
		if ts.PayloadsBatched == 0 || ts.FramesSent == 0 || ts.FramesRecv == 0 {
			t.Fatalf("%s trunk never engaged: %+v", name, ts)
		}
		if ts.PayloadsDelivered != ts.PayloadsBatched {
			t.Fatalf("%s trunk dropped payloads: %+v", name, ts)
		}
	}
	if plain.trunkA.PayloadsBatched != 0 {
		t.Fatalf("untrunked run engaged a trunk: %+v", plain.trunkA)
	}
}

// TestTrunkBatchesConcurrentStreams checks the point of trunking: many
// concurrent streams crossing the same gateway pair collapse into far fewer
// Internet datagrams than the per-packet path needs.
func TestTrunkBatchesConcurrentStreams(t *testing.T) {
	sim := &fedSim{clk: clock.NewFake(time.Unix(4_000_000, 0))}
	inet := internet.New(internet.Config{Delay: 700 * time.Microsecond, Clock: sim.clk})
	t.Cleanup(inet.Close)
	pacer := rtp.NewPacer(sim.clk)
	t.Cleanup(pacer.Close)

	a := buildTrunkIsland(t, sim.clk, "10.1", inet, pacer, true)
	b := buildTrunkIsland(t, sim.clk, "10.2", inet, pacer, true)
	sim.nets = []*netem.Network{a.net, b.net, inet.Network()}

	connA, err := a.client.Listen(4000)
	if err != nil {
		t.Fatal(err)
	}
	sessA := rtp.NewSessionWithPacer(connA, sim.clk, 11, pacer)
	t.Cleanup(sessA.Close)
	sim.sessions = []*rtp.Session{sessA}

	const streams = 8
	const frames = 25
	var recvMu sync.Mutex
	received := 0
	for i := 0; i < streams; i++ {
		conn, err := b.client.Listen(uint16(5000 + i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(conn.Close)
		go func() {
			for {
				if _, ok := conn.Recv(); !ok {
					return
				}
				recvMu.Lock()
				received++
				recvMu.Unlock()
			}
		}()
	}

	sim.settle()
	for i := 0; i < 1000 && !(a.cp.Attached() && b.cp.Attached()); i++ {
		sim.step(1)
	}
	if !a.cp.Attached() || !b.cp.Attached() {
		t.Fatal("islands never attached")
	}

	handles := make([]*rtp.Stream, streams)
	for i := range handles {
		handles[i] = sessA.StartStream(b.client.ID(), uint16(5000+i), frames)
	}
	sim.settle()
	for done := false; !done; {
		sim.step(1)
		done = true
		for _, st := range handles {
			select {
			case <-st.Done():
			default:
				done = false
			}
		}
	}
	sim.step(100)

	ts := a.gw.TrunkStats() // sender side: batching
	tr := b.gw.TrunkStats() // receiver side: fan-out
	if ts.PayloadsBatched != int64(streams*frames) {
		t.Fatalf("trunked payloads = %d, want %d (stats %+v)", ts.PayloadsBatched, streams*frames, ts)
	}
	if tr.PayloadsDelivered != ts.PayloadsBatched || tr.FramesRecv != ts.FramesSent {
		t.Fatalf("trunk dropped traffic: sent %+v, recv %+v", ts, tr)
	}
	recvMu.Lock()
	got := received
	recvMu.Unlock()
	if got != streams*frames {
		t.Fatalf("receivers saw %d packets, want %d", got, streams*frames)
	}
	// The whole point: 8 concurrent streams should need far fewer
	// inter-gateway datagrams than packets. Demand at least a 4x reduction.
	if ts.FramesSent*4 > ts.PayloadsBatched {
		t.Fatalf("trunk barely batched: %d frames for %d payloads (%+v)",
			ts.FramesSent, ts.PayloadsBatched, ts)
	}
}
