package core

import (
	"errors"
	"strings"
	"time"

	"siphoc/internal/netem"
	"siphoc/internal/overlay"
	"siphoc/internal/sip"
	"siphoc/internal/slp"
)

// ServiceDirectory is the discovery surface the SIPHoc control plane needs
// from its service-location backend: register/withdraw local services, query
// the network, and manage cached results. *slp.Agent is the MANET SLP
// implementation used everywhere today; the DHT overlay registrar on the
// roadmap replaces it by implementing this interface — the proxy, the
// Connection Provider and the Gateway Provider only ever see the interface.
type ServiceDirectory interface {
	// Register advertises a local service.
	Register(svc slp.Service) error
	// Deregister withdraws a local service.
	Deregister(stype, key string)
	// Evict drops a cached remote entry (e.g. after a silent next hop).
	Evict(stype, key string)
	// InvalidateOrigin drops every cached entry learned from origin.
	InvalidateOrigin(origin netem.NodeID) int
	// LookupCached answers from the local cache only.
	LookupCached(stype, key string) (slp.Service, bool)
	// Lookup answers from the cache or queries the network within timeout.
	Lookup(stype, key string, timeout time.Duration) (slp.Service, error)
	// Services lists known services of a type (local and cached).
	Services(stype string) []slp.Service
}

var _ ServiceDirectory = (*slp.Agent)(nil)

// ResolveQuery is one routing decision presented to a Resolver: the
// Request-URI being routed plus the context the paper's policy depends on.
// It is passed by value so a chain walk allocates nothing.
type ResolveQuery struct {
	// URI is the request's target (Port is always 0 here; explicit
	// endpoints are routed before resolvers run).
	URI *sip.URI
	// AOR is URI.AddressOfRecord(), precomputed once per request.
	AOR string
	// Attached reports whether the node currently reaches the Internet.
	Attached bool
}

// Resolver is one lookup backend in the proxy's routing policy. Implementers
// answer with the next-hop transport address for the query, or ok=false to
// let the next resolver in the chain try. The built-in chain is the paper's
// policy — local registrar, then MANET SLP, then the Internet provider — and
// the interface is the extension point for alternative backends (the DHT
// overlay registrar of ROADMAP item 3 slots in between SLP and DNS).
type Resolver interface {
	// Kind names the resolver in stats and traces ("local", "slp",
	// "internet", ...).
	Kind() string
	// Resolve maps the query to a next hop.
	Resolve(q ResolveQuery) (sip.Addr, bool)
}

// ErrResolverMiss is the sentinel a typed resolver returns to mean "no
// answer here, try the next backend". Any other error from a TypedResolver
// stops the chain walk and propagates — a DHT lookup that timed out mid-churn
// is an outage to report, not a silent fall-through to a wrong answer.
var ErrResolverMiss = errors.New("core: resolver miss")

// TypedResolver is the optional typed-error surface of a Resolver. ResolveE
// distinguishes a clean miss (ErrResolverMiss) from a backend failure; the
// chain passes failures through to the caller unchanged.
type TypedResolver interface {
	Resolver
	ResolveE(q ResolveQuery) (sip.Addr, error)
}

// ResolverChain tries each resolver in order; the first match wins.
type ResolverChain []Resolver

// Resolve walks the chain and returns the winning resolver's answer and
// kind. The walk itself is allocation-free. Typed-resolver failures degrade
// to a miss here; callers that care use ResolveE.
func (c ResolverChain) Resolve(q ResolveQuery) (sip.Addr, string, bool) {
	addr, kind, err := c.ResolveE(q)
	return addr, kind, err == nil
}

// ResolveE walks the chain with typed errors: a resolver's ErrResolverMiss
// (or plain ok=false) moves on to the next backend, any other error aborts
// the walk and is returned with the failing resolver's kind. An exhausted
// chain returns ErrResolverMiss.
func (c ResolverChain) ResolveE(q ResolveQuery) (sip.Addr, string, error) {
	for _, r := range c {
		if tr, ok := r.(TypedResolver); ok {
			addr, err := tr.ResolveE(q)
			if err == nil {
				return addr, r.Kind(), nil
			}
			if errors.Is(err, ErrResolverMiss) {
				continue
			}
			return sip.Addr{}, r.Kind(), err
		}
		if addr, ok := r.Resolve(q); ok {
			return addr, r.Kind(), nil
		}
	}
	return sip.Addr{}, "", ErrResolverMiss
}

// registrarResolver answers from the proxy's own registrar bindings (the
// locally registered UA).
type registrarResolver struct{ p *Proxy }

// NewRegistrarResolver resolves against p's local registrar bindings.
func NewRegistrarResolver(p *Proxy) Resolver { return registrarResolver{p} }

func (registrarResolver) Kind() string { return "local" }

func (r registrarResolver) Resolve(q ResolveQuery) (sip.Addr, bool) {
	p := r.p
	now := p.clk.Now()
	p.mu.Lock()
	b, ok := p.bindings[q.AOR]
	p.mu.Unlock()
	if ok && now.Before(b.expires) {
		return b.contact, true
	}
	return sip.Addr{}, false
}

// SLPResolverConfig tunes an SLP-backed resolver.
type SLPResolverConfig struct {
	// Timeout bounds a network query when the node is detached.
	Timeout time.Duration
	// TimeoutAttached bounds the query when an Internet fallback exists
	// (fail over fast instead of waiting out the epidemic query).
	TimeoutAttached time.Duration
	// CacheOnly answers only from the local cache and never queries the
	// network. Federated deployments use this: piggyback dissemination keeps
	// intra-island caches warm, and inter-island targets go straight to the
	// provider tier instead of paying a doomed MANET-wide query first.
	CacheOnly bool
	// Self is the owning proxy's own address; SLP answers pointing back at
	// it are ignored (we *are* that proxy).
	Self sip.Addr
}

type slpResolver struct {
	dir ServiceDirectory
	cfg SLPResolverConfig
}

// NewSLPResolver resolves AORs through a service directory (MANET SLP or
// whatever replaces it).
func NewSLPResolver(dir ServiceDirectory, cfg SLPResolverConfig) Resolver {
	return slpResolver{dir: dir, cfg: cfg}
}

func (slpResolver) Kind() string { return "slp" }

func (r slpResolver) Resolve(q ResolveQuery) (sip.Addr, bool) {
	var svc slp.Service
	if r.cfg.CacheOnly {
		var ok bool
		if svc, ok = r.dir.LookupCached(SIPServiceType, q.AOR); !ok {
			return sip.Addr{}, false
		}
	} else {
		timeout := r.cfg.Timeout
		if q.Attached && timeout > r.cfg.TimeoutAttached {
			timeout = r.cfg.TimeoutAttached
		}
		var err error
		if svc, err = r.dir.Lookup(SIPServiceType, q.AOR, timeout); err != nil {
			return sip.Addr{}, false
		}
	}
	_, addrStr, err := slp.ParseServiceURL(svc.URL)
	if err != nil {
		return sip.Addr{}, false
	}
	addr, err := sip.ParseAddr(addrStr)
	if err != nil || addr == r.cfg.Self {
		return sip.Addr{}, false
	}
	return addr, true
}

// dnsResolver is the Internet fallback: when the node is attached and the
// target domain looks routable (contains a dot), hand the request to the
// domain's provider.
type dnsResolver struct {
	dns func(domain string) sip.Addr
}

// NewDNSResolver resolves through the deployment's DNS function (domain ->
// provider proxy address).
func NewDNSResolver(dns func(domain string) sip.Addr) Resolver {
	return dnsResolver{dns: dns}
}

func (dnsResolver) Kind() string { return "internet" }

func (r dnsResolver) Resolve(q ResolveQuery) (sip.Addr, bool) {
	if !q.Attached || !strings.Contains(q.URI.Host, ".") {
		return sip.Addr{}, false
	}
	return r.dns(q.URI.Host), true
}

// OverlayDirectory is the lookup/publish surface the proxy needs from a P2P
// overlay registrar. *overlay.Node implements it; a passive overlay client
// (Config.Passive) is the usual proxy-side deployment — it queries and
// publishes without serving storage itself.
type OverlayDirectory interface {
	// Lookup resolves an AOR to its current contact ("host:port"), blocking
	// up to timeout. A converged negative answer is overlay.ErrNotFound;
	// anything else (overlay.ErrTimeout, overlay.ErrClosed) is a backend
	// failure.
	Lookup(aor string, timeout time.Duration) (string, error)
	// Publish announces (or refreshes) an AOR -> contact binding.
	Publish(aor, contact string)
	// Unpublish withdraws a binding.
	Unpublish(aor string)
}

var _ OverlayDirectory = (*overlay.Node)(nil)

// OverlayResolverConfig tunes an overlay-backed resolver.
type OverlayResolverConfig struct {
	// Timeout bounds the blocking DHT lookup (default 2s).
	Timeout time.Duration
	// Self is the owning proxy's own address; overlay answers pointing back
	// at it are ignored (we *are* that proxy).
	Self sip.Addr
}

type overlayResolver struct {
	dir OverlayDirectory
	cfg OverlayResolverConfig
}

// NewOverlayResolver resolves AORs through a P2P overlay registrar (the DHT).
// It slots between SLP and DNS in the default chain: the MANET answers
// first-hand bindings, the overlay answers federated peers without a central
// provider tier, and DNS remains the fallback for true Internet domains.
func NewOverlayResolver(dir OverlayDirectory, cfg OverlayResolverConfig) Resolver {
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	return overlayResolver{dir: dir, cfg: cfg}
}

func (overlayResolver) Kind() string { return "overlay" }

func (r overlayResolver) Resolve(q ResolveQuery) (sip.Addr, bool) {
	addr, err := r.ResolveE(q)
	return addr, err == nil
}

func (r overlayResolver) ResolveE(q ResolveQuery) (sip.Addr, error) {
	if !q.Attached {
		// The overlay lives on the Internet side of the gateway; a detached
		// node cannot reach it.
		return sip.Addr{}, ErrResolverMiss
	}
	contact, err := r.dir.Lookup(q.AOR, r.cfg.Timeout)
	if err != nil {
		if errors.Is(err, overlay.ErrNotFound) {
			return sip.Addr{}, ErrResolverMiss
		}
		return sip.Addr{}, err
	}
	addr, err := sip.ParseAddr(contact)
	if err != nil || addr == r.cfg.Self {
		return sip.Addr{}, ErrResolverMiss
	}
	return addr, nil
}
