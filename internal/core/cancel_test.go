package core

import (
	"testing"
	"time"

	"siphoc/internal/netem"
	"siphoc/internal/routing/aodv"
	"siphoc/internal/sip"
	"siphoc/internal/slp"
)

// shortTTLFixture builds a single node with SLP + AODV but no proxy, so
// tests can create proxies with custom configurations.
func shortTTLFixture(t *testing.T) (*netem.Network, *netem.Host, *slp.Agent) {
	t.Helper()
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	t.Cleanup(net.Close)
	host, err := net.AddHost("10.0.0.1", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	proto := aodv.New(host, aodv.SimConfig())
	agent := slp.NewAgent(host, slp.Config{})
	agent.AttachRouting(proto)
	if err := proto.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proto.Stop)
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Stop)
	return net, host, agent
}

// TestCancelWithoutMatchingInviteIs481 covers the proxy's CANCEL handling
// when no INVITE transaction matches (RFC 3261 §9.2).
func TestCancelWithoutMatchingInviteIs481(t *testing.T) {
	proxy, host, _ := proxyFixture(t)
	conn, err := host.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	stack := sip.NewStack(conn, sip.SimConfig())
	t.Cleanup(stack.Close)
	cancel := sip.NewRequest(sip.MethodCancel, sip.MustParseURI("sip:bob@voicehoc.ch"))
	cancel.From = &sip.NameAddr{URI: sip.MustParseURI("sip:a@voicehoc.ch")}
	cancel.From.SetTag("t")
	cancel.To = &sip.NameAddr{URI: sip.MustParseURI("sip:bob@voicehoc.ch")}
	cancel.CallID = "c-nomatch"
	cancel.CSeq = sip.CSeq{Seq: 1, Method: sip.MethodCancel}
	tx, err := stack.SendRequest(cancel, proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusCallDoesNotExist {
		t.Fatalf("status = %d, want 481", resp.StatusCode)
	}
}

// TestBindingExpiryHidesUser verifies the registrar binding TTL: once it
// lapses, resolution no longer finds the local user.
func TestBindingExpiryHidesUser(t *testing.T) {
	net, host, agent := shortTTLFixture(t)
	_ = net
	proxy := NewProxy(host, agent, nil, ProxyConfig{
		SLPTimeout: 100 * time.Millisecond,
		BindingTTL: 150 * time.Millisecond,
	})
	if err := proxy.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Stop)
	resp := register(t, host, proxy, "alice", -1) // -1: use BindingTTL default
	if resp.StatusCode != sip.StatusOK {
		t.Fatalf("register = %d", resp.StatusCode)
	}
	if got := proxy.Bindings(); len(got) != 1 {
		t.Fatalf("bindings = %v", got)
	}
	time.Sleep(300 * time.Millisecond)
	if got := proxy.Bindings(); len(got) != 0 {
		t.Fatalf("expired binding still listed: %v", got)
	}
}
