package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/obs"
	"siphoc/internal/slp"
)

// ErrNoGateway reports that gateway discovery exhausted its retry budget
// without acquiring Internet connectivity. The provider keeps probing in the
// background, so the condition clears itself when a gateway appears; the
// typed error exists so callers waiting on attachment fail fast instead of
// hanging.
var ErrNoGateway = errors.New("core: no gateway available")

// ConnProviderConfig tunes the Connection Provider.
type ConnProviderConfig struct {
	// ProbeInterval is how often the provider looks for a gateway when
	// detached and pings it when attached (default 500ms).
	ProbeInterval time.Duration
	// LookupTimeout bounds each SLP gateway lookup (default 300ms).
	LookupTimeout time.Duration
	// AckTimeout bounds the tunnel OPEN/PING round trip (default 1s).
	AckTimeout time.Duration
	// MaxLookupRetries caps consecutive failed gateway-acquisition rounds
	// (wildcard SLP query plus OPEN attempts); once exhausted, LastError and
	// WaitAttached report ErrNoGateway. Probing continues regardless, so a
	// gateway appearing later still attaches automatically. Default 8;
	// negative disables the cap.
	MaxLookupRetries int
	// BlacklistTTL quarantines a gateway after a refused/timed-out OPEN or a
	// dead tunnel, so failover skips it while its stale SLP advert lingers
	// (default 5s; <=0 disables blacklisting).
	BlacklistTTL time.Duration
	// MissedProbeLimit is how many consecutive ping timeouts it takes to
	// declare an attached gateway dead (default 1 — a single missed ping
	// detaches, the fastest detection). Saturated deployments raise it:
	// under heavy load a ping round trip routinely exceeds AckTimeout
	// without the gateway being gone, and one spurious detach costs a
	// blacklist + failover + upstream re-registration storm.
	MissedProbeLimit int
	// IsLocal classifies node IDs as MANET-internal; traffic to other
	// destinations is tunnelled. Default: IDs with no letters (dotted
	// numeric MANET addresses) are local, names like "voicehoc.ch" are
	// Internet hosts.
	IsLocal func(netem.NodeID) bool
	// Clock is the time source (default the system clock).
	Clock clock.Clock
	// Obs records attach spans and tunnel counters. Nil disables.
	Obs *obs.Observer
}

func (c ConnProviderConfig) withDefaults() ConnProviderConfig {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.LookupTimeout == 0 {
		c.LookupTimeout = 300 * time.Millisecond
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = time.Second
	}
	if c.MaxLookupRetries == 0 {
		c.MaxLookupRetries = 8
	}
	if c.BlacklistTTL == 0 {
		c.BlacklistTTL = 5 * time.Second
	}
	if c.MissedProbeLimit == 0 {
		c.MissedProbeLimit = 1
	}
	if c.IsLocal == nil {
		c.IsLocal = func(id netem.NodeID) bool {
			return !strings.ContainsFunc(string(id), func(r rune) bool {
				return r != '.' && (r < '0' || r > '9')
			})
		}
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	return c
}

// ConnStats counts Connection Provider activity. All fields are safe to
// snapshot while the provider runs.
type ConnStats struct {
	Attaches        int64 // successful tunnel attachments
	Detaches        int64 // losses of connectivity (ping failure or stop)
	AttachFails     int64 // OPEN attempts that timed out or were refused
	FramesOut       int64 // datagrams tunnelled out to the gateway
	FramesIn        int64 // datagrams received through the tunnel
	Failovers       int64 // re-attachments after losing a live gateway
	LastAttachGW    string
	LastAttachDur   time.Duration // duration of the most recent attach
	LastFailoverDur time.Duration // gateway loss -> re-attach, most recent
}

// connCounters is the live, atomically updated form of ConnStats.
type connCounters struct {
	attaches    atomic.Int64
	detaches    atomic.Int64
	attachFails atomic.Int64
	framesOut   atomic.Int64
	framesIn    atomic.Int64
	failovers   atomic.Int64
}

// ConnectionProvider manages this node's attachment to the Internet: it
// periodically checks MANET SLP for a gateway service, opens a layer-2
// tunnel to the gateway it finds, and transparently routes Internet-bound
// traffic through it (paper §2, Connection Provider).
type ConnectionProvider struct {
	host  *netem.Host
	agent ServiceDirectory
	cfg   ConnProviderConfig
	clk   clock.Clock

	conn *netem.Conn

	mu            sync.Mutex
	attached      bool
	gateway       netem.NodeID
	gwPort        uint16
	ackCh         chan bool
	pongCh        chan struct{}
	watchers      []func(bool)
	started       bool
	closed        bool
	lastAttachGW  string
	lastAttachDur time.Duration
	// blacklist quarantines gateways that refused an OPEN or died mid-tunnel
	// until the per-entry deadline (lazily expired in gatewayCandidates).
	blacklist map[netem.NodeID]time.Time
	// lookupFails counts consecutive failed acquisition rounds; at the
	// MaxLookupRetries cap, lastErr becomes ErrNoGateway. Both reset on a
	// successful attach.
	lookupFails int
	// missedProbes counts consecutive ping timeouts on the live tunnel;
	// at MissedProbeLimit the gateway is declared lost. Reset by any pong
	// and on attach.
	missedProbes int
	lastErr      error
	// detachedAt stamps the moment a live gateway was lost; the next
	// successful attach turns it into a failover-latency sample.
	detachedAt      time.Time
	lastFailoverDur time.Duration

	stats       connCounters
	obs         *obs.Observer
	obsFailover *obs.Histogram

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewConnectionProvider creates the provider; agent is the node's MANET SLP
// agent used for gateway discovery.
func NewConnectionProvider(host *netem.Host, agent ServiceDirectory, cfg ConnProviderConfig) *ConnectionProvider {
	cfg = cfg.withDefaults()
	return &ConnectionProvider{
		host:        host,
		agent:       agent,
		cfg:         cfg,
		clk:         cfg.Clock,
		obs:         cfg.Obs,
		obsFailover: cfg.Obs.Histogram("connp.failover.delay", nil),
		blacklist:   make(map[netem.NodeID]time.Time),
		stop:        make(chan struct{}),
	}
}

// Stats returns a snapshot of the provider counters.
func (p *ConnectionProvider) Stats() ConnStats {
	p.mu.Lock()
	gw, dur, fdur := p.lastAttachGW, p.lastAttachDur, p.lastFailoverDur
	p.mu.Unlock()
	return ConnStats{
		Attaches:        p.stats.attaches.Load(),
		Detaches:        p.stats.detaches.Load(),
		AttachFails:     p.stats.attachFails.Load(),
		FramesOut:       p.stats.framesOut.Load(),
		FramesIn:        p.stats.framesIn.Load(),
		Failovers:       p.stats.failovers.Load(),
		LastAttachGW:    gw,
		LastAttachDur:   dur,
		LastFailoverDur: fdur,
	}
}

// Start begins gateway discovery.
func (p *ConnectionProvider) Start() error {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return fmt.Errorf("core: connection provider already started")
	}
	p.started = true
	p.mu.Unlock()
	conn, err := p.host.Listen(0)
	if err != nil {
		return err
	}
	p.conn = conn
	p.wg.Add(2)
	go p.recvLoop()
	go p.probeLoop()
	return nil
}

// Stop detaches and terminates the provider.
func (p *ConnectionProvider) Stop() {
	p.mu.Lock()
	if !p.started || p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	attached := p.attached
	gw, gwPort := p.gateway, p.gwPort
	p.mu.Unlock()
	if attached {
		_ = p.conn.WriteTo((&tunnelMsg{Kind: tunClose}).marshal(), gw, gwPort)
	}
	p.detach()
	close(p.stop)
	p.conn.Close()
	p.wg.Wait()
}

// Attached reports whether the node currently has Internet connectivity.
func (p *ConnectionProvider) Attached() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.attached
}

// Gateway returns the gateway node currently in use ("" when detached).
func (p *ConnectionProvider) Gateway() netem.NodeID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gateway
}

// OnChange registers fn to be called (from the provider's goroutine) when
// attachment state flips.
func (p *ConnectionProvider) OnChange(fn func(attached bool)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.watchers = append(p.watchers, fn)
}

func (p *ConnectionProvider) notify(attached bool) {
	p.mu.Lock()
	watchers := make([]func(bool), len(p.watchers))
	copy(watchers, p.watchers)
	p.mu.Unlock()
	for _, fn := range watchers {
		fn(attached)
	}
}

func (p *ConnectionProvider) probeLoop() {
	defer p.wg.Done()
	for {
		timer := p.clk.NewTimer(p.cfg.ProbeInterval)
		select {
		case <-p.stop:
			timer.Stop()
			return
		case <-timer.C():
		}
		if p.Attached() {
			p.pingGateway()
		} else {
			p.tryAttach()
		}
	}
}

// tryAttach looks for gateway services and opens a tunnel to the first
// candidate that answers. Candidates are tried freshest-advert-first, so a
// dead gateway whose stale advert still lingers in the cache only costs one
// OPEN timeout before the live one is used.
func (p *ConnectionProvider) tryAttach() {
	// The attach span covers the whole acquisition: SLP gateway discovery
	// plus the tunnel OPEN handshake. It is node-scoped (no Call-ID) and is
	// stitched into call traces by time proximity.
	span := p.obs.StartSpan("", obs.PhaseGatewayAttach, string(p.host.ID()))
	attachStart := p.clk.Now()
	candidates := p.gatewayCandidates()
	if len(candidates) == 0 {
		// Nothing cached: issue a wildcard query and retry on answer. The
		// answer may only contain blacklisted gateways, in which case the
		// round still counts as failed below.
		if _, err := p.agent.Lookup(GatewayServiceType, "", p.cfg.LookupTimeout); err != nil {
			p.noteAttachFailure()
			return
		}
		candidates = p.gatewayCandidates()
	}
	for _, cand := range candidates {
		if p.openTunnel(cand.node, cand.port) {
			dur := p.clk.Now().Sub(attachStart)
			p.mu.Lock()
			p.attached = true
			p.gateway = cand.node
			p.gwPort = cand.port
			p.lastAttachGW = string(cand.node)
			p.lastAttachDur = dur
			p.lookupFails = 0
			p.lastErr = nil
			var failover time.Duration
			if !p.detachedAt.IsZero() {
				failover = p.clk.Now().Sub(p.detachedAt)
				p.detachedAt = time.Time{}
				p.lastFailoverDur = failover
			}
			p.mu.Unlock()
			p.stats.attaches.Add(1)
			if failover > 0 {
				p.stats.failovers.Add(1)
				p.obsFailover.Observe(failover)
			}
			span.End("gw=" + string(cand.node))
			p.host.SetDefaultHandler(p.tunnelOut)
			p.notify(true)
			return
		}
		p.stats.attachFails.Add(1)
		// A refused or timed-out OPEN quarantines the candidate so the
		// next round moves straight to an alternative.
		p.blacklistGateway(cand.node)
		select {
		case <-p.stop:
			return
		default:
		}
	}
	p.noteAttachFailure()
}

// noteAttachFailure counts one failed acquisition round; once the budget is
// spent, ErrNoGateway is surfaced via LastError/WaitAttached. The probe loop
// keeps running so later rounds can still recover.
func (p *ConnectionProvider) noteAttachFailure() {
	if p.cfg.MaxLookupRetries < 0 {
		return
	}
	p.mu.Lock()
	p.lookupFails++
	if p.lookupFails >= p.cfg.MaxLookupRetries && p.lastErr == nil {
		p.lastErr = ErrNoGateway
	}
	p.mu.Unlock()
}

// blacklistGateway quarantines gw for the configured TTL.
func (p *ConnectionProvider) blacklistGateway(gw netem.NodeID) {
	if p.cfg.BlacklistTTL <= 0 {
		return
	}
	p.mu.Lock()
	p.blacklist[gw] = p.clk.Now().Add(p.cfg.BlacklistTTL)
	p.mu.Unlock()
}

// Blacklisted lists currently quarantined gateways, sorted.
func (p *ConnectionProvider) Blacklisted() []netem.NodeID {
	now := p.clk.Now()
	p.mu.Lock()
	out := make([]netem.NodeID, 0, len(p.blacklist))
	for gw, until := range p.blacklist {
		if now.Before(until) {
			out = append(out, gw)
		}
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LastError returns ErrNoGateway once the acquisition budget has been spent
// without attaching, nil otherwise. It clears on the next successful attach.
func (p *ConnectionProvider) LastError() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastErr
}

// WaitAttached blocks until the provider attaches (nil), the acquisition
// budget is exhausted, or the timeout elapses. Both failure returns satisfy
// errors.Is(err, ErrNoGateway).
func (p *ConnectionProvider) WaitAttached(timeout time.Duration) error {
	deadline := p.clk.Now().Add(timeout)
	poll := p.cfg.ProbeInterval / 4
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	for {
		p.mu.Lock()
		attached, lastErr, closed := p.attached, p.lastErr, p.closed
		p.mu.Unlock()
		if attached {
			return nil
		}
		if closed {
			return fmt.Errorf("core: connection provider stopped: %w", ErrNoGateway)
		}
		if lastErr != nil {
			return lastErr
		}
		if !p.clk.Now().Before(deadline) {
			return fmt.Errorf("core: no gateway after %v: %w", timeout, ErrNoGateway)
		}
		p.clk.Sleep(poll)
	}
}

type gatewayCandidate struct {
	node    netem.NodeID
	port    uint16
	expires time.Time
}

// gatewayCandidates lists reachable-looking gateways from the SLP cache,
// freshest first.
func (p *ConnectionProvider) gatewayCandidates() []gatewayCandidate {
	now := p.clk.Now()
	p.mu.Lock()
	quarantined := make(map[netem.NodeID]bool, len(p.blacklist))
	for gw, until := range p.blacklist {
		if now.After(until) {
			delete(p.blacklist, gw)
			continue
		}
		quarantined[gw] = true
	}
	p.mu.Unlock()
	var out []gatewayCandidate
	for _, svc := range p.agent.Services(GatewayServiceType) {
		_, addr, err := slp.ParseServiceURL(svc.URL)
		if err != nil {
			continue
		}
		host, portStr, ok := strings.Cut(addr, ":")
		if !ok {
			continue
		}
		var port uint16
		if _, err := fmt.Sscanf(portStr, "%d", &port); err != nil {
			continue
		}
		gw := netem.NodeID(host)
		if gw == p.host.ID() {
			continue // we are the gateway; nothing to tunnel
		}
		if quarantined[gw] {
			continue // known-dead until the blacklist TTL expires
		}
		out = append(out, gatewayCandidate{node: gw, port: port, expires: svc.Expires})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].expires.After(out[j].expires) })
	return out
}

// openTunnel sends OPEN to the gateway and waits for the acknowledgement.
func (p *ConnectionProvider) openTunnel(gw netem.NodeID, port uint16) bool {
	ack := make(chan bool, 1)
	p.mu.Lock()
	p.ackCh = ack
	p.mu.Unlock()
	if err := p.conn.WriteTo((&tunnelMsg{Kind: tunOpen}).marshal(), gw, port); err != nil {
		return false
	}
	timer := p.clk.NewTimer(p.cfg.AckTimeout)
	defer timer.Stop()
	select {
	case ok := <-ack:
		return ok
	case <-timer.C():
		return false
	case <-p.stop:
		return false
	}
}

// pingGateway verifies tunnel liveness; on failure it detaches so the next
// probe can find another gateway.
func (p *ConnectionProvider) pingGateway() {
	pong := make(chan struct{}, 1)
	p.mu.Lock()
	p.pongCh = pong
	gw, port := p.gateway, p.gwPort
	p.mu.Unlock()
	if err := p.conn.WriteTo((&tunnelMsg{Kind: tunPing}).marshal(), gw, port); err != nil {
		p.gatewayLost(gw)
		return
	}
	timer := p.clk.NewTimer(p.cfg.AckTimeout)
	defer timer.Stop()
	select {
	case <-pong:
		p.mu.Lock()
		p.missedProbes = 0
		p.mu.Unlock()
	case <-timer.C():
		p.mu.Lock()
		p.missedProbes++
		missed := p.missedProbes
		p.mu.Unlock()
		if missed >= p.cfg.MissedProbeLimit {
			p.gatewayLost(gw)
		}
	case <-p.stop:
	}
}

// gatewayLost handles a dead tunnel: quarantine the gateway, purge its SLP
// adverts locally so subsequent resolutions do not return stale routes, stamp
// the failover clock, then detach and notify watchers.
func (p *ConnectionProvider) gatewayLost(gw netem.NodeID) {
	if gw != "" {
		p.blacklistGateway(gw)
		p.agent.InvalidateOrigin(gw)
	}
	p.mu.Lock()
	p.detachedAt = p.clk.Now()
	p.mu.Unlock()
	p.detachAndNotify()
}

func (p *ConnectionProvider) detach() {
	p.mu.Lock()
	wasAttached := p.attached
	p.attached = false
	p.gateway = ""
	p.gwPort = 0
	p.mu.Unlock()
	if wasAttached {
		p.stats.detaches.Add(1)
		p.host.SetDefaultHandler(nil)
	}
}

func (p *ConnectionProvider) detachAndNotify() {
	p.detach()
	p.notify(false)
}

// tunnelOut is the host's default handler: it encapsulates Internet-bound
// datagrams into the tunnel. MANET-local destinations are left to routing.
func (p *ConnectionProvider) tunnelOut(dg *netem.Datagram) bool {
	if p.cfg.IsLocal(dg.DstNode) {
		return false
	}
	p.mu.Lock()
	attached := p.attached
	gw, port := p.gateway, p.gwPort
	p.mu.Unlock()
	if !attached {
		return false
	}
	data, err := encapsulate(dg)
	if err != nil {
		return false
	}
	p.stats.framesOut.Add(1)
	return p.conn.WriteTo(data, gw, port) == nil
}

func (p *ConnectionProvider) recvLoop() {
	defer p.wg.Done()
	for {
		dg, ok := p.conn.Recv()
		if !ok {
			return
		}
		msg, err := parseTunnelMsg(dg.Data)
		if err != nil {
			continue
		}
		switch msg.Kind {
		case tunOpenAck:
			p.mu.Lock()
			ch := p.ackCh
			p.ackCh = nil
			p.mu.Unlock()
			if ch != nil {
				ch <- msg.OK
			}
		case tunPong:
			p.mu.Lock()
			ch := p.pongCh
			p.pongCh = nil
			p.mu.Unlock()
			if ch != nil {
				ch <- struct{}{}
			}
		case tunData:
			inner, err := netem.UnmarshalDatagram(msg.Inner)
			if err != nil {
				continue
			}
			p.stats.framesIn.Add(1)
			p.host.InjectDatagram(inner)
		case tunClose:
			// The gateway announced a graceful shutdown: fail over now
			// instead of waiting for the next ping to time out.
			p.mu.Lock()
			current := p.attached && dg.SrcNode == p.gateway
			p.mu.Unlock()
			if current {
				p.gatewayLost(dg.SrcNode)
			}
		}
	}
}
