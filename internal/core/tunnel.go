package core

import (
	"fmt"

	"siphoc/internal/netem"
	"siphoc/internal/wire"
)

// TunnelPort is the well-known MANET-side port of a gateway's tunnel server.
const TunnelPort uint16 = 9000

// GatewayServiceType is the SLP service type gateways publish under.
const GatewayServiceType = "gateway"

// Tunnel control message kinds.
const (
	tunOpen uint8 = iota + 1
	tunOpenAck
	tunData
	tunClose
	tunPing
	tunPong
)

// tunnelMsg is one tunnel-layer message: a control byte plus, for tunData,
// an encapsulated datagram.
type tunnelMsg struct {
	Kind  uint8
	OK    bool   // tunOpenAck
	Inner []byte // tunData: MarshalDatagram output
}

func (m *tunnelMsg) marshal() []byte {
	w := wire.NewWriter(2 + len(m.Inner))
	w.U8(m.Kind)
	switch m.Kind {
	case tunOpenAck:
		if m.OK {
			w.U8(1)
		} else {
			w.U8(0)
		}
	case tunData:
		w.Raw(m.Inner)
	}
	return w.Bytes()
}

func parseTunnelMsg(b []byte) (*tunnelMsg, error) {
	r := wire.NewReader(b)
	m := &tunnelMsg{Kind: r.U8()}
	switch m.Kind {
	case tunOpenAck:
		m.OK = r.U8() == 1
	case tunData:
		m.Inner = append([]byte(nil), r.Remaining()...)
	case tunOpen, tunClose, tunPing, tunPong:
	default:
		return nil, fmt.Errorf("core: unknown tunnel message kind %d", m.Kind)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: parse tunnel message: %w", err)
	}
	return m, nil
}

// encapsulate wraps a datagram for transport through the tunnel.
func encapsulate(dg *netem.Datagram) ([]byte, error) {
	inner, err := netem.MarshalDatagram(dg)
	if err != nil {
		return nil, err
	}
	return (&tunnelMsg{Kind: tunData, Inner: inner}).marshal(), nil
}
