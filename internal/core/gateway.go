package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/internet"
	"siphoc/internal/netem"
	"siphoc/internal/obs"
	"siphoc/internal/slp"
)

// GatewayConfig tunes the Gateway Provider.
type GatewayConfig struct {
	// TunnelPort is the MANET-side tunnel server port (default 9000).
	TunnelPort uint16
	// ClientTTL evicts tunnel clients that stop pinging (default 10s).
	ClientTTL time.Duration
	// Clock is the time source (default the system clock).
	Clock clock.Clock
	// Obs records tunnel gauges and counters. Nil disables.
	Obs *obs.Observer
	// Trunk, when set, enables inter-gateway media trunking: tunnelled
	// datagrams destined to another trunk-enabled gateway's client are
	// batched into paced trunk frames instead of crossing the Internet one
	// datagram per RTP packet.
	Trunk *TrunkConfig
}

func (c GatewayConfig) withDefaults() GatewayConfig {
	if c.TunnelPort == 0 {
		c.TunnelPort = TunnelPort
	}
	if c.ClientTTL == 0 {
		c.ClientTTL = 10 * time.Second
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	return c
}

// GatewayStats counts gateway activity.
type GatewayStats struct {
	TunnelsOpened int64
	TunnelsClosed int64
	FramesIn      int64 // datagrams tunnelled MANET -> Internet
	FramesOut     int64 // datagrams tunnelled Internet -> MANET
}

// gatewayCounters is the live, atomically updated form of GatewayStats, so
// snapshots never race with the tunnelling data path.
type gatewayCounters struct {
	tunnelsOpened atomic.Int64
	tunnelsClosed atomic.Int64
	framesIn      atomic.Int64
	framesOut     atomic.Int64
}

func (c *gatewayCounters) snapshot() GatewayStats {
	return GatewayStats{
		TunnelsOpened: c.tunnelsOpened.Load(),
		TunnelsClosed: c.tunnelsClosed.Load(),
		FramesIn:      c.framesIn.Load(),
		FramesOut:     c.framesOut.Load(),
	}
}

type tunnelClient struct {
	node     netem.NodeID
	peer     uint16 // client's tunnel port on the MANET side
	vhost    *netem.Host
	lastSeen time.Time
}

// GatewayProvider makes a node's Internet connectivity available to the
// MANET: it publishes an SLP gateway service and bridges tunnelled traffic
// onto the Internet by giving each tunnel client a virtual presence there
// (the layer-2 tunnel of the paper: the client is "automatically attached to
// the Internet").
type GatewayProvider struct {
	host  *netem.Host
	inet  *internet.Internet
	agent ServiceDirectory
	cfg   GatewayConfig
	clk   clock.Clock

	conn     *netem.Conn
	selfHost *netem.Host   // the gateway's own Internet presence
	trunk    *gatewayTrunk // nil unless cfg.Trunk is set

	mu      sync.Mutex
	clients map[netem.NodeID]*tunnelClient
	started bool
	closed  bool

	stats gatewayCounters
	// Pre-resolved obs handle; nil when cfg.Obs is nil.
	obsClients *obs.Gauge

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewGatewayProvider creates the provider for a node that has Internet
// connectivity (modelled by access to inet). agent is the node's MANET SLP
// agent, used to publish the gateway service.
func NewGatewayProvider(host *netem.Host, inet *internet.Internet, agent ServiceDirectory, cfg GatewayConfig) *GatewayProvider {
	cfg = cfg.withDefaults()
	g := &GatewayProvider{
		host:    host,
		inet:    inet,
		agent:   agent,
		cfg:     cfg,
		clk:     cfg.Clock,
		clients: make(map[netem.NodeID]*tunnelClient),
		stop:    make(chan struct{}),
	}
	if cfg.Obs.Enabled() {
		g.obsClients = cfg.Obs.Gauge("gateway.tunnels.active")
	}
	return g
}

// Start publishes the gateway service and begins accepting tunnels. It also
// attaches the gateway node itself to the Internet.
func (g *GatewayProvider) Start() error {
	g.mu.Lock()
	if g.started {
		g.mu.Unlock()
		return fmt.Errorf("core: gateway already started")
	}
	g.started = true
	g.mu.Unlock()

	conn, err := g.host.Listen(g.cfg.TunnelPort)
	if err != nil {
		return fmt.Errorf("core: gateway bind: %w", err)
	}
	g.conn = conn

	// The gateway's own Internet presence: traffic to our node ID on the
	// Internet is injected into the local MANET-side stack, and local
	// traffic with no MANET route leaves via the Internet.
	selfHost, err := g.inet.AddHost(g.host.ID())
	if err != nil {
		conn.Close()
		return fmt.Errorf("core: gateway internet attach: %w", err)
	}
	g.selfHost = selfHost
	selfHost.SetSink(func(dg *netem.Datagram) {
		g.host.InjectDatagram(dg)
	})
	g.host.SetDefaultHandler(func(dg *netem.Datagram) bool {
		cp := *dg
		return g.selfHost.SendDatagram(&cp) == nil
	})

	if g.cfg.Trunk != nil {
		trunk, err := newGatewayTrunk(g, *g.cfg.Trunk)
		if err != nil {
			g.inet.RemoveHost(g.host.ID())
			g.host.SetDefaultHandler(nil)
			conn.Close()
			return err
		}
		g.trunk = trunk
	}

	// Keyed by our node ID so several gateways can coexist in the SLP
	// caches; Connection Providers browse the type and pick one.
	if err := g.agent.Register(slp.Service{
		Type: GatewayServiceType,
		Key:  string(g.host.ID()),
		URL:  slp.ServiceURL(GatewayServiceType, fmt.Sprintf("%s:%d", g.host.ID(), g.cfg.TunnelPort)),
	}); err != nil {
		conn.Close()
		return err
	}

	g.wg.Add(2)
	go g.recvLoop()
	go g.evictLoop()
	return nil
}

// Stop withdraws the gateway service and tears all tunnels down.
func (g *GatewayProvider) Stop() {
	g.mu.Lock()
	if !g.started || g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	clients := make([]*tunnelClient, 0, len(g.clients))
	for _, c := range g.clients {
		clients = append(clients, c)
	}
	g.clients = make(map[netem.NodeID]*tunnelClient)
	g.mu.Unlock()

	g.agent.Deregister(GatewayServiceType, string(g.host.ID()))
	for _, c := range clients {
		// Graceful shutdown: tell each client the tunnel is gone so its
		// Connection Provider fails over immediately instead of waiting for
		// a ping timeout.
		_ = g.conn.WriteTo((&tunnelMsg{Kind: tunClose}).marshal(), c.node, c.peer)
		if g.trunk != nil {
			g.inet.UnregisterTrunkClient(c.node, g.host.ID())
		}
		g.inet.RemoveHost(c.node)
	}
	if g.trunk != nil {
		g.trunk.close()
	}
	// Withdraw the gateway's own Internet presence too, or the node can
	// never come back as a gateway under the same ID.
	g.inet.RemoveHost(g.host.ID())
	g.host.SetDefaultHandler(nil)
	close(g.stop)
	g.conn.Close()
	g.wg.Wait()
}

// Stats returns a snapshot of the gateway counters.
func (g *GatewayProvider) Stats() GatewayStats {
	return g.stats.snapshot()
}

// TrunkStats returns a snapshot of the trunk counters (zero when trunking is
// disabled).
func (g *GatewayProvider) TrunkStats() TrunkStats {
	if g.trunk == nil {
		return TrunkStats{}
	}
	return g.trunk.stats.snapshot()
}

// Clients returns the nodes currently tunnelled through this gateway.
func (g *GatewayProvider) Clients() []netem.NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]netem.NodeID, 0, len(g.clients))
	for id := range g.clients {
		out = append(out, id)
	}
	return out
}

func (g *GatewayProvider) recvLoop() {
	defer g.wg.Done()
	for {
		dg, ok := g.conn.Recv()
		if !ok {
			return
		}
		msg, err := parseTunnelMsg(dg.Data)
		if err != nil {
			continue
		}
		switch msg.Kind {
		case tunOpen:
			g.handleOpen(dg.SrcNode, dg.SrcPort)
		case tunData:
			g.handleData(dg.SrcNode, msg.Inner)
		case tunClose:
			g.closeClient(dg.SrcNode)
		case tunPing:
			g.touch(dg.SrcNode)
			_ = g.conn.WriteTo((&tunnelMsg{Kind: tunPong}).marshal(), dg.SrcNode, dg.SrcPort)
		}
	}
}

func (g *GatewayProvider) handleOpen(node netem.NodeID, peerPort uint16) {
	g.mu.Lock()
	if c, ok := g.clients[node]; ok {
		// Re-open from the same node: refresh.
		c.peer = peerPort
		c.lastSeen = g.clk.Now()
		g.mu.Unlock()
		_ = g.conn.WriteTo((&tunnelMsg{Kind: tunOpenAck, OK: true}).marshal(), node, peerPort)
		return
	}
	g.mu.Unlock()

	vhost, err := g.inet.AddHost(node)
	if err != nil {
		_ = g.conn.WriteTo((&tunnelMsg{Kind: tunOpenAck, OK: false}).marshal(), node, peerPort)
		return
	}
	if g.trunk != nil {
		g.inet.RegisterTrunkClient(node, g.host.ID())
	}
	c := &tunnelClient{node: node, peer: peerPort, vhost: vhost, lastSeen: g.clk.Now()}
	vhost.SetSink(func(dg *netem.Datagram) {
		data, err := encapsulate(dg)
		if err != nil {
			return
		}
		g.mu.Lock()
		peer := c.peer
		g.mu.Unlock()
		g.stats.framesOut.Add(1)
		_ = g.conn.WriteTo(data, node, peer)
	})
	g.mu.Lock()
	g.clients[node] = c
	active := len(g.clients)
	g.mu.Unlock()
	g.stats.tunnelsOpened.Add(1)
	g.obsClients.Set(int64(active))
	_ = g.conn.WriteTo((&tunnelMsg{Kind: tunOpenAck, OK: true}).marshal(), node, peerPort)
}

func (g *GatewayProvider) handleData(node netem.NodeID, inner []byte) {
	g.mu.Lock()
	c := g.clients[node]
	if c != nil {
		c.lastSeen = g.clk.Now()
	}
	g.mu.Unlock()
	if c == nil {
		return
	}
	g.stats.framesIn.Add(1)
	dg, err := netem.UnmarshalDatagram(inner)
	if err != nil {
		return
	}
	// When the destination is another trunk-enabled gateway's tunnel client,
	// fold the already-marshalled datagram into that gateway's trunk instead
	// of sending it across the Internet on its own.
	if g.trunk != nil {
		if gw, ok := g.inet.TrunkGatewayFor(dg.DstNode); ok && gw != g.host.ID() {
			if g.trunk.enqueue(gw, inner) {
				return
			}
		}
	}
	_ = c.vhost.SendDatagram(dg)
}

// deliverTrunked hands a datagram received inside a trunk frame to its local
// tunnel client, the same path an untrunked Internet datagram would take
// through the client's virtual-host sink. If the client is gone (it
// re-tunnelled elsewhere between send and receive), the datagram is re-sent
// over the Internet so it still arrives via the client's current gateway.
func (g *GatewayProvider) deliverTrunked(dg *netem.Datagram) {
	g.mu.Lock()
	c := g.clients[dg.DstNode]
	var peer uint16
	if c != nil {
		peer = c.peer
	}
	g.mu.Unlock()
	if c == nil {
		cp := *dg
		_ = g.selfHost.SendDatagram(&cp)
		return
	}
	data, err := encapsulate(dg)
	if err != nil {
		return
	}
	g.stats.framesOut.Add(1)
	_ = g.conn.WriteTo(data, c.node, peer)
}

func (g *GatewayProvider) touch(node netem.NodeID) {
	g.mu.Lock()
	if c := g.clients[node]; c != nil {
		c.lastSeen = g.clk.Now()
	}
	g.mu.Unlock()
}

func (g *GatewayProvider) closeClient(node netem.NodeID) {
	g.mu.Lock()
	c := g.clients[node]
	delete(g.clients, node)
	active := len(g.clients)
	g.mu.Unlock()
	if c != nil {
		g.stats.tunnelsClosed.Add(1)
		g.obsClients.Set(int64(active))
		if g.trunk != nil {
			g.inet.UnregisterTrunkClient(node, g.host.ID())
		}
		g.inet.RemoveHost(node)
	}
}

func (g *GatewayProvider) evictLoop() {
	defer g.wg.Done()
	for {
		timer := g.clk.NewTimer(g.cfg.ClientTTL / 2)
		select {
		case <-g.stop:
			timer.Stop()
			return
		case <-timer.C():
		}
		now := g.clk.Now()
		var dead []netem.NodeID
		g.mu.Lock()
		for id, c := range g.clients {
			if now.Sub(c.lastSeen) > g.cfg.ClientTTL {
				dead = append(dead, id)
			}
		}
		g.mu.Unlock()
		for _, id := range dead {
			g.closeClient(id)
		}
	}
}
