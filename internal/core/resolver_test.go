package core

import (
	"fmt"
	"testing"
	"time"

	"siphoc/internal/netem"
	"siphoc/internal/sip"
	"siphoc/internal/slp"
)

// stubDirectory is a canned ServiceDirectory for resolver tests: a fixed
// cache plus counters for which lookup path was taken.
type stubDirectory struct {
	cached  map[string]slp.Service
	net     map[string]slp.Service
	cacheQ  int
	netQ    int
	evicted []string
}

func (s *stubDirectory) Register(svc slp.Service) error { return nil }
func (s *stubDirectory) Deregister(stype, key string)   {}
func (s *stubDirectory) Evict(stype, key string) {
	s.evicted = append(s.evicted, stype+"/"+key)
}
func (s *stubDirectory) InvalidateOrigin(origin netem.NodeID) int { return 0 }

func (s *stubDirectory) LookupCached(stype, key string) (slp.Service, bool) {
	s.cacheQ++
	svc, ok := s.cached[stype+"/"+key]
	return svc, ok
}

func (s *stubDirectory) Lookup(stype, key string, timeout time.Duration) (slp.Service, error) {
	if svc, ok := s.cached[stype+"/"+key]; ok {
		s.cacheQ++
		return svc, nil
	}
	s.netQ++
	if svc, ok := s.net[stype+"/"+key]; ok {
		return svc, nil
	}
	return slp.Service{}, fmt.Errorf("stub: %s/%s not found", stype, key)
}

func (s *stubDirectory) Services(stype string) []slp.Service { return nil }

func cachedSIP(aor, addr string) map[string]slp.Service {
	return map[string]slp.Service{
		SIPServiceType + "/" + aor: {
			Type: SIPServiceType,
			Key:  aor,
			URL:  slp.ServiceURL(SIPServiceType, addr),
		},
	}
}

func query(aor string, attached bool) ResolveQuery {
	uri := sip.MustParseURI("sip:" + aor)
	return ResolveQuery{URI: uri, AOR: aor, Attached: attached}
}

// kindResolver answers a fixed address for one AOR, for chain-order tests.
type kindResolver struct {
	kind string
	aor  string
	addr sip.Addr
}

func (r kindResolver) Kind() string { return r.kind }
func (r kindResolver) Resolve(q ResolveQuery) (sip.Addr, bool) {
	if q.AOR == r.aor {
		return r.addr, true
	}
	return sip.Addr{}, false
}

func TestResolverChainFirstMatchWins(t *testing.T) {
	chain := ResolverChain{
		kindResolver{kind: "a", aor: "x@d.ch", addr: sip.Addr{Node: "n1", Port: 1}},
		kindResolver{kind: "b", aor: "x@d.ch", addr: sip.Addr{Node: "n2", Port: 2}},
		kindResolver{kind: "c", aor: "y@d.ch", addr: sip.Addr{Node: "n3", Port: 3}},
	}
	addr, kind, ok := chain.Resolve(query("x@d.ch", false))
	if !ok || kind != "a" || addr.Node != "n1" {
		t.Fatalf("resolve x = %v %q %v, want first resolver", addr, kind, ok)
	}
	addr, kind, ok = chain.Resolve(query("y@d.ch", false))
	if !ok || kind != "c" || addr.Node != "n3" {
		t.Fatalf("resolve y = %v %q %v, want third resolver", addr, kind, ok)
	}
	if _, _, ok := chain.Resolve(query("z@d.ch", false)); ok {
		t.Fatal("resolved an AOR no resolver knows")
	}
}

func TestSLPResolverModes(t *testing.T) {
	dir := &stubDirectory{
		cached: cachedSIP("alice@voicehoc.ch", "10.0.0.1:5060"),
		net: map[string]slp.Service{
			SIPServiceType + "/bob@voicehoc.ch": {
				Type: SIPServiceType,
				Key:  "bob@voicehoc.ch",
				URL:  slp.ServiceURL(SIPServiceType, "10.0.0.2:5060"),
			},
		},
	}
	r := NewSLPResolver(dir, SLPResolverConfig{Timeout: time.Second, TimeoutAttached: 100 * time.Millisecond})

	if addr, ok := r.Resolve(query("alice@voicehoc.ch", false)); !ok || addr.Node != "10.0.0.1" {
		t.Fatalf("cached resolve = %v %v", addr, ok)
	}
	if addr, ok := r.Resolve(query("bob@voicehoc.ch", false)); !ok || addr.Node != "10.0.0.2" {
		t.Fatalf("network resolve = %v %v", addr, ok)
	}
	if dir.netQ != 1 {
		t.Fatalf("network queries = %d, want 1", dir.netQ)
	}

	// Cache-only mode must never hit the network: the miss that would have
	// triggered an epidemic query falls through instead.
	co := NewSLPResolver(dir, SLPResolverConfig{CacheOnly: true})
	if addr, ok := co.Resolve(query("alice@voicehoc.ch", false)); !ok || addr.Node != "10.0.0.1" {
		t.Fatalf("cache-only hit = %v %v", addr, ok)
	}
	if _, ok := co.Resolve(query("carol@voicehoc.ch", false)); ok {
		t.Fatal("cache-only resolver answered a cache miss")
	}
	if dir.netQ != 1 {
		t.Fatalf("cache-only mode queried the network (netQ=%d)", dir.netQ)
	}

	// Answers pointing back at the resolving proxy itself are rejected.
	self := NewSLPResolver(dir, SLPResolverConfig{
		CacheOnly: true,
		Self:      sip.Addr{Node: "10.0.0.1", Port: 5060},
	})
	if _, ok := self.Resolve(query("alice@voicehoc.ch", false)); ok {
		t.Fatal("resolver returned its own proxy as next hop")
	}
}

func TestDNSResolverGating(t *testing.T) {
	r := NewDNSResolver(func(domain string) sip.Addr {
		return sip.Addr{Node: netem.NodeID(domain), Port: sip.DefaultPort}
	})
	if _, ok := r.Resolve(query("alice@voicehoc.ch", false)); ok {
		t.Fatal("DNS resolver answered while detached")
	}
	if _, ok := r.Resolve(query("alice@manet", true)); ok {
		t.Fatal("DNS resolver answered for a dotless (MANET-local) host")
	}
	if addr, ok := r.Resolve(query("alice@voicehoc.ch", true)); !ok || addr.Node != "voicehoc.ch" {
		t.Fatalf("DNS resolve = %v %v", addr, ok)
	}
}

// The SLP hot path — a chain walk ending in a cache hit — must not allocate:
// it runs once per routed request on every node.
func TestResolverChainCachedLookupAllocFree(t *testing.T) {
	dir := &stubDirectory{cached: cachedSIP("alice@voicehoc.ch", "10.0.0.7:5060")}
	chain := ResolverChain{
		NewSLPResolver(dir, SLPResolverConfig{CacheOnly: true}),
	}
	q := query("alice@voicehoc.ch", true)
	if allocs := testing.AllocsPerRun(200, func() {
		if _, _, ok := chain.Resolve(q); !ok {
			t.Fatal("lookup missed")
		}
	}); allocs != 0 {
		t.Fatalf("resolver chain cached lookup allocates %.1f times per call, want 0", allocs)
	}
}
