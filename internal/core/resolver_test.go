package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"siphoc/internal/netem"
	"siphoc/internal/overlay"
	"siphoc/internal/sip"
	"siphoc/internal/slp"
)

// stubDirectory is a canned ServiceDirectory for resolver tests: a fixed
// cache plus counters for which lookup path was taken.
type stubDirectory struct {
	cached  map[string]slp.Service
	net     map[string]slp.Service
	cacheQ  int
	netQ    int
	evicted []string
}

func (s *stubDirectory) Register(svc slp.Service) error { return nil }
func (s *stubDirectory) Deregister(stype, key string)   {}
func (s *stubDirectory) Evict(stype, key string) {
	s.evicted = append(s.evicted, stype+"/"+key)
}
func (s *stubDirectory) InvalidateOrigin(origin netem.NodeID) int { return 0 }

func (s *stubDirectory) LookupCached(stype, key string) (slp.Service, bool) {
	s.cacheQ++
	svc, ok := s.cached[stype+"/"+key]
	return svc, ok
}

func (s *stubDirectory) Lookup(stype, key string, timeout time.Duration) (slp.Service, error) {
	if svc, ok := s.cached[stype+"/"+key]; ok {
		s.cacheQ++
		return svc, nil
	}
	s.netQ++
	if svc, ok := s.net[stype+"/"+key]; ok {
		return svc, nil
	}
	return slp.Service{}, fmt.Errorf("stub: %s/%s not found", stype, key)
}

func (s *stubDirectory) Services(stype string) []slp.Service { return nil }

func cachedSIP(aor, addr string) map[string]slp.Service {
	return map[string]slp.Service{
		SIPServiceType + "/" + aor: {
			Type: SIPServiceType,
			Key:  aor,
			URL:  slp.ServiceURL(SIPServiceType, addr),
		},
	}
}

func query(aor string, attached bool) ResolveQuery {
	uri := sip.MustParseURI("sip:" + aor)
	return ResolveQuery{URI: uri, AOR: aor, Attached: attached}
}

// kindResolver answers a fixed address for one AOR, for chain-order tests.
type kindResolver struct {
	kind string
	aor  string
	addr sip.Addr
}

func (r kindResolver) Kind() string { return r.kind }
func (r kindResolver) Resolve(q ResolveQuery) (sip.Addr, bool) {
	if q.AOR == r.aor {
		return r.addr, true
	}
	return sip.Addr{}, false
}

func TestResolverChainFirstMatchWins(t *testing.T) {
	chain := ResolverChain{
		kindResolver{kind: "a", aor: "x@d.ch", addr: sip.Addr{Node: "n1", Port: 1}},
		kindResolver{kind: "b", aor: "x@d.ch", addr: sip.Addr{Node: "n2", Port: 2}},
		kindResolver{kind: "c", aor: "y@d.ch", addr: sip.Addr{Node: "n3", Port: 3}},
	}
	addr, kind, ok := chain.Resolve(query("x@d.ch", false))
	if !ok || kind != "a" || addr.Node != "n1" {
		t.Fatalf("resolve x = %v %q %v, want first resolver", addr, kind, ok)
	}
	addr, kind, ok = chain.Resolve(query("y@d.ch", false))
	if !ok || kind != "c" || addr.Node != "n3" {
		t.Fatalf("resolve y = %v %q %v, want third resolver", addr, kind, ok)
	}
	if _, _, ok := chain.Resolve(query("z@d.ch", false)); ok {
		t.Fatal("resolved an AOR no resolver knows")
	}
}

func TestSLPResolverModes(t *testing.T) {
	dir := &stubDirectory{
		cached: cachedSIP("alice@voicehoc.ch", "10.0.0.1:5060"),
		net: map[string]slp.Service{
			SIPServiceType + "/bob@voicehoc.ch": {
				Type: SIPServiceType,
				Key:  "bob@voicehoc.ch",
				URL:  slp.ServiceURL(SIPServiceType, "10.0.0.2:5060"),
			},
		},
	}
	r := NewSLPResolver(dir, SLPResolverConfig{Timeout: time.Second, TimeoutAttached: 100 * time.Millisecond})

	if addr, ok := r.Resolve(query("alice@voicehoc.ch", false)); !ok || addr.Node != "10.0.0.1" {
		t.Fatalf("cached resolve = %v %v", addr, ok)
	}
	if addr, ok := r.Resolve(query("bob@voicehoc.ch", false)); !ok || addr.Node != "10.0.0.2" {
		t.Fatalf("network resolve = %v %v", addr, ok)
	}
	if dir.netQ != 1 {
		t.Fatalf("network queries = %d, want 1", dir.netQ)
	}

	// Cache-only mode must never hit the network: the miss that would have
	// triggered an epidemic query falls through instead.
	co := NewSLPResolver(dir, SLPResolverConfig{CacheOnly: true})
	if addr, ok := co.Resolve(query("alice@voicehoc.ch", false)); !ok || addr.Node != "10.0.0.1" {
		t.Fatalf("cache-only hit = %v %v", addr, ok)
	}
	if _, ok := co.Resolve(query("carol@voicehoc.ch", false)); ok {
		t.Fatal("cache-only resolver answered a cache miss")
	}
	if dir.netQ != 1 {
		t.Fatalf("cache-only mode queried the network (netQ=%d)", dir.netQ)
	}

	// Answers pointing back at the resolving proxy itself are rejected.
	self := NewSLPResolver(dir, SLPResolverConfig{
		CacheOnly: true,
		Self:      sip.Addr{Node: "10.0.0.1", Port: 5060},
	})
	if _, ok := self.Resolve(query("alice@voicehoc.ch", false)); ok {
		t.Fatal("resolver returned its own proxy as next hop")
	}
}

func TestDNSResolverGating(t *testing.T) {
	r := NewDNSResolver(func(domain string) sip.Addr {
		return sip.Addr{Node: netem.NodeID(domain), Port: sip.DefaultPort}
	})
	if _, ok := r.Resolve(query("alice@voicehoc.ch", false)); ok {
		t.Fatal("DNS resolver answered while detached")
	}
	if _, ok := r.Resolve(query("alice@manet", true)); ok {
		t.Fatal("DNS resolver answered for a dotless (MANET-local) host")
	}
	if addr, ok := r.Resolve(query("alice@voicehoc.ch", true)); !ok || addr.Node != "voicehoc.ch" {
		t.Fatalf("DNS resolve = %v %v", addr, ok)
	}
}

// stubOverlay is a canned OverlayDirectory: fixed bindings, optional forced
// error, and a lookup counter proving when the DHT was (not) consulted.
type stubOverlay struct {
	bindings map[string]string
	err      error // returned for every lookup when set
	lookups  int
}

func (s *stubOverlay) Lookup(aor string, timeout time.Duration) (string, error) {
	s.lookups++
	if s.err != nil {
		return "", s.err
	}
	if c, ok := s.bindings[aor]; ok {
		return c, nil
	}
	return "", overlay.ErrNotFound
}

func (s *stubOverlay) Publish(aor, contact string) {}
func (s *stubOverlay) Unpublish(aor string)        {}

// overlayChain builds the paper-policy tail under test: SLP (cache-only),
// then overlay, then DNS — the registrar hop is irrelevant here.
func overlayChain(dir *stubDirectory, ov *stubOverlay) ResolverChain {
	return ResolverChain{
		NewSLPResolver(dir, SLPResolverConfig{CacheOnly: true}),
		NewOverlayResolver(ov, OverlayResolverConfig{Timeout: time.Second}),
		NewDNSResolver(func(domain string) sip.Addr {
			return sip.Addr{Node: netem.NodeID(domain), Port: sip.DefaultPort}
		}),
	}
}

// TestResolverChainOverlayOrdering pins the overlay hop's position in the
// chain: consulted only after an SLP miss, and beating DNS when it answers.
func TestResolverChainOverlayOrdering(t *testing.T) {
	cases := []struct {
		name        string
		aor         string
		attached    bool
		wantKind    string
		wantNode    netem.NodeID
		wantMiss    bool
		wantLookups int
	}{
		{
			// SLP answers first; the overlay must not even be consulted.
			name: "slp hit shadows overlay", aor: "alice@voicehoc.ch", attached: true,
			wantKind: "slp", wantNode: "10.0.0.1", wantLookups: 0,
		},
		{
			// SLP misses, overlay answers, DNS never sees the query even
			// though the domain is DNS-routable.
			name: "overlay hit beats dns", aor: "bob@voicehoc.ch", attached: true,
			wantKind: "overlay", wantNode: "10.2.0.9", wantLookups: 1,
		},
		{
			// Nobody has the AOR: overlay was consulted, DNS wins as the
			// Internet fallback.
			name: "overlay miss falls to dns", aor: "carol@voicehoc.ch", attached: true,
			wantKind: "internet", wantNode: "voicehoc.ch", wantLookups: 1,
		},
		{
			// Detached node: the overlay lives across the gateway, so the
			// hop is skipped without a lookup, and DNS is gated off too.
			name: "detached skips overlay", aor: "bob@voicehoc.ch", attached: false,
			wantMiss: true, wantLookups: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := &stubDirectory{cached: cachedSIP("alice@voicehoc.ch", "10.0.0.1:5060")}
			ov := &stubOverlay{bindings: map[string]string{"bob@voicehoc.ch": "10.2.0.9:5060"}}
			chain := overlayChain(dir, ov)

			addr, kind, ok := chain.Resolve(query(tc.aor, tc.attached))
			if tc.wantMiss {
				if ok {
					t.Fatalf("resolve = %v %q, want miss", addr, kind)
				}
			} else if !ok || kind != tc.wantKind || addr.Node != tc.wantNode {
				t.Fatalf("resolve = %v %q %v, want %q via %q",
					addr, kind, ok, tc.wantNode, tc.wantKind)
			}
			if ov.lookups != tc.wantLookups {
				t.Fatalf("overlay lookups = %d, want %d", ov.lookups, tc.wantLookups)
			}
		})
	}
}

// TestResolverChainTypedErrors pins the typed-error contract: a converged
// overlay miss (ErrNotFound) falls through to DNS, while a backend failure
// (timeout, closed) aborts the walk and surfaces unchanged to the caller —
// a DHT outage must not silently masquerade as "user does not exist".
func TestResolverChainTypedErrors(t *testing.T) {
	dir := &stubDirectory{}

	for _, backendErr := range []error{overlay.ErrTimeout, overlay.ErrClosed} {
		ov := &stubOverlay{err: backendErr}
		_, kind, err := overlayChain(dir, ov).ResolveE(query("dave@voicehoc.ch", true))
		if !errors.Is(err, backendErr) {
			t.Fatalf("ResolveE error = %v, want passthrough of %v", err, backendErr)
		}
		if kind != "overlay" {
			t.Fatalf("failing kind = %q, want overlay", kind)
		}
	}

	// ErrNotFound is a clean miss: the walk continues and DNS answers.
	ov := &stubOverlay{}
	addr, kind, err := overlayChain(dir, ov).ResolveE(query("dave@voicehoc.ch", true))
	if err != nil || kind != "internet" || addr.Node != "voicehoc.ch" {
		t.Fatalf("ResolveE after miss = %v %q %v, want DNS answer", addr, kind, err)
	}

	// An exhausted chain reports ErrResolverMiss, not a backend failure.
	if _, _, err := overlayChain(dir, ov).ResolveE(query("dave@manet", false)); !errors.Is(err, ErrResolverMiss) {
		t.Fatalf("exhausted chain error = %v, want ErrResolverMiss", err)
	}
}

// TestOverlayResolverSelfRejection: overlay answers pointing back at the
// resolving proxy are a miss (we are that proxy; looping would 482).
func TestOverlayResolverSelfRejection(t *testing.T) {
	ov := &stubOverlay{bindings: map[string]string{"erin@voicehoc.ch": "10.1.0.4:5060"}}
	r := NewOverlayResolver(ov, OverlayResolverConfig{
		Self: sip.Addr{Node: "10.1.0.4", Port: 5060},
	})
	if _, ok := r.Resolve(query("erin@voicehoc.ch", true)); ok {
		t.Fatal("overlay resolver returned its own proxy as next hop")
	}
}

// The SLP hot path — a chain walk ending in a cache hit — must not allocate:
// it runs once per routed request on every node.
func TestResolverChainCachedLookupAllocFree(t *testing.T) {
	dir := &stubDirectory{cached: cachedSIP("alice@voicehoc.ch", "10.0.0.7:5060")}
	chain := ResolverChain{
		NewSLPResolver(dir, SLPResolverConfig{CacheOnly: true}),
	}
	q := query("alice@voicehoc.ch", true)
	if allocs := testing.AllocsPerRun(200, func() {
		if _, _, ok := chain.Resolve(q); !ok {
			t.Fatal("lookup missed")
		}
	}); allocs != 0 {
		t.Fatalf("resolver chain cached lookup allocates %.1f times per call, want 0", allocs)
	}
}
