// Package core implements the SIPHoc middleware: the components the paper
// runs as independent OS processes on every MANET node (Figure 1).
//
//   - Proxy: a standard-SIP outbound proxy and registrar for the local VoIP
//     application. It advertises local registrations through MANET SLP and
//     resolves callees by consulting it, falling back to the Internet
//     provider when the node is gateway-attached.
//   - GatewayProvider: runs on nodes with Internet connectivity; publishes a
//     "gateway" SLP service and accepts layer-2 tunnel connections.
//   - ConnectionProvider: on every node, periodically looks for a gateway
//     service and opens a tunnel, transparently attaching the node to the
//     Internet.
//
// The pieces compose so that an out-of-the-box VoIP application configured
// with outbound proxy "localhost" (paper Figure 2) works unchanged in an
// isolated MANET, and gains Internet calling the moment any node in the
// MANET has connectivity.
package core
