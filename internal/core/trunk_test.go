package core

import (
	"bytes"
	"fmt"
	"testing"

	"siphoc/internal/netem"
)

func trunkTestPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		wire, err := netem.MarshalDatagram(&netem.Datagram{
			SrcNode: netem.NodeID(fmt.Sprintf("10.1.0.%d", i)),
			DstNode: netem.NodeID(fmt.Sprintf("10.2.0.%d", i)),
			SrcPort: uint16(7000 + i),
			DstPort: uint16(8000 + i),
			TTL:     32,
			Data:    bytes.Repeat([]byte{byte(i)}, 40+i),
		})
		if err != nil {
			panic(err)
		}
		out[i] = wire
	}
	return out
}

func TestTrunkFrameRoundTrip(t *testing.T) {
	payloads := trunkTestPayloads(7)
	frame := newTrunkFrame(nil)
	for _, p := range payloads {
		frame = appendTrunkPayload(frame, p)
	}
	frame = finishTrunkFrame(frame, uint16(len(payloads)))

	var got [][]byte
	if err := walkTrunkFrame(frame, func(p []byte) {
		got = append(got, append([]byte(nil), p...))
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("walked %d payloads, want %d", len(got), len(payloads))
	}
	for i := range got {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("payload %d mutated in transit", i)
		}
	}

	// Corruption must be detected, not silently mis-parsed.
	if err := walkTrunkFrame(frame[:len(frame)-3], func([]byte) {}); err == nil {
		t.Fatal("truncated frame walked without error")
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 99
	if err := walkTrunkFrame(bad, func([]byte) {}); err == nil {
		t.Fatal("wrong frame kind accepted")
	}
}

// Trunk framing runs once per media packet crossing a gateway pair; both the
// append and the walk must be allocation-free at steady state.
func TestTrunkFrameAppendAllocFree(t *testing.T) {
	payloads := trunkTestPayloads(8)
	frame := newTrunkFrame(nil)
	// Warm the buffer to its working-set capacity once.
	for _, p := range payloads {
		frame = appendTrunkPayload(frame, p)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		frame = newTrunkFrame(frame)
		for _, p := range payloads {
			frame = appendTrunkPayload(frame, p)
		}
		frame = finishTrunkFrame(frame, uint16(len(payloads)))
	}); allocs != 0 {
		t.Fatalf("trunk frame build allocates %.1f times, want 0", allocs)
	}
}

func TestTrunkFrameWalkAllocFree(t *testing.T) {
	payloads := trunkTestPayloads(8)
	frame := newTrunkFrame(nil)
	for _, p := range payloads {
		frame = appendTrunkPayload(frame, p)
	}
	frame = finishTrunkFrame(frame, uint16(len(payloads)))

	var scratch netem.Datagram
	var seen int
	visit := func(p []byte) {
		if err := netem.UnmarshalDatagramInto(&scratch, p); err != nil {
			t.Error(err)
			return
		}
		seen++
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := walkTrunkFrame(frame, visit); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("trunk frame walk allocates %.1f times, want 0", allocs)
	}
	if seen == 0 {
		t.Fatal("walk visited nothing")
	}
}
