package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/obs"
	"siphoc/internal/sip"
	"siphoc/internal/slp"
)

// SIPServiceType is the SLP service type SIP bindings are advertised under.
const SIPServiceType = "sip"

// ProxyConfig tunes the SIPHoc proxy.
type ProxyConfig struct {
	// Port is the SIP port the proxy binds (default 5060).
	Port uint16
	// SIP tunes the transaction layer (default sip.SimConfig()).
	SIP sip.Config
	// SLPTimeout bounds MANET SLP lookups during call routing
	// (default 2s).
	SLPTimeout time.Duration
	// SLPTimeoutAttached bounds the MANET SLP lookup when the node is
	// Internet-attached: with a provider available as fallback, a missing
	// MANET binding should fail over quickly (default 500ms).
	SLPTimeoutAttached time.Duration
	// SLPCacheOnly makes the default resolver chain's SLP hop answer from
	// the local cache without ever querying the MANET. Federated islands
	// set this: intra-island peers are already in the cache from their
	// registration adverts, and a network-wide query for an inter-island
	// AOR would only burn its full timeout before the DNS fallback wins.
	SLPCacheOnly bool
	// BindingTTL is the registrar binding lifetime (default 60s).
	BindingTTL time.Duration
	// ResolveRetries is how many times an INVITE whose SLP-resolved next hop
	// never answers (retransmissions exhausted, not even a provisional) is
	// re-resolved and re-sent after evicting the stale cache entry
	// (default 2; negative disables).
	ResolveRetries int
	// ResolveBackoff is the wait before the first re-resolution; it doubles
	// per retry and is capped at 8x (default 100ms).
	ResolveBackoff time.Duration
	// DNS resolves an Internet SIP domain to its proxy address. The
	// default maps a domain to host <domain>:5060, the RFC 3261 rule the
	// paper relies on ("the SIP proxy can be deduced from the domain part
	// of the SIP URI").
	DNS func(domain string) sip.Addr
	// Resolvers replaces the proxy's routing policy with a custom chain.
	// Nil keeps the paper's default — local registrar, MANET SLP, Internet
	// DNS (see Proxy.DefaultResolvers). Deployments compose their own chain
	// from the exported constructors, e.g. to make SLP cache-only in a
	// federation or to splice a DHT overlay registrar between SLP and DNS.
	Resolvers []Resolver
	// Overlay plugs a P2P overlay registrar (DHT) into the proxy: the
	// default chain gains an overlay hop between SLP and DNS, and local
	// registrations are published into the overlay alongside their SLP
	// adverts. Nil disables.
	Overlay OverlayDirectory
	// OverlayTimeout bounds a blocking overlay lookup during call routing
	// (default 2s).
	OverlayTimeout time.Duration
	// Clock is the time source (default the system clock).
	Clock clock.Clock
	// Obs records resolution spans and routing counters; it is also
	// propagated to the embedded SIP stack unless SIP.Obs is already set.
	// Nil disables.
	Obs *obs.Observer
}

func (c ProxyConfig) withDefaults() ProxyConfig {
	if c.Port == 0 {
		c.Port = sip.DefaultPort
	}
	if c.SIP.T1 == 0 {
		c.SIP = sip.SimConfig()
	}
	if c.SLPTimeout == 0 {
		c.SLPTimeout = 2 * time.Second
	}
	if c.SLPTimeoutAttached == 0 {
		c.SLPTimeoutAttached = 500 * time.Millisecond
	}
	if c.BindingTTL == 0 {
		c.BindingTTL = 60 * time.Second
	}
	if c.ResolveRetries == 0 {
		c.ResolveRetries = 2
	}
	if c.ResolveBackoff == 0 {
		c.ResolveBackoff = 100 * time.Millisecond
	}
	if c.OverlayTimeout == 0 {
		c.OverlayTimeout = 2 * time.Second
	}
	if c.DNS == nil {
		c.DNS = func(domain string) sip.Addr {
			return sip.Addr{Node: netem.NodeID(domain), Port: sip.DefaultPort}
		}
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	if c.SIP.Obs == nil {
		c.SIP.Obs = c.Obs
	}
	return c
}

// ProxyStats counts proxy activity.
type ProxyStats struct {
	Registers        int64
	RequestsRouted   int64
	LocalDeliveries  int64 // resolved to a locally registered UA
	SLPResolutions   int64 // resolved via MANET SLP
	OverlayRouted    int64 // resolved via the P2P overlay registrar
	InternetRouted   int64 // resolved to an Internet provider
	EndpointRouted   int64 // explicit host:port Request-URIs
	RouteFollowed    int64 // in-dialog requests following their Route set
	Unresolved       int64 // answered 404/480
	ResolverErrors   int64 // typed backend failures (e.g. overlay timeout)
	SLPEvictions     int64 // stale SLP results evicted after silent next hops
	SLPReresolutions int64 // INVITE retries sent to a freshly resolved hop
	UpstreamRegOK    int64
	UpstreamRegFail  int64
}

// proxyCounters is the live, atomically updated form of ProxyStats, so
// snapshots never race with the routing path.
type proxyCounters struct {
	registers        atomic.Int64
	requestsRouted   atomic.Int64
	localDeliveries  atomic.Int64
	slpResolutions   atomic.Int64
	overlayRouted    atomic.Int64
	internetRouted   atomic.Int64
	endpointRouted   atomic.Int64
	routeFollowed    atomic.Int64
	unresolved       atomic.Int64
	resolverErrors   atomic.Int64
	slpEvictions     atomic.Int64
	slpReresolutions atomic.Int64
	upstreamRegOK    atomic.Int64
	upstreamRegFail  atomic.Int64
}

func (c *proxyCounters) snapshot() ProxyStats {
	return ProxyStats{
		Registers:        c.registers.Load(),
		RequestsRouted:   c.requestsRouted.Load(),
		LocalDeliveries:  c.localDeliveries.Load(),
		SLPResolutions:   c.slpResolutions.Load(),
		OverlayRouted:    c.overlayRouted.Load(),
		InternetRouted:   c.internetRouted.Load(),
		EndpointRouted:   c.endpointRouted.Load(),
		RouteFollowed:    c.routeFollowed.Load(),
		Unresolved:       c.unresolved.Load(),
		ResolverErrors:   c.resolverErrors.Load(),
		SLPEvictions:     c.slpEvictions.Load(),
		SLPReresolutions: c.slpReresolutions.Load(),
		UpstreamRegOK:    c.upstreamRegOK.Load(),
		UpstreamRegFail:  c.upstreamRegFail.Load(),
	}
}

type localBinding struct {
	contact sip.Addr
	expires time.Time
}

// Proxy is the per-node SIPHoc proxy: a standards-compliant outbound proxy
// and registrar for the local VoIP application that resolves callees through
// MANET SLP and, when the node is Internet-attached, through the user's SIP
// provider.
type Proxy struct {
	host      *netem.Host
	agent     ServiceDirectory
	connp     *ConnectionProvider // may be nil (isolated MANET)
	cfg       ProxyConfig
	clk       clock.Clock
	stack     *sip.Stack
	resolvers ResolverChain

	mu       sync.Mutex
	bindings map[string]localBinding // AOR -> local UA contact
	upstream map[string]int          // AOR -> last upstream REGISTER status
	// invites maps the upstream INVITE branch to its downstream forward,
	// so a hop-by-hop CANCEL can chase the INVITE (RFC 3261 §9.2).
	invites map[string]*inviteForward
	// creds holds provisioned digest credentials per AOR, used when the
	// Internet provider challenges our upstream registration.
	creds   map[string]upstreamCred
	nc      uint32
	started bool
	closed  bool

	stats proxyCounters
	obs   *obs.Observer

	wg sync.WaitGroup
}

// NewProxy creates the proxy. agent is the node's service directory (the
// MANET SLP agent in every deployment so far); connp may be nil when the
// deployment has no Internet path at all.
func NewProxy(host *netem.Host, agent ServiceDirectory, connp *ConnectionProvider, cfg ProxyConfig) *Proxy {
	cfg = cfg.withDefaults()
	p := &Proxy{
		host:     host,
		agent:    agent,
		connp:    connp,
		cfg:      cfg,
		clk:      cfg.Clock,
		obs:      cfg.Obs,
		bindings: make(map[string]localBinding),
		upstream: make(map[string]int),
		invites:  make(map[string]*inviteForward),
		creds:    make(map[string]upstreamCred),
	}
	if len(cfg.Resolvers) > 0 {
		p.resolvers = ResolverChain(cfg.Resolvers)
	} else {
		p.resolvers = p.DefaultResolvers()
	}
	return p
}

// DefaultResolvers is the paper's routing policy as a resolver chain: the
// local registrar first, then MANET SLP, then — when attached — the Internet
// provider. Custom chains usually start from this and splice backends in.
func (p *Proxy) DefaultResolvers() ResolverChain {
	chain := ResolverChain{
		NewRegistrarResolver(p),
		NewSLPResolver(p.agent, SLPResolverConfig{
			Timeout:         p.cfg.SLPTimeout,
			TimeoutAttached: p.cfg.SLPTimeoutAttached,
			CacheOnly:       p.cfg.SLPCacheOnly,
			Self:            p.Addr(),
		}),
	}
	if p.cfg.Overlay != nil {
		chain = append(chain, NewOverlayResolver(p.cfg.Overlay, OverlayResolverConfig{
			Timeout: p.cfg.OverlayTimeout,
			Self:    p.Addr(),
		}))
	}
	return append(chain, NewDNSResolver(p.cfg.DNS))
}

// Resolvers returns the active resolver chain.
func (p *Proxy) Resolvers() ResolverChain { return p.resolvers }

// Start binds the SIP port and begins serving.
func (p *Proxy) Start() error {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return fmt.Errorf("core: proxy already started")
	}
	p.started = true
	p.mu.Unlock()
	conn, err := p.host.Listen(p.cfg.Port)
	if err != nil {
		return fmt.Errorf("core: proxy bind: %w", err)
	}
	p.stack = sip.NewStack(conn, p.cfg.SIP)
	p.stack.OnRequest(p.onRequest)
	if p.connp != nil {
		p.connp.OnChange(func(attached bool) {
			if attached {
				p.registerUpstreamAll()
			}
		})
	}
	return nil
}

// Stop shuts the proxy down.
func (p *Proxy) Stop() {
	p.mu.Lock()
	if !p.started || p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.stack.Close()
	p.wg.Wait()
}

// Addr returns the proxy's SIP transport address.
func (p *Proxy) Addr() sip.Addr {
	return sip.Addr{Node: p.host.ID(), Port: p.cfg.Port}
}

// Stats returns a snapshot of the proxy counters.
func (p *Proxy) Stats() ProxyStats {
	return p.stats.snapshot()
}

// Bindings returns the locally registered AORs.
func (p *Proxy) Bindings() []string {
	now := p.clk.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.bindings))
	for aor, b := range p.bindings {
		if now.After(b.expires) {
			continue
		}
		out = append(out, aor)
	}
	return out
}

// UpstreamStatus returns the status code of the last upstream registration
// attempt for an AOR (0 if none was attempted).
func (p *Proxy) UpstreamStatus(aor string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.upstream[aor]
}

func (p *Proxy) onRequest(tx *sip.ServerTx) {
	req := tx.Request()
	switch req.Method {
	case sip.MethodRegister:
		p.handleRegister(tx)
	case sip.MethodAck:
		p.routeStateless(tx)
	case sip.MethodCancel:
		p.handleCancel(tx)
	default:
		p.routeStateful(tx)
	}
}

// handleRegister implements the registrar half of the proxy: it accepts the
// local application's REGISTER, stores the binding, and advertises the
// proxy's own endpoint as the user's contact address via MANET SLP (paper
// Figure 3 steps 1-2 and Figure 4).
func (p *Proxy) handleRegister(tx *sip.ServerTx) {
	req := tx.Request()
	if tx.Source().Node != p.host.ID() {
		// Only the local application registers here; we are not the
		// network's registrar.
		_ = tx.RespondCode(sip.StatusNotFound, "Not a registrar for remote clients")
		return
	}
	aor := req.To.URI.AddressOfRecord()
	if len(req.Contact) == 0 {
		_ = tx.RespondCode(sip.StatusBadRequest, "Missing Contact")
		return
	}
	contactURI := req.Contact[0].URI
	contact := sip.Addr{Node: netem.NodeID(contactURI.Host), Port: contactURI.PortOrDefault()}
	ttl := p.cfg.BindingTTL
	if req.Expires >= 0 {
		ttl = time.Duration(req.Expires) * time.Second
	}
	p.stats.registers.Add(1)
	p.mu.Lock()
	if ttl == 0 {
		delete(p.bindings, aor)
	} else {
		p.bindings[aor] = localBinding{contact: contact, expires: p.clk.Now().Add(ttl)}
	}
	p.mu.Unlock()

	if ttl == 0 {
		p.agent.Deregister(SIPServiceType, aor)
		if p.cfg.Overlay != nil {
			p.cfg.Overlay.Unpublish(aor)
		}
	} else {
		// Advertise our own SIP endpoint as the responsible contact
		// address for this user.
		_ = p.agent.Register(slp.Service{
			Type: SIPServiceType,
			Key:  aor,
			URL:  slp.ServiceURL(SIPServiceType, p.Addr().String()),
		})
		if p.cfg.Overlay != nil {
			// Mirror the binding into the P2P overlay registrar so peers in
			// other islands resolve this user without a provider tier. The
			// overlay re-publishes on its own cadence until Unpublish.
			p.cfg.Overlay.Publish(aor, p.Addr().String())
		}
	}
	resp := sip.NewResponse(req, sip.StatusOK, "")
	resp.Contact = []*sip.NameAddr{req.Contact[0].Clone()}
	resp.Expires = int(ttl / time.Second)
	_ = tx.Respond(resp)

	// If the MANET is Internet-connected, also register the user's
	// official SIP address with their provider so calls from the Internet
	// reach the MANET (paper §3.2).
	if ttl > 0 && p.connp != nil && p.connp.Attached() {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.registerUpstream(aor)
		}()
	}
}

// resolve maps a request's target to a next-hop transport address: explicit
// endpoints are delivered directly, everything else walks the resolver chain
// (the paper's policy by default — local registrar, MANET SLP, Internet
// provider). It returns the failing status code when nothing matches.
func (p *Proxy) resolve(req *sip.Message) (sip.Addr, string, int) {
	uri := req.RequestURI
	if uri.Port != 0 {
		// Explicit endpoint (a UA contact): deliver directly.
		return sip.Addr{Node: netem.NodeID(uri.Host), Port: uri.Port}, "endpoint", 0
	}
	q := ResolveQuery{
		URI:      uri,
		AOR:      uri.AddressOfRecord(),
		Attached: p.connp != nil && p.connp.Attached(),
	}
	addr, kind, err := p.resolvers.ResolveE(q)
	if err == nil {
		return addr, kind, 0
	}
	if !errors.Is(err, ErrResolverMiss) {
		// A typed backend failure (overlay timeout, closed node): the
		// target may well exist, we just could not reach the backend.
		p.stats.resolverErrors.Add(1)
		return sip.Addr{}, "", sip.StatusTemporarilyUnavail
	}
	return sip.Addr{}, "", sip.StatusNotFound
}

func (p *Proxy) recordResolution(kind string) {
	p.stats.requestsRouted.Add(1)
	switch kind {
	case "local":
		p.stats.localDeliveries.Add(1)
	case "slp":
		p.stats.slpResolutions.Add(1)
	case "overlay":
		p.stats.overlayRouted.Add(1)
	case "internet":
		p.stats.internetRouted.Add(1)
	case "endpoint":
		p.stats.endpointRouted.Add(1)
	case "route":
		p.stats.routeFollowed.Add(1)
	}
}

// nextHopFor picks the forwarding target for an already-prepared request:
// the topmost remaining Route entry when present (loose routing), otherwise
// the resolution policy on the Request-URI.
func (p *Proxy) nextHopFor(fwd *sip.Message) (sip.Addr, string, int) {
	if len(fwd.Route) > 0 {
		return sip.Addr{
			Node: netem.NodeID(fwd.Route[0].URI.Host),
			Port: fwd.Route[0].URI.PortOrDefault(),
		}, "route", 0
	}
	return p.resolve(fwd)
}

func (p *Proxy) routeStateless(tx *sip.ServerTx) {
	fwd, err := sip.PrepareForward(tx.Request(), p.stack.Addr())
	if err != nil {
		return
	}
	dst, kind, _ := p.nextHopFor(fwd)
	if kind == "" {
		return
	}
	p.recordResolution(kind)
	_ = p.stack.Send(fwd, dst)
}

func (p *Proxy) routeStateful(tx *sip.ServerTx) {
	req := tx.Request()
	if sip.HasLoop(req, p.stack.Addr()) {
		_ = tx.RespondCode(sip.StatusLoopDetected, "")
		return
	}
	fwd, err := sip.PrepareForward(req, p.stack.Addr())
	if err != nil {
		_ = tx.RespondCode(sip.StatusTooManyHops, "")
		return
	}
	// The resolve step is where SLP (and possibly a route discovery
	// triggered by the query traffic) spends the call-setup time the
	// paper's Figure 6 decomposes; trace it per call on the INVITE path.
	var resolveSpan obs.SpanHandle
	if req.Method == sip.MethodInvite {
		resolveSpan = p.obs.StartSpan(req.CallID, obs.PhaseSLPResolve, string(p.host.ID()))
	}
	dst, kind, failCode := p.nextHopFor(fwd)
	resolveSpan.End("kind=" + kind)
	if kind == "" {
		p.stats.unresolved.Add(1)
		_ = tx.RespondCode(failCode, "")
		return
	}
	if req.Method == sip.MethodInvite {
		_ = tx.RespondCode(sip.StatusTrying, "")
		// Record-Route: keep this proxy on the path for in-dialog
		// requests (RFC 3261 §16.6 step 4).
		rr := &sip.NameAddr{URI: &sip.URI{
			Scheme: "sip", Host: string(p.host.ID()), Port: p.cfg.Port,
			Params: map[string]string{"lr": ""},
		}}
		fwd.RecordRoute = append([]*sip.NameAddr{rr}, fwd.RecordRoute...)
	}
	// Stateful send with bounded recovery: when an SLP-resolved next hop has
	// gone stale (callee moved, node crashed), the downstream transaction
	// exhausts its retransmissions in silence. For INVITEs that never drew a
	// provisional, evict the stale cache entry, back off, re-resolve and try
	// the fresh route — capped by ResolveRetries — before answering 408.
	aor := req.RequestURI.AddressOfRecord()
	pristine := fwd.Clone() // pre-Via copy; each retry restarts from here
	retries := p.cfg.ResolveRetries
	if req.Method != sip.MethodInvite {
		retries = 0
	}
	branch := ""
	if req.Method == sip.MethodInvite {
		if v := req.TopVia(); v != nil {
			branch = v.Branch()
			defer func() {
				p.mu.Lock()
				delete(p.invites, branch)
				p.mu.Unlock()
			}()
		}
	}
	recorded := false
	for attempt := 0; ; attempt++ {
		msg := fwd
		if attempt > 0 {
			msg = pristine.Clone()
		}
		ct, err := p.stack.SendRequest(msg, dst)
		if err != nil {
			_ = tx.RespondCode(sip.StatusInternalError, "")
			return
		}
		if branch != "" {
			// Point the CANCEL chase at the latest downstream attempt.
			p.mu.Lock()
			p.invites[branch] = &inviteForward{fwd: msg, dst: dst}
			p.mu.Unlock()
		}
		if !recorded {
			p.recordResolution(kind)
			recorded = true
		}
		gotProvisional := false
		for resp := range ct.Responses() {
			if resp.IsLocalTimeout() {
				// The downstream transaction expired without any network
				// response: a dead next hop, not a slow callee. Break out
				// so the recovery logic below decides what the caller sees.
				break
			}
			up := resp.Clone()
			if len(up.Via) > 0 {
				up.Via = up.Via[1:] // pop our Via
			}
			if len(up.Via) == 0 {
				continue
			}
			if up.StatusCode == sip.StatusTrying {
				continue // hop-by-hop only
			}
			if up.StatusCode < 200 {
				gotProvisional = true
			}
			_ = tx.Respond(up)
			if resp.StatusCode >= 200 {
				return
			}
		}
		// Transaction exhausted. A provisional means the callee was reached
		// and answered once — the route is live, so re-resolving cannot
		// help; the same goes for non-SLP routes.
		if gotProvisional || kind != "slp" || attempt >= retries {
			break
		}
		p.agent.Evict(SIPServiceType, aor)
		p.stats.slpEvictions.Add(1)
		delay := p.cfg.ResolveBackoff << attempt
		if max := 8 * p.cfg.ResolveBackoff; delay > max {
			delay = max
		}
		if delay > 0 {
			t := p.clk.NewTimer(delay)
			<-t.C()
		}
		retrySpan := p.obs.StartSpan(req.CallID, obs.PhaseSLPResolve, string(p.host.ID()))
		dst, kind, failCode = p.nextHopFor(pristine)
		retrySpan.End("kind=" + kind + " retry")
		if kind == "" {
			p.stats.unresolved.Add(1)
			_ = tx.RespondCode(failCode, "")
			return
		}
		p.stats.slpReresolutions.Add(1)
		// Refresh the caller's patience (its Proceeding deadline re-arms
		// from the latest provisional) before the next downstream attempt.
		_ = tx.RespondCode(sip.StatusTrying, "")
	}
	// No final response despite recovery attempts.
	_ = tx.RespondCode(sip.StatusRequestTimeout, "")
}

type inviteForward struct {
	fwd *sip.Message // the downstream INVITE as sent (our Via on top)
	dst sip.Addr
}

// handleCancel implements hop-by-hop CANCEL (RFC 3261 §9.2): answer the
// CANCEL locally with 200, then chase the matching downstream INVITE with a
// CANCEL of our own, reusing the downstream branch.
func (p *Proxy) handleCancel(tx *sip.ServerTx) {
	req := tx.Request()
	branch := ""
	if v := req.TopVia(); v != nil {
		branch = v.Branch()
	}
	p.mu.Lock()
	fw := p.invites[branch]
	p.mu.Unlock()
	if fw == nil {
		_ = tx.RespondCode(sip.StatusCallDoesNotExist, "")
		return
	}
	_ = tx.RespondCode(sip.StatusOK, "")
	cancel := sip.BuildCancel(fw.fwd)
	if ct, err := p.stack.SendRequestPreVia(cancel, fw.dst); err == nil {
		// Drain in the background; the 487 for the INVITE travels on the
		// INVITE transaction itself.
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			_, _ = ct.Await()
		}()
	}
}

// registerUpstreamAll re-registers every local binding with its provider,
// invoked when the node gains Internet connectivity.
func (p *Proxy) registerUpstreamAll() {
	now := p.clk.Now()
	p.mu.Lock()
	aors := make([]string, 0, len(p.bindings))
	for aor, b := range p.bindings {
		if now.Before(b.expires) {
			aors = append(aors, aor)
		}
	}
	p.mu.Unlock()
	for _, aor := range aors {
		aor := aor
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.registerUpstream(aor)
		}()
	}
}

type upstreamCred struct {
	username string
	password string
}

// SetUpstreamCredentials provisions digest credentials used when the user's
// Internet provider challenges the proxy's upstream REGISTER. In the paper's
// deployment the proxy registers on the user's behalf, so the credentials
// must live here — the same way a home router's SIP ALG is provisioned.
func (p *Proxy) SetUpstreamCredentials(aor, username, password string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.creds[aor] = upstreamCred{username: username, password: password}
}

// registerUpstream registers the user's official SIP address at their
// provider, with this proxy as the contact so inbound calls traverse the
// tunnel and land here. A 401 digest challenge is answered once when
// credentials are provisioned.
func (p *Proxy) registerUpstream(aor string) {
	user, domain, ok := strings.Cut(aor, "@")
	if !ok {
		return
	}
	dst := p.cfg.DNS(domain)
	buildReq := func(seq uint32) *sip.Message {
		req := sip.NewRequest(sip.MethodRegister, &sip.URI{Scheme: "sip", Host: domain})
		identity := &sip.NameAddr{URI: &sip.URI{Scheme: "sip", User: user, Host: domain}}
		req.From = identity.Clone()
		req.From.SetTag(p.stack.NewTag())
		req.To = identity.Clone()
		req.CallID = p.stack.NewCallID()
		req.CSeq = sip.CSeq{Seq: seq, Method: sip.MethodRegister}
		req.Contact = []*sip.NameAddr{{URI: &sip.URI{
			Scheme: "sip", User: user, Host: string(p.host.ID()), Port: p.cfg.Port,
		}}}
		req.Expires = int(p.cfg.BindingTTL / time.Second)
		return req
	}
	send := func(req *sip.Message) (*sip.Message, int) {
		ct, err := p.stack.SendRequest(req, dst)
		if err != nil {
			return nil, sip.StatusInternalError
		}
		resp, err := ct.Await()
		if err != nil {
			return nil, sip.StatusRequestTimeout
		}
		return resp, resp.StatusCode
	}
	resp, code := send(buildReq(1))
	if code == sip.StatusUnauthorized && resp != nil {
		if challenge, ok := resp.Challenge(); ok {
			p.mu.Lock()
			cred, have := p.creds[aor]
			p.nc++
			nc := p.nc
			p.mu.Unlock()
			if have {
				retry := buildReq(2)
				retry.SetAuthorization(challenge.Answer(
					cred.username, cred.password, sip.MethodRegister,
					retry.RequestURI.String(), "cn-"+p.stack.NewTag(), nc,
				))
				_, code = send(retry)
			}
		}
	}
	p.mu.Lock()
	p.upstream[aor] = code
	p.mu.Unlock()
	if code == sip.StatusOK {
		p.stats.upstreamRegOK.Add(1)
	} else {
		p.stats.upstreamRegFail.Add(1)
	}
}
