package core

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"siphoc/internal/internet"
	"siphoc/internal/netem"
	"siphoc/internal/routing/aodv"
	"siphoc/internal/sip"
	"siphoc/internal/slp"
)

func TestTunnelMsgCodec(t *testing.T) {
	cases := []*tunnelMsg{
		{Kind: tunOpen},
		{Kind: tunOpenAck, OK: true},
		{Kind: tunOpenAck, OK: false},
		{Kind: tunData, Inner: []byte("inner-datagram")},
		{Kind: tunClose},
		{Kind: tunPing},
		{Kind: tunPong},
	}
	for _, in := range cases {
		out, err := parseTunnelMsg(in.marshal())
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		if out.Kind != in.Kind || out.OK != in.OK || string(out.Inner) != string(in.Inner) {
			t.Fatalf("round trip: %+v vs %+v", in, out)
		}
	}
	if _, err := parseTunnelMsg([]byte{99}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := parseTunnelMsg(nil); err == nil {
		t.Fatal("empty message accepted")
	}
}

func TestEncapsulateRoundTrip(t *testing.T) {
	f := func(src, dst string, sp, dp uint16, data []byte) bool {
		if len(src) > 200 || len(dst) > 200 {
			return true
		}
		dg := &netem.Datagram{
			SrcNode: netem.NodeID(src), DstNode: netem.NodeID(dst),
			SrcPort: sp, DstPort: dp, TTL: 3, Data: data,
		}
		raw, err := encapsulate(dg)
		if err != nil {
			return false
		}
		msg, err := parseTunnelMsg(raw)
		if err != nil || msg.Kind != tunData {
			return false
		}
		out, err := netem.UnmarshalDatagram(msg.Inner)
		if err != nil {
			return false
		}
		return out.SrcNode == dg.SrcNode && out.DstNode == dg.DstNode &&
			out.SrcPort == sp && out.DstPort == dp && string(out.Data) == string(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// testbed builds a 2-node MANET (node + gateway) plus an Internet.
type testbed struct {
	net    *netem.Network
	inet   *internet.Internet
	node   *netem.Host
	gwHost *netem.Host
	agents map[netem.NodeID]*slp.Agent
	protos []*aodv.Protocol
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	tb := &testbed{
		net:    netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond}),
		inet:   internet.New(internet.Config{Delay: 200 * time.Microsecond}),
		agents: make(map[netem.NodeID]*slp.Agent),
	}
	t.Cleanup(tb.net.Close)
	t.Cleanup(tb.inet.Close)
	var err error
	tb.node, err = tb.net.AddHost("10.0.0.1", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	tb.gwHost, err = tb.net.AddHost("10.0.0.2", netem.Position{X: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []*netem.Host{tb.node, tb.gwHost} {
		proto := aodv.New(h, aodv.SimConfig())
		agent := slp.NewAgent(h, slp.Config{})
		agent.AttachRouting(proto)
		if err := proto.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proto.Stop)
		if err := agent.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(agent.Stop)
		tb.agents[h.ID()] = agent
		tb.protos = append(tb.protos, proto)
	}
	return tb
}

func fastConnCfg() ConnProviderConfig {
	return ConnProviderConfig{
		ProbeInterval: 50 * time.Millisecond,
		LookupTimeout: 100 * time.Millisecond,
		AckTimeout:    300 * time.Millisecond,
	}
}

func TestGatewayTunnelLifecycle(t *testing.T) {
	tb := newTestbed(t)
	gw := NewGatewayProvider(tb.gwHost, tb.inet, tb.agents[tb.gwHost.ID()], GatewayConfig{ClientTTL: time.Second})
	if err := gw.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Stop)
	cp := NewConnectionProvider(tb.node, tb.agents[tb.node.ID()], fastConnCfg())
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Stop)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && !cp.Attached() {
		time.Sleep(10 * time.Millisecond)
	}
	if !cp.Attached() {
		t.Fatal("connection provider never attached")
	}
	if cp.Gateway() != tb.gwHost.ID() {
		t.Fatalf("gateway = %v", cp.Gateway())
	}
	if got := gw.Clients(); len(got) != 1 || got[0] != tb.node.ID() {
		t.Fatalf("gateway clients = %v", got)
	}
	if gw.Stats().TunnelsOpened != 1 {
		t.Fatalf("stats = %+v", gw.Stats())
	}

	// Traffic to an Internet host flows through the tunnel.
	echoHost, err := tb.inet.AddHost("echo.example")
	if err != nil {
		t.Fatal(err)
	}
	echoConn, err := echoHost.Listen(7)
	if err != nil {
		t.Fatal(err)
	}
	defer echoConn.Close()
	go func() {
		for {
			dg, ok := echoConn.Recv()
			if !ok {
				return
			}
			_ = echoConn.WriteTo(dg.Data, dg.SrcNode, dg.SrcPort)
		}
	}()
	local, err := tb.node.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	if err := local.WriteTo([]byte("ping-internet"), "echo.example", 7); err != nil {
		t.Fatal(err)
	}
	done := make(chan string, 1)
	go func() {
		dg, ok := local.Recv()
		if ok {
			done <- string(dg.Data)
		}
	}()
	select {
	case got := <-done:
		if got != "ping-internet" {
			t.Fatalf("echo = %q", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("echo never returned through the tunnel")
	}

	// Stop the connection provider: the gateway evicts the client after
	// the TTL.
	cp.Stop()
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && len(gw.Clients()) > 0 {
		time.Sleep(20 * time.Millisecond)
	}
	if n := len(gw.Clients()); n != 0 {
		t.Fatalf("gateway still has %d clients after close", n)
	}
}

func TestConnectionProviderDetachOnGatewayDeath(t *testing.T) {
	tb := newTestbed(t)
	gw := NewGatewayProvider(tb.gwHost, tb.inet, tb.agents[tb.gwHost.ID()], GatewayConfig{})
	if err := gw.Start(); err != nil {
		t.Fatal(err)
	}
	cp := NewConnectionProvider(tb.node, tb.agents[tb.node.ID()], fastConnCfg())
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Stop)
	var (
		flipMu sync.Mutex
		flips  []bool
	)
	cp.OnChange(func(a bool) {
		flipMu.Lock()
		flips = append(flips, a)
		flipMu.Unlock()
	})

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && !cp.Attached() {
		time.Sleep(10 * time.Millisecond)
	}
	if !cp.Attached() {
		t.Fatal("never attached")
	}
	// Kill the gateway node entirely.
	gw.Stop()
	tb.net.RemoveHost(tb.gwHost.ID())
	deadline = time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && cp.Attached() {
		time.Sleep(10 * time.Millisecond)
	}
	if cp.Attached() {
		t.Fatal("still attached after gateway death")
	}
	flipMu.Lock()
	got := append([]bool(nil), flips...)
	flipMu.Unlock()
	if len(got) < 2 || got[0] != true || got[len(got)-1] != false {
		t.Fatalf("flips = %v", got)
	}
}

func TestIsLocalHeuristic(t *testing.T) {
	cfg := ConnProviderConfig{}.withDefaults()
	cases := map[netem.NodeID]bool{
		"10.0.0.1":     true,
		"192.168.1.20": true,
		"voicehoc.ch":  false,
		"ua.carol.net": false,
		"10.0.0.x":     false,
	}
	for id, want := range cases {
		if got := cfg.IsLocal(id); got != want {
			t.Errorf("IsLocal(%q) = %v, want %v", id, got, want)
		}
	}
}

// proxyFixture builds a proxy + SLP agent on a single node.
func proxyFixture(t *testing.T) (*Proxy, *netem.Host, *slp.Agent) {
	t.Helper()
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	t.Cleanup(net.Close)
	host, err := net.AddHost("10.0.0.1", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	proto := aodv.New(host, aodv.SimConfig())
	agent := slp.NewAgent(host, slp.Config{})
	agent.AttachRouting(proto)
	if err := proto.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proto.Stop)
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Stop)
	proxy := NewProxy(host, agent, nil, ProxyConfig{SLPTimeout: 200 * time.Millisecond})
	if err := proxy.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Stop)
	return proxy, host, agent
}

func register(t *testing.T, host *netem.Host, proxy *Proxy, user string, expires int) *sip.Message {
	t.Helper()
	conn, err := host.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	stack := sip.NewStack(conn, sip.SimConfig())
	t.Cleanup(stack.Close)
	req := sip.NewRequest(sip.MethodRegister, &sip.URI{Scheme: "sip", Host: "voicehoc.ch"})
	id := &sip.NameAddr{URI: &sip.URI{Scheme: "sip", User: user, Host: "voicehoc.ch"}}
	req.From = id.Clone()
	req.From.SetTag("t1")
	req.To = id
	req.CallID = stack.NewCallID()
	req.CSeq = sip.CSeq{Seq: 1, Method: sip.MethodRegister}
	req.Contact = []*sip.NameAddr{{URI: &sip.URI{Scheme: "sip", User: user, Host: "10.0.0.1", Port: 5070}}}
	req.Expires = expires
	tx, err := stack.SendRequest(req, proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestProxyRegistrarLifecycle(t *testing.T) {
	proxy, host, agent := proxyFixture(t)
	resp := register(t, host, proxy, "alice", 60)
	if resp.StatusCode != sip.StatusOK {
		t.Fatalf("register status = %d", resp.StatusCode)
	}
	if got := proxy.Bindings(); len(got) != 1 || got[0] != "alice@voicehoc.ch" {
		t.Fatalf("bindings = %v", got)
	}
	if _, ok := agent.LookupCached("sip", "alice@voicehoc.ch"); !ok {
		t.Fatal("binding not advertised via SLP")
	}
	// Expires: 0 deregisters and withdraws the advert.
	resp = register(t, host, proxy, "alice", 0)
	if resp.StatusCode != sip.StatusOK {
		t.Fatalf("deregister status = %d", resp.StatusCode)
	}
	if got := proxy.Bindings(); len(got) != 0 {
		t.Fatalf("bindings after deregister = %v", got)
	}
	if _, ok := agent.LookupCached("sip", "alice@voicehoc.ch"); ok {
		t.Fatal("SLP advert survived deregistration")
	}
}

func TestProxyRejectsRemoteRegister(t *testing.T) {
	proxy, host, _ := proxyFixture(t)
	// A second node tries to use us as its registrar.
	other, err := host.Network().AddHost("10.0.0.9", netem.Position{X: 10})
	if err != nil {
		t.Fatal(err)
	}
	other.SetRouteProvider(directRoute{})
	host.SetRouteProvider(directRoute{})
	conn, err := other.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	stack := sip.NewStack(conn, sip.SimConfig())
	t.Cleanup(stack.Close)
	req := sip.NewRequest(sip.MethodRegister, &sip.URI{Scheme: "sip", Host: "voicehoc.ch"})
	id := &sip.NameAddr{URI: &sip.URI{Scheme: "sip", User: "mallory", Host: "voicehoc.ch"}}
	req.From = id.Clone()
	req.From.SetTag("t")
	req.To = id
	req.CallID = "c1"
	req.CSeq = sip.CSeq{Seq: 1, Method: sip.MethodRegister}
	req.Contact = []*sip.NameAddr{{URI: &sip.URI{Scheme: "sip", Host: "10.0.0.9", Port: 5062}}}
	tx, err := stack.SendRequest(req, proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusNotFound {
		t.Fatalf("remote register status = %d, want 404", resp.StatusCode)
	}
}

type directRoute struct{}

func (directRoute) NextHop(dst netem.NodeID) (netem.NodeID, bool)  { return dst, true }
func (directRoute) RequestRoute(dst netem.NodeID, done func(bool)) { done(true) }

func TestProxyUnknownTargetIs404(t *testing.T) {
	proxy, host, _ := proxyFixture(t)
	conn, err := host.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	stack := sip.NewStack(conn, sip.SimConfig())
	t.Cleanup(stack.Close)
	req := sip.NewRequest(sip.MethodInvite, sip.MustParseURI("sip:ghost@voicehoc.ch"))
	req.From = &sip.NameAddr{URI: sip.MustParseURI("sip:a@voicehoc.ch")}
	req.From.SetTag("t")
	req.To = &sip.NameAddr{URI: sip.MustParseURI("sip:ghost@voicehoc.ch")}
	req.CallID = "c-404"
	req.CSeq = sip.CSeq{Seq: 1, Method: sip.MethodInvite}
	tx, err := stack.SendRequest(req, proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if proxy.Stats().Unresolved != 1 {
		t.Fatalf("stats = %+v", proxy.Stats())
	}
}

func TestProxyLoopDetection(t *testing.T) {
	proxy, host, _ := proxyFixture(t)
	conn, err := host.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	stack := sip.NewStack(conn, sip.SimConfig())
	t.Cleanup(stack.Close)
	req := sip.NewRequest(sip.MethodInvite, sip.MustParseURI("sip:bob@voicehoc.ch"))
	req.From = &sip.NameAddr{URI: sip.MustParseURI("sip:a@voicehoc.ch")}
	req.From.SetTag("t")
	req.To = &sip.NameAddr{URI: sip.MustParseURI("sip:bob@voicehoc.ch")}
	req.CallID = "c-loop"
	req.CSeq = sip.CSeq{Seq: 1, Method: sip.MethodInvite}
	// Forge a Via showing the request already passed through this proxy.
	req.Via = []*sip.Via{{Transport: "UDP", Host: "10.0.0.1", Port: 5060,
		Params: map[string]string{"branch": "z9hG4bK-old"}}}
	tx, err := stack.SendRequest(req, proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusLoopDetected {
		t.Fatalf("status = %d, want 482", resp.StatusCode)
	}
}

func TestProxyMaxForwardsExhausted(t *testing.T) {
	proxy, host, agent := proxyFixture(t)
	// Register a target so resolution succeeds and forwarding is reached.
	if err := agent.Register(slp.Service{Type: "sip", Key: "bob@voicehoc.ch",
		URL: "service:sip://10.0.0.9:5060"}); err != nil {
		t.Fatal(err)
	}
	conn, err := host.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	stack := sip.NewStack(conn, sip.SimConfig())
	t.Cleanup(stack.Close)
	req := sip.NewRequest(sip.MethodInvite, sip.MustParseURI("sip:bob@voicehoc.ch"))
	req.From = &sip.NameAddr{URI: sip.MustParseURI("sip:a@voicehoc.ch")}
	req.From.SetTag("t")
	req.To = &sip.NameAddr{URI: sip.MustParseURI("sip:bob@voicehoc.ch")}
	req.CallID = "c-mf"
	req.CSeq = sip.CSeq{Seq: 1, Method: sip.MethodInvite}
	req.MaxForwards = 0
	tx, err := stack.SendRequest(req, proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusTooManyHops {
		t.Fatalf("status = %d, want 483", resp.StatusCode)
	}
}
