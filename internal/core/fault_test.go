package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"siphoc/internal/internet"
	"siphoc/internal/netem"
	"siphoc/internal/routing/aodv"
	"siphoc/internal/sip"
	"siphoc/internal/slp"
)

// faultBed is a MANET with one client node and a configurable number of
// gateway hosts, all mutually in radio range, for failure-path tests.
type faultBed struct {
	net    *netem.Network
	inet   *internet.Internet
	node   *netem.Host
	gws    []*netem.Host
	agents map[netem.NodeID]*slp.Agent
}

func newFaultBed(t *testing.T, gateways int) *faultBed {
	t.Helper()
	fb := &faultBed{
		net:    netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond}),
		inet:   internet.New(internet.Config{Delay: 200 * time.Microsecond}),
		agents: make(map[netem.NodeID]*slp.Agent),
	}
	t.Cleanup(fb.net.Close)
	t.Cleanup(fb.inet.Close)
	addHost := func(id netem.NodeID, x float64) *netem.Host {
		h, err := fb.net.AddHost(id, netem.Position{X: x})
		if err != nil {
			t.Fatal(err)
		}
		proto := aodv.New(h, aodv.SimConfig())
		agent := slp.NewAgent(h, slp.Config{})
		agent.AttachRouting(proto)
		if err := proto.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proto.Stop)
		if err := agent.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(agent.Stop)
		fb.agents[id] = agent
		return h
	}
	fb.node = addHost("10.0.0.1", 0)
	for i := 0; i < gateways; i++ {
		fb.gws = append(fb.gws, addHost(netem.NodeID(fmt.Sprintf("10.0.0.%d", i+2)), float64(30*(i+1))))
	}
	return fb
}

func (fb *faultBed) startGateway(t *testing.T, h *netem.Host) *GatewayProvider {
	t.Helper()
	gw := NewGatewayProvider(h, fb.inet, fb.agents[h.ID()], GatewayConfig{ClientTTL: time.Second})
	if err := gw.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Stop)
	return gw
}

// faultConnCfg is fastConnCfg with a tight acquisition budget so terminal
// failures surface within a test-sized timeout.
func faultConnCfg() ConnProviderConfig {
	cfg := fastConnCfg()
	cfg.MaxLookupRetries = 3
	cfg.BlacklistTTL = 2 * time.Second
	return cfg
}

func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestGatewayFailureMatrix drives the Connection Provider through the
// gateway-death matrix: abrupt crash and graceful shutdown with a fallback
// gateway available (must fail over), the double crash of every gateway and a
// crash racing the initial attach (must surface the typed terminal error
// while probing continues).
func TestGatewayFailureMatrix(t *testing.T) {
	cases := []struct {
		name      string
		gateways  int
		graceful  bool // Stop() announces tunClose; otherwise the host vanishes
		crashBoth bool // also kill the fallback gateway
		preCrash  bool // kill before the provider ever attaches
	}{
		{name: "abrupt crash fails over", gateways: 2},
		{name: "graceful shutdown fails over", gateways: 2, graceful: true},
		{name: "double crash is terminal", gateways: 2, crashBoth: true},
		{name: "crash during attach is terminal", gateways: 1, preCrash: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			fb := newFaultBed(t, tc.gateways)
			gws := make([]*GatewayProvider, len(fb.gws))
			for i, h := range fb.gws {
				gws[i] = fb.startGateway(t, h)
			}

			cp := NewConnectionProvider(fb.node, fb.agents[fb.node.ID()], faultConnCfg())

			if tc.preCrash {
				// Let the gateway advert spread, then crash the gateway
				// before the provider starts: the OPEN can only time out.
				if _, err := fb.agents[fb.node.ID()].Lookup(GatewayServiceType, "", time.Second); err != nil {
					t.Fatal(err)
				}
				fb.net.RemoveHost(fb.gws[0].ID())
				if err := cp.Start(); err != nil {
					t.Fatal(err)
				}
				t.Cleanup(cp.Stop)
				err := cp.WaitAttached(10 * time.Second)
				if !errors.Is(err, ErrNoGateway) {
					t.Fatalf("WaitAttached = %v, want ErrNoGateway", err)
				}
				if !errors.Is(cp.LastError(), ErrNoGateway) {
					t.Fatalf("LastError = %v, want ErrNoGateway", cp.LastError())
				}
				return
			}

			if err := cp.Start(); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(cp.Stop)
			if err := cp.WaitAttached(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			first := cp.Gateway()

			// Kill the attached gateway (and with crashBoth the fallback).
			kill := func(gw netem.NodeID) {
				for i, h := range fb.gws {
					if h.ID() != gw {
						continue
					}
					if tc.graceful {
						gws[i].Stop()
					} else {
						fb.net.RemoveHost(gw)
					}
				}
			}
			kill(first)
			if tc.crashBoth {
				for _, h := range fb.gws {
					if h.ID() != first {
						kill(h.ID())
					}
				}
				// The provider only notices on the next failed ping; wait
				// for the detach before asserting the terminal error.
				waitCond(t, 15*time.Second, "detach", func() bool {
					return !cp.Attached()
				})
				err := cp.WaitAttached(15 * time.Second)
				if !errors.Is(err, ErrNoGateway) {
					t.Fatalf("WaitAttached = %v, want ErrNoGateway", err)
				}
				return
			}

			// Failover: re-attached to the surviving gateway, with the dead
			// one quarantined and the failover latency recorded.
			waitCond(t, 15*time.Second, "failover", func() bool {
				return cp.Attached() && cp.Gateway() != first
			})
			st := cp.Stats()
			if st.Failovers < 1 {
				t.Fatalf("Failovers = %d, want >= 1 (stats %+v)", st.Failovers, st)
			}
			if st.LastFailoverDur <= 0 {
				t.Fatalf("LastFailoverDur = %v, want > 0", st.LastFailoverDur)
			}
			found := false
			for _, gw := range cp.Blacklisted() {
				if gw == first {
					found = true
				}
			}
			if !found {
				t.Fatalf("dead gateway %v not blacklisted (%v)", first, cp.Blacklisted())
			}
		})
	}
}

// TestBlacklistedGatewaySkipped pins the candidate filter directly: a
// quarantined gateway is not offered for attachment until its TTL lapses.
func TestBlacklistedGatewaySkipped(t *testing.T) {
	fb := newFaultBed(t, 2)
	fb.startGateway(t, fb.gws[0])
	fb.startGateway(t, fb.gws[1])
	cfg := faultConnCfg()
	cp := NewConnectionProvider(fb.node, fb.agents[fb.node.ID()], cfg)
	// Warm the SLP cache so candidates exist without starting the loops.
	if _, err := fb.agents[fb.node.ID()].Lookup(GatewayServiceType, "", time.Second); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 5*time.Second, "both adverts cached", func() bool {
		return len(cp.gatewayCandidates()) == 2
	})
	cp.blacklistGateway(fb.gws[0].ID())
	cands := cp.gatewayCandidates()
	if len(cands) != 1 || cands[0].node != fb.gws[1].ID() {
		t.Fatalf("candidates with blacklist = %+v", cands)
	}
	if bl := cp.Blacklisted(); len(bl) != 1 || bl[0] != fb.gws[0].ID() {
		t.Fatalf("Blacklisted() = %v", bl)
	}
}

// TestProxyReresolvesStaleSLP covers proxy recovery from a stale SLP result:
// the callee's proxy moved (old node crashed, new node re-advertised the
// AOR), the INVITE to the dead address exhausts its retransmissions, and the
// proxy evicts the stale entry, re-resolves and completes the call.
func TestProxyReresolvesStaleSLP(t *testing.T) {
	fb := newFaultBed(t, 2) // gateways unused; we just want 3 routed hosts
	old, fresh := fb.gws[0], fb.gws[1]

	// The callee's original advert, originated by the soon-to-die node.
	if err := fb.agents[old.ID()].Register(slp.Service{
		Type: SIPServiceType, Key: "bob@voicehoc.ch",
		URL: slp.ServiceURL(SIPServiceType, string(old.ID())+":5060"),
	}); err != nil {
		t.Fatal(err)
	}
	caller := NewProxy(fb.node, fb.agents[fb.node.ID()], nil, ProxyConfig{
		SLPTimeout:     300 * time.Millisecond,
		ResolveRetries: 2,
		ResolveBackoff: 20 * time.Millisecond,
	})
	if err := caller.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(caller.Stop)
	// Cache the stale advert on the caller's node, then crash its origin.
	if _, err := fb.agents[fb.node.ID()].Lookup(SIPServiceType, "bob@voicehoc.ch", time.Second); err != nil {
		t.Fatal(err)
	}
	fb.net.RemoveHost(old.ID())

	// Bob reappears on the surviving node: a UA answering 200 OK, advertised
	// under the same AOR by the new origin.
	uaConn, err := fresh.Listen(5080)
	if err != nil {
		t.Fatal(err)
	}
	ua := sip.NewStack(uaConn, sip.SimConfig())
	t.Cleanup(ua.Close)
	ua.OnRequest(func(tx *sip.ServerTx) {
		resp := sip.NewResponse(tx.Request(), sip.StatusOK, "")
		resp.To.SetTag("bob-1")
		_ = tx.Respond(resp)
	})
	if err := fb.agents[fresh.ID()].Register(slp.Service{
		Type: SIPServiceType, Key: "bob@voicehoc.ch",
		URL: slp.ServiceURL(SIPServiceType, string(fresh.ID())+":5080"),
	}); err != nil {
		t.Fatal(err)
	}

	callerConn, err := fb.node.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	stack := sip.NewStack(callerConn, sip.SimConfig())
	t.Cleanup(stack.Close)
	req := sip.NewRequest(sip.MethodInvite, sip.MustParseURI("sip:bob@voicehoc.ch"))
	req.From = &sip.NameAddr{URI: sip.MustParseURI("sip:alice@voicehoc.ch")}
	req.From.SetTag("a1")
	req.To = &sip.NameAddr{URI: sip.MustParseURI("sip:bob@voicehoc.ch")}
	req.CallID = "c-stale"
	req.CSeq = sip.CSeq{Seq: 1, Method: sip.MethodInvite}
	tx, err := stack.SendRequest(req, caller.Addr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusOK {
		t.Fatalf("INVITE after callee moved = %d, want 200 (stats %+v, cached %+v)",
			resp.StatusCode, caller.Stats(), fb.agents[fb.node.ID()].Services(SIPServiceType))
	}
	st := caller.Stats()
	if st.SLPEvictions < 1 || st.SLPReresolutions < 1 {
		t.Fatalf("recovery not exercised: %+v", st)
	}
}

// TestProxyRetransmitExhaustionIs408 pins the terminal path: when the stale
// route has no replacement, the proxy still answers the caller with 408
// after its bounded recovery attempts rather than hanging.
func TestProxyRetransmitExhaustionIs408(t *testing.T) {
	_, host, agent := shortTTLFixture(t)
	proxy := NewProxy(host, agent, nil, ProxyConfig{
		SLPTimeout:     200 * time.Millisecond,
		ResolveRetries: -1, // recovery covered elsewhere; pin the terminal path
	})
	if err := proxy.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Stop)
	// An advert pointing into the void: nothing listens at the target.
	if err := agent.Register(slp.Service{Type: SIPServiceType, Key: "ghost@voicehoc.ch",
		URL: slp.ServiceURL(SIPServiceType, "10.0.0.9:5060")}); err != nil {
		t.Fatal(err)
	}
	conn, err := host.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	stack := sip.NewStack(conn, sip.SimConfig())
	t.Cleanup(stack.Close)
	req := sip.NewRequest(sip.MethodInvite, sip.MustParseURI("sip:ghost@voicehoc.ch"))
	req.From = &sip.NameAddr{URI: sip.MustParseURI("sip:alice@voicehoc.ch")}
	req.From.SetTag("a2")
	req.To = &sip.NameAddr{URI: sip.MustParseURI("sip:ghost@voicehoc.ch")}
	req.CallID = "c-408"
	req.CSeq = sip.CSeq{Seq: 1, Method: sip.MethodInvite}
	tx, err := stack.SendRequest(req, proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408", resp.StatusCode)
	}
}
