// Package sdp implements the small subset of the Session Description
// Protocol (RFC 4566) VoIP call setup needs: describing one audio stream
// (G.711 µ-law, payload type 0) with its transport address, and the
// offer/answer exchange carried in INVITE and 200 OK bodies.
package sdp

import (
	"fmt"
	"strconv"
	"strings"
)

// ContentType is the MIME type for SDP bodies.
const ContentType = "application/sdp"

// Media describes one media stream.
type Media struct {
	Type    string // "audio"
	Port    uint16
	Proto   string   // "RTP/AVP"
	Formats []string // payload types, e.g. ["0"] for PCMU
}

// Session is a minimal SDP session description.
type Session struct {
	Username  string
	SessionID uint64
	Version   uint64
	Address   string // connection address (node ID)
	Name      string // s= line
	Media     []Media
}

// NewAudioOffer builds a one-stream audio session rooted at addr:port.
func NewAudioOffer(username, addr string, port uint16) *Session {
	return &Session{
		Username:  username,
		SessionID: 1,
		Version:   1,
		Address:   addr,
		Name:      "siphoc-call",
		Media: []Media{{
			Type: "audio", Port: port, Proto: "RTP/AVP", Formats: []string{"0"},
		}},
	}
}

// Answer builds the answer to offer, placing the local audio stream at
// addr:port. It returns an error if the offer has no compatible audio
// stream (we accept payload type 0, PCMU).
func Answer(offer *Session, username, addr string, port uint16) (*Session, error) {
	for _, m := range offer.Media {
		if m.Type != "audio" {
			continue
		}
		for _, f := range m.Formats {
			if f == "0" {
				return NewAudioOffer(username, addr, port), nil
			}
		}
	}
	return nil, fmt.Errorf("sdp: no compatible audio stream in offer")
}

// AudioEndpoint returns the remote audio address and port from a session.
func (s *Session) AudioEndpoint() (string, uint16, error) {
	for _, m := range s.Media {
		if m.Type == "audio" {
			return s.Address, m.Port, nil
		}
	}
	return "", 0, fmt.Errorf("sdp: no audio stream")
}

// Marshal renders the session description. Fields that would break the
// line-oriented syntax (whitespace, empty values) are normalized.
func (s *Session) Marshal() []byte {
	addr := sanitizeField(s.Address)
	if addr == "" {
		addr = "0.0.0.0"
	}
	var b strings.Builder
	b.WriteString("v=0\r\n")
	fmt.Fprintf(&b, "o=%s %d %d IN IP4 %s\r\n", orDash(sanitizeField(s.Username)), s.SessionID, s.Version, addr)
	fmt.Fprintf(&b, "s=%s\r\n", orDash(sanitizeLine(s.Name)))
	fmt.Fprintf(&b, "c=IN IP4 %s\r\n", addr)
	b.WriteString("t=0 0\r\n")
	for _, m := range s.Media {
		fmt.Fprintf(&b, "m=%s %d %s %s\r\n",
			sanitizeField(m.Type), m.Port, sanitizeField(m.Proto), strings.Join(s.cleanFormats(m), " "))
	}
	return []byte(b.String())
}

func (s *Session) cleanFormats(m Media) []string {
	out := make([]string, 0, len(m.Formats))
	for _, f := range m.Formats {
		if cf := sanitizeField(f); cf != "" {
			out = append(out, cf)
		}
	}
	return out
}

// sanitizeField strips whitespace and CR/LF from a single space-separated
// field. It works byte-wise so non-UTF-8 input passes through unmangled.
func sanitizeField(s string) string {
	return stripBytes(s, " \t\r\n")
}

// sanitizeLine strips only line breaks (free-text fields like s=).
func sanitizeLine(s string) string {
	return stripBytes(s, "\r\n")
}

func stripBytes(s, cutset string) string {
	if !strings.ContainsAny(s, cutset) {
		return s
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if strings.IndexByte(cutset, s[i]) < 0 {
			out = append(out, s[i])
		}
	}
	return string(out)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Parse decodes a session description.
func Parse(data []byte) (*Session, error) {
	s := &Session{}
	sawV := false
	// Accept CRLF, LF and stray CR line endings alike.
	text := strings.ReplaceAll(string(data), "\r\n", "\n")
	text = strings.ReplaceAll(text, "\r", "\n")
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if len(line) < 2 || line[1] != '=' {
			return nil, fmt.Errorf("sdp: malformed line %q", line)
		}
		val := line[2:]
		switch line[0] {
		case 'v':
			if val != "0" {
				return nil, fmt.Errorf("sdp: unsupported version %q", val)
			}
			sawV = true
		case 'o':
			fields := strings.Fields(val)
			if len(fields) != 6 {
				return nil, fmt.Errorf("sdp: malformed o= line %q", line)
			}
			s.Username = fields[0]
			id, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sdp: bad session id: %v", err)
			}
			ver, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sdp: bad session version: %v", err)
			}
			s.SessionID, s.Version = id, ver
			if s.Address == "" {
				s.Address = fields[5]
			}
		case 's':
			s.Name = val
		case 'c':
			fields := strings.Fields(val)
			if len(fields) != 3 {
				return nil, fmt.Errorf("sdp: malformed c= line %q", line)
			}
			s.Address = fields[2]
		case 'm':
			fields := strings.Fields(val)
			if len(fields) < 4 {
				return nil, fmt.Errorf("sdp: malformed m= line %q", line)
			}
			port, err := strconv.ParseUint(fields[1], 10, 16)
			if err != nil {
				return nil, fmt.Errorf("sdp: bad media port: %v", err)
			}
			s.Media = append(s.Media, Media{
				Type:    fields[0],
				Port:    uint16(port),
				Proto:   fields[2],
				Formats: fields[3:],
			})
		case 't', 'a', 'b', 'i', 'u', 'e', 'p', 'r', 'z', 'k':
			// Tolerated and ignored.
		default:
			return nil, fmt.Errorf("sdp: unknown line type %q", line[0])
		}
	}
	if !sawV {
		return nil, fmt.Errorf("sdp: missing v= line")
	}
	if s.Address == "" {
		return nil, fmt.Errorf("sdp: missing connection address (o=/c=)")
	}
	return s, nil
}
