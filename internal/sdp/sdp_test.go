package sdp

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestOfferRoundTrip(t *testing.T) {
	in := NewAudioOffer("alice", "10.0.0.1", 40000)
	out, err := Parse(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("mismatch:\n%+v\n%+v", in, out)
	}
}

func TestAnswerCompatible(t *testing.T) {
	offer := NewAudioOffer("alice", "10.0.0.1", 40000)
	ans, err := Answer(offer, "bob", "10.0.0.2", 40002)
	if err != nil {
		t.Fatal(err)
	}
	addr, port, err := ans.AudioEndpoint()
	if err != nil || addr != "10.0.0.2" || port != 40002 {
		t.Fatalf("endpoint = %s:%d %v", addr, port, err)
	}
}

func TestAnswerIncompatible(t *testing.T) {
	offer := &Session{Address: "x", Media: []Media{{Type: "audio", Port: 1, Proto: "RTP/AVP", Formats: []string{"96"}}}}
	if _, err := Answer(offer, "bob", "y", 2); err == nil {
		t.Fatal("incompatible offer answered")
	}
	video := &Session{Address: "x", Media: []Media{{Type: "video", Port: 1, Proto: "RTP/AVP", Formats: []string{"0"}}}}
	if _, err := Answer(video, "bob", "y", 2); err == nil {
		t.Fatal("video-only offer answered as audio")
	}
}

func TestParseToleratesExtraLines(t *testing.T) {
	raw := "v=0\r\no=- 1 1 IN IP4 10.0.0.1\r\ns=x\r\nc=IN IP4 10.0.0.1\r\nt=0 0\r\na=sendrecv\r\nm=audio 4000 RTP/AVP 0 8\r\n"
	s, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Media) != 1 || len(s.Media[0].Formats) != 2 {
		t.Fatalf("media = %+v", s.Media)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"o=- 1 1 IN IP4 h\r\n",         // missing v=
		"v=1\r\n",                      // wrong version
		"v=0\r\nm=audio x RTP/AVP 0",   // bad port
		"v=0\r\no=broken\r\n",          // bad origin
		"v=0\r\nq=quux\r\n",            // unknown line
		"v=0\r\nzz\r\n",                // not key=value
		"v=0\r\nc=IN IP4\r\n",          // short c=
		"v=0\r\nm=audio 1 RTP/AVP\r\n", // no formats
	}
	for _, raw := range cases {
		if _, err := Parse([]byte(raw)); err == nil {
			t.Errorf("Parse(%q) accepted", raw)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(user string, port uint16) bool {
		clean := ""
		for _, r := range user {
			if r > ' ' && r < 127 {
				clean += string(r)
			}
		}
		if clean == "" {
			clean = "u"
		}
		if len(clean) > 30 {
			clean = clean[:30]
		}
		in := NewAudioOffer(clean, "10.0.0.9", port)
		out, err := Parse(in.Marshal())
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
