package sdp

import (
	"reflect"
	"testing"
)

// FuzzParse: any input either errors or yields a session whose Marshal
// output reparses to the same value.
func FuzzParse(f *testing.F) {
	f.Add(NewAudioOffer("alice", "10.0.0.1", 40000).Marshal())
	f.Add([]byte("v=0\r\no=- 1 1 IN IP4 h\r\ns=x\r\nc=IN IP4 h\r\nt=0 0\r\nm=audio 4000 RTP/AVP 0 8\r\n"))
	f.Add([]byte("v=0"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		s2, err := Parse(s.Marshal())
		if err != nil {
			t.Fatalf("marshal output unparseable: %v\nwire: %q", err, s.Marshal())
		}
		// The o=/s= placeholders normalize "" to "-"; align before diff.
		if s.Username == "" {
			s.Username = "-"
		}
		if s.Name == "" {
			s.Name = "-"
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip drift:\n%+v\n%+v", s, s2)
		}
	})
}
