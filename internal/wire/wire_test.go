package wire

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(7)
	w.U16(65535)
	w.U32(1 << 30)
	w.U64(1 << 50)
	w.String("alice@voicehoc.ch")
	w.String("")
	w.Raw([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := r.U16(); got != 65535 {
		t.Fatalf("U16 = %d", got)
	}
	if got := r.U32(); got != 1<<30 {
		t.Fatalf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<50 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.String(); got != "alice@voicehoc.ch" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("empty String = %q", got)
	}
	if got := r.Remaining(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("Remaining = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncation(t *testing.T) {
	w := NewWriter(8)
	w.String("hello")
	b := w.Bytes()
	r := NewReader(b[:3])
	if got := r.String(); got != "" {
		t.Fatalf("truncated String = %q", got)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", r.Err())
	}
	// Once failed, everything returns zero values.
	if r.U32() != 0 || r.U8() != 0 {
		t.Fatal("post-error reads returned nonzero")
	}
}

func TestEmptyReader(t *testing.T) {
	r := NewReader(nil)
	if r.U16() != 0 || !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("empty reader: %v", r.Err())
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(a, b string, x uint32) bool {
		if len(a) > 0xffff || len(b) > 0xffff {
			return true
		}
		w := NewWriter(len(a) + len(b) + 8)
		w.String(a)
		w.U32(x)
		w.String(b)
		r := NewReader(w.Bytes())
		return r.String() == a && r.U32() == x && r.String() == b && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
