// Package wire provides small helpers for hand-rolled binary message
// encodings used by the routing protocols and SLP. All integers are
// big-endian; strings are u16-length-prefixed.
package wire

import (
	"encoding/binary"
	"errors"
)

// ErrTruncated is returned by Reader methods once input is exhausted.
var ErrTruncated = errors.New("wire: truncated input")

// Writer accumulates an encoded message.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given capacity hint.
func NewWriter(capHint int) *Writer {
	return &Writer{buf: make([]byte, 0, capHint)}
}

// Bytes returns the encoded message.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset truncates the writer for reuse, keeping the allocated capacity.
// Bytes slices obtained before Reset are invalidated by subsequent writes.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Len returns the current encoded length.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends a byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// String appends a u16-length-prefixed string. Strings longer than 65535
// bytes are truncated — callers validate sizes at higher layers.
func (w *Writer) String(s string) {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	w.U16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends bytes verbatim (no length prefix).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reader decodes a message encoded with Writer. After any failure all
// subsequent reads return zero values; check Err once at the end.
type Reader struct {
	b   []byte
	err error
}

// NewReader wraps b for decoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the undecoded tail.
func (r *Reader) Remaining() []byte { return r.b }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = ErrTruncated
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// String reads a u16-length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U16())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// StringBytes reads a u16-length-prefixed string as a byte slice aliasing
// the input — the zero-copy variant of String for hot receive paths that
// only compare or look the value up (e.g. a byte-keyed map probe) and can
// defer the string copy to the rare case where they keep it. Returns nil
// on truncation, like all Reader methods.
func (r *Reader) StringBytes() []byte {
	return r.take(int(r.U16()))
}
