package netem

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/obs"
)

// FaultKind classifies an injected fault for logs and metrics.
type FaultKind string

// Fault kinds.
const (
	FaultLinkCut       FaultKind = "link.cut"
	FaultLinkHeal      FaultKind = "link.heal"
	FaultLinkDegrade   FaultKind = "link.degrade"
	FaultLinkRestore   FaultKind = "link.restore"
	FaultPartition     FaultKind = "net.partition"
	FaultPartitionHeal FaultKind = "net.heal"
	FaultLossRate      FaultKind = "net.lossrate"
	FaultCustom        FaultKind = "custom"
)

// FaultRecord is one executed fault as logged by the plan runner. Records
// carry only plan-relative data (no wall-clock timestamps), so the log of a
// seeded plan compares bit-identically across runs.
type FaultRecord struct {
	Seq    int           // insertion order within the plan
	Offset time.Duration // scheduled offset from Run()
	Kind   FaultKind
	Detail string
}

// String renders the record for humans.
func (r FaultRecord) String() string {
	return fmt.Sprintf("[%8v] %-14s %s", r.Offset, r.Kind, r.Detail)
}

// FaultPlanConfig tunes a fault plan.
type FaultPlanConfig struct {
	// Seed drives the plan's own RNG, used by the random fault generators
	// (FlapRandomLinks). The injected schedule is a pure function of the
	// seed and the builder calls (default 1).
	Seed int64
	// Obs records an injected-fault counter and node-scoped fault spans
	// that are stitched into overlapping call traces. Nil disables.
	Obs *obs.Observer
}

// faultEvent is one scheduled fault: the mutation plus its log identity.
type faultEvent struct {
	offset time.Duration
	seq    int
	kind   FaultKind
	node   string // affected entity, for the obs span
	detail string
	apply  func()
}

// FaultPlan is a deterministic schedule of faults against a Network: link
// cuts and heals, per-link quality degradation, partitions, loss-rate
// changes, and arbitrary callbacks (node crash/restart, gateway churn) hung
// off At. Events are executed by a single runner goroutine on the network's
// clock, in (offset, insertion) order — on clock.Fake the same plan replays
// bit-identically: same mutations, same log, same medium RNG draw sequence.
//
// Build the schedule first (the builder is not safe for concurrent use with
// Run), then Run it and Wait for completion.
type FaultPlan struct {
	net *Network
	clk clock.Clock
	rng *rand.Rand
	obs *obs.Observer

	obsInjected *obs.Counter

	mu      sync.Mutex
	events  []faultEvent
	log     []FaultRecord
	running bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewFaultPlan creates an empty plan against net, scheduled on net's clock.
func NewFaultPlan(net *Network, cfg FaultPlanConfig) *FaultPlan {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	p := &FaultPlan{
		net:  net,
		clk:  net.Clock(),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		obs:  cfg.Obs,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if cfg.Obs.Enabled() {
		p.obsInjected = cfg.Obs.Counter("netem.faults.injected")
	}
	return p
}

func (p *FaultPlan) add(offset time.Duration, kind FaultKind, node, detail string, apply func()) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.events = append(p.events, faultEvent{
		offset: offset,
		seq:    len(p.events),
		kind:   kind,
		node:   node,
		detail: detail,
		apply:  apply,
	})
	return p
}

// At schedules an arbitrary fault callback — the hook scenario layers use
// for node crash/restart and gateway churn. fn runs on the plan's runner
// goroutine.
func (p *FaultPlan) At(offset time.Duration, detail string, fn func()) *FaultPlan {
	return p.add(offset, FaultCustom, "", detail, fn)
}

// CutLink forces the a–b link down at offset.
func (p *FaultPlan) CutLink(offset time.Duration, a, b NodeID) *FaultPlan {
	return p.add(offset, FaultLinkCut, linkName(a, b), linkName(a, b), func() {
		p.net.SetLink(a, b, false)
	})
}

// HealLink restores distance-based connectivity on the a–b link at offset.
func (p *FaultPlan) HealLink(offset time.Duration, a, b NodeID) *FaultPlan {
	return p.add(offset, FaultLinkHeal, linkName(a, b), linkName(a, b), func() {
		p.net.ClearLink(a, b)
	})
}

// DegradeLink installs a per-link loss/latency override at offset.
func (p *FaultPlan) DegradeLink(offset time.Duration, a, b NodeID, q LinkQuality) *FaultPlan {
	detail := fmt.Sprintf("%s loss=%g extra=%v", linkName(a, b), q.Loss, q.ExtraDelay)
	return p.add(offset, FaultLinkDegrade, linkName(a, b), detail, func() {
		p.net.SetLinkQuality(a, b, q)
	})
}

// RestoreLink removes a DegradeLink override at offset.
func (p *FaultPlan) RestoreLink(offset time.Duration, a, b NodeID) *FaultPlan {
	return p.add(offset, FaultLinkRestore, linkName(a, b), linkName(a, b), func() {
		p.net.ClearLinkQuality(a, b)
	})
}

// Partition cuts every link between the two groups at offset, splitting the
// network. Links inside each group are untouched.
func (p *FaultPlan) Partition(offset time.Duration, west, east []NodeID) *FaultPlan {
	w, e := copyIDs(west), copyIDs(east)
	detail := fmt.Sprintf("%v | %v", w, e)
	return p.add(offset, FaultPartition, "", detail, func() {
		for _, a := range w {
			for _, b := range e {
				p.net.SetLink(a, b, false)
			}
		}
	})
}

// HealPartition removes the cross-group cuts installed by Partition.
func (p *FaultPlan) HealPartition(offset time.Duration, west, east []NodeID) *FaultPlan {
	w, e := copyIDs(west), copyIDs(east)
	detail := fmt.Sprintf("%v | %v", w, e)
	return p.add(offset, FaultPartitionHeal, "", detail, func() {
		for _, a := range w {
			for _, b := range e {
				p.net.ClearLink(a, b)
			}
		}
	})
}

// SetLossRate changes the global loss rate at offset.
func (p *FaultPlan) SetLossRate(offset time.Duration, rate float64) *FaultPlan {
	return p.add(offset, FaultLossRate, "", fmt.Sprintf("rate=%g", rate), func() {
		p.net.SetLossRate(rate)
	})
}

// FlapRandomLinks schedules flaps (a cut followed by a heal after outage) on
// randomly chosen node pairs, with cut offsets drawn uniformly from
// [start, end). The choices come from the plan's seeded RNG, so the same
// seed and arguments always produce the same schedule.
func (p *FaultPlan) FlapRandomLinks(start, end time.Duration, flaps int, outage time.Duration, nodes []NodeID) *FaultPlan {
	if len(nodes) < 2 || end <= start {
		return p
	}
	ids := copyIDs(nodes)
	for range flaps {
		i := p.rng.Intn(len(ids))
		j := p.rng.Intn(len(ids) - 1)
		if j >= i {
			j++
		}
		at := start + time.Duration(p.rng.Int63n(int64(end-start)))
		p.CutLink(at, ids[i], ids[j])
		p.HealLink(at+outage, ids[i], ids[j])
	}
	return p
}

// Len returns the number of scheduled events.
func (p *FaultPlan) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.events)
}

// Duration returns the offset of the last scheduled event.
func (p *FaultPlan) Duration() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	var d time.Duration
	for _, ev := range p.events {
		if ev.offset > d {
			d = ev.offset
		}
	}
	return d
}

// Run starts executing the plan relative to the clock's current time. The
// builder must not be used after Run.
func (p *FaultPlan) Run() error {
	p.mu.Lock()
	if p.running {
		p.mu.Unlock()
		return fmt.Errorf("netem: fault plan already running")
	}
	p.running = true
	events := make([]faultEvent, len(p.events))
	copy(events, p.events)
	p.mu.Unlock()
	// Stable order: offset first, insertion order breaking ties, so a plan
	// built the same way always executes the same way.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].offset != events[j].offset {
			return events[i].offset < events[j].offset
		}
		return events[i].seq < events[j].seq
	})
	go p.run(events)
	return nil
}

func (p *FaultPlan) run(events []faultEvent) {
	defer close(p.done)
	start := p.clk.Now()
	for _, ev := range events {
		if wait := ev.offset - p.clk.Now().Sub(start); wait > 0 {
			t := p.clk.NewTimer(wait)
			select {
			case <-p.stop:
				t.Stop()
				return
			case <-t.C():
			}
		}
		select {
		case <-p.stop:
			return
		default:
		}
		span := p.obs.StartSpan("", obs.PhaseFault, ev.node)
		ev.apply()
		span.End(string(ev.kind) + " " + ev.detail)
		p.obsInjected.Inc()
		p.mu.Lock()
		p.log = append(p.log, FaultRecord{Seq: ev.seq, Offset: ev.offset, Kind: ev.kind, Detail: ev.detail})
		p.mu.Unlock()
	}
}

// Wait blocks until every scheduled fault has been injected (or the plan was
// stopped).
func (p *FaultPlan) Wait() { <-p.done }

// Stop cancels outstanding faults; already-injected ones are not undone.
func (p *FaultPlan) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.mu.Lock()
	running := p.running
	p.mu.Unlock()
	if running {
		<-p.done
	}
}

// Log returns a snapshot of the executed-fault log, in execution order.
func (p *FaultPlan) Log() []FaultRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]FaultRecord(nil), p.log...)
}

func linkName(a, b NodeID) string {
	k := orderedKey(a, b)
	return string(k.a) + "~" + string(k.b)
}

func copyIDs(ids []NodeID) []NodeID {
	return append([]NodeID(nil), ids...)
}
