package netem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// RouteProvider is what a routing protocol exposes to the forwarding engine.
// AODV implements RequestRoute by flooding an RREQ; OLSR answers from its
// proactively maintained table.
type RouteProvider interface {
	// NextHop returns the neighbour to forward traffic for dst to.
	NextHop(dst NodeID) (NodeID, bool)
	// RequestRoute asks the protocol to obtain a route to dst. done is
	// invoked exactly once, possibly synchronously, with the outcome.
	RequestRoute(dst NodeID, done func(found bool))
}

// HostStats counts per-node datagram activity.
type HostStats struct {
	Sent       int64 // datagrams originated here
	Received   int64 // datagrams delivered to a local port
	Forwarded  int64 // datagrams relayed for other nodes
	NoRoute    int64 // datagrams dropped after failed route discovery
	TTLExpired int64 // datagrams dropped on hop-limit exhaustion
	PortDrops  int64 // datagrams dropped at a full application queue
}

// hostCounters is the live, atomically updated form of HostStats, so the
// forwarding fast path never takes the host lock just to count.
type hostCounters struct {
	sent       atomic.Int64
	received   atomic.Int64
	forwarded  atomic.Int64
	noRoute    atomic.Int64
	ttlExpired atomic.Int64
	portDrops  atomic.Int64
}

func (c *hostCounters) snapshot() HostStats {
	return HostStats{
		Sent:       c.sent.Load(),
		Received:   c.received.Load(),
		Forwarded:  c.forwarded.Load(),
		NoRoute:    c.noRoute.Load(),
		TTLExpired: c.ttlExpired.Load(),
		PortDrops:  c.portDrops.Load(),
	}
}

// Host is one node's network stack: link interface, multihop forwarding and
// UDP-like ports. Create hosts with Network.AddHost.
type Host struct {
	net *Network
	id  NodeID

	inbox chan Frame
	stop  chan struct{}
	done  chan struct{}

	// inline marks event-loop mode: frames are handled directly on the
	// delivery shard's worker (no per-host dispatch goroutine, no inbox).
	// Unicast (KindData) deliveries for one host all land on its own shard,
	// so datagram/Conn handling stays serialized per host; broadcast control
	// frames run on the sender's shard and rely on the protocol handlers'
	// own locking, as they already did under concurrent dispatch.
	inline     bool
	closedFlag atomic.Bool

	mu        sync.RWMutex
	handlers  map[FrameKind]func(Frame)
	rp        RouteProvider
	defaultFn func(*Datagram) bool
	sink      func(*Datagram)
	ports     map[uint16]*Conn
	pending   map[NodeID][]*Datagram
	nextPort  uint16
	closed    bool

	stats hostCounters
}

// maxPending bounds the per-destination queue of datagrams awaiting route
// discovery, mirroring AODV's small send buffer.
const maxPending = 16

func newHost(n *Network, id NodeID) *Host {
	h := &Host{
		net:      n,
		id:       id,
		inbox:    make(chan Frame, n.cfg.QueueLen),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		handlers: make(map[FrameKind]func(Frame)),
		ports:    make(map[uint16]*Conn),
		pending:  make(map[NodeID][]*Datagram),
		nextPort: 32768,
	}
	if n.cfg.EventLoop {
		h.inline = true
		close(h.done) // no dispatch goroutine to wait for
	} else {
		go h.dispatch()
	}
	return h
}

// ID returns the node's address.
func (h *Host) ID() NodeID { return h.id }

// Network returns the medium the host is attached to.
func (h *Host) Network() *Network { return h.net }

// Neighbors returns the node's current radio neighbourhood.
func (h *Host) Neighbors() []NodeID { return h.net.Neighbors(h.id) }

// Stats returns a snapshot of the host's forwarding counters.
func (h *Host) Stats() HostStats { return h.stats.snapshot() }

// SendFrame transmits a raw link frame (routing protocols use this).
func (h *Host) SendFrame(dst NodeID, kind FrameKind, payload []byte) error {
	return h.net.send(Frame{Src: h.id, Dst: dst, Kind: kind, Payload: payload})
}

// HandleFrames registers fn as the receiver for incoming frames of the given
// kind. KindData is handled internally by the forwarding engine and cannot
// be overridden.
func (h *Host) HandleFrames(kind FrameKind, fn func(Frame)) error {
	if kind == KindData {
		return fmt.Errorf("netem: KindData is reserved for the forwarding engine")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.handlers[kind] = fn
	return nil
}

// SetRouteProvider attaches the routing protocol used for multihop
// forwarding.
func (h *Host) SetRouteProvider(rp RouteProvider) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rp = rp
}

// SetDefaultHandler installs fn as the last-resort handler for datagrams
// whose destination is not a known MANET node. It is how the Connection
// Provider tunnels Internet-bound traffic to a gateway. fn reports whether
// it consumed the datagram.
func (h *Host) SetDefaultHandler(fn func(*Datagram) bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.defaultFn = fn
}

// SetSink puts the host in promiscuous delivery mode: every datagram
// addressed to this host whose port is not explicitly bound is handed to fn
// instead of being dropped. Gateway tunnel endpoints use this to capture all
// traffic for a tunnelled node; the gateway's own trunk listener keeps its
// bound port.
func (h *Host) SetSink(fn func(*Datagram)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sink = fn
}

// enqueue is called by the medium to deliver a frame; it drops on overflow
// like a saturated radio. In event-loop mode the frame is handled right here
// on the delivery shard's worker: overload shows up as deliveries running
// late (the shard heap backing up) rather than as queue drops.
func (h *Host) enqueue(f Frame) {
	if h.inline {
		if !h.closedFlag.Load() {
			h.handleFrame(f)
		}
		return
	}
	select {
	case h.inbox <- f:
	case <-h.stop:
	default:
		// queue full: silently dropped, as radio congestion would.
	}
}

func (h *Host) dispatch() {
	defer close(h.done)
	for {
		select {
		case <-h.stop:
			return
		case f := <-h.inbox:
			h.handleFrame(f)
		}
	}
}

func (h *Host) handleFrame(f Frame) {
	if f.Kind == KindData {
		dg, err := unmarshalDatagram(f.Payload)
		if err != nil {
			return
		}
		// In inline mode we are already on this host's delivery shard, so a
		// local delivery may run directly without re-scheduling.
		h.routeDatagramEx(dg, false, h.inline)
		return
	}
	h.mu.RLock()
	fn := h.handlers[f.Kind]
	h.mu.RUnlock()
	if fn != nil {
		fn(f)
	}
}

// SendDatagram originates a datagram from this host. Datagrams to the host
// itself are delivered via loopback without touching the medium — exactly
// how the paper's VoIP application reaches its outbound proxy on localhost.
func (h *Host) SendDatagram(dg *Datagram) error {
	if dg.SrcNode == "" {
		dg.SrcNode = h.id
	}
	if dg.TTL == 0 {
		dg.TTL = DefaultTTL
	}
	h.mu.RLock()
	closed := h.closed
	h.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	h.stats.sent.Add(1)
	return h.routeDatagram(dg, true)
}

// routeDatagram delivers locally, forwards toward the next hop, or queues
// pending route discovery. origin marks datagrams created on this host.
func (h *Host) routeDatagram(dg *Datagram, origin bool) error {
	return h.routeDatagramEx(dg, origin, false)
}

// routeDatagramEx is routeDatagram with the shard-affinity bit: onShard is
// true when the caller is already running on this host's delivery shard. In
// event-loop mode local deliveries from foreign goroutines (loopback
// SendDatagram, gateway InjectDatagram) are bounced through the shard
// scheduler at zero delay, which serializes them with medium deliveries and
// breaks the reentrant nesting a phone talking to its own host's proxy would
// otherwise build up.
func (h *Host) routeDatagramEx(dg *Datagram, origin, onShard bool) error {
	if dg.DstNode == h.id {
		if h.inline && !onShard {
			h.scheduleLocal(dg)
			return nil
		}
		h.deliverLocal(dg)
		return nil
	}
	if !origin {
		if dg.TTL <= 1 {
			h.stats.ttlExpired.Add(1)
			return nil
		}
		dg.TTL--
	}
	h.mu.RLock()
	rp := h.rp
	defFn := h.defaultFn
	h.mu.RUnlock()

	if rp != nil {
		if next, ok := rp.NextHop(dg.DstNode); ok {
			return h.transmit(dg, next, !origin)
		}
	}
	// No route. Try the default handler (gateway tunnel) first: it owns
	// destinations outside the MANET.
	if defFn != nil && defFn(dg) {
		return nil
	}
	if rp == nil {
		h.stats.noRoute.Add(1)
		return ErrNoRoute
	}
	// Queue and trigger route discovery (reactive protocols).
	h.mu.Lock()
	q := h.pending[dg.DstNode]
	first := len(q) == 0
	if len(q) >= maxPending {
		h.mu.Unlock()
		h.stats.noRoute.Add(1)
		return ErrNoRoute
	}
	h.pending[dg.DstNode] = append(q, dg)
	h.mu.Unlock()
	if first {
		dst := dg.DstNode
		rp.RequestRoute(dst, func(found bool) { h.flushPending(dst, found) })
	}
	return nil
}

func (h *Host) flushPending(dst NodeID, found bool) {
	h.mu.Lock()
	q := h.pending[dst]
	delete(h.pending, dst)
	rp := h.rp
	defFn := h.defaultFn
	h.mu.Unlock()
	if !found {
		h.stats.noRoute.Add(int64(len(q)))
	}
	if !found {
		// Last chance: hand queued datagrams to the default handler so
		// that Internet destinations still leave via the gateway.
		if defFn != nil {
			for _, dg := range q {
				defFn(dg)
			}
		}
		return
	}
	for _, dg := range q {
		if next, ok := rp.NextHop(dst); ok {
			_ = h.transmit(dg, next, false)
		}
	}
}

func (h *Host) transmit(dg *Datagram, nextHop NodeID, forwarded bool) error {
	if forwarded {
		h.stats.forwarded.Add(1)
	}
	payload, err := marshalDatagram(dg)
	if err != nil {
		return err
	}
	return h.net.send(Frame{Src: h.id, Dst: nextHop, Kind: KindData, Payload: payload})
}

// InjectDatagram delivers dg as if it had arrived from the network; gateway
// tunnel endpoints use this to hand decapsulated traffic to the local stack.
func (h *Host) InjectDatagram(dg *Datagram) {
	h.routeDatagram(dg, false)
}

// scheduleLocal hands a loopback datagram to this host's delivery shard with
// an immediate deadline (event-loop mode only).
func (h *Host) scheduleLocal(dg *Datagram) {
	d := deliveryPool.Get().(*delivery)
	d.due = h.net.cfg.Clock.Now()
	d.dg = dg
	d.dgHost = h
	h.net.schedOf(h.id).schedule(d)
}

func (h *Host) deliverLocal(dg *Datagram) {
	h.mu.RLock()
	sink := h.sink
	c := h.ports[dg.DstPort]
	h.mu.RUnlock()
	// A port bound on this host always wins; the promiscuous sink catches
	// traffic for everything else. Gateways rely on this split: their
	// Internet presence forwards arbitrary ports into the MANET while the
	// trunk listener keeps receiving inter-gateway trunk frames locally.
	if c != nil {
		h.stats.received.Add(1)
		if fn := c.handler.Load(); fn != nil {
			c.handleMu.Lock()
			(*fn)(dg)
			c.handleMu.Unlock()
			return
		}
		select {
		case c.in <- dg:
		default:
			h.stats.portDrops.Add(1)
		}
		return
	}
	if sink == nil {
		return
	}
	h.stats.received.Add(1)
	sink(dg)
}

// Listen binds a UDP-like port. Port 0 picks an ephemeral port.
func (h *Host) Listen(port uint16) (*Conn, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if port == 0 {
		for range 65535 {
			h.nextPort++
			if h.nextPort < 32768 {
				h.nextPort = 32768
			}
			if _, used := h.ports[h.nextPort]; !used {
				port = h.nextPort
				break
			}
		}
		if port == 0 {
			return nil, ErrPortInUse
		}
	} else if _, used := h.ports[port]; used {
		return nil, ErrPortInUse
	}
	c := &Conn{
		host: h,
		port: port,
		in:   make(chan *Datagram, 256),
		stop: make(chan struct{}),
	}
	h.ports[port] = c
	return c, nil
}

// Close shuts the host down, closing all its ports.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.closedFlag.Store(true)
	conns := make([]*Conn, 0, len(h.ports))
	for _, c := range h.ports {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	close(h.stop)
	<-h.done
}

// Conn is a bound UDP-like port on a Host.
type Conn struct {
	host *Host
	port uint16
	in   chan *Datagram

	// handler, when set via Handle, receives datagrams directly on the
	// delivery path instead of through the in channel — the event-loop
	// replacement for a per-component Recv goroutine. handleMu serializes
	// invocations (a no-contention formality in event-loop mode, where one
	// shard owns all of a host's deliveries).
	handler  atomic.Pointer[func(*Datagram)]
	handleMu sync.Mutex

	closeOnce sync.Once
	stop      chan struct{}
}

// Handle switches the connection to callback delivery: fn is invoked for
// every arriving datagram, serialized per connection, and Recv/TryRecv stop
// seeing traffic. Components use this in event-loop mode instead of spawning
// a Recv loop goroutine. fn must not block; it may send. A datagram already
// in flight when Close is called may still be delivered, so fn must tolerate
// invocation after shutdown (the same contract component recv loops already
// had). Pass nil to revert to channel delivery.
func (c *Conn) Handle(fn func(*Datagram)) {
	if fn == nil {
		c.handler.Store(nil)
		return
	}
	c.handler.Store(&fn)
}

// LocalPort returns the bound port number.
func (c *Conn) LocalPort() uint16 { return c.port }

// Host returns the owning host.
func (c *Conn) Host() *Host { return c.host }

// WriteTo sends data to the given node and port, stamped with this port as
// the source.
func (c *Conn) WriteTo(data []byte, dst NodeID, dstPort uint16) error {
	dg := &Datagram{
		SrcNode: c.host.id,
		DstNode: dst,
		SrcPort: c.port,
		DstPort: dstPort,
		Data:    append([]byte(nil), data...),
	}
	return c.host.SendDatagram(dg)
}

// Recv blocks until a datagram arrives or the connection closes; ok is false
// once closed and drained.
func (c *Conn) Recv() (*Datagram, bool) {
	select {
	case dg := <-c.in:
		return dg, true
	case <-c.stop:
		// Drain anything already queued before reporting closed.
		select {
		case dg := <-c.in:
			return dg, true
		default:
			return nil, false
		}
	}
}

// TryRecv returns a queued datagram without blocking.
func (c *Conn) TryRecv() (*Datagram, bool) {
	select {
	case dg := <-c.in:
		return dg, true
	default:
		return nil, false
	}
}

// Close unbinds the port.
func (c *Conn) Close() {
	c.closeOnce.Do(func() {
		c.host.mu.Lock()
		delete(c.host.ports, c.port)
		c.host.mu.Unlock()
		close(c.stop)
	})
}
