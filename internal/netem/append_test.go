package netem

import (
	"bytes"
	"testing"
)

func TestAppendDatagramMatchesMarshal(t *testing.T) {
	d := &Datagram{
		SrcNode: "10.1.0.3",
		DstNode: "10.2.0.9",
		SrcPort: 7070,
		DstPort: 8080,
		TTL:     17,
		Data:    []byte("trunked media payload"),
	}
	want, err := MarshalDatagram(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AppendDatagram([]byte("prefix"), d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("prefix")) {
		t.Fatal("AppendDatagram clobbered the prefix")
	}
	if !bytes.Equal(got[len("prefix"):], want) {
		t.Fatal("AppendDatagram wire bytes differ from MarshalDatagram")
	}
}

func TestUnmarshalDatagramIntoRoundTrip(t *testing.T) {
	d := &Datagram{
		SrcNode: "10.1.0.3",
		DstNode: "voicehoc.ch",
		SrcPort: 5060,
		DstPort: 5060,
		TTL:     32,
		Data:    []byte("REGISTER"),
	}
	wire, err := MarshalDatagram(d)
	if err != nil {
		t.Fatal(err)
	}
	var got Datagram
	if err := UnmarshalDatagramInto(&got, wire); err != nil {
		t.Fatal(err)
	}
	if got.SrcNode != d.SrcNode || got.DstNode != d.DstNode ||
		got.SrcPort != d.SrcPort || got.DstPort != d.DstPort ||
		got.TTL != d.TTL || !bytes.Equal(got.Data, d.Data) {
		t.Fatalf("round trip = %+v, want %+v", got, *d)
	}
	if err := UnmarshalDatagramInto(&got, wire[:4]); err == nil {
		t.Fatal("truncated datagram decoded without error")
	}
}

// UnmarshalDatagramInto exists for per-packet receive loops; it must not
// allocate.
func TestUnmarshalDatagramIntoAllocFree(t *testing.T) {
	wire, err := MarshalDatagram(&Datagram{
		SrcNode: "10.1.0.3",
		DstNode: "10.2.0.9",
		SrcPort: 7070,
		DstPort: 8080,
		TTL:     17,
		Data:    bytes.Repeat([]byte{0xab}, 160),
	})
	if err != nil {
		t.Fatal(err)
	}
	var d Datagram
	if allocs := testing.AllocsPerRun(200, func() {
		if err := UnmarshalDatagramInto(&d, wire); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("UnmarshalDatagramInto allocates %.1f times, want 0", allocs)
	}
}
