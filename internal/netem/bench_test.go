package netem

import (
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkMediumBroadcast64 is the broadcast-storm stress case: an 8x8 grid
// (64 nodes, dense neighbourhoods) where every iteration broadcasts a routing
// frame from a rotating sender. It exercises the medium's receiver-set
// computation and delivery scheduling — the per-frame hot path under the
// paper's scaling experiments.
func BenchmarkMediumBroadcast64(b *testing.B) {
	n := NewNetwork(Config{BaseDelay: 10 * time.Microsecond})
	defer n.Close()
	hosts, err := Grid(n, 8, 8, 70, "g")
	if err != nil {
		b.Fatal(err)
	}
	var delivered atomic.Int64
	for _, h := range hosts {
		if err := h.HandleFrames(KindRouting, func(Frame) { delivered.Add(1) }); err != nil {
			b.Fatal(err)
		}
	}
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for b.Loop() {
		if err := hosts[i%len(hosts)].SendFrame(Broadcast, KindRouting, payload); err != nil {
			b.Fatal(err)
		}
		i++
	}
	b.StopTimer()
	st := n.Stats()
	b.ReportMetric(float64(st.Deliveries)/float64(b.N), "rx/op")
}

// BenchmarkMediumUnicast measures the single-receiver fast path: one frame
// per iteration between two in-range nodes, delivered through the scheduler.
func BenchmarkMediumUnicast(b *testing.B) {
	n := NewNetwork(Config{BaseDelay: 10 * time.Microsecond})
	defer n.Close()
	ha, err := n.AddHost("a", Position{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := n.AddHost("b", Position{X: 10}); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	b.ReportAllocs()
	for b.Loop() {
		if err := ha.SendFrame("b", KindRouting, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNeighbors measures the public neighbourhood query on the 64-node
// grid (routing protocols call this on every hello interval).
func BenchmarkNeighbors(b *testing.B) {
	n := NewNetwork(Config{BaseDelay: 10 * time.Microsecond})
	defer n.Close()
	if _, err := Grid(n, 8, 8, 70, "g"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for b.Loop() {
		if got := n.Neighbors("g.28"); len(got) == 0 {
			b.Fatal("no neighbours")
		}
	}
}
