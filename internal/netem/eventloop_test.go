package netem

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatal(msg)
}

// TestEventLoopUnicastAndHandle drives a two-hop unicast through the inline
// core with callback delivery on the receiving conn.
func TestEventLoopUnicastAndHandle(t *testing.T) {
	n := NewNetwork(Config{EventLoop: true, Range: 100, BaseDelay: time.Millisecond})
	defer n.Close()
	a, err := n.AddHost("a", Position{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddHost("b", Position{50, 0})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := a.Listen(100)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Listen(200)
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Int64
	cb.Handle(func(dg *Datagram) {
		if string(dg.Data) == "ping" && dg.SrcNode == "a" {
			got.Add(1)
		}
	})
	a.SetRouteProvider(staticRoutes{"b": "b"})
	b.SetRouteProvider(staticRoutes{"a": "a"})
	if err := ca.WriteTo([]byte("ping"), "b", 200); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return got.Load() == 1 }, "unicast datagram never reached the Handle callback")
}

// TestEventLoopLoopback pins that same-host datagrams still arrive in
// event-loop mode, where they ride the shard scheduler instead of the
// caller's stack.
func TestEventLoopLoopback(t *testing.T) {
	n := NewNetwork(Config{EventLoop: true, Range: 100, BaseDelay: time.Millisecond})
	defer n.Close()
	a, err := n.AddHost("a", Position{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := a.Listen(100)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := a.Listen(200)
	if err != nil {
		t.Fatal(err)
	}
	// The reply path nests: c2's handler answers back to c1's port on the
	// same host. Under inline delivery this must not deadlock or recurse.
	var answered atomic.Int64
	c2.Handle(func(dg *Datagram) {
		_ = c2.WriteTo([]byte("pong"), "a", 100)
	})
	c1.Handle(func(dg *Datagram) {
		if string(dg.Data) == "pong" {
			answered.Add(1)
		}
	})
	if err := c1.WriteTo([]byte("ping"), "a", 200); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return answered.Load() == 1 }, "loopback request/reply never completed")
}

// TestEventLoopGoroutinesPerHost pins the core claim: adding hosts in
// event-loop mode adds no goroutines (legacy mode pays one dispatch
// goroutine per host).
func TestEventLoopGoroutinesPerHost(t *testing.T) {
	n := NewNetwork(Config{EventLoop: true, Range: 10})
	defer n.Close()
	runtime.Gosched()
	before := runtime.NumGoroutine()
	for i := 0; i < 64; i++ {
		id := NodeID(rune('A' + i%26))
		if _, err := n.AddHost(NodeID(string(id)+string(rune('a'+i/26))), Position{float64(i) * 100, 0}); err != nil {
			t.Fatal(err)
		}
	}
	// Settle: no goroutines should have been created at all.
	time.Sleep(10 * time.Millisecond)
	after := runtime.NumGoroutine()
	if after > before {
		t.Fatalf("adding 64 event-loop hosts grew goroutines %d -> %d; want no growth", before, after)
	}
}
