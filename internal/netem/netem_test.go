package netem

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// staticRoutes is a trivial RouteProvider backed by a fixed next-hop map.
type staticRoutes map[NodeID]NodeID

func (s staticRoutes) NextHop(dst NodeID) (NodeID, bool) {
	nh, ok := s[dst]
	return nh, ok
}

func (s staticRoutes) RequestRoute(dst NodeID, done func(bool)) {
	_, ok := s[dst]
	done(ok)
}

func fastConfig() Config {
	return Config{BaseDelay: 50 * time.Microsecond, BytesPerSecond: -1}
}

// fastConfig's BytesPerSecond of -1 would divide; guard in test helper:
func newFastNetwork(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork(Config{BaseDelay: 50 * time.Microsecond})
	t.Cleanup(n.Close)
	return n
}

func waitRecv(t *testing.T, c *Conn) *Datagram {
	t.Helper()
	type result struct {
		dg *Datagram
		ok bool
	}
	ch := make(chan result, 1)
	go func() {
		dg, ok := c.Recv()
		ch <- result{dg, ok}
	}()
	select {
	case r := <-ch:
		if !r.ok {
			t.Fatal("connection closed before receive")
		}
		return r.dg
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for datagram")
		return nil
	}
}

func TestDatagramRoundTrip(t *testing.T) {
	in := &Datagram{
		SrcNode: "10.0.0.1", DstNode: "10.0.0.2",
		SrcPort: 5060, DstPort: 427, TTL: 17,
		Data: []byte("REGISTER sip:alice@voicehoc.ch SIP/2.0"),
	}
	b, err := marshalDatagram(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := unmarshalDatagram(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestDatagramRoundTripProperty(t *testing.T) {
	f := func(src, dst string, sp, dp uint16, ttl uint8, data []byte) bool {
		if len(src) > 255 || len(dst) > 255 {
			return true // out of the encodable domain
		}
		in := &Datagram{
			SrcNode: NodeID(src), DstNode: NodeID(dst),
			SrcPort: sp, DstPort: dp, TTL: ttl, Data: data,
		}
		b, err := marshalDatagram(in)
		if err != nil {
			return false
		}
		out, err := unmarshalDatagram(b)
		if err != nil {
			return false
		}
		if len(in.Data) == 0 && len(out.Data) == 0 {
			out.Data, in.Data = nil, nil
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalDatagramRejectsTruncation(t *testing.T) {
	full, err := marshalDatagram(&Datagram{SrcNode: "a", DstNode: "b", Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full)-1; cut++ {
		if _, err := unmarshalDatagram(full[:cut]); err == nil && cut < 9 {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
	if _, err := unmarshalDatagram(nil); err == nil {
		t.Fatal("nil input accepted")
	}
}

func TestNeighborsByRange(t *testing.T) {
	n := newFastNetwork(t)
	mustAdd := func(id NodeID, p Position) {
		t.Helper()
		if _, err := n.AddHost(id, p); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("a", Position{X: 0})
	mustAdd("b", Position{X: 90})
	mustAdd("c", Position{X: 180})
	if got, want := n.Neighbors("a"), []NodeID{"b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Neighbors(a) = %v, want %v", got, want)
	}
	if got, want := n.Neighbors("b"), []NodeID{"a", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Neighbors(b) = %v, want %v", got, want)
	}
	// Moving c away breaks the b-c link.
	n.SetPosition("c", Position{X: 500})
	if got := n.Neighbors("b"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Neighbors(b) after move = %v", got)
	}
}

func TestLinkOverride(t *testing.T) {
	n := newFastNetwork(t)
	if _, err := n.AddHost("a", Position{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHost("b", Position{X: 1000}); err != nil {
		t.Fatal(err)
	}
	if len(n.Neighbors("a")) != 0 {
		t.Fatal("distant nodes should not be neighbours")
	}
	n.SetLink("a", "b", true)
	if got := n.Neighbors("a"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("forced link missing: %v", got)
	}
	n.ClearLink("a", "b")
	if len(n.Neighbors("a")) != 0 {
		t.Fatal("ClearLink did not restore distance rule")
	}
}

func TestUnicastWithinRange(t *testing.T) {
	n := newFastNetwork(t)
	ha, _ := n.AddHost("a", Position{X: 0})
	hb, _ := n.AddHost("b", Position{X: 50})
	ha.SetRouteProvider(staticRoutes{"b": "b"})
	ca, err := ha.Listen(1000)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := hb.Listen(2000)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	defer cb.Close()
	if err := ca.WriteTo([]byte("hello"), "b", 2000); err != nil {
		t.Fatal(err)
	}
	dg := waitRecv(t, cb)
	if string(dg.Data) != "hello" || dg.SrcNode != "a" || dg.SrcPort != 1000 {
		t.Fatalf("bad datagram: %+v", dg)
	}
}

func TestMultihopForwarding(t *testing.T) {
	n := newFastNetwork(t)
	hosts, err := Chain(n, 4, 90, "10.0.0")
	if err != nil {
		t.Fatal(err)
	}
	// Static chain routes: forward right toward node 4, left toward 1.
	for i, h := range hosts {
		routes := staticRoutes{}
		for j := range hosts {
			if j == i {
				continue
			}
			if j > i {
				routes[hosts[i+1].ID()] = hosts[i+1].ID()
				routes[hosts[j].ID()] = hosts[i+1].ID()
			} else {
				routes[hosts[j].ID()] = hosts[i-1].ID()
			}
		}
		h.SetRouteProvider(routes)
	}
	src, dst := hosts[0], hosts[3]
	cs, _ := src.Listen(7)
	cd, _ := dst.Listen(9)
	defer cs.Close()
	defer cd.Close()
	if err := cs.WriteTo([]byte("multihop"), dst.ID(), 9); err != nil {
		t.Fatal(err)
	}
	dg := waitRecv(t, cd)
	if string(dg.Data) != "multihop" {
		t.Fatalf("payload = %q", dg.Data)
	}
	if want := uint8(DefaultTTL - 2); dg.TTL != want {
		t.Fatalf("TTL = %d, want %d (two relays)", dg.TTL, want)
	}
	// Relays must have counted forwards.
	if f := hosts[1].Stats().Forwarded + hosts[2].Stats().Forwarded; f != 2 {
		t.Fatalf("forwarded = %d, want 2", f)
	}
}

func TestOutOfRangeNotDelivered(t *testing.T) {
	n := newFastNetwork(t)
	ha, _ := n.AddHost("a", Position{X: 0})
	hb, _ := n.AddHost("b", Position{X: 5000})
	ha.SetRouteProvider(staticRoutes{"b": "b"}) // lies: b is not reachable
	ca, _ := ha.Listen(1)
	cb, _ := hb.Listen(2)
	defer ca.Close()
	defer cb.Close()
	if err := ca.WriteTo([]byte("void"), "b", 2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, ok := cb.TryRecv(); ok {
		t.Fatal("frame crossed an out-of-range link")
	}
}

func TestLoopbackDelivery(t *testing.T) {
	n := newFastNetwork(t)
	h, _ := n.AddHost("a", Position{})
	app, _ := h.Listen(5060)
	defer app.Close()
	cli, _ := h.Listen(0)
	defer cli.Close()
	if err := cli.WriteTo([]byte("REGISTER"), "a", 5060); err != nil {
		t.Fatal(err)
	}
	dg := waitRecv(t, app)
	if string(dg.Data) != "REGISTER" {
		t.Fatalf("payload = %q", dg.Data)
	}
	// Loopback must not touch the radio.
	if fr := n.Stats().TotalFrames(); fr != 0 {
		t.Fatalf("loopback used the medium: %d frames", fr)
	}
}

func TestBroadcastReachesAllNeighbors(t *testing.T) {
	n := newFastNetwork(t)
	center, _ := n.AddHost("c", Position{})
	var got [2]chan Frame
	for i, id := range []NodeID{"n1", "n2"} {
		h, _ := n.AddHost(id, Position{X: float64(10 * (i + 1))})
		ch := make(chan Frame, 1)
		got[i] = ch
		if err := h.HandleFrames(KindRouting, func(f Frame) { ch <- f }); err != nil {
			t.Fatal(err)
		}
	}
	far, _ := n.AddHost("far", Position{X: 9999})
	farCh := make(chan Frame, 1)
	if err := far.HandleFrames(KindRouting, func(f Frame) { farCh <- f }); err != nil {
		t.Fatal(err)
	}
	if err := center.SendFrame(Broadcast, KindRouting, []byte("hello-manet")); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		select {
		case f := <-got[i]:
			if f.Src != "c" || string(f.Payload) != "hello-manet" {
				t.Fatalf("neighbour %d got %+v", i, f)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("neighbour %d missed broadcast", i)
		}
	}
	select {
	case <-farCh:
		t.Fatal("out-of-range node received broadcast")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestLossRateDropsFrames(t *testing.T) {
	n := NewNetwork(Config{BaseDelay: 10 * time.Microsecond, LossRate: 1.0, Seed: 7})
	defer n.Close()
	ha, _ := n.AddHost("a", Position{})
	hb, _ := n.AddHost("b", Position{X: 10})
	ha.SetRouteProvider(staticRoutes{"b": "b"})
	ca, _ := ha.Listen(1)
	cb, _ := hb.Listen(2)
	if err := ca.WriteTo([]byte("x"), "b", 2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, ok := cb.TryRecv(); ok {
		t.Fatal("frame survived 100% loss")
	}
	if n.Stats().Lost != 1 {
		t.Fatalf("Lost = %d, want 1", n.Stats().Lost)
	}
}

func TestTTLExpiry(t *testing.T) {
	n := newFastNetwork(t)
	hosts, err := Chain(n, 3, 90, "n")
	if err != nil {
		t.Fatal(err)
	}
	hosts[0].SetRouteProvider(staticRoutes{"n.3": "n.2", "n.2": "n.2"})
	hosts[1].SetRouteProvider(staticRoutes{"n.3": "n.3"})
	cd, _ := hosts[2].Listen(5)
	defer cd.Close()
	dg := &Datagram{DstNode: "n.3", DstPort: 5, TTL: 1, Data: []byte("dying")}
	if err := hosts[0].SendDatagram(dg); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, ok := cd.TryRecv(); ok {
		t.Fatal("TTL=1 datagram crossed a relay")
	}
	if hosts[1].Stats().TTLExpired != 1 {
		t.Fatalf("TTLExpired = %d, want 1", hosts[1].Stats().TTLExpired)
	}
}

func TestNoRouteReported(t *testing.T) {
	n := newFastNetwork(t)
	h, _ := n.AddHost("a", Position{})
	c, _ := h.Listen(1)
	defer c.Close()
	err := c.WriteTo([]byte("x"), "nowhere", 1)
	if err != ErrNoRoute {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
	if h.Stats().NoRoute != 1 {
		t.Fatalf("NoRoute = %d, want 1", h.Stats().NoRoute)
	}
}

func TestPendingFlushOnRouteFound(t *testing.T) {
	n := newFastNetwork(t)
	ha, _ := n.AddHost("a", Position{X: 0})
	hb, _ := n.AddHost("b", Position{X: 50})
	// A provider that discovers the route only when asked.
	rp := &lazyProvider{routes: staticRoutes{}}
	rp.onRequest = func(dst NodeID) {
		rp.muAdd(dst, dst)
	}
	ha.SetRouteProvider(rp)
	ca, _ := ha.Listen(1)
	cb, _ := hb.Listen(2)
	defer ca.Close()
	defer cb.Close()
	if err := ca.WriteTo([]byte("deferred"), "b", 2); err != nil {
		t.Fatal(err)
	}
	dg := waitRecv(t, cb)
	if string(dg.Data) != "deferred" {
		t.Fatalf("payload = %q", dg.Data)
	}
}

type lazyProvider struct {
	mu        timedMutex
	routes    staticRoutes
	onRequest func(NodeID)
}

type timedMutex struct{ ch chan struct{} }

func (m *timedMutex) lock() {
	if m.ch == nil {
		m.ch = make(chan struct{}, 1)
	}
	m.ch <- struct{}{}
}
func (m *timedMutex) unlock() { <-m.ch }

func (p *lazyProvider) muAdd(dst, nh NodeID) {
	p.mu.lock()
	p.routes[dst] = nh
	p.mu.unlock()
}

func (p *lazyProvider) NextHop(dst NodeID) (NodeID, bool) {
	p.mu.lock()
	defer p.mu.unlock()
	nh, ok := p.routes[dst]
	return nh, ok
}

func (p *lazyProvider) RequestRoute(dst NodeID, done func(bool)) {
	if p.onRequest != nil {
		p.onRequest(dst)
	}
	done(true)
}

func TestPortLifecycle(t *testing.T) {
	n := newFastNetwork(t)
	h, _ := n.AddHost("a", Position{})
	c1, err := h.Listen(5060)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Listen(5060); err != ErrPortInUse {
		t.Fatalf("double bind err = %v, want ErrPortInUse", err)
	}
	c1.Close()
	c2, err := h.Listen(5060)
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	c2.Close()
	// Ephemeral ports are distinct.
	e1, _ := h.Listen(0)
	e2, _ := h.Listen(0)
	if e1.LocalPort() == e2.LocalPort() {
		t.Fatal("ephemeral ports collided")
	}
	e1.Close()
	e2.Close()
}

func TestStatsByKind(t *testing.T) {
	n := newFastNetwork(t)
	ha, _ := n.AddHost("a", Position{})
	if _, err := n.AddHost("b", Position{X: 10}); err != nil {
		t.Fatal(err)
	}
	if err := ha.SendFrame(Broadcast, KindRouting, []byte("rreq")); err != nil {
		t.Fatal(err)
	}
	ha.SetRouteProvider(staticRoutes{"b": "b"})
	ca, _ := ha.Listen(1)
	defer ca.Close()
	if err := ca.WriteTo([]byte("payload"), "b", 9); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	st := n.Stats()
	if st.RoutingFrames != 1 || st.DataFrames != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.RoutingBytes != 4 {
		t.Fatalf("RoutingBytes = %d", st.RoutingBytes)
	}
	n.ResetStats()
	if n.Stats().TotalFrames() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestRemoveHostStopsTraffic(t *testing.T) {
	n := newFastNetwork(t)
	ha, _ := n.AddHost("a", Position{})
	if _, err := n.AddHost("b", Position{X: 10}); err != nil {
		t.Fatal(err)
	}
	n.RemoveHost("b")
	if got := n.Neighbors("a"); len(got) != 0 {
		t.Fatalf("removed node still a neighbour: %v", got)
	}
	ha.SetRouteProvider(staticRoutes{"b": "b"})
	ca, _ := ha.Listen(1)
	defer ca.Close()
	// Medium silently drops frames toward removed nodes.
	if err := ca.WriteTo([]byte("x"), "b", 1); err != nil {
		t.Fatal(err)
	}
}

func TestMTUEnforced(t *testing.T) {
	n := newFastNetwork(t)
	h, _ := n.AddHost("a", Position{})
	if err := h.SendFrame(Broadcast, KindRouting, make([]byte, MTU+1)); err != ErrFrameTooBig {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
}

func TestGridAndRandomLayout(t *testing.T) {
	n := newFastNetwork(t)
	hosts, err := Grid(n, 3, 4, 80, "g")
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 12 {
		t.Fatalf("grid size = %d", len(hosts))
	}
	// Interior grid node has 2-4 neighbours at spacing 80 < range 100.
	if nb := n.Neighbors("g.6"); len(nb) < 2 {
		t.Fatalf("grid connectivity too sparse: %v", nb)
	}
	n2 := NewNetwork(Config{})
	defer n2.Close()
	hosts2, err := RandomLayout(n2, 10, 300, 300, 42, "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts2) != 10 {
		t.Fatalf("random layout size = %d", len(hosts2))
	}
	// Determinism: same seed, same positions.
	n3 := NewNetwork(Config{})
	defer n3.Close()
	if _, err := RandomLayout(n3, 10, 300, 300, 42, "r"); err != nil {
		t.Fatal(err)
	}
	for _, id := range n2.Nodes() {
		p2, _ := n2.PositionOf(id)
		p3, _ := n3.PositionOf(id)
		if p2 != p3 {
			t.Fatalf("layout not deterministic for %s: %v vs %v", id, p2, p3)
		}
	}
}

func TestWaypointMobility(t *testing.T) {
	n := newFastNetwork(t)
	if _, err := RandomLayout(n, 5, 200, 200, 3, "m"); err != nil {
		t.Fatal(err)
	}
	w := NewWaypoint(n, 200, 200, 1, 2, 9)
	w.Pin("m.1")
	before := make(map[NodeID]Position)
	for _, id := range n.Nodes() {
		before[id], _ = n.PositionOf(id)
	}
	for range 50 {
		w.Step(1)
	}
	pinned, _ := n.PositionOf("m.1")
	if pinned != before["m.1"] {
		t.Fatal("pinned node moved")
	}
	moved := 0
	for _, id := range n.Nodes() {
		if id == "m.1" {
			continue
		}
		now, _ := n.PositionOf(id)
		if now != before[id] {
			moved++
		}
		if now.X < 0 || now.X > 200 || now.Y < 0 || now.Y > 200 {
			t.Fatalf("node %s left the area: %v", id, now)
		}
	}
	if moved == 0 {
		t.Fatal("no node moved under waypoint mobility")
	}
}

func TestNetworkCloseIdempotent(t *testing.T) {
	n := NewNetwork(fastConfig())
	if _, err := n.AddHost("a", Position{}); err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close()
	if _, err := n.AddHost("b", Position{}); err != ErrClosed {
		t.Fatalf("AddHost after close = %v, want ErrClosed", err)
	}
}
