package netem

import (
	"testing"
	"time"
)

// runSeededStorm drives a fixed traffic pattern over a 16-node grid with
// loss and jitter enabled and returns the medium stats. All sends happen
// from one goroutine, so the RNG draw order is fully determined by the
// traffic sequence and the seed.
func runSeededStorm(t *testing.T, seed int64) Stats {
	t.Helper()
	n := NewNetwork(Config{
		BaseDelay:   20 * time.Microsecond,
		DelayJitter: 2 * time.Millisecond,
		LossRate:    0.25,
		Seed:        seed,
	})
	defer n.Close()
	hosts, err := Grid(n, 4, 4, 80, "d")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 48)
	for round := range 25 {
		for i, h := range hosts {
			if err := h.SendFrame(Broadcast, KindRouting, payload); err != nil {
				t.Fatal(err)
			}
			// A unicast to the next grid node (in range for same-row
			// neighbours; out-of-range pairs draw no loss, also part of
			// the contract).
			dst := hosts[(i+1)%len(hosts)].ID()
			if err := h.SendFrame(dst, KindData, payload[:16]); err != nil {
				t.Fatal(err)
			}
			_ = round
		}
	}
	return n.Stats()
}

// TestSeededLossJitterDeterminism pins the RNG-determinism contract the
// delivery-scheduler rewrite must preserve: the same Config.Seed and the
// same (single-goroutine) traffic sequence yield bit-identical Stats —
// same per-receiver loss draws, same jitter draws, same delivery counts.
func TestSeededLossJitterDeterminism(t *testing.T) {
	a := runSeededStorm(t, 42)
	b := runSeededStorm(t, 42)
	if a != b {
		t.Fatalf("same seed diverged:\n a=%+v\n b=%+v", a, b)
	}
	if a.Lost == 0 {
		t.Fatal("loss model drew no losses; test exercises nothing")
	}
	if a.Deliveries == 0 {
		t.Fatal("no deliveries recorded")
	}
	c := runSeededStorm(t, 43)
	if a.Lost == c.Lost {
		t.Logf("note: seeds 42 and 43 drew equal loss counts (%d); sequence check below still holds", a.Lost)
	}
	if c.TotalFrames() != a.TotalFrames() {
		t.Fatalf("frame counts must not depend on seed: %d vs %d", a.TotalFrames(), c.TotalFrames())
	}
}

// TestBroadcastUsesAdjacencyCache checks the cache is invalidated by
// topology changes: a broadcast after SetPosition must reach the new
// neighbourhood, not the cached one.
func TestBroadcastUsesAdjacencyCache(t *testing.T) {
	n := NewNetwork(Config{BaseDelay: 20 * time.Microsecond})
	defer n.Close()
	ha, err := n.AddHost("a", Position{})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := n.AddHost("b", Position{X: 50})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan Frame, 16)
	if err := hb.HandleFrames(KindRouting, func(f Frame) { got <- f }); err != nil {
		t.Fatal(err)
	}
	if err := ha.SendFrame(Broadcast, KindRouting, []byte("one")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("in-range broadcast not delivered")
	}
	// Move b out of range: the cached neighbourhood must be discarded.
	n.SetPosition("b", Position{X: 5000})
	if err := ha.SendFrame(Broadcast, KindRouting, []byte("two")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-got:
		t.Fatalf("stale adjacency cache delivered %q out of range", f.Payload)
	case <-time.After(20 * time.Millisecond):
	}
	// And back in range again.
	n.SetPosition("b", Position{X: 60})
	if err := ha.SendFrame(Broadcast, KindRouting, []byte("three")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-got:
		if string(f.Payload) != "three" {
			t.Fatalf("unexpected frame %q", f.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("broadcast after cache re-validation not delivered")
	}
}

// TestGridPathMatchesScan cross-checks the spatial-grid neighbourhood
// computation (used above gridThreshold nodes) against the brute-force
// distance scan, including link overrides that defeat the grid's locality
// assumption.
func TestGridPathMatchesScan(t *testing.T) {
	n := NewNetwork(Config{BaseDelay: 20 * time.Microsecond})
	defer n.Close()
	// 64 nodes > gridThreshold: the grid path is live.
	hosts, err := Grid(n, 8, 8, 70, "g")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.hosts) <= gridThreshold {
		t.Fatalf("test needs >%d nodes to exercise the grid", gridThreshold)
	}
	// Force one distant link up and one close link down.
	n.SetLink("g.1", "g.64", true)
	n.SetLink("g.1", "g.2", false)
	scan := func(id NodeID) map[NodeID]bool {
		n.mu.Lock()
		defer n.mu.Unlock()
		out := make(map[NodeID]bool)
		for other := range n.hosts {
			if other != id && n.connectedLocked(id, other) {
				out[other] = true
			}
		}
		return out
	}
	for _, h := range hosts {
		want := scan(h.ID())
		got := n.Neighbors(h.ID())
		if len(got) != len(want) {
			t.Fatalf("%s: grid neighbours %v != scan %v", h.ID(), got, want)
		}
		for _, nb := range got {
			if !want[nb] {
				t.Fatalf("%s: grid produced %s, not in scan set", h.ID(), nb)
			}
		}
	}
}
