package netem

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"siphoc/internal/clock"
)

// Position is a node's 2-D location in metres.
type Position struct {
	X, Y float64
}

// Distance returns the Euclidean distance to q.
func (p Position) Distance(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Config tunes the radio medium. The zero value is completed by defaults in
// NewNetwork.
type Config struct {
	// Range is the unit-disk radio range in metres (default 100).
	Range float64
	// BaseDelay is the fixed per-frame propagation+processing delay
	// (default 500µs). Zero delay delivers synchronously via the inbox.
	BaseDelay time.Duration
	// DelayJitter adds a uniformly random extra delay in [0, DelayJitter)
	// per frame, modelling contention and queueing variance (default 0).
	DelayJitter time.Duration
	// BytesPerSecond models transmission time; 0 disables the size-
	// dependent component (default 6.75 MB/s, ~54 Mbit/s 802.11g).
	BytesPerSecond float64
	// LossRate is the independent per-frame drop probability in [0,1).
	LossRate float64
	// Seed seeds the deterministic RNG used for losses (default 1).
	Seed int64
	// Clock drives delivery delays (default the system clock).
	Clock clock.Clock
	// QueueLen is each node's receive queue length; frames arriving at a
	// full queue are dropped, as on a congested radio (default 1024).
	QueueLen int
}

func (c Config) withDefaults() Config {
	if c.Range == 0 {
		c.Range = 100
	}
	if c.BaseDelay == 0 {
		c.BaseDelay = 500 * time.Microsecond
	}
	if c.BytesPerSecond == 0 {
		c.BytesPerSecond = 54e6 / 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	if c.QueueLen == 0 {
		c.QueueLen = 1024
	}
	return c
}

// Network is the shared simulated radio medium. All methods are safe for
// concurrent use.
type Network struct {
	cfg Config

	mu        sync.Mutex
	rng       *rand.Rand
	hosts     map[NodeID]*Host
	positions map[NodeID]Position
	// linkOverride forces a link up (true) or down (false) regardless of
	// distance; used by partition/failure-injection tests.
	linkOverride map[linkKey]bool
	stats        Stats
	tap          func(Frame)
	udp          *udpUnderlay
	closed       bool

	wg sync.WaitGroup
}

type linkKey struct{ a, b NodeID }

func orderedKey(a, b NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// NewNetwork creates an empty medium.
func NewNetwork(cfg Config) *Network {
	cfg = cfg.withDefaults()
	return &Network{
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		hosts:        make(map[NodeID]*Host),
		positions:    make(map[NodeID]Position),
		linkOverride: make(map[linkKey]bool),
	}
}

// Clock returns the clock driving the medium.
func (n *Network) Clock() clock.Clock { return n.cfg.Clock }

// AddHost creates a node at pos and attaches its stack to the medium.
func (n *Network) AddHost(id NodeID, pos Position) (*Host, error) {
	if id == Broadcast {
		return nil, fmt.Errorf("netem: node id must be non-empty")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.hosts[id]; ok {
		return nil, fmt.Errorf("netem: duplicate node %q", id)
	}
	h := newHost(n, id)
	n.hosts[id] = h
	n.positions[id] = pos
	return h, nil
}

// Host returns the stack for id, or nil.
func (n *Network) Host(id NodeID) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[id]
}

// RemoveHost detaches and closes the node, simulating a crash or power-off.
func (n *Network) RemoveHost(id NodeID) {
	n.mu.Lock()
	h := n.hosts[id]
	delete(n.hosts, id)
	delete(n.positions, id)
	n.mu.Unlock()
	if h != nil {
		h.Close()
	}
}

// SetPosition moves a node, changing its neighbourhood.
func (n *Network) SetPosition(id NodeID, pos Position) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[id]; ok {
		n.positions[id] = pos
	}
}

// PositionOf returns the node's position.
func (n *Network) PositionOf(id NodeID) (Position, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.positions[id]
	return p, ok
}

// SetLink forces the link between a and b up or down irrespective of
// positions. ClearLink restores distance-based connectivity.
func (n *Network) SetLink(a, b NodeID, up bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkOverride[orderedKey(a, b)] = up
}

// ClearLink removes a SetLink override.
func (n *Network) ClearLink(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.linkOverride, orderedKey(a, b))
}

// SetTap installs a packet-analyzer hook invoked synchronously for every
// frame transmitted on the medium — the emulator's Wireshark, used to
// reproduce the paper's Figure 5 capture. The tap must not call back into
// the Network. Pass nil to remove.
func (n *Network) SetTap(fn func(Frame)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tap = fn
}

// SetLossRate changes the per-frame drop probability at runtime.
func (n *Network) SetLossRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.LossRate = p
}

// Neighbors returns the nodes currently in radio range of id, sorted.
func (n *Network) Neighbors(id NodeID) []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.neighborsLocked(id)
}

func (n *Network) neighborsLocked(id NodeID) []NodeID {
	var out []NodeID
	for other := range n.hosts {
		if other == id {
			continue
		}
		if n.connectedLocked(id, other) {
			out = append(out, other)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (n *Network) connectedLocked(a, b NodeID) bool {
	if up, ok := n.linkOverride[orderedKey(a, b)]; ok {
		return up
	}
	pa, oka := n.positions[a]
	pb, okb := n.positions[b]
	return oka && okb && pa.Distance(pb) <= n.cfg.Range
}

// Nodes returns all attached node IDs, sorted.
func (n *Network) Nodes() []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeID, 0, len(n.hosts))
	for id := range n.hosts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// send transmits a frame from the medium's point of view: computes the
// receiver set, applies loss, and schedules delivery after the link delay.
func (n *Network) send(f Frame) error {
	if len(f.Payload) > MTU {
		return ErrFrameTooBig
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if _, ok := n.hosts[f.Src]; !ok {
		n.mu.Unlock()
		return ErrUnknownNode
	}
	var receivers []*Host
	if f.Dst == Broadcast {
		for _, nb := range n.neighborsLocked(f.Src) {
			receivers = append(receivers, n.hosts[nb])
		}
	} else if h, ok := n.hosts[f.Dst]; ok && n.connectedLocked(f.Src, f.Dst) {
		receivers = append(receivers, h)
	}
	n.stats.record(f, len(receivers))
	tap := n.tap
	delay := n.cfg.BaseDelay
	if n.cfg.BytesPerSecond > 0 {
		delay += time.Duration(float64(len(f.Payload)) / n.cfg.BytesPerSecond * float64(time.Second))
	}
	if n.cfg.DelayJitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.cfg.DelayJitter)))
	}
	if delay < 0 {
		delay = 0 // UDP underlay: the real network provides latency
	}
	// Independent loss draw per receiver, under the lock for a
	// deterministic RNG sequence.
	kept := receivers[:0]
	for _, h := range receivers {
		if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
			n.stats.recordLoss()
			continue
		}
		kept = append(kept, h)
	}
	clk := n.cfg.Clock
	if len(kept) > 0 && !n.closed {
		n.wg.Add(1)
		go func(receivers []*Host, f Frame) {
			defer n.wg.Done()
			if delay > 0 {
				clk.Sleep(delay)
			}
			for _, h := range receivers {
				h.enqueue(f)
			}
		}(append([]*Host(nil), kept...), f)
	}
	udp := n.udp
	n.mu.Unlock()
	if udp != nil {
		udp.transmit(f)
	}
	if tap != nil {
		tap(f)
	}
	return nil
}

// Stats returns a snapshot of medium-level counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ResetStats zeroes the counters (used between experiment phases).
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
}

// Close shuts the medium and all hosts down and waits for in-flight
// deliveries to finish.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	hosts := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		hosts = append(hosts, h)
	}
	udp := n.udp
	n.mu.Unlock()
	if udp != nil {
		udp.close()
	}
	for _, h := range hosts {
		h.Close()
	}
	n.wg.Wait()
}

// Stats counts traffic on the medium, split by frame kind — the measurement
// backing experiment E9 (discovery overhead).
type Stats struct {
	RoutingFrames int64
	RoutingBytes  int64
	DataFrames    int64
	DataBytes     int64
	ServiceFrames int64
	ServiceBytes  int64
	// Deliveries counts receiver-side frame copies (a broadcast with k
	// neighbours counts k).
	Deliveries int64
	// Lost counts copies dropped by the loss model.
	Lost int64
}

func (s *Stats) record(f Frame, receivers int) {
	switch f.Kind {
	case KindRouting:
		s.RoutingFrames++
		s.RoutingBytes += int64(len(f.Payload))
	case KindService:
		s.ServiceFrames++
		s.ServiceBytes += int64(len(f.Payload))
	default:
		s.DataFrames++
		s.DataBytes += int64(len(f.Payload))
	}
	s.Deliveries += int64(receivers)
}

func (s *Stats) recordLoss() { s.Lost++ }

// TotalFrames returns the count of all transmitted frames.
func (s Stats) TotalFrames() int64 { return s.RoutingFrames + s.DataFrames + s.ServiceFrames }

// TotalBytes returns the byte count of all transmitted frames.
func (s Stats) TotalBytes() int64 { return s.RoutingBytes + s.DataBytes + s.ServiceBytes }
