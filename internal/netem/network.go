package netem

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/obs"
)

// Position is a node's 2-D location in metres.
type Position struct {
	X, Y float64
}

// Distance returns the Euclidean distance to q.
func (p Position) Distance(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Config tunes the radio medium. The zero value is completed by defaults in
// NewNetwork.
type Config struct {
	// Range is the unit-disk radio range in metres (default 100).
	Range float64
	// BaseDelay is the fixed per-frame propagation+processing delay
	// (default 500µs). Zero delay delivers synchronously via the inbox.
	BaseDelay time.Duration
	// DelayJitter adds a uniformly random extra delay in [0, DelayJitter)
	// per frame, modelling contention and queueing variance (default 0).
	DelayJitter time.Duration
	// BytesPerSecond models transmission time; 0 disables the size-
	// dependent component (default 6.75 MB/s, ~54 Mbit/s 802.11g).
	BytesPerSecond float64
	// LossRate is the independent per-frame drop probability in [0,1).
	LossRate float64
	// Seed seeds the deterministic RNG used for losses (default 1).
	Seed int64
	// Clock drives delivery delays (default the system clock).
	Clock clock.Clock
	// QueueLen is each node's receive queue length; frames arriving at a
	// full queue are dropped, as on a congested radio (default 1024).
	QueueLen int
	// Obs receives medium-level metrics (frame/byte/loss counters). Nil
	// disables observability at zero cost on the send path.
	Obs *obs.Observer
	// EventLoop enables the sharded event-loop core: frames are handled
	// inline on the delivery shard workers instead of per-host dispatch
	// goroutines, and loopback datagrams ride the shard scheduler. Unicast
	// traffic shards by destination and broadcasts by source, so every
	// host's deliveries stay on one shard and per-host handling remains
	// serialized. Steady-state goroutine cost: O(shards), not O(hosts).
	EventLoop bool
	// Shards is the delivery-shard count in EventLoop mode (default
	// GOMAXPROCS, clamped to [1, GOMAXPROCS]). Ignored otherwise.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Range == 0 {
		c.Range = 100
	}
	if c.BaseDelay == 0 {
		c.BaseDelay = 500 * time.Microsecond
	}
	if c.BytesPerSecond == 0 {
		c.BytesPerSecond = 54e6 / 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	if c.QueueLen == 0 {
		c.QueueLen = 1024
	}
	return c
}

// neighborhood is one node's cached receiver set: the nodes in radio range,
// sorted by ID, plus their host stacks in matching order. Entries are
// immutable once published — topology changes replace them wholesale — so
// the broadcast path and the delivery scheduler may share them without
// copying.
type neighborhood struct {
	ids   []NodeID
	hosts []*Host
}

// gridThreshold is the node count above which neighbourhood recomputation
// switches from a full scan to the spatial grid.
const gridThreshold = 48

// gridCell indexes the spatial grid; cells are Range metres on a side, so a
// node's neighbours always lie within the 3x3 block around its own cell.
type gridCell struct{ x, y int32 }

// Network is the shared simulated radio medium. All methods are safe for
// concurrent use.
type Network struct {
	cfg Config

	// mu guards topology: hosts, positions, link overrides, the adjacency
	// cache and its spatial grid. The steady-state send path only ever
	// takes the read side.
	mu        sync.RWMutex
	hosts     map[NodeID]*Host
	positions map[NodeID]Position
	// linkOverride forces a link up (true) or down (false) regardless of
	// distance; used by partition/failure-injection tests.
	linkOverride map[linkKey]bool
	adj          map[NodeID]*neighborhood
	grid         map[gridCell][]NodeID
	// nodesCache is the sorted node-ID snapshot, invalidated on the same
	// topology epoch as adj. Immutable once published.
	nodesCache []NodeID
	closed     bool

	// rngMu serializes loss/jitter draws so a given Seed yields one
	// deterministic sequence, independent of stats or topology locking.
	rngMu sync.Mutex
	rng   *rand.Rand

	lossBits atomic.Uint64 // math.Float64bits of the live loss rate

	// linkQuality holds per-link loss/latency overrides, copy-on-write so
	// the send path reads it with one atomic load. Nil means no overrides
	// anywhere — the steady state — and the send path stays on the global
	// fast path.
	linkQuality atomic.Pointer[map[linkKey]LinkQuality]

	stats counters
	tap   atomic.Pointer[func(Frame)]
	udp   atomic.Pointer[udpUnderlay]
	// scheds are the delivery schedulers. Legacy mode runs exactly one (the
	// PR-1 single min-heap); EventLoop mode shards by node so the workers
	// both deliver and, inline, execute the receivers' frame handling.
	scheds []*scheduler

	// Pre-resolved obs handles; all nil when cfg.Obs is nil, so the send
	// hot path pays a single branch in disabled mode.
	obsFrames *obs.Counter
	obsBytes  *obs.Counter
	obsLost   *obs.Counter
}

type linkKey struct{ a, b NodeID }

func orderedKey(a, b NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// NewNetwork creates an empty medium.
func NewNetwork(cfg Config) *Network {
	cfg = cfg.withDefaults()
	nshards := 1
	if cfg.EventLoop {
		nshards = cfg.Shards
		if maxp := runtime.GOMAXPROCS(0); nshards <= 0 || nshards > maxp {
			nshards = maxp
		}
		if nshards < 1 {
			nshards = 1
		}
	}
	n := &Network{
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		hosts:        make(map[NodeID]*Host),
		positions:    make(map[NodeID]Position),
		linkOverride: make(map[linkKey]bool),
		adj:          make(map[NodeID]*neighborhood),
		scheds:       make([]*scheduler, nshards),
	}
	for i := range n.scheds {
		n.scheds[i] = newScheduler(cfg.Clock)
	}
	n.lossBits.Store(math.Float64bits(cfg.LossRate))
	if cfg.Obs.Enabled() {
		n.obsFrames = cfg.Obs.Counter("netem.frames")
		n.obsBytes = cfg.Obs.Counter("netem.bytes")
		n.obsLost = cfg.Obs.Counter("netem.frames.lost")
	}
	return n
}

// Clock returns the clock driving the medium.
func (n *Network) Clock() clock.Clock { return n.cfg.Clock }

// DeliveryShards returns the number of delivery scheduler goroutines (1 in
// legacy mode). The goroutine regression test pins against this.
func (n *Network) DeliveryShards() int { return len(n.scheds) }

// schedOf returns the delivery shard owning node id: FNV-1a over the ID,
// the same stable hash the clock scheduler and SLP shards use. All unicast
// traffic *to* a host (KindData and with it every Conn/sink delivery) goes
// through the host's own shard, which is what keeps application-level
// datagram handling per-host serial in inline mode.
func (n *Network) schedOf(id NodeID) *scheduler {
	if len(n.scheds) == 1 {
		return n.scheds[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return n.scheds[h%uint64(len(n.scheds))]
}

// schedForFrame picks the shard for a frame transmission: unicast by
// destination (per-host serialization), broadcast by source (the whole
// fan-out stays one batched delivery object). Broadcast receivers therefore
// handle control frames on the sender's shard, possibly concurrently with
// their own shard — safe because every KindRouting/KindService handler is
// internally locked, exactly as it had to be under per-host dispatch
// goroutines.
func (n *Network) schedForFrame(f Frame) *scheduler {
	if len(n.scheds) == 1 {
		return n.scheds[0]
	}
	if f.Dst != Broadcast {
		return n.schedOf(f.Dst)
	}
	return n.schedOf(f.Src)
}

// AddHost creates a node at pos and attaches its stack to the medium.
func (n *Network) AddHost(id NodeID, pos Position) (*Host, error) {
	if id == Broadcast {
		return nil, fmt.Errorf("netem: node id must be non-empty")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.hosts[id]; ok {
		return nil, fmt.Errorf("netem: duplicate node %q", id)
	}
	h := newHost(n, id)
	n.hosts[id] = h
	n.positions[id] = pos
	n.invalidateLocked()
	return h, nil
}

// Host returns the stack for id, or nil.
func (n *Network) Host(id NodeID) *Host {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.hosts[id]
}

// RemoveHost detaches and closes the node, simulating a crash or power-off.
func (n *Network) RemoveHost(id NodeID) {
	n.mu.Lock()
	h := n.hosts[id]
	delete(n.hosts, id)
	delete(n.positions, id)
	n.invalidateLocked()
	n.mu.Unlock()
	if h != nil {
		h.Close()
	}
}

// SetPosition moves a node, changing its neighbourhood.
func (n *Network) SetPosition(id NodeID, pos Position) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[id]; ok {
		n.positions[id] = pos
		n.invalidateLocked()
	}
}

// PositionOf returns the node's position.
func (n *Network) PositionOf(id NodeID) (Position, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	p, ok := n.positions[id]
	return p, ok
}

// SetLink forces the link between a and b up or down irrespective of
// positions. ClearLink restores distance-based connectivity.
func (n *Network) SetLink(a, b NodeID, up bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkOverride[orderedKey(a, b)] = up
	n.invalidateLocked()
}

// ClearLink removes a SetLink override.
func (n *Network) ClearLink(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.linkOverride, orderedKey(a, b))
	n.invalidateLocked()
}

// SetTap installs a packet-analyzer hook invoked synchronously for every
// frame transmitted on the medium — the emulator's Wireshark, used to
// reproduce the paper's Figure 5 capture. The tap must not call back into
// the Network. Pass nil to remove.
func (n *Network) SetTap(fn func(Frame)) {
	if fn == nil {
		n.tap.Store(nil)
		return
	}
	n.tap.Store(&fn)
}

// SetLossRate changes the per-frame drop probability at runtime.
func (n *Network) SetLossRate(p float64) {
	n.lossBits.Store(math.Float64bits(p))
}

// LinkQuality overrides the medium's behaviour on one specific link,
// modelling a degraded radio path (interference, marginal range) without
// touching the global knobs.
type LinkQuality struct {
	// Loss replaces the global LossRate for frames crossing the link, in
	// [0,1). Zero keeps the global rate.
	Loss float64
	// ExtraDelay is added to the propagation delay of frames crossing the
	// link.
	ExtraDelay time.Duration
}

// SetLinkQuality installs a per-link loss/latency override between a and b
// (both directions). The override does not change connectivity — use SetLink
// for cuts.
func (n *Network) SetLinkQuality(a, b NodeID, q LinkQuality) {
	n.mu.Lock()
	defer n.mu.Unlock()
	next := make(map[linkKey]LinkQuality)
	if cur := n.linkQuality.Load(); cur != nil {
		for k, v := range *cur {
			next[k] = v
		}
	}
	next[orderedKey(a, b)] = q
	n.linkQuality.Store(&next)
}

// ClearLinkQuality removes a SetLinkQuality override.
func (n *Network) ClearLinkQuality(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	cur := n.linkQuality.Load()
	if cur == nil {
		return
	}
	next := make(map[linkKey]LinkQuality, len(*cur))
	for k, v := range *cur {
		next[k] = v
	}
	delete(next, orderedKey(a, b))
	if len(next) == 0 {
		n.linkQuality.Store(nil)
		return
	}
	n.linkQuality.Store(&next)
}

// qualityFor returns the effective loss rate and extra delay for one link
// under the override map m.
func qualityFor(m *map[linkKey]LinkQuality, a, b NodeID, global float64) (rate float64, extra time.Duration) {
	q, ok := (*m)[orderedKey(a, b)]
	if !ok {
		return global, 0
	}
	rate = global
	if q.Loss > 0 {
		rate = q.Loss
	}
	return rate, q.ExtraDelay
}

func (n *Network) lossRate() float64 {
	return math.Float64frombits(n.lossBits.Load())
}

// invalidateLocked bumps the topology epoch: every cached neighbourhood, the
// spatial grid and the node-list snapshot are discarded and recomputed lazily
// on next use.
func (n *Network) invalidateLocked() {
	clear(n.adj)
	n.grid = nil
	n.nodesCache = nil
}

// Neighbors returns the nodes currently in radio range of id, sorted. The
// slice is a shared immutable snapshot — it is replaced, never mutated, on
// topology changes — so callers must not modify it.
func (n *Network) Neighbors(id NodeID) []NodeID {
	nb := n.neighborhoodOf(id)
	if len(nb.ids) == 0 {
		return nil
	}
	return nb.ids
}

// neighborhoodOf returns the cached receiver set for id, computing it on a
// topology-epoch miss.
func (n *Network) neighborhoodOf(id NodeID) *neighborhood {
	n.mu.RLock()
	nb := n.adj[id]
	n.mu.RUnlock()
	if nb != nil {
		return nb
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if nb = n.adj[id]; nb != nil {
		return nb
	}
	nb = n.computeNeighborhoodLocked(id)
	n.adj[id] = nb
	return nb
}

func (n *Network) computeNeighborhoodLocked(id NodeID) *neighborhood {
	nb := &neighborhood{}
	if len(n.hosts) > gridThreshold {
		n.gridNeighborsLocked(id, nb)
	} else {
		for other := range n.hosts {
			if other != id && n.connectedLocked(id, other) {
				nb.ids = append(nb.ids, other)
			}
		}
	}
	sort.Slice(nb.ids, func(i, j int) bool { return nb.ids[i] < nb.ids[j] })
	nb.hosts = make([]*Host, len(nb.ids))
	for i, other := range nb.ids {
		nb.hosts[i] = n.hosts[other]
	}
	return nb
}

// gridNeighborsLocked collects id's neighbours via the spatial grid: only
// the 3x3 cell block around id can hold in-range nodes, then link overrides
// are applied (down-overrides inside the block are rejected by
// connectedLocked; up-overrides may add nodes from anywhere).
func (n *Network) gridNeighborsLocked(id NodeID, nb *neighborhood) {
	if n.grid == nil {
		n.grid = make(map[gridCell][]NodeID, len(n.positions))
		for other, p := range n.positions {
			c := n.cellOf(p)
			n.grid[c] = append(n.grid[c], other)
		}
	}
	pos, ok := n.positions[id]
	if ok {
		c := n.cellOf(pos)
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for _, other := range n.grid[gridCell{c.x + dx, c.y + dy}] {
					if other != id && n.connectedLocked(id, other) {
						nb.ids = append(nb.ids, other)
					}
				}
			}
		}
	}
	for k, up := range n.linkOverride {
		if !up {
			continue
		}
		other := NodeID("")
		switch id {
		case k.a:
			other = k.b
		case k.b:
			other = k.a
		default:
			continue
		}
		if _, exists := n.hosts[other]; !exists {
			continue
		}
		dup := false
		for _, have := range nb.ids {
			if have == other {
				dup = true
				break
			}
		}
		if !dup {
			nb.ids = append(nb.ids, other)
		}
	}
}

func (n *Network) cellOf(p Position) gridCell {
	return gridCell{int32(math.Floor(p.X / n.cfg.Range)), int32(math.Floor(p.Y / n.cfg.Range))}
}

func (n *Network) connectedLocked(a, b NodeID) bool {
	if up, ok := n.linkOverride[orderedKey(a, b)]; ok {
		return up
	}
	pa, oka := n.positions[a]
	pb, okb := n.positions[b]
	return oka && okb && pa.Distance(pb) <= n.cfg.Range
}

// Nodes returns all attached node IDs, sorted. The slice is a shared
// immutable snapshot cached on the topology epoch (the same invalidation as
// the adjacency cache), so callers must not modify it.
func (n *Network) Nodes() []NodeID {
	n.mu.RLock()
	cached := n.nodesCache
	n.mu.RUnlock()
	if cached != nil {
		return cached
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.nodesCache != nil {
		return n.nodesCache
	}
	out := make([]NodeID, 0, len(n.hosts))
	for id := range n.hosts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n.nodesCache = out
	return out
}

// send transmits a frame from the medium's point of view: computes the
// receiver set (a cached map lookup in steady state), applies loss, and
// hands the frame to the delivery scheduler with its deadline.
func (n *Network) send(f Frame) error {
	if len(f.Payload) > MTU {
		return ErrFrameTooBig
	}
	var one *Host
	var many []*Host
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return ErrClosed
	}
	if _, ok := n.hosts[f.Src]; !ok {
		n.mu.RUnlock()
		return ErrUnknownNode
	}
	if f.Dst == Broadcast {
		nb := n.adj[f.Src]
		n.mu.RUnlock()
		if nb == nil {
			nb = n.neighborhoodOf(f.Src)
		}
		many = nb.hosts
	} else {
		if h, ok := n.hosts[f.Dst]; ok && n.connectedLocked(f.Src, f.Dst) {
			one = h
		}
		n.mu.RUnlock()
	}
	receivers := len(many)
	if one != nil {
		receivers = 1
	}
	n.stats.recordFrame(f, receivers)
	if n.obsFrames != nil {
		n.obsFrames.Inc()
		n.obsBytes.Add(int64(len(f.Payload)))
	}

	delay := n.cfg.BaseDelay
	if n.cfg.BytesPerSecond > 0 {
		delay += time.Duration(float64(len(f.Payload)) / n.cfg.BytesPerSecond * float64(time.Second))
	}
	// Jitter and loss share one critical section so a given Seed produces
	// one deterministic draw sequence: jitter first, then an independent
	// loss draw per receiver in sorted-ID order. Per-link quality overrides
	// keep that exact order — each receiver's draw just uses its own rate.
	lossRate := n.lossRate()
	lq := n.linkQuality.Load()
	var slow []*Host // broadcast receivers peeled off by per-link ExtraDelay
	var slowExtra []time.Duration
	if n.cfg.DelayJitter > 0 || lossRate > 0 || lq != nil {
		n.rngMu.Lock()
		if n.cfg.DelayJitter > 0 {
			delay += time.Duration(n.rng.Int63n(int64(n.cfg.DelayJitter)))
		}
		switch {
		case lq != nil:
			if one != nil {
				rate, extra := qualityFor(lq, f.Src, f.Dst, lossRate)
				if rate > 0 && n.rng.Float64() < rate {
					one = nil
					n.stats.lost.Add(1)
					n.obsLost.Inc()
				} else {
					delay += extra
				}
			} else if len(many) > 0 {
				kept := make([]*Host, 0, len(many))
				for _, h := range many {
					rate, extra := qualityFor(lq, f.Src, h.ID(), lossRate)
					if rate > 0 && n.rng.Float64() < rate {
						n.stats.lost.Add(1)
						n.obsLost.Inc()
						continue
					}
					if extra > 0 {
						slow = append(slow, h)
						slowExtra = append(slowExtra, extra)
						continue
					}
					kept = append(kept, h)
				}
				many = kept
			}
		case lossRate > 0:
			if one != nil {
				if n.rng.Float64() < lossRate {
					one = nil
					n.stats.lost.Add(1)
					n.obsLost.Inc()
				}
			} else if len(many) > 0 {
				kept := make([]*Host, 0, len(many))
				for _, h := range many {
					if n.rng.Float64() < lossRate {
						n.stats.lost.Add(1)
						n.obsLost.Inc()
						continue
					}
					kept = append(kept, h)
				}
				many = kept
			}
		}
		n.rngMu.Unlock()
	}
	if delay < 0 {
		delay = 0 // UDP underlay: the real network provides latency
	}
	now := n.cfg.Clock.Now()
	if len(slow) == 0 {
		// Steady state: one delivery object covers the whole receiver set
		// (broadcast shares the cached host slice), one heap insertion.
		if one != nil || len(many) > 0 {
			d := deliveryPool.Get().(*delivery)
			d.due = now.Add(delay)
			d.frame = f
			d.one = one
			d.many = many
			n.schedForFrame(f).schedule(d)
		}
	} else {
		// Per-link delay overrides split the fan-out across deadlines;
		// enqueue the whole batch under one heap lock acquisition. Sharded
		// mode schedules each peeled receiver on its own host's shard (the
		// quality-override path is off the scale-benchmark steady state).
		batch := make([]*delivery, 0, 1+len(slow))
		if one != nil || len(many) > 0 {
			d := deliveryPool.Get().(*delivery)
			d.due = now.Add(delay)
			d.frame = f
			d.one = one
			d.many = many
			batch = append(batch, d)
		}
		if len(n.scheds) == 1 {
			for i, h := range slow {
				d := deliveryPool.Get().(*delivery)
				d.due = now.Add(delay + slowExtra[i])
				d.frame = f
				d.one = h
				batch = append(batch, d)
			}
			n.scheds[0].scheduleBatch(batch)
		} else {
			n.schedForFrame(f).scheduleBatch(batch)
			for i, h := range slow {
				d := deliveryPool.Get().(*delivery)
				d.due = now.Add(delay + slowExtra[i])
				d.frame = f
				d.one = h
				n.schedOf(h.ID()).schedule(d)
			}
		}
	}
	if udp := n.udp.Load(); udp != nil {
		udp.transmit(f)
	}
	if tap := n.tap.Load(); tap != nil {
		(*tap)(f)
	}
	return nil
}

// Stats returns a snapshot of medium-level counters.
func (n *Network) Stats() Stats {
	return n.stats.snapshot()
}

// ResetStats zeroes the counters (used between experiment phases).
func (n *Network) ResetStats() {
	n.stats.reset()
}

// Close shuts the medium and all hosts down. Frames still queued in the
// delivery scheduler are dropped, as they would be delivered into
// already-closed host stacks anyway.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	hosts := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		hosts = append(hosts, h)
	}
	n.mu.Unlock()
	for _, sc := range n.scheds {
		sc.close()
	}
	if udp := n.udp.Load(); udp != nil {
		udp.close()
	}
	for _, h := range hosts {
		h.Close()
	}
}

// counters holds the medium's traffic counts as atomics so concurrent
// senders never contend on a stats lock.
type counters struct {
	routingFrames atomic.Int64
	routingBytes  atomic.Int64
	dataFrames    atomic.Int64
	dataBytes     atomic.Int64
	serviceFrames atomic.Int64
	serviceBytes  atomic.Int64
	deliveries    atomic.Int64
	lost          atomic.Int64
}

func (c *counters) recordFrame(f Frame, receivers int) {
	switch f.Kind {
	case KindRouting:
		c.routingFrames.Add(1)
		c.routingBytes.Add(int64(len(f.Payload)))
	case KindService:
		c.serviceFrames.Add(1)
		c.serviceBytes.Add(int64(len(f.Payload)))
	default:
		c.dataFrames.Add(1)
		c.dataBytes.Add(int64(len(f.Payload)))
	}
	c.deliveries.Add(int64(receivers))
}

func (c *counters) snapshot() Stats {
	return Stats{
		RoutingFrames: c.routingFrames.Load(),
		RoutingBytes:  c.routingBytes.Load(),
		DataFrames:    c.dataFrames.Load(),
		DataBytes:     c.dataBytes.Load(),
		ServiceFrames: c.serviceFrames.Load(),
		ServiceBytes:  c.serviceBytes.Load(),
		Deliveries:    c.deliveries.Load(),
		Lost:          c.lost.Load(),
	}
}

func (c *counters) reset() {
	c.routingFrames.Store(0)
	c.routingBytes.Store(0)
	c.dataFrames.Store(0)
	c.dataBytes.Store(0)
	c.serviceFrames.Store(0)
	c.serviceBytes.Store(0)
	c.deliveries.Store(0)
	c.lost.Store(0)
}

// Stats counts traffic on the medium, split by frame kind — the measurement
// backing experiment E9 (discovery overhead).
type Stats struct {
	RoutingFrames int64
	RoutingBytes  int64
	DataFrames    int64
	DataBytes     int64
	ServiceFrames int64
	ServiceBytes  int64
	// Deliveries counts receiver-side frame copies (a broadcast with k
	// neighbours counts k).
	Deliveries int64
	// Lost counts copies dropped by the loss model.
	Lost int64
}

// TotalFrames returns the count of all transmitted frames.
func (s Stats) TotalFrames() int64 { return s.RoutingFrames + s.DataFrames + s.ServiceFrames }

// TotalBytes returns the byte count of all transmitted frames.
func (s Stats) TotalBytes() int64 { return s.RoutingBytes + s.DataBytes + s.ServiceBytes }
