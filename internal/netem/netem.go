// Package netem emulates a mobile ad hoc network (MANET) at packet level.
//
// It replaces the paper's physical testbed (ten Debian laptops and iPAQ
// handhelds on ad hoc WiFi, with firewalls forcing multihop paths): nodes
// have 2-D positions and a unit-disk radio range, frames between nodes in
// range experience configurable delay and loss, and frames between nodes out
// of range are never delivered — exactly the property the paper's firewalls
// enforced.
//
// Layering mirrors a real stack:
//
//   - Network is the shared radio medium. It delivers link-layer Frames
//     (unicast or local broadcast) between neighbouring nodes.
//   - Host is a node's network stack: it forwards Datagrams across multiple
//     hops using a routing protocol's next-hop table (see RouteProvider) and
//     exposes UDP-like ports (Listen/Conn) to applications such as the SIP
//     proxy, the SLP agent and RTP media.
//
// Routing protocols (internal/routing/aodv, internal/routing/olsr) sit
// between the two: they exchange control traffic as Frames of KindRouting
// and feed the Host's forwarding engine.
package netem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"
)

// NodeID identifies a node on the MANET, e.g. "10.0.0.1". The zero value is
// reserved for broadcast.
type NodeID string

// Broadcast is the link-local broadcast destination: every node currently in
// radio range of the sender receives the frame.
const Broadcast NodeID = ""

// FrameKind says which layer a link frame belongs to.
type FrameKind uint8

// Frame kinds. Routing control traffic is kept distinct from data traffic so
// that routing handlers (used for SLP piggybacking) only see control frames,
// and so that overhead experiments can account for each class separately.
const (
	KindRouting FrameKind = iota + 1
	KindData
	// KindService carries standalone service-discovery traffic (the
	// multicast-SLP baseline); the paper's piggybacked MANET SLP sends
	// none of these.
	KindService
)

// String implements fmt.Stringer.
func (k FrameKind) String() string {
	switch k {
	case KindRouting:
		return "routing"
	case KindData:
		return "data"
	case KindService:
		return "service"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Frame is a link-layer frame on the radio medium. Dst == Broadcast delivers
// to all neighbours of Src.
type Frame struct {
	Src     NodeID
	Dst     NodeID
	Kind    FrameKind
	Payload []byte
}

// Datagram is the network/transport-layer unit carried inside KindData
// frames: an IP+UDP-like header plus application payload, forwarded hop by
// hop toward DstNode.
type Datagram struct {
	SrcNode NodeID
	DstNode NodeID
	SrcPort uint16
	DstPort uint16
	TTL     uint8
	Data    []byte
}

// DefaultTTL is the initial hop limit for datagrams, ample for the paper's
// testbed scale and for our up-to-64-node simulations.
const DefaultTTL = 32

// Errors returned by the host stack.
var (
	ErrNoRoute      = errors.New("netem: no route to destination")
	ErrPortInUse    = errors.New("netem: port already in use")
	ErrClosed       = errors.New("netem: closed")
	ErrUnknownNode  = errors.New("netem: unknown node")
	ErrFrameTooBig  = errors.New("netem: frame exceeds MTU")
	ErrSelfDelivery = errors.New("netem: datagram addressed to sender")
)

// MTU is the maximum link-frame payload, matching 802.11-style limits. The
// SLP piggybacking code uses the remaining headroom of routing frames, so the
// budget is enforced here.
const MTU = 2304

// MarshalDatagram encodes d into the wire format used on KindData frames.
// It is exported for tunnel endpoints that encapsulate whole datagrams.
func MarshalDatagram(d *Datagram) ([]byte, error) { return marshalDatagram(d) }

// UnmarshalDatagram decodes the wire format produced by MarshalDatagram.
// The returned datagram's Data aliases b; callers that reuse b must copy.
func UnmarshalDatagram(b []byte) (*Datagram, error) { return unmarshalDatagram(b) }

// AppendDatagram appends d's wire encoding to buf and returns the extended
// slice. It is the allocation-free flavour of MarshalDatagram for callers
// that batch many datagrams into one buffer (gateway trunk frames).
func AppendDatagram(buf []byte, d *Datagram) ([]byte, error) {
	if len(d.SrcNode) > 255 || len(d.DstNode) > 255 {
		return buf, fmt.Errorf("netem: node id too long")
	}
	buf = append(buf, byte(len(d.SrcNode)))
	buf = append(buf, d.SrcNode...)
	buf = append(buf, byte(len(d.DstNode)))
	buf = append(buf, d.DstNode...)
	buf = binary.BigEndian.AppendUint16(buf, d.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, d.DstPort)
	buf = append(buf, d.TTL)
	buf = append(buf, d.Data...)
	return buf, nil
}

// UnmarshalDatagramInto decodes b into d, reusing the caller's Datagram.
// Unlike UnmarshalDatagram, every field of d — the node IDs included —
// aliases b, so d is only valid while b is: callers that retain d or reuse b
// must copy first. This is the allocation-free flavour for per-packet
// receive loops (the gateway trunk fan-out).
func UnmarshalDatagramInto(d *Datagram, b []byte) error {
	*d = Datagram{}
	return decodeDatagramZeroCopy(d, b)
}

// marshalDatagram encodes d into wire format:
//
//	srcLen u8 | src | dstLen u8 | dst | srcPort u16 | dstPort u16 | ttl u8 | data
func marshalDatagram(d *Datagram) ([]byte, error) {
	if len(d.SrcNode) > 255 || len(d.DstNode) > 255 {
		return nil, fmt.Errorf("netem: node id too long")
	}
	buf := make([]byte, 0, 2+len(d.SrcNode)+len(d.DstNode)+5+len(d.Data))
	buf = append(buf, byte(len(d.SrcNode)))
	buf = append(buf, d.SrcNode...)
	buf = append(buf, byte(len(d.DstNode)))
	buf = append(buf, d.DstNode...)
	buf = binary.BigEndian.AppendUint16(buf, d.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, d.DstPort)
	buf = append(buf, d.TTL)
	buf = append(buf, d.Data...)
	return buf, nil
}

// unmarshalDatagram decodes wire format produced by marshalDatagram. Data
// aliases the input rather than copying: frame payloads are freshly marshalled
// per transmit and never mutated after delivery, so the forwarding path can
// skip one allocation per hop.
func unmarshalDatagram(b []byte) (*Datagram, error) {
	d := &Datagram{}
	if err := decodeDatagram(d, b); err != nil {
		return nil, err
	}
	return d, nil
}

func decodeDatagram(d *Datagram, b []byte) error {
	return decodeDatagramWith(d, b, func(s []byte) NodeID { return NodeID(s) })
}

// zeroCopyNodeID views a byte slice as a NodeID without copying. The result
// aliases s and is only valid while s is.
func zeroCopyNodeID(s []byte) NodeID {
	if len(s) == 0 {
		return ""
	}
	return NodeID(unsafe.String(&s[0], len(s)))
}

func decodeDatagramZeroCopy(d *Datagram, b []byte) error {
	return decodeDatagramWith(d, b, zeroCopyNodeID)
}

func decodeDatagramWith(d *Datagram, b []byte, nodeID func([]byte) NodeID) error {
	if len(b) < 1 {
		return fmt.Errorf("netem: short datagram")
	}
	n := int(b[0])
	b = b[1:]
	if len(b) < n+1 {
		return fmt.Errorf("netem: truncated src node")
	}
	d.SrcNode = nodeID(b[:n])
	b = b[n:]
	n = int(b[0])
	b = b[1:]
	if len(b) < n+5 {
		return fmt.Errorf("netem: truncated dst node")
	}
	d.DstNode = nodeID(b[:n])
	b = b[n:]
	d.SrcPort = binary.BigEndian.Uint16(b[0:2])
	d.DstPort = binary.BigEndian.Uint16(b[2:4])
	d.TTL = b[4]
	if len(b) > 5 {
		d.Data = b[5:]
	}
	return nil
}
