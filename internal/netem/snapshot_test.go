package netem

import (
	"reflect"
	"testing"
)

// TestNodesSnapshotCached pins the epoch-cached Nodes contract: repeated
// calls on an unchanged topology return the same immutable snapshot (no
// per-call sort/alloc), and any topology mutation invalidates it together
// with the adjacency cache.
func TestNodesSnapshotCached(t *testing.T) {
	n := NewNetwork(Config{})
	defer n.Close()
	for _, id := range []NodeID{"c", "a", "b"} {
		if _, err := n.AddHost(id, Position{}); err != nil {
			t.Fatal(err)
		}
	}
	first := n.Nodes()
	if want := []NodeID{"a", "b", "c"}; !reflect.DeepEqual(first, want) {
		t.Fatalf("Nodes() = %v, want %v", first, want)
	}
	second := n.Nodes()
	if &first[0] != &second[0] {
		t.Fatal("unchanged topology returned a fresh slice; snapshot not cached")
	}

	if _, err := n.AddHost("d", Position{}); err != nil {
		t.Fatal(err)
	}
	if got, want := n.Nodes(), []NodeID{"a", "b", "c", "d"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after AddHost: Nodes() = %v, want %v", got, want)
	}
	n.RemoveHost("a")
	if got, want := n.Nodes(), []NodeID{"b", "c", "d"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after RemoveHost: Nodes() = %v, want %v", got, want)
	}
	// The stale snapshot taken before the mutations must be untouched.
	if want := []NodeID{"a", "b", "c"}; !reflect.DeepEqual(first, want) {
		t.Fatalf("earlier snapshot mutated in place: %v", first)
	}
}

// TestNeighborsSharedSnapshot pins that Neighbors shares the adjacency
// cache's immutable slice and tracks topology-epoch invalidation.
func TestNeighborsSharedSnapshot(t *testing.T) {
	n := NewNetwork(Config{Range: 100})
	defer n.Close()
	for id, pos := range map[NodeID]Position{
		"a": {0, 0}, "b": {50, 0}, "c": {500, 0},
	} {
		if _, err := n.AddHost(id, pos); err != nil {
			t.Fatal(err)
		}
	}
	first := n.Neighbors("a")
	if len(first) != 1 || first[0] != "b" {
		t.Fatalf("Neighbors(a) = %v, want [b]", first)
	}
	second := n.Neighbors("a")
	if &first[0] != &second[0] {
		t.Fatal("unchanged topology returned a fresh neighbour slice")
	}
	n.SetPosition("c", Position{90, 0})
	if got := n.Neighbors("a"); len(got) != 2 {
		t.Fatalf("after move: Neighbors(a) = %v, want [b c]", got)
	}
	if len(first) != 1 || first[0] != "b" {
		t.Fatalf("earlier neighbour snapshot mutated in place: %v", first)
	}
}
