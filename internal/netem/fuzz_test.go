package netem

import (
	"testing"
)

// FuzzUnmarshalDatagram: any input either errors or round-trips through the
// datagram codec.
func FuzzUnmarshalDatagram(f *testing.F) {
	good, _ := MarshalDatagram(&Datagram{
		SrcNode: "10.0.0.1", DstNode: "10.0.0.2",
		SrcPort: 5060, DstPort: 427, TTL: 8, Data: []byte("payload"),
	})
	f.Add(good)
	f.Add([]byte{0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dg, err := UnmarshalDatagram(data)
		if err != nil {
			return
		}
		raw, err := MarshalDatagram(dg)
		if err != nil {
			t.Fatalf("accepted datagram fails to marshal: %v", err)
		}
		dg2, err := UnmarshalDatagram(raw)
		if err != nil {
			t.Fatalf("marshal output unparseable: %v", err)
		}
		if dg2.SrcNode != dg.SrcNode || dg2.DstNode != dg.DstNode ||
			dg2.SrcPort != dg.SrcPort || dg2.DstPort != dg.DstPort ||
			dg2.TTL != dg.TTL || string(dg2.Data) != string(dg.Data) {
			t.Fatalf("round trip drift: %+v vs %+v", dg, dg2)
		}
	})
}

// FuzzUnmarshalUDPFrame covers the UDP-underlay frame codec.
func FuzzUnmarshalUDPFrame(f *testing.F) {
	f.Add(marshalUDPFrame(Frame{Src: "a", Dst: "b", Kind: KindRouting, Payload: []byte("x")}))
	f.Add([]byte{1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := unmarshalUDPFrame(data)
		if err != nil {
			return
		}
		fr2, err := unmarshalUDPFrame(marshalUDPFrame(*fr))
		if err != nil {
			t.Fatalf("marshal output unparseable: %v", err)
		}
		if fr2.Src != fr.Src || fr2.Dst != fr.Dst || fr2.Kind != fr.Kind ||
			string(fr2.Payload) != string(fr.Payload) {
			t.Fatalf("round trip drift: %+v vs %+v", fr, fr2)
		}
	})
}
