package netem

import (
	"fmt"
	"math/rand"
)

// NodeName builds the conventional node ID used by topology helpers:
// prefix + "." + index, e.g. "10.0.0.3".
func NodeName(prefix string, i int) NodeID {
	return NodeID(fmt.Sprintf("%s.%d", prefix, i))
}

// Chain lays out count nodes in a straight line with the given spacing,
// producing a (count-1)-hop path when spacing is within radio range. This is
// the canonical topology for the setup-delay-vs-hops experiment (E8) and
// mirrors the paper's firewall-forced multihop testbed.
func Chain(n *Network, count int, spacing float64, prefix string) ([]*Host, error) {
	hosts := make([]*Host, 0, count)
	for i := range count {
		h, err := n.AddHost(NodeName(prefix, i+1), Position{X: float64(i) * spacing})
		if err != nil {
			return nil, err
		}
		hosts = append(hosts, h)
	}
	return hosts, nil
}

// Grid lays out rows*cols nodes on a regular grid (the campus scenario).
func Grid(n *Network, rows, cols int, spacing float64, prefix string) ([]*Host, error) {
	hosts := make([]*Host, 0, rows*cols)
	for r := range rows {
		for c := range cols {
			id := NodeName(prefix, r*cols+c+1)
			h, err := n.AddHost(id, Position{X: float64(c) * spacing, Y: float64(r) * spacing})
			if err != nil {
				return nil, err
			}
			hosts = append(hosts, h)
		}
	}
	return hosts, nil
}

// RandomLayout scatters count nodes uniformly over a width×height area using
// a deterministic seed.
func RandomLayout(n *Network, count int, width, height float64, seed int64, prefix string) ([]*Host, error) {
	rng := rand.New(rand.NewSource(seed))
	hosts := make([]*Host, 0, count)
	for i := range count {
		pos := Position{X: rng.Float64() * width, Y: rng.Float64() * height}
		h, err := n.AddHost(NodeName(prefix, i+1), pos)
		if err != nil {
			return nil, err
		}
		hosts = append(hosts, h)
	}
	return hosts, nil
}

// Waypoint implements the random-waypoint mobility model: each node walks
// toward a random target at a random speed, then picks a new target.
type Waypoint struct {
	net           *Network
	rng           *rand.Rand
	width, height float64
	minSpeed      float64 // m/s
	maxSpeed      float64 // m/s
	targets       map[NodeID]Position
	speeds        map[NodeID]float64
	pinned        map[NodeID]bool
}

// NewWaypoint creates a mobility controller over the given area. Speeds are
// in metres per second; pedestrian VoIP users are ~1-2 m/s.
func NewWaypoint(n *Network, width, height, minSpeed, maxSpeed float64, seed int64) *Waypoint {
	return &Waypoint{
		net:      n,
		rng:      rand.New(rand.NewSource(seed)),
		width:    width,
		height:   height,
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		targets:  make(map[NodeID]Position),
		speeds:   make(map[NodeID]float64),
		pinned:   make(map[NodeID]bool),
	}
}

// Step advances every node by dt seconds of movement.
func (w *Waypoint) Step(dt float64) {
	for _, id := range w.net.Nodes() {
		if w.pinned[id] {
			continue
		}
		pos, ok := w.net.PositionOf(id)
		if !ok {
			continue
		}
		target, hasT := w.targets[id]
		if !hasT || pos.Distance(target) < 1 {
			target = Position{X: w.rng.Float64() * w.width, Y: w.rng.Float64() * w.height}
			w.targets[id] = target
			w.speeds[id] = w.minSpeed + w.rng.Float64()*(w.maxSpeed-w.minSpeed)
		}
		speed := w.speeds[id]
		dist := pos.Distance(target)
		step := speed * dt
		if step >= dist {
			w.net.SetPosition(id, target)
			continue
		}
		frac := step / dist
		w.net.SetPosition(id, Position{
			X: pos.X + (target.X-pos.X)*frac,
			Y: pos.Y + (target.Y-pos.Y)*frac,
		})
	}
}

// Pin fixes a node in place (e.g. the gateway); Step skips pinned nodes.
func (w *Waypoint) Pin(id NodeID) { w.pinned[id] = true }

// Unpin lets a pinned node move again.
func (w *Waypoint) Unpin(id NodeID) { delete(w.pinned, id) }
