package netem

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"siphoc/internal/clock"
)

// faultRun is everything observable about one seeded fault-storm run; two
// runs of the same seed must compare equal field by field.
type faultRun struct {
	stats Stats
	log   []FaultRecord
	recv  map[NodeID][]string
}

// faultSnap is the quiescence snapshot for the settle-then-step fake-clock
// driver (see rtp's chainSim): the run is idle when no medium counter moves,
// no frame lands, no fault fires and no new clock timer appears across
// consecutive polls.
type faultSnap struct {
	frames  int64
	deliv   int64
	lost    int64
	recv    int
	faults  int
	pending int
}

// runFaultStorm drives fixed traffic over a 4-node chain on clock.Fake while
// a seeded FaultPlan degrades, cuts, partitions and heals the topology. All
// sends happen from this goroutine between settled steps, so the medium's
// RNG draw order — and with it every loss, delay and delivery — is a pure
// function of the seed.
func runFaultStorm(t *testing.T, seed int64) faultRun {
	t.Helper()
	clk := clock.NewFake(time.Unix(5_000_000, 0))
	n := NewNetwork(Config{
		BaseDelay:   200 * time.Microsecond,
		DelayJitter: time.Millisecond,
		LossRate:    0.05,
		Seed:        seed,
		Clock:       clk,
	})
	defer n.Close()

	ids := []NodeID{"a", "b", "c", "d"}
	hosts := make([]*Host, len(ids))
	var mu sync.Mutex
	recv := make(map[NodeID][]string)
	for i, id := range ids {
		h, err := n.AddHost(id, Position{X: float64(i) * 80})
		if err != nil {
			t.Fatal(err)
		}
		hosts[i] = h
		id := id
		if err := h.HandleFrames(KindService, func(f Frame) {
			mu.Lock()
			recv[id] = append(recv[id], string(f.Payload))
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}

	plan := NewFaultPlan(n, FaultPlanConfig{Seed: seed})
	plan.DegradeLink(10*time.Millisecond, "a", "b", LinkQuality{Loss: 0.5, ExtraDelay: 3 * time.Millisecond}).
		CutLink(20*time.Millisecond, "b", "c").
		Partition(30*time.Millisecond, []NodeID{"a", "b"}, []NodeID{"c", "d"}).
		HealPartition(45*time.Millisecond, []NodeID{"a", "b"}, []NodeID{"c", "d"}).
		HealLink(50*time.Millisecond, "b", "c").
		RestoreLink(55*time.Millisecond, "a", "b").
		SetLossRate(60*time.Millisecond, 0.2).
		FlapRandomLinks(65*time.Millisecond, 90*time.Millisecond, 3, 5*time.Millisecond, ids).
		At(95*time.Millisecond, "probe", func() {})
	if err := plan.Run(); err != nil {
		t.Fatal(err)
	}

	snap := func() faultSnap {
		st := n.Stats()
		s := faultSnap{
			frames:  st.TotalFrames(),
			deliv:   st.Deliveries,
			lost:    st.Lost,
			faults:  len(plan.Log()),
			pending: clk.PendingTimers(),
		}
		mu.Lock()
		for _, msgs := range recv {
			s.recv += len(msgs)
		}
		mu.Unlock()
		return s
	}
	settle := func() {
		prev := snap()
		stable := 0
		for stable < 3 {
			time.Sleep(150 * time.Microsecond)
			cur := snap()
			if cur == prev {
				stable++
			} else {
				stable = 0
				prev = cur
			}
		}
	}

	settle()
	for round := range 60 {
		for i, h := range hosts {
			payload := fmt.Sprintf("r%d.%s", round, ids[i])
			if err := h.SendFrame(Broadcast, KindService, []byte(payload)); err != nil {
				t.Fatal(err)
			}
			dst := ids[(i+1)%len(ids)]
			if err := h.SendFrame(dst, KindService, []byte(payload+".u")); err != nil {
				t.Fatal(err)
			}
		}
		settle()
		clk.Advance(2 * time.Millisecond)
		settle()
	}
	plan.Wait()
	plan.Stop()
	return faultRun{stats: n.Stats(), log: plan.Log(), recv: recv}
}

// TestFaultPlanReplaysBitIdentical is the determinism acceptance test: the
// same seeded FaultPlan against the same seeded medium and traffic replays
// bit-identically on clock.Fake — identical fault log, identical medium
// stats, identical per-receiver delivery sequences.
func TestFaultPlanReplaysBitIdentical(t *testing.T) {
	a := runFaultStorm(t, 7)
	b := runFaultStorm(t, 7)
	if a.stats != b.stats {
		t.Fatalf("stats diverged:\n a=%+v\n b=%+v", a.stats, b.stats)
	}
	if !reflect.DeepEqual(a.log, b.log) {
		t.Fatalf("fault log diverged:\n a=%v\n b=%v", a.log, b.log)
	}
	if !reflect.DeepEqual(a.recv, b.recv) {
		t.Fatalf("per-receiver delivery sequences diverged")
	}
	if len(a.log) == 0 {
		t.Fatal("no faults executed; test exercises nothing")
	}
	if a.stats.Lost == 0 {
		t.Fatal("loss model drew no losses; test exercises nothing")
	}
	// A different seed must still execute the same number of events (the
	// schedule length is seed-independent; only pair/offset choices vary).
	c := runFaultStorm(t, 8)
	if len(c.log) != len(a.log) {
		t.Fatalf("event counts depend on seed: %d vs %d", len(a.log), len(c.log))
	}
}

// TestLinkQualityLossOverride pins the per-link loss semantics: a loss=1
// override kills exactly that link while the rest of the medium is
// unaffected, and clearing it restores delivery.
func TestLinkQualityLossOverride(t *testing.T) {
	n := NewNetwork(Config{BaseDelay: 20 * time.Microsecond})
	defer n.Close()
	ha, err := n.AddHost("a", Position{})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := n.AddHost("b", Position{X: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHost("c", Position{X: 90}); err != nil {
		t.Fatal(err)
	}
	got := make(chan Frame, 16)
	if err := hb.HandleFrames(KindService, func(f Frame) { got <- f }); err != nil {
		t.Fatal(err)
	}

	n.SetLinkQuality("a", "b", LinkQuality{Loss: 1.0})
	if err := ha.SendFrame("b", KindService, []byte("dropped")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-got:
		t.Fatalf("loss=1 link delivered %q", f.Payload)
	case <-time.After(30 * time.Millisecond):
	}
	if lost := n.Stats().Lost; lost == 0 {
		t.Fatal("override drop not counted in Stats.Lost")
	}

	n.ClearLinkQuality("a", "b")
	if err := ha.SendFrame("b", KindService, []byte("through")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-got:
		if string(f.Payload) != "through" {
			t.Fatalf("unexpected frame %q", f.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cleared link did not deliver")
	}
}

// TestLinkQualityExtraDelay pins the latency override, for unicast and for
// the peeled-off broadcast receiver path.
func TestLinkQualityExtraDelay(t *testing.T) {
	clk := clock.NewFake(time.Unix(9_000_000, 0))
	n := NewNetwork(Config{BaseDelay: time.Millisecond, Clock: clk})
	defer n.Close()
	ha, err := n.AddHost("a", Position{})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := n.AddHost("b", Position{X: 50})
	if err != nil {
		t.Fatal(err)
	}
	hc, err := n.AddHost("c", Position{X: 90})
	if err != nil {
		t.Fatal(err)
	}
	_ = hc
	gotB := make(chan Frame, 16)
	gotC := make(chan Frame, 16)
	if err := hb.HandleFrames(KindService, func(f Frame) { gotB <- f }); err != nil {
		t.Fatal(err)
	}
	if err := hc.HandleFrames(KindService, func(f Frame) { gotC <- f }); err != nil {
		t.Fatal(err)
	}
	n.SetLinkQuality("a", "b", LinkQuality{ExtraDelay: 40 * time.Millisecond})

	// Broadcast: c keeps the base delay, b is peeled off by 40 ms.
	if err := ha.SendFrame(Broadcast, KindService, []byte("x")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Millisecond)
	select {
	case <-gotC:
	case <-time.After(2 * time.Second):
		t.Fatal("un-degraded broadcast receiver did not get the frame")
	}
	select {
	case <-gotB:
		t.Fatal("degraded receiver got the frame before its extra delay")
	case <-time.After(20 * time.Millisecond):
	}
	clk.Advance(45 * time.Millisecond)
	select {
	case <-gotB:
	case <-time.After(2 * time.Second):
		t.Fatal("degraded receiver never got the delayed frame")
	}

	// Unicast across the degraded link carries the extra delay too.
	if err := ha.SendFrame("b", KindService, []byte("y")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Millisecond)
	select {
	case <-gotB:
		t.Fatal("degraded unicast arrived before its extra delay")
	case <-time.After(20 * time.Millisecond):
	}
	clk.Advance(45 * time.Millisecond)
	select {
	case <-gotB:
	case <-time.After(2 * time.Second):
		t.Fatal("degraded unicast never arrived")
	}
}

// TestPartitionSplitsAndHeals checks the partition builder against the
// adjacency view: cross-group links disappear, intra-group links stay, and
// the heal restores the original neighbourhoods.
func TestPartitionSplitsAndHeals(t *testing.T) {
	n := NewNetwork(Config{Range: 1000, BaseDelay: 20 * time.Microsecond})
	defer n.Close()
	ids := []NodeID{"a", "b", "c", "d"}
	for i, id := range ids {
		if _, err := n.AddHost(id, Position{X: float64(i) * 10}); err != nil {
			t.Fatal(err)
		}
	}
	before := n.Neighbors("b")
	if len(before) != 3 {
		t.Fatalf("dense topology expected 3 neighbours, got %v", before)
	}

	plan := NewFaultPlan(n, FaultPlanConfig{})
	plan.Partition(0, []NodeID{"a", "b"}, []NodeID{"c", "d"}).
		HealPartition(10*time.Millisecond, []NodeID{"a", "b"}, []NodeID{"c", "d"})
	if err := plan.Run(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if nb := n.Neighbors("b"); len(nb) == 1 && nb[0] == "a" {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	if nb := n.Neighbors("b"); len(nb) != 1 || nb[0] != "a" {
		t.Fatalf("partitioned neighbours of b = %v, want [a]", nb)
	}
	plan.Wait()
	if nb := n.Neighbors("b"); len(nb) != 3 {
		t.Fatalf("healed neighbours of b = %v, want 3", nb)
	}
	if got := len(plan.Log()); got != 2 {
		t.Fatalf("fault log has %d records, want 2", got)
	}
}
