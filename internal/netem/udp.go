package netem

import (
	"fmt"
	"net"
	"sync"
)

// UDPConfig configures a process-level MANET node whose link layer runs
// over real UDP sockets: each daemon process is one node, the peer list is
// its radio neighbourhood, and frames travel as UDP packets. This is how
// cmd/siphocd and cmd/softphone deploy the system as actual network daemons
// (the paper's laptop deployment), while simulations keep using the
// in-memory medium.
type UDPConfig struct {
	// Self is this process's node ID.
	Self NodeID
	// Listen is the local UDP address, e.g. "127.0.0.1:7001".
	Listen string
	// Peers maps neighbour node IDs to their UDP addresses. Only listed
	// peers are reachable — the moral equivalent of radio range.
	Peers map[NodeID]string
	// Base tunes queueing; delays and losses are left to the real
	// network.
	Base Config
}

// udpUnderlay sends and receives link frames over a real socket.
type udpUnderlay struct {
	self  NodeID
	pc    net.PacketConn
	mu    sync.Mutex
	peers map[NodeID]*net.UDPAddr
	done  chan struct{}
}

// NewUDPNetwork creates a Network bridged onto real UDP and its single
// local Host. Close the network to release the socket.
func NewUDPNetwork(cfg UDPConfig) (*Network, *Host, error) {
	if cfg.Self == Broadcast {
		return nil, nil, fmt.Errorf("netem: udp node needs a non-empty id")
	}
	base := cfg.Base
	base.BaseDelay = -1 // real network provides latency; no simulated delay
	n := NewNetwork(base)
	h, err := n.AddHost(cfg.Self, Position{})
	if err != nil {
		return nil, nil, err
	}
	pc, err := net.ListenPacket("udp", cfg.Listen)
	if err != nil {
		n.Close()
		return nil, nil, fmt.Errorf("netem: udp listen %s: %w", cfg.Listen, err)
	}
	u := &udpUnderlay{
		self:  cfg.Self,
		pc:    pc,
		peers: make(map[NodeID]*net.UDPAddr, len(cfg.Peers)),
		done:  make(chan struct{}),
	}
	for id, addr := range cfg.Peers {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			pc.Close()
			n.Close()
			return nil, nil, fmt.Errorf("netem: peer %s addr %q: %w", id, addr, err)
		}
		u.peers[id] = ua
	}
	n.udp.Store(u)
	go u.recvLoop(h)
	return n, h, nil
}

// AddPeer makes a node reachable at runtime (topology change).
func (n *Network) AddPeer(id NodeID, addr string) error {
	u := n.udp.Load()
	if u == nil {
		return fmt.Errorf("netem: not a UDP network")
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	u.mu.Lock()
	u.peers[id] = ua
	u.mu.Unlock()
	return nil
}

// RemovePeer breaks the link to a node at runtime.
func (n *Network) RemovePeer(id NodeID) {
	u := n.udp.Load()
	if u == nil {
		return
	}
	u.mu.Lock()
	delete(u.peers, id)
	u.mu.Unlock()
}

// transmit sends a frame to the peer set: broadcast reaches every peer,
// unicast reaches the named peer if listed.
func (u *udpUnderlay) transmit(f Frame) {
	buf := marshalUDPFrame(f)
	u.mu.Lock()
	targets := make([]*net.UDPAddr, 0, len(u.peers))
	if f.Dst == Broadcast {
		for _, a := range u.peers {
			targets = append(targets, a)
		}
	} else if a, ok := u.peers[f.Dst]; ok {
		targets = append(targets, a)
	}
	u.mu.Unlock()
	for _, a := range targets {
		_, _ = u.pc.WriteTo(buf, a)
	}
}

func (u *udpUnderlay) recvLoop(h *Host) {
	buf := make([]byte, 65536)
	for {
		n, _, err := u.pc.ReadFrom(buf)
		if err != nil {
			return // socket closed
		}
		f, err := unmarshalUDPFrame(buf[:n])
		if err != nil {
			continue
		}
		if f.Dst != Broadcast && f.Dst != u.self {
			continue
		}
		h.enqueue(*f)
	}
}

func (u *udpUnderlay) close() {
	_ = u.pc.Close()
}

// Frame wire format over UDP:
//
//	kind u8 | srcLen u8 | src | dstLen u8 | dst | payload
func marshalUDPFrame(f Frame) []byte {
	buf := make([]byte, 0, 3+len(f.Src)+len(f.Dst)+len(f.Payload))
	buf = append(buf, byte(f.Kind))
	buf = append(buf, byte(len(f.Src)))
	buf = append(buf, f.Src...)
	buf = append(buf, byte(len(f.Dst)))
	buf = append(buf, f.Dst...)
	buf = append(buf, f.Payload...)
	return buf
}

func unmarshalUDPFrame(b []byte) (*Frame, error) {
	if len(b) < 3 {
		return nil, fmt.Errorf("netem: short udp frame")
	}
	f := &Frame{Kind: FrameKind(b[0])}
	b = b[1:]
	n := int(b[0])
	b = b[1:]
	if len(b) < n+1 {
		return nil, fmt.Errorf("netem: truncated udp frame src")
	}
	f.Src = NodeID(b[:n])
	b = b[n:]
	n = int(b[0])
	b = b[1:]
	if len(b) < n {
		return nil, fmt.Errorf("netem: truncated udp frame dst")
	}
	f.Dst = NodeID(b[:n])
	f.Payload = append([]byte(nil), b[n:]...)
	return f, nil
}
