package netem

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// freePorts grabs n distinct free UDP ports on loopback.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	conns := make([]net.PacketConn, 0, n)
	for range n {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, pc)
		addrs = append(addrs, pc.LocalAddr().String())
	}
	for _, pc := range conns {
		pc.Close()
	}
	return addrs
}

// directUDP routes every destination as a 1-hop neighbour.
type directUDP struct{}

func (directUDP) NextHop(dst NodeID) (NodeID, bool)     { return dst, true }
func (directUDP) RequestRoute(dst NodeID, f func(bool)) { f(true) }

func TestUDPFrameRoundTrip(t *testing.T) {
	in := Frame{Src: "a", Dst: "b", Kind: KindRouting, Payload: []byte("hello")}
	out, err := unmarshalUDPFrame(marshalUDPFrame(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Src != in.Src || out.Dst != in.Dst || out.Kind != in.Kind || string(out.Payload) != "hello" {
		t.Fatalf("out = %+v", out)
	}
	if _, err := unmarshalUDPFrame([]byte{1}); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestUDPNetworkExchange(t *testing.T) {
	addrs := freePorts(t, 2)
	na, ha, err := NewUDPNetwork(UDPConfig{
		Self: "a", Listen: addrs[0], Peers: map[NodeID]string{"b": addrs[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer na.Close()
	nb, hb, err := NewUDPNetwork(UDPConfig{
		Self: "b", Listen: addrs[1], Peers: map[NodeID]string{"a": addrs[0]},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nb.Close()

	got := make(chan Frame, 1)
	if err := hb.HandleFrames(KindRouting, func(f Frame) { got <- f }); err != nil {
		t.Fatal(err)
	}
	if err := ha.SendFrame(Broadcast, KindRouting, []byte("over-the-wire")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-got:
		if f.Src != "a" || string(f.Payload) != "over-the-wire" {
			t.Fatalf("frame = %+v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame never crossed the UDP underlay")
	}

	// Datagram path too.
	ha.SetRouteProvider(directUDP{})
	hb.SetRouteProvider(directUDP{})
	ca, err := ha.Listen(100)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := hb.Listen(200)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	defer cb.Close()
	if err := ca.WriteTo([]byte("dgram"), "b", 200); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		dg, ok := cb.Recv()
		if ok && string(dg.Data) == "dgram" {
			return
		}
		t.Errorf("bad datagram: %v %v", dg, ok)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("datagram never arrived over UDP")
	}
}

func TestUDPPeerManagement(t *testing.T) {
	addrs := freePorts(t, 2)
	na, ha, err := NewUDPNetwork(UDPConfig{Self: "a", Listen: addrs[0]})
	if err != nil {
		t.Fatal(err)
	}
	defer na.Close()
	nb, hb, err := NewUDPNetwork(UDPConfig{Self: "b", Listen: addrs[1]})
	if err != nil {
		t.Fatal(err)
	}
	defer nb.Close()
	got := make(chan Frame, 4)
	if err := hb.HandleFrames(KindRouting, func(f Frame) { got <- f }); err != nil {
		t.Fatal(err)
	}
	// No peers yet: nothing arrives.
	if err := ha.SendFrame(Broadcast, KindRouting, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		t.Fatal("frame delivered without a peer entry")
	case <-time.After(100 * time.Millisecond):
	}
	// Add peer at runtime.
	if err := na.AddPeer("b", addrs[1]); err != nil {
		t.Fatal(err)
	}
	if err := ha.SendFrame(Broadcast, KindRouting, []byte("y")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-got:
		if string(f.Payload) != "y" {
			t.Fatalf("payload = %q", f.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame never arrived after AddPeer")
	}
	// Remove the peer again.
	na.RemovePeer("b")
	if err := ha.SendFrame(Broadcast, KindRouting, []byte("z")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		t.Fatal("frame delivered after RemovePeer")
	case <-time.After(100 * time.Millisecond):
	}
	// Error paths.
	plain := NewNetwork(Config{})
	defer plain.Close()
	if err := plain.AddPeer("x", "127.0.0.1:1"); err == nil {
		t.Fatal("AddPeer on in-memory network accepted")
	}
	if err := na.AddPeer("bad", "not-an-addr"); err == nil {
		t.Fatal("bad peer address accepted")
	}
	_ = fmt.Sprint() // keep fmt for symmetry with other tests
}
