package netem

import (
	"container/heap"
	"sync"
	"time"

	"siphoc/internal/clock"
)

// delivery is one scheduled frame hand-off: a frame plus the receiver set it
// must reach once its deadline passes. Unicast frames use the inline host
// field so the common case allocates no slice; broadcast frames reference the
// adjacency cache's immutable host slice directly (the cache is replaced, not
// mutated, on topology changes, so sharing is safe).
type delivery struct {
	due   time.Time
	seq   uint64 // FIFO tie-break for equal deadlines: in-order per link
	frame Frame
	one   *Host
	many  []*Host
	// dg/dgHost carry a zero-delay local (loopback) datagram in event-loop
	// mode: routing it through the shard scheduler instead of invoking the
	// receiver inline keeps per-host delivery serialized and prevents
	// reentrant handler nesting when an application answers its own host.
	dg     *Datagram
	dgHost *Host
}

func (d *delivery) deliver() {
	if d.dg != nil {
		d.dgHost.deliverLocal(d.dg)
		return
	}
	if d.one != nil {
		d.one.enqueue(d.frame)
		return
	}
	for _, h := range d.many {
		h.enqueue(d.frame)
	}
}

// deliveryHeap is a min-heap ordered by (due, seq).
type deliveryHeap []*delivery

func (h deliveryHeap) Len() int { return len(h) }
func (h deliveryHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}
func (h deliveryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x any)   { *h = append(*h, x.(*delivery)) }
func (h *deliveryHeap) Pop() any {
	old := *h
	n := len(old)
	d := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return d
}

var deliveryPool = sync.Pool{New: func() any { return new(delivery) }}

// scheduler is the medium's single delivery goroutine: it drains a min-heap
// of pending deliveries in deadline order, replacing the goroutine-per-frame
// model. One timer is armed for the earliest deadline; earlier insertions
// wake the loop to re-arm.
type scheduler struct {
	clk clock.Clock

	mu   sync.Mutex
	heap deliveryHeap
	seq  uint64

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

func newScheduler(clk clock.Clock) *scheduler {
	s := &scheduler{
		clk:  clk,
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go s.run()
	return s
}

// schedule queues a delivery. The scheduler takes ownership of d (it returns
// it to the pool after delivery).
func (s *scheduler) schedule(d *delivery) {
	s.mu.Lock()
	d.seq = s.seq
	s.seq++
	heap.Push(&s.heap, d)
	first := s.heap[0] == d
	s.mu.Unlock()
	if first {
		s.wakeUp()
	}
}

// scheduleBatch queues several deliveries from one frame under a single lock
// acquisition — the fan-out path where per-link quality overrides peel
// receivers onto their own deadlines would otherwise take the heap lock once
// per receiver. Sequence numbers are assigned in slice order, preserving the
// per-link FIFO tie-break.
func (s *scheduler) scheduleBatch(ds []*delivery) {
	if len(ds) == 0 {
		return
	}
	s.mu.Lock()
	newHead := false
	for _, d := range ds {
		d.seq = s.seq
		s.seq++
		heap.Push(&s.heap, d)
		if s.heap[0] == d {
			newHead = true
		}
	}
	s.mu.Unlock()
	if newHead {
		s.wakeUp()
	}
}

func (s *scheduler) wakeUp() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *scheduler) run() {
	defer close(s.done)
	var batch []*delivery
	for {
		s.mu.Lock()
		now := s.clk.Now()
		batch = batch[:0]
		for len(s.heap) > 0 && !s.heap[0].due.After(now) {
			batch = append(batch, heap.Pop(&s.heap).(*delivery))
		}
		wait, pending := time.Duration(0), false
		if len(s.heap) > 0 {
			wait, pending = s.heap[0].due.Sub(now), true
		}
		s.mu.Unlock()
		for _, d := range batch {
			d.deliver()
			*d = delivery{}
			deliveryPool.Put(d)
		}
		if len(batch) > 0 {
			continue // new deadlines may have passed while delivering
		}
		if !pending {
			select {
			case <-s.stop:
				return
			case <-s.wake:
			}
			continue
		}
		t := s.clk.NewTimer(wait)
		select {
		case <-s.stop:
			t.Stop()
			return
		case <-s.wake:
			t.Stop()
		case <-t.C():
		}
	}
}

// close stops the delivery goroutine. Deliveries still pending are dropped —
// equivalent to the old behaviour, where frames in flight at Close were
// delivered into already-closed hosts and discarded.
func (s *scheduler) close() {
	close(s.stop)
	<-s.done
}
