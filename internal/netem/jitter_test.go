package netem

import (
	"testing"
	"time"
)

// TestDelayJitterSpreadsArrivals sends a burst of frames over a jittery
// link and verifies arrival spacing varies (and that everything arrives).
func TestDelayJitterSpreadsArrivals(t *testing.T) {
	n := NewNetwork(Config{
		BaseDelay:   200 * time.Microsecond,
		DelayJitter: 3 * time.Millisecond,
		Seed:        5,
	})
	defer n.Close()
	ha, err := n.AddHost("a", Position{})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := n.AddHost("b", Position{X: 10})
	if err != nil {
		t.Fatal(err)
	}
	ha.SetRouteProvider(staticRoutes{"b": "b"})
	ca, err := ha.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := hb.Listen(2)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	defer cb.Close()

	const frames = 30
	for range frames {
		if err := ca.WriteTo([]byte("x"), "b", 2); err != nil {
			t.Fatal(err)
		}
	}
	var arrivals []time.Time
	deadline := time.After(10 * time.Second)
	for len(arrivals) < frames {
		if _, ok := cb.TryRecv(); ok {
			arrivals = append(arrivals, time.Now())
			continue
		}
		select {
		case <-deadline:
			t.Fatalf("only %d/%d frames arrived", len(arrivals), frames)
		case <-time.After(100 * time.Microsecond):
		}
	}
	// With 3ms of jitter on a burst sent back-to-back, the arrival window
	// must span at least ~1ms (no jitter would deliver within ~base delay
	// of each other).
	span := arrivals[len(arrivals)-1].Sub(arrivals[0])
	if span < time.Millisecond {
		t.Fatalf("arrival span %v too tight for 3ms jitter", span)
	}
}
