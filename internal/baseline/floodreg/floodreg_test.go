package floodreg

import (
	"testing"
	"time"

	"siphoc/internal/netem"
)

func simConfig() Config {
	return Config{Interval: 50 * time.Millisecond}
}

func buildChain(t *testing.T, n int) (*netem.Network, []*Agent) {
	t.Helper()
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	t.Cleanup(net.Close)
	hosts, err := netem.Chain(net, n, 90, "f")
	if err != nil {
		t.Fatal(err)
	}
	agents := make([]*Agent, n)
	for i, h := range hosts {
		agents[i] = New(h, simConfig())
		if err := agents[i].Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(agents[i].Stop)
	}
	return net, agents
}

func TestFloodPropagatesBindings(t *testing.T) {
	_, agents := buildChain(t, 5)
	agents[0].Register("alice@voicehoc.ch", "f.1:5060")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if addr, ok := agents[4].Lookup("alice@voicehoc.ch"); ok {
			if addr != "f.1:5060" {
				t.Fatalf("addr = %q", addr)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("binding never reached the far node")
}

func TestLookupMissAndLocalHit(t *testing.T) {
	_, agents := buildChain(t, 2)
	if _, ok := agents[0].Lookup("ghost@x"); ok {
		t.Fatal("lookup hit for unknown AOR")
	}
	agents[0].Register("me@x", "f.1:5060")
	if addr, ok := agents[0].Lookup("me@x"); !ok || addr != "f.1:5060" {
		t.Fatalf("local lookup = %q %v", addr, ok)
	}
}

func TestBindingExpires(t *testing.T) {
	net, agents := buildChain(t, 2)
	agents[0].Register("alice@x", "f.1:5060")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := agents[1].Lookup("alice@x"); ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Partition the nodes; refreshes stop arriving and the binding ages out.
	net.SetLink("f.1", "f.2", false)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := agents[1].Lookup("alice@x"); !ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("binding never expired after partition")
}

func TestOverheadScalesWithTime(t *testing.T) {
	net, agents := buildChain(t, 3)
	agents[0].Register("alice@x", "f.1:5060")
	net.ResetStats()
	time.Sleep(300 * time.Millisecond)
	early := net.Stats().ServiceFrames
	time.Sleep(300 * time.Millisecond)
	late := net.Stats().ServiceFrames
	// Flooding never stops — the inefficiency the paper calls out.
	if late <= early {
		t.Fatalf("flood traffic stalled: %d then %d", early, late)
	}
}
