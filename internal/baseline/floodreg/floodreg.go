// Package floodreg implements the REGISTER-flooding baseline for
// decentralized SIP in MANETs (Leggio et al., "Session initiation protocol
// deployment in ad-hoc networks: a decentralized approach", IWWAN 2005 —
// reference [12] of the paper): every node periodically floods its SIP
// bindings through the whole network so that lookups are always local. The
// paper criticizes the approach as inefficient and SIP-incompatible; this
// implementation exists to quantify that claim in experiment E9.
package floodreg

import (
	"fmt"
	"sync"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/wire"
)

// Config tunes the agent.
type Config struct {
	// Interval is the re-flood period (default 1s; the original proposal
	// floods on registration and refresh).
	Interval time.Duration
	// BindingTTL is how long learned bindings stay valid (default 3×
	// Interval).
	BindingTTL time.Duration
	// Hops bounds flood propagation (default 16).
	Hops uint8
	// Clock is the time source (default the system clock).
	Clock clock.Clock
}

func (c Config) withDefaults() Config {
	if c.Interval == 0 {
		c.Interval = time.Second
	}
	if c.BindingTTL == 0 {
		c.BindingTTL = 3 * c.Interval
	}
	if c.Hops == 0 {
		c.Hops = 16
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	return c
}

// Stats counts agent activity.
type Stats struct {
	FloodsOriginated int64
	FloodsRelayed    int64
	BindingsLearned  int64
}

type binding struct {
	addr    string
	origin  netem.NodeID
	seq     uint32
	expires time.Time
}

// Agent is one node's flooding registrar.
type Agent struct {
	host *netem.Host
	cfg  Config
	clk  clock.Clock

	mu      sync.Mutex
	local   map[string]string // AOR -> contact addr
	learned map[string]binding
	seq     uint32
	seen    map[seenKey]time.Time
	stats   Stats
	started bool
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup
}

type seenKey struct {
	origin netem.NodeID
	seq    uint32
}

// New creates the agent.
func New(host *netem.Host, cfg Config) *Agent {
	cfg = cfg.withDefaults()
	return &Agent{
		host:    host,
		cfg:     cfg,
		clk:     cfg.Clock,
		local:   make(map[string]string),
		learned: make(map[string]binding),
		seen:    make(map[seenKey]time.Time),
		stop:    make(chan struct{}),
	}
}

// Start begins periodic flooding.
func (a *Agent) Start() error {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return fmt.Errorf("floodreg: already started")
	}
	a.started = true
	a.mu.Unlock()
	if err := a.host.HandleFrames(netem.KindService, a.onFrame); err != nil {
		return err
	}
	a.wg.Add(1)
	go a.loop()
	return nil
}

// Stop terminates the agent.
func (a *Agent) Stop() {
	a.mu.Lock()
	if !a.started || a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	close(a.stop)
	a.wg.Wait()
}

// Stats returns a snapshot of the counters.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Register adds a local binding; it is flooded on the next interval (and
// immediately, as the original proposal floods on REGISTER).
func (a *Agent) Register(aor, contactAddr string) {
	a.mu.Lock()
	a.local[aor] = contactAddr
	a.mu.Unlock()
	a.flood()
}

// Lookup is local-only: the whole point of proactive flooding.
func (a *Agent) Lookup(aor string) (string, bool) {
	now := a.clk.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	if addr, ok := a.local[aor]; ok {
		return addr, true
	}
	b, ok := a.learned[aor]
	if !ok || now.After(b.expires) {
		return "", false
	}
	return b.addr, true
}

// message: seq u32 | origin str | hops u8 | count u16 | (aor str, addr str)*
func (a *Agent) flood() {
	a.mu.Lock()
	if len(a.local) == 0 {
		a.mu.Unlock()
		return
	}
	a.seq++
	w := wire.NewWriter(64)
	w.U32(a.seq)
	w.String(string(a.host.ID()))
	w.U8(a.cfg.Hops)
	w.U16(uint16(len(a.local)))
	for aor, addr := range a.local {
		w.String(aor)
		w.String(addr)
	}
	a.seen[seenKey{a.host.ID(), a.seq}] = a.clk.Now()
	a.stats.FloodsOriginated++
	a.mu.Unlock()
	_ = a.host.SendFrame(netem.Broadcast, netem.KindService, w.Bytes())
}

func (a *Agent) onFrame(f netem.Frame) {
	r := wire.NewReader(f.Payload)
	seq := r.U32()
	origin := netem.NodeID(r.String())
	hops := r.U8()
	n := int(r.U16())
	type pair struct{ aor, addr string }
	pairs := make([]pair, 0, n)
	for range n {
		p := pair{aor: r.String()}
		p.addr = r.String()
		pairs = append(pairs, p)
	}
	if r.Err() != nil || origin == a.host.ID() {
		return
	}
	now := a.clk.Now()
	k := seenKey{origin, seq}
	a.mu.Lock()
	if _, dup := a.seen[k]; dup {
		a.mu.Unlock()
		return
	}
	a.seen[k] = now
	if len(a.seen) > 8192 {
		for key, t := range a.seen {
			if now.Sub(t) > a.cfg.BindingTTL {
				delete(a.seen, key)
			}
		}
	}
	for _, p := range pairs {
		cur, ok := a.learned[p.aor]
		if ok && cur.origin == origin && cur.seq > seq {
			continue
		}
		a.learned[p.aor] = binding{addr: p.addr, origin: origin, seq: seq, expires: now.Add(a.cfg.BindingTTL)}
		a.stats.BindingsLearned++
	}
	relay := hops > 1
	if relay {
		a.stats.FloodsRelayed++
	}
	a.mu.Unlock()
	if relay {
		// Re-encode with a decremented hop budget.
		w := wire.NewWriter(len(f.Payload))
		w.U32(seq)
		w.String(string(origin))
		w.U8(hops - 1)
		w.U16(uint16(len(pairs)))
		for _, p := range pairs {
			w.String(p.aor)
			w.String(p.addr)
		}
		_ = a.host.SendFrame(netem.Broadcast, netem.KindService, w.Bytes())
	}
}

func (a *Agent) loop() {
	defer a.wg.Done()
	for {
		timer := a.clk.NewTimer(a.cfg.Interval)
		select {
		case <-a.stop:
			timer.Stop()
			return
		case <-timer.C():
		}
		a.flood()
	}
}
