// Package picosip implements the proactive HELLO-mapping baseline
// (O'Doherty, "Pico SIP", Internet Draft 2001 — reference [13] of the
// paper): every node periodically broadcasts a HELLO carrying its complete
// table of known SIP client mappings; neighbours merge tables, so the full
// mapping eventually reaches everyone. The paper criticizes the approach for
// wasting resources when mappings go unused and for being incompatible with
// SIP registration; experiment E9 measures that standing cost.
package picosip

import (
	"fmt"
	"sync"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/wire"
)

// Config tunes the agent.
type Config struct {
	// HelloInterval is the table-broadcast period (default 1s).
	HelloInterval time.Duration
	// EntryTTL is how long unrefreshed mappings stay valid (default 4×
	// HelloInterval).
	EntryTTL time.Duration
	// Clock is the time source (default the system clock).
	Clock clock.Clock
}

func (c Config) withDefaults() Config {
	if c.HelloInterval == 0 {
		c.HelloInterval = time.Second
	}
	if c.EntryTTL == 0 {
		c.EntryTTL = 4 * c.HelloInterval
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	return c
}

// Stats counts agent activity.
type Stats struct {
	HellosSent      int64
	MappingsLearned int64
}

type mapping struct {
	addr    string
	origin  netem.NodeID
	seq     uint32
	expires time.Time
}

// Agent is one node's Pico-SIP mapper.
type Agent struct {
	host *netem.Host
	cfg  Config
	clk  clock.Clock

	mu      sync.Mutex
	local   map[string]string
	table   map[string]mapping
	seq     uint32
	stats   Stats
	started bool
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// New creates the agent.
func New(host *netem.Host, cfg Config) *Agent {
	cfg = cfg.withDefaults()
	return &Agent{
		host:  host,
		cfg:   cfg,
		clk:   cfg.Clock,
		local: make(map[string]string),
		table: make(map[string]mapping),
		stop:  make(chan struct{}),
	}
}

// Start begins periodic HELLOs.
func (a *Agent) Start() error {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return fmt.Errorf("picosip: already started")
	}
	a.started = true
	a.mu.Unlock()
	if err := a.host.HandleFrames(netem.KindService, a.onFrame); err != nil {
		return err
	}
	a.wg.Add(1)
	go a.loop()
	return nil
}

// Stop terminates the agent.
func (a *Agent) Stop() {
	a.mu.Lock()
	if !a.started || a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	close(a.stop)
	a.wg.Wait()
}

// Stats returns a snapshot of the counters.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Register adds a local SIP client mapping.
func (a *Agent) Register(aor, contactAddr string) {
	a.mu.Lock()
	a.local[aor] = contactAddr
	a.mu.Unlock()
}

// Lookup is local-only, answered from the proactively gossiped table.
func (a *Agent) Lookup(aor string) (string, bool) {
	now := a.clk.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	if addr, ok := a.local[aor]; ok {
		return addr, true
	}
	m, ok := a.table[aor]
	if !ok || now.After(m.expires) {
		return "", false
	}
	return m.addr, true
}

// TableSize reports how many remote mappings the node carries (the memory
// cost the paper objects to).
func (a *Agent) TableSize() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.table)
}

// hello wire format: count u16 | (aor str, addr str, origin str, seq u32)*
func (a *Agent) sendHello() {
	now := a.clk.Now()
	a.mu.Lock()
	a.seq++
	type entry struct {
		aor, addr string
		origin    netem.NodeID
		seq       uint32
	}
	entries := make([]entry, 0, len(a.local)+len(a.table))
	for aor, addr := range a.local {
		entries = append(entries, entry{aor, addr, a.host.ID(), a.seq})
	}
	for aor, m := range a.table {
		if now.After(m.expires) {
			delete(a.table, aor)
			continue
		}
		entries = append(entries, entry{aor, m.addr, m.origin, m.seq})
	}
	a.stats.HellosSent++
	a.mu.Unlock()
	w := wire.NewWriter(16 + 48*len(entries))
	w.U16(uint16(len(entries)))
	for _, e := range entries {
		w.String(e.aor)
		w.String(e.addr)
		w.String(string(e.origin))
		w.U32(e.seq)
	}
	_ = a.host.SendFrame(netem.Broadcast, netem.KindService, w.Bytes())
}

func (a *Agent) onFrame(f netem.Frame) {
	r := wire.NewReader(f.Payload)
	n := int(r.U16())
	now := a.clk.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	for range n {
		aor := r.String()
		addr := r.String()
		origin := netem.NodeID(r.String())
		seq := r.U32()
		if r.Err() != nil {
			return
		}
		if origin == a.host.ID() {
			continue
		}
		cur, ok := a.table[aor]
		if ok && cur.origin == origin && cur.seq >= seq {
			// Refresh expiry on equal freshness.
			cur.expires = now.Add(a.cfg.EntryTTL)
			a.table[aor] = cur
			continue
		}
		a.table[aor] = mapping{addr: addr, origin: origin, seq: seq, expires: now.Add(a.cfg.EntryTTL)}
		a.stats.MappingsLearned++
	}
}

func (a *Agent) loop() {
	defer a.wg.Done()
	for {
		timer := a.clk.NewTimer(a.cfg.HelloInterval)
		select {
		case <-a.stop:
			timer.Stop()
			return
		case <-timer.C():
		}
		a.sendHello()
	}
}
