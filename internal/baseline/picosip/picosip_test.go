package picosip

import (
	"testing"
	"time"

	"siphoc/internal/netem"
)

func simConfig() Config {
	return Config{HelloInterval: 40 * time.Millisecond}
}

func buildChain(t *testing.T, n int) (*netem.Network, []*Agent) {
	t.Helper()
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	t.Cleanup(net.Close)
	hosts, err := netem.Chain(net, n, 90, "p")
	if err != nil {
		t.Fatal(err)
	}
	agents := make([]*Agent, n)
	for i, h := range hosts {
		agents[i] = New(h, simConfig())
		if err := agents[i].Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(agents[i].Stop)
	}
	return net, agents
}

func TestMappingGossipsAcrossChain(t *testing.T) {
	_, agents := buildChain(t, 4)
	agents[0].Register("alice@x", "p.1:5060")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if addr, ok := agents[3].Lookup("alice@x"); ok {
			if addr != "p.1:5060" {
				t.Fatalf("addr = %q", addr)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("mapping never gossiped to the far node")
}

func TestEveryNodeCarriesFullTable(t *testing.T) {
	_, agents := buildChain(t, 4)
	for i, a := range agents {
		a.Register("user"+string(rune('a'+i))+"@x", "p:1")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		full := true
		for _, a := range agents {
			if a.TableSize() < len(agents)-1 {
				full = false
				break
			}
		}
		if full {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("not every node learned every mapping")
}

func TestStandingOverheadWithoutCalls(t *testing.T) {
	net, agents := buildChain(t, 3)
	agents[0].Register("alice@x", "p.1:5060")
	net.ResetStats()
	time.Sleep(300 * time.Millisecond)
	st := net.Stats()
	// Pro-active HELLOs keep flowing even though nobody ever looks
	// anything up — the resource waste the paper criticizes.
	if st.ServiceFrames < 10 {
		t.Fatalf("expected standing HELLO traffic, got %d frames", st.ServiceFrames)
	}
}

func TestMappingExpires(t *testing.T) {
	net, agents := buildChain(t, 2)
	agents[0].Register("alice@x", "p.1:5060")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := agents[1].Lookup("alice@x"); ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	net.SetLink("p.1", "p.2", false)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := agents[1].Lookup("alice@x"); !ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("mapping never expired after partition")
}
