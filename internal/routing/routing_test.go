package routing

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"siphoc/internal/netem"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	in := &Envelope{Proto: ProtoAODV, Kind: 2, Body: []byte("rrep-body"), Ext: []byte("slp-ext")}
	raw, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseEnvelope(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("mismatch: %+v vs %+v", in, out)
	}
}

func TestEnvelopeNoExt(t *testing.T) {
	in := &Envelope{Proto: ProtoOLSR, Kind: 1, Body: []byte{1, 2}}
	raw, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseEnvelope(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ext != nil {
		t.Fatalf("Ext = %v, want nil", out.Ext)
	}
}

func TestEnvelopeQuick(t *testing.T) {
	f := func(proto, kind uint8, body, ext []byte) bool {
		if len(body) > 0xffff || len(ext) > 0xffff {
			return true
		}
		in := &Envelope{Proto: proto, Kind: kind, Body: body, Ext: ext}
		raw, err := in.Marshal()
		if err != nil {
			return false
		}
		out, err := ParseEnvelope(raw)
		if err != nil {
			return false
		}
		eq := func(a, b []byte) bool {
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		}
		return out.Proto == proto && out.Kind == kind && eq(out.Body, body) && eq(out.Ext, ext)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeRejectsTruncation(t *testing.T) {
	raw, err := (&Envelope{Proto: 1, Kind: 1, Body: []byte("abcdef"), Ext: []byte("xy")}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for cut := range len(raw) {
		if _, err := ParseEnvelope(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestExtBudget(t *testing.T) {
	if b := ExtBudget(0); b <= 0 || b > netem.MTU {
		t.Fatalf("ExtBudget(0) = %d", b)
	}
	if b := ExtBudget(netem.MTU); b != 0 {
		t.Fatalf("ExtBudget(MTU) = %d, want 0", b)
	}
	// A full-budget extension must produce a frame that fits the MTU.
	body := make([]byte, 100)
	ext := make([]byte, ExtBudget(len(body)))
	raw, err := (&Envelope{Proto: 1, Kind: 1, Body: body, Ext: ext}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) > netem.MTU {
		t.Fatalf("frame size %d exceeds MTU %d", len(raw), netem.MTU)
	}
}

func TestTableExpiry(t *testing.T) {
	tbl := NewTable()
	now := time.Now()
	tbl.Upsert(Entry{Dst: "d", NextHop: "n", Hops: 1, Expires: now.Add(time.Second)})
	if _, ok := tbl.Lookup("d", now); !ok {
		t.Fatal("live route not found")
	}
	if _, ok := tbl.Lookup("d", now.Add(2*time.Second)); ok {
		t.Fatal("expired route returned")
	}
	// Zero expiry means eternal.
	tbl.Upsert(Entry{Dst: "e", NextHop: "n"})
	if _, ok := tbl.Lookup("e", now.Add(1000*time.Hour)); !ok {
		t.Fatal("eternal route expired")
	}
}

func TestTableRemoveByNextHop(t *testing.T) {
	tbl := NewTable()
	tbl.Upsert(Entry{Dst: "a", NextHop: "x"})
	tbl.Upsert(Entry{Dst: "b", NextHop: "x"})
	tbl.Upsert(Entry{Dst: "c", NextHop: "y"})
	removed := tbl.RemoveByNextHop("x")
	if len(removed) != 2 || removed[0].Dst != "a" || removed[1].Dst != "b" {
		t.Fatalf("removed = %+v", removed)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestTableReplaceAndSnapshot(t *testing.T) {
	tbl := NewTable()
	tbl.Upsert(Entry{Dst: "old", NextHop: "x"})
	tbl.Replace([]Entry{{Dst: "b", NextHop: "n"}, {Dst: "a", NextHop: "n"}})
	snap := tbl.Snapshot(time.Now())
	if len(snap) != 2 || snap[0].Dst != "a" || snap[1].Dst != "b" {
		t.Fatalf("snapshot = %+v", snap)
	}
}
