package routing

import (
	"testing"
)

// FuzzParseEnvelope: any input either errors or round-trips.
func FuzzParseEnvelope(f *testing.F) {
	good, _ := (&Envelope{Proto: ProtoAODV, Kind: 2, Body: []byte("body"), Ext: []byte("ext")}).Marshal()
	f.Add(good)
	f.Add([]byte{1, 1, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := ParseEnvelope(data)
		if err != nil {
			return
		}
		raw, err := e.Marshal()
		if err != nil {
			t.Fatalf("accepted envelope fails to marshal: %v", err)
		}
		e2, err := ParseEnvelope(raw)
		if err != nil {
			t.Fatalf("marshal output unparseable: %v", err)
		}
		if e2.Proto != e.Proto || e2.Kind != e.Kind ||
			string(e2.Body) != string(e.Body) || string(e2.Ext) != string(e.Ext) {
			t.Fatalf("round trip drift: %+v vs %+v", e, e2)
		}
	})
}
