//go:build race

package olsr

// raceEnabled reports whether this test binary was built with -race. The
// detector multiplies CPU cost several-fold, which matters to tests whose
// assertions depend on the machine keeping a real-time protocol cadence: a
// grid whose control traffic saturates the host makes timers slip past hold
// times and links flap — real protocol behaviour under starvation, but not
// what an equivalence test is probing. Those tests scale their workload down
// (smaller grid, slower cadence) instead of flaking.
const raceEnabled = true
