package olsr

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"siphoc/internal/netem"
)

func TestHelloCodec(t *testing.T) {
	in := &Hello{Neighbors: []HelloNeighbor{
		{Addr: "a", Link: LinkSym, MPR: true},
		{Addr: "b", Link: LinkAsym},
	}}
	out, err := ParseHello(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("mismatch: %+v vs %+v", in, out)
	}
	if _, err := ParseHello([]byte{0, 9}); err == nil {
		t.Fatal("truncated HELLO accepted")
	}
}

func TestTCCodec(t *testing.T) {
	in := &TC{Orig: "router-7", Seq: 1000, ANSN: 42, TTL: 16, Selectors: []netem.NodeID{"x", "y"}}
	out, err := ParseTC(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("mismatch: %+v vs %+v", in, out)
	}
}

func TestTCCodecQuick(t *testing.T) {
	f := func(orig string, seq, ansn uint16, ttl uint8, sels []string) bool {
		if len(orig) > 500 || len(sels) > 50 {
			return true
		}
		in := &TC{Orig: netem.NodeID(orig), Seq: seq, ANSN: ansn, TTL: ttl}
		for _, s := range sels {
			if len(s) > 500 {
				return true
			}
			in.Selectors = append(in.Selectors, netem.NodeID(s))
		}
		out, err := ParseTC(in.Marshal())
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestANSNOrdering(t *testing.T) {
	cases := []struct {
		a, b  uint16
		older bool
	}{
		{1, 2, true},
		{2, 1, false},
		{5, 5, false},
		{65535, 0, true}, // wraparound
		{0, 65535, false},
	}
	for _, c := range cases {
		if got := ansnOlder(c.a, c.b); got != c.older {
			t.Fatalf("ansnOlder(%d,%d) = %v, want %v", c.a, c.b, got, c.older)
		}
	}
}

// startChain builds an n-node OLSR chain and waits for convergence.
func startChain(t *testing.T, n int) (*netem.Network, []*netem.Host, []*Protocol) {
	t.Helper()
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	t.Cleanup(net.Close)
	hosts, err := netem.Chain(net, n, 90, "10.0.0")
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]*Protocol, n)
	for i, h := range hosts {
		protos[i] = New(h, SimConfig())
		if err := protos[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, p := range protos {
			p.Stop()
		}
	})
	return net, hosts, protos
}

func waitForRoute(t *testing.T, p *Protocol, dst netem.NodeID, timeout time.Duration) netem.NodeID {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if nh, ok := p.NextHop(dst); ok {
			return nh
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no route to %s within %v; table: %+v", dst, timeout, p.Routes())
	return ""
}

func TestProactiveConvergenceOnChain(t *testing.T) {
	_, hosts, protos := startChain(t, 5)
	// End-to-end route appears without any explicit request.
	nh := waitForRoute(t, protos[0], hosts[4].ID(), 10*time.Second)
	if nh != hosts[1].ID() {
		t.Fatalf("NextHop = %v, want %v", nh, hosts[1].ID())
	}
	// Hop counts must be the chain distances.
	for _, e := range protos[0].Routes() {
		switch e.Dst {
		case hosts[1].ID():
			if e.Hops != 1 {
				t.Fatalf("hops to n2 = %d", e.Hops)
			}
		case hosts[4].ID():
			if e.Hops != 4 {
				t.Fatalf("hops to n5 = %d", e.Hops)
			}
		}
	}
}

func TestMPRSelectionOnChain(t *testing.T) {
	_, hosts, protos := startChain(t, 3)
	waitForRoute(t, protos[0], hosts[2].ID(), 10*time.Second)
	// The middle node is the only possible MPR for the endpoints.
	mprs := protos[0].MPRs()
	if len(mprs) != 1 || mprs[0] != hosts[1].ID() {
		t.Fatalf("MPRs of end node = %v, want [%v]", mprs, hosts[1].ID())
	}
	// The middle node needs no MPR: both its 2-hop sets are covered
	// directly.
	if mprs := protos[1].MPRs(); len(mprs) != 0 {
		t.Fatalf("MPRs of middle node = %v, want none", mprs)
	}
}

func TestRequestRouteWaitsForConvergence(t *testing.T) {
	_, hosts, protos := startChain(t, 4)
	// Immediately request before convergence: must still succeed.
	done := make(chan bool, 1)
	protos[0].RequestRoute(hosts[3].ID(), func(ok bool) { done <- ok })
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("RequestRoute failed on a connected topology")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RequestRoute never completed")
	}
}

func TestRequestRouteFailsWhenPartitioned(t *testing.T) {
	net, hosts, protos := startChain(t, 2)
	net.SetLink(hosts[0].ID(), hosts[1].ID(), false)
	done := make(chan bool, 1)
	protos[0].RequestRoute(hosts[1].ID(), func(ok bool) { done <- ok })
	select {
	case ok := <-done:
		if ok {
			t.Fatal("RequestRoute succeeded across a dead link")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RequestRoute never completed")
	}
}

func TestEndToEndDatagramViaOLSR(t *testing.T) {
	_, hosts, protos := startChain(t, 4)
	waitForRoute(t, protos[0], hosts[3].ID(), 10*time.Second)
	cs, err := hosts[0].Listen(100)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := hosts[3].Listen(200)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	defer cd.Close()
	if err := cs.WriteTo([]byte("olsr-data"), hosts[3].ID(), 200); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		if dg, ok := cd.TryRecv(); ok {
			if string(dg.Data) != "olsr-data" {
				t.Fatalf("payload = %q", dg.Data)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatal("datagram never arrived")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestTopologyExpiresAfterNodeDeath(t *testing.T) {
	net, hosts, protos := startChain(t, 3)
	waitForRoute(t, protos[0], hosts[2].ID(), 10*time.Second)
	net.RemoveHost(hosts[2].ID())
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := protos[0].NextHop(hosts[2].ID()); !ok {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("route to dead node never expired")
}

// TestRecomputeCoalescing runs a dense clique where every node hears every
// HELLO/TC: the hold-down coalescing must keep each node's recompute rate
// bounded per interval (instead of one full MPR+route rebuild per arriving
// message) while routes still converge to the 1-hop clique.
func TestRecomputeCoalescing(t *testing.T) {
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	defer net.Close()
	const n = 8
	hosts := make([]*netem.Host, n)
	protos := make([]*Protocol, n)
	for i := range n {
		h, err := net.AddHost(netem.NodeName("c", i+1), netem.Position{X: float64(i) * 5})
		if err != nil {
			t.Fatal(err)
		}
		hosts[i] = h
		protos[i] = New(h, SimConfig())
		if err := protos[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, p := range protos {
			p.Stop()
		}
	}()
	for _, other := range hosts[1:] {
		if nh := waitForRoute(t, protos[0], other.ID(), 10*time.Second); nh != other.ID() {
			t.Fatalf("clique route to %s via %s, want direct", other.ID(), nh)
		}
	}
	before := make([]Stats, n)
	for i, p := range protos {
		before[i] = p.Stats()
	}
	time.Sleep(800 * time.Millisecond)
	// Node 0 hears every control message the others broadcast; without
	// coalescing it would recompute once per arrival.
	var arrivals int64
	for i := 1; i < n; i++ {
		d := protos[i].Stats()
		arrivals += d.HelloSent - before[i].HelloSent
		arrivals += d.TCSent - before[i].TCSent
		arrivals += d.TCFwd - before[i].TCFwd
	}
	rec := protos[0].Stats().Recompute - before[0].Recompute
	if rec*2 > arrivals {
		t.Fatalf("recompute not coalesced: %d recomputes for ~%d control-message arrivals", rec, arrivals)
	}
	// With incremental dirty tracking, a converged clique whose HELLOs
	// re-advertise the same neighbourhood every interval recomputes almost
	// never (stragglers from late convergence are tolerated).
	if rec > 8 {
		t.Fatalf("converged clique still recomputed %d times for ~%d unchanged arrivals", rec, arrivals)
	}
}

func TestGridShortestPaths(t *testing.T) {
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	defer net.Close()
	hosts, err := netem.Grid(net, 3, 3, 90, "g")
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]*Protocol, len(hosts))
	for i, h := range hosts {
		protos[i] = New(h, SimConfig())
		if err := protos[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, p := range protos {
			p.Stop()
		}
	}()
	// Corner g.1 to opposite corner g.9: shortest path is 4 hops
	// (Manhattan distance on the grid; diagonal spacing 127 > range 100).
	waitForRoute(t, protos[0], "g.9", 15*time.Second)
	for _, e := range protos[0].Routes() {
		if e.Dst == "g.9" && e.Hops != 4 {
			t.Fatalf("hops corner-to-corner = %d, want 4", e.Hops)
		}
	}
}
