package olsr

import (
	"math/bits"
	"sort"

	"siphoc/internal/netem"
	"siphoc/internal/routing"
)

// This file is the memory model of the dense-state routing core: an
// append-only interner mapping netem.NodeIDs to small dense indices, a
// pointer-free bitset, and the scratch pools recomputeImpl reuses across
// rebuilds. The point of all three is the same — the `make profile` run that
// motivated them showed the 1024-node ceiling was GC scanning plus Go map
// iteration over routing state, so the hot state moved into slices and
// bitsets indexed by interned node index: pointer-free (the GC never scans
// them), iterable in deterministic dense order (no map-iteration cost, no
// aeshash), and reusable across recomputes (no per-rebuild minting).

// nodeIndex interns NodeIDs into dense uint32 indices, per Protocol
// instance. It is append-only: an index, once assigned, is stable for the
// lifetime of the instance, so every slice-backed store can be indexed by it
// and every hash derived from it stays comparable. Alongside the forward and
// reverse maps it maintains the lexical rank of every interned ID, so the
// recompute path can keep the old string-sorted traversal order — and
// therefore bit-identical route tie-breaks — with integer comparisons.
type nodeIndex struct {
	idx   map[netem.NodeID]uint32
	ids   []netem.NodeID // dense index -> ID
	rank  []uint32       // dense index -> lexical position among interned IDs
	order []uint32       // lexical position -> dense index
}

func newNodeIndex() *nodeIndex {
	return &nodeIndex{idx: make(map[netem.NodeID]uint32)}
}

// len returns the number of interned IDs; valid dense indices are [0, len).
func (x *nodeIndex) len() int { return len(x.ids) }

// lookup returns the dense index for id without interning it.
func (x *nodeIndex) lookup(id netem.NodeID) (uint32, bool) {
	i, ok := x.idx[id]
	return i, ok
}

// lookupBytes is lookup keyed by the raw wire bytes of an ID. The compiler
// elides the string conversion for the map probe, so the receive path can
// resolve known nodes without minting a string per message field.
func (x *nodeIndex) lookupBytes(b []byte) (uint32, bool) {
	i, ok := x.idx[netem.NodeID(b)]
	return i, ok
}

// internBytes is intern keyed by raw wire bytes: a known ID costs one
// allocation-free map probe, and the string copy happens only on first
// sight — i.e. only when the topology actually grows.
func (x *nodeIndex) internBytes(b []byte) uint32 {
	if i, ok := x.idx[netem.NodeID(b)]; ok {
		return i
	}
	return x.intern(netem.NodeID(b))
}

// intern returns the dense index for id, assigning the next free one on
// first sight. Insertion keeps the rank tables consistent in O(n) — new IDs
// only appear on topology growth, never in steady state.
func (x *nodeIndex) intern(id netem.NodeID) uint32 {
	if i, ok := x.idx[id]; ok {
		return i
	}
	i := uint32(len(x.ids))
	x.idx[id] = i
	x.ids = append(x.ids, id)
	pos := sort.Search(len(x.order), func(k int) bool { return x.ids[x.order[k]] > id })
	x.order = append(x.order, 0)
	copy(x.order[pos+1:], x.order[pos:])
	x.order[pos] = i
	x.rank = append(x.rank, 0)
	for k := pos; k < len(x.order); k++ {
		x.rank[x.order[k]] = uint32(k)
	}
	return i
}

// bitset is a dense set over node indices. The backing array is pointer-free
// (the GC never descends into it) and grows monotonically with the interner.
type bitset []uint64

// grow ensures the set can hold indices [0, n).
func (b *bitset) grow(n int) {
	if need := (n + 63) >> 6; len(*b) < need {
		if cap(*b) >= need {
			*b = (*b)[:need]
			return
		}
		nb := make(bitset, need, max(need, 2*cap(*b)))
		copy(nb, *b)
		*b = nb
	}
}

func (b bitset) has(i uint32) bool {
	w := int(i >> 6)
	return w < len(b) && b[w]&(1<<(i&63)) != 0
}

func (b *bitset) set(i uint32) {
	b.grow(int(i) + 1)
	(*b)[i>>6] |= 1 << (i & 63)
}

func (b bitset) unset(i uint32) {
	if w := int(i >> 6); w < len(b) {
		b[w] &^= 1 << (i & 63)
	}
}

// reset clears every bit, keeping the backing array.
func (b bitset) reset() { clear(b) }

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// empty reports whether no bit is set.
func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// andCount returns |b ∩ o| without materializing the intersection — the MPR
// greedy cover calls this once per candidate per round.
func (b bitset) andCount(o bitset) int {
	n := min(len(b), len(o))
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(b[i] & o[i])
	}
	return c
}

// andNot removes every bit of o from b in place.
func (b bitset) andNot(o bitset) {
	n := min(len(b), len(o))
	for i := 0; i < n; i++ {
		b[i] &^= o[i]
	}
}

// forEach calls fn for every set bit in ascending index order.
func (b bitset) forEach(fn func(uint32)) {
	for w, word := range b {
		for word != 0 {
			fn(uint32(w<<6 + bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}

// mix64 hashes one link-state element (kind, a, b are dense indices) with a
// splitmix64 finalizer. Per-element hashes are summed so the combined input
// hash is independent of iteration order, exactly like the string-keyed
// hashEdge it replaces — but at a handful of integer ops instead of an
// FNV walk over two strings.
func mix64(kind byte, a, b uint32) uint64 {
	x := uint64(kind)<<58 | uint64(a)<<29 | uint64(b)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// recomputeScratch is the pooled working memory of recomputeImpl, reused
// across rebuilds under the protocol mutex. Before pooling, the BFS scratch
// (visited set, queue, adjacency lists, route map) plus the fresh table map
// minted per rebuild accounted for 61% of all bytes the 1024-node scale
// study allocated; with the pool, a steady-state rebuild allocates nothing
// once the high-water topology size has been seen.
type recomputeScratch struct {
	symNbs    []uint32   // symmetric 1-hop neighbours, lexical (rank) order
	uncovered bitset     // 2-hop nodes not yet covered by an MPR
	mprNew    bitset     // MPR set under construction (swapped into place)
	adj       [][]uint32 // dense adjacency lists, truncated and refilled
	dist      []int32    // BFS hop count; 0 = unvisited
	next      []uint32   // BFS first hop, valid where dist > 0
	queue     []uint32   // BFS frontier
	entries   []routing.Entry // route rows handed to Table.Replace, which copies
}

// grow sizes every scratch structure for n interned nodes.
func (s *recomputeScratch) grow(n int) {
	s.uncovered.grow(n)
	s.mprNew.grow(n)
	for len(s.adj) < n {
		s.adj = append(s.adj, nil)
	}
	for len(s.dist) < n {
		s.dist = append(s.dist, 0)
	}
	for len(s.next) < n {
		s.next = append(s.next, 0)
	}
}
