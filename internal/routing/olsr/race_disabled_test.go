//go:build !race

package olsr

const raceEnabled = false
