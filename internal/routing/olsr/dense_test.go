package olsr

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/routing"
)

// ---------------------------------------------------------------------------
// Map-backed reference model
//
// refModel is the string-keyed, map-backed OLSR state machine this package
// used before the dense-state rewrite, retained verbatim as an executable
// specification: the property test below drives the dense core and this
// model through the same random op sequence and demands bit-identical route
// tables at every step. If the interner, the bitsets or the pooled BFS ever
// diverge from the map semantics — tie-breaks, expiry edges, ANSN purges —
// this is the test that names the op sequence that did it.
// ---------------------------------------------------------------------------

type refLink struct {
	lastHeard time.Time
	sym       bool
}

type refTopo struct {
	ansn    uint16
	expires time.Time
}

type refModel struct {
	self         netem.NodeID
	neighborHold time.Duration
	topologyHold time.Duration
	links        map[netem.NodeID]*refLink
	twoHop       map[netem.NodeID]map[netem.NodeID]bool
	selectors    map[netem.NodeID]time.Time
	topology     map[netem.NodeID]map[netem.NodeID]refTopo
}

func newRefModel(self netem.NodeID, cfg Config) *refModel {
	return &refModel{
		self:         self,
		neighborHold: cfg.NeighborHold,
		topologyHold: cfg.TopologyHold,
		links:        make(map[netem.NodeID]*refLink),
		twoHop:       make(map[netem.NodeID]map[netem.NodeID]bool),
		selectors:    make(map[netem.NodeID]time.Time),
		topology:     make(map[netem.NodeID]map[netem.NodeID]refTopo),
	}
}

func (r *refModel) onHello(now time.Time, from netem.NodeID, m *Hello) {
	ls, ok := r.links[from]
	if !ok {
		ls = &refLink{}
		r.links[from] = ls
	}
	ls.lastHeard = now
	sym := false
	for _, nb := range m.Neighbors {
		if nb.Addr == r.self {
			sym = true
			if nb.MPR {
				r.selectors[from] = now.Add(r.neighborHold)
			}
		}
	}
	ls.sym = sym
	set := make(map[netem.NodeID]bool)
	for _, nb := range m.Neighbors {
		if nb.Addr == r.self || nb.Link != LinkSym {
			continue
		}
		set[nb.Addr] = true
	}
	r.twoHop[from] = set
}

func (r *refModel) onTC(now time.Time, m *TC) {
	if m.Orig == r.self {
		return
	}
	tm := r.topology[m.Orig]
	if tm == nil {
		tm = make(map[netem.NodeID]refTopo)
		r.topology[m.Orig] = tm
	}
	for _, sel := range m.Selectors {
		if cur, ok := tm[sel]; !ok || !ansnOlder(m.ANSN, cur.ansn) {
			tm[sel] = refTopo{ansn: m.ANSN, expires: now.Add(r.topologyHold)}
		}
	}
	for dest, v := range tm {
		if ansnOlder(v.ansn, m.ANSN) {
			delete(tm, dest)
		}
	}
	if len(tm) == 0 {
		delete(r.topology, m.Orig)
	}
}

func (r *refModel) expire(now time.Time) {
	for nb, ls := range r.links {
		if now.Sub(ls.lastHeard) > r.neighborHold {
			delete(r.links, nb)
			delete(r.twoHop, nb)
		}
	}
	for nb, exp := range r.selectors {
		if now.After(exp) {
			delete(r.selectors, nb)
		}
	}
	for orig, tm := range r.topology {
		for dest, v := range tm {
			if now.After(v.expires) {
				delete(tm, dest)
			}
		}
		if len(tm) == 0 {
			delete(r.topology, orig)
		}
	}
}

// routes runs the original greedy-MPR + BFS recompute and returns the route
// table sorted by destination, plus the selected MPR set.
func (r *refModel) routes(now time.Time) ([]routing.Entry, []netem.NodeID) {
	symNbs := make([]netem.NodeID, 0, len(r.links))
	for nb, ls := range r.links {
		if ls.sym {
			symNbs = append(symNbs, nb)
		}
	}
	uncovered := make(map[netem.NodeID]bool)
	for _, nb := range symNbs {
		for two := range r.twoHop[nb] {
			if two == r.self {
				continue
			}
			if l, direct := r.links[two]; direct && l.sym {
				continue
			}
			uncovered[two] = true
		}
	}
	mprs := make(map[netem.NodeID]bool)
	for len(uncovered) > 0 {
		var best netem.NodeID
		bestCover := 0
		for _, nb := range symNbs {
			if mprs[nb] {
				continue
			}
			cover := 0
			for two := range r.twoHop[nb] {
				if uncovered[two] {
					cover++
				}
			}
			if cover > bestCover || (cover == bestCover && cover > 0 && (best == "" || nb < best)) {
				best, bestCover = nb, cover
			}
		}
		if bestCover == 0 {
			break
		}
		mprs[best] = true
		for two := range r.twoHop[best] {
			delete(uncovered, two)
		}
	}

	sort.Slice(symNbs, func(i, j int) bool { return symNbs[i] < symNbs[j] })
	type hop struct {
		next netem.NodeID
		dist int
	}
	routes := make(map[netem.NodeID]hop)
	queue := make([]netem.NodeID, 0, len(symNbs))
	for _, nb := range symNbs {
		routes[nb] = hop{next: nb, dist: 1}
		queue = append(queue, nb)
	}
	adj := make(map[netem.NodeID][]netem.NodeID)
	for orig, tm := range r.topology {
		for dest, v := range tm {
			if now.After(v.expires) {
				continue
			}
			adj[orig] = append(adj[orig], dest)
			adj[dest] = append(adj[dest], orig)
		}
	}
	for nb, set := range r.twoHop {
		for two := range set {
			adj[nb] = append(adj[nb], two)
		}
	}
	for _, edges := range adj {
		sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		curHop := routes[cur]
		for _, nxt := range adj[cur] {
			if nxt == r.self {
				continue
			}
			if _, seen := routes[nxt]; seen {
				continue
			}
			routes[nxt] = hop{next: curHop.next, dist: curHop.dist + 1}
			queue = append(queue, nxt)
		}
	}
	entries := make([]routing.Entry, 0, len(routes))
	for dst, h := range routes {
		entries = append(entries, routing.Entry{Dst: dst, NextHop: h.next, Hops: h.dist})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Dst < entries[j].Dst })
	mprList := make([]netem.NodeID, 0, len(mprs))
	for id := range mprs {
		mprList = append(mprList, id)
	}
	sort.Slice(mprList, func(i, j int) bool { return mprList[i] < mprList[j] })
	return entries, mprList
}

// densePropConfig is the timing the property test runs at: short explicit
// holds so the random clock advances exercise expiry, revival and purge
// paths, not just steady refresh.
func densePropConfig(fake *clock.Fake) Config {
	return Config{
		HelloInterval: 100 * time.Millisecond,
		TCInterval:    200 * time.Millisecond,
		NeighborHold:  300 * time.Millisecond,
		TopologyHold:  500 * time.Millisecond,
		Clock:         fake,
	}.withDefaults()
}

// TestDenseReferenceEquivalence drives the dense-state core and the
// map-backed reference model through the same seeded random op sequence —
// HELLO arrivals with random neighbourhoods, TC arrivals with advancing and
// stale ANSNs, clock jumps, expiry sweeps — and asserts the recomputed route
// table and MPR set are identical after every op.
func TestDenseReferenceEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 42, 20260809} {
		t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			net := netem.NewNetwork(netem.Config{})
			defer net.Close()
			host, err := net.AddHost("self", netem.Position{})
			if err != nil {
				t.Fatal(err)
			}
			fake := clock.NewFake(time.Unix(1_000_000, 0))
			cfg := densePropConfig(fake)
			p := New(host, cfg) // not started: ops drive it directly
			model := newRefModel(host.ID(), cfg)

			// A fixed universe of node IDs, a deliberate mix of lengths so
			// lexical order differs from generation order.
			ids := make([]netem.NodeID, 0, 24)
			for i := range 24 {
				ids = append(ids, netem.NodeID(fmt.Sprintf("n%d", i+1)))
			}
			ansn := make(map[netem.NodeID]uint16)
			seq := uint16(0)

			randomSubset := func(includeSelf bool) []netem.NodeID {
				k := rng.Intn(6)
				perm := rng.Perm(len(ids))
				out := make([]netem.NodeID, 0, k+1)
				for _, j := range perm[:k] {
					out = append(out, ids[j])
				}
				if includeSelf && rng.Intn(2) == 0 {
					out = append(out, "self")
				}
				return out
			}

			const ops = 600
			for op := 0; op < ops; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // HELLO
					from := ids[rng.Intn(len(ids))]
					m := &Hello{}
					for _, addr := range randomSubset(true) {
						link := LinkSym
						if rng.Intn(4) == 0 {
							link = LinkAsym
						}
						m.Neighbors = append(m.Neighbors, HelloNeighbor{
							Addr: addr,
							Link: link,
							MPR:  rng.Intn(3) == 0,
						})
					}
					now := fake.Now()
					p.onHello(from, m)
					model.onHello(now, from, m)
				case 4, 5, 6: // TC
					orig := ids[rng.Intn(len(ids))]
					if rng.Intn(3) != 0 {
						ansn[orig]++ // sometimes re-advertise the old ANSN
					}
					seq++
					m := &TC{Orig: orig, Seq: seq, ANSN: ansn[orig], TTL: 1,
						Selectors: randomSubset(false)}
					now := fake.Now()
					p.onTC(orig, m)
					model.onTC(now, m)
				case 7, 8: // time passes
					fake.Advance(time.Duration(rng.Intn(120)) * time.Millisecond)
				case 9: // expiry sweep
					now := fake.Now()
					p.expire()
					model.expire(now)
				}
				p.recomputeFull()
				now := fake.Now()
				got := p.Routes()
				want, wantMPRs := model.routes(now)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("op %d: dense core diverged from map reference:\ndense: %+v\nref:   %+v",
						op, got, want)
				}
				gotMPRs := p.MPRs()
				sort.Slice(gotMPRs, func(i, j int) bool { return gotMPRs[i] < gotMPRs[j] })
				if !reflect.DeepEqual(gotMPRs, wantMPRs) {
					t.Fatalf("op %d: MPR set diverged:\ndense: %v\nref:   %v", op, gotMPRs, wantMPRs)
				}
			}
		})
	}
}

// TestTCSteadyStateZeroAlloc pins steady-state per-TC processing at 0
// allocations: once the origin's edges are installed and every selector is
// interned, a refresh TC (new seq, same ANSN and selector set) must update
// expiries, maintain the duplicate set and allocate nothing. The tiny
// TCInterval makes each call prune the previous seq's dup entry, so the dup
// map and heap stay at their steady-state size instead of growing.
func TestTCSteadyStateZeroAlloc(t *testing.T) {
	net := netem.NewNetwork(netem.Config{})
	defer net.Close()
	h, err := net.AddHost("self", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	p := New(h, Config{TCInterval: time.Nanosecond, TopologyHold: time.Hour}.withDefaults())
	// One marshalled body reused across runs with only the seq bytes
	// patched, exactly as the wire path sees refresh TCs: the pin covers
	// parse, duplicate-set maintenance and edge refresh together.
	m := &TC{Orig: "orig", Seq: 0, ANSN: 7, TTL: 1,
		Selectors: []netem.NodeID{"a", "b", "c"}}
	body := m.Marshal()
	seqOff := 2 + len(m.Orig)
	seq := m.Seq
	send := func() {
		seq++
		binary.BigEndian.PutUint16(body[seqOff:], seq)
		p.handleTC("n1", body)
	}
	send() // installs edges, interns all IDs
	if allocs := testing.AllocsPerRun(200, send); allocs != 0 {
		t.Fatalf("steady-state onTC allocates %.1f times per run, want 0", allocs)
	}
	if st := p.Stats(); st.Recompute != 0 {
		t.Fatalf("refresh TCs executed %d recomputes", st.Recompute)
	}
}

// TestRecomputeAllocBound is the recompute-allocation regression bound: with
// the pooled scratch and the double-buffered table, a full rebuild over a
// settled topology must not allocate at all once the pools have seen the
// topology's high-water size. Before the dense-state rewrite this path
// minted fresh maps and slices on every rebuild — 77% of all bytes the
// 1024-node scale study allocated.
func TestRecomputeAllocBound(t *testing.T) {
	net := netem.NewNetwork(netem.Config{})
	defer net.Close()
	h, err := net.AddHost("self", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	p := New(h, Config{TopologyHold: time.Hour, NeighborHold: time.Hour}.withDefaults())
	// A 3-hop deep topology: 6 sym neighbours, each advertising a 2-hop
	// neighbourhood, plus TC edges extending the BFS outward.
	for i := range 6 {
		nb := netem.NodeID(fmt.Sprintf("nb%d", i))
		m := &Hello{Neighbors: []HelloNeighbor{
			{Addr: "self", Link: LinkSym},
			{Addr: netem.NodeID(fmt.Sprintf("two%d", i)), Link: LinkSym},
			{Addr: netem.NodeID(fmt.Sprintf("two%d", (i+1)%6)), Link: LinkSym},
		}}
		p.onHello(nb, m)
	}
	for i := range 6 {
		p.onTC("ignored", &TC{
			Orig: netem.NodeID(fmt.Sprintf("two%d", i)), Seq: uint16(i + 1), ANSN: 1, TTL: 1,
			Selectors: []netem.NodeID{netem.NodeID(fmt.Sprintf("far%d", i))},
		})
	}
	p.recomputeFull() // warm the pools at this topology size
	if len(p.Routes()) < 12 {
		t.Fatalf("topology too small to be a meaningful pin: %d routes", len(p.Routes()))
	}
	if allocs := testing.AllocsPerRun(100, p.recomputeFull); allocs != 0 {
		t.Fatalf("settled full recompute allocates %.1f times per run, want 0", allocs)
	}
}
