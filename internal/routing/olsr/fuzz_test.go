package olsr

import (
	"siphoc/internal/netem"

	"reflect"
	"testing"
)

func FuzzParseHello(f *testing.F) {
	f.Add((&Hello{Neighbors: []HelloNeighbor{{Addr: "a", Link: LinkSym, MPR: true}}}).Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseHello(data)
		if err != nil {
			return
		}
		m2, err := ParseHello(m.Marshal())
		if err != nil {
			t.Fatalf("round trip parse: %v", err)
		}
		if len(m.Neighbors) != len(m2.Neighbors) {
			t.Fatalf("round trip drift: %+v vs %+v", m, m2)
		}
	})
}

func FuzzParseTC(f *testing.F) {
	f.Add((&TC{Orig: "a", Seq: 1, ANSN: 2, TTL: 3, Selectors: []netem.NodeID{"x"}}).Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseTC(data)
		if err != nil {
			return
		}
		m2, err := ParseTC(m.Marshal())
		if err != nil || !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip: %+v vs %+v (%v)", m, m2, err)
		}
	})
}
