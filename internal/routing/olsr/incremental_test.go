package olsr

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"siphoc/internal/netem"
)

// gridConfig returns protocol timing sustainable for a ~100-node grid on
// modest hardware. SimConfig's 40 ms HELLO / 80 ms TC is fine for small
// chains and cliques, but at 100 nodes the O(N²) TC flood volume outruns
// available CPU, timers slip past the hold times and links flap — churn
// that is real protocol behaviour under starvation, not a bug to hide.
// Under the race detector the same reasoning applies one level up: the
// several-fold instrumentation cost turns even this cadence into
// starvation on small hosts, so the intervals stretch further.
func gridConfig() Config {
	if raceEnabled {
		return Config{
			HelloInterval: 400 * time.Millisecond,
			TCInterval:    time.Second,
			RouteWait:     15 * time.Second,
		}
	}
	return Config{
		HelloInterval: 200 * time.Millisecond,
		TCInterval:    500 * time.Millisecond,
		RouteWait:     15 * time.Second,
	}
}

// goldenGridSide is the grid edge for the quiescence-checkpoint tests:
// 10×10 normally, scaled down under -race so the TC flood (O(N²) forwarded
// volume) stays inside what an instrumented single-core host can process at
// protocol cadence — otherwise the grid never quiesces and the test flakes
// on load, not on correctness.
func goldenGridSide() int {
	if raceEnabled {
		return 6
	}
	return 10
}

// startGrid builds a side×side OLSR grid with 80 m spacing (4-neighbour
// connectivity at 100 m range) and returns the network and protocols.
func startGrid(t *testing.T, side int) (*netem.Network, []*netem.Host, []*Protocol) {
	t.Helper()
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	t.Cleanup(net.Close)
	hosts, err := netem.Grid(net, side, side, 80, "g")
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]*Protocol, len(hosts))
	for i, h := range hosts {
		protos[i] = New(h, gridConfig())
		if err := protos[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, p := range protos {
			p.Stop()
		}
	})
	return net, hosts, protos
}

// waitQuiescent blocks until no node has executed a recompute for a full
// stability window: at that point every scheduled trailing rebuild has
// drained, so the incremental tables are in sync with the link-state inputs
// and a golden comparison races nothing. (The hold-down coalescing lets the
// table legitimately lag arrivals by HelloInterval/2, so comparing while
// changes are still propagating would report phantom divergence.)
func waitQuiescent(t *testing.T, protos []*Protocol, timeout time.Duration) {
	t.Helper()
	total := func() int64 {
		var n int64
		for _, p := range protos {
			n += p.Stats().Recompute
		}
		return n
	}
	const stable = 1 * time.Second
	deadline := time.Now().Add(timeout)
	last, since := total(), time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		if cur := total(); cur != last {
			last, since = cur, time.Now()
			continue
		}
		if time.Since(since) >= stable {
			return
		}
	}
	t.Fatalf("network never quiesced within %v (recomputes still advancing)", timeout)
}

// checkGolden asserts, for every node, that the incrementally maintained
// table is bit-identical to a forced full MPR+BFS rebuild from the same
// link-state inputs. The network must be quiescent when called.
func checkGolden(t *testing.T, protos []*Protocol, phase string) {
	t.Helper()
	for i, p := range protos {
		before := p.Routes()
		p.recomputeFull()
		after := p.Routes()
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("%s: node %d incremental table diverged from full recompute:\nincremental: %+v\nfull:        %+v",
				phase, i, before, after)
		}
	}
}

// TestIncrementalFullEquivalenceGolden drives a seeded random-waypoint
// mobility trace over a 10×10 grid and, at every quiescent checkpoint,
// verifies the incremental route maintenance (dirty tracking + input-hash
// skipping) produces exactly the table a full recompute would.
func TestIncrementalFullEquivalenceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("mobility trace too slow for -short")
	}
	side := goldenGridSide()
	net, hosts, protos := startGrid(t, side)

	// Let the static grid converge corner-to-corner, drain the trailing
	// rebuilds, then check the baseline.
	waitForRoute(t, protos[0], hosts[len(hosts)-1].ID(), 30*time.Second)
	waitQuiescent(t, protos, 30*time.Second)
	checkGolden(t, protos, "static grid")

	// Seeded mobility: a few movement bursts, each followed by a settle
	// to quiescence so in-flight updates drain before the equivalence
	// check. The arena tracks the grid footprint (80 m spacing).
	arena := float64(side) * 80
	wp := netem.NewWaypoint(net, arena, arena, 20, 40, 42)
	for burst := range 3 {
		for range 5 {
			wp.Step(0.5)
			time.Sleep(30 * time.Millisecond)
		}
		waitQuiescent(t, protos, 30*time.Second)
		checkGolden(t, protos, fmt.Sprintf("after mobility burst %d", burst))
	}
}

// TestRecomputeRegressionBound pins the control-plane win: on a converged
// static 10×10 grid, steady-state HELLO/TC refreshes re-advertise unchanged
// state, so executed recomputes per node over a measurement window must stay
// far below both the arrival count and the coalesced PR-3 baseline (which
// still ran one rebuild per hold-down window, ~2/interval/node).
func TestRecomputeRegressionBound(t *testing.T) {
	if testing.Short() {
		t.Skip("grid convergence too slow for -short")
	}
	_, hosts, protos := startGrid(t, goldenGridSide())
	// Converge: opposite corners route to each other.
	last := hosts[len(hosts)-1].ID()
	waitForRoute(t, protos[0], last, 30*time.Second)
	waitForRoute(t, protos[len(protos)-1], hosts[0].ID(), 30*time.Second)
	waitQuiescent(t, protos, 30*time.Second)

	before := make([]Stats, len(protos))
	for i, p := range protos {
		before[i] = p.Stats()
	}
	const window = 2 * time.Second
	time.Sleep(window)

	var arrivals, recomputes int64
	for i, p := range protos {
		d := p.Stats()
		arrivals += (d.HelloSent - before[i].HelloSent) +
			(d.TCSent - before[i].TCSent) + (d.TCFwd - before[i].TCFwd)
		recomputes += d.Recompute - before[i].Recompute
	}
	if arrivals == 0 {
		t.Fatal("no control traffic during the window")
	}
	// The PR-3 coalescing baseline bound (recomputes ≤ arrivals/2) must
	// still hold with a wide margin…
	if recomputes*2 > arrivals {
		t.Fatalf("recompute rate regressed past the coalescing baseline: %d recomputes for %d emissions",
			recomputes, arrivals)
	}
	// …and the incremental scheme must make steady state O(topology
	// changes), i.e. near-zero on a static grid, not O(messages).
	if max := int64(3 * len(protos)); recomputes > max {
		t.Fatalf("steady-state recomputes = %d over %v for %d nodes (want ≤ %d): not O(changes)",
			recomputes, window, len(protos), max)
	}
}

// TestHelloSteadyStateZeroAlloc pins steady-state per-HELLO processing at 0
// allocations: once the link and 2-hop set are installed, an unchanged HELLO
// must compare in place and schedule nothing.
func TestHelloSteadyStateZeroAlloc(t *testing.T) {
	net := netem.NewNetwork(netem.Config{})
	defer net.Close()
	h, err := net.AddHost("self", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	p := New(h, SimConfig()) // not started: no timers interfere with the count
	m := &Hello{Neighbors: []HelloNeighbor{
		{Addr: "self", Link: LinkSym},
		{Addr: "n2", Link: LinkSym},
		{Addr: "n3", Link: LinkSym},
		{Addr: "n4", Link: LinkAsym},
	}}
	// Pin the wire path itself: the frame handler hands handleHello the raw
	// body, so the pre-marshalled bytes here measure exactly what a received
	// broadcast costs — parse, link sensing, 2-hop compare.
	body := m.Marshal()
	p.handleHello("n1", body) // installs link + 2-hop set
	if allocs := testing.AllocsPerRun(200, func() { p.handleHello("n1", body) }); allocs != 0 {
		t.Fatalf("steady-state HELLO processing allocates %.1f times per run, want 0", allocs)
	}
	// The unchanged arrivals must not have dirtied the route state.
	if st := p.Stats(); st.Recompute != 0 {
		t.Fatalf("unchanged HELLOs executed %d recomputes", st.Recompute)
	}
}

// TestInputHashSkipsIdenticalRebuild exercises the second line of defence:
// recompute() invoked with unchanged inputs (e.g. the trailing hold-down
// rebuild) must skip the MPR+BFS work and count the skip.
func TestInputHashSkipsIdenticalRebuild(t *testing.T) {
	net := netem.NewNetwork(netem.Config{})
	defer net.Close()
	h, err := net.AddHost("self", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	p := New(h, SimConfig())
	p.onHello("n1", &Hello{Neighbors: []HelloNeighbor{
		{Addr: "self", Link: LinkSym},
		{Addr: "n2", Link: LinkSym},
	}})
	p.recompute()
	st := p.Stats()
	if st.Recompute != 1 {
		t.Fatalf("first recompute executed %d rebuilds, want 1", st.Recompute)
	}
	routes := p.Routes()
	if len(routes) == 0 {
		t.Fatal("no routes after first recompute")
	}
	p.recompute() // identical inputs: must be elided
	st = p.Stats()
	if st.Recompute != 1 || st.RecomputeSkipped == 0 {
		t.Fatalf("identical rebuild not skipped: %+v", st)
	}
	if !reflect.DeepEqual(routes, p.Routes()) {
		t.Fatal("skipped rebuild changed the table")
	}
	// A real change must defeat the hash and rebuild.
	p.onHello("n5", &Hello{Neighbors: []HelloNeighbor{{Addr: "self", Link: LinkSym}}})
	p.recompute()
	if st = p.Stats(); st.Recompute != 2 {
		t.Fatalf("changed inputs did not rebuild: %+v", st)
	}
}
