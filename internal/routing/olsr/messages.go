package olsr

import (
	"fmt"

	"siphoc/internal/netem"
	"siphoc/internal/wire"
)

// Message kinds carried in the routing envelope for ProtoOLSR.
const (
	KindHello uint8 = iota + 1
	KindTC
)

// KindName returns the RFC 3626 message name.
func KindName(k uint8) string {
	switch k {
	case KindHello:
		return "HELLO"
	case KindTC:
		return "TC"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// Link codes advertised for neighbours in HELLO messages (RFC 3626 link
// types, reduced to the two we need).
const (
	LinkAsym uint8 = 1 // heard, not confirmed bidirectional
	LinkSym  uint8 = 2 // confirmed bidirectional
)

// HelloNeighbor is one neighbour entry in a HELLO.
type HelloNeighbor struct {
	Addr netem.NodeID
	Link uint8
	MPR  bool // the sender selected this neighbour as an MPR
}

// Hello is the periodic 1-hop broadcast used for link sensing, neighbour
// detection and MPR signalling (RFC 3626 §6).
type Hello struct {
	Neighbors []HelloNeighbor
}

// Marshal encodes the hello body.
func (m *Hello) Marshal() []byte {
	w := wire.NewWriter(8 + 24*len(m.Neighbors))
	w.U16(uint16(len(m.Neighbors)))
	for _, nb := range m.Neighbors {
		w.String(string(nb.Addr))
		w.U8(nb.Link)
		if nb.MPR {
			w.U8(1)
		} else {
			w.U8(0)
		}
	}
	return w.Bytes()
}

// ParseHello decodes a hello body.
func ParseHello(b []byte) (*Hello, error) {
	r := wire.NewReader(b)
	n := int(r.U16())
	m := &Hello{}
	for range n {
		nb := HelloNeighbor{Addr: netem.NodeID(r.String())}
		nb.Link = r.U8()
		nb.MPR = r.U8() == 1
		m.Neighbors = append(m.Neighbors, nb)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("olsr: parse HELLO: %w", err)
	}
	return m, nil
}

// TC is a topology-control message flooded through the MPR backbone
// (RFC 3626 §9): the originator advertises links to its MPR selectors.
type TC struct {
	Orig      netem.NodeID
	Seq       uint16 // per-originator message sequence for duplicate detection
	ANSN      uint16 // advertised neighbour sequence number
	TTL       uint8
	Selectors []netem.NodeID
}

// Marshal encodes the TC body.
func (m *TC) Marshal() []byte {
	w := wire.NewWriter(16 + 20*len(m.Selectors))
	w.String(string(m.Orig))
	w.U16(m.Seq)
	w.U16(m.ANSN)
	w.U8(m.TTL)
	w.U16(uint16(len(m.Selectors)))
	for _, s := range m.Selectors {
		w.String(string(s))
	}
	return w.Bytes()
}

// ParseTC decodes a TC body.
func ParseTC(b []byte) (*TC, error) {
	r := wire.NewReader(b)
	m := &TC{Orig: netem.NodeID(r.String())}
	m.Seq = r.U16()
	m.ANSN = r.U16()
	m.TTL = r.U8()
	n := int(r.U16())
	for range n {
		m.Selectors = append(m.Selectors, netem.NodeID(r.String()))
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("olsr: parse TC: %w", err)
	}
	return m, nil
}
