// Package olsr implements the Optimized Link State Routing protocol
// (Clausen & Jacquet, RFC 3626) over the netem link layer: periodic HELLO
// messages for link sensing and MPR selection, TC messages flooded through
// the MPR backbone, and shortest-path route computation over the resulting
// topology. It is the proactive counterpart to AODV in the paper's system.
package olsr

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/obs"
	"siphoc/internal/routing"
	"siphoc/internal/wire"
)

// Config tunes protocol timing; the zero value is completed with RFC 3626
// defaults. Simulations scale the intervals down with SimConfig.
type Config struct {
	// HelloInterval is the HELLO emission period (default 2s).
	HelloInterval time.Duration
	// TCInterval is the TC emission period (default 5s).
	TCInterval time.Duration
	// NeighborHold is how long a silent neighbour stays valid
	// (default 3×HelloInterval).
	NeighborHold time.Duration
	// TopologyHold is how long unrefreshed topology tuples stay valid
	// (default 3×TCInterval).
	TopologyHold time.Duration
	// RouteWait is how long RequestRoute waits for convergence before
	// giving up (default 3×TCInterval).
	RouteWait time.Duration
	// MaxTTL bounds TC flooding (default 32).
	MaxTTL uint8
	// Clock is the time source (default the system clock).
	Clock clock.Clock
	// Obs records route-wait spans and latency. Nil disables.
	Obs *obs.Observer
	// Sched, when set, runs every protocol timer (HELLO/TC emission, the
	// recompute hold-down window, RequestRoute convergence polling) on the
	// shared sharded event loop instead of per-node goroutines. Timer
	// cadence is identical either way; only the goroutine cost changes
	// (O(shards) for the whole network instead of 2+ per node).
	Sched *clock.Scheduler
	// Fisheye enables fisheye TC scoping (FSR-style graded refresh): TCs
	// normally carry FisheyeNearTTL so only the near zone sees every
	// refresh, and the full-MaxTTL flood is decimated to every
	// FisheyeFarEvery-th emission. Each node offsets its full-flood rounds
	// by a hash of its own ID, so the network's far floods spread evenly
	// across rounds instead of bursting in lockstep — at 1024 nodes a
	// synchronized far round is a quarter-million forwards in one beat.
	// Far zones therefore learn of changes at the far cadence; that lag is
	// the fisheye design point (paths correct themselves as packets
	// approach the destination), and what buys the O(near zone) steady
	// cost. With Fisheye on, the ANSN advances only on selector-set
	// changes (as RFC 3626 specifies), which lets far nodes refresh tuple
	// expiries from decimated floods without tearing down still-valid
	// state.
	Fisheye bool
	// FisheyeNearTTL is the TC TTL for near-zone (decimated) emissions
	// (default 8).
	FisheyeNearTTL uint8
	// FisheyeFarEvery sends every n-th TC at full MaxTTL (default 4).
	// TopologyHold is floored at (2×FisheyeFarEvery+2)×TCInterval so
	// far-zone tuples survive a missed full flood.
	FisheyeFarEvery int
}

func (c Config) withDefaults() Config {
	if c.HelloInterval == 0 {
		c.HelloInterval = 2 * time.Second
	}
	if c.TCInterval == 0 {
		c.TCInterval = 5 * time.Second
	}
	if c.NeighborHold == 0 {
		c.NeighborHold = 3 * c.HelloInterval
	}
	if c.TopologyHold == 0 {
		c.TopologyHold = 3 * c.TCInterval
	}
	if c.FisheyeNearTTL == 0 {
		c.FisheyeNearTTL = 8
	}
	if c.FisheyeFarEvery <= 0 {
		c.FisheyeFarEvery = 4
	}
	if c.Fisheye {
		// Far-zone tuples are refreshed only every FisheyeFarEvery-th TC
		// round; hold them for two such periods plus slack so a single
		// late or lost far flood (timer slip under CPU saturation, a
		// dropped relay) does not expire half the topology and collapse
		// the route table network-wide.
		if min := time.Duration(2*c.FisheyeFarEvery+2) * c.TCInterval; c.TopologyHold < min {
			c.TopologyHold = min
		}
	}
	if c.RouteWait == 0 {
		c.RouteWait = 3 * c.TCInterval
	}
	if c.MaxTTL == 0 {
		c.MaxTTL = 32
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	return c
}

// DefaultConfig returns RFC 3626 timing.
func DefaultConfig() Config { return Config{}.withDefaults() }

// SimConfig returns timing scaled for fast in-memory simulation.
func SimConfig() Config {
	return Config{
		HelloInterval: 40 * time.Millisecond,
		TCInterval:    80 * time.Millisecond,
		// Cold-start convergence of a long chain takes several
		// hello+TC rounds; give callers ample slack.
		RouteWait: 3 * time.Second,
	}.withDefaults()
}

// Stats counts protocol activity for overhead experiments.
type Stats struct {
	HelloSent int64
	TCSent    int64
	TCFwd     int64
	// Recompute counts full MPR+route rebuilds actually executed.
	Recompute int64
	// RecomputeSkipped counts scheduled rebuilds elided because the
	// link-state inputs (sym links, 2-hop sets, topology edges) hashed
	// identical to the last executed rebuild.
	RecomputeSkipped int64
}

// linkState is one live link tuple, indexed by the neighbour's dense index.
// Timestamps are int64 nanoseconds rather than time.Time so the whole links
// slice is pointer-free: a time.Time carries a *Location the GC must chase,
// and GC scanning of routing state is exactly what this core is built to
// avoid.
type linkState struct {
	lastHeardNs int64
	sym         bool
}

// topoEdge is one TC-advertised out-edge of an origin: the MPR selector it
// points at (dense index), the ANSN that advertised it and its expiry.
// Pointer-free for the same reason as linkState.
type topoEdge struct {
	expiresNs int64
	dest      uint32
	ansn      uint16
}

type dupKey struct {
	orig uint32 // dense index of the TC originator
	seq  uint16
}

type dupVal struct {
	fwd bool // already retransmitted through the MPR backbone
}

// dupHardCap bounds the duplicate set: at 1024 nodes a single TC round puts
// ~N entries here, so without a cap a long-running node grows it without
// bound between the old opportunistic sweeps. Same bug class — and same
// deadline-heap fix — as the SLP seenQ hard cap.
const dupHardCap = 8192

// dupQItem pairs a duplicate-set key with its expiry for lazy heap pruning.
type dupQItem struct {
	key       dupKey
	expiresNs int64
}

// dupHeap is a min-heap on expiresNs. Keys are pushed exactly once (a dupKey
// is inserted into the map exactly once), so each heap item maps to one map
// entry and popping may delete unconditionally. The heap is hand-rolled
// rather than container/heap because the interface-based API boxes every
// pushed item — an allocation per received TC on what must be a zero-alloc
// steady-state path.
type dupHeap []dupQItem

func (h *dupHeap) push(it dupQItem) {
	q := append(*h, it)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].expiresNs <= q[i].expiresNs {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

func (h *dupHeap) pop() dupQItem {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	*h = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && q[l].expiresNs < q[s].expiresNs {
			s = l
		}
		if r < n && q[r].expiresNs < q[s].expiresNs {
			s = r
		}
		if s == i {
			break
		}
		q[i], q[s] = q[s], q[i]
		i = s
	}
	return top
}

// Protocol is an OLSR instance bound to one host.
//
// All hot routing state is dense: node IDs are interned to uint32 indices
// (append-only, per instance) and the per-node stores are slices and bitsets
// indexed by them. The previous string-keyed maps made the steady-state cost
// of this protocol GC scanning plus map iteration — at 1024 nodes the
// profile's top lines were runtime.findObject/scanobject and
// maps.(*Iter).Next, not protocol work. Slices of pointer-free structs are
// invisible to the GC, iterate at memory bandwidth in deterministic order,
// and never rehash.
type Protocol struct {
	host *netem.Host
	cfg  Config
	clk  clock.Clock

	mu      sync.Mutex
	nodes   *nodeIndex  // NodeID <-> dense index; self is index 0
	links   []linkState // by dense index; live entries marked in linkSet
	linkSet bitset      // indices with a live link tuple
	twoHop  []bitset    // hello sender -> its advertised symmetric neighbourhood
	mprSet  bitset      // our chosen MPRs
	selSet  bitset      // neighbours that chose us as MPR
	selExp  []int64     // selector expiry (ns), valid where selSet is set
	// topo holds TC-advertised edges indexed by advertising node ("last
	// hop") then MPR selector, so the per-TC stale-ANSN purge touches only
	// that origin's out-edges — a flat map keyed by (last,dest) made every
	// TC arrival an O(total edges) sweep, which at 1024 nodes was the
	// single largest CPU sink in the system. Out-edge lists are small (the
	// origin's selector set), so linear scans beat any per-origin map.
	topo    [][]topoEdge
	topoSet bitset // origins with at least one stored edge
	dups    map[dupKey]dupVal
	dupQ    dupHeap // expiry order over dups, for lazy pruning
	seq     uint16
	ansn    uint16
	scratch recomputeScratch // pooled recompute working memory, under mu
	// Pooled emission scratch: sendHello/sendTC rebuild these in place
	// every beat instead of minting fresh slices.
	helloNbs []HelloNeighbor
	helloIdx []uint32
	tcSels   []netem.NodeID
	tcIdx    []uint32 // received-TC selector indices, pooled like helloIdx
	// Fisheye state: tcCount decimates far floods, farPhase staggers this
	// node's full-flood rounds against its peers', selHash/selInit detect
	// selector-set changes (order-independent set hash) for ANSN advance.
	tcCount  uint64
	farPhase uint64
	selHash  uint64
	selInit  bool
	table    *routing.Table
	pb       routing.PiggybackHandler
	stats    Stats
	started  bool
	// recomputeHold marks the coalescing hold-down window after a
	// recompute; recomputeQueued marks arrivals during the window that
	// still need one trailing recompute.
	recomputeHold   bool
	recomputeQueued bool
	// stateHash is the order-independent hash of the link-state inputs at
	// the last executed rebuild; recompute skips the MPR+BFS work while the
	// inputs still hash the same (the dirty-set second line of defence —
	// the first is that unchanged HELLO/TC arrivals never schedule at all).
	stateHash uint64

	stop  chan struct{}
	wg    sync.WaitGroup
	tasks []*clock.Task // event-loop timers when cfg.Sched is set

	// Pre-resolved obs handles; nil when cfg.Obs is nil.
	obs      *obs.Observer
	obsDelay *obs.Histogram
}

var _ routing.Protocol = (*Protocol)(nil)

// New creates an OLSR instance for host. Call Start to begin operation.
func New(host *netem.Host, cfg Config) *Protocol {
	cfg = cfg.withDefaults()
	p := &Protocol{
		host:  host,
		cfg:   cfg,
		clk:   cfg.Clock,
		nodes: newNodeIndex(),
		dups:  make(map[dupKey]dupVal),
		table: routing.NewTable(),
		stop:  make(chan struct{}),
	}
	// Self is always dense index 0: HELLO/TC processing and the BFS skip it
	// by integer compare.
	p.nodes.intern(host.ID())
	p.growTo(1)
	// Spread this node's full-TTL fisheye rounds against its peers' by
	// hashing its own ID: nodes brought up together would otherwise emit
	// their far floods in lockstep every FisheyeFarEvery-th round.
	p.farPhase = phaseHash(host.ID()) % uint64(cfg.FisheyeFarEvery)
	if cfg.Obs.Enabled() {
		p.obs = cfg.Obs
		p.obsDelay = cfg.Obs.Histogram("olsr.routewait.delay", nil)
	}
	return p
}

// selfIdx is the dense index of this node's own ID, interned first in New.
const selfIdx uint32 = 0

// growTo extends every dense-indexed store to cover n interned nodes. Called
// under p.mu after interning; append-only growth means indices never move.
func (p *Protocol) growTo(n int) {
	for len(p.links) < n {
		p.links = append(p.links, linkState{})
	}
	for len(p.twoHop) < n {
		p.twoHop = append(p.twoHop, nil)
	}
	for len(p.selExp) < n {
		p.selExp = append(p.selExp, 0)
	}
	for len(p.topo) < n {
		p.topo = append(p.topo, nil)
	}
	p.linkSet.grow(n)
	p.selSet.grow(n)
	p.topoSet.grow(n)
}

// Name implements routing.Protocol.
func (p *Protocol) Name() string { return "OLSR" }

// SetPiggyback implements routing.Protocol.
func (p *Protocol) SetPiggyback(h routing.PiggybackHandler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pb = h
}

// Start implements routing.Protocol.
func (p *Protocol) Start() error {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return fmt.Errorf("olsr: already started")
	}
	p.started = true
	p.mu.Unlock()
	if err := p.host.HandleFrames(netem.KindRouting, p.onFrame); err != nil {
		return err
	}
	p.host.SetRouteProvider(p)
	if p.cfg.Sched != nil {
		key := string(p.host.ID())
		tasks := []*clock.Task{
			p.cfg.Sched.Every(key, p.cfg.HelloInterval, func(time.Time) {
				p.expire()
				p.sendHello()
			}),
			p.cfg.Sched.Every(key, p.cfg.TCInterval, func(time.Time) {
				p.sendTC()
			}),
		}
		p.mu.Lock()
		p.tasks = tasks
		p.mu.Unlock()
		return nil
	}
	p.wg.Add(2)
	go p.helloLoop()
	go p.tcLoop()
	return nil
}

// Stop implements routing.Protocol.
func (p *Protocol) Stop() {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return
	}
	p.started = false
	tasks := p.tasks
	p.tasks = nil
	p.mu.Unlock()
	for _, t := range tasks {
		t.Stop()
	}
	close(p.stop)
	p.wg.Wait()
}

// Stats returns a snapshot of protocol counters.
func (p *Protocol) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Routes implements routing.Protocol.
func (p *Protocol) Routes() []routing.Entry {
	return p.table.Snapshot(p.clk.Now())
}

// NextHop implements netem.RouteProvider.
func (p *Protocol) NextHop(dst netem.NodeID) (netem.NodeID, bool) {
	e, ok := p.table.Lookup(dst, p.clk.Now())
	if !ok {
		return "", false
	}
	return e.NextHop, true
}

// RequestRoute implements netem.RouteProvider. OLSR is proactive: either the
// table already converged and contains dst, or we wait briefly for
// convergence (e.g. right after startup or a topology change).
func (p *Protocol) RequestRoute(dst netem.NodeID, done func(bool)) {
	if _, ok := p.NextHop(dst); ok {
		done(true)
		return
	}
	p.mu.Lock()
	started := p.started
	p.mu.Unlock()
	if !started {
		done(false)
		return
	}
	if p.cfg.Sched != nil {
		p.requestRouteSched(dst, done)
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		span := p.obs.StartSpan("", obs.PhaseRouteDiscovery, string(p.host.ID()))
		start := p.clk.Now()
		deadline := start.Add(p.cfg.RouteWait)
		poll := p.cfg.HelloInterval / 2
		if poll <= 0 {
			poll = 10 * time.Millisecond
		}
		for {
			if _, ok := p.NextHop(dst); ok {
				if span.Active() {
					p.obsDelay.Observe(p.clk.Now().Sub(start))
					span.End("olsr dst=" + string(dst) + " ok")
				}
				done(true)
				return
			}
			if p.clk.Now().After(deadline) {
				span.End("olsr dst=" + string(dst) + " timeout")
				done(false)
				return
			}
			timer := p.clk.NewTimer(poll)
			select {
			case <-p.stop:
				timer.Stop()
				span.End("olsr dst=" + string(dst) + " stopped")
				done(false)
				return
			case <-timer.C():
			}
		}
	}()
}

// requestRouteSched is RequestRoute's convergence wait as a chain of
// one-shot event-loop tasks: the same poll cadence as the legacy goroutine
// (half a HELLO interval), with zero goroutine cost while waiting.
func (p *Protocol) requestRouteSched(dst netem.NodeID, done func(bool)) {
	span := p.obs.StartSpan("", obs.PhaseRouteDiscovery, string(p.host.ID()))
	start := p.clk.Now()
	deadline := start.Add(p.cfg.RouteWait)
	poll := p.cfg.HelloInterval / 2
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	key := string(p.host.ID())
	var step func(time.Time)
	step = func(time.Time) {
		if _, ok := p.NextHop(dst); ok {
			if span.Active() {
				p.obsDelay.Observe(p.clk.Now().Sub(start))
				span.End("olsr dst=" + string(dst) + " ok")
			}
			done(true)
			return
		}
		p.mu.Lock()
		started := p.started
		p.mu.Unlock()
		if !started {
			span.End("olsr dst=" + string(dst) + " stopped")
			done(false)
			return
		}
		if p.clk.Now().After(deadline) {
			span.End("olsr dst=" + string(dst) + " timeout")
			done(false)
			return
		}
		p.cfg.Sched.After(key, poll, step)
	}
	p.cfg.Sched.After(key, poll, step)
}

// MPRs returns the currently selected multipoint relays (diagnostics).
func (p *Protocol) MPRs() []netem.NodeID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]netem.NodeID, 0, p.mprSet.count())
	p.mprSet.forEach(func(i uint32) {
		out = append(out, p.nodes.ids[i])
	})
	return out
}

func (p *Protocol) sendControl(kind uint8, body []byte) {
	p.mu.Lock()
	pb := p.pb
	p.mu.Unlock()
	var ext []byte
	if pb != nil {
		ext = pb.Outgoing(routing.Outgoing{
			Proto:  routing.ProtoOLSR,
			Kind:   kind,
			Kind2:  KindName(kind),
			Dst:    netem.Broadcast,
			Budget: routing.ExtBudget(len(body)),
		})
	}
	raw, err := routing.AppendEnvelope(nil, routing.ProtoOLSR, kind, body, ext)
	if err != nil {
		return
	}
	_ = p.host.SendFrame(netem.Broadcast, netem.KindRouting, raw)
}

func (p *Protocol) onFrame(f netem.Frame) {
	var env routing.Envelope
	if err := routing.ParseEnvelopeInto(&env, f.Payload); err != nil || env.Proto != routing.ProtoOLSR {
		return
	}
	if len(env.Ext) > 0 {
		p.mu.Lock()
		pb := p.pb
		p.mu.Unlock()
		if pb != nil {
			pb.Incoming(routing.Incoming{
				From:  f.Src,
				Proto: env.Proto,
				Kind:  env.Kind,
				Kind2: KindName(env.Kind),
				Ext:   env.Ext,
			})
		}
	}
	// Bodies are handled straight off the wire bytes (handleHello/handleTC)
	// rather than through ParseHello/ParseTC: a converged grid's receive
	// rate is degree×HELLO plus the TC flood, and decoding each copy into a
	// fresh message struct with one string per node reference made the parse
	// path the system's largest steady-state allocation site.
	switch env.Kind {
	case KindHello:
		p.handleHello(f.Src, env.Body)
	case KindTC:
		p.handleTC(f.Src, env.Body)
	}
}

// onHello feeds a decoded HELLO through the wire path; tests drive the
// protocol with message structs, the frame handler with raw bodies.
func (p *Protocol) onHello(from netem.NodeID, m *Hello) {
	p.handleHello(from, m.Marshal())
}

// handleHello processes a HELLO body straight off the wire. Node references
// are resolved against the interner by raw bytes, so a steady-state arrival
// (all nodes known, advertised neighbourhood unchanged) performs zero
// allocations — no message struct, no per-neighbour string.
func (p *Protocol) handleHello(from netem.NodeID, body []byte) {
	// Validate the framing before touching state: the streaming walk below
	// mutates as it reads, and a truncated HELLO must stay a no-op, exactly
	// as when ParseHello rejected it up front.
	v := wire.NewReader(body)
	n := int(v.U16())
	for range n {
		v.StringBytes()
		v.U8()
		v.U8()
	}
	if v.Err() != nil {
		return
	}
	nowNs := p.clk.Now().UnixNano()
	self := string(p.host.ID())
	p.mu.Lock()
	fi := p.nodes.intern(from)
	p.growTo(p.nodes.len())
	changed := false
	if !p.linkSet.has(fi) {
		p.linkSet.set(fi)
		p.links[fi] = linkState{}
		changed = true
	}
	p.links[fi].lastHeardNs = nowNs
	// One walk does link sensing and change detection: the link is
	// symmetric once the neighbour lists us, and the advertised symmetric
	// neighbourhood is compared against the stored 2-hop bitset
	// (lookup-only, no interning) so an unchanged arrival rebuilds nothing
	// and schedules no recompute.
	sym := false
	old := p.twoHop[fi]
	matched := 0
	same := true
	r := wire.NewReader(body)
	r.U16()
	for range n {
		ab := r.StringBytes()
		link := r.U8()
		mpr := r.U8() == 1
		if string(ab) == self {
			sym = true
			if mpr {
				p.selSet.set(fi)
				p.selExp[fi] = nowNs + int64(p.cfg.NeighborHold)
			}
			continue
		}
		if link != LinkSym {
			continue
		}
		ni, known := p.nodes.lookupBytes(ab)
		if !known || !old.has(ni) {
			same = false
			continue
		}
		matched++
	}
	if same && matched != old.count() {
		same = false
	}
	if sym != p.links[fi].sym {
		p.links[fi].sym = sym
		changed = true
	}
	if !same {
		// Intern every advertised neighbour into scratch first: interning
		// can grow the dense stores, so finish growth before re-reading
		// p.twoHop[fi].
		r = wire.NewReader(body)
		r.U16()
		p.helloIdx = p.helloIdx[:0]
		for range n {
			ab := r.StringBytes()
			link := r.U8()
			r.U8()
			if string(ab) == self || link != LinkSym {
				continue
			}
			p.helloIdx = append(p.helloIdx, p.nodes.internBytes(ab))
		}
		p.growTo(p.nodes.len())
		set := p.twoHop[fi]
		set.reset()
		for _, ni := range p.helloIdx {
			set.set(ni)
		}
		p.twoHop[fi] = set
		changed = true
	}
	p.mu.Unlock()
	if changed {
		p.scheduleRecompute()
	}
}

// onTC feeds a decoded TC through the wire path; tests drive the protocol
// with message structs, the frame handler with raw bodies.
func (p *Protocol) onTC(from netem.NodeID, m *TC) {
	p.handleTC(from, m.Marshal())
}

// handleTC processes a TC body straight off the wire, mirroring handleHello:
// origin and selectors resolve against the interner by raw bytes (zero
// allocations once the nodes are known), and the MPR retransmission reuses
// the received body with the TTL byte patched instead of re-marshalling.
func (p *Protocol) handleTC(from netem.NodeID, body []byte) {
	r := wire.NewReader(body)
	origB := r.StringBytes()
	seq := r.U16()
	ansn := r.U16()
	// Offset of the TTL byte within body: the forward path patches it in a
	// copy of the received bytes rather than rebuilding the message.
	ttlOff := 2 + len(origB) + 4
	ttl := r.U8()
	n := int(r.U16())
	for range n {
		r.StringBytes()
	}
	if r.Err() != nil {
		return
	}
	nowNs := p.clk.Now().UnixNano()
	if string(origB) == string(p.host.ID()) {
		return
	}
	p.mu.Lock()
	oi := p.nodes.internBytes(origB)
	p.growTo(p.nodes.len())
	key := dupKey{oi, seq}
	dv, dup := p.dups[key]
	// RFC 3626 duplicate handling: the tuples are processed once (first
	// copy), but any copy may trigger the single retransmission — the
	// first copy often arrives from a neighbour that did not select us as
	// MPR while a later copy comes from one that did. Without the fwd flag
	// the TC would then never be relayed here at all, and distant nodes
	// would miss whole TC rounds.
	fi, known := p.nodes.lookup(from)
	isSelector := known && p.selSet.has(fi)
	doFwd := isSelector && ttl > 1 && !dv.fwd
	if dup && !doFwd {
		p.mu.Unlock()
		return
	}
	if !dup {
		// Dup entries only need to outlive the flood's flight time (plus
		// queueing slack under load), not the topology hold: holding them
		// for TopologyHold made the set scale with hold×N and blow the
		// hard cap at 1024 nodes, and evicting *live* entries turns
		// re-arriving copies into fresh re-forwards — a flood multiplier
		// exactly when the network is busiest. Two TC intervals cover any
		// copy still in flight by the time its seq is superseded.
		p.dupQ.push(dupQItem{key: key, expiresNs: nowNs + 2*int64(p.cfg.TCInterval)})
	}
	if doFwd {
		dv.fwd = true
	}
	p.dups[key] = dv
	// Lazy pruning off the deadline heap: drop entries past their hold time,
	// and under the hard cap keep evicting the soonest-to-expire so a
	// 1024-node TC storm cannot grow the set without bound. O(evicted log n)
	// instead of the old full-map sweep.
	for len(p.dupQ) > 0 && (nowNs > p.dupQ[0].expiresNs || len(p.dups) > dupHardCap) {
		it := p.dupQ.pop()
		delete(p.dups, it.key)
	}
	// Install/refresh the advertised tuples first, then purge whatever the
	// new ANSN no longer advertises. Only an edge appearing or vanishing
	// dirties the route state; a periodic TC re-advertising the same
	// selector set merely refreshes expiries and schedules nothing. The
	// out-edge list is the origin's selector set — a handful of entries —
	// so the membership scan is a short linear walk over a pointer-free
	// slice, cheaper than any map it could be replaced with.
	changed := false
	if !dup {
		// Re-walk the selector list off the wire bytes, interning into the
		// pooled index scratch; known selectors cost a map probe each.
		r = wire.NewReader(body)
		r.StringBytes()
		r.U16()
		r.U16()
		r.U8()
		r.U16()
		p.tcIdx = p.tcIdx[:0]
		for range n {
			p.tcIdx = append(p.tcIdx, p.nodes.internBytes(r.StringBytes()))
		}
		p.growTo(p.nodes.len())
		edges := p.topo[oi]
		expNs := nowNs + int64(p.cfg.TopologyHold)
		for _, si := range p.tcIdx {
			k := 0
			for ; k < len(edges); k++ {
				if edges[k].dest == si {
					break
				}
			}
			if k == len(edges) {
				edges = append(edges, topoEdge{dest: si, ansn: ansn, expiresNs: expNs})
				changed = true
				continue
			}
			if !ansnOlder(ansn, edges[k].ansn) {
				// A refresh of a tuple that already time-expired is a
				// real change: rebuilds between expiry and this refresh
				// excluded the edge, so reviving it must dirty the route
				// state even though the edge never left the store.
				if nowNs > edges[k].expiresNs {
					changed = true
				}
				edges[k].ansn = ansn
				edges[k].expiresNs = expNs
			}
		}
		kept := edges[:0]
		for k := range edges {
			if ansnOlder(edges[k].ansn, ansn) {
				changed = true
				continue
			}
			kept = append(kept, edges[k])
		}
		p.topo[oi] = kept
		if len(kept) == 0 {
			p.topoSet.unset(oi)
		} else {
			p.topoSet.set(oi)
		}
	}
	p.mu.Unlock()
	if changed {
		p.scheduleRecompute()
	}

	if doFwd {
		// Retransmit the received bytes with the TTL decremented in place —
		// the one copy is needed because the outgoing frame outlives this
		// handler while body aliases the incoming frame's payload.
		fwd := make([]byte, len(body))
		copy(fwd, body)
		fwd[ttlOff]--
		p.mu.Lock()
		p.stats.TCFwd++
		p.mu.Unlock()
		p.sendControl(KindTC, fwd)
	}
}

// ansnOlder reports whether a is older than b with 16-bit wraparound.
func ansnOlder(a, b uint16) bool {
	return a != b && int16(a-b) < 0
}

func (p *Protocol) helloLoop() {
	defer p.wg.Done()
	for {
		timer := p.clk.NewTimer(p.cfg.HelloInterval)
		select {
		case <-p.stop:
			timer.Stop()
			return
		case <-timer.C():
		}
		p.expire()
		p.sendHello()
	}
}

func (p *Protocol) sendHello() {
	p.mu.Lock()
	p.helloNbs = p.helloNbs[:0]
	p.linkSet.forEach(func(i uint32) {
		link := LinkAsym
		if p.links[i].sym {
			link = LinkSym
		}
		p.helloNbs = append(p.helloNbs, HelloNeighbor{
			Addr: p.nodes.ids[i],
			Link: link,
			MPR:  p.mprSet.has(i),
		})
	})
	m := Hello{Neighbors: p.helloNbs}
	body := m.Marshal() // under mu: Neighbors aliases pooled scratch
	p.stats.HelloSent++
	p.mu.Unlock()
	p.sendControl(KindHello, body)
}

func (p *Protocol) tcLoop() {
	defer p.wg.Done()
	for {
		timer := p.clk.NewTimer(p.cfg.TCInterval)
		select {
		case <-p.stop:
			timer.Stop()
			return
		case <-timer.C():
		}
		p.sendTC()
	}
}

func (p *Protocol) sendTC() {
	p.mu.Lock()
	if p.selSet.empty() {
		p.mu.Unlock()
		return // only MPRs advertise topology
	}
	p.seq++
	m := TC{Orig: p.host.ID(), Seq: p.seq, TTL: p.cfg.MaxTTL}
	p.tcSels = p.tcSels[:0]
	var selHash uint64
	p.selSet.forEach(func(i uint32) {
		p.tcSels = append(p.tcSels, p.nodes.ids[i])
		selHash += mix64(hashSel, i, 0)
	})
	m.Selectors = p.tcSels
	if p.cfg.Fisheye {
		// ANSN advances only when the advertised set actually changes (the
		// RFC 3626 rule). Receivers then refresh expiries from decimated
		// near-zone floods at the same ANSN. Changes are NOT boosted to
		// full TTL: an earlier design flooded MaxTTL for two rounds after
		// every selector change, and at 1024 nodes bring-up churn re-armed
		// that boost network-wide — a self-amplifying forward storm (load
		// delays HELLOs, links flap, every flap re-arms full floods). Far
		// zones instead pick up changes at the staggered far cadence.
		if !p.selInit || selHash != p.selHash {
			p.selInit = true
			p.selHash = selHash
			p.ansn++
		}
		p.tcCount++
		if p.tcCount%uint64(p.cfg.FisheyeFarEvery) != p.farPhase && p.cfg.FisheyeNearTTL < p.cfg.MaxTTL {
			m.TTL = p.cfg.FisheyeNearTTL
		}
	} else {
		p.ansn++
	}
	m.ANSN = p.ansn
	body := m.Marshal() // under mu: Selectors aliases pooled scratch
	p.stats.TCSent++
	p.mu.Unlock()
	p.sendControl(KindTC, body)
}

// expire drops stale links, selectors and topology tuples.
func (p *Protocol) expire() {
	nowNs := p.clk.Now().UnixNano()
	holdNs := int64(p.cfg.NeighborHold)
	changed := false
	p.mu.Lock()
	p.linkSet.forEach(func(i uint32) {
		if nowNs-p.links[i].lastHeardNs > holdNs {
			p.linkSet.unset(i)
			p.links[i] = linkState{}
			p.twoHop[i].reset()
			changed = true
		}
	})
	p.selSet.forEach(func(i uint32) {
		if nowNs > p.selExp[i] {
			p.selSet.unset(i)
		}
	})
	p.topoSet.forEach(func(oi uint32) {
		edges := p.topo[oi]
		kept := edges[:0]
		for k := range edges {
			if nowNs > edges[k].expiresNs {
				changed = true
				continue
			}
			kept = append(kept, edges[k])
		}
		p.topo[oi] = kept
		if len(kept) == 0 {
			p.topoSet.unset(oi)
		}
	})
	p.mu.Unlock()
	if changed {
		p.recompute()
	}
}

// scheduleRecompute coalesces route recomputation: a full greedy-MPR +
// route rebuild used to run on every single HELLO/TC arrival, which is
// O(messages) work per interval in dense networks. The first arrival still
// recomputes immediately (no added convergence latency), then opens a
// hold-down window of half a HELLO interval; arrivals during the window are
// folded into one trailing recompute when it closes. Steady-state recompute
// rate is therefore bounded per interval regardless of neighbour count.
func (p *Protocol) scheduleRecompute() {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return
	}
	if p.recomputeHold {
		p.recomputeQueued = true
		p.mu.Unlock()
		return
	}
	p.recomputeHold = true
	if p.cfg.Sched != nil {
		p.mu.Unlock()
		p.recompute()
		key := string(p.host.ID())
		window := p.cfg.HelloInterval / 2
		var tick func(time.Time)
		tick = func(time.Time) {
			p.mu.Lock()
			queued := p.recomputeQueued && p.started
			p.recomputeQueued = false
			if !queued {
				p.recomputeHold = false
				p.mu.Unlock()
				return
			}
			p.mu.Unlock()
			p.recompute()
			p.cfg.Sched.After(key, window, tick)
		}
		p.cfg.Sched.After(key, window, tick)
		return
	}
	p.wg.Add(1)
	p.mu.Unlock()
	p.recompute()
	go func() {
		defer p.wg.Done()
		for {
			timer := p.clk.NewTimer(p.cfg.HelloInterval / 2)
			select {
			case <-p.stop:
				timer.Stop()
				return
			case <-timer.C():
			}
			p.mu.Lock()
			queued := p.recomputeQueued
			p.recomputeQueued = false
			if !queued {
				p.recomputeHold = false
				p.mu.Unlock()
				return
			}
			p.mu.Unlock()
			p.recompute()
		}
	}()
}

// phaseHash is an FNV-1a digest of a node ID, used once at construction to
// stagger this node's fisheye far-flood phase against its peers'. (It
// reproduces the digest the retired string-keyed hashEdge produced for the
// same input, so committed far-flood schedules — and the benchmarks shaped
// by them — carry over unchanged.)
func phaseHash(id netem.NodeID) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h ^= uint64(hashSel)
	h *= prime
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime
	}
	h ^= 0xff
	h *= prime
	return h
}

// Element kinds for mix64.
const (
	hashLink byte = 1 // symmetric 1-hop link
	hashTwo  byte = 2 // 2-hop edge (neighbour -> its neighbour)
	hashTopo byte = 3 // TC-advertised topology edge
	hashSel  byte = 4 // MPR selector (fisheye set-change detection)
)

// inputHashLocked digests everything the MPR selection and BFS read: the
// symmetric link set, the 2-hop sets and the live topology edges. Expiry
// timestamps are deliberately excluded — refreshes that keep the same edge
// set do not change the computed routes. Dense indices are append-only per
// instance, so index-based element hashes stay comparable across the
// instance's lifetime.
func (p *Protocol) inputHashLocked(nowNs int64) uint64 {
	var h uint64
	p.linkSet.forEach(func(i uint32) {
		if p.links[i].sym {
			h += mix64(hashLink, i, 0)
		}
		p.twoHop[i].forEach(func(two uint32) {
			h += mix64(hashTwo, i, two)
		})
	})
	p.topoSet.forEach(func(oi uint32) {
		for _, e := range p.topo[oi] {
			if nowNs > e.expiresNs {
				continue
			}
			h += mix64(hashTopo, oi, e.dest)
		}
	})
	return h
}

// recompute rebuilds MPRs and routes unless the link-state inputs hash
// identical to the last executed rebuild (the steady-state case: periodic
// HELLO/TC refreshes that change nothing).
func (p *Protocol) recompute() { p.recomputeImpl(false) }

// recomputeFull forces the rebuild even on unchanged inputs — the reference
// path the incremental-vs-full golden equivalence test compares against.
func (p *Protocol) recomputeFull() { p.recomputeImpl(true) }

// recomputeImpl reselects MPRs and rebuilds the route table (greedy MPR
// cover + BFS shortest paths over 1-hop links and TC-advertised edges). The
// traversal is deterministic — neighbour lists are expanded in lexical node
// order (via the interner's rank table) — so identical inputs always produce
// a bit-identical table. All working memory comes from the pooled scratch:
// before pooling, this function plus Table.Replace minted 77% of every byte
// the 1024-node scale study allocated.
func (p *Protocol) recomputeImpl(force bool) {
	nowNs := p.clk.Now().UnixNano()
	p.mu.Lock()
	h := p.inputHashLocked(nowNs)
	if !force && h == p.stateHash {
		p.stats.RecomputeSkipped++
		p.mu.Unlock()
		return
	}
	p.stateHash = h
	p.stats.Recompute++
	n := p.nodes.len()
	s := &p.scratch
	s.grow(n)
	rank := p.nodes.rank

	// Symmetric neighbours in lexical order: the BFS start order — and
	// therefore next-hop tie-breaks between equal-length paths — matches
	// the string-sorted traversal of the map-backed core bit for bit.
	s.symNbs = s.symNbs[:0]
	p.linkSet.forEach(func(i uint32) {
		if p.links[i].sym {
			s.symNbs = append(s.symNbs, i)
		}
	})
	slices.SortFunc(s.symNbs, func(a, b uint32) int { return int(rank[a]) - int(rank[b]) })

	// --- MPR selection: greedy cover of the 2-hop neighbourhood.
	s.uncovered.reset()
	for _, nb := range s.symNbs {
		p.twoHop[nb].forEach(func(two uint32) {
			if two == selfIdx {
				return
			}
			if p.linkSet.has(two) && p.links[two].sym {
				return // reachable in one hop anyway
			}
			s.uncovered.set(two)
		})
	}
	s.mprNew.reset()
	for !s.uncovered.empty() {
		best := -1
		bestCover := 0
		for _, nb := range s.symNbs {
			if s.mprNew.has(nb) {
				continue
			}
			cover := p.twoHop[nb].andCount(s.uncovered)
			if cover > bestCover || (cover == bestCover && cover > 0 && (best < 0 || rank[nb] < rank[uint32(best)])) {
				best, bestCover = int(nb), cover
			}
		}
		if bestCover == 0 {
			break // remaining 2-hop nodes are not coverable
		}
		s.mprNew.set(uint32(best))
		s.uncovered.andNot(p.twoHop[uint32(best)])
	}
	// Swap the freshly built set into place; the displaced one becomes next
	// rebuild's scratch.
	p.mprSet, s.mprNew = s.mprNew, p.mprSet

	// --- Route computation: BFS over sym links + topology edges, on dense
	// arrays (dist doubles as the visited set; next is the first hop).
	clear(s.dist[:n])
	s.queue = s.queue[:0]
	for _, nb := range s.symNbs {
		s.dist[nb] = 1
		s.next[nb] = nb
		s.queue = append(s.queue, nb)
	}
	// Adjacency from TC tuples: last -> dest (treated as bidirectional,
	// since a TC edge reflects a symmetric MPR-selector link). Lists are
	// truncated in place and refilled — no per-rebuild minting.
	for i := range s.adj[:n] {
		s.adj[i] = s.adj[i][:0]
	}
	p.topoSet.forEach(func(oi uint32) {
		for _, e := range p.topo[oi] {
			if nowNs > e.expiresNs {
				continue
			}
			s.adj[oi] = append(s.adj[oi], e.dest)
			s.adj[e.dest] = append(s.adj[e.dest], oi)
		}
	})
	// Also 2-hop sets give edges nb -> two.
	p.linkSet.forEach(func(i uint32) {
		p.twoHop[i].forEach(func(two uint32) {
			s.adj[i] = append(s.adj[i], two)
		})
	})
	for i := range s.adj[:n] {
		if len(s.adj[i]) > 1 {
			slices.SortFunc(s.adj[i], func(a, b uint32) int { return int(rank[a]) - int(rank[b]) })
		}
	}
	for head := 0; head < len(s.queue); head++ {
		cur := s.queue[head]
		curNext, curDist := s.next[cur], s.dist[cur]
		for _, nxt := range s.adj[cur] {
			if nxt == selfIdx || s.dist[nxt] != 0 {
				continue
			}
			s.dist[nxt] = curDist + 1
			s.next[nxt] = curNext
			s.queue = append(s.queue, nxt)
		}
	}
	s.entries = s.entries[:0]
	for i := 0; i < n; i++ {
		if s.dist[i] > 0 {
			s.entries = append(s.entries, routing.Entry{
				Dst:     p.nodes.ids[i],
				NextHop: p.nodes.ids[s.next[i]],
				Hops:    int(s.dist[i]),
			})
		}
	}
	// Replace under p.mu: with the hash gate, a stale table installed by a
	// concurrent rebuild racing Replace outside the lock would persist
	// (the next arrival would hash "unchanged" and skip the fix). Replace
	// copies into its double-buffered map, so the pooled entries slice is
	// free for reuse the moment it returns.
	p.table.Replace(s.entries)
	p.mu.Unlock()
}
