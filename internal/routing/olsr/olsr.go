// Package olsr implements the Optimized Link State Routing protocol
// (Clausen & Jacquet, RFC 3626) over the netem link layer: periodic HELLO
// messages for link sensing and MPR selection, TC messages flooded through
// the MPR backbone, and shortest-path route computation over the resulting
// topology. It is the proactive counterpart to AODV in the paper's system.
package olsr

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/obs"
	"siphoc/internal/routing"
)

// Config tunes protocol timing; the zero value is completed with RFC 3626
// defaults. Simulations scale the intervals down with SimConfig.
type Config struct {
	// HelloInterval is the HELLO emission period (default 2s).
	HelloInterval time.Duration
	// TCInterval is the TC emission period (default 5s).
	TCInterval time.Duration
	// NeighborHold is how long a silent neighbour stays valid
	// (default 3×HelloInterval).
	NeighborHold time.Duration
	// TopologyHold is how long unrefreshed topology tuples stay valid
	// (default 3×TCInterval).
	TopologyHold time.Duration
	// RouteWait is how long RequestRoute waits for convergence before
	// giving up (default 3×TCInterval).
	RouteWait time.Duration
	// MaxTTL bounds TC flooding (default 32).
	MaxTTL uint8
	// Clock is the time source (default the system clock).
	Clock clock.Clock
	// Obs records route-wait spans and latency. Nil disables.
	Obs *obs.Observer
	// Sched, when set, runs every protocol timer (HELLO/TC emission, the
	// recompute hold-down window, RequestRoute convergence polling) on the
	// shared sharded event loop instead of per-node goroutines. Timer
	// cadence is identical either way; only the goroutine cost changes
	// (O(shards) for the whole network instead of 2+ per node).
	Sched *clock.Scheduler
	// Fisheye enables fisheye TC scoping (FSR-style graded refresh): TCs
	// normally carry FisheyeNearTTL so only the near zone sees every
	// refresh, and the full-MaxTTL flood is decimated to every
	// FisheyeFarEvery-th emission. Each node offsets its full-flood rounds
	// by a hash of its own ID, so the network's far floods spread evenly
	// across rounds instead of bursting in lockstep — at 1024 nodes a
	// synchronized far round is a quarter-million forwards in one beat.
	// Far zones therefore learn of changes at the far cadence; that lag is
	// the fisheye design point (paths correct themselves as packets
	// approach the destination), and what buys the O(near zone) steady
	// cost. With Fisheye on, the ANSN advances only on selector-set
	// changes (as RFC 3626 specifies), which lets far nodes refresh tuple
	// expiries from decimated floods without tearing down still-valid
	// state.
	Fisheye bool
	// FisheyeNearTTL is the TC TTL for near-zone (decimated) emissions
	// (default 8).
	FisheyeNearTTL uint8
	// FisheyeFarEvery sends every n-th TC at full MaxTTL (default 4).
	// TopologyHold is floored at (2×FisheyeFarEvery+2)×TCInterval so
	// far-zone tuples survive a missed full flood.
	FisheyeFarEvery int
}

func (c Config) withDefaults() Config {
	if c.HelloInterval == 0 {
		c.HelloInterval = 2 * time.Second
	}
	if c.TCInterval == 0 {
		c.TCInterval = 5 * time.Second
	}
	if c.NeighborHold == 0 {
		c.NeighborHold = 3 * c.HelloInterval
	}
	if c.TopologyHold == 0 {
		c.TopologyHold = 3 * c.TCInterval
	}
	if c.FisheyeNearTTL == 0 {
		c.FisheyeNearTTL = 8
	}
	if c.FisheyeFarEvery <= 0 {
		c.FisheyeFarEvery = 4
	}
	if c.Fisheye {
		// Far-zone tuples are refreshed only every FisheyeFarEvery-th TC
		// round; hold them for two such periods plus slack so a single
		// late or lost far flood (timer slip under CPU saturation, a
		// dropped relay) does not expire half the topology and collapse
		// the route table network-wide.
		if min := time.Duration(2*c.FisheyeFarEvery+2) * c.TCInterval; c.TopologyHold < min {
			c.TopologyHold = min
		}
	}
	if c.RouteWait == 0 {
		c.RouteWait = 3 * c.TCInterval
	}
	if c.MaxTTL == 0 {
		c.MaxTTL = 32
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	return c
}

// DefaultConfig returns RFC 3626 timing.
func DefaultConfig() Config { return Config{}.withDefaults() }

// SimConfig returns timing scaled for fast in-memory simulation.
func SimConfig() Config {
	return Config{
		HelloInterval: 40 * time.Millisecond,
		TCInterval:    80 * time.Millisecond,
		// Cold-start convergence of a long chain takes several
		// hello+TC rounds; give callers ample slack.
		RouteWait: 3 * time.Second,
	}.withDefaults()
}

// Stats counts protocol activity for overhead experiments.
type Stats struct {
	HelloSent int64
	TCSent    int64
	TCFwd     int64
	// Recompute counts full MPR+route rebuilds actually executed.
	Recompute int64
	// RecomputeSkipped counts scheduled rebuilds elided because the
	// link-state inputs (sym links, 2-hop sets, topology edges) hashed
	// identical to the last executed rebuild.
	RecomputeSkipped int64
}

type linkState struct {
	lastHeard time.Time
	sym       bool
}

type topoVal struct {
	ansn    uint16
	expires time.Time
}

type dupKey struct {
	orig netem.NodeID
	seq  uint16
}

type dupVal struct {
	at  time.Time
	fwd bool // already retransmitted through the MPR backbone
}

// dupHardCap bounds the duplicate set: at 1024 nodes a single TC round puts
// ~N entries here, so without a cap a long-running node grows it without
// bound between the old opportunistic sweeps. Same bug class — and same
// deadline-heap fix — as the SLP seenQ hard cap.
const dupHardCap = 8192

// dupQItem pairs a duplicate-set key with its expiry for lazy heap pruning.
type dupQItem struct {
	key     dupKey
	expires time.Time
}

// dupHeap is a min-heap on expires. Keys are pushed exactly once (a dupKey
// is inserted into the map exactly once), so each heap item maps to one map
// entry and popping may delete unconditionally.
type dupHeap []dupQItem

func (h dupHeap) Len() int           { return len(h) }
func (h dupHeap) Less(i, j int) bool { return h[i].expires.Before(h[j].expires) }
func (h dupHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *dupHeap) Push(x any)        { *h = append(*h, x.(dupQItem)) }
func (h *dupHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Protocol is an OLSR instance bound to one host.
type Protocol struct {
	host *netem.Host
	cfg  Config
	clk  clock.Clock

	mu        sync.Mutex
	links     map[netem.NodeID]*linkState
	twoHop    map[netem.NodeID]map[netem.NodeID]bool // sym neighbour -> its sym neighbours
	mprs      map[netem.NodeID]bool                  // our chosen MPRs
	selectors map[netem.NodeID]time.Time             // neighbours that chose us as MPR
	// topology holds TC-advertised edges indexed by advertising node
	// ("last hop") then MPR selector, so the per-TC stale-ANSN purge
	// touches only that origin's out-edges — a flat map keyed by
	// (last,dest) made every TC arrival an O(total edges) sweep, which
	// at 1024 nodes was the single largest CPU sink in the system.
	topology map[netem.NodeID]map[netem.NodeID]topoVal
	dups     map[dupKey]dupVal
	dupQ     dupHeap // expiry order over dups, for lazy pruning
	seq      uint16
	ansn     uint16
	// Fisheye state: tcCount decimates far floods, farPhase staggers this
	// node's full-flood rounds against its peers', selHash/selInit detect
	// selector-set changes (order-independent set hash) for ANSN advance.
	tcCount  uint64
	farPhase uint64
	selHash  uint64
	selInit  bool
	table    *routing.Table
	pb       routing.PiggybackHandler
	stats    Stats
	started  bool
	// recomputeHold marks the coalescing hold-down window after a
	// recompute; recomputeQueued marks arrivals during the window that
	// still need one trailing recompute.
	recomputeHold   bool
	recomputeQueued bool
	// stateHash is the order-independent hash of the link-state inputs at
	// the last executed rebuild; recompute skips the MPR+BFS work while the
	// inputs still hash the same (the dirty-set second line of defence —
	// the first is that unchanged HELLO/TC arrivals never schedule at all).
	stateHash uint64

	stop  chan struct{}
	wg    sync.WaitGroup
	tasks []*clock.Task // event-loop timers when cfg.Sched is set

	// Pre-resolved obs handles; nil when cfg.Obs is nil.
	obs      *obs.Observer
	obsDelay *obs.Histogram
}

var _ routing.Protocol = (*Protocol)(nil)

// New creates an OLSR instance for host. Call Start to begin operation.
func New(host *netem.Host, cfg Config) *Protocol {
	cfg = cfg.withDefaults()
	p := &Protocol{
		host:      host,
		cfg:       cfg,
		clk:       cfg.Clock,
		links:     make(map[netem.NodeID]*linkState),
		twoHop:    make(map[netem.NodeID]map[netem.NodeID]bool),
		mprs:      make(map[netem.NodeID]bool),
		selectors: make(map[netem.NodeID]time.Time),
		topology:  make(map[netem.NodeID]map[netem.NodeID]topoVal),
		dups:      make(map[dupKey]dupVal),
		table:     routing.NewTable(),
		stop:      make(chan struct{}),
	}
	// Spread this node's full-TTL fisheye rounds against its peers' by
	// hashing its own ID: nodes brought up together would otherwise emit
	// their far floods in lockstep every FisheyeFarEvery-th round.
	p.farPhase = hashEdge(hashSel, host.ID(), "") % uint64(cfg.FisheyeFarEvery)
	if cfg.Obs.Enabled() {
		p.obs = cfg.Obs
		p.obsDelay = cfg.Obs.Histogram("olsr.routewait.delay", nil)
	}
	return p
}

// Name implements routing.Protocol.
func (p *Protocol) Name() string { return "OLSR" }

// SetPiggyback implements routing.Protocol.
func (p *Protocol) SetPiggyback(h routing.PiggybackHandler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pb = h
}

// Start implements routing.Protocol.
func (p *Protocol) Start() error {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return fmt.Errorf("olsr: already started")
	}
	p.started = true
	p.mu.Unlock()
	if err := p.host.HandleFrames(netem.KindRouting, p.onFrame); err != nil {
		return err
	}
	p.host.SetRouteProvider(p)
	if p.cfg.Sched != nil {
		key := string(p.host.ID())
		tasks := []*clock.Task{
			p.cfg.Sched.Every(key, p.cfg.HelloInterval, func(time.Time) {
				p.expire()
				p.sendHello()
			}),
			p.cfg.Sched.Every(key, p.cfg.TCInterval, func(time.Time) {
				p.sendTC()
			}),
		}
		p.mu.Lock()
		p.tasks = tasks
		p.mu.Unlock()
		return nil
	}
	p.wg.Add(2)
	go p.helloLoop()
	go p.tcLoop()
	return nil
}

// Stop implements routing.Protocol.
func (p *Protocol) Stop() {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return
	}
	p.started = false
	tasks := p.tasks
	p.tasks = nil
	p.mu.Unlock()
	for _, t := range tasks {
		t.Stop()
	}
	close(p.stop)
	p.wg.Wait()
}

// Stats returns a snapshot of protocol counters.
func (p *Protocol) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Routes implements routing.Protocol.
func (p *Protocol) Routes() []routing.Entry {
	return p.table.Snapshot(p.clk.Now())
}

// NextHop implements netem.RouteProvider.
func (p *Protocol) NextHop(dst netem.NodeID) (netem.NodeID, bool) {
	e, ok := p.table.Lookup(dst, p.clk.Now())
	if !ok {
		return "", false
	}
	return e.NextHop, true
}

// RequestRoute implements netem.RouteProvider. OLSR is proactive: either the
// table already converged and contains dst, or we wait briefly for
// convergence (e.g. right after startup or a topology change).
func (p *Protocol) RequestRoute(dst netem.NodeID, done func(bool)) {
	if _, ok := p.NextHop(dst); ok {
		done(true)
		return
	}
	p.mu.Lock()
	started := p.started
	p.mu.Unlock()
	if !started {
		done(false)
		return
	}
	if p.cfg.Sched != nil {
		p.requestRouteSched(dst, done)
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		span := p.obs.StartSpan("", obs.PhaseRouteDiscovery, string(p.host.ID()))
		start := p.clk.Now()
		deadline := start.Add(p.cfg.RouteWait)
		poll := p.cfg.HelloInterval / 2
		if poll <= 0 {
			poll = 10 * time.Millisecond
		}
		for {
			if _, ok := p.NextHop(dst); ok {
				if span.Active() {
					p.obsDelay.Observe(p.clk.Now().Sub(start))
					span.End("olsr dst=" + string(dst) + " ok")
				}
				done(true)
				return
			}
			if p.clk.Now().After(deadline) {
				span.End("olsr dst=" + string(dst) + " timeout")
				done(false)
				return
			}
			timer := p.clk.NewTimer(poll)
			select {
			case <-p.stop:
				timer.Stop()
				span.End("olsr dst=" + string(dst) + " stopped")
				done(false)
				return
			case <-timer.C():
			}
		}
	}()
}

// requestRouteSched is RequestRoute's convergence wait as a chain of
// one-shot event-loop tasks: the same poll cadence as the legacy goroutine
// (half a HELLO interval), with zero goroutine cost while waiting.
func (p *Protocol) requestRouteSched(dst netem.NodeID, done func(bool)) {
	span := p.obs.StartSpan("", obs.PhaseRouteDiscovery, string(p.host.ID()))
	start := p.clk.Now()
	deadline := start.Add(p.cfg.RouteWait)
	poll := p.cfg.HelloInterval / 2
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	key := string(p.host.ID())
	var step func(time.Time)
	step = func(time.Time) {
		if _, ok := p.NextHop(dst); ok {
			if span.Active() {
				p.obsDelay.Observe(p.clk.Now().Sub(start))
				span.End("olsr dst=" + string(dst) + " ok")
			}
			done(true)
			return
		}
		p.mu.Lock()
		started := p.started
		p.mu.Unlock()
		if !started {
			span.End("olsr dst=" + string(dst) + " stopped")
			done(false)
			return
		}
		if p.clk.Now().After(deadline) {
			span.End("olsr dst=" + string(dst) + " timeout")
			done(false)
			return
		}
		p.cfg.Sched.After(key, poll, step)
	}
	p.cfg.Sched.After(key, poll, step)
}

// MPRs returns the currently selected multipoint relays (diagnostics).
func (p *Protocol) MPRs() []netem.NodeID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]netem.NodeID, 0, len(p.mprs))
	for id := range p.mprs {
		out = append(out, id)
	}
	return out
}

func (p *Protocol) sendControl(kind uint8, body []byte) {
	p.mu.Lock()
	pb := p.pb
	p.mu.Unlock()
	var ext []byte
	if pb != nil {
		ext = pb.Outgoing(routing.Outgoing{
			Proto:  routing.ProtoOLSR,
			Kind:   kind,
			Kind2:  KindName(kind),
			Dst:    netem.Broadcast,
			Budget: routing.ExtBudget(len(body)),
		})
	}
	raw, err := routing.AppendEnvelope(nil, routing.ProtoOLSR, kind, body, ext)
	if err != nil {
		return
	}
	_ = p.host.SendFrame(netem.Broadcast, netem.KindRouting, raw)
}

func (p *Protocol) onFrame(f netem.Frame) {
	env, err := routing.ParseEnvelope(f.Payload)
	if err != nil || env.Proto != routing.ProtoOLSR {
		return
	}
	if len(env.Ext) > 0 {
		p.mu.Lock()
		pb := p.pb
		p.mu.Unlock()
		if pb != nil {
			pb.Incoming(routing.Incoming{
				From:  f.Src,
				Proto: env.Proto,
				Kind:  env.Kind,
				Kind2: KindName(env.Kind),
				Ext:   env.Ext,
			})
		}
	}
	switch env.Kind {
	case KindHello:
		if m, err := ParseHello(env.Body); err == nil {
			p.onHello(f.Src, m)
		}
	case KindTC:
		if m, err := ParseTC(env.Body); err == nil {
			p.onTC(f.Src, m)
		}
	}
}

func (p *Protocol) onHello(from netem.NodeID, m *Hello) {
	now := p.clk.Now()
	self := p.host.ID()
	p.mu.Lock()
	changed := false
	ls, ok := p.links[from]
	if !ok {
		ls = &linkState{}
		p.links[from] = ls
		changed = true
	}
	ls.lastHeard = now
	// The link is symmetric once the neighbour lists us in its HELLO.
	sym := false
	for _, nb := range m.Neighbors {
		if nb.Addr == self {
			sym = true
			if nb.MPR {
				p.selectors[from] = now.Add(p.cfg.NeighborHold)
			}
		}
	}
	if sym != ls.sym {
		ls.sym = sym
		changed = true
	}
	// Record the neighbour's symmetric neighbourhood for MPR selection.
	// Steady-state HELLOs re-advertise the same set: compare against the
	// stored 2-hop set first and only rebuild (and mark the state dirty)
	// on a real change, so an unchanged arrival allocates nothing and
	// schedules no recompute.
	old := p.twoHop[from]
	matched := 0
	same := true
	for _, nb := range m.Neighbors {
		if nb.Addr == self || nb.Link != LinkSym {
			continue
		}
		if !old[nb.Addr] {
			same = false
			break
		}
		matched++
	}
	if same && matched != len(old) {
		same = false
	}
	if !same {
		if old == nil {
			old = make(map[netem.NodeID]bool, len(m.Neighbors))
			p.twoHop[from] = old
		} else {
			clear(old)
		}
		for _, nb := range m.Neighbors {
			if nb.Addr == self || nb.Link != LinkSym {
				continue
			}
			old[nb.Addr] = true
		}
		changed = true
	}
	p.mu.Unlock()
	if changed {
		p.scheduleRecompute()
	}
}

func (p *Protocol) onTC(from netem.NodeID, m *TC) {
	now := p.clk.Now()
	if m.Orig == p.host.ID() {
		return
	}
	p.mu.Lock()
	key := dupKey{m.Orig, m.Seq}
	dv, dup := p.dups[key]
	// RFC 3626 duplicate handling: the tuples are processed once (first
	// copy), but any copy may trigger the single retransmission — the
	// first copy often arrives from a neighbour that did not select us as
	// MPR while a later copy comes from one that did. Without the fwd flag
	// the TC would then never be relayed here at all, and distant nodes
	// would miss whole TC rounds.
	_, isSelector := p.selectors[from]
	doFwd := isSelector && m.TTL > 1 && !dv.fwd
	if dup && !doFwd {
		p.mu.Unlock()
		return
	}
	if !dup {
		dv.at = now
		// Dup entries only need to outlive the flood's flight time (plus
		// queueing slack under load), not the topology hold: holding them
		// for TopologyHold made the set scale with hold×N and blow the
		// hard cap at 1024 nodes, and evicting *live* entries turns
		// re-arriving copies into fresh re-forwards — a flood multiplier
		// exactly when the network is busiest. Two TC intervals cover any
		// copy still in flight by the time its seq is superseded.
		heap.Push(&p.dupQ, dupQItem{key: key, expires: now.Add(2 * p.cfg.TCInterval)})
	}
	if doFwd {
		dv.fwd = true
	}
	p.dups[key] = dv
	// Lazy pruning off the deadline heap: drop entries past their hold time,
	// and under the hard cap keep evicting the soonest-to-expire so a
	// 1024-node TC storm cannot grow the set without bound. O(evicted log n)
	// instead of the old full-map sweep.
	for len(p.dupQ) > 0 && (now.After(p.dupQ[0].expires) || len(p.dups) > dupHardCap) {
		it := heap.Pop(&p.dupQ).(dupQItem)
		delete(p.dups, it.key)
	}
	// Install/refresh the advertised tuples first, then purge whatever the
	// new ANSN no longer advertises. Only an edge appearing or vanishing
	// dirties the route state; a periodic TC re-advertising the same
	// selector set merely refreshes expiries and schedules nothing.
	changed := false
	if !dup {
		tm := p.topology[m.Orig]
		if tm == nil {
			tm = make(map[netem.NodeID]topoVal, len(m.Selectors))
			p.topology[m.Orig] = tm
		}
		for _, sel := range m.Selectors {
			if cur, ok := tm[sel]; !ok || !ansnOlder(m.ANSN, cur.ansn) {
				// A refresh of a tuple that already time-expired is a
				// real change: rebuilds between expiry and this refresh
				// excluded the edge, so reviving it must dirty the route
				// state even though the key never left the map.
				if !ok || now.After(cur.expires) {
					changed = true
				}
				tm[sel] = topoVal{ansn: m.ANSN, expires: now.Add(p.cfg.TopologyHold)}
			}
		}
		for dest, v := range tm {
			if ansnOlder(v.ansn, m.ANSN) {
				delete(tm, dest)
				changed = true
			}
		}
		if len(tm) == 0 {
			delete(p.topology, m.Orig)
		}
	}
	p.mu.Unlock()
	if changed {
		p.scheduleRecompute()
	}

	if doFwd {
		fwd := *m
		fwd.TTL--
		p.mu.Lock()
		p.stats.TCFwd++
		p.mu.Unlock()
		p.sendControl(KindTC, fwd.Marshal())
	}
}

// ansnOlder reports whether a is older than b with 16-bit wraparound.
func ansnOlder(a, b uint16) bool {
	return a != b && int16(a-b) < 0
}

func (p *Protocol) helloLoop() {
	defer p.wg.Done()
	for {
		timer := p.clk.NewTimer(p.cfg.HelloInterval)
		select {
		case <-p.stop:
			timer.Stop()
			return
		case <-timer.C():
		}
		p.expire()
		p.sendHello()
	}
}

func (p *Protocol) sendHello() {
	p.mu.Lock()
	m := &Hello{}
	for nb, ls := range p.links {
		link := LinkAsym
		if ls.sym {
			link = LinkSym
		}
		m.Neighbors = append(m.Neighbors, HelloNeighbor{
			Addr: nb,
			Link: link,
			MPR:  p.mprs[nb],
		})
	}
	p.stats.HelloSent++
	p.mu.Unlock()
	p.sendControl(KindHello, m.Marshal())
}

func (p *Protocol) tcLoop() {
	defer p.wg.Done()
	for {
		timer := p.clk.NewTimer(p.cfg.TCInterval)
		select {
		case <-p.stop:
			timer.Stop()
			return
		case <-timer.C():
		}
		p.sendTC()
	}
}

func (p *Protocol) sendTC() {
	p.mu.Lock()
	if len(p.selectors) == 0 {
		p.mu.Unlock()
		return // only MPRs advertise topology
	}
	p.seq++
	m := &TC{Orig: p.host.ID(), Seq: p.seq, TTL: p.cfg.MaxTTL}
	for sel := range p.selectors {
		m.Selectors = append(m.Selectors, sel)
	}
	if p.cfg.Fisheye {
		// ANSN advances only when the advertised set actually changes (the
		// RFC 3626 rule). Receivers then refresh expiries from decimated
		// near-zone floods at the same ANSN. Changes are NOT boosted to
		// full TTL: an earlier design flooded MaxTTL for two rounds after
		// every selector change, and at 1024 nodes bring-up churn re-armed
		// that boost network-wide — a self-amplifying forward storm (load
		// delays HELLOs, links flap, every flap re-arms full floods). Far
		// zones instead pick up changes at the staggered far cadence.
		var h uint64
		for sel := range p.selectors {
			h += hashEdge(hashSel, sel, "")
		}
		if !p.selInit || h != p.selHash {
			p.selInit = true
			p.selHash = h
			p.ansn++
		}
		p.tcCount++
		if p.tcCount%uint64(p.cfg.FisheyeFarEvery) != p.farPhase && p.cfg.FisheyeNearTTL < p.cfg.MaxTTL {
			m.TTL = p.cfg.FisheyeNearTTL
		}
	} else {
		p.ansn++
	}
	m.ANSN = p.ansn
	p.stats.TCSent++
	p.mu.Unlock()
	p.sendControl(KindTC, m.Marshal())
}

// expire drops stale links, selectors and topology tuples.
func (p *Protocol) expire() {
	now := p.clk.Now()
	changed := false
	p.mu.Lock()
	for nb, ls := range p.links {
		if now.Sub(ls.lastHeard) > p.cfg.NeighborHold {
			delete(p.links, nb)
			delete(p.twoHop, nb)
			changed = true
		}
	}
	for nb, exp := range p.selectors {
		if now.After(exp) {
			delete(p.selectors, nb)
		}
	}
	for orig, tm := range p.topology {
		for dest, v := range tm {
			if now.After(v.expires) {
				delete(tm, dest)
				changed = true
			}
		}
		if len(tm) == 0 {
			delete(p.topology, orig)
		}
	}
	p.mu.Unlock()
	if changed {
		p.recompute()
	}
}

// scheduleRecompute coalesces route recomputation: a full greedy-MPR +
// route rebuild used to run on every single HELLO/TC arrival, which is
// O(messages) work per interval in dense networks. The first arrival still
// recomputes immediately (no added convergence latency), then opens a
// hold-down window of half a HELLO interval; arrivals during the window are
// folded into one trailing recompute when it closes. Steady-state recompute
// rate is therefore bounded per interval regardless of neighbour count.
func (p *Protocol) scheduleRecompute() {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return
	}
	if p.recomputeHold {
		p.recomputeQueued = true
		p.mu.Unlock()
		return
	}
	p.recomputeHold = true
	if p.cfg.Sched != nil {
		p.mu.Unlock()
		p.recompute()
		key := string(p.host.ID())
		window := p.cfg.HelloInterval / 2
		var tick func(time.Time)
		tick = func(time.Time) {
			p.mu.Lock()
			queued := p.recomputeQueued && p.started
			p.recomputeQueued = false
			if !queued {
				p.recomputeHold = false
				p.mu.Unlock()
				return
			}
			p.mu.Unlock()
			p.recompute()
			p.cfg.Sched.After(key, window, tick)
		}
		p.cfg.Sched.After(key, window, tick)
		return
	}
	p.wg.Add(1)
	p.mu.Unlock()
	p.recompute()
	go func() {
		defer p.wg.Done()
		for {
			timer := p.clk.NewTimer(p.cfg.HelloInterval / 2)
			select {
			case <-p.stop:
				timer.Stop()
				return
			case <-timer.C():
			}
			p.mu.Lock()
			queued := p.recomputeQueued
			p.recomputeQueued = false
			if !queued {
				p.recomputeHold = false
				p.mu.Unlock()
				return
			}
			p.mu.Unlock()
			p.recompute()
		}
	}()
}

// hashEdge folds one link-state element into the order-independent input
// hash: a per-element FNV-1a digest, summed so the combined value does not
// depend on map iteration order.
func hashEdge(kind byte, a, b netem.NodeID) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h ^= uint64(kind)
	h *= prime
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= prime
	}
	h ^= 0xff // separator so ("ab","c") and ("a","bc") differ
	h *= prime
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime
	}
	return h
}

// Element kinds for hashEdge.
const (
	hashLink byte = 1 // symmetric 1-hop link
	hashTwo  byte = 2 // 2-hop edge (neighbour -> its neighbour)
	hashTopo byte = 3 // TC-advertised topology edge
	hashSel  byte = 4 // MPR selector (fisheye set-change detection)
)

// inputHashLocked digests everything the MPR selection and BFS read: the
// symmetric link set, the 2-hop sets and the live topology edges. Expiry
// timestamps are deliberately excluded — refreshes that keep the same edge
// set do not change the computed routes.
func (p *Protocol) inputHashLocked(now time.Time) uint64 {
	var h uint64
	for nb, ls := range p.links {
		if ls.sym {
			h += hashEdge(hashLink, nb, "")
		}
	}
	for nb, set := range p.twoHop {
		for two := range set {
			h += hashEdge(hashTwo, nb, two)
		}
	}
	for orig, tm := range p.topology {
		for dest, v := range tm {
			if now.After(v.expires) {
				continue
			}
			h += hashEdge(hashTopo, orig, dest)
		}
	}
	return h
}

// recompute rebuilds MPRs and routes unless the link-state inputs hash
// identical to the last executed rebuild (the steady-state case: periodic
// HELLO/TC refreshes that change nothing).
func (p *Protocol) recompute() { p.recomputeImpl(false) }

// recomputeFull forces the rebuild even on unchanged inputs — the reference
// path the incremental-vs-full golden equivalence test compares against.
func (p *Protocol) recomputeFull() { p.recomputeImpl(true) }

// recomputeImpl reselects MPRs and rebuilds the route table (greedy MPR
// cover + BFS shortest paths over 1-hop links and TC-advertised edges). The
// traversal is deterministic — neighbour lists are expanded in sorted order —
// so identical inputs always produce a bit-identical table.
func (p *Protocol) recomputeImpl(force bool) {
	self := p.host.ID()
	now := p.clk.Now()
	p.mu.Lock()
	h := p.inputHashLocked(now)
	if !force && h == p.stateHash {
		p.stats.RecomputeSkipped++
		p.mu.Unlock()
		return
	}
	p.stateHash = h
	p.stats.Recompute++
	// --- MPR selection: greedy cover of the 2-hop neighbourhood.
	symNbs := make([]netem.NodeID, 0, len(p.links))
	for nb, ls := range p.links {
		if ls.sym {
			symNbs = append(symNbs, nb)
		}
	}
	uncovered := make(map[netem.NodeID]bool)
	for _, nb := range symNbs {
		for two := range p.twoHop[nb] {
			if two == self {
				continue
			}
			if _, direct := p.links[two]; direct && p.links[two].sym {
				continue // reachable in one hop anyway
			}
			uncovered[two] = true
		}
	}
	mprs := make(map[netem.NodeID]bool)
	for len(uncovered) > 0 {
		var best netem.NodeID
		bestCover := 0
		for _, nb := range symNbs {
			if mprs[nb] {
				continue
			}
			cover := 0
			for two := range p.twoHop[nb] {
				if uncovered[two] {
					cover++
				}
			}
			if cover > bestCover || (cover == bestCover && cover > 0 && (best == "" || nb < best)) {
				best, bestCover = nb, cover
			}
		}
		if bestCover == 0 {
			break // remaining 2-hop nodes are not coverable
		}
		mprs[best] = true
		for two := range p.twoHop[best] {
			delete(uncovered, two)
		}
	}
	p.mprs = mprs

	// --- Route computation: BFS over sym links + topology edges. The
	// start set and every adjacency list are sorted so the traversal —
	// and therefore next-hop tie-breaks between equal-length paths — is
	// a pure function of the link-state inputs.
	sort.Slice(symNbs, func(i, j int) bool { return symNbs[i] < symNbs[j] })
	type hop struct {
		next netem.NodeID
		dist int
	}
	routes := make(map[netem.NodeID]hop, len(p.links)+len(p.topology))
	queue := make([]netem.NodeID, 0, len(symNbs))
	for _, nb := range symNbs {
		routes[nb] = hop{next: nb, dist: 1}
		queue = append(queue, nb)
	}
	// Adjacency from TC tuples: last -> dest (treated as bidirectional,
	// since a TC edge reflects a symmetric MPR-selector link).
	adj := make(map[netem.NodeID][]netem.NodeID)
	for orig, tm := range p.topology {
		for dest, v := range tm {
			if now.After(v.expires) {
				continue
			}
			adj[orig] = append(adj[orig], dest)
			adj[dest] = append(adj[dest], orig)
		}
	}
	// Also 2-hop sets give edges nb -> two.
	for nb, set := range p.twoHop {
		for two := range set {
			adj[nb] = append(adj[nb], two)
		}
	}
	for _, edges := range adj {
		sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		curHop := routes[cur]
		for _, nxt := range adj[cur] {
			if nxt == self {
				continue
			}
			if _, seen := routes[nxt]; seen {
				continue
			}
			routes[nxt] = hop{next: curHop.next, dist: curHop.dist + 1}
			queue = append(queue, nxt)
		}
	}
	entries := make([]routing.Entry, 0, len(routes))
	for dst, h := range routes {
		entries = append(entries, routing.Entry{Dst: dst, NextHop: h.next, Hops: h.dist})
	}
	// Replace under p.mu: with the hash gate, a stale table installed by a
	// concurrent rebuild racing Replace outside the lock would persist
	// (the next arrival would hash "unchanged" and skip the fix).
	p.table.Replace(entries)
	p.mu.Unlock()
}
