// Package routing defines the contract between MANET routing protocols
// (AODV, OLSR) and the rest of the system: the forwarding engine consumes
// next hops via netem.RouteProvider, and the MANET SLP layer piggybacks
// service information onto routing control messages through the
// PiggybackHandler hook — the in-process equivalent of the paper's
// libipq-based routing handler that captures and extends raw routing
// packets.
package routing

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"siphoc/internal/netem"
)

// Protocol numbers carried in the routing-frame envelope.
const (
	ProtoAODV uint8 = 1
	ProtoOLSR uint8 = 2
)

// ProtoName returns a human-readable protocol name.
func ProtoName(p uint8) string {
	switch p {
	case ProtoAODV:
		return "AODV"
	case ProtoOLSR:
		return "OLSR"
	default:
		return fmt.Sprintf("proto(%d)", p)
	}
}

// Protocol is a runnable MANET routing protocol bound to one host.
type Protocol interface {
	netem.RouteProvider
	// Name returns the protocol name ("AODV", "OLSR").
	Name() string
	// Start begins protocol operation (periodic timers, frame handling).
	Start() error
	// Stop terminates the protocol and waits for its goroutines.
	Stop()
	// SetPiggyback installs the handler that may extend outgoing control
	// messages and receives extensions found on incoming ones. Must be
	// called before Start.
	SetPiggyback(h PiggybackHandler)
	// Routes returns a snapshot of the current routing table.
	Routes() []Entry
}

// PiggybackHandler is the paper's "routing handler plugin": a software
// module that receives routing packets and produces altered packets carrying
// piggybacked service information.
type PiggybackHandler interface {
	// Outgoing is invoked for every control message about to be sent.
	// It may return up to budget bytes of extension payload to attach,
	// or nil to leave the message untouched.
	Outgoing(msg Outgoing) []byte
	// Incoming is invoked for every received control message that
	// carries an extension.
	Incoming(msg Incoming)
}

// Outgoing describes a control message about to leave the node.
type Outgoing struct {
	Proto  uint8
	Kind   uint8
	Kind2  string // human-readable kind, e.g. "RREP"
	Dst    netem.NodeID
	Budget int
}

// Incoming describes a received control message carrying an extension.
type Incoming struct {
	From  netem.NodeID
	Proto uint8
	Kind  uint8
	Kind2 string
	Ext   []byte
}

// Envelope is the wire format shared by all routing control frames:
//
//	proto u8 | kind u8 | bodyLen u16 | body | extLen u16 | ext
//
// The trailing extension slot is where MANET SLP payloads ride along,
// mirroring the paper's packet-mangling approach (Figure 5 shows an AODV
// route reply with encapsulated SIP contact information).
type Envelope struct {
	Proto uint8
	Kind  uint8
	Body  []byte
	Ext   []byte
}

// Marshal encodes the envelope.
func (e *Envelope) Marshal() ([]byte, error) {
	buf, err := AppendEnvelope(nil, e.Proto, e.Kind, e.Body, e.Ext)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// AppendEnvelope appends the wire form of an envelope to b, sparing send
// paths the intermediate Envelope struct and its escape to the heap.
func AppendEnvelope(b []byte, proto, kind uint8, body, ext []byte) ([]byte, error) {
	if len(body) > 0xffff || len(ext) > 0xffff {
		return nil, fmt.Errorf("routing: envelope section too large")
	}
	if b == nil {
		b = make([]byte, 0, 6+len(body)+len(ext))
	}
	b = append(b, proto, kind)
	b = binary.BigEndian.AppendUint16(b, uint16(len(body)))
	b = append(b, body...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(ext)))
	b = append(b, ext...)
	return b, nil
}

// ParseEnvelope decodes a routing frame. Body and Ext alias the input
// rather than copying: frame payloads are freshly marshalled per transmit
// and never mutated after delivery, and every decoder downstream
// (wire.Reader.String, slp.ParsePayload) copies what it keeps — so each
// receiver of a broadcast control frame skips up to two allocations.
func ParseEnvelope(b []byte) (*Envelope, error) {
	e := &Envelope{}
	if err := ParseEnvelopeInto(e, b); err != nil {
		return nil, err
	}
	return e, nil
}

// ParseEnvelopeInto decodes into a caller-supplied envelope, sparing hot
// receive paths the heap allocation of the returned struct: a stack-local
// Envelope filled here never escapes. Aliasing rules match ParseEnvelope.
func ParseEnvelopeInto(e *Envelope, b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("routing: short envelope")
	}
	e.Proto, e.Kind = b[0], b[1]
	e.Body, e.Ext = nil, nil
	n := int(binary.BigEndian.Uint16(b[2:4]))
	b = b[4:]
	if len(b) < n+2 {
		return fmt.Errorf("routing: truncated body")
	}
	e.Body = b[:n]
	b = b[n:]
	m := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	if len(b) < m {
		return fmt.Errorf("routing: truncated extension")
	}
	if m > 0 {
		e.Ext = b[:m]
	}
	return nil
}

// ExtBudget returns the extension space left for a control message whose
// body is bodyLen bytes, keeping the whole frame within the link MTU.
func ExtBudget(bodyLen int) int {
	b := netem.MTU - 6 - bodyLen
	if b < 0 {
		return 0
	}
	if b > 0xffff {
		b = 0xffff
	}
	return b
}

// Entry is one route-table row.
type Entry struct {
	Dst     netem.NodeID
	NextHop netem.NodeID
	Hops    int
	SeqNo   uint32
	Expires time.Time // zero means no expiry (proactive protocols)
}

// Table is a concurrency-safe route table shared by protocol
// implementations. Expiry is evaluated lazily against the supplied clock
// time on lookup.
type Table struct {
	mu      sync.Mutex
	entries map[netem.NodeID]Entry
	// spare is the previous generation's map, kept for Replace to clear and
	// refill: proactive protocols call Replace on every recompute, and
	// minting a fresh map each time made Replace the system's second
	// largest allocation site (16% of all bytes in the 1024-node scale
	// study). Double-buffering means steady traffic reuses two maps
	// forever, growing only when the route count reaches a new high water.
	spare map[netem.NodeID]Entry
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{
		entries: make(map[netem.NodeID]Entry),
		spare:   make(map[netem.NodeID]Entry),
	}
}

// Upsert installs or replaces the route for e.Dst.
func (t *Table) Upsert(e Entry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[e.Dst] = e
}

// UpsertIfFresher installs e only if it is fresher (higher seqno) or equally
// fresh but shorter than the current route — the AODV route-selection rule.
// It reports whether the table changed.
func (t *Table) UpsertIfFresher(e Entry) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, ok := t.entries[e.Dst]
	if ok && cur.SeqNo > e.SeqNo {
		return false
	}
	if ok && cur.SeqNo == e.SeqNo && cur.Hops <= e.Hops {
		// Equally fresh but not shorter: keep the current route, but
		// refresh its lifetime so active paths do not expire.
		if e.Expires.After(cur.Expires) {
			cur.Expires = e.Expires
			t.entries[e.Dst] = cur
		}
		return false
	}
	t.entries[e.Dst] = e
	return true
}

// Lookup returns the live route for dst at time now.
func (t *Table) Lookup(dst netem.NodeID, now time.Time) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[dst]
	if !ok {
		return Entry{}, false
	}
	if !e.Expires.IsZero() && now.After(e.Expires) {
		delete(t.entries, dst)
		return Entry{}, false
	}
	return e, true
}

// Remove deletes the route for dst, returning the removed entry if any.
func (t *Table) Remove(dst netem.NodeID) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[dst]
	if ok {
		delete(t.entries, dst)
	}
	return e, ok
}

// RemoveByNextHop deletes all routes through nh and returns them — what a
// node does when it detects a broken link before emitting an RERR.
func (t *Table) RemoveByNextHop(nh netem.NodeID) []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var removed []Entry
	for dst, e := range t.entries {
		if e.NextHop == nh {
			removed = append(removed, e)
			delete(t.entries, dst)
		}
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i].Dst < removed[j].Dst })
	return removed
}

// Replace swaps in a whole new table atomically (proactive recomputation).
// The input slice is copied into the table's double-buffered map; the caller
// may reuse it immediately.
func (t *Table) Replace(entries []Entry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	clear(t.spare)
	for _, e := range entries {
		t.spare[e.Dst] = e
	}
	t.entries, t.spare = t.spare, t.entries
}

// Snapshot returns all live entries sorted by destination.
func (t *Table) Snapshot(now time.Time) []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		if !e.Expires.IsZero() && now.After(e.Expires) {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dst < out[j].Dst })
	return out
}

// Len returns the number of entries including possibly expired ones.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}
