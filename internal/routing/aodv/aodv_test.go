package aodv

import (
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"siphoc/internal/netem"
	"siphoc/internal/routing"
)

func TestRREQRoundTrip(t *testing.T) {
	in := &RREQ{
		ID: 42, HopCount: 3, TTL: 30,
		Orig: "10.0.0.1", OrigSeq: 7,
		Dst: "10.0.0.9", DstSeq: 5, UnknownSeq: true,
	}
	out, err := ParseRREQ(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("mismatch: %+v vs %+v", in, out)
	}
}

func TestMessageCodecsQuick(t *testing.T) {
	rreq := func(id uint32, hc, ttl uint8, orig, dst string, os, ds uint32, unk bool) bool {
		if len(orig) > 1000 || len(dst) > 1000 {
			return true
		}
		in := &RREQ{ID: id, HopCount: hc, TTL: ttl, Orig: netem.NodeID(orig), OrigSeq: os,
			Dst: netem.NodeID(dst), DstSeq: ds, UnknownSeq: unk}
		out, err := ParseRREQ(in.Marshal())
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(rreq, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("RREQ: %v", err)
	}
	rrep := func(hc uint8, orig, dst string, seq, life uint32) bool {
		if len(orig) > 1000 || len(dst) > 1000 {
			return true
		}
		in := &RREP{HopCount: hc, Orig: netem.NodeID(orig), Dst: netem.NodeID(dst), DstSeq: seq, LifetimeMs: life}
		out, err := ParseRREP(in.Marshal())
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(rrep, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("RREP: %v", err)
	}
	hello := func(seq uint32) bool {
		out, err := ParseHello((&Hello{Seq: seq}).Marshal())
		return err == nil && out.Seq == seq
	}
	if err := quick.Check(hello, nil); err != nil {
		t.Fatalf("HELLO: %v", err)
	}
}

func TestRERRCodec(t *testing.T) {
	in := &RERR{Unreachable: []Unreachable{{Dst: "a", Seq: 1}, {Dst: "b", Seq: 9}}}
	out, err := ParseRERR(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("mismatch: %+v vs %+v", in, out)
	}
	if _, err := ParseRERR([]byte{5}); err == nil {
		t.Fatal("truncated RERR accepted")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1}, {1, 2, 3}} {
		if _, err := ParseRREQ(b); err == nil {
			t.Fatalf("ParseRREQ(%v) accepted", b)
		}
		if _, err := ParseRREP(b); err == nil {
			t.Fatalf("ParseRREP(%v) accepted", b)
		}
	}
}

// startChain builds an n-node chain running AODV and returns the network,
// hosts and protocols. Cleanup is registered on t.
func startChain(t *testing.T, n int) (*netem.Network, []*netem.Host, []*Protocol) {
	t.Helper()
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	t.Cleanup(net.Close)
	hosts, err := netem.Chain(net, n, 90, "10.0.0")
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]*Protocol, n)
	for i, h := range hosts {
		protos[i] = New(h, SimConfig())
		if err := protos[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, p := range protos {
			p.Stop()
		}
	})
	return net, hosts, protos
}

func TestRouteDiscoveryOverChain(t *testing.T) {
	_, hosts, protos := startChain(t, 5)
	src, dst := protos[0], hosts[4].ID()

	done := make(chan bool, 1)
	src.RequestRoute(dst, func(ok bool) { done <- ok })
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("route discovery failed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("discovery timed out")
	}
	nh, ok := src.NextHop(dst)
	if !ok || nh != hosts[1].ID() {
		t.Fatalf("NextHop = %v,%v; want %v", nh, ok, hosts[1].ID())
	}
	// Every relay must now know the forward route.
	for i := 1; i < 4; i++ {
		if nh, ok := protos[i].NextHop(dst); !ok || nh != hosts[i+1].ID() {
			t.Fatalf("relay %d NextHop = %v,%v", i, nh, ok)
		}
	}
	if protos[0].Stats().Discovered != 1 {
		t.Fatalf("Discovered = %d", protos[0].Stats().Discovered)
	}
}

func TestEndToEndDatagramViaAODV(t *testing.T) {
	_, hosts, _ := startChain(t, 4)
	cs, err := hosts[0].Listen(100)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := hosts[3].Listen(200)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	defer cd.Close()
	if err := cs.WriteTo([]byte("voice"), hosts[3].ID(), 200); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("datagram never arrived")
		default:
		}
		if dg, ok := cd.TryRecv(); ok {
			if string(dg.Data) != "voice" {
				t.Fatalf("payload = %q", dg.Data)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDiscoveryFailsForUnreachable(t *testing.T) {
	_, _, protos := startChain(t, 2)
	done := make(chan bool, 1)
	protos[0].RequestRoute("10.9.9.9", func(ok bool) { done <- ok })
	select {
	case ok := <-done:
		if ok {
			t.Fatal("discovered a route to a nonexistent node")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("discovery never concluded")
	}
	if protos[0].Stats().Failed != 1 {
		t.Fatalf("Failed = %d", protos[0].Stats().Failed)
	}
}

func TestConcurrentDiscoveriesCoalesce(t *testing.T) {
	_, hosts, protos := startChain(t, 3)
	var wg sync.WaitGroup
	results := make(chan bool, 8)
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch := make(chan bool, 1)
			protos[0].RequestRoute(hosts[2].ID(), func(ok bool) { ch <- ok })
			results <- <-ch
		}()
	}
	wg.Wait()
	close(results)
	for ok := range results {
		if !ok {
			t.Fatal("coalesced discovery failed")
		}
	}
	// All eight callers share at most (1+retries) RREQ transmissions.
	if s := protos[0].Stats(); s.RREQSent > int64(1+SimConfig().RREQRetries) {
		t.Fatalf("RREQSent = %d; coalescing broken", s.RREQSent)
	}
}

func TestLinkBreakTriggersRERR(t *testing.T) {
	net, hosts, protos := startChain(t, 4)
	done := make(chan bool, 1)
	protos[0].RequestRoute(hosts[3].ID(), func(ok bool) { done <- ok })
	if ok := <-done; !ok {
		t.Fatal("initial discovery failed")
	}
	// Kill the last node; its upstream neighbour must detect the loss and
	// the stale route must disappear at the source.
	net.RemoveHost(hosts[3].ID())
	deadline := time.After(10 * time.Second)
	for {
		if _, ok := protos[0].NextHop(hosts[3].ID()); !ok {
			return
		}
		select {
		case <-deadline:
			t.Fatal("stale route survived link break")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestRouteRepairAfterPartitionHeals(t *testing.T) {
	net, hosts, protos := startChain(t, 3)
	mid := hosts[1].ID()
	// Partition: drop the middle links.
	net.SetLink(hosts[0].ID(), mid, false)
	ch := make(chan bool, 1)
	protos[0].RequestRoute(hosts[2].ID(), func(ok bool) { ch <- ok })
	if ok := <-ch; ok {
		t.Fatal("discovery succeeded across a partition")
	}
	// Heal and retry.
	net.ClearLink(hosts[0].ID(), mid)
	ch2 := make(chan bool, 1)
	protos[0].RequestRoute(hosts[2].ID(), func(ok bool) { ch2 <- ok })
	select {
	case ok := <-ch2:
		if !ok {
			t.Fatal("discovery failed after partition healed")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("discovery timed out after heal")
	}
}

type capturingHandler struct {
	mu       sync.Mutex
	ext      []byte
	incoming []routing.Incoming
	budgets  []int
}

func (c *capturingHandler) Outgoing(msg routing.Outgoing) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budgets = append(c.budgets, msg.Budget)
	return c.ext
}

func (c *capturingHandler) Incoming(msg routing.Incoming) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.incoming = append(c.incoming, msg)
}

func TestPiggybackExtensionDelivered(t *testing.T) {
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	defer net.Close()
	hosts, err := netem.Chain(net, 2, 50, "n")
	if err != nil {
		t.Fatal(err)
	}
	sender := New(hosts[0], SimConfig())
	receiver := New(hosts[1], SimConfig())
	hs := &capturingHandler{ext: []byte("service:sip://alice")}
	hr := &capturingHandler{}
	sender.SetPiggyback(hs)
	receiver.SetPiggyback(hr)
	if err := sender.Start(); err != nil {
		t.Fatal(err)
	}
	if err := receiver.Start(); err != nil {
		t.Fatal(err)
	}
	defer sender.Stop()
	defer receiver.Stop()

	done := make(chan bool, 1)
	sender.RequestRoute(hosts[1].ID(), func(ok bool) { done <- ok })
	if ok := <-done; !ok {
		t.Fatal("discovery failed")
	}
	deadline := time.After(5 * time.Second)
	for {
		hr.mu.Lock()
		n := len(hr.incoming)
		var first routing.Incoming
		if n > 0 {
			first = hr.incoming[0]
		}
		hr.mu.Unlock()
		if n > 0 {
			if string(first.Ext) != "service:sip://alice" {
				t.Fatalf("ext = %q", first.Ext)
			}
			if first.Proto != routing.ProtoAODV {
				t.Fatalf("proto = %d", first.Proto)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("extension never delivered")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Budgets offered must stay within the MTU budget rule.
	hs.mu.Lock()
	defer hs.mu.Unlock()
	for _, b := range hs.budgets {
		if b <= 0 || b > routing.ExtBudget(0) {
			t.Fatalf("budget out of range: %d", b)
		}
	}
}

func TestStopIsIdempotentAndFailsPending(t *testing.T) {
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	defer net.Close()
	h, err := net.AddHost("solo", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	p := New(h, SimConfig())
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	p.RequestRoute("ghost", func(ok bool) { done <- ok })
	p.Stop()
	p.Stop()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pending discovery reported success after Stop")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending discovery never completed after Stop")
	}
	if err := p.Start(); err == nil {
		// Restart after stop is not supported; a fresh instance is.
		t.Skip("restart unexpectedly supported")
	}
}

func TestFreshnessRulePrefersHigherSeq(t *testing.T) {
	tbl := routing.NewTable()
	now := time.Now()
	tbl.UpsertIfFresher(routing.Entry{Dst: "d", NextHop: "a", Hops: 2, SeqNo: 5, Expires: now.Add(time.Hour)})
	// Older seqno must not replace.
	if tbl.UpsertIfFresher(routing.Entry{Dst: "d", NextHop: "b", Hops: 1, SeqNo: 4, Expires: now.Add(time.Hour)}) {
		t.Fatal("stale route replaced fresher one")
	}
	// Same seqno, shorter path must replace.
	if !tbl.UpsertIfFresher(routing.Entry{Dst: "d", NextHop: "c", Hops: 1, SeqNo: 5, Expires: now.Add(time.Hour)}) {
		t.Fatal("shorter route at same freshness rejected")
	}
	// Higher seqno always replaces, even if longer.
	if !tbl.UpsertIfFresher(routing.Entry{Dst: "d", NextHop: "e", Hops: 9, SeqNo: 6, Expires: now.Add(time.Hour)}) {
		t.Fatal("fresher route rejected")
	}
	e, ok := tbl.Lookup("d", now)
	if !ok || e.NextHop != "e" {
		t.Fatalf("final route = %+v, %v", e, ok)
	}
}
