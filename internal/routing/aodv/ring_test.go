package aodv

import (
	"testing"
	"time"

	"siphoc/internal/netem"
)

// startChainWithConfig builds an n-node chain with the given AODV config.
func startChainWithConfig(t *testing.T, n int, cfg Config) (*netem.Network, []*netem.Host, []*Protocol) {
	t.Helper()
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	t.Cleanup(net.Close)
	hosts, err := netem.Chain(net, n, 90, "10.0.0")
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]*Protocol, n)
	for i, h := range hosts {
		protos[i] = New(h, cfg)
		if err := protos[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, p := range protos {
			p.Stop()
		}
	})
	return net, hosts, protos
}

func noHelloConfig(ring bool) Config {
	// Hellos off so RREQ forwarding counts are exactly the flood size.
	c := Config{
		DiscoveryTimeout:   200 * time.Millisecond,
		RREQRetries:        2,
		ActiveRouteTimeout: 10 * time.Second,
		ExpandingRing:      ring,
	}.withDefaults()
	c.EnableHello = false
	return c
}

func discoverOK(t *testing.T, p *Protocol, dst netem.NodeID) {
	t.Helper()
	done := make(chan bool, 1)
	p.RequestRoute(dst, func(ok bool) { done <- ok })
	select {
	case ok := <-done:
		if !ok {
			t.Fatalf("discovery to %s failed", dst)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("discovery timed out")
	}
}

func totalRREQFwd(protos []*Protocol) int64 {
	var sum int64
	for _, p := range protos {
		sum += p.Stats().RREQFwd
	}
	return sum
}

// startGridWithConfig builds a rows×cols grid with the given AODV config.
func startGridWithConfig(t *testing.T, rows, cols int, cfg Config) ([]*netem.Host, []*Protocol) {
	t.Helper()
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	t.Cleanup(net.Close)
	hosts, err := netem.Grid(net, rows, cols, 80, "g")
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]*Protocol, len(hosts))
	for i, h := range hosts {
		protos[i] = New(h, cfg)
		if err := protos[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, p := range protos {
			p.Stop()
		}
	})
	return hosts, protos
}

// TestExpandingRingLimitsFlood is the ablation behind the ✦ design choice:
// for a nearby destination the first ring must cover it, keeping the rest
// of the network out of the flood. A chain would hide the effect (the flood
// always dies at the destination there), so a 4×4 grid is used: the RREQ
// for a corner's 2-hop neighbour floods the whole grid without the ring.
func TestExpandingRingLimitsFlood(t *testing.T) {
	hostsFull, protosFull := startGridWithConfig(t, 4, 4, noHelloConfig(false))
	discoverOK(t, protosFull[0], hostsFull[2].ID()) // g.1 -> g.3, 2 hops
	time.Sleep(100 * time.Millisecond)              // let the flood finish propagating
	fullFwd := totalRREQFwd(protosFull)

	hostsRing, protosRing := startGridWithConfig(t, 4, 4, noHelloConfig(true))
	discoverOK(t, protosRing[0], hostsRing[2].ID())
	time.Sleep(100 * time.Millisecond)
	ringFwd := totalRREQFwd(protosRing)

	if ringFwd >= fullFwd {
		t.Fatalf("expanding ring did not shrink the flood: ring=%d full=%d", ringFwd, fullFwd)
	}
	if fullFwd < 5 {
		t.Fatalf("full flood suspiciously small: %d forwards", fullFwd)
	}
}

// TestExpandingRingEscalatesToFarDestination verifies the ring widens until
// it reaches a destination beyond the probe TTLs.
func TestExpandingRingEscalatesToFarDestination(t *testing.T) {
	_, hosts, protos := startChainWithConfig(t, 8, noHelloConfig(true))
	src, dst := protos[0], hosts[7].ID() // 7 hops: beyond both rings
	discoverOK(t, src, dst)
	if _, ok := src.NextHop(dst); !ok {
		t.Fatal("route missing after escalated discovery")
	}
	// Multiple RREQ attempts were needed (2-ring, 5-ring, then full).
	if s := src.Stats(); s.RREQSent < 3 {
		t.Fatalf("RREQSent = %d, want >= 3 (ring escalation)", s.RREQSent)
	}
}

func TestAttemptPlanShape(t *testing.T) {
	p := New(nil, noHelloConfig(true))
	plan := p.attemptPlan()
	// 2 rings + (1 + 2 retries) full floods.
	if len(plan) != 5 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan[0].ttl != 2 || plan[1].ttl != 5 {
		t.Fatalf("ring ttls = %d, %d", plan[0].ttl, plan[1].ttl)
	}
	for _, a := range plan[2:] {
		if a.ttl != p.cfg.NetDiameter {
			t.Fatalf("full flood ttl = %d", a.ttl)
		}
	}
	if plan[0].timeout >= plan[2].timeout {
		t.Fatalf("ring timeout %v not shorter than full %v", plan[0].timeout, plan[2].timeout)
	}
	// Without the ring: only full floods.
	p2 := New(nil, noHelloConfig(false))
	if plan2 := p2.attemptPlan(); len(plan2) != 3 || plan2[0].ttl != p2.cfg.NetDiameter {
		t.Fatalf("no-ring plan = %+v", plan2)
	}
}
