package aodv

import (
	"reflect"
	"testing"
)

func FuzzParseRREQ(f *testing.F) {
	f.Add((&RREQ{ID: 1, HopCount: 2, TTL: 30, Orig: "a", OrigSeq: 3, Dst: "b", DstSeq: 4, UnknownSeq: true}).Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseRREQ(data)
		if err != nil {
			return
		}
		m2, err := ParseRREQ(m.Marshal())
		if err != nil || !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip: %+v vs %+v (%v)", m, m2, err)
		}
	})
}

func FuzzParseRREP(f *testing.F) {
	f.Add((&RREP{HopCount: 1, Orig: "a", Dst: "b", DstSeq: 2, LifetimeMs: 3}).Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseRREP(data)
		if err != nil {
			return
		}
		m2, err := ParseRREP(m.Marshal())
		if err != nil || !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip: %+v vs %+v (%v)", m, m2, err)
		}
	})
}

func FuzzParseRERR(f *testing.F) {
	f.Add((&RERR{Unreachable: []Unreachable{{Dst: "x", Seq: 1}}}).Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseRERR(data)
		if err != nil {
			return
		}
		m2, err := ParseRERR(m.Marshal())
		if err != nil {
			t.Fatalf("round trip parse: %v", err)
		}
		if len(m.Unreachable) != len(m2.Unreachable) {
			t.Fatalf("round trip drift: %+v vs %+v", m, m2)
		}
	})
}
