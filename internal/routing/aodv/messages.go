package aodv

import (
	"fmt"

	"siphoc/internal/netem"
	"siphoc/internal/wire"
)

// Message kinds carried in the routing envelope for ProtoAODV.
const (
	KindRREQ uint8 = iota + 1
	KindRREP
	KindRERR
	KindHello
)

// KindName returns the RFC 3561 message name.
func KindName(k uint8) string {
	switch k {
	case KindRREQ:
		return "RREQ"
	case KindRREP:
		return "RREP"
	case KindRERR:
		return "RERR"
	case KindHello:
		return "HELLO"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// RREQ is a route request (RFC 3561 §5.1, simplified).
type RREQ struct {
	ID         uint32
	HopCount   uint8
	TTL        uint8
	Orig       netem.NodeID
	OrigSeq    uint32
	Dst        netem.NodeID
	DstSeq     uint32
	UnknownSeq bool
}

// Marshal encodes the request body.
func (m *RREQ) Marshal() []byte {
	w := wire.NewWriter(32)
	w.U32(m.ID)
	w.U8(m.HopCount)
	w.U8(m.TTL)
	w.String(string(m.Orig))
	w.U32(m.OrigSeq)
	w.String(string(m.Dst))
	w.U32(m.DstSeq)
	if m.UnknownSeq {
		w.U8(1)
	} else {
		w.U8(0)
	}
	return w.Bytes()
}

// ParseRREQ decodes a request body.
func ParseRREQ(b []byte) (*RREQ, error) {
	r := wire.NewReader(b)
	m := &RREQ{
		ID:       r.U32(),
		HopCount: r.U8(),
		TTL:      r.U8(),
	}
	m.Orig = netem.NodeID(r.String())
	m.OrigSeq = r.U32()
	m.Dst = netem.NodeID(r.String())
	m.DstSeq = r.U32()
	m.UnknownSeq = r.U8() == 1
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("aodv: parse RREQ: %w", err)
	}
	return m, nil
}

// RREP is a route reply (RFC 3561 §5.2, simplified).
type RREP struct {
	HopCount   uint8
	Orig       netem.NodeID // requester the reply travels back to
	Dst        netem.NodeID // destination the route leads to
	DstSeq     uint32
	LifetimeMs uint32
}

// Marshal encodes the reply body.
func (m *RREP) Marshal() []byte {
	w := wire.NewWriter(32)
	w.U8(m.HopCount)
	w.String(string(m.Orig))
	w.String(string(m.Dst))
	w.U32(m.DstSeq)
	w.U32(m.LifetimeMs)
	return w.Bytes()
}

// ParseRREP decodes a reply body.
func ParseRREP(b []byte) (*RREP, error) {
	r := wire.NewReader(b)
	m := &RREP{HopCount: r.U8()}
	m.Orig = netem.NodeID(r.String())
	m.Dst = netem.NodeID(r.String())
	m.DstSeq = r.U32()
	m.LifetimeMs = r.U32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("aodv: parse RREP: %w", err)
	}
	return m, nil
}

// Unreachable names one destination lost with a broken link.
type Unreachable struct {
	Dst netem.NodeID
	Seq uint32
}

// RERR reports broken routes (RFC 3561 §5.3, simplified).
type RERR struct {
	Unreachable []Unreachable
}

// Marshal encodes the error body.
func (m *RERR) Marshal() []byte {
	w := wire.NewWriter(8 + 16*len(m.Unreachable))
	w.U8(uint8(len(m.Unreachable)))
	for _, u := range m.Unreachable {
		w.String(string(u.Dst))
		w.U32(u.Seq)
	}
	return w.Bytes()
}

// ParseRERR decodes an error body.
func ParseRERR(b []byte) (*RERR, error) {
	r := wire.NewReader(b)
	n := int(r.U8())
	m := &RERR{}
	for range n {
		u := Unreachable{Dst: netem.NodeID(r.String())}
		u.Seq = r.U32()
		m.Unreachable = append(m.Unreachable, u)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("aodv: parse RERR: %w", err)
	}
	return m, nil
}

// Hello is the periodic local broadcast announcing liveness (RFC 3561 uses
// an unsolicited RREP; a dedicated kind keeps the codec simple).
type Hello struct {
	Seq uint32
}

// Marshal encodes the hello body.
func (m *Hello) Marshal() []byte {
	w := wire.NewWriter(4)
	w.U32(m.Seq)
	return w.Bytes()
}

// ParseHello decodes a hello body.
func ParseHello(b []byte) (*Hello, error) {
	r := wire.NewReader(b)
	m := &Hello{Seq: r.U32()}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("aodv: parse HELLO: %w", err)
	}
	return m, nil
}
