// Package aodv implements the Ad hoc On-demand Distance Vector routing
// protocol (Perkins & Royer, RFC 3561) over the netem link layer. It is one
// of the two routing protocols supported by the paper's system ("currently,
// our system supports two routing protocols, AODV and OLSR") and the one
// whose route replies are shown carrying piggybacked SIP contact information
// in the paper's Figure 5.
package aodv

import (
	"fmt"
	"sync"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/obs"
	"siphoc/internal/routing"
)

// Config tunes protocol timing. The zero value is completed with defaults
// close to RFC 3561; simulations typically scale the intervals down.
type Config struct {
	// HelloInterval is the period of liveness broadcasts (default 1s).
	HelloInterval time.Duration
	// AllowedHelloLoss is how many missed hellos break a link (default 2).
	AllowedHelloLoss int
	// ActiveRouteTimeout is the route lifetime (default 30s).
	ActiveRouteTimeout time.Duration
	// DiscoveryTimeout is how long one RREQ attempt waits (default 1s).
	DiscoveryTimeout time.Duration
	// RREQRetries is the number of additional discovery attempts
	// (default 2).
	RREQRetries int
	// NetDiameter bounds RREQ flooding (default 32 hops).
	NetDiameter uint8
	// ExpandingRing enables RFC 3561 §6.4 expanding-ring search: route
	// requests probe small TTL rings (2 then 5 hops, with shorter
	// timeouts) before flooding the whole network, trading worst-case
	// latency for much smaller floods when destinations are close. The
	// zero value disables it; DefaultConfig and SimConfig enable it.
	ExpandingRing bool
	// EnableHello turns periodic hellos on (default true). Tests that
	// drive the protocol manually can disable them.
	EnableHello bool
	// Clock is the time source (default the system clock).
	Clock clock.Clock
	// Obs records route-discovery spans and latency. Nil disables.
	Obs *obs.Observer
	// Sched, when set, runs the hello beacon and route-discovery retry
	// timers on the shared sharded event loop instead of per-node
	// goroutines. Timer cadence is identical; discoveries additionally
	// complete as soon as the route installs (same as the goroutine's
	// success-channel wakeup), via the discovery's onSuccess hook.
	Sched *clock.Scheduler
}

func (c Config) withDefaults() Config {
	if c.HelloInterval == 0 {
		c.HelloInterval = time.Second
	}
	if c.AllowedHelloLoss == 0 {
		c.AllowedHelloLoss = 2
	}
	if c.ActiveRouteTimeout == 0 {
		c.ActiveRouteTimeout = 30 * time.Second
	}
	if c.DiscoveryTimeout == 0 {
		c.DiscoveryTimeout = time.Second
	}
	if c.RREQRetries == 0 {
		c.RREQRetries = 2
	}
	if c.NetDiameter == 0 {
		c.NetDiameter = 32
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	return c
}

// DefaultConfig returns RFC-flavoured defaults with hellos enabled.
func DefaultConfig() Config {
	c := Config{EnableHello: true, ExpandingRing: true}.withDefaults()
	return c
}

// SimConfig returns timing scaled for fast in-memory simulation.
func SimConfig() Config {
	return Config{
		HelloInterval:      50 * time.Millisecond,
		AllowedHelloLoss:   3,
		ActiveRouteTimeout: 10 * time.Second,
		DiscoveryTimeout:   150 * time.Millisecond,
		RREQRetries:        2,
		EnableHello:        true,
		ExpandingRing:      true,
	}.withDefaults()
}

// Stats counts protocol activity for overhead experiments.
type Stats struct {
	RREQSent   int64
	RREQFwd    int64
	RREPSent   int64
	RREPFwd    int64
	RERRSent   int64
	HelloSent  int64
	Discovered int64 // successful route discoveries originated here
	Failed     int64 // discoveries that exhausted all retries
}

type seenKey struct {
	orig netem.NodeID
	id   uint32
}

type discovery struct {
	callbacks []func(bool)
	success   chan struct{} // closed when a route appears
	// finished (under Protocol.mu) makes completion idempotent in event-loop
	// mode, where the success path and the retry-timeout chain race without
	// a single goroutine serializing them.
	finished bool
	// onSuccess (under Protocol.mu) is the event-loop completion hook,
	// invoked outside the lock right after success is closed.
	onSuccess func()
}

// Protocol is an AODV instance bound to one host.
type Protocol struct {
	host *netem.Host
	cfg  Config
	clk  clock.Clock

	mu        sync.Mutex
	seq       uint32
	rreqID    uint32
	table     *routing.Table
	seen      map[seenKey]time.Time
	neighbors map[netem.NodeID]time.Time
	pending   map[netem.NodeID]*discovery
	pb        routing.PiggybackHandler
	stats     Stats
	started   bool

	stop  chan struct{}
	wg    sync.WaitGroup
	tasks []*clock.Task // event-loop timers when cfg.Sched is set

	// Pre-resolved obs handles; nil when cfg.Obs is nil.
	obs      *obs.Observer
	obsDelay *obs.Histogram
}

var _ routing.Protocol = (*Protocol)(nil)

// New creates an AODV instance for host. Call Start to begin operation.
func New(host *netem.Host, cfg Config) *Protocol {
	cfg = cfg.withDefaults()
	p := &Protocol{
		host:      host,
		cfg:       cfg,
		clk:       cfg.Clock,
		table:     routing.NewTable(),
		seen:      make(map[seenKey]time.Time),
		neighbors: make(map[netem.NodeID]time.Time),
		pending:   make(map[netem.NodeID]*discovery),
		stop:      make(chan struct{}),
	}
	if cfg.Obs.Enabled() {
		p.obs = cfg.Obs
		p.obsDelay = cfg.Obs.Histogram("aodv.discovery.delay", nil)
	}
	return p
}

// Name implements routing.Protocol.
func (p *Protocol) Name() string { return "AODV" }

// SetPiggyback implements routing.Protocol.
func (p *Protocol) SetPiggyback(h routing.PiggybackHandler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pb = h
}

// Start implements routing.Protocol.
func (p *Protocol) Start() error {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return fmt.Errorf("aodv: already started")
	}
	p.started = true
	p.mu.Unlock()
	if err := p.host.HandleFrames(netem.KindRouting, p.onFrame); err != nil {
		return err
	}
	p.host.SetRouteProvider(p)
	if p.cfg.EnableHello {
		if p.cfg.Sched != nil {
			task := p.cfg.Sched.Every(string(p.host.ID()), p.cfg.HelloInterval, func(time.Time) { p.helloTick() })
			p.mu.Lock()
			p.tasks = append(p.tasks, task)
			p.mu.Unlock()
		} else {
			p.wg.Add(1)
			go p.helloLoop()
		}
	}
	return nil
}

// Stop implements routing.Protocol.
func (p *Protocol) Stop() {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return
	}
	p.started = false
	pending := p.pending
	p.pending = make(map[netem.NodeID]*discovery)
	tasks := p.tasks
	p.tasks = nil
	p.mu.Unlock()
	for _, t := range tasks {
		t.Stop()
	}
	close(p.stop)
	p.wg.Wait()
	if p.cfg.Sched != nil {
		// Event-loop discoveries have no goroutine to observe p.stop;
		// complete them here. finishDiscovery is idempotent, so a retry
		// step that already fired (or fires late) is harmless.
		for dst, d := range pending {
			p.finishDiscovery(dst, d, false)
		}
		return
	}
	for _, d := range pending {
		for _, cb := range d.callbacks {
			cb(false)
		}
	}
}

// Stats returns a snapshot of protocol counters.
func (p *Protocol) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Routes implements routing.Protocol.
func (p *Protocol) Routes() []routing.Entry {
	return p.table.Snapshot(p.clk.Now())
}

// NextHop implements netem.RouteProvider.
func (p *Protocol) NextHop(dst netem.NodeID) (netem.NodeID, bool) {
	e, ok := p.table.Lookup(dst, p.clk.Now())
	if !ok {
		return "", false
	}
	return e.NextHop, true
}

// RequestRoute implements netem.RouteProvider: it floods an RREQ and invokes
// done once a route is installed or all retries are exhausted.
func (p *Protocol) RequestRoute(dst netem.NodeID, done func(bool)) {
	if _, ok := p.NextHop(dst); ok {
		done(true)
		return
	}
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		done(false)
		return
	}
	if d, ok := p.pending[dst]; ok {
		d.callbacks = append(d.callbacks, done)
		p.mu.Unlock()
		return
	}
	d := &discovery{callbacks: []func(bool){done}, success: make(chan struct{})}
	p.pending[dst] = d
	p.mu.Unlock()

	if p.cfg.Sched != nil {
		p.discoverSched(dst, d)
		return
	}
	p.wg.Add(1)
	go p.discover(dst, d)
}

type rreqAttempt struct {
	ttl     uint8
	timeout time.Duration
}

// attemptPlan returns the RREQ schedule: expanding rings first (when
// enabled), then network-wide floods for the configured retries.
func (p *Protocol) attemptPlan() []rreqAttempt {
	var plan []rreqAttempt
	if p.cfg.ExpandingRing {
		for _, ttl := range []uint8{2, 5} {
			if ttl >= p.cfg.NetDiameter {
				continue
			}
			// Ring traversal time scales with the ring radius, with a
			// floor so tiny rings still get a sane round trip.
			t := p.cfg.DiscoveryTimeout * time.Duration(ttl) / 8
			if floor := p.cfg.DiscoveryTimeout / 4; t < floor {
				t = floor
			}
			plan = append(plan, rreqAttempt{ttl: ttl, timeout: t})
		}
	}
	for range 1 + p.cfg.RREQRetries {
		plan = append(plan, rreqAttempt{ttl: p.cfg.NetDiameter, timeout: p.cfg.DiscoveryTimeout})
	}
	return plan
}

func (p *Protocol) discover(dst netem.NodeID, d *discovery) {
	defer p.wg.Done()
	span := p.obs.StartSpan("", obs.PhaseRouteDiscovery, string(p.host.ID()))
	start := p.clk.Now()
	for _, a := range p.attemptPlan() {
		p.sendRREQ(dst, a.ttl)
		timer := p.clk.NewTimer(a.timeout)
		select {
		case <-d.success:
			timer.Stop()
			if span.Active() {
				p.obsDelay.Observe(p.clk.Now().Sub(start))
				span.End("aodv dst=" + string(dst) + " ok")
			}
			p.finishDiscovery(dst, d, true)
			return
		case <-p.stop:
			timer.Stop()
			span.End("aodv dst=" + string(dst) + " stopped")
			p.finishDiscovery(dst, d, false)
			return
		case <-timer.C():
		}
	}
	span.End("aodv dst=" + string(dst) + " failed")
	p.finishDiscovery(dst, d, false)
}

// discoverSched runs the RREQ retry schedule as a chain of event-loop
// timers instead of a dedicated goroutine. The chain is the sole owner of
// the failure path; success is delivered by installRoute via d.onSuccess
// the moment the route lands, exactly like the goroutine's success-channel
// wakeup. finishDiscovery's idempotence arbitrates the race between the
// two, and between a retry step and Stop.
func (p *Protocol) discoverSched(dst netem.NodeID, d *discovery) {
	span := p.obs.StartSpan("", obs.PhaseRouteDiscovery, string(p.host.ID()))
	start := p.clk.Now()
	plan := p.attemptPlan()
	key := string(p.host.ID())
	p.mu.Lock()
	d.onSuccess = func() {
		if span.Active() {
			p.obsDelay.Observe(p.clk.Now().Sub(start))
			span.End("aodv dst=" + string(dst) + " ok")
		}
		p.finishDiscovery(dst, d, true)
	}
	p.mu.Unlock()
	var attempt func(i int)
	attempt = func(i int) {
		p.mu.Lock()
		finished := d.finished
		started := p.started
		p.mu.Unlock()
		if finished {
			return
		}
		if !started {
			span.End("aodv dst=" + string(dst) + " stopped")
			p.finishDiscovery(dst, d, false)
			return
		}
		select {
		case <-d.success:
			// installRoute closed the channel and will run (or has run)
			// onSuccess; the chain simply ends.
			return
		default:
		}
		if i >= len(plan) {
			span.End("aodv dst=" + string(dst) + " failed")
			p.finishDiscovery(dst, d, false)
			return
		}
		p.sendRREQ(dst, plan[i].ttl)
		p.cfg.Sched.After(key, plan[i].timeout, func(time.Time) { attempt(i + 1) })
	}
	attempt(0)
}

func (p *Protocol) finishDiscovery(dst netem.NodeID, d *discovery, ok bool) {
	p.mu.Lock()
	if d.finished {
		p.mu.Unlock()
		return
	}
	d.finished = true
	if p.pending[dst] == d {
		delete(p.pending, dst)
	}
	cbs := d.callbacks
	d.callbacks = nil
	if ok {
		p.stats.Discovered++
	} else {
		p.stats.Failed++
	}
	p.mu.Unlock()
	for _, cb := range cbs {
		cb(ok)
	}
}

func (p *Protocol) sendRREQ(dst netem.NodeID, ttl uint8) {
	p.mu.Lock()
	p.seq++
	p.rreqID++
	m := &RREQ{
		ID:         p.rreqID,
		TTL:        ttl,
		Orig:       p.host.ID(),
		OrigSeq:    p.seq,
		Dst:        dst,
		UnknownSeq: true,
	}
	// Mark our own RREQ as seen so neighbours' rebroadcasts are ignored.
	p.seen[seenKey{m.Orig, m.ID}] = p.clk.Now()
	p.stats.RREQSent++
	p.mu.Unlock()
	p.sendControl(netem.Broadcast, KindRREQ, m.Marshal())
}

// sendControl wraps body in the routing envelope, offers the piggyback
// handler its extension slot, and transmits.
func (p *Protocol) sendControl(dst netem.NodeID, kind uint8, body []byte) {
	p.mu.Lock()
	pb := p.pb
	p.mu.Unlock()
	var ext []byte
	if pb != nil {
		ext = pb.Outgoing(routing.Outgoing{
			Proto:  routing.ProtoAODV,
			Kind:   kind,
			Kind2:  KindName(kind),
			Dst:    dst,
			Budget: routing.ExtBudget(len(body)),
		})
	}
	raw, err := routing.AppendEnvelope(nil, routing.ProtoAODV, kind, body, ext)
	if err != nil {
		return
	}
	_ = p.host.SendFrame(dst, netem.KindRouting, raw)
}

func (p *Protocol) onFrame(f netem.Frame) {
	env, err := routing.ParseEnvelope(f.Payload)
	if err != nil || env.Proto != routing.ProtoAODV {
		return
	}
	p.touchNeighbor(f.Src)
	if len(env.Ext) > 0 {
		p.mu.Lock()
		pb := p.pb
		p.mu.Unlock()
		if pb != nil {
			pb.Incoming(routing.Incoming{
				From:  f.Src,
				Proto: env.Proto,
				Kind:  env.Kind,
				Kind2: KindName(env.Kind),
				Ext:   env.Ext,
			})
		}
	}
	switch env.Kind {
	case KindRREQ:
		if m, err := ParseRREQ(env.Body); err == nil {
			p.onRREQ(f.Src, m)
		}
	case KindRREP:
		if m, err := ParseRREP(env.Body); err == nil {
			p.onRREP(f.Src, m)
		}
	case KindRERR:
		if m, err := ParseRERR(env.Body); err == nil {
			p.onRERR(f.Src, m)
		}
	case KindHello:
		// touchNeighbor above already recorded liveness.
	}
}

// touchNeighbor refreshes the 1-hop route and liveness record for a
// neighbour we just heard.
func (p *Protocol) touchNeighbor(nb netem.NodeID) {
	now := p.clk.Now()
	p.mu.Lock()
	p.neighbors[nb] = now
	p.mu.Unlock()
	p.table.Upsert(routing.Entry{
		Dst:     nb,
		NextHop: nb,
		Hops:    1,
		Expires: now.Add(p.neighborLifetime()),
	})
}

func (p *Protocol) neighborLifetime() time.Duration {
	if p.cfg.EnableHello {
		return time.Duration(p.cfg.AllowedHelloLoss+1) * p.cfg.HelloInterval
	}
	return p.cfg.ActiveRouteTimeout
}

func (p *Protocol) onRREQ(from netem.NodeID, m *RREQ) {
	now := p.clk.Now()
	if m.Orig == p.host.ID() {
		return // our own flood echoed back
	}
	// Install/refresh the reverse route toward the originator.
	p.installRoute(m.Orig, from, int(m.HopCount)+1, m.OrigSeq)

	key := seenKey{m.Orig, m.ID}
	p.mu.Lock()
	if t, dup := p.seen[key]; dup && now.Sub(t) < 2*p.cfg.DiscoveryTimeout*time.Duration(1+p.cfg.RREQRetries) {
		p.mu.Unlock()
		return
	}
	p.seen[key] = now
	p.gcSeenLocked(now)
	p.mu.Unlock()

	if m.Dst == p.host.ID() {
		// We are the destination: answer with our own sequence number.
		p.mu.Lock()
		if m.DstSeq > p.seq {
			p.seq = m.DstSeq
		}
		p.seq++
		rep := &RREP{
			HopCount:   0,
			Orig:       m.Orig,
			Dst:        p.host.ID(),
			DstSeq:     p.seq,
			LifetimeMs: uint32(p.cfg.ActiveRouteTimeout / time.Millisecond),
		}
		p.stats.RREPSent++
		p.mu.Unlock()
		p.sendControl(from, KindRREP, rep.Marshal())
		return
	}
	// Intermediate node with a fresh-enough route may answer on behalf of
	// the destination.
	if e, ok := p.table.Lookup(m.Dst, now); ok && !m.UnknownSeq && e.SeqNo >= m.DstSeq && e.SeqNo > 0 {
		rep := &RREP{
			HopCount:   uint8(e.Hops),
			Orig:       m.Orig,
			Dst:        m.Dst,
			DstSeq:     e.SeqNo,
			LifetimeMs: uint32(p.cfg.ActiveRouteTimeout / time.Millisecond),
		}
		p.mu.Lock()
		p.stats.RREPSent++
		p.mu.Unlock()
		p.sendControl(from, KindRREP, rep.Marshal())
		return
	}
	// Otherwise keep flooding.
	if m.TTL <= 1 {
		return
	}
	fwd := *m
	fwd.TTL--
	fwd.HopCount++
	p.mu.Lock()
	p.stats.RREQFwd++
	p.mu.Unlock()
	p.sendControl(netem.Broadcast, KindRREQ, fwd.Marshal())
}

func (p *Protocol) onRREP(from netem.NodeID, m *RREP) {
	// Install the forward route toward the destination.
	p.installRoute(m.Dst, from, int(m.HopCount)+1, m.DstSeq)
	if m.Orig == p.host.ID() {
		return // discovery completed; installRoute signalled it
	}
	// Forward along the reverse route toward the originator.
	e, ok := p.table.Lookup(m.Orig, p.clk.Now())
	if !ok {
		return
	}
	fwd := *m
	fwd.HopCount++
	p.mu.Lock()
	p.stats.RREPFwd++
	p.mu.Unlock()
	p.sendControl(e.NextHop, KindRREP, fwd.Marshal())
}

func (p *Protocol) onRERR(from netem.NodeID, m *RERR) {
	var cascade []Unreachable
	now := p.clk.Now()
	for _, u := range m.Unreachable {
		if e, ok := p.table.Lookup(u.Dst, now); ok && e.NextHop == from {
			p.table.Remove(u.Dst)
			cascade = append(cascade, u)
		}
	}
	if len(cascade) > 0 {
		p.mu.Lock()
		p.stats.RERRSent++
		p.mu.Unlock()
		p.sendControl(netem.Broadcast, KindRERR, (&RERR{Unreachable: cascade}).Marshal())
	}
}

// installRoute applies the AODV freshness rule and signals any discovery
// waiting for this destination.
func (p *Protocol) installRoute(dst, nextHop netem.NodeID, hops int, seq uint32) {
	if dst == p.host.ID() {
		return
	}
	p.table.UpsertIfFresher(routing.Entry{
		Dst:     dst,
		NextHop: nextHop,
		Hops:    hops,
		SeqNo:   seq,
		Expires: p.clk.Now().Add(p.cfg.ActiveRouteTimeout),
	})
	p.mu.Lock()
	d, ok := p.pending[dst]
	var onSuccess func()
	if ok {
		select {
		case <-d.success:
			ok = false
		default:
		}
		if ok {
			close(d.success)
			onSuccess = d.onSuccess
		}
	}
	p.mu.Unlock()
	if onSuccess != nil {
		onSuccess()
	}
}

func (p *Protocol) gcSeenLocked(now time.Time) {
	if len(p.seen) < 4096 {
		return
	}
	horizon := 2 * p.cfg.DiscoveryTimeout * time.Duration(1+p.cfg.RREQRetries)
	for k, t := range p.seen {
		if now.Sub(t) > horizon {
			delete(p.seen, k)
		}
	}
}

func (p *Protocol) helloLoop() {
	defer p.wg.Done()
	for {
		timer := p.clk.NewTimer(p.cfg.HelloInterval)
		select {
		case <-p.stop:
			timer.Stop()
			return
		case <-timer.C():
		}
		p.helloTick()
	}
}

// helloTick is one hello-beacon round: broadcast a hello with the current
// sequence number, then reap neighbours that have gone quiet.
func (p *Protocol) helloTick() {
	p.mu.Lock()
	seq := p.seq
	p.stats.HelloSent++
	p.mu.Unlock()
	p.sendControl(netem.Broadcast, KindHello, (&Hello{Seq: seq}).Marshal())
	p.expireNeighbors()
}

// expireNeighbors detects broken links from missed hellos and emits RERRs
// for routes through the lost neighbour.
func (p *Protocol) expireNeighbors() {
	now := p.clk.Now()
	deadline := time.Duration(p.cfg.AllowedHelloLoss) * p.cfg.HelloInterval
	var lost []netem.NodeID
	p.mu.Lock()
	for nb, last := range p.neighbors {
		if now.Sub(last) > deadline {
			delete(p.neighbors, nb)
			lost = append(lost, nb)
		}
	}
	p.mu.Unlock()
	for _, nb := range lost {
		removed := p.table.RemoveByNextHop(nb)
		if len(removed) == 0 {
			continue
		}
		rerr := &RERR{}
		for _, e := range removed {
			rerr.Unreachable = append(rerr.Unreachable, Unreachable{Dst: e.Dst, Seq: e.SeqNo + 1})
		}
		p.mu.Lock()
		p.stats.RERRSent++
		p.mu.Unlock()
		p.sendControl(netem.Broadcast, KindRERR, rerr.Marshal())
	}
}
