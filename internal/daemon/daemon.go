// Package daemon assembles the full SIPHoc service set for deployment as a
// real network daemon: one OS process per MANET node, with the link layer
// running over real UDP sockets (see netem.NewUDPNetwork). This is the
// multi-process deployment mode of cmd/siphocd and cmd/softphone, mirroring
// the paper's per-node processes on laptops and iPAQ handhelds.
package daemon

import (
	"fmt"
	"strings"
	"time"

	"siphoc/internal/core"
	"siphoc/internal/internet"
	"siphoc/internal/netem"
	"siphoc/internal/routing"
	"siphoc/internal/routing/aodv"
	"siphoc/internal/routing/olsr"
	"siphoc/internal/sip"
	"siphoc/internal/slp"
	"siphoc/internal/voip"
)

// ProviderSpec describes one SIP provider hosted by a gateway daemon's
// in-process Internet.
type ProviderSpec struct {
	Domain   string
	Accounts []string
}

// Config configures one daemon process.
type Config struct {
	// ID is this node's address, e.g. "10.0.0.1".
	ID netem.NodeID
	// Listen is the local UDP address for the MANET link layer.
	Listen string
	// Peers maps neighbour IDs to their UDP addresses (radio range).
	Peers map[netem.NodeID]string
	// Routing selects "aodv" (default) or "olsr".
	Routing string
	// Fast uses simulation-scale protocol timers instead of RFC timing —
	// convenient for demos on loopback.
	Fast bool
	// Gateway runs a Gateway Provider backed by an in-process Internet
	// hosting the given providers.
	Gateway   bool
	Providers []ProviderSpec
}

// Daemon is one running SIPHoc node.
type Daemon struct {
	cfg     Config
	network *netem.Network
	host    *netem.Host
	proto   routing.Protocol
	agent   *slp.Agent
	connp   *core.ConnectionProvider
	gw      *core.GatewayProvider
	inet    *internet.Internet
	proxy   *core.Proxy
	phones  []*voip.Phone
}

// daemonSIPConfig picks transaction timing: fast demo timers or RFC 3261
// defaults (T1 = 500 ms).
func daemonSIPConfig(fast bool) sip.Config {
	if fast {
		return sip.SimConfig()
	}
	return sip.Config{T1: 500 * time.Millisecond}
}

// Start brings the daemon up: UDP link layer, routing, MANET SLP,
// Connection/Gateway Provider and the SIP proxy.
func Start(cfg Config) (*Daemon, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("daemon: node id required")
	}
	network, host, err := netem.NewUDPNetwork(netem.UDPConfig{
		Self: cfg.ID, Listen: cfg.Listen, Peers: cfg.Peers,
	})
	if err != nil {
		return nil, err
	}
	d := &Daemon{cfg: cfg, network: network, host: host}
	fail := func(err error) (*Daemon, error) {
		d.Close()
		return nil, err
	}

	d.agent = slp.NewAgent(host, slp.Config{})
	switch strings.ToLower(cfg.Routing) {
	case "", "aodv":
		c := aodv.DefaultConfig()
		if cfg.Fast {
			c = aodv.SimConfig()
		}
		d.proto = aodv.New(host, c)
	case "olsr":
		c := olsr.DefaultConfig()
		if cfg.Fast {
			c = olsr.SimConfig()
		}
		d.proto = olsr.New(host, c)
	default:
		return fail(fmt.Errorf("daemon: unknown routing %q", cfg.Routing))
	}
	d.agent.AttachRouting(d.proto)
	if err := d.proto.Start(); err != nil {
		return fail(err)
	}
	if err := d.agent.Start(); err != nil {
		return fail(err)
	}

	if cfg.Gateway {
		d.inet = internet.New(internet.Config{})
		for _, spec := range cfg.Providers {
			pcfg := internet.ProviderConfig{Domain: spec.Domain, SIP: daemonSIPConfig(cfg.Fast)}
			prov, err := internet.NewProvider(d.inet, pcfg)
			if err != nil {
				return fail(err)
			}
			for _, acct := range spec.Accounts {
				prov.AddAccount(acct)
			}
		}
		d.gw = core.NewGatewayProvider(host, d.inet, d.agent, core.GatewayConfig{})
		if err := d.gw.Start(); err != nil {
			return fail(err)
		}
	} else {
		d.connp = core.NewConnectionProvider(host, d.agent, core.ConnProviderConfig{})
		if err := d.connp.Start(); err != nil {
			return fail(err)
		}
	}

	d.proxy = core.NewProxy(host, d.agent, d.connp, core.ProxyConfig{SIP: daemonSIPConfig(cfg.Fast)})
	if err := d.proxy.Start(); err != nil {
		return fail(err)
	}
	return d, nil
}

// NewPhone creates a softphone on this node (outbound proxy = the local
// SIPHoc proxy, paper Figure 2). autoAnswer controls whether incoming calls
// are picked up automatically.
func (d *Daemon) NewPhone(user, domain string, autoAnswer bool) (*voip.Phone, error) {
	cfg := voip.Config{
		User: user, Domain: domain,
		OutboundProxy: d.proxy.Addr(),
		NoAutoAnswer:  !autoAnswer,
		Port:          uint16(5062 + 2*len(d.phones)),
		SIP:           daemonSIPConfig(d.cfg.Fast),
	}
	ph := voip.New(d.host, cfg)
	if err := ph.Start(); err != nil {
		return nil, err
	}
	d.phones = append(d.phones, ph)
	return ph, nil
}

// ID returns the node ID.
func (d *Daemon) ID() netem.NodeID { return d.cfg.ID }

// SLP exposes the MANET SLP agent.
func (d *Daemon) SLP() *slp.Agent { return d.agent }

// Routing exposes the routing protocol.
func (d *Daemon) Routing() routing.Protocol { return d.proto }

// Proxy exposes the SIP proxy.
func (d *Daemon) Proxy() *core.Proxy { return d.proxy }

// Network exposes the UDP-bridged link layer (AddPeer/RemovePeer).
func (d *Daemon) Network() *netem.Network { return d.network }

// Attached reports Internet connectivity.
func (d *Daemon) Attached() bool {
	if d.gw != nil {
		return true
	}
	return d.connp != nil && d.connp.Attached()
}

// Status renders a one-screen status report.
func (d *Daemon) Status() string {
	var b strings.Builder
	fmt.Fprintf(&b, "siphocd: node %s (%s)\n", d.cfg.ID, d.proto.Name())
	fmt.Fprintf(&b, "siphocd: neighbours: %v\n", d.host.Neighbors())
	routes := d.proto.Routes()
	fmt.Fprintf(&b, "siphocd: routes (%d):\n", len(routes))
	for _, r := range routes {
		fmt.Fprintf(&b, "siphocd:   %-16s via %-16s hops %d\n", r.Dst, r.NextHop, r.Hops)
	}
	if d.gw != nil {
		fmt.Fprintf(&b, "siphocd: gateway: serving %d tunnel client(s)\n", len(d.gw.Clients()))
	} else if d.connp != nil {
		fmt.Fprintf(&b, "siphocd: internet: attached=%v gateway=%s\n", d.connp.Attached(), d.connp.Gateway())
	}
	b.WriteString(d.agent.Dump())
	return b.String()
}

// Close stops all services and releases the socket.
func (d *Daemon) Close() {
	for _, ph := range d.phones {
		ph.Stop()
	}
	if d.proxy != nil {
		d.proxy.Stop()
	}
	if d.connp != nil {
		d.connp.Stop()
	}
	if d.gw != nil {
		d.gw.Stop()
	}
	if d.inet != nil {
		d.inet.Close()
	}
	if d.agent != nil {
		d.agent.Stop()
	}
	if d.proto != nil {
		d.proto.Stop()
	}
	if d.network != nil {
		d.network.Close()
	}
}
