package daemon

import (
	"net"
	"strings"
	"testing"
	"time"

	"siphoc/internal/netem"
)

func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	conns := make([]net.PacketConn, 0, n)
	for range n {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, pc)
		addrs = append(addrs, pc.LocalAddr().String())
	}
	for _, pc := range conns {
		pc.Close()
	}
	return addrs
}

// startChainDaemons boots n daemon processes-worth of nodes over loopback
// UDP in a chain topology (each node only peers with its chain neighbours).
func startChainDaemons(t *testing.T, n int, gatewayLast bool) []*Daemon {
	t.Helper()
	addrs := freePorts(t, n)
	ids := make([]netem.NodeID, n)
	for i := range n {
		ids[i] = netem.NodeName("10.0.0", i+1)
	}
	daemons := make([]*Daemon, n)
	for i := range n {
		peers := map[netem.NodeID]string{}
		if i > 0 {
			peers[ids[i-1]] = addrs[i-1]
		}
		if i < n-1 {
			peers[ids[i+1]] = addrs[i+1]
		}
		cfg := Config{ID: ids[i], Listen: addrs[i], Peers: peers, Fast: true}
		if gatewayLast && i == n-1 {
			cfg.Gateway = true
			cfg.Providers = []ProviderSpec{{Domain: "voicehoc.ch", Accounts: []string{"alice", "bob"}}}
		}
		d, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Close)
		daemons[i] = d
	}
	return daemons
}

// TestMultiDaemonCallOverUDP is the deployment-mode proof: three SIPHoc
// nodes as separate UDP endpoints on loopback (the in-process equivalent of
// three siphocd processes), with a multihop call between the ends.
func TestMultiDaemonCallOverUDP(t *testing.T) {
	daemons := startChainDaemons(t, 3, false)
	alice, err := daemons[0].NewPhone("alice", "voicehoc.ch", true)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := daemons[2].NewPhone("bob", "voicehoc.ch", true)
	if err != nil {
		t.Fatal(err)
	}
	registerRetry := func(ph interface{ Register() error }) {
		var err error
		for range 10 {
			if err = ph.Register(); err == nil {
				return
			}
			time.Sleep(100 * time.Millisecond)
		}
		t.Fatal(err)
	}
	registerRetry(alice)
	registerRetry(bob)

	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(30 * time.Second); err != nil {
		t.Fatalf("call over real UDP: %v", err)
	}
	if n := call.SendVoice(10); n != 10 {
		t.Fatalf("sent %d frames", n)
	}
	if err := call.Hangup(); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonGatewayAttachment(t *testing.T) {
	daemons := startChainDaemons(t, 2, true)
	node := daemons[0]
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && !node.Attached() {
		time.Sleep(50 * time.Millisecond)
	}
	if !node.Attached() {
		t.Fatal("daemon never attached via the gateway daemon")
	}
	if !daemons[1].Attached() {
		t.Fatal("gateway daemon reports not attached")
	}
}

func TestDaemonStatusReport(t *testing.T) {
	daemons := startChainDaemons(t, 2, false)
	ph, err := daemons[0].NewPhone("alice", "voicehoc.ch", true)
	if err != nil {
		t.Fatal(err)
	}
	var regErr error
	for range 10 {
		if regErr = ph.Register(); regErr == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if regErr != nil {
		t.Fatal(regErr)
	}
	status := daemons[0].Status()
	for _, want := range []string{"node 10.0.0.1", "AODV", "sip/alice@voicehoc.ch"} {
		if !strings.Contains(status, want) {
			t.Fatalf("status missing %q:\n%s", want, status)
		}
	}
}

func TestDaemonConfigValidation(t *testing.T) {
	if _, err := Start(Config{Listen: "127.0.0.1:0"}); err == nil {
		t.Fatal("missing ID accepted")
	}
	if _, err := Start(Config{ID: "x", Listen: "127.0.0.1:0", Routing: "ospf"}); err == nil {
		t.Fatal("unknown routing accepted")
	}
	if _, err := Start(Config{ID: "x", Listen: "256.0.0.1:99999"}); err == nil {
		t.Fatal("bad listen address accepted")
	}
}
