package rtp

import (
	"testing"
	"testing/quick"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
)

func TestPacketRoundTrip(t *testing.T) {
	in := NewVoiceFrame(0xdeadbeef, 42, time.Unix(0, 123456789))
	out, err := Parse(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != 42 || out.SSRC != 0xdeadbeef || out.PayloadType != PayloadTypePCMU {
		t.Fatalf("out = %+v", out)
	}
	if out.Timestamp != 42*SamplesPerFrame {
		t.Fatalf("timestamp = %d", out.Timestamp)
	}
	sent, ok := out.SentAt()
	if !ok || sent.UnixNano() != 123456789 {
		t.Fatalf("sentAt = %v %v", sent, ok)
	}
}

func TestPacketQuick(t *testing.T) {
	f := func(pt uint8, seq uint16, ts, ssrc uint32, payload []byte) bool {
		in := &Packet{PayloadType: pt & 0x7f, Seq: seq, Timestamp: ts, SSRC: ssrc, Payload: payload}
		out, err := Parse(in.Marshal())
		if err != nil {
			return false
		}
		if len(in.Payload) == 0 && len(out.Payload) == 0 {
			in.Payload, out.Payload = nil, nil
		}
		return out.PayloadType == in.PayloadType && out.Seq == seq &&
			out.Timestamp == ts && out.SSRC == ssrc && string(out.Payload) == string(in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejects(t *testing.T) {
	if _, err := Parse([]byte{1, 2, 3}); err == nil {
		t.Fatal("short packet accepted")
	}
	bad := NewVoiceFrame(1, 1, time.Now()).Marshal()
	bad[0] = 0 // version 0
	if _, err := Parse(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReceiverLossAccounting(t *testing.T) {
	var r Receiver
	base := time.Unix(1000, 0)
	for _, seq := range []uint32{0, 1, 3, 4, 7} { // 2, 5, 6 lost
		p := NewVoiceFrame(1, seq, base.Add(time.Duration(seq)*FrameDuration))
		r.Observe(p, base.Add(time.Duration(seq)*FrameDuration+10*time.Millisecond))
	}
	s := r.Stats()
	if s.Expected != 8 || s.Received != 5 || s.Lost != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.LossRate < 0.37 || s.LossRate > 0.38 {
		t.Fatalf("loss rate = %f", s.LossRate)
	}
	if s.AvgDelay != 10*time.Millisecond {
		t.Fatalf("avg delay = %v", s.AvgDelay)
	}
}

func TestReceiverSequenceWrap(t *testing.T) {
	var r Receiver
	base := time.Unix(1000, 0)
	for i := 65530; i < 65546; i++ { // crosses the uint16 boundary
		p := &Packet{Seq: uint16(i), Payload: make([]byte, PayloadBytes)}
		r.Observe(p, base)
	}
	s := r.Stats()
	if s.Expected != 16 || s.Lost != 0 {
		t.Fatalf("wrap stats = %+v", s)
	}
}

func TestEModelShape(t *testing.T) {
	// Perfect network: near-toll quality.
	r0, mos0 := emodel(10*time.Millisecond, 0)
	if r0 < 90 || mos0 < 4.2 {
		t.Fatalf("clean call: R=%f MOS=%f", r0, mos0)
	}
	// Heavy loss degrades monotonically.
	_, mosLoss := emodel(10*time.Millisecond, 0.10)
	if mosLoss >= mos0 {
		t.Fatalf("10%% loss did not degrade MOS: %f vs %f", mosLoss, mos0)
	}
	// Long delay degrades too.
	_, mosDelay := emodel(400*time.Millisecond, 0)
	if mosDelay >= mos0 {
		t.Fatalf("400ms delay did not degrade MOS: %f vs %f", mosDelay, mos0)
	}
	// MOS stays in [1, 4.5].
	for _, loss := range []float64{0, 0.5, 1} {
		for _, d := range []time.Duration{0, time.Second} {
			_, mos := emodel(d, loss)
			if mos < 1 || mos > 4.5 {
				t.Fatalf("MOS out of range: %f (loss=%f d=%v)", mos, loss, d)
			}
		}
	}
}

func TestJitterGrowsWithVariance(t *testing.T) {
	base := time.Unix(1000, 0)
	// Steady arrivals: jitter ~0.
	var steady Receiver
	for i := range uint32(50) {
		p := NewVoiceFrame(1, i, base.Add(time.Duration(i)*FrameDuration))
		steady.Observe(p, base.Add(time.Duration(i)*FrameDuration+5*time.Millisecond))
	}
	// Alternating delays: jitter > 0.
	var jittery Receiver
	for i := range uint32(50) {
		p := NewVoiceFrame(1, i, base.Add(time.Duration(i)*FrameDuration))
		extra := time.Duration(i%2) * 15 * time.Millisecond
		jittery.Observe(p, base.Add(time.Duration(i)*FrameDuration+5*time.Millisecond+extra))
	}
	if steady.Stats().Jitter >= jittery.Stats().Jitter {
		t.Fatalf("jitter ordering wrong: steady=%v jittery=%v",
			steady.Stats().Jitter, jittery.Stats().Jitter)
	}
	if jittery.Stats().Jitter < time.Millisecond {
		t.Fatalf("jittery stream jitter = %v, want >= 1ms", jittery.Stats().Jitter)
	}
}

func TestSessionOverNetwork(t *testing.T) {
	n := netem.NewNetwork(netem.Config{BaseDelay: 200 * time.Microsecond})
	defer n.Close()
	ha, err := n.AddHost("a", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := n.AddHost("b", netem.Position{X: 10})
	if err != nil {
		t.Fatal(err)
	}
	ha.SetRouteProvider(directRoutes{})
	hb.SetRouteProvider(directRoutes{})
	clk := clock.New()
	ca, err := ha.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := hb.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	sa := NewSession(ca, clk, 1)
	sb := NewSession(cb, clk, 2)
	defer sa.Close()
	defer sb.Close()

	const frames = 25
	sent := sa.SendStream("b", cb.LocalPort(), frames)
	if sent != frames {
		t.Fatalf("sent = %d", sent)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if sb.Stats().Received == frames {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := sb.Stats()
	if st.Received != frames || st.Lost != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MOS < 4.0 {
		t.Fatalf("clean 1-hop call MOS = %f", st.MOS)
	}
}

type directRoutes struct{}

func (directRoutes) NextHop(dst netem.NodeID) (netem.NodeID, bool) { return dst, true }
func (directRoutes) RequestRoute(dst netem.NodeID, done func(bool)) {
	done(true)
}
