package rtp

import (
	"runtime"
	"testing"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
)

// pairNet builds a two-host network one radio hop apart on the real clock.
func pairNet(t *testing.T) (*netem.Network, *netem.Host, *netem.Host) {
	t.Helper()
	n := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	t.Cleanup(n.Close)
	a, err := n.AddHost("a", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddHost("b", netem.Position{X: 50})
	if err != nil {
		t.Fatal(err)
	}
	a.SetRouteProvider(directRoutes{})
	b.SetRouteProvider(directRoutes{})
	return n, a, b
}

// TestPacerManyConcurrentStreams drives 32 concurrent streams through one
// shared pacer while stats readers hammer the sessions — the -race target of
// the media fast path. All frames must arrive and the pacer must add no
// goroutines beyond its single scheduler.
func TestPacerManyConcurrentStreams(t *testing.T) {
	_, a, b := pairNet(t)
	clk := clock.New()
	pacer := NewPacer(clk)
	defer pacer.Close()

	const streams = 32
	const frames = 8
	ca, err := a.Listen(4000)
	if err != nil {
		t.Fatal(err)
	}
	sender := NewSessionWithPacer(ca, clk, 1, pacer)
	defer sender.Close()
	recvs := make([]*Session, streams)
	for i := range streams {
		conn, err := b.Listen(uint16(5000 + i))
		if err != nil {
			t.Fatal(err)
		}
		recvs[i] = NewSessionWithPacer(conn, clk, uint32(100+i), pacer)
		defer recvs[i].Close()
	}

	before := runtime.NumGoroutine()
	handles := make([]*Stream, streams)
	for i := range streams {
		handles[i] = sender.StartStream("b", uint16(5000+i), frames)
	}
	during := runtime.NumGoroutine()
	// O(1) goroutines for M streams: starting 32 streams adds none (the
	// scheduler goroutine already existed). Allow slack for unrelated
	// runtime goroutines coming and going.
	if during-before > 2 {
		t.Errorf("starting %d streams grew goroutines by %d, want O(1)", streams, during-before)
	}

	// Concurrent readers racing the pacer's writes.
	stop := make(chan struct{})
	readers := make(chan struct{})
	go func() {
		defer close(readers)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = sender.Sent()
			for _, h := range handles {
				_ = h.Sent()
			}
			for _, r := range recvs {
				_, _, _ = r.PlayoutStats()
				_ = r.Stats()
			}
			time.Sleep(time.Millisecond)
		}
	}()

	for i, h := range handles {
		if got := h.Wait(); got != frames {
			t.Errorf("stream %d sent %d frames, want %d", i, got, frames)
		}
	}
	close(stop)
	<-readers
	if got := sender.Sent(); got != streams*frames {
		t.Errorf("session sent %d, want %d", got, streams*frames)
	}
	// Every frame is delivered (no loss configured); wait for the tail.
	deadline := time.Now().Add(5 * time.Second)
	for i, r := range recvs {
		for r.Stats().Received < frames {
			if time.Now().After(deadline) {
				t.Fatalf("receiver %d got %d/%d frames", i, r.Stats().Received, frames)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestStreamStop cancels a long stream mid-flight: Wait unblocks with the
// partial count and no further frames are sent.
func TestStreamStop(t *testing.T) {
	_, a, b := pairNet(t)
	clk := clock.New()
	ca, err := a.Listen(4000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Listen(4001); err != nil {
		t.Fatal(err)
	}
	s := NewSession(ca, clk, 1) // private-pacer fallback path
	defer s.Close()
	st := s.StartStream("b", 4001, 100000)
	for st.Sent() == 0 {
		time.Sleep(time.Millisecond)
	}
	st.Stop()
	got := st.Wait()
	if got == 0 || got == 100000 {
		t.Fatalf("stopped stream sent %d frames, want partial", got)
	}
	sent := st.Sent()
	time.Sleep(50 * time.Millisecond)
	if st.Sent() != sent {
		t.Fatalf("stream kept sending after Stop: %d -> %d", sent, st.Sent())
	}
}

// TestSessionCloseUnblocksStreams closes a session with an active stream;
// the blocking SendStream caller must return promptly.
func TestSessionCloseUnblocksStreams(t *testing.T) {
	_, a, b := pairNet(t)
	clk := clock.New()
	ca, err := a.Listen(4000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Listen(4001); err != nil {
		t.Fatal(err)
	}
	s := NewSession(ca, clk, 1)
	done := make(chan int, 1)
	go func() { done <- s.SendStream("b", 4001, 100000) }()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case n := <-done:
		if n >= 100000 {
			t.Fatalf("SendStream returned %d after close, want partial", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SendStream never returned after session close")
	}
}

// TestStreamEdgeCases covers zero-frame streams and streams started on a
// closed session: both must finish immediately without touching the pacer.
func TestStreamEdgeCases(t *testing.T) {
	_, a, b := pairNet(t)
	clk := clock.New()
	ca, err := a.Listen(4000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Listen(4001); err != nil {
		t.Fatal(err)
	}
	s := NewSession(ca, clk, 1)
	if got := s.SendStream("b", 4001, 0); got != 0 {
		t.Fatalf("zero-frame stream sent %d", got)
	}
	s.Close()
	if got := s.SendStream("b", 4001, 5); got != 0 {
		t.Fatalf("stream on closed session sent %d", got)
	}
}

// TestPacerCloseFinishesStreams closes the shared pacer under active
// streams: their waiters unblock with partial counts.
func TestPacerCloseFinishesStreams(t *testing.T) {
	_, a, b := pairNet(t)
	clk := clock.New()
	pacer := NewPacer(clk)
	ca, err := a.Listen(4000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range 4 {
		if _, err := b.Listen(uint16(4100 + i)); err != nil {
			t.Fatal(err)
		}
	}
	s := NewSessionWithPacer(ca, clk, 1, pacer)
	defer s.Close()
	handles := make([]*Stream, 4)
	for i := range handles {
		handles[i] = s.StartStream("b", uint16(4100+i), 100000)
	}
	for handles[0].Sent() == 0 {
		time.Sleep(time.Millisecond)
	}
	pacer.Close()
	for i, h := range handles {
		select {
		case <-h.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("stream %d never finished after pacer close", i)
		}
		if h.Sent() >= 100000 {
			t.Fatalf("stream %d reports %d frames after early close", i, h.Sent())
		}
	}
}

// TestSendStreamPacesOnFakeClock checks the blocking wrapper against an
// advancing fake clock: n frames take exactly (n-1) frame intervals.
func TestSendStreamPacesOnFakeClock(t *testing.T) {
	clk := clock.NewFake(time.Unix(5000, 0))
	n := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond, Clock: clk})
	defer n.Close()
	a, err := n.AddHost("a", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddHost("b", netem.Position{X: 50})
	if err != nil {
		t.Fatal(err)
	}
	a.SetRouteProvider(directRoutes{})
	b.SetRouteProvider(directRoutes{})
	ca, err := a.Listen(4000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Listen(4001); err != nil {
		t.Fatal(err)
	}
	s := NewSession(ca, clk, 1)
	defer s.Close()
	const frames = 10
	st := s.StartStream("b", 4001, frames)
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case <-st.Done():
		default:
			if time.Now().After(deadline) {
				t.Fatalf("stream stalled at %d/%d frames", st.Sent(), frames)
			}
			clk.Advance(FrameDuration)
			time.Sleep(500 * time.Microsecond)
			continue
		}
		break
	}
	if got := st.Wait(); got != frames {
		t.Fatalf("sent %d, want %d", got, frames)
	}
}
