package rtp

import (
	"sync"
	"sync/atomic"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
)

// Session is one end of an RTP media session bound to a UDP-like port: it
// can stream synthetic voice toward the peer and it measures everything that
// arrives. Close releases the port and stops the receive loop.
//
// Outgoing streams are paced by a Pacer — the shared one handed to
// NewSessionWithPacer, or a private one created lazily otherwise.
type Session struct {
	conn *netem.Conn
	clk  clock.Clock
	ssrc uint32

	sent   atomic.Int64
	played atomic.Int64

	mu          sync.Mutex
	recv        Receiver
	jb          *JitterBuffer
	onFirstRecv func(time.Time) // one-shot; cleared after firing
	streams     []*Stream
	pacer       *Pacer
	ownPacer    bool
	closed      bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewSession wraps conn and starts receiving. Incoming frames pass through
// a playout jitter buffer before being counted as played. Outgoing streams
// get a private pacer; deployments with many sessions should share one via
// NewSessionWithPacer.
func NewSession(conn *netem.Conn, clk clock.Clock, ssrc uint32) *Session {
	return NewSessionWithPacer(conn, clk, ssrc, nil)
}

// NewSessionWithPacer wraps conn like NewSession but paces outgoing streams
// on the shared pacer (nil behaves like NewSession). The caller owns the
// pacer's lifecycle.
func NewSessionWithPacer(conn *netem.Conn, clk clock.Clock, ssrc uint32, pacer *Pacer) *Session {
	s := &Session{
		conn: conn, clk: clk, ssrc: ssrc,
		jb:    NewJitterBuffer(DefaultPlayoutDelay),
		pacer: pacer,
		stop:  make(chan struct{}),
	}
	s.wg.Add(1)
	go s.recvLoop()
	return s
}

// Port returns the local RTP port.
func (s *Session) Port() uint16 { return s.conn.LocalPort() }

// OnFirstRecv registers a one-shot hook invoked (from the receive goroutine)
// with the arrival time of the first RTP packet. If a packet already arrived,
// fn fires immediately with that time. Used to close the media-start span of
// a call trace.
func (s *Session) OnFirstRecv(fn func(time.Time)) {
	s.mu.Lock()
	fired := s.recv.Stats().Received > 0
	if !fired {
		s.onFirstRecv = fn
	}
	s.mu.Unlock()
	if fired {
		fn(s.clk.Now())
	}
}

// StartStream begins transmitting `frames` voice frames to dst:port paced at
// the G.711 frame rate (20 ms) without blocking; the returned handle reports
// progress and Wait blocks until done. The first frame is due immediately.
func (s *Session) StartStream(dst netem.NodeID, port uint16, frames int) *Stream {
	st := &Stream{
		sess: s, dst: dst, port: port, frames: frames,
		payload: make([]byte, 0, PayloadBytes),
		wire:    make([]byte, 0, headerLen+PayloadBytes),
		done:    make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed || frames <= 0 {
		s.mu.Unlock()
		st.cancelled.Store(true)
		st.doneOnce.Do(func() { close(st.done) })
		return st
	}
	pc := s.pacer
	if pc == nil {
		pc = NewPacer(s.clk)
		s.pacer = pc
		s.ownPacer = true
	}
	s.streams = append(s.streams, st)
	s.mu.Unlock()
	st.task.fire = st.step
	st.task.stopped = st.finish
	pc.Schedule(&st.task, s.clk.Now())
	return st
}

// SendStream transmits `frames` voice frames to dst:port paced at the G.711
// frame rate (20 ms), blocking until done or the session closes. It returns
// the number of frames handed to the network.
func (s *Session) SendStream(dst netem.NodeID, port uint16, frames int) int {
	return s.StartStream(dst, port, frames).Wait()
}

func (s *Session) removeStream(st *Stream) {
	s.mu.Lock()
	for i, cur := range s.streams {
		if cur == st {
			last := len(s.streams) - 1
			s.streams[i] = s.streams[last]
			s.streams[last] = nil
			s.streams = s.streams[:last]
			break
		}
	}
	s.mu.Unlock()
}

// Sent returns the number of frames transmitted so far.
func (s *Session) Sent() int64 { return s.sent.Load() }

// Stats returns the receive-side quality snapshot.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recv.Stats()
}

// PlayoutStats returns jitter-buffer counters: frames played in order,
// frames dropped for arriving after their playout slot, and gaps skipped as
// lost.
func (s *Session) PlayoutStats() (played, late, missing int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Flush anything due up to now so callers see current numbers.
	s.played.Add(int64(s.jb.FlushDue(s.clk.Now())))
	return s.played.Load(), s.jb.Late(), s.jb.Missing()
}

// Close stops the session: active streams finish immediately (their waiters
// see the frames sent so far), the port is released, and any private pacer
// shuts down.
func (s *Session) Close() {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		streams := append([]*Stream(nil), s.streams...)
		pc, own := s.pacer, s.ownPacer
		s.mu.Unlock()
		close(s.stop)
		for _, st := range streams {
			st.Stop()
		}
		s.conn.Close()
		if own {
			pc.Close()
		}
	})
	s.wg.Wait()
}

func (s *Session) recvLoop() {
	defer s.wg.Done()
	var pkt Packet
	for {
		dg, ok := s.conn.Recv()
		if !ok {
			return
		}
		// Zero-copy parse: the payload borrows dg.Data, which the network
		// hands over per frame and never reuses; the jitter buffer owns it
		// until the frame is played or dropped.
		if err := ParseInto(&pkt, dg.Data); err != nil {
			continue
		}
		now := s.clk.Now()
		s.mu.Lock()
		first := s.onFirstRecv
		s.onFirstRecv = nil
		s.recv.Observe(&pkt, now)
		s.jb.Put(&pkt, now)
		played := s.jb.FlushDue(now)
		s.mu.Unlock()
		s.played.Add(int64(played))
		if first != nil {
			first(now)
		}
	}
}
