package rtp

import (
	"sync"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
)

// Session is one end of an RTP media session bound to a UDP-like port: it
// can stream synthetic voice toward the peer and it measures everything that
// arrives. Close releases the port and stops the receive loop.
type Session struct {
	conn *netem.Conn
	clk  clock.Clock
	ssrc uint32

	mu          sync.Mutex
	recv        Receiver
	jb          *JitterBuffer
	played      int64
	sent        int64
	onFirstRecv func(time.Time) // one-shot; cleared after firing

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewSession wraps conn and starts receiving. Incoming frames pass through
// a playout jitter buffer before being counted as played.
func NewSession(conn *netem.Conn, clk clock.Clock, ssrc uint32) *Session {
	s := &Session{
		conn: conn, clk: clk, ssrc: ssrc,
		jb:   NewJitterBuffer(DefaultPlayoutDelay),
		stop: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.recvLoop()
	return s
}

// Port returns the local RTP port.
func (s *Session) Port() uint16 { return s.conn.LocalPort() }

// OnFirstRecv registers a one-shot hook invoked (from the receive goroutine)
// with the arrival time of the first RTP packet. If a packet already arrived,
// fn fires immediately with that time. Used to close the media-start span of
// a call trace.
func (s *Session) OnFirstRecv(fn func(time.Time)) {
	s.mu.Lock()
	fired := s.recv.Stats().Received > 0
	if !fired {
		s.onFirstRecv = fn
	}
	s.mu.Unlock()
	if fired {
		fn(s.clk.Now())
	}
}

// SendStream transmits `frames` voice frames to dst:port paced at the G.711
// frame rate (20 ms), blocking until done or the session closes. It returns
// the number of frames handed to the network.
func (s *Session) SendStream(dst netem.NodeID, port uint16, frames int) int {
	sent := 0
	for i := range frames {
		select {
		case <-s.stop:
			return sent
		default:
		}
		pkt := NewVoiceFrame(s.ssrc, uint32(i), s.clk.Now())
		if err := s.conn.WriteTo(pkt.Marshal(), dst, port); err == nil {
			sent++
		}
		s.mu.Lock()
		s.sent++
		s.mu.Unlock()
		if i != frames-1 {
			timer := s.clk.NewTimer(FrameDuration)
			select {
			case <-s.stop:
				timer.Stop()
				return sent
			case <-timer.C():
			}
		}
	}
	return sent
}

// Sent returns the number of frames transmitted so far.
func (s *Session) Sent() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent
}

// Stats returns the receive-side quality snapshot.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recv.Stats()
}

// PlayoutStats returns jitter-buffer counters: frames played in order,
// frames dropped for arriving after their playout slot, and gaps skipped as
// lost.
func (s *Session) PlayoutStats() (played, late, missing int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Flush anything due up to now so callers see current numbers.
	s.played += int64(len(s.jb.PopDue(s.clk.Now())))
	return s.played, s.jb.Late(), s.jb.Missing()
}

// Close stops the session and releases the port.
func (s *Session) Close() {
	s.stopOnce.Do(func() {
		close(s.stop)
		s.conn.Close()
	})
	s.wg.Wait()
}

func (s *Session) recvLoop() {
	defer s.wg.Done()
	for {
		dg, ok := s.conn.Recv()
		if !ok {
			return
		}
		pkt, err := Parse(dg.Data)
		if err != nil {
			continue
		}
		now := s.clk.Now()
		s.mu.Lock()
		first := s.onFirstRecv
		s.onFirstRecv = nil
		s.recv.Observe(pkt, now)
		s.jb.Put(pkt, now)
		s.played += int64(len(s.jb.PopDue(now)))
		s.mu.Unlock()
		if first != nil {
			first(now)
		}
	}
}
