package rtp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func jbFrame(seq uint32) *Packet {
	return NewVoiceFrame(1, seq, time.Unix(0, 0))
}

func TestJitterBufferInOrderPlayout(t *testing.T) {
	jb := NewJitterBuffer(50 * time.Millisecond)
	base := time.Unix(1000, 0)
	for i := range uint32(5) {
		jb.Put(jbFrame(i), base.Add(time.Duration(i)*FrameDuration))
	}
	// Nothing is due before the playout delay.
	if got := jb.PopDue(base.Add(20 * time.Millisecond)); len(got) != 0 {
		t.Fatalf("early pop returned %d frames", len(got))
	}
	// Everything is due well after.
	got := jb.PopDue(base.Add(time.Second))
	if len(got) != 5 {
		t.Fatalf("pop returned %d frames", len(got))
	}
	for i, p := range got {
		if p.Seq != uint16(i) {
			t.Fatalf("frame %d has seq %d", i, p.Seq)
		}
	}
	if jb.Played() != 5 || jb.Late() != 0 || jb.Missing() != 0 {
		t.Fatalf("counters: played=%d late=%d missing=%d", jb.Played(), jb.Late(), jb.Missing())
	}
}

func TestJitterBufferReordersPackets(t *testing.T) {
	jb := NewJitterBuffer(50 * time.Millisecond)
	base := time.Unix(1000, 0)
	for _, seq := range []uint32{2, 0, 4, 1, 3} {
		jb.Put(jbFrame(seq), base)
	}
	got := jb.PopDue(base.Add(time.Second))
	if len(got) != 5 {
		t.Fatalf("pop returned %d frames", len(got))
	}
	for i, p := range got {
		if p.Seq != uint16(i) {
			t.Fatalf("order broken at %d: seq %d", i, p.Seq)
		}
	}
}

func TestJitterBufferSkipsLostFrame(t *testing.T) {
	jb := NewJitterBuffer(50 * time.Millisecond)
	base := time.Unix(1000, 0)
	jb.Put(jbFrame(0), base)
	// Frame 1 never arrives.
	jb.Put(jbFrame(2), base)
	got := jb.PopDue(base.Add(time.Second))
	if len(got) != 2 || got[0].Seq != 0 || got[1].Seq != 2 {
		t.Fatalf("got %v", got)
	}
	if jb.Missing() != 1 {
		t.Fatalf("missing = %d", jb.Missing())
	}
}

func TestJitterBufferDoesNotSkipPrematurely(t *testing.T) {
	jb := NewJitterBuffer(50 * time.Millisecond)
	base := time.Unix(1000, 0)
	jb.Put(jbFrame(0), base)
	jb.Put(jbFrame(2), base.Add(40*time.Millisecond))
	// At +55ms frame 0 is due, frame 2 is not (due +90ms): the gap at 1
	// must NOT be skipped yet — frame 1 may still arrive.
	got := jb.PopDue(base.Add(55 * time.Millisecond))
	if len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("got %v", got)
	}
	if jb.Missing() != 0 {
		t.Fatalf("premature skip: missing = %d", jb.Missing())
	}
	// The straggler arrives in time and plays in order.
	jb.Put(jbFrame(1), base.Add(60*time.Millisecond))
	got = jb.PopDue(base.Add(200 * time.Millisecond))
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestJitterBufferCountsLate(t *testing.T) {
	jb := NewJitterBuffer(30 * time.Millisecond)
	base := time.Unix(1000, 0)
	jb.Put(jbFrame(0), base)
	jb.Put(jbFrame(2), base)
	_ = jb.PopDue(base.Add(time.Second)) // playout passes frame 1's slot
	// Frame 1 shows up now: too late.
	jb.Put(jbFrame(1), base.Add(2*time.Second))
	if jb.Late() != 1 {
		t.Fatalf("late = %d", jb.Late())
	}
}

func TestJitterBufferSequenceWrap(t *testing.T) {
	jb := NewJitterBuffer(10 * time.Millisecond)
	base := time.Unix(1000, 0)
	seqs := []uint16{65534, 65535, 0, 1}
	for _, s := range seqs {
		jb.Put(&Packet{Seq: s, Payload: make([]byte, PayloadBytes)}, base)
	}
	got := jb.PopDue(base.Add(time.Second))
	if len(got) != 4 {
		t.Fatalf("pop returned %d frames", len(got))
	}
	for i, p := range got {
		if p.Seq != seqs[i] {
			t.Fatalf("wrap order broken at %d: %d", i, p.Seq)
		}
	}
}

// TestJitterBufferQuickNoDuplicatesNoReorder feeds random permutations with
// random drops and asserts the invariant: output is strictly increasing in
// sequence space and free of duplicates.
func TestJitterBufferQuickNoDuplicatesNoReorder(t *testing.T) {
	f := func(seed int64, dropMask uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		jb := NewJitterBuffer(20 * time.Millisecond)
		base := time.Unix(1000, 0)
		perm := rng.Perm(20)
		for _, i := range perm {
			if dropMask&(1<<uint(i%32)) != 0 && i != 0 {
				continue // dropped in the network
			}
			jb.Put(jbFrame(uint32(i)), base.Add(time.Duration(rng.Intn(30))*time.Millisecond))
		}
		var all []*Packet
		for tick := 1; tick <= 10; tick++ {
			all = append(all, jb.PopDue(base.Add(time.Duration(tick)*50*time.Millisecond))...)
		}
		seen := make(map[uint16]bool)
		prev := -1
		for _, p := range all {
			if seen[p.Seq] {
				return false // duplicate
			}
			seen[p.Seq] = true
			if int(p.Seq) <= prev {
				return false // reordered
			}
			prev = int(p.Seq)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJitterBufferDefaults(t *testing.T) {
	jb := NewJitterBuffer(0)
	if jb.delay != DefaultPlayoutDelay {
		t.Fatalf("delay = %v", jb.delay)
	}
	if got := jb.PopDue(time.Now()); got != nil {
		t.Fatal("pop on empty unstarted buffer returned frames")
	}
	if jb.Depth() != 0 {
		t.Fatal("depth != 0")
	}
}
