// Package rtp implements the media plane of a call: RTP packetization
// (RFC 3550 fixed header), a synthetic G.711 µ-law voice source (20 ms
// frames, 160 payload bytes), a jitter-tracking receiver, and call-quality
// estimation via a simplified ITU-T G.107 E-model — the measurement side of
// "does VoIP actually work over this MANET".
package rtp

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// G.711 framing constants: 8 kHz sampling, 20 ms packets.
const (
	PayloadTypePCMU   = 0
	FrameDuration     = 20 * time.Millisecond
	SamplesPerFrame   = 160
	PayloadBytes      = 160
	ClockRate         = 8000
	headerLen         = 12
	timestampTrailLen = 8 // wall-clock send time appended to the payload
)

// Packet is an RTP packet with the fixed 12-byte header.
type Packet struct {
	PayloadType uint8
	Seq         uint16
	Timestamp   uint32 // media clock (8 kHz)
	SSRC        uint32
	Payload     []byte
}

// AppendTo appends the packet's wire encoding to dst and returns the
// extended slice. Callers that reuse dst across frames (the pacer's send
// path) encode with zero allocations in steady state.
func (p *Packet) AppendTo(dst []byte) []byte {
	dst = append(dst, 2<<6, p.PayloadType&0x7f) // version 2, no padding/extension/CSRC
	dst = binary.BigEndian.AppendUint16(dst, p.Seq)
	dst = binary.BigEndian.AppendUint32(dst, p.Timestamp)
	dst = binary.BigEndian.AppendUint32(dst, p.SSRC)
	return append(dst, p.Payload...)
}

// Marshal encodes the packet into a fresh buffer.
func (p *Packet) Marshal() []byte {
	return p.AppendTo(make([]byte, 0, headerLen+len(p.Payload)))
}

// ParseInto decodes an RTP packet into p without copying: p.Payload aliases
// b. The caller owns b and must keep it immutable until the frame is played
// or dropped — the receive path hands each frame's datagram buffer to the
// jitter buffer and never reuses it, so borrowing is safe there.
func ParseInto(p *Packet, b []byte) error {
	if len(b) < headerLen {
		return fmt.Errorf("rtp: short packet (%d bytes)", len(b))
	}
	if v := b[0] >> 6; v != 2 {
		return fmt.Errorf("rtp: unsupported version %d", v)
	}
	p.PayloadType = b[1] & 0x7f
	p.Seq = binary.BigEndian.Uint16(b[2:4])
	p.Timestamp = binary.BigEndian.Uint32(b[4:8])
	p.SSRC = binary.BigEndian.Uint32(b[8:12])
	p.Payload = b[headerLen:]
	return nil
}

// Parse decodes an RTP packet, copying the payload so the result is
// independent of b. Hot paths use ParseInto instead.
func Parse(b []byte) (*Packet, error) {
	p := &Packet{}
	if err := ParseInto(p, b); err != nil {
		return nil, err
	}
	p.Payload = append([]byte(nil), p.Payload...)
	return p, nil
}

// AppendVoicePayload appends the i-th synthetic G.711 frame payload to dst:
// the first 8 bytes carry the wall-clock send time in nanoseconds (so the
// receiver can measure one-way delay; both ends share the simulation clock),
// the rest a deterministic tone-like pattern. Reusing dst across frames
// synthesizes voice with zero allocations.
func AppendVoicePayload(dst []byte, i uint32, sentAt time.Time) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(sentAt.UnixNano()))
	for j := timestampTrailLen; j < PayloadBytes; j++ {
		dst = append(dst, byte((int(i)+j)%251))
	}
	return dst
}

// NewVoiceFrame builds the i-th packet of a synthetic voice stream in fresh
// buffers. The pacer's send path keeps per-stream buffers instead; this
// constructor remains for tests and one-shot callers.
func NewVoiceFrame(ssrc uint32, i uint32, sentAt time.Time) *Packet {
	return &Packet{
		PayloadType: PayloadTypePCMU,
		Seq:         uint16(i),
		Timestamp:   i * SamplesPerFrame,
		SSRC:        ssrc,
		Payload:     AppendVoicePayload(make([]byte, 0, PayloadBytes), i, sentAt),
	}
}

// SentAt extracts the wall-clock send time embedded by NewVoiceFrame.
func (p *Packet) SentAt() (time.Time, bool) {
	if len(p.Payload) < timestampTrailLen {
		return time.Time{}, false
	}
	ns := binary.BigEndian.Uint64(p.Payload[:timestampTrailLen])
	return time.Unix(0, int64(ns)), true
}

// Receiver accumulates stream statistics: loss from sequence gaps,
// RFC 3550 §6.4.1 interarrival jitter, and one-way delay from the embedded
// send timestamps.
type Receiver struct {
	started    bool
	firstSeq   uint16
	highestSeq uint16
	cycles     uint32
	received   int64
	jitter     float64 // in media-clock units, per RFC 3550
	prevTrans  float64 // previous transit time, media-clock units
	delaySum   time.Duration
	delayMax   time.Duration
	delayCount int64
}

// Observe feeds one received packet arriving at time now.
func (r *Receiver) Observe(p *Packet, now time.Time) {
	if !r.started {
		r.started = true
		r.firstSeq = p.Seq
		r.highestSeq = p.Seq
	} else {
		// Detect wraparound while extending the highest sequence seen.
		if delta := int16(p.Seq - r.highestSeq); delta > 0 {
			if p.Seq < r.highestSeq {
				r.cycles++
			}
			r.highestSeq = p.Seq
		}
	}
	r.received++
	if sent, ok := p.SentAt(); ok {
		d := now.Sub(sent)
		if d >= 0 {
			r.delaySum += d
			r.delayCount++
			if d > r.delayMax {
				r.delayMax = d
			}
		}
		// Interarrival jitter per RFC 3550: J += (|D| - J)/16 where D is
		// the difference of transit times in media-clock units.
		transit := float64(d) / float64(time.Second) * ClockRate
		if r.prevTrans != 0 {
			dd := math.Abs(transit - r.prevTrans)
			r.jitter += (dd - r.jitter) / 16
		}
		r.prevTrans = transit
	}
}

// Stats is a call-quality snapshot.
type Stats struct {
	Expected int64
	Received int64
	Lost     int64
	LossRate float64
	Jitter   time.Duration // interarrival jitter
	AvgDelay time.Duration
	MaxDelay time.Duration
	R        float64 // E-model transmission rating
	MOS      float64 // mean opinion score estimate (1..4.5)
}

// Stats computes the snapshot.
func (r *Receiver) Stats() Stats {
	var s Stats
	if !r.started {
		return s
	}
	extended := int64(r.cycles)<<16 + int64(r.highestSeq)
	s.Expected = extended - int64(r.firstSeq) + 1
	s.Received = r.received
	s.Lost = s.Expected - s.Received
	if s.Lost < 0 {
		s.Lost = 0
	}
	if s.Expected > 0 {
		s.LossRate = float64(s.Lost) / float64(s.Expected)
	}
	s.Jitter = time.Duration(r.jitter / ClockRate * float64(time.Second))
	if r.delayCount > 0 {
		s.AvgDelay = r.delaySum / time.Duration(r.delayCount)
	}
	s.MaxDelay = r.delayMax
	s.R, s.MOS = emodel(s.AvgDelay, s.LossRate)
	return s
}

// EModel computes a simplified ITU-T G.107 E-model rating for G.711 from a
// one-way delay and a loss rate, returning the transmission rating R and
// the MOS estimate. Exposed for experiments that compute loss over a whole
// attempted stream rather than the received sequence span.
func EModel(oneWay time.Duration, loss float64) (r, mos float64) {
	return emodel(oneWay, loss)
}

// emodel computes a simplified ITU-T G.107 E-model rating for G.711:
// R = 93.2 - Id(delay) - Ie(loss), and maps R to MOS.
func emodel(oneWay time.Duration, loss float64) (r, mos float64) {
	d := float64(oneWay) / float64(time.Millisecond)
	// Delay impairment: piecewise-linear approximation.
	id := 0.024 * d
	if d > 177.3 {
		id += 0.11 * (d - 177.3)
	}
	// Equipment impairment for G.711 with random loss (Ie-eff):
	// Ie = 0 at zero loss, rising with a bpl of ~4.3.
	ie := 30 * math.Log(1+15*loss)
	r = 93.2 - id - ie
	if r < 0 {
		r = 0
	}
	switch {
	case r >= 100:
		mos = 4.5
	default:
		mos = 1 + 0.035*r + r*(r-60)*(100-r)*7e-6
	}
	if mos < 1 {
		mos = 1
	}
	return r, mos
}
