package rtp

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
)

// Pacer is the media plane's shared frame scheduler: one goroutine drains a
// (due, seq) min-heap of active streams and emits each stream's next voice
// frame when its deadline passes — the same shape as netem's delivery
// scheduler, replacing the goroutine-plus-timer-per-frame model. Any number
// of concurrent streams across any number of sessions share the one
// goroutine; a Scenario constructs one pacer for its whole deployment.
type Pacer struct {
	clk clock.Clock

	mu     sync.Mutex
	heap   pacerHeap
	seq    uint64
	closed bool

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// NewPacer starts a pacer on clk. Close it when the deployment shuts down.
func NewPacer(clk clock.Clock) *Pacer {
	p := &Pacer{
		clk:  clk,
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go p.run()
	return p
}

// add registers a stream whose first frame is due at st.due.
func (p *Pacer) add(st *Stream) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		st.finish()
		return
	}
	st.seq = p.seq
	p.seq++
	heap.Push(&p.heap, st)
	first := p.heap[0] == st
	p.mu.Unlock()
	if first {
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
}

func (p *Pacer) run() {
	defer close(p.done)
	var batch []*Stream
	for {
		p.mu.Lock()
		now := p.clk.Now()
		batch = batch[:0]
		for len(p.heap) > 0 && !p.heap[0].due.After(now) {
			batch = append(batch, heap.Pop(&p.heap).(*Stream))
		}
		wait, pending := time.Duration(0), false
		if len(p.heap) > 0 {
			wait, pending = p.heap[0].due.Sub(now), true
		}
		p.mu.Unlock()
		live := batch[:0]
		for _, st := range batch {
			if st.step() {
				st.due = st.due.Add(FrameDuration)
				live = append(live, st)
			} else {
				st.finish()
			}
		}
		if len(live) > 0 {
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				for _, st := range live {
					st.finish()
				}
				return
			}
			for _, st := range live {
				st.seq = p.seq
				p.seq++
				heap.Push(&p.heap, st)
			}
			p.mu.Unlock()
		}
		if len(batch) > 0 {
			continue // new deadlines may have passed while sending
		}
		if !pending {
			select {
			case <-p.stop:
				return
			case <-p.wake:
			}
			continue
		}
		t := p.clk.NewTimer(wait)
		select {
		case <-p.stop:
			t.Stop()
			return
		case <-p.wake:
			t.Stop()
		case <-t.C():
		}
	}
}

// Close stops the scheduler goroutine. Streams still pacing are finished
// immediately so their waiters unblock with the frames sent so far.
func (p *Pacer) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return
	}
	p.closed = true
	pending := append([]*Stream(nil), p.heap...)
	p.heap = nil
	p.mu.Unlock()
	close(p.stop)
	<-p.done
	for _, st := range pending {
		st.finish()
	}
}

// pacerHeap is a min-heap of active streams ordered by (due, seq).
type pacerHeap []*Stream

func (h pacerHeap) Len() int { return len(h) }
func (h pacerHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}
func (h pacerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pacerHeap) Push(x any)   { *h = append(*h, x.(*Stream)) }
func (h *pacerHeap) Pop() any {
	old := *h
	n := len(old)
	st := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return st
}

// Stream is a handle to one in-flight voice stream started by
// Session.StartStream. Wait blocks until the stream finishes (all frames
// sent, the stream stopped, or the session/pacer closed) and returns the
// number of frames handed to the network.
type Stream struct {
	sess   *Session
	dst    netem.NodeID
	port   uint16
	frames int

	// due/seq/i belong to the pacer goroutine (and the single registration
	// in StartStream before the stream is visible to it).
	due time.Time
	seq uint64
	i   int

	// payload/wire/pkt are per-stream scratch reused every frame so the
	// steady-state send path allocates nothing.
	payload []byte
	wire    []byte
	pkt     Packet

	sent      atomic.Int64
	cancelled atomic.Bool
	done      chan struct{}
	doneOnce  sync.Once
}

// Wait blocks until the stream finishes and returns the frames sent.
func (st *Stream) Wait() int {
	<-st.done
	return int(st.sent.Load())
}

// Done is closed when the stream finishes.
func (st *Stream) Done() <-chan struct{} { return st.done }

// Sent returns the frames handed to the network so far.
func (st *Stream) Sent() int { return int(st.sent.Load()) }

// Stop cancels the stream: no further frames are sent and Wait unblocks.
func (st *Stream) Stop() {
	st.cancelled.Store(true)
	st.finish()
}

func (st *Stream) finish() {
	st.doneOnce.Do(func() {
		close(st.done)
		st.sess.removeStream(st)
	})
}

// step sends the stream's next frame and reports whether more remain. Called
// only from the pacer goroutine.
func (st *Stream) step() bool {
	if st.cancelled.Load() {
		return false
	}
	s := st.sess
	st.payload = AppendVoicePayload(st.payload[:0], uint32(st.i), s.clk.Now())
	st.pkt = Packet{
		PayloadType: PayloadTypePCMU,
		Seq:         uint16(st.i),
		Timestamp:   uint32(st.i) * SamplesPerFrame,
		SSRC:        s.ssrc,
		Payload:     st.payload,
	}
	st.wire = st.pkt.AppendTo(st.wire[:0])
	if err := s.conn.WriteTo(st.wire, st.dst, st.port); err == nil {
		st.sent.Add(1)
	}
	s.sent.Add(1)
	st.i++
	return st.i < st.frames
}
