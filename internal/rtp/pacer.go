package rtp

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
)

// Task is one unit of periodically paced work: the pacer calls fire when the
// task's deadline passes, and fire answers with the interval to the next
// firing (or done). Media streams are tasks, and so is the gateway trunk
// flusher — anything that needs frame-rate scheduling shares the one pacer
// goroutine instead of owning a timer.
//
// A Task is single-owner: it must not be scheduled again while it is still
// registered with a pacer. Once fire returns done (or stopped runs), the same
// Task value may be rescheduled — that is how intermittent tasks like the
// trunk flusher park themselves while idle without allocating on re-arm.
type Task struct {
	// fire runs one step on the pacer goroutine and returns the interval to
	// the next firing; ok=false retires the task.
	fire func() (next time.Duration, ok bool)
	// stopped, if non-nil, runs when the task leaves the pacer — after fire
	// returned done, or when the pacer shuts down with the task still queued.
	stopped func()

	// due/seq belong to the pacer goroutine (and the single Schedule call
	// before the task is visible to it).
	due time.Time
	seq uint64
}

// NewTask builds a schedulable task. stopped may be nil.
func NewTask(fire func() (time.Duration, bool), stopped func()) *Task {
	return &Task{fire: fire, stopped: stopped}
}

func (t *Task) stop() {
	if t.stopped != nil {
		t.stopped()
	}
}

// Pacer is the media plane's shared frame scheduler: one goroutine drains a
// (due, seq) min-heap of active tasks and fires each one when its deadline
// passes — the same shape as netem's delivery scheduler, replacing the
// goroutine-plus-timer-per-frame model. Any number of concurrent streams and
// trunk flows across any number of sessions share the one goroutine; a
// Scenario constructs one pacer for its whole deployment.
type Pacer struct {
	clk clock.Clock

	mu     sync.Mutex
	heap   pacerHeap
	seq    uint64
	closed bool

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// NewPacer starts a pacer on clk. Close it when the deployment shuts down.
func NewPacer(clk clock.Clock) *Pacer {
	p := &Pacer{
		clk:  clk,
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go p.run()
	return p
}

// Clock returns the pacer's time source, so components scheduling tasks share
// its notion of now.
func (p *Pacer) Clock() clock.Clock { return p.clk }

// Schedule registers t to fire at due. On a closed pacer the task's stopped
// hook runs immediately.
func (p *Pacer) Schedule(t *Task, due time.Time) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		t.stop()
		return
	}
	t.due = due
	t.seq = p.seq
	p.seq++
	heap.Push(&p.heap, t)
	first := p.heap[0] == t
	p.mu.Unlock()
	if first {
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
}

func (p *Pacer) run() {
	defer close(p.done)
	var batch []*Task
	for {
		p.mu.Lock()
		now := p.clk.Now()
		batch = batch[:0]
		for len(p.heap) > 0 && !p.heap[0].due.After(now) {
			batch = append(batch, heap.Pop(&p.heap).(*Task))
		}
		wait, pending := time.Duration(0), false
		if len(p.heap) > 0 {
			wait, pending = p.heap[0].due.Sub(now), true
		}
		p.mu.Unlock()
		live := batch[:0]
		for _, t := range batch {
			if d, ok := t.fire(); ok {
				t.due = t.due.Add(d)
				live = append(live, t)
			} else {
				t.stop()
			}
		}
		if len(live) > 0 {
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				for _, t := range live {
					t.stop()
				}
				return
			}
			for _, t := range live {
				t.seq = p.seq
				p.seq++
				heap.Push(&p.heap, t)
			}
			p.mu.Unlock()
		}
		if len(batch) > 0 {
			continue // new deadlines may have passed while firing
		}
		if !pending {
			select {
			case <-p.stop:
				return
			case <-p.wake:
			}
			continue
		}
		t := p.clk.NewTimer(wait)
		select {
		case <-p.stop:
			t.Stop()
			return
		case <-p.wake:
			t.Stop()
		case <-t.C():
		}
	}
}

// Close stops the scheduler goroutine. Tasks still queued are stopped
// immediately, so stream waiters unblock with the frames sent so far.
func (p *Pacer) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return
	}
	p.closed = true
	pending := append([]*Task(nil), p.heap...)
	p.heap = nil
	p.mu.Unlock()
	close(p.stop)
	<-p.done
	for _, t := range pending {
		t.stop()
	}
}

// pacerHeap is a min-heap of scheduled tasks ordered by (due, seq).
type pacerHeap []*Task

func (h pacerHeap) Len() int { return len(h) }
func (h pacerHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}
func (h pacerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pacerHeap) Push(x any)   { *h = append(*h, x.(*Task)) }
func (h *pacerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Stream is a handle to one in-flight voice stream started by
// Session.StartStream. Wait blocks until the stream finishes (all frames
// sent, the stream stopped, or the session/pacer closed) and returns the
// number of frames handed to the network.
type Stream struct {
	sess   *Session
	dst    netem.NodeID
	port   uint16
	frames int

	// task is the stream's pacer registration; its closure is set once in
	// StartStream so steady-state pacing allocates nothing.
	task Task
	i    int

	// payload/wire/pkt are per-stream scratch reused every frame so the
	// steady-state send path allocates nothing.
	payload []byte
	wire    []byte
	pkt     Packet

	sent      atomic.Int64
	cancelled atomic.Bool
	done      chan struct{}
	doneOnce  sync.Once
}

// Wait blocks until the stream finishes and returns the frames sent.
func (st *Stream) Wait() int {
	<-st.done
	return int(st.sent.Load())
}

// Done is closed when the stream finishes.
func (st *Stream) Done() <-chan struct{} { return st.done }

// Sent returns the frames handed to the network so far.
func (st *Stream) Sent() int { return int(st.sent.Load()) }

// Stop cancels the stream: no further frames are sent and Wait unblocks.
func (st *Stream) Stop() {
	st.cancelled.Store(true)
	st.finish()
}

func (st *Stream) finish() {
	st.doneOnce.Do(func() {
		close(st.done)
		st.sess.removeStream(st)
	})
}

// step sends the stream's next frame and reports whether more remain. Called
// only from the pacer goroutine.
func (st *Stream) step() (time.Duration, bool) {
	if st.cancelled.Load() {
		return 0, false
	}
	s := st.sess
	st.payload = AppendVoicePayload(st.payload[:0], uint32(st.i), s.clk.Now())
	st.pkt = Packet{
		PayloadType: PayloadTypePCMU,
		Seq:         uint16(st.i),
		Timestamp:   uint32(st.i) * SamplesPerFrame,
		SSRC:        s.ssrc,
		Payload:     st.payload,
	}
	st.wire = st.pkt.AppendTo(st.wire[:0])
	if err := s.conn.WriteTo(st.wire, st.dst, st.port); err == nil {
		st.sent.Add(1)
	}
	s.sent.Add(1)
	st.i++
	if st.i < st.frames {
		return FrameDuration, true
	}
	return 0, false
}
