package rtp

// Golden recovery trace: a seeded netem.FaultPlan partitions a 3-hop chain
// mid-stream and heals it, all on clock.Fake. The run pins the recovered
// frame count, the failover latency (heal to first post-heal delivery) and
// the post-heal MOS bit-identically — the determinism contract of the fault
// subsystem, checked end to end through the media plane.

import (
	"fmt"
	"testing"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
)

// partitionHealResult is everything a recovery run pins.
type partitionHealResult struct {
	sent      int
	delivered int64
	lost      int64
	recovery  time.Duration // heal to first post-heal delivery
	faultLog  string
	mos       string
	r         string
}

const healOffset = 1000 * time.Millisecond

func runPartitionHeal(t *testing.T) partitionHealResult {
	t.Helper()
	sim := &chainSim{clk: clock.NewFake(time.Unix(4_000_000, 0))}
	sim.net = netem.NewNetwork(netem.Config{
		BaseDelay:   700 * time.Microsecond,
		DelayJitter: 2 * time.Millisecond,
		LossRate:    0.05,
		Seed:        9,
		Clock:       sim.clk,
	})
	defer sim.net.Close()
	hosts := lineChain(t, sim.net, []netem.NodeID{"a", "b", "c", "d"})
	ca, err := hosts[0].Listen(4000)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := hosts[3].Listen(4001)
	if err != nil {
		t.Fatal(err)
	}
	sa := NewSession(ca, sim.clk, 11)
	sd := NewSession(cd, sim.clk, 22)
	defer sa.Close()
	defer sd.Close()
	sim.sessions = [2]*Session{sa, sd}

	west, east := []netem.NodeID{"a", "b"}, []netem.NodeID{"c", "d"}
	plan := netem.NewFaultPlan(sim.net, netem.FaultPlanConfig{Seed: 5})
	plan.Partition(400*time.Millisecond, west, east)
	plan.HealPartition(healOffset, west, east)
	defer plan.Stop()

	const frames = 120 // 2.4 s of voice at the 20 ms cadence
	st := sa.StartStream("d", 4001, frames)
	if err := plan.Run(); err != nil {
		t.Fatal(err)
	}
	sim.settle()

	var res partitionHealResult
	res.recovery = -1
	preHeal := int64(-1)
	const steps = frames*10 + 150 // 2 ms steps: stream duration + 300 ms flush
	for i := 1; i <= steps; i++ {
		sim.step(1)
		at := time.Duration(i) * 2 * time.Millisecond
		if at == healOffset {
			preHeal = sim.sessions[1].Stats().Received
		}
		if preHeal >= 0 && res.recovery < 0 {
			if got := sim.sessions[1].Stats().Received; got > preHeal {
				res.recovery = at - healOffset
			}
		}
	}
	res.sent = st.Wait()
	stats := sd.Stats()
	res.delivered = stats.Received
	res.lost = stats.Lost
	res.mos = fmt.Sprintf("%.6f", stats.MOS)
	res.r = fmt.Sprintf("%.6f", stats.R)
	for _, rec := range plan.Log() {
		res.faultLog += rec.String() + "\n"
	}
	return res
}

func TestPartitionHealGoldenRecovery(t *testing.T) {
	run1 := runPartitionHeal(t)
	run2 := runPartitionHeal(t)
	if run1 != run2 {
		t.Fatalf("seeded recovery run diverged:\nrun1 %+v\nrun2 %+v", run1, run2)
	}
	if run1.sent != 120 {
		t.Fatalf("sent = %d, want 120", run1.sent)
	}
	if run1.recovery < 0 {
		t.Fatal("no delivery after the heal: media never recovered")
	}
	if run1.delivered <= run1.lost {
		t.Fatalf("delivered %d <= lost %d: partition dominated the stream", run1.delivered, run1.lost)
	}
	// Golden values of the seeded run (netem seed 9, plan seed 5): ~30 of
	// the 120 frames fall into the 600 ms partition, background loss takes
	// a few more, and the first post-heal frame lands within one cadence of
	// the heal. Any drift here means the fault layer's determinism broke.
	golden := partitionHealResult{
		sent:      120,
		delivered: 81,
		lost:      38,
		recovery:  8 * time.Millisecond,
		faultLog:  run1.faultLog, // asserted separately below
		mos:       run1.mos,
		r:         run1.r,
	}
	if run1.sent != golden.sent || run1.delivered != golden.delivered || run1.lost != golden.lost || run1.recovery != golden.recovery {
		t.Errorf("recovery numbers drifted from golden:\n got  sent=%d delivered=%d lost=%d recovery=%v\n want sent=%d delivered=%d lost=%d recovery=%v",
			run1.sent, run1.delivered, run1.lost, run1.recovery,
			golden.sent, golden.delivered, golden.lost, golden.recovery)
	}
	wantLog := "[   400ms] net.partition  [a b] | [c d]\n" +
		"[      1s] net.heal       [a b] | [c d]\n"
	if run1.faultLog != wantLog {
		t.Errorf("fault log drifted:\n got:\n%s want:\n%s", run1.faultLog, wantLog)
	}
	if run1.mos != "2.079666" {
		t.Errorf("post-heal MOS = %s, golden 2.079666", run1.mos)
	}
}
