package rtp

// Equivalence tests for the media-plane fast path: the golden numbers below
// were captured from the pre-pacer, pre-zero-copy implementation (goroutine
// per stream, allocating codec, map-scan jitter buffer) on the exact traces
// reproduced here. The rewrite must change no accounting — played/late/
// missing, loss, delay, jitter and the E-model MOS all stay bit-identical.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
)

// runJBTrace feeds a seeded loss/reorder trace through the jitter buffer:
// 200 frames at the 20 ms cadence, 10% dropped, arrival skewed by up to
// 80 ms of jitter against a 25 ms playout delay, with PopDue ticking every
// 5 ms interleaved with arrivals.
func runJBTrace(seed int64) (played, late, missing int64) {
	rng := rand.New(rand.NewSource(seed))
	jb := NewJitterBuffer(25 * time.Millisecond)
	base := time.Unix(1000, 0)
	type arrival struct {
		seq uint32
		at  time.Time
	}
	var arr []arrival
	for i := range 200 {
		if rng.Float64() < 0.1 {
			continue // lost in the network
		}
		at := base.Add(time.Duration(i)*FrameDuration + time.Duration(rng.Int63n(int64(80*time.Millisecond))))
		arr = append(arr, arrival{uint32(i), at})
	}
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].at.Before(arr[j].at) })
	tick := base
	for _, a := range arr {
		for !tick.After(a.at) {
			jb.PopDue(tick)
			tick = tick.Add(5 * time.Millisecond)
		}
		jb.Put(NewVoiceFrame(1, a.seq, base), a.at)
	}
	jb.PopDue(base.Add(10 * time.Second))
	return jb.Played(), jb.Late(), jb.Missing()
}

func TestJitterBufferGoldenTrace(t *testing.T) {
	golden := []struct {
		seed                  int64
		played, late, missing int64
	}{
		{1, 161, 16, 39},
		{2, 164, 14, 36},
		{3, 158, 18, 42},
		{4, 162, 14, 38},
		{5, 173, 12, 27},
	}
	for _, g := range golden {
		p, l, m := runJBTrace(g.seed)
		if p != g.played || l != g.late || m != g.missing {
			t.Errorf("seed %d: played/late/missing = %d/%d/%d, golden %d/%d/%d",
				g.seed, p, l, m, g.played, g.late, g.missing)
		}
	}
}

// staticRoutes is a fixed next-hop table, bypassing the routing protocols.
type staticRoutes struct{ next map[netem.NodeID]netem.NodeID }

func (r staticRoutes) NextHop(dst netem.NodeID) (netem.NodeID, bool) {
	nh, ok := r.next[dst]
	return nh, ok
}
func (r staticRoutes) RequestRoute(dst netem.NodeID, done func(bool)) {
	_, ok := r.next[dst]
	done(ok)
}

// lineChain adds hosts "a".."d" spaced one radio hop apart with static line
// routes, returning them in order.
func lineChain(t *testing.T, n *netem.Network, ids []netem.NodeID) []*netem.Host {
	t.Helper()
	hosts := make([]*netem.Host, len(ids))
	for i, id := range ids {
		h, err := n.AddHost(id, netem.Position{X: float64(i) * 90})
		if err != nil {
			t.Fatal(err)
		}
		hosts[i] = h
	}
	for i, h := range hosts {
		next := make(map[netem.NodeID]netem.NodeID)
		for j, id := range ids {
			if j == i {
				continue
			}
			if j > i {
				next[id] = ids[i+1]
			} else {
				next[id] = ids[i-1]
			}
		}
		h.SetRouteProvider(staticRoutes{next: next})
	}
	return hosts
}

// chainSnap is the quiescence snapshot for the settle-then-step fake-clock
// driver: the simulation is idle when no medium, session or raw-capture
// counter moves and no new clock timers appear across consecutive polls.
type chainSnap struct {
	frames  int64
	deliv   int64
	lost    int64
	recv    [2]int64
	raw     int
	pending int
}

type chainSim struct {
	clk      *clock.Fake
	net      *netem.Network
	sessions [2]*Session
	rawMu    sync.Mutex
	rawSeqs  []uint16
}

func (c *chainSim) snap() chainSnap {
	st := c.net.Stats()
	s := chainSnap{
		frames:  st.TotalFrames(),
		deliv:   st.Deliveries,
		lost:    st.Lost,
		pending: c.clk.PendingTimers(),
	}
	for i, sess := range c.sessions {
		if sess != nil {
			s.recv[i] = sess.Stats().Received
		}
	}
	c.rawMu.Lock()
	s.raw = len(c.rawSeqs)
	c.rawMu.Unlock()
	return s
}

func (c *chainSim) settle() {
	prev := c.snap()
	stable := 0
	for stable < 3 {
		time.Sleep(150 * time.Microsecond)
		cur := c.snap()
		if cur == prev {
			stable++
		} else {
			stable = 0
			prev = cur
		}
	}
}

// step advances the fake clock in 2 ms increments (a divisor of the 20 ms
// frame cadence, so every timer fires exactly on its deadline), settling to
// quiescence after each increment so event causality — and therefore the
// medium's seeded RNG draw order — is identical on every run.
func (c *chainSim) step(n int) {
	for range n {
		c.clk.Advance(2 * time.Millisecond)
		c.settle()
	}
}

// TestChainGoldenPlayout streams 80 voice frames over a seeded lossy 3-hop
// chain on a fake clock and checks every quality number against the golden
// run of the pre-rewrite implementation.
func TestChainGoldenPlayout(t *testing.T) {
	sim := &chainSim{clk: clock.NewFake(time.Unix(1_000_000, 0))}
	sim.net = netem.NewNetwork(netem.Config{
		BaseDelay:   700 * time.Microsecond,
		DelayJitter: 2 * time.Millisecond,
		LossRate:    0.08,
		Seed:        7,
		Clock:       sim.clk,
	})
	defer sim.net.Close()
	hosts := lineChain(t, sim.net, []netem.NodeID{"a", "b", "c", "d"})
	ca, err := hosts[0].Listen(4000)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := hosts[3].Listen(4001)
	if err != nil {
		t.Fatal(err)
	}
	sa := NewSession(ca, sim.clk, 11)
	sd := NewSession(cd, sim.clk, 22)
	defer sa.Close()
	defer sd.Close()
	sim.sessions = [2]*Session{sa, sd}

	const frames = 80
	st := sa.StartStream("d", 4001, frames)
	sim.settle()
	for {
		sim.step(1)
		select {
		case <-st.Done():
		default:
			continue
		}
		break
	}
	sim.step(150) // 300 ms: flush in-flight deliveries and the playout buffer

	if sent := st.Wait(); sent != frames {
		t.Fatalf("sent = %d, want %d", sent, frames)
	}
	played, late, missing := sd.PlayoutStats()
	if played != 61 || late != 0 || missing != 18 {
		t.Fatalf("playout = %d/%d/%d, golden 61/0/18", played, late, missing)
	}
	stats := sd.Stats()
	if stats.Received != 61 || stats.Lost != 18 || stats.Expected != 79 {
		t.Fatalf("received/lost/expected = %d/%d/%d, golden 61/18/79",
			stats.Received, stats.Lost, stats.Expected)
	}
	if got := stats.AvgDelay.String(); got != "8.032786ms" {
		t.Errorf("avg delay = %s, golden 8.032786ms", got)
	}
	if got := stats.Jitter.String(); got != "1.694104ms" {
		t.Errorf("jitter = %s, golden 1.694104ms", got)
	}
	if got := fmt.Sprintf("%.6f", stats.MOS); got != "2.493218" {
		t.Errorf("MOS = %s, golden 2.493218", got)
	}
	if got := fmt.Sprintf("%.6f", stats.R); got != "48.438491" {
		t.Errorf("R = %s, golden 48.438491", got)
	}
}

// runPacedChain runs two concurrent streams from one session over the lossy
// chain — one into a receiving Session, one into a raw port that records
// frame arrival order — and returns everything observable about the run.
func runPacedChain(t *testing.T) (sent int, played, late, missing int64, stats Stats, order []uint16) {
	sim := &chainSim{clk: clock.NewFake(time.Unix(2_000_000, 0))}
	sim.net = netem.NewNetwork(netem.Config{
		BaseDelay:   700 * time.Microsecond,
		DelayJitter: 1500 * time.Microsecond,
		LossRate:    0.08,
		Seed:        3,
		Clock:       sim.clk,
	})
	defer sim.net.Close()
	hosts := lineChain(t, sim.net, []netem.NodeID{"a", "b", "c", "d"})
	ca, err := hosts[0].Listen(4000)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := hosts[3].Listen(4001)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := hosts[3].Listen(4002)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	sa := NewSession(ca, sim.clk, 11)
	sd := NewSession(cd, sim.clk, 22)
	defer sa.Close()
	defer sd.Close()
	sim.sessions = [2]*Session{sa, sd}
	rawDone := make(chan struct{})
	go func() {
		defer close(rawDone)
		var pkt Packet
		for {
			dg, ok := raw.Recv()
			if !ok {
				return
			}
			if ParseInto(&pkt, dg.Data) != nil {
				continue
			}
			sim.rawMu.Lock()
			sim.rawSeqs = append(sim.rawSeqs, pkt.Seq)
			sim.rawMu.Unlock()
		}
	}()

	// The two streams are offset by half the frame cadence: the 3-hop path
	// spans at most ~6.6 ms, so only one frame is ever in flight and every
	// RNG draw on the medium happens in a causally forced order — run-to-run
	// divergence can then only come from the pacer itself.
	const frames = 40
	st1 := sa.StartStream("d", 4001, frames)
	sim.settle()
	sim.step(5) // 10 ms
	st2 := sa.StartStream("d", 4002, frames)
	sim.settle()
	for {
		sim.step(1)
		select {
		case <-st1.Done():
		default:
			continue
		}
		select {
		case <-st2.Done():
		default:
			continue
		}
		break
	}
	sim.step(150)

	if got := st2.Wait(); got != frames {
		t.Fatalf("raw stream sent = %d, want %d", got, frames)
	}
	sent = st1.Wait()
	played, late, missing = sd.PlayoutStats()
	stats = sd.Stats()
	raw.Close()
	<-rawDone
	order = append([]uint16(nil), sim.rawSeqs...)
	return sent, played, late, missing, stats, order
}

// TestPacerDeterminism runs the same seeded two-stream scenario twice and
// demands identical frame arrival order and identical playout/quality
// accounting: the shared pacer must not introduce any run-to-run variance
// on a fake clock.
func TestPacerDeterminism(t *testing.T) {
	sent1, p1, l1, m1, stats1, order1 := runPacedChain(t)
	sent2, p2, l2, m2, stats2, order2 := runPacedChain(t)
	if sent1 != sent2 || p1 != p2 || l1 != l2 || m1 != m2 {
		t.Fatalf("playout diverged: run1 sent=%d %d/%d/%d, run2 sent=%d %d/%d/%d",
			sent1, p1, l1, m1, sent2, p2, l2, m2)
	}
	if stats1 != stats2 {
		t.Fatalf("stats diverged:\nrun1 %+v\nrun2 %+v", stats1, stats2)
	}
	if len(order1) != len(order2) {
		t.Fatalf("arrival count diverged: %d vs %d", len(order1), len(order2))
	}
	for i := range order1 {
		if order1[i] != order2[i] {
			t.Fatalf("arrival order diverged at %d: seq %d vs %d", i, order1[i], order2[i])
		}
	}
	if len(order1) == 0 {
		t.Fatal("raw stream recorded no arrivals")
	}
}
