package rtp

import (
	"time"
)

// JitterBuffer is a fixed-delay playout buffer: packets are held for the
// configured playout delay and released in sequence order, absorbing network
// jitter and reordering. Packets arriving after their playout deadline are
// counted late and dropped, matching what a softphone's audio path does.
//
// Usage: Put every received packet, then call PopDue(now) at the playout
// cadence; it returns the frames whose deadline has passed, in order.
type JitterBuffer struct {
	delay time.Duration
	// buf holds pending packets keyed by sequence number.
	buf map[uint16]bufEntry
	// next is the next sequence number owed to the player.
	next    uint16
	started bool

	played int64
	late   int64
	// missing counts sequence numbers skipped because their packet never
	// arrived by the time playout moved past them.
	missing int64
}

type bufEntry struct {
	pkt      *Packet
	deadline time.Time
}

// DefaultPlayoutDelay is a typical interactive-voice playout buffer depth.
const DefaultPlayoutDelay = 60 * time.Millisecond

// NewJitterBuffer creates a buffer with the given playout delay
// (DefaultPlayoutDelay when zero).
func NewJitterBuffer(delay time.Duration) *JitterBuffer {
	if delay <= 0 {
		delay = DefaultPlayoutDelay
	}
	return &JitterBuffer{
		delay: delay,
		buf:   make(map[uint16]bufEntry),
	}
}

// Put inserts a received packet. now is the arrival time.
func (j *JitterBuffer) Put(pkt *Packet, now time.Time) {
	if !j.started {
		j.started = true
		j.next = pkt.Seq
	}
	if seqBefore(pkt.Seq, j.next) {
		// Before playout has emitted anything the playout point can
		// still rewind to cover initial reordering; afterwards the slot
		// has passed and the frame is late.
		if j.played == 0 && j.missing == 0 {
			j.next = pkt.Seq
		} else {
			j.late++
			return
		}
	}
	j.buf[pkt.Seq] = bufEntry{pkt: pkt, deadline: now.Add(j.delay)}
}

// PopDue returns, in sequence order, every frame whose playout deadline has
// passed. Gaps whose deadline passed without the packet arriving are skipped
// and counted missing (a player would insert comfort noise there).
func (j *JitterBuffer) PopDue(now time.Time) []*Packet {
	if !j.started {
		return nil
	}
	var out []*Packet
	for {
		e, ok := j.buf[j.next]
		if ok {
			if e.deadline.After(now) {
				break // present but not due yet
			}
			delete(j.buf, j.next)
			out = append(out, e.pkt)
			j.played++
			j.next++
			continue
		}
		// The next frame is absent: only skip it once some later frame
		// is already overdue, i.e. the gap provably stalls playout.
		if !j.laterFrameOverdue(now) {
			break
		}
		j.missing++
		j.next++
	}
	return out
}

// laterFrameOverdue reports whether any buffered frame after next is past
// its deadline.
func (j *JitterBuffer) laterFrameOverdue(now time.Time) bool {
	for seq, e := range j.buf {
		if seqBefore(j.next, seq) && !e.deadline.After(now) {
			return true
		}
	}
	return false
}

// Depth returns the number of buffered frames.
func (j *JitterBuffer) Depth() int { return len(j.buf) }

// Played returns the count of frames delivered in order.
func (j *JitterBuffer) Played() int64 { return j.played }

// Late returns the count of frames dropped for arriving after playout.
func (j *JitterBuffer) Late() int64 { return j.late }

// Missing returns the count of frames skipped as lost.
func (j *JitterBuffer) Missing() int64 { return j.missing }

// seqBefore reports whether a precedes b in RTP sequence space (RFC 3550
// wraparound comparison).
func seqBefore(a, b uint16) bool {
	return a != b && int16(a-b) < 0
}
