package rtp

import (
	"time"
)

// JitterBuffer is a fixed-delay playout buffer: packets are held for the
// configured playout delay and released in sequence order, absorbing network
// jitter and reordering. Packets arriving after their playout deadline are
// counted late and dropped, matching what a softphone's audio path does.
//
// Usage: Put every received packet, then call PopDue(now) (or FlushDue on
// hot paths) at the playout cadence; due frames are released in order.
type JitterBuffer struct {
	delay time.Duration
	// buf holds pending packets by value, keyed by sequence number.
	buf map[uint16]bufEntry
	// deadlines is a min-heap over buffered frames' playout deadlines with
	// lazy deletion: popped/overwritten frames leave stale items behind that
	// are pruned when they reach the top. Its minimum answers "is any
	// buffered frame overdue" in O(1) instead of a full map scan per pop.
	deadlines deadlineHeap
	// next is the next sequence number owed to the player.
	next    uint16
	started bool

	played int64
	late   int64
	// missing counts sequence numbers skipped because their packet never
	// arrived by the time playout moved past them.
	missing int64
}

type bufEntry struct {
	pkt      Packet
	deadline time.Time
}

type deadlineItem struct {
	deadline time.Time
	seq      uint16
}

// deadlineHeap is a hand-rolled min-heap on the typed slice: container/heap
// would box every pushed item into an interface, costing one allocation per
// received frame on the hot path.
type deadlineHeap []deadlineItem

func (j *JitterBuffer) heapPush(it deadlineItem) {
	h := append(j.deadlines, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].deadline.Before(h[parent].deadline) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	j.deadlines = h
}

func (j *JitterBuffer) heapPop() {
	h := j.deadlines
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h[l].deadline.Before(h[min].deadline) {
			min = l
		}
		if r < n && h[r].deadline.Before(h[min].deadline) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	j.deadlines = h
}

// DefaultPlayoutDelay is a typical interactive-voice playout buffer depth.
const DefaultPlayoutDelay = 60 * time.Millisecond

// NewJitterBuffer creates a buffer with the given playout delay
// (DefaultPlayoutDelay when zero).
func NewJitterBuffer(delay time.Duration) *JitterBuffer {
	if delay <= 0 {
		delay = DefaultPlayoutDelay
	}
	return &JitterBuffer{
		delay: delay,
		buf:   make(map[uint16]bufEntry),
	}
}

// Put inserts a received packet. now is the arrival time. The packet is
// copied by value; the caller may not mutate pkt.Payload afterwards (the
// zero-copy receive path hands each frame's datagram buffer over here).
func (j *JitterBuffer) Put(pkt *Packet, now time.Time) {
	if !j.started {
		j.started = true
		j.next = pkt.Seq
	}
	if seqBefore(pkt.Seq, j.next) {
		// Before playout has emitted anything the playout point can
		// still rewind to cover initial reordering; afterwards the slot
		// has passed and the frame is late.
		if j.played == 0 && j.missing == 0 {
			j.next = pkt.Seq
		} else {
			j.late++
			return
		}
	}
	deadline := now.Add(j.delay)
	j.buf[pkt.Seq] = bufEntry{pkt: *pkt, deadline: deadline}
	j.heapPush(deadlineItem{deadline: deadline, seq: pkt.Seq})
}

// PopDue returns, in sequence order, every frame whose playout deadline has
// passed. Gaps whose deadline passed without the packet arriving are skipped
// and counted missing (a player would insert comfort noise there).
func (j *JitterBuffer) PopDue(now time.Time) []*Packet {
	var out []*Packet
	j.advance(now, &out)
	return out
}

// FlushDue plays every due frame like PopDue but only returns the count,
// avoiding any materialization of the frames — the session hot path.
func (j *JitterBuffer) FlushDue(now time.Time) int {
	return j.advance(now, nil)
}

func (j *JitterBuffer) advance(now time.Time, out *[]*Packet) int {
	if !j.started {
		return 0
	}
	n := 0
	for {
		e, ok := j.buf[j.next]
		if ok {
			if e.deadline.After(now) {
				break // present but not due yet
			}
			delete(j.buf, j.next)
			if out != nil {
				pkt := e.pkt
				*out = append(*out, &pkt)
			}
			n++
			j.played++
			j.next++
			continue
		}
		// The next frame is absent: only skip it once some later frame
		// is already overdue, i.e. the gap provably stalls playout.
		if !j.laterFrameOverdue(now) {
			break
		}
		j.missing++
		j.next++
	}
	if n > 0 {
		// Popped frames left stale items behind; in-order traffic never
		// reaches laterFrameOverdue, so prune here to keep the heap bounded
		// by the number of buffered frames.
		j.pruneStale()
	}
	return n
}

// pruneStale pops heap items that no longer correspond to a buffered frame
// (their frame was played, dropped, or overwritten by a duplicate).
func (j *JitterBuffer) pruneStale() {
	for len(j.deadlines) > 0 {
		top := j.deadlines[0]
		if e, ok := j.buf[top.seq]; ok && e.deadline.Equal(top.deadline) {
			return
		}
		j.heapPop()
	}
}

// laterFrameOverdue reports whether any buffered frame after next is past
// its deadline. It is only called when buf[next] is absent, so every live
// heap item refers to a frame after next; stale items (popped or overwritten
// frames) are pruned as they surface.
func (j *JitterBuffer) laterFrameOverdue(now time.Time) bool {
	j.pruneStale()
	if len(j.deadlines) == 0 {
		return false
	}
	return !j.deadlines[0].deadline.After(now)
}

// Depth returns the number of buffered frames.
func (j *JitterBuffer) Depth() int { return len(j.buf) }

// Played returns the count of frames delivered in order.
func (j *JitterBuffer) Played() int64 { return j.played }

// Late returns the count of frames dropped for arriving after playout.
func (j *JitterBuffer) Late() int64 { return j.late }

// Missing returns the count of frames skipped as lost.
func (j *JitterBuffer) Missing() int64 { return j.missing }

// seqBefore reports whether a precedes b in RTP sequence space (RFC 3550
// wraparound comparison).
func seqBefore(a, b uint16) bool {
	return a != b && int16(a-b) < 0
}
