package rtp

import (
	"testing"
	"time"
)

// TestZeroAllocSendPath pins the steady-state per-frame cost of the pacer's
// send path — synthesize the payload, fill the header, encode to the wire —
// at zero allocations once the per-stream scratch buffers exist.
func TestZeroAllocSendPath(t *testing.T) {
	payload := make([]byte, 0, PayloadBytes)
	wire := make([]byte, 0, headerLen+PayloadBytes)
	var pkt Packet
	sentAt := time.Unix(1000, 0)
	i := uint32(0)
	allocs := testing.AllocsPerRun(1000, func() {
		payload = AppendVoicePayload(payload[:0], i, sentAt)
		pkt = Packet{
			PayloadType: PayloadTypePCMU,
			Seq:         uint16(i),
			Timestamp:   i * SamplesPerFrame,
			SSRC:        7,
			Payload:     payload,
		}
		wire = pkt.AppendTo(wire[:0])
		i++
	})
	if allocs != 0 {
		t.Fatalf("send path allocates %.1f/frame, want 0", allocs)
	}
}

// TestZeroAllocParse pins the zero-copy decode at zero allocations: the
// payload borrows the wire buffer instead of copying.
func TestZeroAllocParse(t *testing.T) {
	wire := NewVoiceFrame(7, 3, time.Unix(1000, 0)).Marshal()
	var pkt Packet
	var parseErr error
	allocs := testing.AllocsPerRun(1000, func() {
		parseErr = ParseInto(&pkt, wire)
	})
	if parseErr != nil {
		t.Fatal(parseErr)
	}
	if allocs != 0 {
		t.Fatalf("ParseInto allocates %.1f/frame, want 0", allocs)
	}
	if len(pkt.Payload) != PayloadBytes {
		t.Fatalf("payload = %d bytes, want %d", len(pkt.Payload), PayloadBytes)
	}
	if &pkt.Payload[0] != &wire[headerLen] {
		t.Fatal("ParseInto copied the payload instead of borrowing the buffer")
	}
}

// TestZeroAllocReceiveSteadyState pins the in-order receive hot path —
// zero-copy parse, Receiver.Observe, jitter-buffer Put + FlushDue — at zero
// steady-state allocations (the map and deadline heap reach a stable size
// once playout keeps up with arrivals).
func TestZeroAllocReceiveSteadyState(t *testing.T) {
	var recv Receiver
	jb := NewJitterBuffer(40 * time.Millisecond)
	base := time.Unix(1000, 0)
	wire := make([]byte, 0, headerLen+PayloadBytes)
	payload := make([]byte, 0, PayloadBytes)
	seq := uint32(0)
	feed := func() {
		now := base.Add(time.Duration(seq) * FrameDuration)
		payload = AppendVoicePayload(payload[:0], seq, now)
		p := Packet{PayloadType: PayloadTypePCMU, Seq: uint16(seq), Timestamp: seq * SamplesPerFrame, SSRC: 7, Payload: payload}
		wire = p.AppendTo(wire[:0])
		var pkt Packet
		if err := ParseInto(&pkt, wire); err != nil {
			panic(err)
		}
		recv.Observe(&pkt, now)
		jb.Put(&pkt, now)
		jb.FlushDue(now)
		seq++
	}
	// Warm up until the buffer footprint is stable, then measure.
	for range 256 {
		feed()
	}
	allocs := testing.AllocsPerRun(1000, feed)
	if allocs != 0 {
		t.Fatalf("receive path allocates %.1f/frame steady-state, want 0", allocs)
	}
}

// TestParseStillCopies guards the compat contract of the allocating Parse:
// its result must stay valid after the wire buffer is reused.
func TestParseStillCopies(t *testing.T) {
	wire := NewVoiceFrame(9, 1, time.Unix(1000, 0)).Marshal()
	pkt, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	wire[headerLen] ^= 0xff
	if sent, ok := pkt.SentAt(); !ok || !sent.Equal(time.Unix(1000, 0)) {
		t.Fatal("Parse payload aliases the wire buffer; it must copy")
	}
}
