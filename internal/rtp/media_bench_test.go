package rtp

import (
	"runtime"
	"strconv"
	"testing"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
)

// The micro-benchmarks pin the per-frame codec cost of the old allocating
// API (NewVoiceFrame/Marshal, Parse) against the zero-alloc fast path the
// pacer and receive loop use (AppendVoicePayload/AppendTo, ParseInto). The
// allocs/op columns are the ≥10× claim in DESIGN.md §9: the old send path
// pays three allocations per frame and the old parse one, the new paths pay
// zero.

var benchWire []byte

func BenchmarkVoiceFrameMarshal(b *testing.B) {
	sentAt := time.Unix(1000, 0)
	b.ReportAllocs()
	for i := 0; b.N > i; i++ {
		benchWire = NewVoiceFrame(7, uint32(i), sentAt).Marshal()
	}
}

func BenchmarkVoiceFrameAppendTo(b *testing.B) {
	payload := make([]byte, 0, PayloadBytes)
	wire := make([]byte, 0, headerLen+PayloadBytes)
	sentAt := time.Unix(1000, 0)
	b.ReportAllocs()
	for i := 0; b.N > i; i++ {
		payload = AppendVoicePayload(payload[:0], uint32(i), sentAt)
		p := Packet{
			PayloadType: PayloadTypePCMU,
			Seq:         uint16(i),
			Timestamp:   uint32(i) * SamplesPerFrame,
			SSRC:        7,
			Payload:     payload,
		}
		wire = p.AppendTo(wire[:0])
	}
	benchWire = wire
}

var benchPkt *Packet

func BenchmarkPacketParse(b *testing.B) {
	wire := NewVoiceFrame(7, 3, time.Unix(1000, 0)).Marshal()
	b.ReportAllocs()
	for i := 0; b.N > i; i++ {
		p, err := Parse(wire)
		if err != nil {
			b.Fatal(err)
		}
		benchPkt = p
	}
}

func BenchmarkPacketParseInto(b *testing.B) {
	wire := NewVoiceFrame(7, 3, time.Unix(1000, 0)).Marshal()
	var pkt Packet
	b.ReportAllocs()
	for i := 0; b.N > i; i++ {
		if err := ParseInto(&pkt, wire); err != nil {
			b.Fatal(err)
		}
	}
	benchPkt = &pkt
}

// BenchmarkMediaScale is the concurrent-call scale benchmark: M bidirectional
// 50 pps voice streams across M isolated radio pairs, all paced by one shared
// Pacer on a fake clock. Reported metrics:
//
//	frames/s     — end-to-end frame throughput of the whole media plane
//	allocs/frame — total heap allocations (send + network + receive + playout)
//	               divided by frames carried
//	goroutines   — goroutines added by starting all 2M streams (the pacer's
//	               scheduler is shared, so this stays 0 regardless of M)
func BenchmarkMediaScale(b *testing.B) {
	for _, streams := range []int{1, 8, 32, 128} {
		b.Run("streams="+strconv.Itoa(streams), func(b *testing.B) {
			benchMediaScale(b, streams)
		})
	}
}

func benchMediaScale(b *testing.B, streams int) {
	const frames = 50
	var totalMallocs, totalFrames uint64
	var streaming time.Duration
	extraGoroutines := 0
	b.ReportAllocs()
	for it := 0; b.N > it; it++ {
		b.StopTimer()
		clk := clock.NewFake(time.Unix(3_000_000, 0))
		net := netem.NewNetwork(netem.Config{BaseDelay: 200 * time.Microsecond, Clock: clk})
		pacer := NewPacer(clk)
		type pair struct {
			send, recv     *Session
			sendID, recvID netem.NodeID
		}
		pairs := make([]pair, streams)
		for i := range streams {
			// Pairs sit 50 m apart, 1 km from the next pair: each stream
			// has its own interference-free radio cell.
			ha, err := net.AddHost(netem.NodeName("s", i+1), netem.Position{X: float64(i) * 1000})
			if err != nil {
				b.Fatal(err)
			}
			hb, err := net.AddHost(netem.NodeName("r", i+1), netem.Position{X: float64(i)*1000 + 50})
			if err != nil {
				b.Fatal(err)
			}
			ha.SetRouteProvider(directRoutes{})
			hb.SetRouteProvider(directRoutes{})
			ca, err := ha.Listen(4000)
			if err != nil {
				b.Fatal(err)
			}
			cb, err := hb.Listen(4001)
			if err != nil {
				b.Fatal(err)
			}
			pairs[i] = pair{
				send:   NewSessionWithPacer(ca, clk, uint32(i+1), pacer),
				recv:   NewSessionWithPacer(cb, clk, uint32(1000+i), pacer),
				sendID: ha.ID(),
				recvID: hb.ID(),
			}
		}
		base := runtime.NumGoroutine()
		handles := make([]*Stream, 0, 2*streams)
		for _, p := range pairs {
			// Bidirectional: the receiver talks back on the sender's port.
			handles = append(handles,
				p.send.StartStream(p.recvID, 4001, frames),
				p.recv.StartStream(p.sendID, 4000, frames))
		}
		if extra := runtime.NumGoroutine() - base; extra > extraGoroutines {
			extraGoroutines = extra
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		b.StartTimer()
		for {
			done := true
			for _, h := range handles {
				select {
				case <-h.Done():
				default:
					done = false
				}
			}
			if done {
				break
			}
			clk.Advance(FrameDuration)
			time.Sleep(100 * time.Microsecond)
		}
		for range 10 { // flush in-flight deliveries and the playout buffers
			clk.Advance(FrameDuration)
			time.Sleep(100 * time.Microsecond)
		}
		b.StopTimer()
		streaming += time.Since(start)
		runtime.ReadMemStats(&ms1)
		totalMallocs += ms1.Mallocs - ms0.Mallocs
		totalFrames += uint64(2 * streams * frames)
		for _, h := range handles {
			if got := h.Wait(); got != frames {
				b.Fatalf("stream sent %d frames, want %d", got, frames)
			}
		}
		for _, p := range pairs {
			p.send.Close()
			p.recv.Close()
		}
		pacer.Close()
		net.Close()
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(totalFrames)/streaming.Seconds(), "frames/s")
	b.ReportMetric(float64(totalMallocs)/float64(totalFrames), "allocs/frame")
	b.ReportMetric(float64(extraGoroutines), "goroutines")
}
