package experiments

import (
	"strings"
	"testing"
	"time"

	"siphoc"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(all))
	}
	if all[0].ID != "E1" || all[len(all)-1].ID != "E14" {
		t.Fatalf("ordering: first=%s last=%s", all[0].ID, all[len(all)-1].ID)
	}
	for _, e := range all {
		if e.Run == nil || e.Title == "" || e.Paper == "" {
			t.Fatalf("incomplete registry entry %+v", e)
		}
	}
	if _, ok := Find("E3"); !ok {
		t.Fatal("Find(E3) failed")
	}
	if _, ok := Find("E99"); ok {
		t.Fatal("Find(E99) succeeded")
	}
}

// The fast experiments run end to end as tests; the slow sweeps (E5-E10)
// are exercised by cmd/experiments and the benchmarks.
func TestE1FlowRuns(t *testing.T) {
	var b strings.Builder
	if err := E1(&b); err != nil {
		t.Fatalf("E1: %v\n%s", err, b.String())
	}
	for _, want := range []string{"step 1", "step 8", "call established"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("E1 output missing %q:\n%s", want, b.String())
		}
	}
}

func TestE2StateRuns(t *testing.T) {
	var b strings.Builder
	if err := E2(&b); err != nil {
		t.Fatalf("E2: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "loaded routing plugin: AODV") {
		t.Fatalf("E2 output:\n%s", b.String())
	}
}

func TestE3CaptureRuns(t *testing.T) {
	var b strings.Builder
	if err := E3(&b); err != nil {
		t.Fatalf("E3: %v\n%s", err, b.String())
	}
	for _, want := range []string{"AODV Route Reply", "service advert: sip/bob@voicehoc.ch"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("E3 output missing %q:\n%s", want, b.String())
		}
	}
}

func TestE4ConfigRuns(t *testing.T) {
	var b strings.Builder
	if err := E4(&b); err != nil {
		t.Fatalf("E4: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "Outbound proxy") {
		t.Fatalf("E4 output:\n%s", b.String())
	}
}

func TestRunE8SinglePoint(t *testing.T) {
	if testing.Short() {
		t.Skip("E8 point takes a few seconds")
	}
	rows, err := RunE8(1, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Hops != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].AODVWarm <= 0 || rows[0].OLSR <= 0 {
		t.Fatalf("non-positive delays: %+v", rows[0])
	}
	// The cold call must carry a trace-derived breakdown with the SIP
	// transaction share dominating a warm-SLP in-MANET call.
	if rows[0].ColdPhases[siphoc.PhaseSIPTransaction] <= 0 {
		t.Fatalf("cold breakdown has no SIP share: %+v", rows[0].ColdPhases)
	}
}

func TestRunE9Short(t *testing.T) {
	if testing.Short() {
		t.Skip("E9 runs four schemes")
	}
	rows, err := RunE9(4, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.LookupOK {
			t.Fatalf("%s lookup failed", r.Scheme)
		}
		if r.Scheme == "manet-slp piggyback" && r.ServiceFrames != 0 {
			t.Fatalf("piggyback sent %d service frames", r.ServiceFrames)
		}
	}
}

func TestHexdump(t *testing.T) {
	var b strings.Builder
	hexdump(&b, []byte("SIP/2.0 200 OK\x00\x01"))
	out := b.String()
	if !strings.Contains(out, "53 49 50") || !strings.Contains(out, "|SIP/2.0 200 OK..|") {
		t.Fatalf("hexdump output:\n%s", out)
	}
}
