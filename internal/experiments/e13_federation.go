package experiments

import (
	"fmt"
	"io"
	"time"

	"siphoc"
)

// E13 goes beyond the paper's single MANET / single provider deployment:
// three MANET islands federate over the simulated Internet through a sharded
// provider tier, cross-island calls resolve without a global registrar, and
// concurrent media crossing the same gateway pair is trunked into one paced
// inter-gateway flow.
func E13(w io.Writer) error {
	header(w, "E13: multi-MANET federation (beyond the paper; ROADMAP north star)")
	fed, err := siphoc.NewFederationScenario(siphoc.FederationConfig{
		Islands:           3,
		GatewaysPerIsland: 2,
		ClientsPerIsland:  3,
		Shards:            4,
		Trunk:             true,
	})
	if err != nil {
		return err
	}
	defer fed.Close()

	fmt.Fprintf(w, "federation: 3 islands x (2 gateways + 3 clients), domain fed.example,\n")
	fmt.Fprintf(w, "provider tier sharded 4 ways by rendezvous hash of the AOR\n\n")

	t0 := time.Now()
	if err := fed.WaitAttached(30 * time.Second); err != nil {
		return err
	}
	fmt.Fprintf(w, "every client attached to the Internet through its island gateways in %v\n\n",
		time.Since(t0).Round(time.Millisecond))

	gen := fed.NewCallGenerator(siphoc.CallGenConfig{Concurrent: 12})
	rep, err := gen.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "call workload: %d cross-island calls, ramped arrivals, held concurrently\n", rep.Attempted)
	fmt.Fprintf(w, "  established %d / failed %d, peak concurrency %d\n",
		rep.Established, rep.Failed, rep.PeakConcurrent)
	fmt.Fprintf(w, "  setup delay p50 %v  p99 %v\n",
		rep.SetupP50.Round(time.Millisecond), rep.SetupP99.Round(time.Millisecond))
	fmt.Fprintf(w, "  MOS mean %.2f  p10 %.2f  p50 %.2f\n", rep.MOSMean, rep.MOSP10, rep.MOSP50)
	if rep.Trunk.FramesSent > 0 {
		fmt.Fprintf(w, "  trunking: %d media payloads crossed the Internet in %d trunk frames (%.1fx fewer packets)\n",
			rep.Trunk.PayloadsBatched, rep.Trunk.FramesSent,
			float64(rep.Trunk.PayloadsBatched)/float64(rep.Trunk.FramesSent))
	}
	if rep.Established != rep.Attempted {
		return fmt.Errorf("federation workload lost calls: %d/%d", rep.Established, rep.Attempted)
	}
	fmt.Fprintf(w, "result: island-to-island calls resolve through the shard map with no global\n")
	fmt.Fprintf(w, "registrar, and gateway trunking collapses the inter-gateway packet rate\n")
	return nil
}
