package experiments

import (
	"fmt"
	"io"

	"siphoc"
)

// E2 reproduces the paper's Figure 4: the state of the MANET SLP process
// after the proxy has advertised its own SIP endpoint address as the
// responsible contact address for the given user, including the loaded
// routing plugin.
func E2(w io.Writer) error {
	header(w, "E2: MANET SLP process state (paper Figure 4)")
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{})
	if err != nil {
		return err
	}
	defer sc.Close()
	// Two nodes so the advertisement also propagates to a peer cache.
	nodes, err := sc.Chain(2, 80)
	if err != nil {
		return err
	}
	alice, err := nodes[0].NewPhone("alice", "voicehoc.ch")
	if err != nil {
		return err
	}
	if err := retry(3, alice.Register); err != nil {
		return err
	}
	fmt.Fprintf(w, "after REGISTER of alice@voicehoc.ch on %s:\n\n", nodes[0].ID())
	fmt.Fprint(w, nodes[0].SLP().Dump())

	// Wait for the piggybacked advert to reach the neighbour, then show
	// its learned cache — "this information is available to all nodes in
	// the network".
	if _, err := nodes[1].SLP().Lookup("sip", "alice@voicehoc.ch", waitLong); err != nil {
		return fmt.Errorf("advert never reached the neighbour: %w", err)
	}
	fmt.Fprintf(w, "\nneighbour %s learned the binding via routing-message piggybacking:\n\n", nodes[1].ID())
	fmt.Fprint(w, nodes[1].SLP().Dump())
	return nil
}
