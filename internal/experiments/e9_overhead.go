package experiments

import (
	"fmt"
	"io"
	"time"

	"siphoc/internal/baseline/floodreg"
	"siphoc/internal/baseline/picosip"
	"siphoc/internal/netem"
	"siphoc/internal/routing/aodv"
	"siphoc/internal/slp"
)

// E9Row is one scheme's measurement in the discovery-overhead experiment.
type E9Row struct {
	Scheme        string
	ServiceFrames int64 // dedicated discovery frames on the air
	ServiceBytes  int64
	RoutingBytes  int64         // routing traffic incl. piggybacked payload
	LookupLatency time.Duration // far-node lookup, -1 when it failed
	LookupOK      bool
}

// E9 quantifies the paper's core efficiency argument against the related
// work (§5): MANET SLP piggybacks service information onto routing messages
// and therefore sends *zero* dedicated discovery frames, while multicast SLP
// (standard SLP, [7]), REGISTER flooding ([12]) and proactive Pico-SIP
// HELLOs ([13]) all put extra packets on the air.
//
// Setup: an n-node chain running AODV; the first node registers a SIP
// binding; after an observation window, the far node resolves it. We count
// dedicated service frames/bytes and total routing bytes over the window.
func E9(w io.Writer) error {
	header(w, "E9: discovery overhead vs baselines (paper §5)")
	const nodes = 8
	window := 2 * time.Second
	rows, err := RunE9(nodes, window)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "chain of %d nodes, %v observation window, 1 registration, 1 far-node lookup\n\n", nodes, window)
	fmt.Fprintf(w, "%-22s %14s %14s %14s %14s\n", "scheme", "svc frames", "svc bytes", "routing bytes", "lookup")
	for _, r := range rows {
		lookup := "FAILED"
		if r.LookupOK {
			lookup = r.LookupLatency.Round(time.Millisecond).String()
		}
		fmt.Fprintf(w, "%-22s %14d %14d %14d %14s\n",
			r.Scheme, r.ServiceFrames, r.ServiceBytes, r.RoutingBytes, lookup)
	}
	// Shape assertions.
	byName := map[string]E9Row{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	pig := byName["manet-slp piggyback"]
	if pig.ServiceFrames != 0 {
		return fmt.Errorf("piggyback sent %d dedicated frames; the paper's zero-extra-packet property failed", pig.ServiceFrames)
	}
	for _, name := range []string{"multicast-slp", "register-flooding", "picosip-hello"} {
		if byName[name].ServiceFrames == 0 {
			return fmt.Errorf("%s sent no dedicated frames; baseline broken", name)
		}
	}
	if !pig.LookupOK {
		return fmt.Errorf("piggyback lookup failed")
	}
	fmt.Fprintf(w, "\nshape: piggybacked MANET SLP adds 0 dedicated frames (its cost rides inside\n")
	fmt.Fprintf(w, "routing bytes); every baseline pays standing or per-lookup packet overhead.\n")
	return nil
}

// RunE9 executes the four schemes and returns their measurements.
func RunE9(n int, window time.Duration) ([]E9Row, error) {
	rows := make([]E9Row, 0, 4)
	for _, scheme := range []string{"manet-slp piggyback", "multicast-slp", "register-flooding", "picosip-hello"} {
		row, err := runE9Scheme(scheme, n, window)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", scheme, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runE9Scheme(scheme string, n int, window time.Duration) (E9Row, error) {
	row := E9Row{Scheme: scheme}
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	defer net.Close()
	hosts, err := netem.Chain(net, n, 90, "10.0.0")
	if err != nil {
		return row, err
	}
	// AODV everywhere: the routing substrate is identical across schemes.
	protos := make([]*aodv.Protocol, n)
	for i, h := range hosts {
		protos[i] = aodv.New(h, aodv.SimConfig())
	}
	stop := func() {
		for _, p := range protos {
			p.Stop()
		}
	}

	const (
		aor  = "alice@voicehoc.ch"
		addr = "10.0.0.1:5060"
	)
	var lookup func() (time.Duration, bool)

	switch scheme {
	case "manet-slp piggyback", "multicast-slp":
		mode := slp.ModePiggyback
		if scheme == "multicast-slp" {
			mode = slp.ModeMulticast
		}
		agents := make([]*slp.Agent, n)
		for i, h := range hosts {
			agents[i] = slp.NewAgent(h, slp.Config{Mode: mode})
			agents[i].AttachRouting(protos[i])
		}
		for i := range hosts {
			if err := protos[i].Start(); err != nil {
				return row, err
			}
			if err := agents[i].Start(); err != nil {
				stop()
				return row, err
			}
		}
		defer func() {
			for _, a := range agents {
				a.Stop()
			}
			stop()
		}()
		if err := agents[0].Register(slp.Service{Type: "sip", Key: aor, URL: slp.ServiceURL("sip", addr)}); err != nil {
			return row, err
		}
		lookup = func() (time.Duration, bool) {
			t0 := time.Now()
			_, err := agents[n-1].Lookup("sip", aor, waitLong)
			return time.Since(t0), err == nil
		}
	case "register-flooding":
		agents := make([]*floodreg.Agent, n)
		for i, h := range hosts {
			if err := protos[i].Start(); err != nil {
				return row, err
			}
			agents[i] = floodreg.New(h, floodreg.Config{Interval: 250 * time.Millisecond})
			if err := agents[i].Start(); err != nil {
				stop()
				return row, err
			}
		}
		defer func() {
			for _, a := range agents {
				a.Stop()
			}
			stop()
		}()
		agents[0].Register(aor, addr)
		lookup = func() (time.Duration, bool) {
			return pollLookup(func() bool { _, ok := agents[n-1].Lookup(aor); return ok })
		}
	case "picosip-hello":
		agents := make([]*picosip.Agent, n)
		for i, h := range hosts {
			if err := protos[i].Start(); err != nil {
				return row, err
			}
			agents[i] = picosip.New(h, picosip.Config{HelloInterval: 250 * time.Millisecond})
			if err := agents[i].Start(); err != nil {
				stop()
				return row, err
			}
		}
		defer func() {
			for _, a := range agents {
				a.Stop()
			}
			stop()
		}()
		agents[0].Register(aor, addr)
		lookup = func() (time.Duration, bool) {
			return pollLookup(func() bool { _, ok := agents[n-1].Lookup(aor); return ok })
		}
	default:
		return row, fmt.Errorf("unknown scheme %q", scheme)
	}

	net.ResetStats()
	t0 := time.Now()
	lat, ok := lookup()
	row.LookupLatency, row.LookupOK = lat, ok
	// Observe the remaining window for standing overhead.
	if rest := window - time.Since(t0); rest > 0 {
		time.Sleep(rest)
	}
	st := net.Stats()
	row.ServiceFrames = st.ServiceFrames
	row.ServiceBytes = st.ServiceBytes
	row.RoutingBytes = st.RoutingBytes
	return row, nil
}

func pollLookup(hit func() bool) (time.Duration, bool) {
	t0 := time.Now()
	deadline := t0.Add(waitLong)
	for time.Now().Before(deadline) {
		if hit() {
			return time.Since(t0), true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return time.Since(t0), false
}
