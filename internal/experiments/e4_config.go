package experiments

import (
	"fmt"
	"io"

	"siphoc"
)

// E4 reproduces the paper's Figure 2 and §3.1: an out-of-the-box VoIP
// application needs exactly one configuration change to run in a MANET —
// the outbound proxy is set to localhost, so all SIP traffic flows through
// the local SIPHoc proxy. Everything else (user, domain) is the standard
// Internet account configuration.
func E4(w io.Writer) error {
	header(w, "E4: out-of-the-box client configuration (paper Figure 2)")
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{})
	if err != nil {
		return err
	}
	defer sc.Close()
	node, err := sc.AddNode("10.0.0.1", siphoc.Position{})
	if err != nil {
		return err
	}

	// The Figure 2 dialog, rendered.
	cfg := siphoc.PhoneConfig{
		User:          "alice",
		Domain:        "voicehoc.ch",
		OutboundProxy: node.Proxy().Addr(), // "localhost" in the paper
	}
	fmt.Fprintf(w, "SIP user account configuration (cf. Kphone dialog, Figure 2):\n")
	fmt.Fprintf(w, "  User part of SIP URL : %s\n", cfg.User)
	fmt.Fprintf(w, "  Host part of SIP URL : %s\n", cfg.Domain)
	fmt.Fprintf(w, "  Outbound proxy       : %s   <- the ONLY MANET-specific setting\n", cfg.OutboundProxy)

	ph, err := node.NewPhoneWith(cfg)
	if err != nil {
		return err
	}
	if err := retry(3, ph.Register); err != nil {
		return fmt.Errorf("register: %w", err)
	}
	st := node.Proxy().Stats()
	if st.Registers == 0 {
		return fmt.Errorf("REGISTER did not land at the local proxy")
	}
	fmt.Fprintf(w, "\nREGISTER sip:%s was handled by the LOCAL proxy (%d REGISTERs seen),\n",
		cfg.Domain, st.Registers)
	fmt.Fprintf(w, "no centralized server was contacted; the binding is now in MANET SLP:\n")
	if svc, ok := node.SLP().LookupCached("sip", ph.AOR()); ok {
		fmt.Fprintf(w, "  %s -> %s\n", ph.AOR(), svc.URL)
	} else {
		return fmt.Errorf("binding missing from MANET SLP")
	}
	return nil
}
