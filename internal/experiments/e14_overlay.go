package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"siphoc"
)

// E14Row is one resolver backend's measurements.
type E14Row struct {
	// Backend names the resolution path exercised ("manet-slp",
	// "provider-tier", "p2p-overlay").
	Backend string
	// Calls is the number of established calls in the leg.
	Calls int
	// SetupP50/SetupP99 are the call setup delay percentiles.
	SetupP50, SetupP99 time.Duration
	// SLP/Overlay/Provider/Errors are the proxies' resolution counters
	// summed across the leg (which backend actually answered).
	SLP, Overlay, Provider, Errors int64
}

// E14 compares the three resolver backends of the proxy's chain head to
// head: MANET SLP inside one island, the sharded provider tier (DNS
// fallback) across islands, and the P2P overlay registrar (the Kademlia DHT
// of ROADMAP item 3) across islands with two of its nodes crashing
// mid-workload. The overlay leg must resolve every call through the DHT —
// zero provider fallbacks, zero typed resolver failures — despite the churn,
// because bindings live on K=3 replicas.
func E14(w io.Writer) error {
	header(w, "E14: resolver backends — MANET SLP vs provider tier vs P2P overlay (ROADMAP item 3)")
	rows, err := RunE14(8)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "three resolution paths for the same question (AOR -> next hop):\n")
	fmt.Fprintf(w, "  manet-slp      intra-island, epidemic SLP cache\n")
	fmt.Fprintf(w, "  provider-tier  cross-island via DNS + sharded registrar pool\n")
	fmt.Fprintf(w, "  p2p-overlay    cross-island via Kademlia DHT, 2 of 8 nodes crashed mid-run\n\n")
	fmt.Fprintf(w, "%-14s %6s %12s %12s %6s %8s %9s %7s\n",
		"backend", "calls", "setup p50", "setup p99", "slp", "overlay", "provider", "errors")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %6d %12v %12v %6d %8d %9d %7d\n",
			r.Backend, r.Calls,
			r.SetupP50.Round(100*time.Microsecond), r.SetupP99.Round(100*time.Microsecond),
			r.SLP, r.Overlay, r.Provider, r.Errors)
	}
	fmt.Fprintf(w, "\nresult: every cross-island call in the overlay leg resolved through the\n")
	fmt.Fprintf(w, "DHT — no central registrar consulted — and K=3 replication absorbed the\n")
	fmt.Fprintf(w, "loss of two overlay nodes without a failed lookup\n")
	return nil
}

// RunE14 measures the three backends with the given cross-island call
// concurrency and returns one row per backend.
func RunE14(concurrent int) ([]E14Row, error) {
	slpRow, err := runE14SLP(4)
	if err != nil {
		return nil, fmt.Errorf("manet-slp leg: %w", err)
	}
	provRow, err := runE14Federation("provider-tier", concurrent, false)
	if err != nil {
		return nil, fmt.Errorf("provider-tier leg: %w", err)
	}
	dhtRow, err := runE14Federation("p2p-overlay", concurrent, true)
	if err != nil {
		return nil, fmt.Errorf("p2p-overlay leg: %w", err)
	}
	if dhtRow.Overlay == 0 {
		return nil, fmt.Errorf("overlay leg resolved nothing through the DHT: %+v", dhtRow)
	}
	if dhtRow.Provider != 0 {
		return nil, fmt.Errorf("overlay leg leaked %d resolutions to the provider tier", dhtRow.Provider)
	}
	if dhtRow.Errors != 0 {
		return nil, fmt.Errorf("overlay leg hit %d resolver failures under churn", dhtRow.Errors)
	}
	return []E14Row{slpRow, provRow, dhtRow}, nil
}

// runE14SLP places sequential intra-MANET calls on a 3-node chain: the AOR
// resolves from the caller's epidemic SLP cache, never leaving the island.
func runE14SLP(calls int) (E14Row, error) {
	row := E14Row{Backend: "manet-slp", Calls: calls}
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{})
	if err != nil {
		return row, err
	}
	defer sc.Close()
	nodes, err := sc.Chain(3, 90)
	if err != nil {
		return row, err
	}
	alice, _, err := setupEndpoints(nodes)
	if err != nil {
		return row, err
	}
	if _, err := nodes[0].SLP().Lookup("sip", "bob@voicehoc.ch", waitLong); err != nil {
		return row, fmt.Errorf("SLP never converged: %w", err)
	}
	setups := make([]time.Duration, 0, calls)
	for range calls {
		d, err := placeCall(alice)
		if err != nil {
			return row, err
		}
		setups = append(setups, d)
	}
	sort.Slice(setups, func(i, j int) bool { return setups[i] < setups[j] })
	row.SetupP50 = setups[len(setups)/2]
	row.SetupP99 = setups[len(setups)-1]
	for _, ps := range sc.Metrics().Proxies {
		row.SLP += ps.SLPResolutions
		row.Overlay += ps.OverlayRouted
		row.Provider += ps.InternetRouted
		row.Errors += ps.ResolverErrors
	}
	return row, nil
}

// runE14Federation runs the cross-island call workload on a two-island
// federation; with the overlay enabled it also crashes two DHT nodes while
// the calls ramp, so the leg doubles as a churn check on the live system
// (the seeded property test in internal/overlay pins the same behaviour in
// virtual time).
func runE14Federation(name string, concurrent int, overlay bool) (E14Row, error) {
	row := E14Row{Backend: name}
	cfg := siphoc.FederationConfig{
		Islands:           2,
		GatewaysPerIsland: 1,
		ClientsPerIsland:  2,
	}
	if overlay {
		cfg.Overlay = true
		cfg.OverlayNodes = 8
	}
	fed, err := siphoc.NewFederationScenario(cfg)
	if err != nil {
		return row, err
	}
	defer fed.Close()
	if err := fed.WaitAttached(30 * time.Second); err != nil {
		return row, err
	}

	var fs *siphoc.FaultScenario
	if overlay {
		// Kill a quarter of the DHT while the workload ramps; replicated
		// bindings must keep resolving.
		fs = siphoc.NewFaultScenario(fed.Island(0), 7)
		dht := fed.Overlay()
		fs.Plan().At(300*time.Millisecond, "crash 2 of 8 overlay nodes", func() {
			dht[1].Close()
			dht[2].Close()
		})
		if err := fs.Run(); err != nil {
			return row, err
		}
	}

	gen := fed.NewCallGenerator(siphoc.CallGenConfig{
		Concurrent:  concurrent,
		VoiceFrames: 5,
	})
	rep, err := gen.Run()
	if err != nil {
		return row, err
	}
	if fs != nil {
		fs.Wait()
	}
	if rep.Established != rep.Attempted || rep.Failed != 0 {
		return row, fmt.Errorf("calls: %d/%d established, %d failed (%v)",
			rep.Established, rep.Attempted, rep.Failed, rep.FailureReasons)
	}
	row.Calls = rep.Established
	row.SetupP50 = rep.SetupP50
	row.SetupP99 = rep.SetupP99
	for _, sc := range fed.Islands() {
		for _, ps := range sc.Metrics().Proxies {
			row.SLP += ps.SLPResolutions
			row.Overlay += ps.OverlayRouted
			row.Provider += ps.InternetRouted
			row.Errors += ps.ResolverErrors
		}
	}
	return row, nil
}
