package experiments

import (
	"fmt"
	"io"
	"time"

	"siphoc"
)

// E6 reproduces the paper's provider interoperability findings (§3.2): the
// authors tested three SIP providers; the two whose proxy runs on the domain
// they assign addresses from work transparently, while the one requiring a
// special outbound proxy fails because SIPHoc overwrites the outbound-proxy
// field with localhost — "an open issue which we plan to address".
func E6(w io.Writer) error {
	header(w, "E6: SIP provider interoperability matrix (paper §3.2)")
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{Internet: true})
	if err != nil {
		return err
	}
	defer sc.Close()

	providers := []struct {
		cfg  siphoc.ProviderConfig
		want bool // expected to work
	}{
		{siphoc.ProviderConfig{Domain: "siphoc.ch"}, true},
		{siphoc.ProviderConfig{Domain: "netvoip.ch"}, true},
		{siphoc.ProviderConfig{Domain: "polyphone.ethz.ch", ProxyHost: "sipgate.ethz.ch"}, false},
	}
	provs := make([]*siphoc.Provider, len(providers))
	for i, p := range providers {
		prov, err := sc.AddProvider(p.cfg)
		if err != nil {
			return err
		}
		prov.AddAccount("alice")
		provs[i] = prov
	}
	if _, err := sc.AddNode("10.0.0.1", siphoc.Position{}, siphoc.WithGateway()); err != nil {
		return err
	}
	node, err := sc.AddNode("10.0.0.2", siphoc.Position{X: 50})
	if err != nil {
		return err
	}
	if err := sc.WaitAttached(node, 30*time.Second); err != nil {
		return err
	}

	fmt.Fprintf(w, "%-22s %-18s %-26s %s\n", "provider", "needs outbound", "upstream registration", "matches paper")
	fmt.Fprintf(w, "%-22s %-18s %-26s %s\n", "--------", "proxy?", "from the MANET", "")
	allMatch := true
	for i, p := range providers {
		ph, err := node.NewPhone("alice", p.cfg.Domain)
		if err != nil {
			return err
		}
		if err := retry(3, ph.Register); err != nil {
			return fmt.Errorf("local register at %s: %w", p.cfg.Domain, err)
		}
		aor := "alice@" + p.cfg.Domain
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) && node.Proxy().UpstreamStatus(aor) == 0 {
			time.Sleep(20 * time.Millisecond)
		}
		code := node.Proxy().UpstreamStatus(aor)
		works := code == 200
		outcome := fmt.Sprintf("FAILED (status %d)", code)
		if works {
			outcome = "OK (200)"
		}
		match := works == p.want
		allMatch = allMatch && match
		fmt.Fprintf(w, "%-22s %-18v %-26s %v\n",
			p.cfg.Domain, provs[i].RequiresOutboundProxy(), outcome, match)
	}
	if !allMatch {
		return fmt.Errorf("interop matrix deviates from the paper")
	}
	fmt.Fprintf(w, "\nresult: 2/3 providers interoperate; the outbound-proxy provider reproduces\n")
	fmt.Fprintf(w, "the paper's documented failure (the proxy cannot deduce the next hop).\n")
	return nil
}
