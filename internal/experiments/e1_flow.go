package experiments

import (
	"fmt"
	"io"
	"time"

	"siphoc"
)

// E1 reproduces the paper's Figure 3: the eight-step establishment of a
// call between two users in an isolated ad hoc network, with every SIP
// message flowing through the per-node SIPHoc proxies and the callee
// resolved via MANET SLP — no centralized server anywhere.
func E1(w io.Writer) error {
	header(w, "E1: call setup in an isolated MANET (paper Figure 3)")
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{})
	if err != nil {
		return err
	}
	defer sc.Close()
	nodes, err := sc.Chain(3, 90)
	if err != nil {
		return err
	}
	n1, n3 := nodes[0], nodes[2]
	fmt.Fprintf(w, "topology: 3-node chain %s -- %s -- %s (multihop, 2 hops end to end)\n",
		nodes[0].ID(), nodes[1].ID(), nodes[2].ID())

	alice, err := n1.NewPhone("alice", "voicehoc.ch")
	if err != nil {
		return err
	}
	bob, err := n3.NewPhone("bob", "voicehoc.ch")
	if err != nil {
		return err
	}

	// Steps 1-2: Alice's phone registers with its local proxy, which
	// advertises the binding via MANET SLP.
	if err := retry(3, alice.Register); err != nil {
		return fmt.Errorf("step 1: %w", err)
	}
	fmt.Fprintf(w, "step 1: %s REGISTERed with local proxy %s\n", alice.AOR(), n1.Proxy().Addr())
	if _, ok := n1.SLP().LookupCached("sip", alice.AOR()); !ok {
		return fmt.Errorf("step 2: proxy did not advertise via MANET SLP")
	}
	fmt.Fprintf(w, "step 2: proxy advertised 'service:sip://%s' for %s via MANET SLP\n",
		n1.Proxy().Addr(), alice.AOR())

	// Steps 3-4: Bob does the same on his node.
	if err := retry(3, bob.Register); err != nil {
		return fmt.Errorf("step 3: %w", err)
	}
	fmt.Fprintf(w, "step 3: %s REGISTERed with local proxy %s\n", bob.AOR(), n3.Proxy().Addr())
	fmt.Fprintf(w, "step 4: proxy advertised 'service:sip://%s' for %s via MANET SLP\n",
		n3.Proxy().Addr(), bob.AOR())

	// Step 5: Alice's INVITE is routed through her local proxy.
	before := n1.Proxy().Stats()
	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		return err
	}
	// Steps 6-8 happen inside the middleware; observe their effects.
	if err := call.WaitEstablished(20 * time.Second); err != nil {
		return fmt.Errorf("call setup: %w", err)
	}
	after := n1.Proxy().Stats()
	fmt.Fprintf(w, "step 5: INVITE bob@voicehoc.ch sent to local proxy (outbound proxy = localhost)\n")
	if after.SLPResolutions <= before.SLPResolutions {
		return fmt.Errorf("step 6: proxy did not consult MANET SLP")
	}
	fmt.Fprintf(w, "step 6: proxy consulted MANET SLP for bob@voicehoc.ch\n")
	fmt.Fprintf(w, "step 7: MANET SLP resolved bob -> %s, INVITE forwarded across the MANET\n", n3.Proxy().Addr())
	if n3.Proxy().Stats().LocalDeliveries == 0 {
		return fmt.Errorf("step 8: callee proxy did not deliver to the local application")
	}
	fmt.Fprintf(w, "step 8: Bob's proxy forwarded the INVITE to his phone - it rang and answered\n")
	fmt.Fprintf(w, "result: call established in %v across 2 hops; media flowing\n", call.SetupDuration().Round(time.Millisecond))

	if sent := call.SendVoice(25); sent != 25 {
		return fmt.Errorf("media: only %d frames sent", sent)
	}
	// Let the last frames land.
	time.Sleep(200 * time.Millisecond)
	var bobCall *siphoc.Call
	select {
	case bobCall = <-bob.Incoming():
	default:
		return fmt.Errorf("callee leg not observable")
	}
	st := bobCall.MediaStats()
	fmt.Fprintf(w, "media:  %d/%d frames received, loss %.1f%%, avg one-way delay %v, MOS %.2f\n",
		st.Received, st.Expected, st.LossRate*100, st.AvgDelay.Round(time.Microsecond), st.MOS)
	if err := call.Hangup(); err != nil {
		return fmt.Errorf("teardown: %w", err)
	}
	fmt.Fprintf(w, "teardown: BYE completed, call ended cleanly\n")
	return nil
}

func retry(n int, f func() error) error {
	var err error
	for range n {
		if err = f(); err == nil {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return err
}
