package experiments

import (
	"fmt"
	"io"
	"time"

	"siphoc"
)

// E5 reproduces the paper's §3.2: users keep their official SIP addresses
// and transparently make calls to — and receive calls from — the Internet
// as soon as one node in the MANET is connected and acts as a gateway.
func E5(w io.Writer) error {
	header(w, "E5: phone calls to/from the Internet (paper §3.2)")
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{Internet: true})
	if err != nil {
		return err
	}
	defer sc.Close()
	prov, err := sc.AddProvider(siphoc.ProviderConfig{Domain: "voicehoc.ch"})
	if err != nil {
		return err
	}
	prov.AddAccount("alice")
	prov.AddAccount("carol")

	// MANET: alice -- relay -- gateway; Internet: provider + carol.
	nodes := make([]*siphoc.Node, 3)
	for i := range 3 {
		var opts []siphoc.NodeOption
		if i == 2 {
			opts = append(opts, siphoc.WithGateway())
		}
		n, err := sc.AddNode(siphoc.NodeID(fmt.Sprintf("10.0.0.%d", i+1)),
			siphoc.Position{X: float64(i) * 90}, opts...)
		if err != nil {
			return err
		}
		nodes[i] = n
	}
	carol, err := sc.AddInternetPhone("carol", "voicehoc.ch", "ua.carol.net")
	if err != nil {
		return err
	}
	if err := carol.Register(); err != nil {
		return err
	}
	fmt.Fprintf(w, "MANET chain: 10.0.0.1 -- 10.0.0.2 -- 10.0.0.3 (gateway)\n")
	fmt.Fprintf(w, "Internet: provider voicehoc.ch + carol@voicehoc.ch on ua.carol.net\n\n")

	t0 := time.Now()
	if err := sc.WaitAttached(nodes[0], 30*time.Second); err != nil {
		return err
	}
	fmt.Fprintf(w, "gateway discovery: node 10.0.0.1 found 'service:gateway' via MANET SLP and\n")
	fmt.Fprintf(w, "opened an L2 tunnel in %v -> the node is attached to the Internet\n\n", time.Since(t0).Round(time.Millisecond))

	alice, err := nodes[0].NewPhone("alice", "voicehoc.ch")
	if err != nil {
		return err
	}
	if err := retry(3, alice.Register); err != nil {
		return err
	}

	// Outbound call.
	t1 := time.Now()
	out, err := alice.Dial("carol@voicehoc.ch")
	if err != nil {
		return err
	}
	if err := out.WaitEstablished(20 * time.Second); err != nil {
		return fmt.Errorf("outbound call: %w", err)
	}
	fmt.Fprintf(w, "MANET -> Internet: alice called carol@voicehoc.ch, established in %v\n",
		time.Since(t1).Round(time.Millisecond))
	if sent := out.SendVoice(15); sent != 15 {
		return fmt.Errorf("outbound media: %d frames", sent)
	}
	if err := out.Hangup(); err != nil {
		return err
	}
	fmt.Fprintf(w, "                   15 voice frames crossed the tunnel; call torn down\n\n")

	// Inbound call: requires the upstream registration to have landed.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := prov.Binding("alice@voicehoc.ch"); ok {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, ok := prov.Binding("alice@voicehoc.ch"); !ok {
		return fmt.Errorf("upstream registration never reached the provider")
	}
	fmt.Fprintf(w, "Internet -> MANET: alice's official address is registered at the provider\n")
	t2 := time.Now()
	in, err := carol.Dial("alice@voicehoc.ch")
	if err != nil {
		return err
	}
	if err := in.WaitEstablished(20 * time.Second); err != nil {
		return fmt.Errorf("inbound call: %w", err)
	}
	fmt.Fprintf(w, "                   carol called alice@voicehoc.ch, established in %v\n",
		time.Since(t2).Round(time.Millisecond))
	if err := in.Hangup(); err != nil {
		return err
	}
	fmt.Fprintf(w, "result: the same SIP address works inside the MANET and from the Internet\n")
	return nil
}
