package experiments

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"

	"siphoc"
)

// E7 reproduces the paper's §4 deployment claim: the whole service set
// (proxy, Gateway Provider, Connection Provider, MANET SLP) fits a small
// footprint — 1.2 MB on the iPAQ's flash in the paper's C implementation.
// We report the compiled size of each of our binaries (statically linked Go,
// so the absolute numbers are larger, but the shape — a small, self-
// contained deployable set — holds) plus the live heap cost of one full
// SIPHoc node.
func E7(w io.Writer) error {
	header(w, "E7: deployment footprint (paper §4)")
	tools := []string{"siphocd", "softphone", "manetsim", "experiments"}
	tmp, err := os.MkdirTemp("", "siphoc-e7-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	fmt.Fprintf(w, "%-14s %12s\n", "binary", "size")
	var total int64
	for _, tool := range tools {
		out := filepath.Join(tmp, tool)
		cmd := exec.Command("go", "build", "-trimpath", "-ldflags", "-s -w", "-o", out, "./cmd/"+tool)
		cmd.Dir = repoRoot()
		if msg, err := cmd.CombinedOutput(); err != nil {
			return fmt.Errorf("build %s: %v: %s", tool, err, msg)
		}
		fi, err := os.Stat(out)
		if err != nil {
			return err
		}
		total += fi.Size()
		fmt.Fprintf(w, "%-14s %12s\n", tool, fmtBytes(fi.Size()))
	}
	fmt.Fprintf(w, "%-14s %12s   (paper: 1.2 MB for 4 C services + ~20 shared libs)\n", "total", fmtBytes(total))

	// Live memory of one full node (all services running).
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{})
	if err != nil {
		return err
	}
	const n = 8
	if _, err := sc.Chain(n, 90); err != nil {
		sc.Close()
		return err
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	sc.Close()
	perNode := int64(after.HeapAlloc-before.HeapAlloc) / n
	if perNode < 0 {
		perNode = 0
	}
	fmt.Fprintf(w, "\nlive heap per full SIPHoc node (proxy+SLP+routing+connprovider): ~%s\n", fmtBytes(perNode))
	fmt.Fprintf(w, "shape: the full service set deploys as a small self-contained bundle,\n")
	fmt.Fprintf(w, "matching the paper's handheld-deployability argument.\n")
	return nil
}

// repoRoot finds the module root by walking up from the working directory
// until go.mod appears.
func repoRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
