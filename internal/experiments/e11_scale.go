package experiments

import (
	"fmt"
	"io"
	"time"

	"siphoc"
)

// E11Row is one network size's measurements.
type E11Row struct {
	Nodes         int
	Diameter      int // grid corner-to-corner hop count
	Dissemination time.Duration
	SetupWarm     time.Duration
	RoutingBps    float64 // routing bytes/s per node at idle steady state
}

// E11 is the scalability study the paper explicitly defers ("as a next
// step, we plan to explore the scalability of the system as the number of
// nodes grows"): square grids of growing size, measuring how long a new
// registration takes to reach the farthest node (epidemic dissemination),
// the corner-to-corner call setup delay, and the per-node routing traffic
// that carries the piggybacked service information.
func E11(w io.Writer) error {
	header(w, "E11: scalability with network size (paper §4/§6 future work)")
	// Sides beyond 5 became tractable once bring-up went parallel and the
	// control plane stopped rebuilding routes per message; the pure
	// control-plane study continues to 400 nodes in BenchmarkControlScale.
	rows, err := RunE11([]int{2, 3, 4, 5, 6, 8})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-10s %16s %14s %18s\n",
		"nodes", "diameter", "dissemination", "setup (warm)", "routing B/s/node")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %-10d %16v %14v %18.0f\n",
			r.Nodes, r.Diameter,
			r.Dissemination.Round(time.Millisecond),
			r.SetupWarm.Round(time.Millisecond),
			r.RoutingBps)
	}
	fmt.Fprintf(w, "\nshape: dissemination and setup grow with the network diameter (epidemic\n")
	fmt.Fprintf(w, "hop-by-hop spread and per-hop SIP forwarding); per-node routing traffic\n")
	fmt.Fprintf(w, "stays bounded because service info rides the hello beat instead of flooding.\n")
	for i := 1; i < len(rows); i++ {
		if rows[i].Dissemination < rows[0].Dissemination/2 {
			return fmt.Errorf("dissemination did not grow with size: %+v", rows)
		}
	}
	return nil
}

// RunE11 measures the given grid side lengths.
func RunE11(sides []int) ([]E11Row, error) {
	rows := make([]E11Row, 0, len(sides))
	for _, side := range sides {
		row, err := runE11Point(side)
		if err != nil {
			return nil, fmt.Errorf("side %d: %w", side, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runE11Point(side int) (E11Row, error) {
	row := E11Row{Nodes: side * side, Diameter: 2 * (side - 1)}
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{})
	if err != nil {
		return row, err
	}
	defer sc.Close()
	// Isolated MANET without Connection Providers: otherwise every node's
	// standing gateway query rides all hellos and the idle measurement
	// reflects gateway probing instead of the discovery substrate.
	nodes, err := sc.Grid(side, side, 80, siphoc.WithoutConnectionProvider())
	if err != nil {
		return row, err
	}
	corner, opposite := nodes[0], nodes[len(nodes)-1]

	// Let the network settle (hello exchange), then measure the idle
	// routing rate.
	time.Sleep(300 * time.Millisecond)
	sc.Network().ResetStats()
	const window = 500 * time.Millisecond
	time.Sleep(window)
	st := sc.Network().Stats()
	row.RoutingBps = float64(st.RoutingBytes) / window.Seconds() / float64(len(nodes))

	// Dissemination: register at one corner, time visibility at the other.
	alice, err := corner.NewPhone("alice", "voicehoc.ch")
	if err != nil {
		return row, err
	}
	bob, err := opposite.NewPhone("bob", "voicehoc.ch")
	if err != nil {
		return row, err
	}
	if err := retry(5, bob.Register); err != nil {
		return row, err
	}
	t0 := time.Now()
	if err := retry(5, alice.Register); err != nil {
		return row, err
	}
	if _, err := opposite.SLP().Lookup("sip", "alice@voicehoc.ch", waitLong); err != nil {
		return row, fmt.Errorf("dissemination never completed: %w", err)
	}
	row.Dissemination = time.Since(t0)

	// Warm corner-to-corner call.
	if _, err := corner.SLP().Lookup("sip", "bob@voicehoc.ch", waitLong); err != nil {
		return row, err
	}
	if _, err := placeCall(alice); err != nil { // cold call warms the route
		return row, err
	}
	warm, err := placeCall(alice)
	if err != nil {
		return row, err
	}
	row.SetupWarm = warm
	return row, nil
}
