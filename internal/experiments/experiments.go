// Package experiments regenerates every figure and evaluation claim of the
// paper as an executable experiment (the index lives in DESIGN.md §4 and
// the measured outcomes in EXPERIMENTS.md). Each experiment writes a
// human-readable report and returns structured results where follow-up
// tooling needs them.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one runnable reproduction.
type Experiment struct {
	ID    string
	Title string
	// Paper identifies the figure/section being reproduced.
	Paper string
	Run   func(w io.Writer) error
}

// All returns the experiment registry in ID order.
func All() []Experiment {
	exps := []Experiment{
		{"E1", "Call setup flow in an isolated MANET", "Figure 3", E1},
		{"E2", "MANET SLP state after proxy advertisement", "Figure 4", E2},
		{"E3", "AODV route reply carrying piggybacked SIP contact", "Figure 5", E3},
		{"E4", "Out-of-the-box client configuration", "Figure 2, §3.1", E4},
		{"E5", "Calls to and from the Internet via a gateway", "§3.2", E5},
		{"E6", "SIP provider interoperability matrix", "§3.2", E6},
		{"E7", "Deployment footprint", "§4", E7},
		{"E8", "Session establishment delay vs hop count", "§4/§6 scalability", E8},
		{"E9", "Discovery overhead vs baselines", "§5 related work", E9},
		{"E10", "Transparency under gateway churn", "§3.2", E10},
		{"E11", "Scalability with network size", "§4/§6 future work", E11},
		{"E12", "Call success under mobility", "MANET premise of the title", E12},
		{"E13", "Multi-MANET federation over a sharded provider tier", "beyond the paper; ROADMAP north star", E13},
		{"E14", "Resolver backends: MANET SLP vs provider tier vs P2P overlay", "§5 related work; ROADMAP item 3", E14},
	}
	sort.Slice(exps, func(i, j int) bool {
		a, b := exps[i].ID, exps[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return exps
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func header(w io.Writer, e string) {
	fmt.Fprintf(w, "\n=== %s ===\n", e)
}
