package experiments

import (
	"fmt"
	"io"
	"time"

	"siphoc"
)

// E8Result is one measurement row of the setup-delay experiment.
type E8Result struct {
	Hops     int
	AODVCold time.Duration
	AODVWarm time.Duration
	OLSR     time.Duration
	// ColdPhases decomposes the cold-AODV setup delay into its trace
	// phases (the paper's Figure 5/6 breakdown), averaged over trials:
	// obs.PhaseSLPResolve, obs.PhaseRouteDiscovery, obs.PhaseSIPTransaction.
	ColdPhases map[string]time.Duration
}

// E8 quantifies the scalability dimension the paper defers to future work
// ("we plan to explore the scalability of the system as the number of nodes
// grows"): SIP session establishment delay as a function of hop count, for
// reactive (AODV, cold and warm routes) and proactive (OLSR, converged)
// routing.
//
// Expected shape: delay grows roughly linearly with hops; cold AODV pays an
// extra route-discovery round trip that warm AODV and converged OLSR avoid.
func E8(w io.Writer) error {
	header(w, "E8: session establishment delay vs hop count")
	results, err := RunE8(2, []int{1, 2, 3, 4, 5, 6})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %14s %14s %14s\n", "hops", "AODV cold", "AODV warm", "OLSR")
	for _, r := range results {
		fmt.Fprintf(w, "%-6d %14v %14v %14v\n",
			r.Hops, r.AODVCold.Round(100*time.Microsecond),
			r.AODVWarm.Round(100*time.Microsecond), r.OLSR.Round(100*time.Microsecond))
	}
	fmt.Fprintf(w, "\ncold-AODV breakdown from call traces (Figure 5/6 decomposition):\n")
	fmt.Fprintf(w, "%-6s %14s %16s %16s\n", "hops", "slp.resolve", "route.discovery", "sip.transaction")
	for _, r := range results {
		fmt.Fprintf(w, "%-6d %14v %16v %16v\n", r.Hops,
			r.ColdPhases[siphoc.PhaseSLPResolve].Round(100*time.Microsecond),
			r.ColdPhases[siphoc.PhaseRouteDiscovery].Round(100*time.Microsecond),
			r.ColdPhases[siphoc.PhaseSIPTransaction].Round(100*time.Microsecond))
	}
	fmt.Fprintf(w, "\nshape check: cold AODV > warm AODV wherever the trace shows route\n")
	fmt.Fprintf(w, "discovery actually ran (at 1 hop, hellos may pre-establish the route);\n")
	fmt.Fprintf(w, "delay grows with distance for all variants.\n")
	for _, r := range results {
		// The traces say whether the cold call really paid a discovery
		// round; when it did not (neighbour routes from hellos), cold vs
		// warm is pure jitter and the comparison would be a coin flip.
		if r.ColdPhases[siphoc.PhaseRouteDiscovery] <= 0 {
			continue
		}
		if r.AODVCold <= r.AODVWarm {
			return fmt.Errorf("hops=%d: cold (%v) not slower than warm (%v)", r.Hops, r.AODVCold, r.AODVWarm)
		}
	}
	if last, first := results[len(results)-1], results[0]; last.AODVWarm <= first.AODVWarm {
		return fmt.Errorf("warm setup delay did not grow with hops: %v at %d hops vs %v at %d",
			last.AODVWarm, last.Hops, first.AODVWarm, first.Hops)
	}
	return nil
}

// RunE8 measures average setup delays over the given hop counts with the
// given number of trials per point.
func RunE8(trials int, hopCounts []int) ([]E8Result, error) {
	results := make([]E8Result, 0, len(hopCounts))
	for _, hops := range hopCounts {
		r := E8Result{Hops: hops, ColdPhases: make(map[string]time.Duration)}
		for range trials {
			cold, warm, phases, err := measureAODV(hops)
			if err != nil {
				return nil, fmt.Errorf("aodv %d hops: %w", hops, err)
			}
			r.AODVCold += cold
			r.AODVWarm += warm
			for _, pd := range phases {
				r.ColdPhases[pd.Phase] += pd.Duration
			}
			olsr, err := measureOLSR(hops)
			if err != nil {
				return nil, fmt.Errorf("olsr %d hops: %w", hops, err)
			}
			r.OLSR += olsr
		}
		r.AODVCold /= time.Duration(trials)
		r.AODVWarm /= time.Duration(trials)
		r.OLSR /= time.Duration(trials)
		for phase := range r.ColdPhases {
			r.ColdPhases[phase] /= time.Duration(trials)
		}
		results = append(results, r)
	}
	return results, nil
}

// measureAODV sets up a fresh chain and measures the first (cold-route) and
// second (warm-route) call setup delays; the cold call additionally yields
// its trace-derived phase breakdown.
func measureAODV(hops int) (cold, warm time.Duration, phases []siphoc.PhaseDuration, err error) {
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{})
	if err != nil {
		return 0, 0, nil, err
	}
	defer sc.Close()
	nodes, err := sc.Chain(hops+1, 90)
	if err != nil {
		return 0, 0, nil, err
	}
	alice, bob, err := setupEndpoints(nodes)
	if err != nil {
		return 0, 0, nil, err
	}
	_ = bob
	// Let the SLP advert reach the caller so the measurement isolates the
	// routing + SIP cost, with the SLP cache warm (the steady state the
	// paper's epidemics produce).
	if _, err := nodes[0].SLP().Lookup("sip", "bob@voicehoc.ch", waitLong); err != nil {
		return 0, 0, nil, fmt.Errorf("SLP never converged: %w", err)
	}
	cold, phases, err = placeTracedCall(alice)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("cold call: %w", err)
	}
	warm, err = placeCall(alice)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("warm call: %w", err)
	}
	return cold, warm, phases, nil
}

func measureOLSR(hops int) (time.Duration, error) {
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{Routing: siphoc.RoutingOLSR})
	if err != nil {
		return 0, err
	}
	defer sc.Close()
	nodes, err := sc.Chain(hops+1, 90)
	if err != nil {
		return 0, err
	}
	alice, _, err := setupEndpoints(nodes)
	if err != nil {
		return 0, err
	}
	if _, err := nodes[0].SLP().Lookup("sip", "bob@voicehoc.ch", waitLong); err != nil {
		return 0, fmt.Errorf("SLP never converged: %w", err)
	}
	// Wait for proactive routing to converge end to end.
	deadline := time.Now().Add(waitLong)
	for {
		if _, found := nodes[0].Routing().NextHop(nodes[len(nodes)-1].ID()); found {
			break
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("OLSR never converged over %d hops", hops)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return placeCall(alice)
}

func setupEndpoints(nodes []*siphoc.Node) (*siphoc.Phone, *siphoc.Phone, error) {
	alice, err := nodes[0].NewPhone("alice", "voicehoc.ch")
	if err != nil {
		return nil, nil, err
	}
	bob, err := nodes[len(nodes)-1].NewPhone("bob", "voicehoc.ch")
	if err != nil {
		return nil, nil, err
	}
	if err := retry(5, alice.Register); err != nil {
		return nil, nil, err
	}
	if err := retry(5, bob.Register); err != nil {
		return nil, nil, err
	}
	return alice, bob, nil
}

func placeCall(caller *siphoc.Phone) (time.Duration, error) {
	d, _, err := placeTracedCall(caller)
	return d, err
}

// placeTracedCall places one call and returns both the wall-clock setup
// delay and the trace-derived breakdown of the setup window (which tiles
// the window exactly: the phase durations sum to the traced setup time).
func placeTracedCall(caller *siphoc.Phone) (time.Duration, []siphoc.PhaseDuration, error) {
	call, err := caller.Dial("bob@voicehoc.ch")
	if err != nil {
		return 0, nil, err
	}
	if err := call.WaitEstablished(20 * time.Second); err != nil {
		return 0, nil, err
	}
	d := call.SetupDuration()
	breakdown := call.Trace().SetupBreakdown()
	if err := call.Hangup(); err != nil {
		return 0, nil, err
	}
	return d, breakdown, nil
}
