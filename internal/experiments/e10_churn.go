package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"siphoc"
)

// E10 probes the transparency claim of §3.2 under gateway churn: Internet
// connectivity comes and goes with the gateway, and the middleware
// re-attaches on its own — the VoIP user keeps the same configuration
// throughout. The churn itself is injected by seeded fault plans
// (siphoc.FaultScenario), so the experiment replays the same schedule every
// run and asserts the harness invariants on top of the narrative.
func E10(w io.Writer) error {
	header(w, "E10: transparency under gateway churn (paper §3.2)")
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{Internet: true})
	if err != nil {
		return err
	}
	defer sc.Close()
	prov, err := sc.AddProvider(siphoc.ProviderConfig{Domain: "voicehoc.ch"})
	if err != nil {
		return err
	}
	prov.AddAccount("alice")
	prov.AddAccount("carol")
	node, err := sc.AddNode("10.0.0.1", siphoc.Position{})
	if err != nil {
		return err
	}
	gw1, err := sc.AddNode("10.0.0.2", siphoc.Position{X: 60}, siphoc.WithGateway())
	if err != nil {
		return err
	}
	carol, err := sc.AddInternetPhone("carol", "voicehoc.ch", "ua.carol.net")
	if err != nil {
		return err
	}
	if err := carol.Register(); err != nil {
		return err
	}
	alice, err := node.NewPhone("alice", "voicehoc.ch")
	if err != nil {
		return err
	}
	if err := retry(3, alice.Register); err != nil {
		return err
	}

	t0 := time.Now()
	if err := sc.WaitAttached(node, 30*time.Second); err != nil {
		return err
	}
	attach1 := time.Since(t0)
	fmt.Fprintf(w, "t=%8v  node attached via gateway %s\n", attach1.Round(time.Millisecond), gw1.ID())

	callOK := func(label string) error {
		call, err := alice.Dial("carol@voicehoc.ch")
		if err != nil {
			return err
		}
		if err := call.WaitEstablished(20 * time.Second); err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		defer func() { _ = call.Hangup() }()
		fmt.Fprintf(w, "t=%8v  %s: Internet call established in %v\n",
			time.Since(t0).Round(time.Millisecond), label, call.SetupDuration().Round(time.Millisecond))
		return nil
	}
	if err := callOK("with gateway 1"); err != nil {
		return err
	}

	// Kill the gateway with a seeded fault plan: the node crash also purges
	// the dead gateway's SLP adverts from every surviving cache.
	crash := siphoc.NewFaultScenario(sc, 7)
	crash.CrashNode(0, gw1.ID())
	if err := crash.Run(); err != nil {
		return err
	}
	crash.Wait()
	tKill := time.Now()
	for _, rec := range crash.Log() {
		fmt.Fprintf(w, "t=%8v  fault injected: %s\n", time.Since(t0).Round(time.Millisecond), rec.Detail)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) && node.InternetAttached() {
		time.Sleep(20 * time.Millisecond)
	}
	if node.InternetAttached() {
		return fmt.Errorf("node never detected gateway loss")
	}
	fmt.Fprintf(w, "t=%8v  loss detected, node detached (%v after the failure)\n",
		time.Since(t0).Round(time.Millisecond), time.Since(tKill).Round(time.Millisecond))

	// With no gateway anywhere, a bounded wait surfaces the typed error.
	if err := sc.WaitAttached(node, 500*time.Millisecond); !errors.Is(err, siphoc.ErrNoGateway) {
		return fmt.Errorf("want ErrNoGateway while detached, got %v", err)
	}
	fmt.Fprintf(w, "t=%8v  bounded attach wait reports ErrNoGateway\n", time.Since(t0).Round(time.Millisecond))

	// Internet calls must now fail fast at the proxy.
	failCall, err := alice.Dial("carol@voicehoc.ch")
	if err != nil {
		return err
	}
	crash.Track(failCall)
	if err := failCall.WaitEstablished(20 * time.Second); err == nil {
		return fmt.Errorf("Internet call succeeded while detached")
	}
	fmt.Fprintf(w, "t=%8v  Internet call correctly rejected while detached (status %d)\n",
		time.Since(t0).Round(time.Millisecond), failCall.FailCode())
	if err := crash.CheckInvariants(5 * time.Second); err != nil {
		return fmt.Errorf("crash-phase invariants: %w", err)
	}

	// Replacement gateway appears via the recovery plan; the node must
	// re-attach by itself.
	tNew := time.Now()
	recovery := siphoc.NewFaultScenario(sc, 7)
	recovery.RestartNode(0, "10.0.0.3", siphoc.Position{X: 70}, siphoc.WithGateway())
	if err := recovery.Run(); err != nil {
		return err
	}
	recovery.Wait()
	if err := sc.WaitAttached(node, 60*time.Second); err != nil {
		return fmt.Errorf("failover: %w", err)
	}
	fmt.Fprintf(w, "t=%8v  new gateway 10.0.0.3 up; node re-attached after %v\n",
		time.Since(t0).Round(time.Millisecond), time.Since(tNew).Round(time.Millisecond))
	if err := callOK("after failover"); err != nil {
		return err
	}
	if err := recovery.CheckInvariants(5 * time.Second); err != nil {
		return fmt.Errorf("recovery-phase invariants: %w", err)
	}
	st := node.ConnectionProvider().Stats()
	fmt.Fprintf(w, "\nresult: connectivity churn is invisible to the application configuration;\n")
	fmt.Fprintf(w, "attachment, failure detection and failover are fully automatic\n")
	fmt.Fprintf(w, "(%d failover(s), last detach-to-reattach %v).\n", st.Failovers, st.LastFailoverDur.Round(time.Millisecond))
	return nil
}
