package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"siphoc"
	"siphoc/internal/netem"
	"siphoc/internal/routing"
	"siphoc/internal/routing/aodv"
	"siphoc/internal/slp"
)

const waitLong = 10 * time.Second

// E3 reproduces the paper's Figure 5: a packet-analyzer capture of an AODV
// route reply augmented with piggybacked SIP contact information. We attach
// a tap to the radio medium (our Wireshark), trigger a route discovery
// toward the node hosting Bob's proxy, and decode the RREP that carries his
// SIP binding in its extension.
func E3(w io.Writer) error {
	header(w, "E3: AODV RREP with encapsulated SIP contact (paper Figure 5)")
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{})
	if err != nil {
		return err
	}
	defer sc.Close()
	nodes, err := sc.Chain(3, 90)
	if err != nil {
		return err
	}
	bob, err := nodes[2].NewPhone("bob", "voicehoc.ch")
	if err != nil {
		return err
	}
	if err := retry(3, bob.Register); err != nil {
		return err
	}

	type capture struct {
		frame netem.Frame
		env   *routing.Envelope
	}
	var (
		mu  sync.Mutex
		got *capture
	)
	sc.Network().SetTap(func(f netem.Frame) {
		if f.Kind != netem.KindRouting {
			return
		}
		env, err := routing.ParseEnvelope(f.Payload)
		if err != nil || env.Proto != routing.ProtoAODV || env.Kind != aodv.KindRREP {
			return
		}
		if len(env.Ext) == 0 || !strings.Contains(string(env.Ext), "bob@voicehoc.ch") {
			return
		}
		mu.Lock()
		if got == nil {
			got = &capture{frame: f, env: env}
		}
		mu.Unlock()
	})

	// Trigger route discovery from node 1 toward Bob's node: the RREQ
	// floods, Bob's node answers with an RREP, and the SLP plugin rides
	// Bob's SIP binding on it.
	probe, err := nodes[0].Host().Listen(0)
	if err != nil {
		return err
	}
	defer probe.Close()
	deadline := time.Now().Add(waitLong)
	for {
		_ = probe.WriteTo([]byte("probe"), nodes[2].ID(), 9)
		time.Sleep(100 * time.Millisecond)
		mu.Lock()
		done := got != nil
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no RREP with piggybacked SIP contact captured")
		}
	}
	sc.Network().SetTap(nil)

	mu.Lock()
	c := got
	mu.Unlock()
	fmt.Fprintf(w, "captured routing frame %s -> %s (%d bytes):\n\n",
		c.frame.Src, c.frame.Dst, len(c.frame.Payload))
	hexdump(w, c.frame.Payload)

	rrep, err := aodv.ParseRREP(c.env.Body)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ndecoded:\n")
	fmt.Fprintf(w, "  AODV Route Reply\n")
	fmt.Fprintf(w, "    originator : %s\n", rrep.Orig)
	fmt.Fprintf(w, "    destination: %s (hop count %d, dest seq %d)\n", rrep.Dst, rrep.HopCount, rrep.DstSeq)
	payload, err := slp.ParsePayload(c.env.Ext)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  Piggybacked MANET SLP extension (%d bytes)\n", len(c.env.Ext))
	for _, adv := range payload.Adverts {
		fmt.Fprintf(w, "    service advert: %s/%s -> %s (origin %s, seq %d, ttl %ds)\n",
			adv.Type, adv.Key, adv.URL, adv.Origin, adv.Seq, adv.TTLSec)
	}
	for _, q := range payload.Queries {
		fmt.Fprintf(w, "    query: %s/%s from %s (id %d, hops %d)\n", q.Type, q.Key, q.Origin, q.ID, q.Hops)
	}
	return nil
}

// hexdump prints a classic offset/hex/ASCII dump like a packet analyzer.
func hexdump(w io.Writer, b []byte) {
	for off := 0; off < len(b); off += 16 {
		end := min(off+16, len(b))
		row := b[off:end]
		fmt.Fprintf(w, "  %04x  ", off)
		for i := range 16 {
			if i < len(row) {
				fmt.Fprintf(w, "%02x ", row[i])
			} else {
				fmt.Fprint(w, "   ")
			}
			if i == 7 {
				fmt.Fprint(w, " ")
			}
		}
		fmt.Fprint(w, " |")
		for _, c := range row {
			if c >= 32 && c < 127 {
				fmt.Fprintf(w, "%c", c)
			} else {
				fmt.Fprint(w, ".")
			}
		}
		fmt.Fprintln(w, "|")
	}
}
