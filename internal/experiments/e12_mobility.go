package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"siphoc"
	"siphoc/internal/netem"
	"siphoc/internal/rtp"
)

// E12Row is one mobility level's measurements.
type E12Row struct {
	Speed    float64 // m/s (simulation-accelerated 20x)
	SetupOK  bool
	Sent     int64
	Received int64
	LossRate float64
	MOS      float64
}

// E12 stresses the system under the mobility that defines MANETs: a long
// voice call runs between two users while every node walks random-waypoint
// at increasing speed. Call setup is quick enough to dodge mobility in a
// connected network; an ongoing media stream is not — every route break
// costs frames until AODV re-discovers a path, degrading loss and MOS with
// speed. The paper's testbed was static; this probes the regime its title
// promises.
func E12(w io.Writer) error {
	header(w, "E12: media quality under mobility (random waypoint)")
	rows, err := RunE12([]float64{0, 5, 20, 40})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "16 nodes, 350x350m, AODV, one 5s call (250 voice frames), movement 20x\n\n")
	fmt.Fprintf(w, "%-12s %10s %12s %8s\n", "speed (m/s)", "delivered", "delivery", "MOS")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12.0f %6d/250 %11.1f%% %8.2f\n",
			r.Speed, r.Received, 100*(1-r.LossRate), r.MOS)
	}
	if rows[0].LossRate > 0.02 {
		return fmt.Errorf("static network lost %.1f%% of media", 100*rows[0].LossRate)
	}
	for _, r := range rows[1:] {
		if r.LossRate <= rows[0].LossRate {
			return fmt.Errorf("mobility at %.0f m/s did not cost any media: %+v", r.Speed, r)
		}
	}
	fmt.Fprintf(w, "\nshape: the static call is loss-free; every mobile run loses frames in the\n")
	fmt.Fprintf(w, "re-discovery windows after route breaks. Note the classic MANET non-\n")
	fmt.Fprintf(w, "monotonicity: slow movement creates long-lived breaks (a relay drifts out\n")
	fmt.Fprintf(w, "of range and stays there), while fast movement brings replacement relays\n")
	fmt.Fprintf(w, "quickly, so moderate speeds can hurt more than high ones.\n")
	return nil
}

// RunE12 measures the given waypoint speeds.
func RunE12(speeds []float64) ([]E12Row, error) {
	rows := make([]E12Row, 0, len(speeds))
	for _, speed := range speeds {
		row, err := runE12Point(speed)
		if err != nil {
			return nil, fmt.Errorf("speed %.0f: %w", speed, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runE12Point(speed float64) (E12Row, error) {
	row := E12Row{Speed: speed}
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{})
	if err != nil {
		return row, err
	}
	defer sc.Close()
	const area = 350.0
	nodes := make([]*siphoc.Node, 0, 16)
	rng := rand.New(rand.NewSource(17))
	for i := range 16 {
		// A loose 4x4 jittered grid keeps the starting topology connected.
		base := siphoc.Position{
			X: float64(i%4)*90 + rng.Float64()*20,
			Y: float64(i/4)*90 + rng.Float64()*20,
		}
		n, err := sc.AddNode(netem.NodeName("10.0.0", i+1), base)
		if err != nil {
			return row, err
		}
		nodes = append(nodes, n)
	}
	// Call between opposite corners, pinned in place so only the relays
	// between them churn.
	alice, err := nodes[0].NewPhone("alice", "voicehoc.ch")
	if err != nil {
		return row, err
	}
	bob, err := nodes[15].NewPhone("bob", "voicehoc.ch")
	if err != nil {
		return row, err
	}
	if err := retry(8, alice.Register); err != nil {
		return row, err
	}
	if err := retry(8, bob.Register); err != nil {
		return row, err
	}
	if _, err := nodes[0].SLP().Lookup("sip", "bob@voicehoc.ch", waitLong); err != nil {
		return row, err
	}
	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		return row, err
	}
	if err := call.WaitEstablished(20 * time.Second); err != nil {
		return row, fmt.Errorf("setup: %w", err)
	}
	row.SetupOK = true
	// Movement starts once the call is up: the measurement is how the
	// established media path endures churn.
	stop := make(chan struct{})
	defer close(stop)
	if speed > 0 {
		mover := netem.NewWaypoint(sc.Network(), area, area, speed, speed, 23)
		mover.Pin(nodes[0].ID())
		mover.Pin(nodes[15].ID())
		go func() {
			ticker := time.NewTicker(50 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					mover.Step(1) // 20x real time
				}
			}
		}()
	}
	const frames = 250 // 5 seconds of G.711
	row.Sent = int64(call.SendVoice(frames))
	time.Sleep(300 * time.Millisecond) // drain in-flight frames
	var bobCall *siphoc.Call
	select {
	case bobCall = <-bob.Incoming():
	default:
		return row, fmt.Errorf("callee leg not observable")
	}
	st := bobCall.MediaStats()
	row.Received = st.Received
	// Loss over the whole attempted stream: frames that never left the
	// source (no route) count as lost too — that is what the listener
	// hears.
	row.LossRate = 1 - float64(st.Received)/float64(frames)
	if row.LossRate < 0 {
		row.LossRate = 0
	}
	_, row.MOS = rtp.EModel(st.AvgDelay, row.LossRate)
	_ = call.Hangup()
	return row, nil
}
