// Package internet simulates the fixed Internet the paper's MANET
// occasionally connects to: a fully connected network hosting SIP providers
// (the paper tested siphoc.ch, netvoip.ch and polyphone.ethz.ch), reachable
// from the MANET only through a gateway node's layer-2 tunnel.
//
// The Internet is modelled as a netem.Network whose nodes are all mutually
// reachable in one hop (a star/backbone abstraction): hosts get a full-mesh
// route provider and generous radio range. Host names double as DNS names —
// a provider for domain "voicehoc.ch" runs on the node with that ID, which
// is exactly how the SIPHoc proxy resolves "the SIP proxy can be deduced
// from the domain part of the SIP URI" (RFC 3261 §8.1.2).
package internet

import (
	"fmt"
	"time"

	"siphoc/internal/netem"
)

// FullMesh routes every destination as a direct neighbour — the Internet's
// "it just works" forwarding abstraction.
type FullMesh struct{}

var _ netem.RouteProvider = FullMesh{}

// NextHop implements netem.RouteProvider.
func (FullMesh) NextHop(dst netem.NodeID) (netem.NodeID, bool) { return dst, true }

// RequestRoute implements netem.RouteProvider.
func (FullMesh) RequestRoute(dst netem.NodeID, done func(bool)) { done(true) }

// Internet wraps the fixed network.
type Internet struct {
	net *netem.Network
}

// Config tunes the simulated Internet.
type Config struct {
	// Delay is the per-hop latency between Internet hosts (default 5ms,
	// a metropolitan RTT of 10ms).
	Delay time.Duration
	// Seed seeds the loss RNG (losses default to zero).
	Seed int64
}

// New creates an empty Internet.
func New(cfg Config) *Internet {
	if cfg.Delay == 0 {
		cfg.Delay = 5 * time.Millisecond
	}
	n := netem.NewNetwork(netem.Config{
		Range:     1e12, // everyone reaches everyone
		BaseDelay: cfg.Delay,
		Seed:      cfg.Seed,
	})
	return &Internet{net: n}
}

// Network exposes the underlying medium (for stats and teardown).
func (i *Internet) Network() *netem.Network { return i.net }

// AddHost attaches a named Internet host with full-mesh routing.
func (i *Internet) AddHost(name netem.NodeID) (*netem.Host, error) {
	h, err := i.net.AddHost(name, netem.Position{})
	if err != nil {
		return nil, fmt.Errorf("internet: %w", err)
	}
	h.SetRouteProvider(FullMesh{})
	return h, nil
}

// RemoveHost detaches a host.
func (i *Internet) RemoveHost(name netem.NodeID) { i.net.RemoveHost(name) }

// Close shuts the Internet down.
func (i *Internet) Close() { i.net.Close() }
