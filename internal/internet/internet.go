// Package internet simulates the fixed Internet the paper's MANET
// occasionally connects to: a fully connected network hosting SIP providers
// (the paper tested siphoc.ch, netvoip.ch and polyphone.ethz.ch), reachable
// from the MANET only through a gateway node's layer-2 tunnel.
//
// The Internet is modelled as a netem.Network whose nodes are all mutually
// reachable in one hop (a star/backbone abstraction): hosts get a full-mesh
// route provider and generous radio range. Host names double as DNS names —
// a provider for domain "voicehoc.ch" runs on the node with that ID, which
// is exactly how the SIPHoc proxy resolves "the SIP proxy can be deduced
// from the domain part of the SIP URI" (RFC 3261 §8.1.2).
package internet

import (
	"fmt"
	"sync"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
)

// FullMesh routes every destination as a direct neighbour — the Internet's
// "it just works" forwarding abstraction.
type FullMesh struct{}

var _ netem.RouteProvider = FullMesh{}

// NextHop implements netem.RouteProvider.
func (FullMesh) NextHop(dst netem.NodeID) (netem.NodeID, bool) { return dst, true }

// RequestRoute implements netem.RouteProvider.
func (FullMesh) RequestRoute(dst netem.NodeID, done func(bool)) { done(true) }

// Internet wraps the fixed network.
type Internet struct {
	net *netem.Network

	// Trunk directory: which gateway's tunnel currently serves a MANET
	// client's virtual Internet presence. Gateways publish their tunnel
	// clients here so a peer gateway can trunk media toward them instead of
	// sending one Internet datagram per RTP packet.
	trunkMu sync.RWMutex
	trunk   map[netem.NodeID]netem.NodeID // vhost -> serving gateway
}

// Config tunes the simulated Internet.
type Config struct {
	// Delay is the per-hop latency between Internet hosts (default 5ms,
	// a metropolitan RTT of 10ms).
	Delay time.Duration
	// Seed seeds the loss RNG (losses default to zero).
	Seed int64
	// Clock drives the medium's delivery timers (default: real time).
	// Federation tests and scenarios share one fake clock across every
	// island MANET and the Internet for deterministic schedules.
	Clock clock.Clock
	// EventLoop delivers frames inline on sharded delivery workers instead
	// of one dispatch goroutine per host — the same event-loop core the
	// MANET medium grew in the scheduler PR. Overlay fleets use this so
	// goroutine count stays O(shards) no matter how many DHT nodes join.
	EventLoop bool
	// Shards bounds the event-loop worker count (0 = GOMAXPROCS). Only
	// meaningful with EventLoop.
	Shards int
}

// New creates an empty Internet.
func New(cfg Config) *Internet {
	if cfg.Delay == 0 {
		cfg.Delay = 5 * time.Millisecond
	}
	n := netem.NewNetwork(netem.Config{
		Range:     1e12, // everyone reaches everyone
		BaseDelay: cfg.Delay,
		Seed:      cfg.Seed,
		Clock:     cfg.Clock,
		EventLoop: cfg.EventLoop,
		Shards:    cfg.Shards,
	})
	return &Internet{net: n}
}

// Network exposes the underlying medium (for stats and teardown).
func (i *Internet) Network() *netem.Network { return i.net }

// AddHost attaches a named Internet host with full-mesh routing.
func (i *Internet) AddHost(name netem.NodeID) (*netem.Host, error) {
	h, err := i.net.AddHost(name, netem.Position{})
	if err != nil {
		return nil, fmt.Errorf("internet: %w", err)
	}
	h.SetRouteProvider(FullMesh{})
	return h, nil
}

// RemoveHost detaches a host.
func (i *Internet) RemoveHost(name netem.NodeID) { i.net.RemoveHost(name) }

// RegisterTrunkClient records that vhost (a tunnel client's virtual Internet
// host) is served by gw's trunk endpoint. Gateways call this when a tunnel
// opens; it is the discovery side of inter-gateway media trunking.
func (i *Internet) RegisterTrunkClient(vhost, gw netem.NodeID) {
	i.trunkMu.Lock()
	if i.trunk == nil {
		i.trunk = make(map[netem.NodeID]netem.NodeID)
	}
	i.trunk[vhost] = gw
	i.trunkMu.Unlock()
}

// UnregisterTrunkClient withdraws a tunnel client's trunk mapping, but only
// if gw still owns it (a client may have re-tunnelled through another
// gateway in the meantime).
func (i *Internet) UnregisterTrunkClient(vhost, gw netem.NodeID) {
	i.trunkMu.Lock()
	if cur, ok := i.trunk[vhost]; ok && cur == gw {
		delete(i.trunk, vhost)
	}
	i.trunkMu.Unlock()
}

// TrunkGatewayFor returns the gateway serving a tunnel client's virtual host,
// if any. Allocation-free: it sits on the per-packet gateway data path.
func (i *Internet) TrunkGatewayFor(vhost netem.NodeID) (netem.NodeID, bool) {
	i.trunkMu.RLock()
	gw, ok := i.trunk[vhost]
	i.trunkMu.RUnlock()
	return gw, ok
}

// Close shuts the Internet down.
func (i *Internet) Close() { i.net.Close() }
