package internet

import (
	"fmt"
	"sync"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/sip"
)

// ProviderConfig describes one Internet SIP provider.
type ProviderConfig struct {
	// Domain is the SIP domain the provider assigns addresses from, e.g.
	// "voicehoc.ch".
	Domain string
	// ProxyHost is the node the provider's registrar/proxy actually runs
	// on. When it differs from Domain, subscribers must configure it as
	// their outbound proxy — the polyphone.ethz.ch situation that breaks
	// SIPHoc's localhost-outbound-proxy trick (paper §3.2).
	ProxyHost string
	// RequireAuth makes the registrar challenge REGISTERs with RFC 2617
	// digest authentication; accounts then need passwords
	// (AddAccountWithPassword).
	RequireAuth bool
	// SIP tunes the transaction layer (default sip.SimConfig()).
	SIP sip.Config
	// Clock is the time source (default the system clock).
	Clock clock.Clock
	// BindingTTL is how long registrations stay valid (default 60s).
	BindingTTL time.Duration
	// Shard, when set, makes this provider one member of a sharded tier: it
	// only stores bindings for the AORs the shard map assigns to its index
	// and statelessly relays everything else to the owner shard. Normally
	// wired by NewProviderPool.
	Shard *ShardRole
}

// Provider is a centralized Internet SIP service: registrar plus stateful
// proxy for its domain, the component SIP assumes and MANETs lack.
type Provider struct {
	cfg   ProviderConfig
	clk   clock.Clock
	host  *netem.Host
	stack *sip.Stack

	mu       sync.Mutex
	accounts map[string]accountInfo // AOR -> account
	bindings map[string]binding     // AOR -> current contact
	nonces   *sip.NonceSource
	stats    ProviderStats
	closed   bool
}

type accountInfo struct {
	exists   bool
	password string
}

type binding struct {
	contact sip.Addr
	expires time.Time
}

// ProviderStats counts registrar/proxy activity.
type ProviderStats struct {
	Registers     int64
	Invites       int64
	Forwarded     int64
	Rejected      int64
	Challenged    int64 // 401 digest challenges issued
	ShardForwards int64 // requests relayed to the owning shard
}

// NewProvider starts a provider on the Internet. Its proxy host (and, if
// different, the domain placeholder node) are created on the fly.
func NewProvider(inet *Internet, cfg ProviderConfig) (*Provider, error) {
	if cfg.Domain == "" {
		return nil, fmt.Errorf("internet: provider needs a domain")
	}
	if cfg.ProxyHost == "" {
		cfg.ProxyHost = cfg.Domain
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.New()
	}
	if cfg.BindingTTL == 0 {
		cfg.BindingTTL = 60 * time.Second
	}
	if cfg.SIP.T1 == 0 {
		cfg.SIP = sip.SimConfig()
	}
	host, err := inet.AddHost(netem.NodeID(cfg.ProxyHost))
	if err != nil {
		return nil, err
	}
	if cfg.ProxyHost != cfg.Domain && cfg.Shard == nil {
		// The domain node exists but runs no SIP service: REGISTERs sent
		// there (by clients that ignore the outbound-proxy requirement)
		// time out, exactly like a host with no SIP listener. Pool shards
		// skip this: the pool owns the domain host (shard 0 runs on it).
		if _, err := inet.AddHost(netem.NodeID(cfg.Domain)); err != nil {
			return nil, err
		}
	}
	conn, err := host.Listen(sip.DefaultPort)
	if err != nil {
		return nil, err
	}
	p := &Provider{
		cfg:      cfg,
		clk:      cfg.Clock,
		host:     host,
		stack:    sip.NewStack(conn, cfg.SIP),
		accounts: make(map[string]accountInfo),
		bindings: make(map[string]binding),
		nonces:   sip.NewNonceSource(cfg.Domain),
	}
	p.stack.OnRequest(p.onRequest)
	return p, nil
}

// Domain returns the provider's SIP domain.
func (p *Provider) Domain() string { return p.cfg.Domain }

// ProxyAddr returns the transport address of the provider's proxy.
func (p *Provider) ProxyAddr() sip.Addr {
	return sip.Addr{Node: netem.NodeID(p.cfg.ProxyHost), Port: sip.DefaultPort}
}

// RequiresOutboundProxy reports whether subscribers must configure a special
// outbound proxy (proxy host differs from the domain).
func (p *Provider) RequiresOutboundProxy() bool { return p.cfg.ProxyHost != p.cfg.Domain }

// AddAccount provisions a subscriber, e.g. "alice" (no password; only valid
// when the provider does not require authentication).
func (p *Provider) AddAccount(user string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.accounts[user+"@"+p.cfg.Domain] = accountInfo{exists: true}
}

// AddAccountWithPassword provisions a subscriber with digest credentials.
func (p *Provider) AddAccountWithPassword(user, password string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.accounts[user+"@"+p.cfg.Domain] = accountInfo{exists: true, password: password}
}

// Binding returns the current registered contact for an AOR.
func (p *Provider) Binding(aor string) (sip.Addr, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.bindings[aor]
	if !ok || p.clk.Now().After(b.expires) {
		return sip.Addr{}, false
	}
	return b.contact, true
}

// Stats returns a snapshot of the provider counters.
func (p *Provider) Stats() ProviderStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close shuts the provider down.
func (p *Provider) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.stack.Close()
}

func (p *Provider) onRequest(tx *sip.ServerTx) {
	req := tx.Request()
	switch req.Method {
	case sip.MethodRegister:
		p.handleRegister(tx)
	case sip.MethodAck:
		p.forward(tx, true)
	default:
		p.forward(tx, false)
	}
}

func (p *Provider) handleRegister(tx *sip.ServerTx) {
	req := tx.Request()
	aor := req.To.URI.AddressOfRecord()
	// In a sharded tier only the owner shard stores the binding; any other
	// shard relays the REGISTER there, so clients can register through any
	// front door without knowing the shard map.
	if sh := p.cfg.Shard; sh != nil {
		if owner := sh.Map.OwnerIndex(aor); owner >= 0 && owner != sh.Index {
			p.countShardForward()
			p.relay(tx, sh.Map.Addr(owner), false)
			return
		}
	}
	p.mu.Lock()
	acct := p.accounts[aor]
	p.stats.Registers++
	p.mu.Unlock()
	if !acct.exists {
		p.mu.Lock()
		p.stats.Rejected++
		p.mu.Unlock()
		_ = tx.RespondCode(sip.StatusNotFound, "Unknown account")
		return
	}
	if p.cfg.RequireAuth && !p.authorized(req, acct) {
		p.mu.Lock()
		nonce := p.nonces.Next()
		p.stats.Challenged++
		p.mu.Unlock()
		resp := sip.NewResponse(req, sip.StatusUnauthorized, "")
		resp.SetChallenge(&sip.DigestChallenge{Realm: p.cfg.Domain, Nonce: nonce})
		_ = tx.Respond(resp)
		return
	}
	if len(req.Contact) == 0 {
		_ = tx.RespondCode(sip.StatusBadRequest, "Missing Contact")
		return
	}
	contactURI := req.Contact[0].URI
	contact := sip.Addr{Node: netem.NodeID(contactURI.Host), Port: contactURI.PortOrDefault()}
	ttl := p.cfg.BindingTTL
	if req.Expires >= 0 {
		ttl = time.Duration(req.Expires) * time.Second
	}
	p.mu.Lock()
	if ttl == 0 {
		delete(p.bindings, aor)
	} else {
		p.bindings[aor] = binding{contact: contact, expires: p.clk.Now().Add(ttl)}
	}
	p.mu.Unlock()
	resp := sip.NewResponse(req, sip.StatusOK, "")
	resp.Contact = []*sip.NameAddr{req.Contact[0].Clone()}
	resp.Expires = int(ttl / time.Second)
	_ = tx.Respond(resp)
}

// authorized verifies digest credentials on a request against the account.
func (p *Provider) authorized(req *sip.Message, acct accountInfo) bool {
	creds, ok := req.Authorization()
	if !ok || creds.Realm != p.cfg.Domain {
		return false
	}
	p.mu.Lock()
	nonceOK := p.nonces.Use(creds.Nonce)
	p.mu.Unlock()
	if !nonceOK {
		return false
	}
	return creds.Verify(acct.password, req.Method)
}

// forward proxies a request toward its destination: a registered binding
// for our domain, or the endpoint named by the Request-URI.
func (p *Provider) forward(tx *sip.ServerTx, stateless bool) {
	req := tx.Request()
	if req.Method == sip.MethodInvite {
		p.mu.Lock()
		p.stats.Invites++
		p.mu.Unlock()
	}
	var dst sip.Addr
	uri := req.RequestURI
	if uri.Port != 0 {
		// Explicit endpoint address (in-dialog requests to contacts).
		dst = sip.Addr{Node: netem.NodeID(uri.Host), Port: uri.Port}
	} else if uri.Host == p.cfg.Domain {
		aor := uri.AddressOfRecord()
		// Sharded tier: the binding lives on the owner shard; relay there
		// statelessly (no binding replication between shards).
		if sh := p.cfg.Shard; sh != nil {
			if owner := sh.Map.OwnerIndex(aor); owner >= 0 && owner != sh.Index {
				p.countShardForward()
				p.relay(tx, sh.Map.Addr(owner), stateless)
				return
			}
		}
		b, ok := p.Binding(aor)
		if !ok {
			if !stateless {
				p.mu.Lock()
				p.stats.Rejected++
				p.mu.Unlock()
				_ = tx.RespondCode(sip.StatusTemporarilyUnavail, "No registered binding")
			}
			return
		}
		dst = b
	} else {
		// Another domain: forward to its proxy (DNS = host name).
		dst = sip.Addr{Node: netem.NodeID(uri.Host), Port: sip.DefaultPort}
	}
	p.relay(tx, dst, stateless)
}

func (p *Provider) countShardForward() {
	p.mu.Lock()
	p.stats.ShardForwards++
	p.mu.Unlock()
}

// relay forwards the transaction's request to dst and, for stateful relays,
// shuttles the downstream responses back up with our Via popped.
func (p *Provider) relay(tx *sip.ServerTx, dst sip.Addr, stateless bool) {
	req := tx.Request()
	fwd, err := sip.PrepareForward(req, p.stack.Addr())
	if err != nil {
		if !stateless {
			_ = tx.RespondCode(sip.StatusTooManyHops, "")
		}
		return
	}
	if stateless {
		_ = p.stack.Send(fwd, dst)
		return
	}
	ct, err := p.stack.SendRequest(fwd, dst)
	if err != nil {
		_ = tx.RespondCode(sip.StatusInternalError, "")
		return
	}
	p.mu.Lock()
	p.stats.Forwarded++
	p.mu.Unlock()
	for resp := range ct.Responses() {
		up := resp.Clone()
		if len(up.Via) > 0 {
			up.Via = up.Via[1:] // pop our Via
		}
		if len(up.Via) == 0 {
			continue
		}
		_ = tx.Respond(up)
		if resp.StatusCode >= 200 {
			return
		}
	}
}
