package internet

import (
	"fmt"
	"sync"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/sip"
)

// ShardMap is the consistent routing table of a sharded provider tier: it
// maps an AOR to the shard that owns its registrar state. Ownership is
// decided by highest-random-weight (rendezvous) hashing over the FNV-1a hash
// of the AOR (sip.HashAOR) and each live shard's host name, so a shard
// crashing or restarting only moves the AORs it owned — the other shards'
// bindings stay put, which is what makes crash rebalance cheap.
//
// The map is shared by every shard of one pool; SetLive flips membership and
// is safe against concurrent Owner lookups.
type ShardMap struct {
	domain string
	hosts  []string
	hash   []uint32 // precomputed FNV-1a of each host name

	mu   sync.RWMutex
	live []bool
}

// NewShardMap builds the map for a domain over the given shard proxy hosts,
// all initially live.
func NewShardMap(domain string, hosts []string) *ShardMap {
	m := &ShardMap{
		domain: domain,
		hosts:  append([]string(nil), hosts...),
		hash:   make([]uint32, len(hosts)),
		live:   make([]bool, len(hosts)),
	}
	for i, h := range m.hosts {
		m.hash[i] = sip.HashAOR(h)
		m.live[i] = true
	}
	return m
}

// Domain returns the SIP domain the shards serve.
func (m *ShardMap) Domain() string { return m.domain }

// Len returns the shard count (live or not).
func (m *ShardMap) Len() int { return len(m.hosts) }

// Host returns shard i's proxy host name.
func (m *ShardMap) Host(i int) string { return m.hosts[i] }

// Addr returns shard i's SIP transport address.
func (m *ShardMap) Addr(i int) sip.Addr {
	return sip.Addr{Node: netem.NodeID(m.hosts[i]), Port: sip.DefaultPort}
}

// SetLive marks shard i up or down, changing ownership for the AORs it owns.
func (m *ShardMap) SetLive(i int, up bool) {
	m.mu.Lock()
	m.live[i] = up
	m.mu.Unlock()
}

// Live lists the indices of live shards.
func (m *ShardMap) Live() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]int, 0, len(m.live))
	for i, up := range m.live {
		if up {
			out = append(out, i)
		}
	}
	return out
}

// mix finalizes a combined hash so rendezvous scores of nearby inputs spread
// (xorshift-multiply avalanche).
func mix(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	h *= 0x846ca68b
	h ^= h >> 16
	return h
}

// OwnerIndex returns the live shard owning aor, or -1 when no shard is live.
// Allocation-free: callers sit on the REGISTER/INVITE forwarding path.
func (m *ShardMap) OwnerIndex(aor string) int {
	h := sip.HashAOR(aor)
	m.mu.RLock()
	defer m.mu.RUnlock()
	best, bestScore := -1, uint32(0)
	for i, up := range m.live {
		if !up {
			continue
		}
		score := mix(h ^ m.hash[i])
		if best < 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// OwnerAddr resolves aor to its owner shard's address.
func (m *ShardMap) OwnerAddr(aor string) (sip.Addr, int, bool) {
	i := m.OwnerIndex(aor)
	if i < 0 {
		return sip.Addr{}, -1, false
	}
	return m.Addr(i), i, true
}

// FrontDoor returns the lowest-index live shard's address — the stable entry
// point DNS for the domain should resolve to. Any shard accepts any request
// and forwards it to the owner, so the front door needs no AOR awareness.
func (m *ShardMap) FrontDoor() (sip.Addr, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for i, up := range m.live {
		if up {
			return sip.Addr{Node: netem.NodeID(m.hosts[i]), Port: sip.DefaultPort}, true
		}
	}
	return sip.Addr{}, false
}

// ShardRole places a provider inside a sharded tier: the shared map plus the
// provider's own index in it.
type ShardRole struct {
	Map   *ShardMap
	Index int
}

// PoolConfig describes a sharded provider tier for one domain.
type PoolConfig struct {
	// Domain is the SIP domain the pool serves.
	Domain string
	// Shards is the number of registrar shards (default 1). Shard 0 runs on
	// the bare domain host (the DNS front door); extra shards run on
	// "s<i>.<domain>".
	Shards int
	// RequireAuth makes every shard challenge REGISTERs with digest auth.
	RequireAuth bool
	// SIP tunes each shard's transaction layer (default sip.SimConfig()).
	SIP sip.Config
	// Clock is the time source (default the system clock).
	Clock clock.Clock
	// BindingTTL is how long registrations stay valid (default 60s).
	BindingTTL time.Duration
}

// ProviderPool is the sharded provider tier: N registrar/proxy shards for one
// domain with consistent AOR routing between them. Accounts are provisioned
// on every shard (accounts are configuration), bindings live only on their
// owner shard (bindings are state) — so a shard crash loses exactly its own
// bindings and the next upstream re-REGISTER re-homes them.
type ProviderPool struct {
	inet *Internet
	cfg  PoolConfig
	smap *ShardMap

	mu        sync.Mutex
	providers []*Provider       // index-aligned with the map; nil = crashed
	accounts  map[string]string // user -> password ("" = no password)
	closed    bool
}

// PoolStats aggregates provider counters across the tier.
type PoolStats struct {
	PerShard []ProviderStats
	Total    ProviderStats
}

// NewProviderPool brings up every shard on the Internet.
func NewProviderPool(inet *Internet, cfg PoolConfig) (*ProviderPool, error) {
	if cfg.Domain == "" {
		return nil, fmt.Errorf("internet: provider pool needs a domain")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	hosts := make([]string, cfg.Shards)
	hosts[0] = cfg.Domain
	for i := 1; i < cfg.Shards; i++ {
		hosts[i] = fmt.Sprintf("s%d.%s", i, cfg.Domain)
	}
	p := &ProviderPool{
		inet:      inet,
		cfg:       cfg,
		smap:      NewShardMap(cfg.Domain, hosts),
		providers: make([]*Provider, cfg.Shards),
		accounts:  make(map[string]string),
	}
	for i := range hosts {
		prov, err := p.startShard(i)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.providers[i] = prov
	}
	return p, nil
}

func (p *ProviderPool) startShard(i int) (*Provider, error) {
	return NewProvider(p.inet, ProviderConfig{
		Domain:      p.cfg.Domain,
		ProxyHost:   p.smap.Host(i),
		RequireAuth: p.cfg.RequireAuth,
		SIP:         p.cfg.SIP,
		Clock:       p.cfg.Clock,
		BindingTTL:  p.cfg.BindingTTL,
		Shard:       &ShardRole{Map: p.smap, Index: i},
	})
}

// Domain returns the pool's SIP domain.
func (p *ProviderPool) Domain() string { return p.cfg.Domain }

// Map exposes the pool's shard map.
func (p *ProviderPool) Map() *ShardMap { return p.smap }

// Shards returns the shard count.
func (p *ProviderPool) Shards() int { return len(p.providers) }

// Shard returns shard i's provider (nil while crashed).
func (p *ProviderPool) Shard(i int) *Provider {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.providers[i]
}

// ProxyAddr returns the current front-door address: the lowest-index live
// shard. Wire it as the deployment's DNS answer for the domain so clients
// survive front-door crashes; any shard forwards to the binding's owner.
func (p *ProviderPool) ProxyAddr() sip.Addr {
	addr, _ := p.smap.FrontDoor()
	return addr
}

// AddAccount provisions a subscriber on every shard.
func (p *ProviderPool) AddAccount(user string) { p.AddAccountWithPassword(user, "") }

// AddAccountWithPassword provisions a subscriber with digest credentials on
// every shard, so ownership can move freely between shards.
func (p *ProviderPool) AddAccountWithPassword(user, password string) {
	p.mu.Lock()
	p.accounts[user] = password
	provs := append([]*Provider(nil), p.providers...)
	p.mu.Unlock()
	for _, prov := range provs {
		if prov == nil {
			continue
		}
		if password == "" {
			prov.AddAccount(user)
		} else {
			prov.AddAccountWithPassword(user, password)
		}
	}
}

// Owner returns the provider shard currently owning aor (nil when the whole
// tier is down).
func (p *ProviderPool) Owner(aor string) *Provider {
	i := p.smap.OwnerIndex(aor)
	if i < 0 {
		return nil
	}
	return p.Shard(i)
}

// Binding returns the registered contact for an AOR from its owner shard.
func (p *ProviderPool) Binding(aor string) (sip.Addr, bool) {
	prov := p.Owner(aor)
	if prov == nil {
		return sip.Addr{}, false
	}
	return prov.Binding(aor)
}

// CrashShard kills shard i: its provider stops, its host leaves the
// Internet, and ownership of its AORs moves to the surviving shards.
func (p *ProviderPool) CrashShard(i int) {
	p.mu.Lock()
	prov := p.providers[i]
	p.providers[i] = nil
	p.mu.Unlock()
	if prov == nil {
		return
	}
	p.smap.SetLive(i, false)
	prov.Close()
	p.inet.RemoveHost(netem.NodeID(p.smap.Host(i)))
}

// RestartShard brings a crashed shard back empty: accounts are re-provisioned
// from the pool, bindings rebuild as clients re-register.
func (p *ProviderPool) RestartShard(i int) error {
	p.mu.Lock()
	if p.providers[i] != nil {
		p.mu.Unlock()
		return fmt.Errorf("internet: shard %d already running", i)
	}
	p.mu.Unlock()
	prov, err := p.startShard(i)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.providers[i] = prov
	accounts := make(map[string]string, len(p.accounts))
	for u, pw := range p.accounts {
		accounts[u] = pw
	}
	p.mu.Unlock()
	for u, pw := range accounts {
		if pw == "" {
			prov.AddAccount(u)
		} else {
			prov.AddAccountWithPassword(u, pw)
		}
	}
	p.smap.SetLive(i, true)
	return nil
}

// Stats snapshots every live shard's counters plus the tier total. Crashed
// shards report zero.
func (p *ProviderPool) Stats() PoolStats {
	p.mu.Lock()
	provs := append([]*Provider(nil), p.providers...)
	p.mu.Unlock()
	s := PoolStats{PerShard: make([]ProviderStats, len(provs))}
	for i, prov := range provs {
		if prov == nil {
			continue
		}
		ps := prov.Stats()
		s.PerShard[i] = ps
		s.Total.Registers += ps.Registers
		s.Total.Invites += ps.Invites
		s.Total.Forwarded += ps.Forwarded
		s.Total.Rejected += ps.Rejected
		s.Total.Challenged += ps.Challenged
		s.Total.ShardForwards += ps.ShardForwards
	}
	return s
}

// Close shuts every shard down.
func (p *ProviderPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	provs := append([]*Provider(nil), p.providers...)
	for i := range p.providers {
		p.providers[i] = nil
	}
	p.mu.Unlock()
	for _, prov := range provs {
		if prov != nil {
			prov.Close()
		}
	}
}
