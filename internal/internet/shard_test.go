package internet

import (
	"fmt"
	"testing"
	"time"

	"siphoc/internal/sip"
)

func TestShardMapConsistentRebalance(t *testing.T) {
	m := NewShardMap("voicehoc.ch", []string{"voicehoc.ch", "s1.voicehoc.ch", "s2.voicehoc.ch", "s3.voicehoc.ch"})
	const users = 200
	before := make(map[string]int, users)
	perShard := make([]int, 4)
	for i := 0; i < users; i++ {
		aor := fmt.Sprintf("user%d@voicehoc.ch", i)
		o := m.OwnerIndex(aor)
		if o < 0 || o > 3 {
			t.Fatalf("owner(%s) = %d", aor, o)
		}
		before[aor] = o
		perShard[o]++
	}
	// Rendezvous hashing should spread the keyspace; no shard should be
	// starved or own nearly everything.
	for i, n := range perShard {
		if n < users/16 || n > users/2 {
			t.Fatalf("shard %d owns %d of %d AORs: %v", i, n, users, perShard)
		}
	}

	// Killing one shard must move only its own AORs.
	m.SetLive(2, false)
	for aor, was := range before {
		now := m.OwnerIndex(aor)
		if was == 2 {
			if now == 2 || now < 0 {
				t.Fatalf("%s still owned by dead shard (owner=%d)", aor, now)
			}
			continue
		}
		if now != was {
			t.Fatalf("%s moved %d -> %d though shard %d never died", aor, was, now, was)
		}
	}

	// Bringing it back restores the original assignment exactly.
	m.SetLive(2, true)
	for aor, was := range before {
		if now := m.OwnerIndex(aor); now != was {
			t.Fatalf("%s settled on %d after restart, originally %d", aor, now, was)
		}
	}
}

func TestShardMapFrontDoorFailover(t *testing.T) {
	m := NewShardMap("x.ch", []string{"x.ch", "s1.x.ch"})
	if fd, ok := m.FrontDoor(); !ok || fd.Node != "x.ch" {
		t.Fatalf("front door = %v %v", fd, ok)
	}
	m.SetLive(0, false)
	if fd, ok := m.FrontDoor(); !ok || fd.Node != "s1.x.ch" {
		t.Fatalf("front door after crash = %v %v", fd, ok)
	}
	m.SetLive(1, false)
	if _, ok := m.FrontDoor(); ok {
		t.Fatal("front door reported with the whole tier down")
	}
}

// shardedUser finds a user name whose AOR is owned by the wanted shard.
func shardedUser(t *testing.T, m *ShardMap, domain string, owner int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		user := fmt.Sprintf("u%d", i)
		if m.OwnerIndex(user+"@"+domain) == owner {
			return user
		}
	}
	t.Fatalf("no user hashes to shard %d", owner)
	return ""
}

func TestProviderPoolCrossShardRegisterAndInvite(t *testing.T) {
	inet := newInternet(t)
	pool, err := NewProviderPool(inet, PoolConfig{Domain: "voicehoc.ch", Shards: 3, BindingTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)

	// A user owned by a non-front-door shard, registered through the front
	// door: the REGISTER must be relayed to its owner.
	owner := 1
	user := shardedUser(t, pool.Map(), "voicehoc.ch", owner)
	aor := user + "@voicehoc.ch"
	pool.AddAccount(user)
	ua := uaStack(t, inet, "ua.net")
	ua.OnRequest(func(tx *sip.ServerTx) { _ = tx.RespondCode(sip.StatusOK, "") })
	tx, err := ua.SendRequest(registerReq(ua, user, "voicehoc.ch", ua.Addr(), 60), pool.ProxyAddr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusOK {
		t.Fatalf("register via front door = %d", resp.StatusCode)
	}
	if _, ok := pool.Shard(0).Binding(aor); ok {
		t.Fatal("front-door shard stored a binding it does not own")
	}
	if b, ok := pool.Shard(owner).Binding(aor); !ok || b.Node != "ua.net" {
		t.Fatalf("owner shard binding = %v %v", b, ok)
	}
	if b, ok := pool.Binding(aor); !ok || b.Node != "ua.net" {
		t.Fatalf("pool binding = %v %v", b, ok)
	}

	// An INVITE through a third shard is relayed owner-ward and reaches the
	// registered UA without any shard holding global state.
	caller := uaStack(t, inet, "caller.net")
	inv := sip.NewRequest(sip.MethodInvite, sip.MustParseURI("sip:"+aor))
	inv.From = &sip.NameAddr{URI: sip.MustParseURI("sip:caller@voicehoc.ch")}
	inv.From.SetTag("t")
	inv.To = &sip.NameAddr{URI: sip.MustParseURI("sip:" + aor)}
	inv.CallID = caller.NewCallID()
	inv.CSeq = sip.CSeq{Seq: 1, Method: sip.MethodInvite}
	other := (owner + 1) % pool.Shards()
	itx, err := caller.SendRequest(inv, pool.Map().Addr(other))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = itx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusOK {
		t.Fatalf("cross-shard invite = %d", resp.StatusCode)
	}
	if st := pool.Stats(); st.Total.ShardForwards < 2 {
		t.Fatalf("expected shard forwards for register+invite, stats = %+v", st)
	}
}

func TestProviderPoolCrashMovesOwnershipAndRestartRestoresIt(t *testing.T) {
	inet := newInternet(t)
	pool, err := NewProviderPool(inet, PoolConfig{Domain: "voicehoc.ch", Shards: 3, BindingTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)

	owner := 2
	user := shardedUser(t, pool.Map(), "voicehoc.ch", owner)
	aor := user + "@voicehoc.ch"
	pool.AddAccount(user)
	ua := uaStack(t, inet, "ua.net")
	register := func() int {
		t.Helper()
		tx, err := ua.SendRequest(registerReq(ua, user, "voicehoc.ch", ua.Addr(), 60), pool.ProxyAddr())
		if err != nil {
			t.Fatal(err)
		}
		resp, err := tx.Await()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode
	}
	if code := register(); code != sip.StatusOK {
		t.Fatalf("initial register = %d", code)
	}

	// Crash the owner: its bindings are gone and ownership moves to a
	// survivor; a fresh REGISTER re-homes the binding there.
	pool.CrashShard(owner)
	if _, ok := pool.Binding(aor); ok {
		t.Fatal("binding survived its shard's crash")
	}
	newOwner := pool.Map().OwnerIndex(aor)
	if newOwner == owner || newOwner < 0 {
		t.Fatalf("owner after crash = %d", newOwner)
	}
	if code := register(); code != sip.StatusOK {
		t.Fatalf("register after crash = %d", code)
	}
	if b, ok := pool.Shard(newOwner).Binding(aor); !ok || b.Node != "ua.net" {
		t.Fatalf("re-homed binding = %v %v", b, ok)
	}

	// Restart: ownership snaps back to the original shard (consistent
	// hashing), which starts empty until the next re-REGISTER.
	if err := pool.RestartShard(owner); err != nil {
		t.Fatal(err)
	}
	if got := pool.Map().OwnerIndex(aor); got != owner {
		t.Fatalf("owner after restart = %d, want %d", got, owner)
	}
	if _, ok := pool.Binding(aor); ok {
		t.Fatal("restarted shard reported a binding it never saw")
	}
	if code := register(); code != sip.StatusOK {
		t.Fatalf("register after restart = %d", code)
	}
	if b, ok := pool.Binding(aor); !ok || b.Node != "ua.net" {
		t.Fatalf("binding after restart = %v %v", b, ok)
	}
}
