package internet

import (
	"testing"
	"time"

	"siphoc/internal/netem"
	"siphoc/internal/sip"
)

func newInternet(t *testing.T) *Internet {
	t.Helper()
	inet := New(Config{Delay: 100 * time.Microsecond})
	t.Cleanup(inet.Close)
	return inet
}

func TestFullMeshConnectivity(t *testing.T) {
	inet := newInternet(t)
	a, err := inet.AddHost("a.example")
	if err != nil {
		t.Fatal(err)
	}
	b, err := inet.AddHost("b.example")
	if err != nil {
		t.Fatal(err)
	}
	ca, err := a.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Listen(2)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	defer cb.Close()
	if err := ca.WriteTo([]byte("hi"), "b.example", 2); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		dg, ok := cb.Recv()
		if !ok || string(dg.Data) != "hi" {
			t.Errorf("recv = %v %v", dg, ok)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("internet datagram never arrived")
	}
}

// uaStack builds a bare SIP stack on a fresh internet host.
func uaStack(t *testing.T, inet *Internet, name netem.NodeID) *sip.Stack {
	t.Helper()
	h, err := inet.AddHost(name)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := h.Listen(sip.DefaultPort)
	if err != nil {
		t.Fatal(err)
	}
	s := sip.NewStack(conn, sip.SimConfig())
	t.Cleanup(s.Close)
	return s
}

func registerReq(s *sip.Stack, user, domain string, contact sip.Addr, expires int) *sip.Message {
	req := sip.NewRequest(sip.MethodRegister, &sip.URI{Scheme: "sip", Host: domain})
	id := &sip.NameAddr{URI: &sip.URI{Scheme: "sip", User: user, Host: domain}}
	req.From = id.Clone()
	req.From.SetTag(s.NewTag())
	req.To = id
	req.CallID = s.NewCallID()
	req.CSeq = sip.CSeq{Seq: 1, Method: sip.MethodRegister}
	req.Contact = []*sip.NameAddr{{URI: &sip.URI{
		Scheme: "sip", User: user, Host: string(contact.Node), Port: contact.Port,
	}}}
	req.Expires = expires
	return req
}

func TestProviderRegistrar(t *testing.T) {
	inet := newInternet(t)
	prov, err := NewProvider(inet, ProviderConfig{Domain: "voicehoc.ch", BindingTTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(prov.Close)
	prov.AddAccount("alice")
	ua := uaStack(t, inet, "ua.alice.net")

	// Unknown account: rejected.
	tx, err := ua.SendRequest(registerReq(ua, "mallory", "voicehoc.ch", ua.Addr(), 60), prov.ProxyAddr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusNotFound {
		t.Fatalf("unknown account status = %d", resp.StatusCode)
	}

	// Known account: accepted, binding stored.
	tx, err = ua.SendRequest(registerReq(ua, "alice", "voicehoc.ch", ua.Addr(), 60), prov.ProxyAddr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err = tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusOK {
		t.Fatalf("register status = %d", resp.StatusCode)
	}
	b, ok := prov.Binding("alice@voicehoc.ch")
	if !ok || b.Node != "ua.alice.net" {
		t.Fatalf("binding = %+v %v", b, ok)
	}

	// Expires: 0 removes the binding.
	tx, err = ua.SendRequest(registerReq(ua, "alice", "voicehoc.ch", ua.Addr(), 0), prov.ProxyAddr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Await(); err != nil {
		t.Fatal(err)
	}
	if _, ok := prov.Binding("alice@voicehoc.ch"); ok {
		t.Fatal("binding survived Expires: 0")
	}
	if prov.Stats().Registers != 3 {
		t.Fatalf("stats = %+v", prov.Stats())
	}
}

func TestProviderBindingExpiry(t *testing.T) {
	inet := newInternet(t)
	prov, err := NewProvider(inet, ProviderConfig{Domain: "x.ch", BindingTTL: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(prov.Close)
	prov.AddAccount("alice")
	ua := uaStack(t, inet, "ua.net")
	req := registerReq(ua, "alice", "x.ch", ua.Addr(), -1) // -1: no Expires header, use TTL default
	req.Expires = -1
	tx, err := ua.SendRequest(req, prov.ProxyAddr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Await(); err != nil {
		t.Fatal(err)
	}
	if _, ok := prov.Binding("alice@x.ch"); !ok {
		t.Fatal("binding missing right after register")
	}
	time.Sleep(100 * time.Millisecond)
	if _, ok := prov.Binding("alice@x.ch"); ok {
		t.Fatal("binding survived its TTL")
	}
}

func TestProviderForwardsInviteToBinding(t *testing.T) {
	inet := newInternet(t)
	prov, err := NewProvider(inet, ProviderConfig{Domain: "voicehoc.ch"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(prov.Close)
	prov.AddAccount("bob")
	bob := uaStack(t, inet, "ua.bob.net")
	bob.OnRequest(func(tx *sip.ServerTx) {
		_ = tx.RespondCode(sip.StatusOK, "")
	})
	tx, err := bob.SendRequest(registerReq(bob, "bob", "voicehoc.ch", bob.Addr(), 60), prov.ProxyAddr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Await(); err != nil {
		t.Fatal(err)
	}

	alice := uaStack(t, inet, "ua.alice.net")
	inv := sip.NewRequest(sip.MethodInvite, sip.MustParseURI("sip:bob@voicehoc.ch"))
	inv.From = &sip.NameAddr{URI: sip.MustParseURI("sip:alice@voicehoc.ch")}
	inv.From.SetTag("t")
	inv.To = &sip.NameAddr{URI: sip.MustParseURI("sip:bob@voicehoc.ch")}
	inv.CallID = alice.NewCallID()
	inv.CSeq = sip.CSeq{Seq: 1, Method: sip.MethodInvite}
	itx, err := alice.SendRequest(inv, prov.ProxyAddr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := itx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusOK {
		t.Fatalf("invite status = %d", resp.StatusCode)
	}
	if prov.Stats().Forwarded == 0 {
		t.Fatalf("stats = %+v", prov.Stats())
	}
}

func TestProviderInviteWithoutBindingIs480(t *testing.T) {
	inet := newInternet(t)
	prov, err := NewProvider(inet, ProviderConfig{Domain: "voicehoc.ch"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(prov.Close)
	prov.AddAccount("bob")
	alice := uaStack(t, inet, "ua.alice.net")
	inv := sip.NewRequest(sip.MethodInvite, sip.MustParseURI("sip:bob@voicehoc.ch"))
	inv.From = &sip.NameAddr{URI: sip.MustParseURI("sip:alice@voicehoc.ch")}
	inv.From.SetTag("t")
	inv.To = &sip.NameAddr{URI: sip.MustParseURI("sip:bob@voicehoc.ch")}
	inv.CallID = alice.NewCallID()
	inv.CSeq = sip.CSeq{Seq: 1, Method: sip.MethodInvite}
	itx, err := alice.SendRequest(inv, prov.ProxyAddr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := itx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusTemporarilyUnavail {
		t.Fatalf("status = %d, want 480", resp.StatusCode)
	}
}

func TestOutboundProxyProviderHasSilentDomainNode(t *testing.T) {
	inet := newInternet(t)
	prov, err := NewProvider(inet, ProviderConfig{Domain: "polyphone.ethz.ch", ProxyHost: "sipgate.ethz.ch"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(prov.Close)
	if !prov.RequiresOutboundProxy() {
		t.Fatal("RequiresOutboundProxy = false")
	}
	// The domain node exists (DNS resolves) but runs no SIP service, so a
	// REGISTER sent there times out — the paper's failure mode.
	ua := uaStack(t, inet, "ua.net")
	prov.AddAccount("alice")
	tx, err := ua.SendRequest(registerReq(ua, "alice", "polyphone.ethz.ch", ua.Addr(), 60),
		sip.Addr{Node: "polyphone.ethz.ch", Port: sip.DefaultPort})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408 timeout", resp.StatusCode)
	}
	// Sending to the real proxy host works.
	tx, err = ua.SendRequest(registerReq(ua, "alice", "polyphone.ethz.ch", ua.Addr(), 60), prov.ProxyAddr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err = tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusOK {
		t.Fatalf("status via outbound proxy = %d", resp.StatusCode)
	}
}
