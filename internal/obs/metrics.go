// Package obs is the unified observability layer of the SIPHoc stack: a
// lightweight, allocation-lean metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms) plus a span-based trace recorder that
// follows a call end-to-end through every component — phone, proxy, MANET
// SLP, routing, gateway tunnel and RTP — stitched by SIP Call-ID.
//
// The package is designed around two invariants:
//
//   - Disabled means free. A nil *Observer is the disabled mode; every
//     method on it (and on the nil metric handles it hands out) is a no-op
//     guarded by a single inlineable nil check, so instrumented hot paths
//     pay nothing measurable when observability is off.
//   - Enabled means cheap. Metric handles are resolved once at component
//     construction and updated with single atomic adds; spans are a mutex
//     hit plus one small struct append, and are only recorded on the call
//     signalling path, never per frame.
//
// The measurement model mirrors the paper's evaluation (Figures 4–7): call
// setup delay decomposed into SLP resolution, routing discovery, SIP
// transaction and gateway attach phases.
package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil Counter (handed out
// by a disabled Observer) discards updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for the nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The nil Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for the nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets spans the latencies seen across the stack: from the
// sub-millisecond per-hop radio delay up to multi-second discovery timeouts.
var DefaultLatencyBuckets = []time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. Buckets hold observations
// less than or equal to their bound; observations above the last bound land
// in an implicit +Inf bucket. The nil Histogram discards updates.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Int64   // nanoseconds
	n      atomic.Int64
}

func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small and the slice is cache-resident,
	// which beats binary search at these sizes.
	i := 0
	for ; i < len(h.bounds); i++ {
		if d <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// Count returns the number of samples (0 for the nil Histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Snapshot captures the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.n.Load(),
		Sum:     time.Duration(h.sum.Load()),
		Buckets: make([]BucketCount, len(h.counts)),
	}
	for i := range h.counts {
		b := BucketCount{Count: h.counts[i].Load()}
		if i < len(h.bounds) {
			b.LE = h.bounds[i]
		} else {
			b.LE = -1 // +Inf
		}
		s.Buckets[i] = b
	}
	return s
}

// BucketCount is one histogram bucket: the count of samples ≤ LE. LE == -1
// marks the +Inf bucket.
type BucketCount struct {
	LE    time.Duration `json:"le"`
	Count int64         `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     time.Duration `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the average sample, or 0 with no samples.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) by linear interpolation
// within the bucket containing the target rank. Samples landing in the +Inf
// bucket are reported as the last finite bound — the histogram cannot say
// more — so tail quantiles saturate there. Returns 0 with no samples.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	var lower time.Duration
	for _, b := range s.Buckets {
		if b.Count > 0 && float64(cum)+float64(b.Count) >= rank {
			if b.LE < 0 {
				return lower // +Inf bucket: clamp to the last finite bound
			}
			frac := (rank - float64(cum)) / float64(b.Count)
			return lower + time.Duration(frac*float64(b.LE-lower))
		}
		cum += b.Count
		if b.LE >= 0 {
			lower = b.LE
		}
	}
	return lower
}

// Registry names and owns metrics. Handles are created on first use and
// shared by name, so independent components accumulate into one metric when
// they register the same name.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds (DefaultLatencyBuckets when nil) if needed.
func (r *Registry) Histogram(name string, bounds []time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// RegistrySnapshot is a stable, JSON-serialisable copy of every metric.
// Map keys marshal in sorted order, so successive snapshots diff cleanly.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures all metrics at once. A nil registry yields the zero
// snapshot.
func (r *Registry) Snapshot() RegistrySnapshot {
	if r == nil {
		return RegistrySnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RegistrySnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// JSON renders the snapshot as indented JSON.
func (s RegistrySnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// CounterNames returns the counter names in sorted order, for deterministic
// iteration in reports.
func (s RegistrySnapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
