package obs

import (
	"time"

	"siphoc/internal/clock"
)

// Observer bundles the metrics registry and the call tracer behind one
// nil-safe handle. A nil *Observer is the disabled mode: every method no-ops
// (returning nil metric handles, zero span handles and empty traces), so
// components hold a plain *Observer field and instrument unconditionally.
type Observer struct {
	clk    clock.Clock
	reg    *Registry
	tracer *Tracer
}

// New returns an enabled Observer. A nil clk falls back to the wall clock;
// scenarios pass their scaled simulation clock so span timestamps line up
// with call timestamps.
func New(clk clock.Clock) *Observer {
	if clk == nil {
		clk = clock.New()
	}
	return &Observer{clk: clk, reg: NewRegistry(), tracer: NewTracer()}
}

// Enabled reports whether the observer records anything.
func (o *Observer) Enabled() bool { return o != nil }

// Counter returns the named counter (nil when disabled — still safe to use).
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(name)
}

// Gauge returns the named gauge (nil when disabled).
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge(name)
}

// Histogram returns the named histogram (nil when disabled). Nil bounds use
// DefaultLatencyBuckets.
func (o *Observer) Histogram(name string, bounds []time.Duration) *Histogram {
	if o == nil {
		return nil
	}
	return o.reg.Histogram(name, bounds)
}

// Snapshot captures all metrics. The zero snapshot when disabled.
func (o *Observer) Snapshot() RegistrySnapshot {
	if o == nil {
		return RegistrySnapshot{}
	}
	return o.reg.Snapshot()
}

// Now returns the observer's clock reading, or the zero time when disabled.
func (o *Observer) Now() time.Time {
	if o == nil {
		return time.Time{}
	}
	return o.clk.Now()
}

// StartSpan opens a span. callID may be empty for node-scoped spans (route
// discovery, gateway attach); those are stitched into call traces by time
// overlap. The returned handle is a value: the zero handle (from a disabled
// observer) no-ops on End.
func (o *Observer) StartSpan(callID, phase, node string) SpanHandle {
	if o == nil {
		return SpanHandle{}
	}
	return SpanHandle{o: o, callID: callID, phase: phase, node: node, start: o.clk.Now()}
}

// RecordSpan records an already-timed span directly.
func (o *Observer) RecordSpan(s Span) {
	if o == nil {
		return
	}
	o.tracer.record(s)
}

// Event records a point-in-time annotation on a call. No-op when disabled or
// when callID is empty.
func (o *Observer) Event(callID, name, node, detail string) {
	if o == nil {
		return
	}
	o.tracer.event(Event{CallID: callID, Name: name, Node: node, Detail: detail, At: o.clk.Now()})
}

// Trace assembles the stitched timeline for one call. Never nil: a disabled
// observer (or an unknown call) yields an empty trace.
func (o *Observer) Trace(callID string) *CallTrace {
	if o == nil {
		return &CallTrace{CallID: callID}
	}
	return o.tracer.trace(callID)
}

// SpanHandle is an open span. End it exactly once; extra Ends and the zero
// handle are no-ops.
type SpanHandle struct {
	o      *Observer
	callID string
	phase  string
	node   string
	start  time.Time
}

// Active reports whether the handle records anything on End.
func (h SpanHandle) Active() bool { return h.o != nil }

// End closes the span with an optional detail annotation.
func (h SpanHandle) End(detail string) {
	if h.o == nil {
		return
	}
	h.o.tracer.record(Span{
		CallID: h.callID,
		Phase:  h.phase,
		Node:   h.node,
		Detail: detail,
		Start:  h.start,
		End:    h.o.clk.Now(),
	})
}

// EndAt closes the span at an explicit end time (for spans whose boundary is
// observed on another goroutine's timestamp).
func (h SpanHandle) EndAt(end time.Time, detail string) {
	if h.o == nil {
		return
	}
	h.o.tracer.record(Span{
		CallID: h.callID,
		Phase:  h.phase,
		Node:   h.node,
		Detail: detail,
		Start:  h.start,
		End:    end,
	})
}
