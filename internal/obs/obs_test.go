package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"siphoc/internal/clock"
)

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	o.Counter("x").Inc()
	o.Counter("x").Add(5)
	o.Gauge("g").Set(3)
	o.Histogram("h", nil).Observe(time.Millisecond)
	h := o.StartSpan("c1", PhaseSetup, "n1")
	if h.Active() {
		t.Fatal("zero span handle reports active")
	}
	h.End("done")
	o.Event("c1", "ev", "n1", "")
	if got := o.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	tr := o.Trace("c1")
	if tr == nil || !tr.Empty() {
		t.Fatalf("nil observer trace = %+v", tr)
	}
	if s := o.Snapshot(); len(s.Counters) != 0 {
		t.Fatalf("nil observer snapshot non-empty: %+v", s)
	}
}

func TestRegistrySharedHandlesAndSnapshot(t *testing.T) {
	o := New(nil)
	a := o.Counter("sip.invites")
	b := o.Counter("sip.invites")
	if a != b {
		t.Fatal("same name resolved to different counters")
	}
	a.Inc()
	b.Add(2)
	o.Gauge("tunnels.active").Set(4)
	h := o.Histogram("setup.delay", nil)
	h.Observe(2 * time.Millisecond)
	h.Observe(200 * time.Millisecond)
	h.Observe(time.Minute) // lands in +Inf

	s := o.Snapshot()
	if s.Counters["sip.invites"] != 3 {
		t.Fatalf("counter = %d, want 3", s.Counters["sip.invites"])
	}
	if s.Gauges["tunnels.active"] != 4 {
		t.Fatalf("gauge = %d, want 4", s.Gauges["tunnels.active"])
	}
	hs := s.Histograms["setup.delay"]
	if hs.Count != 3 {
		t.Fatalf("histogram count = %d, want 3", hs.Count)
	}
	if got := hs.Buckets[len(hs.Buckets)-1]; got.LE != -1 || got.Count != 1 {
		t.Fatalf("+Inf bucket = %+v", got)
	}
	var total int64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != hs.Count {
		t.Fatalf("bucket counts sum %d != count %d", total, hs.Count)
	}
	raw, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back RegistrySnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["sip.invites"] != 3 {
		t.Fatalf("round-tripped counter = %d", back.Counters["sip.invites"])
	}
}

func TestHistogramMean(t *testing.T) {
	var hs HistogramSnapshot
	if hs.Mean() != 0 {
		t.Fatal("empty mean not zero")
	}
	h := newHistogram(nil)
	h.Observe(10 * time.Millisecond)
	h.Observe(20 * time.Millisecond)
	if got := h.Snapshot().Mean(); got != 15*time.Millisecond {
		t.Fatalf("mean = %v", got)
	}
}

func at(base time.Time, off time.Duration) time.Time { return base.Add(off) }

func TestSetupBreakdownTilesWindowExactly(t *testing.T) {
	base := time.Unix(1000, 0)
	o := New(clock.NewFake(base))
	// Setup window 0..100ms; SLP resolve 10..30ms; route discovery 5..40ms
	// (overlaps SLP — SLP wins the 10..30 segment); gateway attach finished
	// before the window (lookback attribution).
	o.RecordSpan(Span{CallID: "c", Phase: PhaseSetup, Node: "a", Start: base, End: at(base, 100*time.Millisecond)})
	o.RecordSpan(Span{CallID: "c", Phase: PhaseSLPResolve, Node: "a", Start: at(base, 10*time.Millisecond), End: at(base, 30*time.Millisecond)})
	o.RecordSpan(Span{Phase: PhaseRouteDiscovery, Node: "a", Start: at(base, 5*time.Millisecond), End: at(base, 40*time.Millisecond)})
	o.RecordSpan(Span{Phase: PhaseGatewayAttach, Node: "a", Start: at(base, -5*time.Second), End: at(base, -4*time.Second)})
	o.RecordSpan(Span{CallID: "c", Phase: PhaseMediaStart, Node: "b", Start: at(base, 100*time.Millisecond), End: at(base, 120*time.Millisecond)})

	tr := o.Trace("c")
	if tr.Empty() {
		t.Fatal("trace empty")
	}
	if got := tr.SetupDuration(); got != 100*time.Millisecond {
		t.Fatalf("setup duration = %v", got)
	}
	want := map[string]time.Duration{
		PhaseSLPResolve:     20 * time.Millisecond,
		PhaseRouteDiscovery: 15 * time.Millisecond, // 5..10 + 30..40
		PhaseSIPTransaction: 65 * time.Millisecond, // remainder
	}
	bd := tr.SetupBreakdown()
	var sum time.Duration
	for _, pd := range bd {
		sum += pd.Duration
		if w, ok := want[pd.Phase]; !ok || w != pd.Duration {
			t.Fatalf("phase %s = %v, want %v", pd.Phase, pd.Duration, want[pd.Phase])
		}
	}
	if sum != tr.SetupDuration() {
		t.Fatalf("breakdown sum %v != setup %v", sum, tr.SetupDuration())
	}
	// The pre-window gateway attach is stitched in as a span but must not
	// consume setup-window time.
	if tr.Phase(PhaseGatewayAttach) != time.Second {
		t.Fatalf("gateway attach raw duration = %v", tr.Phase(PhaseGatewayAttach))
	}
	phases := tr.Phases()
	if got := phases[len(phases)-1]; got.Phase != PhaseMediaStart || got.Duration != 20*time.Millisecond {
		t.Fatalf("media phase = %+v", got)
	}
	if tr.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestTraceStitchesOnlyOverlappingNodeSpans(t *testing.T) {
	base := time.Unix(2000, 0)
	o := New(clock.NewFake(base))
	o.RecordSpan(Span{CallID: "c", Phase: PhaseSetup, Node: "a", Start: base, End: at(base, 50*time.Millisecond)})
	// A discovery from a much earlier, unrelated call: outside the window,
	// not a gateway attach — must not appear.
	o.RecordSpan(Span{Phase: PhaseRouteDiscovery, Node: "a", Start: at(base, -10*time.Second), End: at(base, -9*time.Second)})
	tr := o.Trace("c")
	if got := tr.Phase(PhaseRouteDiscovery); got != 0 {
		t.Fatalf("stale discovery stitched in: %v", got)
	}
	start, end, ok := tr.Window()
	if !ok || start != base || end != at(base, 50*time.Millisecond) {
		t.Fatalf("window = %v..%v ok=%v", start, end, ok)
	}
}

func TestSpanHandleUsesClock(t *testing.T) {
	clk := clock.NewFake(time.Unix(3000, 0))
	o := New(clk)
	h := o.StartSpan("c9", PhaseSLPResolve, "n")
	clk.Advance(7 * time.Millisecond)
	h.End("cache-miss")
	tr := o.Trace("c9")
	if got := tr.Phase(PhaseSLPResolve); got != 7*time.Millisecond {
		t.Fatalf("span duration = %v", got)
	}
	if tr.Spans[0].Detail != "cache-miss" {
		t.Fatalf("detail = %q", tr.Spans[0].Detail)
	}
}

func TestTracerBoundsAndEviction(t *testing.T) {
	base := time.Unix(4000, 0)
	o := New(clock.NewFake(base))
	for i := 0; i < maxTracedCalls+10; i++ {
		id := callIDn(i)
		o.RecordSpan(Span{CallID: id, Phase: PhaseSetup, Node: "n", Start: base, End: at(base, time.Millisecond)})
	}
	if !o.Trace(callIDn(0)).Empty() {
		t.Fatal("oldest call not evicted")
	}
	if o.Trace(callIDn(maxTracedCalls + 9)).Empty() {
		t.Fatal("newest call missing")
	}
}

func callIDn(i int) string {
	const digits = "0123456789"
	if i == 0 {
		return "call-0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{digits[i%10]}, b...)
		i /= 10
	}
	return "call-" + string(b)
}

func TestConcurrentRecording(t *testing.T) {
	o := New(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := o.Counter("shared")
			for i := 0; i < 1000; i++ {
				c.Inc()
				o.Histogram("lat", nil).Observe(time.Duration(i) * time.Microsecond)
				h := o.StartSpan("concurrent-call", PhaseSIPLeg, "n")
				h.End("")
			}
		}()
	}
	wg.Wait()
	if got := o.Counter("shared").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := o.Histogram("lat", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewRegistry().Histogram("q", []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
	})
	// 8 samples in (0,10], 2 samples in (10,20].
	for range 8 {
		h.Observe(5 * time.Millisecond)
	}
	for range 2 {
		h.Observe(15 * time.Millisecond)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 6250*time.Microsecond {
		t.Fatalf("p50 = %v, want 6.25ms (interpolated within first bucket)", got)
	}
	if got := s.Quantile(0.9); got != 15*time.Millisecond {
		t.Fatalf("p90 = %v, want 15ms (rank 9 is halfway into the 2-sample bucket)", got)
	}
	if got := s.Quantile(1); got != 20*time.Millisecond {
		t.Fatalf("p100 = %v, want 20ms", got)
	}
	// Samples beyond the last finite bound clamp there.
	h.Observe(time.Hour)
	if got := h.Snapshot().Quantile(1); got != 40*time.Millisecond {
		t.Fatalf("overflow quantile = %v, want clamp to 40ms", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}
