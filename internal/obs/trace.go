package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase names of the call-setup taxonomy (DESIGN.md §8). Call-scoped spans
// carry the SIP Call-ID; node-scoped spans (route discovery, gateway attach)
// carry an empty Call-ID and are stitched into a call's trace by time
// overlap with its setup window.
const (
	// PhaseSetup is the anchor span of an outgoing call: Dial() to the
	// dialog confirming (200 OK + ACK). Its extent is the setup window all
	// other phases are tiled into.
	PhaseSetup = "call.setup"
	// PhaseSLPResolve covers the proxy resolving the callee to a next-hop
	// address: registrar lookup, MANET SLP query (cache hit or epidemic
	// round trip) or Internet DNS fallback.
	PhaseSLPResolve = "slp.resolve"
	// PhaseRouteDiscovery covers a reactive route discovery (AODV RREQ
	// flood) or a proactive route wait (OLSR). Node-scoped.
	PhaseRouteDiscovery = "route.discovery"
	// PhaseGatewayAttach covers the Connection Provider opening its
	// layer-2 tunnel to a gateway. Node-scoped.
	PhaseGatewayAttach = "gateway.attach"
	// PhaseSIPTransaction is the SIP signalling remainder of the setup
	// window: transaction transit, retransmissions, ringing and answer.
	PhaseSIPTransaction = "sip.transaction"
	// PhaseSIPLeg is one hop-by-hop client transaction leg (UA→proxy,
	// proxy→proxy, proxy→UA), annotated with its retransmit count. Legs
	// overlap the other phases and are reported alongside, not summed.
	PhaseSIPLeg = "sip.leg"
	// PhaseMediaStart runs from the dialog confirming to the first RTP
	// packet received — the media-path warm-up after signalling.
	PhaseMediaStart = "media.start"
	// PhaseFault marks an injected fault (link cut, partition, node crash,
	// gateway churn). Node-scoped and instantaneous: it annotates call
	// timelines without participating in the setup-window tiling.
	PhaseFault = "fault.inject"
)

// Span is one timed operation attributed to a call (CallID set) or to a node
// (CallID empty).
type Span struct {
	CallID string    `json:"call_id,omitempty"`
	Phase  string    `json:"phase"`
	Node   string    `json:"node"`
	Detail string    `json:"detail,omitempty"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
}

// Duration returns the span extent.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Event is a point-in-time annotation attributed to a call.
type Event struct {
	CallID string    `json:"call_id,omitempty"`
	Name   string    `json:"name"`
	Node   string    `json:"node"`
	Detail string    `json:"detail,omitempty"`
	At     time.Time `json:"at"`
}

// Bounds keeping the tracer's memory finite on long-running deployments.
const (
	maxTracedCalls   = 1024 // oldest call evicted beyond this
	maxSpansPerCall  = 128  // further spans on one call are dropped
	maxNodeSpans     = 4096 // node-scoped spans kept, ring-buffer style
	maxEventsPerCall = 128
)

type callRecord struct {
	spans  []Span
	events []Event
}

// Tracer records spans and events. All methods are safe for concurrent use.
type Tracer struct {
	mu        sync.Mutex
	calls     map[string]*callRecord
	order     []string // call eviction order (insertion)
	nodeSpans []Span   // completed node-scoped spans
	nodeHead  int      // ring index into nodeSpans once full
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{calls: make(map[string]*callRecord)}
}

func (t *Tracer) record(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.CallID == "" {
		if len(t.nodeSpans) < maxNodeSpans {
			t.nodeSpans = append(t.nodeSpans, s)
		} else {
			t.nodeSpans[t.nodeHead] = s
			t.nodeHead = (t.nodeHead + 1) % maxNodeSpans
		}
		return
	}
	rec := t.callLocked(s.CallID)
	if len(rec.spans) < maxSpansPerCall {
		rec.spans = append(rec.spans, s)
	}
}

func (t *Tracer) event(e Event) {
	if e.CallID == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := t.callLocked(e.CallID)
	if len(rec.events) < maxEventsPerCall {
		rec.events = append(rec.events, e)
	}
}

// callLocked fetches or creates the record for a call, evicting the oldest
// call when the table is full.
func (t *Tracer) callLocked(callID string) *callRecord {
	rec, ok := t.calls[callID]
	if !ok {
		if len(t.order) >= maxTracedCalls {
			delete(t.calls, t.order[0])
			t.order = t.order[1:]
		}
		rec = &callRecord{}
		t.calls[callID] = rec
		t.order = append(t.order, callID)
	}
	return rec
}

// gatewayAttachLookback bounds how far before the setup window a completed
// gateway attach is still attributed to a call's trace: attachment usually
// happens once, ahead of any call, but remains the reason the call could
// leave the MANET at all.
const gatewayAttachLookback = 30 * time.Second

// trace assembles the stitched view of one call.
func (t *Tracer) trace(callID string) *CallTrace {
	t.mu.Lock()
	rec := t.calls[callID]
	var spans []Span
	var events []Event
	if rec != nil {
		spans = append(spans, rec.spans...)
		events = append(events, rec.events...)
	}
	nodeSpans := append([]Span(nil), t.nodeSpans...)
	t.mu.Unlock()
	if len(spans) == 0 && len(events) == 0 {
		return &CallTrace{CallID: callID}
	}

	// The setup window: the call.setup anchor span when present, otherwise
	// the extent of all call-scoped spans.
	var winStart, winEnd time.Time
	for _, s := range spans {
		if s.Phase == PhaseSetup {
			winStart, winEnd = s.Start, s.End
			break
		}
	}
	if winStart.IsZero() {
		for _, s := range spans {
			if winStart.IsZero() || s.Start.Before(winStart) {
				winStart = s.Start
			}
			if s.End.After(winEnd) {
				winEnd = s.End
			}
		}
	}

	// Stitch in node-scoped spans that overlap the window; a completed
	// gateway attach shortly before the window also counts (see
	// gatewayAttachLookback).
	for _, s := range nodeSpans {
		overlaps := s.Start.Before(winEnd) && s.End.After(winStart)
		recentAttach := s.Phase == PhaseGatewayAttach &&
			!s.End.After(winEnd) && s.End.After(winStart.Add(-gatewayAttachLookback))
		if overlaps || recentAttach {
			spans = append(spans, s)
		}
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	sort.SliceStable(events, func(i, j int) bool { return events[i].At.Before(events[j].At) })
	return &CallTrace{CallID: callID, Spans: spans, Events: events, winStart: winStart, winEnd: winEnd}
}

// CallTrace is the per-call timeline: every span and event attributed to one
// Call-ID, plus the node-scoped infrastructure spans stitched in by overlap.
type CallTrace struct {
	CallID string  `json:"call_id"`
	Spans  []Span  `json:"spans,omitempty"`
	Events []Event `json:"events,omitempty"`

	winStart, winEnd time.Time
}

// Empty reports whether nothing was recorded for the call.
func (ct *CallTrace) Empty() bool { return ct == nil || len(ct.Spans) == 0 }

// Window returns the setup window (Dial to dialog confirmation).
func (ct *CallTrace) Window() (start, end time.Time, ok bool) {
	if ct == nil || ct.winStart.IsZero() {
		return time.Time{}, time.Time{}, false
	}
	return ct.winStart, ct.winEnd, true
}

// SetupDuration returns the extent of the setup window.
func (ct *CallTrace) SetupDuration() time.Duration {
	if ct == nil || ct.winStart.IsZero() {
		return 0
	}
	return ct.winEnd.Sub(ct.winStart)
}

// PhaseDuration is one row of a phase breakdown.
type PhaseDuration struct {
	Phase    string        `json:"phase"`
	Duration time.Duration `json:"duration"`
}

// setupPhasePriority orders the measured (non-remainder) phases for window
// tiling: when measured spans overlap in time, the segment is attributed to
// the highest-priority phase so the breakdown never double-counts.
var setupPhasePriority = map[string]int{
	PhaseSLPResolve:     3,
	PhaseGatewayAttach:  2,
	PhaseRouteDiscovery: 1,
}

// SetupBreakdown tiles the setup window into exclusive phase durations: the
// measured infrastructure phases (SLP resolution, route discovery, gateway
// attach — clipped to the window, overlap resolved by priority) and the SIP
// transaction remainder. The durations sum to SetupDuration exactly, which
// is what makes the breakdown an honest decomposition of "where did the
// setup latency go".
func (ct *CallTrace) SetupBreakdown() []PhaseDuration {
	if ct == nil || ct.winStart.IsZero() || !ct.winEnd.After(ct.winStart) {
		return nil
	}
	type edge struct {
		at   time.Time
		prio int
		open bool
	}
	var edges []edge
	for _, s := range ct.Spans {
		prio, measured := setupPhasePriority[s.Phase]
		if !measured {
			continue
		}
		start, end := s.Start, s.End
		if start.Before(ct.winStart) {
			start = ct.winStart
		}
		if end.After(ct.winEnd) {
			end = ct.winEnd
		}
		if !end.After(start) {
			continue
		}
		edges = append(edges, edge{at: start, prio: prio, open: true}, edge{at: end, prio: prio, open: false})
	}
	totals := map[string]time.Duration{}
	if len(edges) > 0 {
		sort.Slice(edges, func(i, j int) bool { return edges[i].at.Before(edges[j].at) })
		// Sweep the window, attributing each elementary segment to the
		// highest-priority phase open over it.
		depth := map[int]int{}
		prev := ct.winStart
		phaseFor := func() string {
			for _, ph := range []string{PhaseSLPResolve, PhaseGatewayAttach, PhaseRouteDiscovery} {
				if depth[setupPhasePriority[ph]] > 0 {
					return ph
				}
			}
			return PhaseSIPTransaction
		}
		for _, e := range edges {
			if e.at.After(prev) {
				totals[phaseFor()] += e.at.Sub(prev)
				prev = e.at
			}
			if e.open {
				depth[e.prio]++
			} else {
				depth[e.prio]--
			}
		}
		if ct.winEnd.After(prev) {
			totals[phaseFor()] += ct.winEnd.Sub(prev)
		}
	} else {
		totals[PhaseSIPTransaction] = ct.winEnd.Sub(ct.winStart)
	}
	var out []PhaseDuration
	for _, ph := range []string{PhaseSLPResolve, PhaseRouteDiscovery, PhaseGatewayAttach, PhaseSIPTransaction} {
		if d, ok := totals[ph]; ok && d > 0 {
			out = append(out, PhaseDuration{Phase: ph, Duration: d})
		}
	}
	return out
}

// Phases returns the full phase view of the timeline: the exclusive setup
// breakdown plus the post-setup phases (media start) aggregated from their
// spans. SIP transaction legs overlap the setup phases by construction and
// are reported via Spans, not here.
func (ct *CallTrace) Phases() []PhaseDuration {
	out := ct.SetupBreakdown()
	if ct == nil {
		return out
	}
	var media time.Duration
	for _, s := range ct.Spans {
		if s.Phase == PhaseMediaStart {
			media += s.Duration()
		}
	}
	if media > 0 {
		out = append(out, PhaseDuration{Phase: PhaseMediaStart, Duration: media})
	}
	return out
}

// Phase returns the aggregate duration recorded for one phase name, raw
// (un-clipped, un-prioritised) across all its spans.
func (ct *CallTrace) Phase(name string) time.Duration {
	if ct == nil {
		return 0
	}
	var d time.Duration
	for _, s := range ct.Spans {
		if s.Phase == name {
			d += s.Duration()
		}
	}
	return d
}

// String renders the timeline for humans: the setup breakdown followed by
// every span with offsets relative to the window start.
func (ct *CallTrace) String() string {
	if ct == nil {
		return "trace: <nil>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: setup %v\n", ct.CallID, ct.SetupDuration().Round(time.Microsecond))
	for _, pd := range ct.Phases() {
		fmt.Fprintf(&b, "  %-16s %v\n", pd.Phase, pd.Duration.Round(time.Microsecond))
	}
	base := ct.winStart
	for _, s := range ct.Spans {
		off := time.Duration(0)
		if !base.IsZero() {
			off = s.Start.Sub(base)
		}
		fmt.Fprintf(&b, "  [%8v +%8v] %-16s %-10s %s\n",
			off.Round(time.Microsecond), s.Duration().Round(time.Microsecond), s.Phase, s.Node, s.Detail)
	}
	for _, e := range ct.Events {
		off := time.Duration(0)
		if !base.IsZero() {
			off = e.At.Sub(base)
		}
		fmt.Fprintf(&b, "  [%8v          ] %-16s %-10s %s\n",
			off.Round(time.Microsecond), e.Name, e.Node, e.Detail)
	}
	return b.String()
}
