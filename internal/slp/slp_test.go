package slp

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"siphoc/internal/netem"
	"siphoc/internal/routing"
	"siphoc/internal/routing/aodv"
	"siphoc/internal/routing/olsr"
)

func TestServiceURL(t *testing.T) {
	url := ServiceURL("sip", "10.0.0.1:5060")
	if url != "service:sip://10.0.0.1:5060" {
		t.Fatalf("url = %q", url)
	}
	stype, addr, err := ParseServiceURL(url)
	if err != nil || stype != "sip" || addr != "10.0.0.1:5060" {
		t.Fatalf("parse = %q %q %v", stype, addr, err)
	}
	for _, bad := range []string{"", "sip://x", "service:sip:x"} {
		if _, _, err := ParseServiceURL(bad); err == nil {
			t.Errorf("ParseServiceURL(%q) accepted", bad)
		}
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	in := &Payload{
		Adverts: []Advert{{
			Type: "sip", Key: "alice@voicehoc.ch",
			URL:    "service:sip://10.0.0.1:5060",
			Attrs:  map[string]string{"ua": "kphone"},
			Origin: "10.0.0.1", Seq: 7, TTLSec: 30,
		}},
		Queries: []Query{{Type: "sip", Key: "bob@voicehoc.ch", Origin: "10.0.0.2", ID: 3, Hops: 8}},
	}
	out, err := ParsePayload(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("mismatch:\n%+v\n%+v", in, out)
	}
}

func TestPayloadQuick(t *testing.T) {
	f := func(stype, key, url, origin string, seq uint32, ttl uint16, qid uint32, hops uint8) bool {
		if len(stype) > 200 || len(key) > 200 || len(url) > 200 || len(origin) > 200 {
			return true
		}
		in := &Payload{
			Adverts: []Advert{{Type: stype, Key: key, URL: url, Origin: netem.NodeID(origin), Seq: seq, TTLSec: ttl}},
			Queries: []Query{{Type: stype, Key: key, Origin: netem.NodeID(origin), ID: qid, Hops: hops}},
		}
		out, err := ParsePayload(in.Marshal())
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{{0, 1, 9}, {0, 1, 1, 0}, {9}} {
		if _, err := ParsePayload(b); err == nil {
			t.Errorf("ParsePayload(%v) accepted", b)
		}
	}
}

func TestCacheFreshness(t *testing.T) {
	c := newCache()
	now := time.Now()
	exp := now.Add(time.Minute)
	c.upsert(Service{Type: "sip", Key: "a", URL: "u1", Origin: "n1", Seq: 5, Expires: exp})
	// Stale update from the same origin is rejected.
	if c.upsert(Service{Type: "sip", Key: "a", URL: "u0", Origin: "n1", Seq: 4, Expires: exp}) {
		t.Fatal("stale seq accepted")
	}
	// Fresher update wins.
	if !c.upsert(Service{Type: "sip", Key: "a", URL: "u2", Origin: "n1", Seq: 6, Expires: exp}) {
		t.Fatal("fresher seq rejected")
	}
	svc, ok := c.get("sip", "a", now)
	if !ok || svc.URL != "u2" {
		t.Fatalf("get = %+v %v", svc, ok)
	}
	// A different origin re-binding the key always wins (user moved).
	if !c.upsert(Service{Type: "sip", Key: "a", URL: "u3", Origin: "n2", Seq: 1, Expires: exp}) {
		t.Fatal("re-binding from new origin rejected")
	}
	// Expiry.
	if _, ok := c.get("sip", "a", now.Add(2*time.Minute)); ok {
		t.Fatal("expired entry returned")
	}
}

func TestCacheWaiters(t *testing.T) {
	c := newCache()
	ch, cancel := c.wait("sip", "x")
	defer cancel()
	go c.upsert(Service{Type: "sip", Key: "x", URL: "u", Origin: "n", Expires: time.Now().Add(time.Minute)})
	select {
	case svc := <-ch:
		if svc.URL != "u" {
			t.Fatalf("svc = %+v", svc)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never signalled")
	}
}

// buildChain starts an n-node AODV chain with SLP agents in the given mode.
func buildChain(t *testing.T, n int, mode Mode) ([]*netem.Host, []*Agent, *netem.Network) {
	t.Helper()
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	t.Cleanup(net.Close)
	hosts, err := netem.Chain(net, n, 90, "10.0.0")
	if err != nil {
		t.Fatal(err)
	}
	agents := make([]*Agent, n)
	for i, h := range hosts {
		agents[i] = NewAgent(h, Config{Mode: mode, QueryRelayTTL: time.Second})
		proto := aodv.New(h, aodv.SimConfig())
		agents[i].AttachRouting(proto)
		if err := proto.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proto.Stop)
		if err := agents[i].Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(agents[i].Stop)
	}
	return hosts, agents, net
}

func TestRegisterAndLocalLookup(t *testing.T) {
	_, agents, _ := buildChain(t, 1, ModePiggyback)
	a := agents[0]
	if err := a.Register(Service{Type: "sip", Key: "alice@voicehoc.ch", URL: "service:sip://10.0.0.1:5060"}); err != nil {
		t.Fatal(err)
	}
	svc, err := a.Lookup("sip", "alice@voicehoc.ch", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if svc.URL != "service:sip://10.0.0.1:5060" {
		t.Fatalf("svc = %+v", svc)
	}
	if s := a.Stats(); s.CacheHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPiggybackDisseminationAcrossChain(t *testing.T) {
	hosts, agents, net := buildChain(t, 5, ModePiggyback)
	if err := agents[0].Register(Service{Type: "sip", Key: "alice@voicehoc.ch", URL: ServiceURL("sip", string(hosts[0].ID())+":5060")}); err != nil {
		t.Fatal(err)
	}
	// Hellos carry the advert hop by hop; the far node learns it without
	// asking.
	svc, err := agents[4].Lookup("sip", "alice@voicehoc.ch", 10*time.Second)
	if err != nil {
		t.Fatalf("lookup: %v\n%s", err, agents[4].Dump())
	}
	if svc.Origin != hosts[0].ID() {
		t.Fatalf("origin = %v", svc.Origin)
	}
	// The paper's headline property: MANET SLP sends no dedicated
	// discovery frames.
	if sf := net.Stats().ServiceFrames; sf != 0 {
		t.Fatalf("piggyback mode sent %d dedicated service frames", sf)
	}
}

func TestMulticastLookup(t *testing.T) {
	hosts, agents, net := buildChain(t, 4, ModeMulticast)
	if err := agents[0].Register(Service{Type: "sip", Key: "alice@voicehoc.ch", URL: ServiceURL("sip", string(hosts[0].ID())+":5060")}); err != nil {
		t.Fatal(err)
	}
	svc, err := agents[3].Lookup("sip", "alice@voicehoc.ch", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Origin != hosts[0].ID() {
		t.Fatalf("origin = %v", svc.Origin)
	}
	// The baseline costs dedicated flood frames — the E9 contrast.
	if sf := net.Stats().ServiceFrames; sf == 0 {
		t.Fatal("multicast mode sent no service frames")
	}
}

func TestLookupNotFound(t *testing.T) {
	_, agents, _ := buildChain(t, 2, ModePiggyback)
	_, err := agents[0].Lookup("sip", "ghost@nowhere", 300*time.Millisecond)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDeregisterStopsAnswering(t *testing.T) {
	_, agents, _ := buildChain(t, 1, ModePiggyback)
	a := agents[0]
	if err := a.Register(Service{Type: "gateway", Key: "", URL: "service:gateway://g:9000"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.LookupCached("gateway", ""); !ok {
		t.Fatal("registered service not cached")
	}
	a.Deregister("gateway", "")
	if _, ok := a.LookupCached("gateway", ""); ok {
		t.Fatal("deregistered service still cached")
	}
}

func TestDumpFormat(t *testing.T) {
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	defer net.Close()
	h, err := net.AddHost("10.0.0.1", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAgent(h, Config{})
	proto := olsr.New(h, olsr.SimConfig())
	a.AttachRouting(proto)
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	if err := a.Register(Service{Type: "sip", Key: "alice@voicehoc.ch", URL: "service:sip://10.0.0.1:5060"}); err != nil {
		t.Fatal(err)
	}
	dump := a.Dump()
	for _, want := range []string{
		"loaded routing plugin: OLSR",
		"service:sip://10.0.0.1:5060",
		"sip/alice@voicehoc.ch",
	} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestOutgoingRespectsBudget(t *testing.T) {
	net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
	defer net.Close()
	h, err := net.AddHost("n", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAgent(h, Config{})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	// Register many services so the advert list exceeds small budgets.
	for i := range 100 {
		if err := a.Register(Service{
			Type: "sip",
			Key:  strings.Repeat("x", 30) + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			URL:  "service:sip://n:5060",
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, budget := range []int{16, 64, 256, 1024} {
		ext := a.Outgoing(outgoingMsg(budget))
		if len(ext) > budget {
			t.Fatalf("budget %d: ext size %d", budget, len(ext))
		}
		if len(ext) > 0 {
			if _, err := ParsePayload(ext); err != nil {
				t.Fatalf("budget %d: unparseable ext: %v", budget, err)
			}
		}
	}
	// A zero budget must produce no extension.
	if ext := a.Outgoing(outgoingMsg(0)); ext != nil {
		t.Fatal("nonzero ext under zero budget")
	}
}

func outgoingMsg(budget int) routing.Outgoing {
	return routing.Outgoing{Proto: routing.ProtoAODV, Kind: 1, Kind2: "RREQ", Budget: budget}
}
