package slp

import (
	"testing"
	"time"

	"siphoc/internal/netem"
)

// TestFaultInvalidation pins the two fault-event hooks: Evict drops exactly
// one learned entry (never a local registration), and InvalidateOrigin drops
// everything learned from a crashed node while leaving other origins and the
// local table intact.
func TestFaultInvalidation(t *testing.T) {
	n := netem.NewNetwork(netem.Config{BaseDelay: 20 * time.Microsecond})
	defer n.Close()
	h, err := n.AddHost("10.0.0.1", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAgent(h, Config{})
	if err := a.Register(Service{
		Type: "sip", Key: "me@voicehoc.ch",
		URL: ServiceURL("sip", "10.0.0.1:5060"),
	}); err != nil {
		t.Fatal(err)
	}
	a.handlePayload(&Payload{Adverts: []Advert{
		{Type: "sip", Key: "bob@voicehoc.ch", URL: ServiceURL("sip", "10.0.0.2:5060"), Origin: "10.0.0.2", Seq: 1, TTLSec: 30},
		{Type: "gateway", Key: "10.0.0.2", URL: ServiceURL("gateway", "10.0.0.2:9000"), Origin: "10.0.0.2", Seq: 2, TTLSec: 30},
		{Type: "sip", Key: "carol@voicehoc.ch", URL: ServiceURL("sip", "10.0.0.3:5060"), Origin: "10.0.0.3", Seq: 1, TTLSec: 30},
	}})

	// Evict removes exactly the named learned entry.
	a.Evict("sip", "bob@voicehoc.ch")
	if _, ok := a.LookupCached("sip", "bob@voicehoc.ch"); ok {
		t.Fatal("evicted entry still served")
	}
	if _, ok := a.LookupCached("sip", "carol@voicehoc.ch"); !ok {
		t.Fatal("unrelated entry evicted")
	}

	// Evict refuses to touch local registrations.
	a.Evict("sip", "me@voicehoc.ch")
	if _, ok := a.LookupCached("sip", "me@voicehoc.ch"); !ok {
		t.Fatal("local registration evicted")
	}

	// InvalidateOrigin drops the remaining entry from the crashed node.
	if got := a.InvalidateOrigin("10.0.0.2"); got != 1 {
		t.Fatalf("InvalidateOrigin evicted %d entries, want 1", got)
	}
	if _, ok := a.LookupCached("gateway", "10.0.0.2"); ok {
		t.Fatal("crashed node's gateway advert still served")
	}
	if _, ok := a.LookupCached("sip", "carol@voicehoc.ch"); !ok {
		t.Fatal("entry from a live origin evicted")
	}

	// Self-invalidation is a no-op: local registrations stay.
	if got := a.InvalidateOrigin("10.0.0.1"); got != 0 {
		t.Fatalf("self InvalidateOrigin evicted %d entries, want 0", got)
	}
	if _, ok := a.LookupCached("sip", "me@voicehoc.ch"); !ok {
		t.Fatal("self-invalidation dropped the local registration")
	}

	// A fresh advert re-installs an evicted entry (eviction is not a ban).
	a.handlePayload(&Payload{Adverts: []Advert{
		{Type: "sip", Key: "bob@voicehoc.ch", URL: ServiceURL("sip", "10.0.0.2:5060"), Origin: "10.0.0.2", Seq: 3, TTLSec: 30},
	}})
	if _, ok := a.LookupCached("sip", "bob@voicehoc.ch"); !ok {
		t.Fatal("re-advertised entry not re-installed")
	}
}
