// Package slp implements the paper's MANET SLP layer: a Service Location
// Protocol agent that provides a regular SLP interface (register / lookup)
// but disseminates service information in a decentralized way by
// piggybacking it onto routing control messages via routing-handler plugins
// — the paper's replacement for multicast-heavy standard SLP, which is known
// to perform poorly in MANETs.
//
// Two modes are supported, forming the ablation behind experiment E9:
//
//   - ModePiggyback (the paper's design): adverts and queries ride the
//     extension slot of AODV/OLSR control messages and spread epidemically;
//     answers are returned as unicast datagrams to the querying node. No
//     dedicated discovery frames ever hit the air.
//   - ModeMulticast (the standard-SLP baseline): each lookup floods a
//     SrvRqst through the network as dedicated service frames, as original
//     SLP would over multicast.
package slp

import (
	"container/heap"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/obs"
	"siphoc/internal/routing"
	"siphoc/internal/wire"
)

// Mode selects the dissemination strategy.
type Mode int

// Modes.
const (
	ModePiggyback Mode = iota + 1
	ModeMulticast
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModePiggyback:
		return "piggyback"
	case ModeMulticast:
		return "multicast"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ErrNotFound is returned by Lookup when no answer arrives in time.
var ErrNotFound = errors.New("slp: service not found")

// Config tunes the agent; the zero value gets piggyback mode with defaults
// suitable for simulation.
type Config struct {
	// Mode selects piggyback (default) or multicast dissemination.
	Mode Mode
	// AdvertTTL is the service registration lifetime (default 30s).
	AdvertTTL time.Duration
	// QueryHops bounds epidemic/flood propagation of queries (default 8).
	QueryHops uint8
	// QueryRelayTTL is how long foreign queries keep riding our outgoing
	// routing messages (default 2s).
	QueryRelayTTL time.Duration
	// Clock is the time source (default the system clock).
	Clock clock.Clock
	// Obs records lookup counters and resolution latency. Nil disables.
	Obs *obs.Observer
	// Sched, when set, runs the advert-refresh timer on the shared sharded
	// event loop and delivers unicast replies via a conn callback instead
	// of a recv goroutine. Two fewer goroutines per node, same cadence.
	Sched *clock.Scheduler
}

func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = ModePiggyback
	}
	if c.AdvertTTL == 0 {
		c.AdvertTTL = 30 * time.Second
	}
	if c.QueryHops == 0 {
		c.QueryHops = 8
	}
	if c.QueryRelayTTL == 0 {
		c.QueryRelayTTL = 2 * time.Second
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	return c
}

// AgentStats counts agent activity.
type AgentStats struct {
	AdvertsAccepted int64 // remote adverts installed or refreshed
	QueriesAnswered int64 // unicast replies sent
	QueriesRelayed  int64 // foreign queries added to the relay set
	Lookups         int64
	CacheHits       int64
	FloodsSent      int64 // multicast-mode SrvRqst broadcasts
}

type qkey struct {
	origin netem.NodeID
	id     uint32
}

type relayEntry struct {
	q       Query
	expires time.Time
}

// deadlineItem orders map keys by expiry so seenQ/relayQ can be pruned
// lazily in deadline order instead of full map sweeps.
type deadlineItem struct {
	k  qkey
	at time.Time
}

type deadlineHeap []deadlineItem

func (h deadlineHeap) Len() int           { return len(h) }
func (h deadlineHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h deadlineHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *deadlineHeap) Push(x any)        { *h = append(*h, x.(deadlineItem)) }
func (h *deadlineHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// agentCounters are the hot-path stats, kept atomic so counting never takes
// a shard lock.
type agentCounters struct {
	advertsAccepted atomic.Int64
	queriesAnswered atomic.Int64
	queriesRelayed  atomic.Int64
	lookups         atomic.Int64
	cacheHits       atomic.Int64
	floodsSent      atomic.Int64
}

// seenQHardCap bounds the query dedup set regardless of load; beyond it the
// oldest entries are force-evicted (re-processing an ancient duplicate is
// harmless — the relay TTL has long expired by then).
const seenQHardCap = 4096

// Agent is one node's MANET SLP process.
type Agent struct {
	host *netem.Host
	cfg  Config
	clk  clock.Clock

	conn  *netem.Conn
	cache *cache

	// mu guards the slow-path identity state: local registrations, the
	// advert sequence number, plugin wiring and lifecycle flags.
	mu      sync.Mutex
	local   map[cacheKey]Service
	seq     uint32
	plugin  string
	started bool
	closed  bool

	// qmu is the query shard: dedup set, pending lookups and the relay
	// set. Bursty query traffic riding every routing control message
	// contends here without touching registrations or lifecycle calls.
	qmu      sync.Mutex
	qid      uint32
	pendingQ map[cacheKey]Query
	relayQ   map[qkey]relayEntry
	seenQ    map[qkey]time.Time // value: deadline after which the key may be pruned
	seenH    deadlineHeap
	relayH   deadlineHeap

	// pb* is the piggyback encoding scratch reused across Outgoing calls
	// (serialized by pbMu): staging payload, gossip snapshot and writer.
	pbMu      sync.Mutex
	pbPayload Payload
	pbGossip  []Service
	pbW       *wire.Writer

	stats agentCounters

	stop  chan struct{}
	wg    sync.WaitGroup
	tasks []*clock.Task // event-loop timers when cfg.Sched is set

	// Pre-resolved obs handles; all nil when cfg.Obs is nil.
	obsLookups   *obs.Counter
	obsCacheHits *obs.Counter
	obsMisses    *obs.Counter
	obsDelay     *obs.Histogram
}

var _ routing.PiggybackHandler = (*Agent)(nil)

// NewAgent creates the SLP agent for host. Call AttachRouting before
// starting the routing protocol, then Start.
func NewAgent(host *netem.Host, cfg Config) *Agent {
	cfg = cfg.withDefaults()
	a := &Agent{
		host:     host,
		cfg:      cfg,
		clk:      cfg.Clock,
		cache:    newCache(),
		local:    make(map[cacheKey]Service),
		pendingQ: make(map[cacheKey]Query),
		relayQ:   make(map[qkey]relayEntry),
		seenQ:    make(map[qkey]time.Time),
		pbW:      wire.NewWriter(256),
		stop:     make(chan struct{}),
	}
	if cfg.Obs.Enabled() {
		a.obsLookups = cfg.Obs.Counter("slp.lookups")
		a.obsCacheHits = cfg.Obs.Counter("slp.lookups.cachehits")
		a.obsMisses = cfg.Obs.Counter("slp.lookups.notfound")
		a.obsDelay = cfg.Obs.Histogram("slp.lookup.delay", nil)
	}
	return a
}

// AttachRouting loads this agent as the routing-handler plugin of p
// (piggyback mode only; harmless otherwise). Must precede p.Start.
func (a *Agent) AttachRouting(p routing.Protocol) {
	a.mu.Lock()
	a.plugin = p.Name()
	a.mu.Unlock()
	if a.cfg.Mode == ModePiggyback {
		p.SetPiggyback(a)
	}
}

// Plugin returns the name of the attached routing plugin ("" if none).
func (a *Agent) Plugin() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.plugin
}

// Mode returns the dissemination mode.
func (a *Agent) Mode() Mode { return a.cfg.Mode }

// Start binds the SLP port and begins processing.
func (a *Agent) Start() error {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return fmt.Errorf("slp: already started")
	}
	a.started = true
	a.mu.Unlock()
	conn, err := a.host.Listen(Port)
	if err != nil {
		return fmt.Errorf("slp: bind port %d: %w", Port, err)
	}
	a.conn = conn
	if err := a.host.HandleFrames(netem.KindService, a.onServiceFrame); err != nil {
		conn.Close()
		return err
	}
	if a.cfg.Sched != nil {
		conn.Handle(func(dg *netem.Datagram) {
			p, err := ParsePayload(dg.Data)
			if err != nil {
				return
			}
			a.handlePayload(p)
		})
		task := a.cfg.Sched.Every(string(a.host.ID()), a.refreshInterval(), func(time.Time) { a.refreshTick() })
		a.mu.Lock()
		a.tasks = append(a.tasks, task)
		a.mu.Unlock()
		return nil
	}
	a.wg.Add(2)
	go a.recvLoop()
	go a.refreshLoop()
	return nil
}

// Stop terminates the agent.
func (a *Agent) Stop() {
	a.mu.Lock()
	if !a.started || a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	tasks := a.tasks
	a.tasks = nil
	a.mu.Unlock()
	for _, t := range tasks {
		t.Stop()
	}
	close(a.stop)
	a.conn.Close()
	a.wg.Wait()
}

// Stats returns a snapshot of the agent counters.
func (a *Agent) Stats() AgentStats {
	return AgentStats{
		AdvertsAccepted: a.stats.advertsAccepted.Load(),
		QueriesAnswered: a.stats.queriesAnswered.Load(),
		QueriesRelayed:  a.stats.queriesRelayed.Load(),
		Lookups:         a.stats.lookups.Load(),
		CacheHits:       a.stats.cacheHits.Load(),
		FloodsSent:      a.stats.floodsSent.Load(),
	}
}

// markSeenLocked records a query key in the dedup set. Expired entries are
// pruned lazily in deadline order (no map sweeps), and the hard cap evicts
// the oldest entries so sustained query load can never grow seenQ without
// bound. Caller holds qmu.
func (a *Agent) markSeenLocked(k qkey, now time.Time) {
	// Keys stay deduped well past the relay TTL so a straggler copy still
	// relaying through a distant node is not re-processed here.
	deadline := now.Add(4 * a.cfg.QueryRelayTTL)
	for len(a.seenH) > 0 && !now.Before(a.seenH[0].at) {
		top := heap.Pop(&a.seenH).(deadlineItem)
		// A key can appear twice in the heap after cap-eviction and
		// re-admission; only drop it if the live deadline really passed.
		if at, ok := a.seenQ[top.k]; ok && !now.Before(at) {
			delete(a.seenQ, top.k)
		}
	}
	for len(a.seenQ) >= seenQHardCap && len(a.seenH) > 0 {
		top := heap.Pop(&a.seenH).(deadlineItem)
		delete(a.seenQ, top.k)
	}
	a.seenQ[k] = deadline
	heap.Push(&a.seenH, deadlineItem{k: k, at: deadline})
}

// pruneRelayLocked drops relay entries whose TTL passed, in deadline order.
// Caller holds qmu.
func (a *Agent) pruneRelayLocked(now time.Time) {
	for len(a.relayH) > 0 && !now.Before(a.relayH[0].at) {
		top := heap.Pop(&a.relayH).(deadlineItem)
		if re, ok := a.relayQ[top.k]; ok && !now.Before(re.expires) {
			delete(a.relayQ, top.k)
		}
	}
}

// Register publishes a service from this node. Type, Key and URL are
// required; Origin and Seq are stamped by the agent.
func (a *Agent) Register(svc Service) error {
	if svc.Type == "" || svc.URL == "" {
		return fmt.Errorf("slp: registration needs Type and URL")
	}
	now := a.clk.Now()
	a.mu.Lock()
	a.seq++
	svc.Origin = a.host.ID()
	svc.Seq = a.seq
	svc.Expires = now.Add(a.cfg.AdvertTTL)
	a.local[cacheKey{svc.Type, svc.Key}] = svc
	a.mu.Unlock()
	// The local cache answers lookups on this node immediately.
	a.cache.upsert(svc)
	return nil
}

// Deregister withdraws a local registration.
func (a *Agent) Deregister(stype, key string) {
	a.mu.Lock()
	delete(a.local, cacheKey{stype, key})
	a.mu.Unlock()
	a.cache.remove(stype, key)
}

// Evict drops one learned cache entry without touching local registrations —
// the hook consumers use when a resolved service turns out to be stale (the
// advertising node stopped answering). A fresh advert from the network
// re-installs the entry; local registrations are never evicted.
func (a *Agent) Evict(stype, key string) {
	a.mu.Lock()
	_, local := a.local[cacheKey{stype, key}]
	a.mu.Unlock()
	if local {
		return
	}
	a.cache.remove(stype, key)
}

// InvalidateOrigin drops every cache entry learned from origin, returning
// how many were evicted. This is the fault-event hook: when a node is known
// to have crashed, its adverts must not be served until natural TTL expiry.
// Local registrations (origin == self) are never touched.
func (a *Agent) InvalidateOrigin(origin netem.NodeID) int {
	if origin == a.host.ID() {
		return 0
	}
	return a.cache.removeOrigin(origin)
}

// LookupCached returns the locally known service, if any. An empty key is a
// wildcard matching any service of the type.
func (a *Agent) LookupCached(stype, key string) (Service, bool) {
	if key == "" {
		return a.cache.getAny(stype, a.clk.Now())
	}
	return a.cache.get(stype, key, a.clk.Now())
}

// Lookup resolves a service, waiting up to timeout for the network to
// answer. In piggyback mode the query rides outgoing routing messages; in
// multicast mode it floods dedicated service frames.
func (a *Agent) Lookup(stype, key string, timeout time.Duration) (Service, error) {
	a.stats.lookups.Add(1)
	a.obsLookups.Inc()
	lookupStart := a.clk.Now()
	if svc, ok := a.LookupCached(stype, key); ok {
		a.stats.cacheHits.Add(1)
		a.obsCacheHits.Inc()
		a.obsDelay.Observe(a.clk.Now().Sub(lookupStart))
		return svc, nil
	}
	ch, cancel := a.cache.wait(stype, key)
	defer cancel()

	a.qmu.Lock()
	a.qid++
	q := Query{Type: stype, Key: key, Origin: a.host.ID(), ID: a.qid, Hops: a.cfg.QueryHops}
	a.markSeenLocked(qkey{q.Origin, q.ID}, lookupStart)
	ck := cacheKey{stype, key}
	if a.cfg.Mode == ModePiggyback {
		a.pendingQ[ck] = q
	}
	a.qmu.Unlock()
	defer func() {
		a.qmu.Lock()
		delete(a.pendingQ, ck)
		a.qmu.Unlock()
	}()

	var refloodC <-chan time.Time
	if a.cfg.Mode == ModeMulticast {
		a.floodQuery(q)
		// Retry the flood a couple of times within the timeout, like an
		// SLP UA reissuing SrvRqst.
		t := a.clk.NewTimer(timeout / 3)
		defer t.Stop()
		refloodC = t.C()
	}
	deadline := a.clk.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case svc := <-ch:
			a.obsDelay.Observe(a.clk.Now().Sub(lookupStart))
			return svc, nil
		case <-refloodC:
			a.qmu.Lock()
			a.qid++
			q.ID = a.qid
			a.markSeenLocked(qkey{q.Origin, q.ID}, a.clk.Now())
			a.qmu.Unlock()
			a.floodQuery(q)
			t := a.clk.NewTimer(timeout / 3)
			defer t.Stop()
			refloodC = t.C()
		case <-deadline.C():
			a.obsMisses.Inc()
			return Service{}, fmt.Errorf("lookup %s/%s: %w", stype, key, ErrNotFound)
		case <-a.stop:
			return Service{}, fmt.Errorf("lookup %s/%s: agent stopped: %w", stype, key, ErrNotFound)
		}
	}
}

// Services returns the live registrations known to this agent (local and
// learned), optionally filtered by type.
func (a *Agent) Services(stype string) []Service {
	return a.cache.snapshot(stype, a.clk.Now())
}

// Dump renders the agent state in the style of the paper's Figure 4: the
// loaded routing plugin, local registrations and the learned cache.
func (a *Agent) Dump() string {
	now := a.clk.Now()
	a.mu.Lock()
	plugin := a.plugin
	locals := make([]Service, 0, len(a.local))
	for _, svc := range a.local {
		locals = append(locals, svc)
	}
	mode := a.cfg.Mode
	a.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "manetslp: node %s (mode %s)\n", a.host.ID(), mode)
	if plugin != "" {
		fmt.Fprintf(&b, "manetslp: loaded routing plugin: %s\n", plugin)
	} else {
		b.WriteString("manetslp: no routing plugin loaded\n")
	}
	b.WriteString("manetslp: local registrations:\n")
	for _, svc := range locals {
		fmt.Fprintf(&b, "manetslp:   %-40s %s/%s (seq %d)\n", svc.URL, svc.Type, svc.Key, svc.Seq)
	}
	b.WriteString("manetslp: cache:\n")
	for _, svc := range a.cache.snapshot("", now) {
		if svc.Origin == a.host.ID() {
			continue
		}
		fmt.Fprintf(&b, "manetslp:   %-40s %s/%s from %s (expires in %ds)\n",
			svc.URL, svc.Type, svc.Key, svc.Origin, int(svc.Expires.Sub(now).Seconds()))
	}
	return b.String()
}

// ---- routing.PiggybackHandler ----

// Outgoing packs pending queries, local registrations and cached adverts
// into the routing message's extension slot, within budget. The staging
// payload, gossip snapshot and encoder are scratch state reused across calls
// (every HELLO/TC/RREQ the node emits lands here), so the steady-state cost
// is one allocation: the returned copy of the encoded bytes.
func (a *Agent) Outgoing(msg routing.Outgoing) []byte {
	now := a.clk.Now()
	budget := msg.Budget - 8 // headroom for the counts
	if budget <= 0 {
		return nil
	}
	a.pbMu.Lock()
	defer a.pbMu.Unlock()
	p := &a.pbPayload
	p.Queries = p.Queries[:0]
	p.Adverts = p.Adverts[:0]

	a.qmu.Lock()
	for _, q := range a.pendingQ {
		if s := sizeOfQuery(&q); s <= budget {
			p.Queries = append(p.Queries, q)
			budget -= s
		}
	}
	a.pruneRelayLocked(now)
	for _, re := range a.relayQ {
		if s := sizeOfQuery(&re.q); s <= budget {
			p.Queries = append(p.Queries, re.q)
			budget -= s
		}
	}
	a.qmu.Unlock()

	a.mu.Lock()
	for _, svc := range a.local {
		adv := serviceToAdvert(svc, a.cfg.AdvertTTL)
		if s := sizeOfAdvert(&adv); s <= budget {
			p.Adverts = append(p.Adverts, adv)
			budget -= s
		}
	}
	a.mu.Unlock()

	// Gossip learned entries so information spreads beyond one hop.
	self := a.host.ID()
	a.pbGossip = a.cache.snapshotInto(a.pbGossip[:0], "", now)
	for i := range a.pbGossip {
		svc := &a.pbGossip[i]
		if svc.Origin == self {
			continue
		}
		adv := Advert{
			Type: svc.Type, Key: svc.Key, URL: svc.URL, Attrs: svc.Attrs,
			Origin: svc.Origin, Seq: svc.Seq,
			TTLSec: ttlSec(svc.Expires.Sub(now)),
		}
		if adv.TTLSec == 0 {
			continue
		}
		s := sizeOfAdvert(&adv)
		if s > budget {
			break
		}
		p.Adverts = append(p.Adverts, adv)
		budget -= s
	}
	if len(p.Adverts) == 0 && len(p.Queries) == 0 {
		return nil
	}
	// Encode into the reused writer, then copy out: concurrent emitters
	// (helloLoop and tcLoop of the same protocol) both land here, so the
	// returned slice must not alias the scratch buffer.
	a.pbW.Reset()
	raw := p.MarshalInto(a.pbW)
	out := make([]byte, len(raw))
	copy(out, raw)
	return out
}

// Incoming handles extensions found on received routing messages.
func (a *Agent) Incoming(msg routing.Incoming) {
	p, err := ParsePayload(msg.Ext)
	if err != nil {
		return
	}
	a.handlePayload(p)
}

func serviceToAdvert(svc Service, ttl time.Duration) Advert {
	return Advert{
		Type: svc.Type, Key: svc.Key, URL: svc.URL, Attrs: svc.Attrs,
		Origin: svc.Origin, Seq: svc.Seq, TTLSec: ttlSec(ttl),
	}
}

func ttlSec(d time.Duration) uint16 {
	s := int64(d / time.Second)
	if s <= 0 {
		return 0
	}
	if s > 0xffff {
		return 0xffff
	}
	return uint16(s)
}

// handlePayload processes adverts and queries from any source (piggyback
// extension, unicast reply, or multicast flood).
func (a *Agent) handlePayload(p *Payload) {
	now := a.clk.Now()
	self := a.host.ID()
	for _, adv := range p.Adverts {
		if adv.Origin == self || adv.TTLSec == 0 {
			continue
		}
		svc := Service{
			Type: adv.Type, Key: adv.Key, URL: adv.URL, Attrs: adv.Attrs,
			Origin: adv.Origin, Seq: adv.Seq,
			Expires: now.Add(time.Duration(adv.TTLSec) * time.Second),
		}
		if a.cache.upsert(svc) {
			a.stats.advertsAccepted.Add(1)
		}
	}
	for _, q := range p.Queries {
		a.handleQuery(q)
	}
}

func (a *Agent) handleQuery(q Query) {
	if q.Origin == a.host.ID() {
		return
	}
	now := a.clk.Now()
	k := qkey{q.Origin, q.ID}
	a.qmu.Lock()
	if _, seen := a.seenQ[k]; seen {
		a.qmu.Unlock()
		return
	}
	a.markSeenLocked(k, now)
	a.qmu.Unlock()

	if svc, ok := a.queryMatch(q, now); ok {
		// Answer with a unicast reply to the querying node's SLP port.
		reply := &Payload{Adverts: []Advert{serviceToAdvert(svc, svc.Expires.Sub(now))}}
		a.stats.queriesAnswered.Add(1)
		_ = a.conn.WriteTo(reply.Marshal(), q.Origin, Port)
		return
	}
	if q.Hops <= 1 {
		return
	}
	q.Hops--
	a.stats.queriesRelayed.Add(1)
	exp := now.Add(a.cfg.QueryRelayTTL)
	a.qmu.Lock()
	a.relayQ[k] = relayEntry{q: q, expires: exp}
	heap.Push(&a.relayH, deadlineItem{k: k, at: exp})
	a.qmu.Unlock()
}

// queryMatch resolves a query against the cache; an empty key matches any
// service of the type.
func (a *Agent) queryMatch(q Query, now time.Time) (Service, bool) {
	if q.Key == "" {
		return a.cache.getAny(q.Type, now)
	}
	return a.cache.get(q.Type, q.Key, now)
}

// ---- multicast baseline ----

// floodQuery broadcasts a SrvRqst as a dedicated service frame.
func (a *Agent) floodQuery(q Query) {
	a.stats.floodsSent.Add(1)
	p := &Payload{Queries: []Query{q}}
	_ = a.host.SendFrame(netem.Broadcast, netem.KindService, p.Marshal())
}

// onServiceFrame handles multicast-mode floods: dedup, answer if known,
// otherwise re-broadcast with a decremented hop budget.
func (a *Agent) onServiceFrame(f netem.Frame) {
	p, err := ParsePayload(f.Payload)
	if err != nil {
		return
	}
	now := a.clk.Now()
	for _, adv := range p.Adverts {
		if adv.Origin == a.host.ID() || adv.TTLSec == 0 {
			continue
		}
		a.cache.upsert(Service{
			Type: adv.Type, Key: adv.Key, URL: adv.URL, Attrs: adv.Attrs,
			Origin: adv.Origin, Seq: adv.Seq,
			Expires: now.Add(time.Duration(adv.TTLSec) * time.Second),
		})
	}
	for _, q := range p.Queries {
		if q.Origin == a.host.ID() {
			continue
		}
		k := qkey{q.Origin, q.ID}
		a.qmu.Lock()
		if _, seen := a.seenQ[k]; seen {
			a.qmu.Unlock()
			continue
		}
		a.markSeenLocked(k, now)
		a.qmu.Unlock()
		if svc, ok := a.queryMatch(q, now); ok {
			reply := &Payload{Adverts: []Advert{serviceToAdvert(svc, svc.Expires.Sub(now))}}
			a.stats.queriesAnswered.Add(1)
			_ = a.conn.WriteTo(reply.Marshal(), q.Origin, Port)
			continue
		}
		if q.Hops > 1 {
			q.Hops--
			fwd := &Payload{Queries: []Query{q}}
			_ = a.host.SendFrame(netem.Broadcast, netem.KindService, fwd.Marshal())
		}
	}
}

// recvLoop processes unicast SLP datagrams (query replies).
func (a *Agent) recvLoop() {
	defer a.wg.Done()
	for {
		dg, ok := a.conn.Recv()
		if !ok {
			return
		}
		p, err := ParsePayload(dg.Data)
		if err != nil {
			continue
		}
		a.handlePayload(p)
	}
}

func (a *Agent) refreshInterval() time.Duration {
	interval := a.cfg.AdvertTTL / 3
	if interval <= 0 {
		interval = time.Second
	}
	return interval
}

// refreshTick bumps local registration sequence numbers so remote caches
// keep them alive.
func (a *Agent) refreshTick() {
	now := a.clk.Now()
	a.mu.Lock()
	for k, svc := range a.local {
		a.seq++
		svc.Seq = a.seq
		svc.Expires = now.Add(a.cfg.AdvertTTL)
		a.local[k] = svc
		a.cache.upsert(svc)
	}
	a.mu.Unlock()
}

// refreshLoop is the legacy goroutine driver for refreshTick.
func (a *Agent) refreshLoop() {
	defer a.wg.Done()
	interval := a.refreshInterval()
	for {
		timer := a.clk.NewTimer(interval)
		select {
		case <-a.stop:
			timer.Stop()
			return
		case <-timer.C():
		}
		a.refreshTick()
	}
}
