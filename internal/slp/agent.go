// Package slp implements the paper's MANET SLP layer: a Service Location
// Protocol agent that provides a regular SLP interface (register / lookup)
// but disseminates service information in a decentralized way by
// piggybacking it onto routing control messages via routing-handler plugins
// — the paper's replacement for multicast-heavy standard SLP, which is known
// to perform poorly in MANETs.
//
// Two modes are supported, forming the ablation behind experiment E9:
//
//   - ModePiggyback (the paper's design): adverts and queries ride the
//     extension slot of AODV/OLSR control messages and spread epidemically;
//     answers are returned as unicast datagrams to the querying node. No
//     dedicated discovery frames ever hit the air.
//   - ModeMulticast (the standard-SLP baseline): each lookup floods a
//     SrvRqst through the network as dedicated service frames, as original
//     SLP would over multicast.
package slp

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/obs"
	"siphoc/internal/routing"
)

// Mode selects the dissemination strategy.
type Mode int

// Modes.
const (
	ModePiggyback Mode = iota + 1
	ModeMulticast
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModePiggyback:
		return "piggyback"
	case ModeMulticast:
		return "multicast"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ErrNotFound is returned by Lookup when no answer arrives in time.
var ErrNotFound = errors.New("slp: service not found")

// Config tunes the agent; the zero value gets piggyback mode with defaults
// suitable for simulation.
type Config struct {
	// Mode selects piggyback (default) or multicast dissemination.
	Mode Mode
	// AdvertTTL is the service registration lifetime (default 30s).
	AdvertTTL time.Duration
	// QueryHops bounds epidemic/flood propagation of queries (default 8).
	QueryHops uint8
	// QueryRelayTTL is how long foreign queries keep riding our outgoing
	// routing messages (default 2s).
	QueryRelayTTL time.Duration
	// Clock is the time source (default the system clock).
	Clock clock.Clock
	// Obs records lookup counters and resolution latency. Nil disables.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = ModePiggyback
	}
	if c.AdvertTTL == 0 {
		c.AdvertTTL = 30 * time.Second
	}
	if c.QueryHops == 0 {
		c.QueryHops = 8
	}
	if c.QueryRelayTTL == 0 {
		c.QueryRelayTTL = 2 * time.Second
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	return c
}

// AgentStats counts agent activity.
type AgentStats struct {
	AdvertsAccepted int64 // remote adverts installed or refreshed
	QueriesAnswered int64 // unicast replies sent
	QueriesRelayed  int64 // foreign queries added to the relay set
	Lookups         int64
	CacheHits       int64
	FloodsSent      int64 // multicast-mode SrvRqst broadcasts
}

type qkey struct {
	origin netem.NodeID
	id     uint32
}

type relayEntry struct {
	q       Query
	expires time.Time
}

// Agent is one node's MANET SLP process.
type Agent struct {
	host *netem.Host
	cfg  Config
	clk  clock.Clock

	conn  *netem.Conn
	cache *cache

	mu       sync.Mutex
	local    map[cacheKey]Service
	seq      uint32
	qid      uint32
	pendingQ map[cacheKey]Query
	relayQ   map[qkey]relayEntry
	seenQ    map[qkey]time.Time
	plugin   string
	stats    AgentStats
	started  bool
	closed   bool

	stop chan struct{}
	wg   sync.WaitGroup

	// Pre-resolved obs handles; all nil when cfg.Obs is nil.
	obsLookups   *obs.Counter
	obsCacheHits *obs.Counter
	obsMisses    *obs.Counter
	obsDelay     *obs.Histogram
}

var _ routing.PiggybackHandler = (*Agent)(nil)

// NewAgent creates the SLP agent for host. Call AttachRouting before
// starting the routing protocol, then Start.
func NewAgent(host *netem.Host, cfg Config) *Agent {
	cfg = cfg.withDefaults()
	a := &Agent{
		host:     host,
		cfg:      cfg,
		clk:      cfg.Clock,
		cache:    newCache(),
		local:    make(map[cacheKey]Service),
		pendingQ: make(map[cacheKey]Query),
		relayQ:   make(map[qkey]relayEntry),
		seenQ:    make(map[qkey]time.Time),
		stop:     make(chan struct{}),
	}
	if cfg.Obs.Enabled() {
		a.obsLookups = cfg.Obs.Counter("slp.lookups")
		a.obsCacheHits = cfg.Obs.Counter("slp.lookups.cachehits")
		a.obsMisses = cfg.Obs.Counter("slp.lookups.notfound")
		a.obsDelay = cfg.Obs.Histogram("slp.lookup.delay", nil)
	}
	return a
}

// AttachRouting loads this agent as the routing-handler plugin of p
// (piggyback mode only; harmless otherwise). Must precede p.Start.
func (a *Agent) AttachRouting(p routing.Protocol) {
	a.mu.Lock()
	a.plugin = p.Name()
	a.mu.Unlock()
	if a.cfg.Mode == ModePiggyback {
		p.SetPiggyback(a)
	}
}

// Plugin returns the name of the attached routing plugin ("" if none).
func (a *Agent) Plugin() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.plugin
}

// Mode returns the dissemination mode.
func (a *Agent) Mode() Mode { return a.cfg.Mode }

// Start binds the SLP port and begins processing.
func (a *Agent) Start() error {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return fmt.Errorf("slp: already started")
	}
	a.started = true
	a.mu.Unlock()
	conn, err := a.host.Listen(Port)
	if err != nil {
		return fmt.Errorf("slp: bind port %d: %w", Port, err)
	}
	a.conn = conn
	if err := a.host.HandleFrames(netem.KindService, a.onServiceFrame); err != nil {
		conn.Close()
		return err
	}
	a.wg.Add(2)
	go a.recvLoop()
	go a.refreshLoop()
	return nil
}

// Stop terminates the agent.
func (a *Agent) Stop() {
	a.mu.Lock()
	if !a.started || a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	close(a.stop)
	a.conn.Close()
	a.wg.Wait()
}

// Stats returns a snapshot of the agent counters.
func (a *Agent) Stats() AgentStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Register publishes a service from this node. Type, Key and URL are
// required; Origin and Seq are stamped by the agent.
func (a *Agent) Register(svc Service) error {
	if svc.Type == "" || svc.URL == "" {
		return fmt.Errorf("slp: registration needs Type and URL")
	}
	now := a.clk.Now()
	a.mu.Lock()
	a.seq++
	svc.Origin = a.host.ID()
	svc.Seq = a.seq
	svc.Expires = now.Add(a.cfg.AdvertTTL)
	a.local[cacheKey{svc.Type, svc.Key}] = svc
	a.mu.Unlock()
	// The local cache answers lookups on this node immediately.
	a.cache.upsert(svc)
	return nil
}

// Deregister withdraws a local registration.
func (a *Agent) Deregister(stype, key string) {
	a.mu.Lock()
	delete(a.local, cacheKey{stype, key})
	a.mu.Unlock()
	a.cache.remove(stype, key)
}

// Evict drops one learned cache entry without touching local registrations —
// the hook consumers use when a resolved service turns out to be stale (the
// advertising node stopped answering). A fresh advert from the network
// re-installs the entry; local registrations are never evicted.
func (a *Agent) Evict(stype, key string) {
	a.mu.Lock()
	_, local := a.local[cacheKey{stype, key}]
	a.mu.Unlock()
	if local {
		return
	}
	a.cache.remove(stype, key)
}

// InvalidateOrigin drops every cache entry learned from origin, returning
// how many were evicted. This is the fault-event hook: when a node is known
// to have crashed, its adverts must not be served until natural TTL expiry.
// Local registrations (origin == self) are never touched.
func (a *Agent) InvalidateOrigin(origin netem.NodeID) int {
	if origin == a.host.ID() {
		return 0
	}
	return a.cache.removeOrigin(origin)
}

// LookupCached returns the locally known service, if any. An empty key is a
// wildcard matching any service of the type.
func (a *Agent) LookupCached(stype, key string) (Service, bool) {
	if key == "" {
		return a.cache.getAny(stype, a.clk.Now())
	}
	return a.cache.get(stype, key, a.clk.Now())
}

// Lookup resolves a service, waiting up to timeout for the network to
// answer. In piggyback mode the query rides outgoing routing messages; in
// multicast mode it floods dedicated service frames.
func (a *Agent) Lookup(stype, key string, timeout time.Duration) (Service, error) {
	a.mu.Lock()
	a.stats.Lookups++
	a.mu.Unlock()
	a.obsLookups.Inc()
	lookupStart := a.clk.Now()
	if svc, ok := a.LookupCached(stype, key); ok {
		a.mu.Lock()
		a.stats.CacheHits++
		a.mu.Unlock()
		a.obsCacheHits.Inc()
		a.obsDelay.Observe(a.clk.Now().Sub(lookupStart))
		return svc, nil
	}
	ch, cancel := a.cache.wait(stype, key)
	defer cancel()

	a.mu.Lock()
	a.qid++
	q := Query{Type: stype, Key: key, Origin: a.host.ID(), ID: a.qid, Hops: a.cfg.QueryHops}
	a.seenQ[qkey{q.Origin, q.ID}] = a.clk.Now()
	ck := cacheKey{stype, key}
	if a.cfg.Mode == ModePiggyback {
		a.pendingQ[ck] = q
	}
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.pendingQ, ck)
		a.mu.Unlock()
	}()

	var refloodC <-chan time.Time
	if a.cfg.Mode == ModeMulticast {
		a.floodQuery(q)
		// Retry the flood a couple of times within the timeout, like an
		// SLP UA reissuing SrvRqst.
		t := a.clk.NewTimer(timeout / 3)
		defer t.Stop()
		refloodC = t.C()
	}
	deadline := a.clk.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case svc := <-ch:
			a.obsDelay.Observe(a.clk.Now().Sub(lookupStart))
			return svc, nil
		case <-refloodC:
			a.mu.Lock()
			a.qid++
			q.ID = a.qid
			a.seenQ[qkey{q.Origin, q.ID}] = a.clk.Now()
			a.mu.Unlock()
			a.floodQuery(q)
			t := a.clk.NewTimer(timeout / 3)
			defer t.Stop()
			refloodC = t.C()
		case <-deadline.C():
			a.obsMisses.Inc()
			return Service{}, fmt.Errorf("lookup %s/%s: %w", stype, key, ErrNotFound)
		case <-a.stop:
			return Service{}, fmt.Errorf("lookup %s/%s: agent stopped: %w", stype, key, ErrNotFound)
		}
	}
}

// Services returns the live registrations known to this agent (local and
// learned), optionally filtered by type.
func (a *Agent) Services(stype string) []Service {
	return a.cache.snapshot(stype, a.clk.Now())
}

// Dump renders the agent state in the style of the paper's Figure 4: the
// loaded routing plugin, local registrations and the learned cache.
func (a *Agent) Dump() string {
	now := a.clk.Now()
	a.mu.Lock()
	plugin := a.plugin
	locals := make([]Service, 0, len(a.local))
	for _, svc := range a.local {
		locals = append(locals, svc)
	}
	mode := a.cfg.Mode
	a.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "manetslp: node %s (mode %s)\n", a.host.ID(), mode)
	if plugin != "" {
		fmt.Fprintf(&b, "manetslp: loaded routing plugin: %s\n", plugin)
	} else {
		b.WriteString("manetslp: no routing plugin loaded\n")
	}
	b.WriteString("manetslp: local registrations:\n")
	for _, svc := range locals {
		fmt.Fprintf(&b, "manetslp:   %-40s %s/%s (seq %d)\n", svc.URL, svc.Type, svc.Key, svc.Seq)
	}
	b.WriteString("manetslp: cache:\n")
	for _, svc := range a.cache.snapshot("", now) {
		if svc.Origin == a.host.ID() {
			continue
		}
		fmt.Fprintf(&b, "manetslp:   %-40s %s/%s from %s (expires in %ds)\n",
			svc.URL, svc.Type, svc.Key, svc.Origin, int(svc.Expires.Sub(now).Seconds()))
	}
	return b.String()
}

// ---- routing.PiggybackHandler ----

// Outgoing packs pending queries, local registrations and cached adverts
// into the routing message's extension slot, within budget.
func (a *Agent) Outgoing(msg routing.Outgoing) []byte {
	now := a.clk.Now()
	p := &Payload{}
	budget := msg.Budget - 8 // headroom for the counts
	if budget <= 0 {
		return nil
	}
	a.mu.Lock()
	for _, q := range a.pendingQ {
		if s := sizeOfQuery(&q); s <= budget {
			p.Queries = append(p.Queries, q)
			budget -= s
		}
	}
	for k, re := range a.relayQ {
		if now.After(re.expires) {
			delete(a.relayQ, k)
			continue
		}
		if s := sizeOfQuery(&re.q); s <= budget {
			p.Queries = append(p.Queries, re.q)
			budget -= s
		}
	}
	locals := make([]Advert, 0, len(a.local))
	for _, svc := range a.local {
		locals = append(locals, serviceToAdvert(svc, a.cfg.AdvertTTL))
	}
	a.mu.Unlock()
	for i := range locals {
		if s := sizeOfAdvert(&locals[i]); s <= budget {
			p.Adverts = append(p.Adverts, locals[i])
			budget -= s
		}
	}
	// Gossip learned entries so information spreads beyond one hop.
	for _, svc := range a.cache.snapshot("", now) {
		if svc.Origin == a.host.ID() {
			continue
		}
		adv := Advert{
			Type: svc.Type, Key: svc.Key, URL: svc.URL, Attrs: svc.Attrs,
			Origin: svc.Origin, Seq: svc.Seq,
			TTLSec: ttlSec(svc.Expires.Sub(now)),
		}
		if adv.TTLSec == 0 {
			continue
		}
		s := sizeOfAdvert(&adv)
		if s > budget {
			break
		}
		p.Adverts = append(p.Adverts, adv)
		budget -= s
	}
	if len(p.Adverts) == 0 && len(p.Queries) == 0 {
		return nil
	}
	return p.Marshal()
}

// Incoming handles extensions found on received routing messages.
func (a *Agent) Incoming(msg routing.Incoming) {
	p, err := ParsePayload(msg.Ext)
	if err != nil {
		return
	}
	a.handlePayload(p)
}

func serviceToAdvert(svc Service, ttl time.Duration) Advert {
	return Advert{
		Type: svc.Type, Key: svc.Key, URL: svc.URL, Attrs: svc.Attrs,
		Origin: svc.Origin, Seq: svc.Seq, TTLSec: ttlSec(ttl),
	}
}

func ttlSec(d time.Duration) uint16 {
	s := int64(d / time.Second)
	if s <= 0 {
		return 0
	}
	if s > 0xffff {
		return 0xffff
	}
	return uint16(s)
}

// handlePayload processes adverts and queries from any source (piggyback
// extension, unicast reply, or multicast flood).
func (a *Agent) handlePayload(p *Payload) {
	now := a.clk.Now()
	self := a.host.ID()
	for _, adv := range p.Adverts {
		if adv.Origin == self || adv.TTLSec == 0 {
			continue
		}
		svc := Service{
			Type: adv.Type, Key: adv.Key, URL: adv.URL, Attrs: adv.Attrs,
			Origin: adv.Origin, Seq: adv.Seq,
			Expires: now.Add(time.Duration(adv.TTLSec) * time.Second),
		}
		if a.cache.upsert(svc) {
			a.mu.Lock()
			a.stats.AdvertsAccepted++
			a.mu.Unlock()
		}
	}
	for _, q := range p.Queries {
		a.handleQuery(q)
	}
}

func (a *Agent) handleQuery(q Query) {
	if q.Origin == a.host.ID() {
		return
	}
	now := a.clk.Now()
	k := qkey{q.Origin, q.ID}
	a.mu.Lock()
	if _, seen := a.seenQ[k]; seen {
		a.mu.Unlock()
		return
	}
	a.seenQ[k] = now
	if len(a.seenQ) > 8192 {
		for key, t := range a.seenQ {
			if now.Sub(t) > 4*a.cfg.QueryRelayTTL {
				delete(a.seenQ, key)
			}
		}
	}
	a.mu.Unlock()

	if svc, ok := a.queryMatch(q, now); ok {
		// Answer with a unicast reply to the querying node's SLP port.
		reply := &Payload{Adverts: []Advert{serviceToAdvert(svc, svc.Expires.Sub(now))}}
		a.mu.Lock()
		a.stats.QueriesAnswered++
		a.mu.Unlock()
		_ = a.conn.WriteTo(reply.Marshal(), q.Origin, Port)
		return
	}
	if q.Hops <= 1 {
		return
	}
	q.Hops--
	a.mu.Lock()
	a.stats.QueriesRelayed++
	a.relayQ[k] = relayEntry{q: q, expires: now.Add(a.cfg.QueryRelayTTL)}
	a.mu.Unlock()
}

// queryMatch resolves a query against the cache; an empty key matches any
// service of the type.
func (a *Agent) queryMatch(q Query, now time.Time) (Service, bool) {
	if q.Key == "" {
		return a.cache.getAny(q.Type, now)
	}
	return a.cache.get(q.Type, q.Key, now)
}

// ---- multicast baseline ----

// floodQuery broadcasts a SrvRqst as a dedicated service frame.
func (a *Agent) floodQuery(q Query) {
	a.mu.Lock()
	a.stats.FloodsSent++
	a.mu.Unlock()
	p := &Payload{Queries: []Query{q}}
	_ = a.host.SendFrame(netem.Broadcast, netem.KindService, p.Marshal())
}

// onServiceFrame handles multicast-mode floods: dedup, answer if known,
// otherwise re-broadcast with a decremented hop budget.
func (a *Agent) onServiceFrame(f netem.Frame) {
	p, err := ParsePayload(f.Payload)
	if err != nil {
		return
	}
	now := a.clk.Now()
	for _, adv := range p.Adverts {
		if adv.Origin == a.host.ID() || adv.TTLSec == 0 {
			continue
		}
		a.cache.upsert(Service{
			Type: adv.Type, Key: adv.Key, URL: adv.URL, Attrs: adv.Attrs,
			Origin: adv.Origin, Seq: adv.Seq,
			Expires: now.Add(time.Duration(adv.TTLSec) * time.Second),
		})
	}
	for _, q := range p.Queries {
		if q.Origin == a.host.ID() {
			continue
		}
		k := qkey{q.Origin, q.ID}
		a.mu.Lock()
		if _, seen := a.seenQ[k]; seen {
			a.mu.Unlock()
			continue
		}
		a.seenQ[k] = now
		a.mu.Unlock()
		if svc, ok := a.queryMatch(q, now); ok {
			reply := &Payload{Adverts: []Advert{serviceToAdvert(svc, svc.Expires.Sub(now))}}
			a.mu.Lock()
			a.stats.QueriesAnswered++
			a.mu.Unlock()
			_ = a.conn.WriteTo(reply.Marshal(), q.Origin, Port)
			continue
		}
		if q.Hops > 1 {
			q.Hops--
			fwd := &Payload{Queries: []Query{q}}
			_ = a.host.SendFrame(netem.Broadcast, netem.KindService, fwd.Marshal())
		}
	}
}

// recvLoop processes unicast SLP datagrams (query replies).
func (a *Agent) recvLoop() {
	defer a.wg.Done()
	for {
		dg, ok := a.conn.Recv()
		if !ok {
			return
		}
		p, err := ParsePayload(dg.Data)
		if err != nil {
			continue
		}
		a.handlePayload(p)
	}
}

// refreshLoop periodically bumps local registration sequence numbers so
// remote caches keep them alive.
func (a *Agent) refreshLoop() {
	defer a.wg.Done()
	interval := a.cfg.AdvertTTL / 3
	if interval <= 0 {
		interval = time.Second
	}
	for {
		timer := a.clk.NewTimer(interval)
		select {
		case <-a.stop:
			timer.Stop()
			return
		case <-timer.C():
		}
		now := a.clk.Now()
		a.mu.Lock()
		for k, svc := range a.local {
			a.seq++
			svc.Seq = a.seq
			svc.Expires = now.Add(a.cfg.AdvertTTL)
			a.local[k] = svc
			a.cache.upsert(svc)
		}
		a.mu.Unlock()
	}
}
