package slp

import (
	"reflect"
	"testing"
)

// FuzzParsePayload: any input must either error or yield a payload whose
// Marshal output reparses to the same value.
func FuzzParsePayload(f *testing.F) {
	f.Add((&Payload{
		Adverts: []Advert{{Type: "sip", Key: "a@h", URL: "service:sip://n:5060",
			Origin: "n", Seq: 1, TTLSec: 30}},
		Queries: []Query{{Type: "sip", Key: "b@h", Origin: "m", ID: 2, Hops: 8}},
	}).Marshal())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePayload(data)
		if err != nil {
			return
		}
		p2, err := ParsePayload(p.Marshal())
		if err != nil {
			t.Fatalf("marshal output unparseable: %v", err)
		}
		normalize := func(pp *Payload) {
			for i := range pp.Adverts {
				if len(pp.Adverts[i].Attrs) == 0 {
					pp.Adverts[i].Attrs = nil
				}
			}
		}
		normalize(p)
		normalize(p2)
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip drift:\n%+v\n%+v", p, p2)
		}
	})
}
