package slp

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/routing"
)

// newShardAgent builds an unstarted agent on a throwaway single-host network
// with a fake clock, so tests can drive handleQuery/Outgoing directly and
// advance time deterministically.
func newShardAgent(t *testing.T, cfg Config) (*Agent, *clock.Fake) {
	t.Helper()
	net := netem.NewNetwork(netem.Config{})
	t.Cleanup(net.Close)
	h, err := net.AddHost("self", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	fc := clock.NewFake(time.Unix(1_000_000, 0))
	cfg.Clock = fc
	a := NewAgent(h, cfg)
	conn, err := h.Listen(Port)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	a.conn = conn
	return a, fc
}

func (a *Agent) seenLen() int {
	a.qmu.Lock()
	defer a.qmu.Unlock()
	return len(a.seenQ)
}

func (a *Agent) relayLen() int {
	a.qmu.Lock()
	defer a.qmu.Unlock()
	return len(a.relayQ)
}

// TestSeenQueryBoundedUnderLoad pins the fix for the unbounded seenQ growth:
// sustained unique query traffic must never grow the dedup set past the hard
// cap, and entries whose retention deadline passed must be pruned lazily
// without a full map sweep.
func TestSeenQueryBoundedUnderLoad(t *testing.T) {
	a, fc := newShardAgent(t, Config{QueryRelayTTL: 100 * time.Millisecond})

	// 3× the cap of unique queries from distinct origins, all unanswerable
	// (empty cache) so each marches through the dedup+relay path.
	total := 3 * seenQHardCap
	for i := 0; i < total; i++ {
		a.handleQuery(Query{
			Type:   "sip",
			Key:    fmt.Sprintf("user%d@example", i),
			Origin: netem.NodeID(fmt.Sprintf("n%d", i)),
			ID:     uint32(i),
			Hops:   4,
		})
	}
	if n := a.seenLen(); n > seenQHardCap {
		t.Fatalf("seenQ grew to %d entries under load, cap is %d", n, seenQHardCap)
	}
	if n := a.seenLen(); n < seenQHardCap/2 {
		t.Fatalf("seenQ holds only %d entries; eviction is discarding live state", n)
	}

	// Once the retention deadline (4×relayTTL) passes, the next insert must
	// drain the expired backlog instead of accumulating alongside it.
	fc.Advance(time.Second)
	a.handleQuery(Query{Type: "sip", Key: "late", Origin: "late", ID: 1, Hops: 4})
	if n := a.seenLen(); n > 8 {
		t.Fatalf("seenQ holds %d entries after all deadlines passed, want ~1", n)
	}

	// The relay set is pruned on the Outgoing path; after the TTL passed
	// nothing should still be riding control messages.
	a.Outgoing(routing.Outgoing{Budget: 1200})
	if n := a.relayLen(); n > 1 {
		t.Fatalf("relayQ holds %d entries after TTL expiry, want ≤1", n)
	}
}

// TestSeenQueryDedupSurvivesEviction checks the dedup property still holds
// for recent queries after older ones were cap-evicted.
func TestSeenQueryDedupSurvivesEviction(t *testing.T) {
	a, _ := newShardAgent(t, Config{QueryRelayTTL: 100 * time.Millisecond})
	for i := 0; i < seenQHardCap+100; i++ {
		a.handleQuery(Query{
			Type: "sip", Key: "k",
			Origin: netem.NodeID(fmt.Sprintf("n%d", i)), ID: uint32(i), Hops: 2,
		})
	}
	relayed := a.Stats().QueriesRelayed
	// Re-deliver the most recent query: it must still be recognised.
	last := seenQHardCap + 99
	a.handleQuery(Query{
		Type: "sip", Key: "k",
		Origin: netem.NodeID(fmt.Sprintf("n%d", last)), ID: uint32(last), Hops: 2,
	})
	if got := a.Stats().QueriesRelayed; got != relayed {
		t.Fatalf("duplicate of a recent query was re-relayed (%d -> %d)", relayed, got)
	}
}

// TestOutgoingScratchDoesNotAlias verifies the copy-out contract of the
// reused piggyback encoding buffer: bytes returned from one call must stay
// intact when a later call reuses the scratch writer.
func TestOutgoingScratchDoesNotAlias(t *testing.T) {
	a, _ := newShardAgent(t, Config{})
	if err := a.Register(Service{Type: "sip", Key: "alice", URL: ServiceURL("sip", "10.0.0.1:5060")}); err != nil {
		t.Fatal(err)
	}
	first := a.Outgoing(routing.Outgoing{Budget: 1200})
	if first == nil {
		t.Fatal("no payload with a local registration pending")
	}
	snapshot := append([]byte(nil), first...)

	// Register a second, longer service and re-encode: the scratch buffer is
	// rewritten, but the earlier return value must not change.
	if err := a.Register(Service{Type: "sip", Key: "bob-with-a-much-longer-key", URL: ServiceURL("sip", "10.0.0.2:5060")}); err != nil {
		t.Fatal(err)
	}
	second := a.Outgoing(routing.Outgoing{Budget: 1200})
	if second == nil {
		t.Fatal("no payload on second call")
	}
	if !bytes.Equal(first, snapshot) {
		t.Fatal("earlier Outgoing result mutated by a later call: scratch buffer aliased")
	}
	if p, err := ParsePayload(second); err != nil || len(p.Adverts) != 2 {
		t.Fatalf("second payload parse = %v, adverts = %+v", err, p)
	}
}
