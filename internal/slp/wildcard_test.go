package slp

import (
	"testing"
	"time"
)

func TestWildcardLookupCached(t *testing.T) {
	_, agents, _ := buildChain(t, 1, ModePiggyback)
	a := agents[0]
	if _, ok := a.LookupCached("gateway", ""); ok {
		t.Fatal("wildcard hit on empty cache")
	}
	if err := a.Register(Service{Type: "gateway", Key: "10.0.0.1", URL: "service:gateway://10.0.0.1:9000"}); err != nil {
		t.Fatal(err)
	}
	svc, ok := a.LookupCached("gateway", "")
	if !ok || svc.Key != "10.0.0.1" {
		t.Fatalf("wildcard = %+v %v", svc, ok)
	}
	// Wildcard must not leak across types.
	if _, ok := a.LookupCached("sip", ""); ok {
		t.Fatal("wildcard crossed service types")
	}
}

func TestWildcardQueryAnsweredRemotely(t *testing.T) {
	hosts, agents, _ := buildChain(t, 3, ModePiggyback)
	// The far node registers a gateway service under its own key.
	if err := agents[2].Register(Service{
		Type: "gateway", Key: string(hosts[2].ID()),
		URL: ServiceURL("gateway", string(hosts[2].ID())+":9000"),
	}); err != nil {
		t.Fatal(err)
	}
	// A wildcard lookup from the first node resolves it.
	svc, err := agents[0].Lookup("gateway", "", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Origin != hosts[2].ID() {
		t.Fatalf("origin = %v", svc.Origin)
	}
}

func TestMultipleServicesSameTypeCoexist(t *testing.T) {
	_, agents, _ := buildChain(t, 1, ModePiggyback)
	a := agents[0]
	for _, id := range []string{"gw1", "gw2", "gw3"} {
		if err := a.Register(Service{Type: "gateway", Key: id, URL: "service:gateway://" + id + ":9000"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Services("gateway"); len(got) != 3 {
		t.Fatalf("services = %d, want 3", len(got))
	}
}
