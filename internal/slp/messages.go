package slp

import (
	"fmt"
	"strings"
	"time"

	"siphoc/internal/netem"
	"siphoc/internal/wire"
)

// Port is the well-known SLP port the agents bind (RFC 2608).
const Port uint16 = 427

// Service is one service registration, e.g. a SIP binding
// (Type "sip", Key "alice@voicehoc.ch", URL "service:sip://10.0.0.1:5060")
// or a gateway announcement (Type "gateway").
type Service struct {
	Type    string            // service type, e.g. "sip", "gateway"
	Key     string            // lookup key within the type, e.g. the AOR
	URL     string            // service URL, "service:<type>://host:port"
	Attrs   map[string]string // free-form attributes
	Origin  netem.NodeID      // node that registered the service
	Seq     uint32            // per-origin freshness counter
	Expires time.Time         // local expiry (computed from the TTL)
}

// ServiceURL builds the canonical service URL string.
func ServiceURL(stype string, addr string) string {
	return "service:" + stype + "://" + addr
}

// ParseServiceURL splits "service:<type>://<addr>".
func ParseServiceURL(url string) (stype, addr string, err error) {
	rest, ok := strings.CutPrefix(url, "service:")
	if !ok {
		return "", "", fmt.Errorf("slp: url %q: missing service: prefix", url)
	}
	stype, addr, ok = strings.Cut(rest, "://")
	if !ok {
		return "", "", fmt.Errorf("slp: url %q: missing ://", url)
	}
	return stype, addr, nil
}

// Item kinds inside the piggyback extension / service datagrams.
const (
	itemAdvert uint8 = 1
	itemQuery  uint8 = 2
)

// Advert is the wire form of a disseminated service registration.
type Advert struct {
	Type   string
	Key    string
	URL    string
	Attrs  map[string]string
	Origin netem.NodeID
	Seq    uint32
	TTLSec uint16
}

// Query asks the network for services of a type/key.
type Query struct {
	Type   string
	Key    string // empty matches every service of the type
	Origin netem.NodeID
	ID     uint32
	Hops   uint8 // remaining epidemic relay budget
}

// Payload is the content of one SLP extension or datagram: a batch of
// adverts and queries.
type Payload struct {
	Adverts []Advert
	Queries []Query
}

// Marshal encodes the payload.
func (p *Payload) Marshal() []byte {
	return p.MarshalInto(wire.NewWriter(64))
}

// MarshalInto encodes the payload into w and returns the encoded bytes,
// which alias w's buffer — callers reusing a scratch writer must copy the
// result out before the next Reset.
func (p *Payload) MarshalInto(w *wire.Writer) []byte {
	w.U16(uint16(len(p.Adverts)))
	for i := range p.Adverts {
		marshalAdvert(w, &p.Adverts[i])
	}
	w.U16(uint16(len(p.Queries)))
	for i := range p.Queries {
		marshalQuery(w, &p.Queries[i])
	}
	return w.Bytes()
}

func marshalAdvert(w *wire.Writer, a *Advert) {
	w.U8(itemAdvert)
	w.String(a.Type)
	w.String(a.Key)
	w.String(a.URL)
	w.U16(uint16(len(a.Attrs)))
	for k, v := range a.Attrs {
		w.String(k)
		w.String(v)
	}
	w.String(string(a.Origin))
	w.U32(a.Seq)
	w.U16(a.TTLSec)
}

func marshalQuery(w *wire.Writer, q *Query) {
	w.U8(itemQuery)
	w.String(q.Type)
	w.String(q.Key)
	w.String(string(q.Origin))
	w.U32(q.ID)
	w.U8(q.Hops)
}

// sizeOfAdvert returns the encoded size, used for budget packing.
func sizeOfAdvert(a *Advert) int {
	n := 1 + 2 + len(a.Type) + 2 + len(a.Key) + 2 + len(a.URL) + 2
	for k, v := range a.Attrs {
		n += 4 + len(k) + len(v)
	}
	n += 2 + len(a.Origin) + 4 + 2
	return n
}

func sizeOfQuery(q *Query) int {
	return 1 + 2 + len(q.Type) + 2 + len(q.Key) + 2 + len(q.Origin) + 4 + 1
}

// ParsePayload decodes a payload.
func ParsePayload(b []byte) (*Payload, error) {
	r := wire.NewReader(b)
	p := &Payload{}
	na := int(r.U16())
	for range na {
		if kind := r.U8(); kind != itemAdvert {
			return nil, fmt.Errorf("slp: expected advert item, got %d", kind)
		}
		a := Advert{Type: r.String(), Key: r.String(), URL: r.String()}
		nattrs := int(r.U16())
		if nattrs > 0 {
			a.Attrs = make(map[string]string, nattrs)
			for range nattrs {
				k := r.String()
				a.Attrs[k] = r.String()
			}
		}
		a.Origin = netem.NodeID(r.String())
		a.Seq = r.U32()
		a.TTLSec = r.U16()
		if r.Err() != nil {
			break
		}
		p.Adverts = append(p.Adverts, a)
	}
	nq := int(r.U16())
	for range nq {
		if kind := r.U8(); kind != itemQuery {
			return nil, fmt.Errorf("slp: expected query item, got %d", kind)
		}
		q := Query{Type: r.String(), Key: r.String()}
		q.Origin = netem.NodeID(r.String())
		q.ID = r.U32()
		q.Hops = r.U8()
		if r.Err() != nil {
			break
		}
		p.Queries = append(p.Queries, q)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("slp: parse payload: %w", err)
	}
	return p, nil
}
