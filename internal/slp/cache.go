package slp

import (
	"sort"
	"sync"
	"time"

	"siphoc/internal/netem"
)

type cacheKey struct {
	stype string
	key   string
}

// cache stores remote service registrations learned from the network,
// applying per-origin freshness (higher Seq wins; equal Seq refreshes the
// expiry) and lazy TTL expiry.
type cache struct {
	mu      sync.Mutex
	entries map[cacheKey]Service
	// waiters are lookup calls blocked until a matching entry appears.
	waiters map[cacheKey][]chan Service
}

func newCache() *cache {
	return &cache{
		entries: make(map[cacheKey]Service),
		waiters: make(map[cacheKey][]chan Service),
	}
}

// upsert applies the freshness rule; it reports whether the entry was
// accepted (installed or refreshed). Wildcard waiters (key "") of the same
// type are signalled too.
func (c *cache) upsert(svc Service) bool {
	k := cacheKey{svc.Type, svc.Key}
	c.mu.Lock()
	cur, ok := c.entries[k]
	if ok && cur.Origin == svc.Origin && cur.Seq > svc.Seq {
		c.mu.Unlock()
		return false
	}
	c.entries[k] = svc
	waiters := c.waiters[k]
	delete(c.waiters, k)
	if svc.Key != "" {
		wk := cacheKey{svc.Type, ""}
		waiters = append(waiters, c.waiters[wk]...)
		delete(c.waiters, wk)
	}
	c.mu.Unlock()
	for _, ch := range waiters {
		ch <- svc
	}
	return true
}

// getAny returns any live service of the given type (wildcard lookup).
func (c *cache) getAny(stype string, now time.Time) (Service, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, svc := range c.entries {
		if k.stype != stype {
			continue
		}
		if now.After(svc.Expires) {
			delete(c.entries, k)
			continue
		}
		return svc, true
	}
	return Service{}, false
}

func (c *cache) get(stype, key string, now time.Time) (Service, bool) {
	k := cacheKey{stype, key}
	c.mu.Lock()
	defer c.mu.Unlock()
	svc, ok := c.entries[k]
	if !ok {
		return Service{}, false
	}
	if now.After(svc.Expires) {
		delete(c.entries, k)
		return Service{}, false
	}
	return svc, true
}

// wait registers a waiter channel for the key; the caller selects on it.
// cancel must be called if the waiter gives up.
func (c *cache) wait(stype, key string) (ch chan Service, cancel func()) {
	k := cacheKey{stype, key}
	ch = make(chan Service, 1)
	c.mu.Lock()
	c.waiters[k] = append(c.waiters[k], ch)
	c.mu.Unlock()
	return ch, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		ws := c.waiters[k]
		for i, w := range ws {
			if w == ch {
				c.waiters[k] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
	}
}

func (c *cache) remove(stype, key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, cacheKey{stype, key})
}

// removeOrigin drops every entry learned from origin, returning how many
// were evicted — the fault-invalidation hook for crashed nodes, whose
// adverts would otherwise be served until natural TTL expiry.
func (c *cache) removeOrigin(origin netem.NodeID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, svc := range c.entries {
		if svc.Origin == origin {
			delete(c.entries, k)
			n++
		}
	}
	return n
}

// snapshot returns live entries, optionally filtered by type, sorted by
// (type, key).
func (c *cache) snapshot(stype string, now time.Time) []Service {
	return c.snapshotInto(nil, stype, now)
}

// snapshotInto appends live entries to out (normally out[:0] of a reused
// scratch slice) so steady-state callers avoid reallocating per call.
func (c *cache) snapshotInto(out []Service, stype string, now time.Time) []Service {
	c.mu.Lock()
	defer c.mu.Unlock()
	if out == nil {
		out = make([]Service, 0, len(c.entries))
	}
	for k, svc := range c.entries {
		if now.After(svc.Expires) {
			delete(c.entries, k)
			continue
		}
		if stype != "" && svc.Type != stype {
			continue
		}
		out = append(out, svc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Key < out[j].Key
	})
	return out
}
