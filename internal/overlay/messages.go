// Package overlay implements a Kademlia-style DHT registrar: a peer-to-peer
// overlay of Internet-connected nodes storing AOR → contact bindings, keyed
// by sip.HashAOR — the decentralized replacement for the federation's central
// provider tier (ROADMAP item "P2P overlay registrar as a third lookup
// backend"; PAPERS.md "IAX-Based Peer-to-Peer VoIP Architecture").
//
// The overlay runs entirely on the shared event-loop core: every node's
// timers (re-publication, record expiry, RPC timeouts) are tasks on a
// clock.Scheduler and every datagram is handled inline on its netem delivery
// shard, so the steady goroutine cost is O(scheduler shards), independent of
// overlay size — the same property PR 8 established for the MANET protocols.
package overlay

import (
	"encoding/binary"
	"errors"
)

// Message kinds. Requests and their responses pair up: Ping/Pong,
// FindNode/Nodes, FindValue/Value, Store/Stored.
const (
	KindPing uint8 = iota + 1
	KindPong
	KindFindNode
	KindNodes
	KindFindValue
	KindValue
	KindStore
	KindStored
)

// MaxNodes bounds the node list carried in a Nodes/Value response — ample
// for any sensible replication factor and small enough that a response
// always fits a single frame.
const MaxNodes = 32

// NodeInfo is one overlay peer reference in a response's node list.
type NodeInfo struct {
	// ID is the peer's position in the 32-bit key space
	// (sip.HashAOR of its transport host ID).
	ID uint32
	// Addr is the peer's transport host. On parse it aliases the input
	// buffer; callers that retain it must copy (peer sets do).
	Addr []byte
}

// Message is one DHT wire message. A single struct covers all eight kinds;
// unused fields marshal as zero-length. Parse aliases the input buffer for
// AOR, Value and Nodes[i].Addr, and reuses the Nodes slice backing array —
// the lookup hot path parses with zero allocations.
type Message struct {
	Kind uint8
	// RPC correlates a response with its request.
	RPC uint32
	// From is the sender's overlay ID; 0 marks a passive client that must
	// not be inserted into k-buckets (it stores and serves nothing).
	From uint32
	// Key is the target of a FindNode/FindValue/Store.
	Key uint32
	// Seq orders bindings for the same AOR: higher wins (re-registration
	// supersedes, replicas converge independent of arrival order).
	Seq uint32
	// TTLSec is the remaining record lifetime in seconds (Store/Value).
	TTLSec uint16
	// AOR is the full address-of-record; FindValue/Store carry it so 32-bit
	// key collisions resolve by exact match.
	AOR []byte
	// Value is the binding's contact ("host:port") on Store/Value.
	Value []byte
	// Nodes carries the k closest known peers on Nodes and on a Value miss.
	Nodes []NodeInfo
}

// Wire format (big-endian):
//
//	kind(1) rpc(4) from(4) key(4) seq(4) ttl(2)
//	aorLen(2) aor... valueLen(2) value...
//	nodeCount(1) { id(4) addrLen(1) addr... }*
const msgFixedHeader = 1 + 4 + 4 + 4 + 4 + 2

// Codec errors.
var (
	ErrTruncated = errors.New("overlay: truncated message")
	ErrMalformed = errors.New("overlay: malformed message")
)

// AppendTo appends m's wire encoding to dst and returns the extended slice.
// With a pre-sized dst it allocates nothing; Marshal is the convenience
// wrapper that allocates a fresh buffer.
func (m *Message) AppendTo(dst []byte) []byte {
	dst = append(dst, m.Kind)
	dst = binary.BigEndian.AppendUint32(dst, m.RPC)
	dst = binary.BigEndian.AppendUint32(dst, m.From)
	dst = binary.BigEndian.AppendUint32(dst, m.Key)
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	dst = binary.BigEndian.AppendUint16(dst, m.TTLSec)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.AOR)))
	dst = append(dst, m.AOR...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Value)))
	dst = append(dst, m.Value...)
	dst = append(dst, byte(len(m.Nodes)))
	for i := range m.Nodes {
		dst = binary.BigEndian.AppendUint32(dst, m.Nodes[i].ID)
		dst = append(dst, byte(len(m.Nodes[i].Addr)))
		dst = append(dst, m.Nodes[i].Addr...)
	}
	return dst
}

// Marshal encodes m into a fresh buffer (one allocation).
func (m *Message) Marshal() []byte {
	size := msgFixedHeader + 2 + len(m.AOR) + 2 + len(m.Value) + 1
	for i := range m.Nodes {
		size += 4 + 1 + len(m.Nodes[i].Addr)
	}
	return m.AppendTo(make([]byte, 0, size))
}

// ParseInto decodes b into m, reusing m's Nodes backing array. AOR, Value
// and Nodes[i].Addr alias b: callers that retain them past b's lifetime must
// copy. With a reused m the parse allocates nothing.
func ParseInto(m *Message, b []byte) error {
	if len(b) < msgFixedHeader {
		return ErrTruncated
	}
	m.Kind = b[0]
	if m.Kind < KindPing || m.Kind > KindStored {
		return ErrMalformed
	}
	m.RPC = binary.BigEndian.Uint32(b[1:])
	m.From = binary.BigEndian.Uint32(b[5:])
	m.Key = binary.BigEndian.Uint32(b[9:])
	m.Seq = binary.BigEndian.Uint32(b[13:])
	m.TTLSec = binary.BigEndian.Uint16(b[17:])
	b = b[msgFixedHeader:]

	var err error
	if m.AOR, b, err = parseBytes16(b); err != nil {
		return err
	}
	if m.Value, b, err = parseBytes16(b); err != nil {
		return err
	}
	if len(b) < 1 {
		return ErrTruncated
	}
	count := int(b[0])
	b = b[1:]
	if count > MaxNodes {
		return ErrMalformed
	}
	m.Nodes = m.Nodes[:0]
	for range count {
		if len(b) < 5 {
			return ErrTruncated
		}
		id := binary.BigEndian.Uint32(b)
		alen := int(b[4])
		b = b[5:]
		if len(b) < alen {
			return ErrTruncated
		}
		m.Nodes = append(m.Nodes, NodeInfo{ID: id, Addr: b[:alen:alen]})
		b = b[alen:]
	}
	if len(b) != 0 {
		return ErrMalformed
	}
	return nil
}

func parseBytes16(b []byte) (field, rest []byte, err error) {
	if len(b) < 2 {
		return nil, nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return nil, nil, ErrTruncated
	}
	return b[:n:n], b[n:], nil
}
