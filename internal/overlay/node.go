package overlay

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/obs"
	"siphoc/internal/sip"
)

// DefaultPort is the overlay's well-known UDP port.
const DefaultPort = 7000

// bucketCap is the k-bucket capacity. Buckets hold more peers than the
// replication factor so lookups survive losing a whole replica set.
const bucketCap = 8

// Typed lookup errors — the resolver chain distinguishes "the overlay
// answered: nobody has this AOR" (fall through to the next backend) from
// "the overlay could not answer" (passed through to the caller).
var (
	// ErrNotFound means the lookup converged without finding a binding.
	ErrNotFound = errors.New("overlay: AOR not found")
	// ErrTimeout means the lookup did not converge within the deadline.
	ErrTimeout = errors.New("overlay: lookup timed out")
	// ErrClosed means the node is shut down.
	ErrClosed = errors.New("overlay: node closed")
)

// Config tunes an overlay node.
type Config struct {
	// Host is the node's transport. Full nodes live on Internet hosts;
	// passive clients run on MANET hosts and reach the overlay through
	// their gateway tunnel like any other Internet traffic.
	Host *netem.Host
	// Sched runs every overlay timer (re-publication, record expiry, RPC
	// timeouts) — required; the overlay has no goroutine timers at all.
	Sched *clock.Scheduler
	// Clock is the time source for TTL stamps and blocking waits
	// (default the system clock).
	Clock clock.Clock
	// Port is the overlay port (default DefaultPort).
	Port uint16
	// K is the replication factor: bindings are stored on the K closest
	// nodes and lookups terminate once the K closest answered (default 3).
	K int
	// Alpha is the lookup parallelism (default 3).
	Alpha int
	// TTL is the binding lifetime on storing nodes (default 2m).
	TTL time.Duration
	// Republish is the re-publication interval; it must undercut TTL so
	// bindings survive churn (default TTL/3).
	Republish time.Duration
	// RPCTimeout bounds one overlay RPC; a peer that misses it is evicted
	// from its bucket (default 250ms).
	RPCTimeout time.Duration
	// Bootstrap seeds the routing table with known overlay hosts.
	Bootstrap []netem.NodeID
	// Passive marks a client-only node: it publishes and looks up but
	// stores nothing, serves nothing and stays out of other nodes'
	// k-buckets (its messages carry From=0). MANET proxies run these.
	Passive bool
	// Obs records overlay counters; nil disables.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	if c.Port == 0 {
		c.Port = DefaultPort
	}
	if c.K == 0 {
		c.K = 3
	}
	if c.Alpha == 0 {
		c.Alpha = 3
	}
	if c.TTL == 0 {
		c.TTL = 2 * time.Minute
	}
	if c.Republish == 0 {
		c.Republish = c.TTL / 3
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 250 * time.Millisecond
	}
	return c
}

// Stats counts overlay node activity.
type Stats struct {
	Sent          int64 // messages sent (requests + responses)
	Received      int64 // messages received and parsed
	Lookups       int64 // iterative lookups started
	LookupHits    int64 // lookups that found a binding
	LookupMisses  int64 // lookups that converged empty
	StoresServed  int64 // STORE requests accepted
	Republishes   int64 // owner re-publications executed
	RepairStores  int64 // storer-side replica-repair STOREs sent
	Timeouts      int64 // RPCs that expired
	Evictions     int64 // peers evicted after an RPC timeout
	StoredRecords int64 // live records held right now (gauge)
}

type counters struct {
	sent         atomic.Int64
	received     atomic.Int64
	lookups      atomic.Int64
	lookupHits   atomic.Int64
	lookupMisses atomic.Int64
	storesServed atomic.Int64
	republishes  atomic.Int64
	repairStores atomic.Int64
	timeouts     atomic.Int64
	evictions    atomic.Int64
}

// peer is one k-bucket entry.
type peer struct {
	id    uint32
	addr  netem.NodeID
	addrB []byte // cached bytes of addr for zero-alloc reply building
}

// record is one stored AOR binding replica.
type record struct {
	value   string
	seq     uint32
	expires time.Time
}

// pub is a binding this node owns and re-publishes.
type pub struct {
	value string
	seq   uint32
}

type pendingRPC struct {
	kind    uint8 // expected response kind
	to      peer
	timer   *clock.Task
	onReply func(*Message)
	onDone  func() // timeout path
}

// Node is one overlay participant: a Kademlia-style routing table over the
// 32-bit sip.HashAOR key space, a replica store, and the iterative
// FIND_VALUE machinery — all timer work on the shared clock.Scheduler and
// all receive work inline on the host's delivery shard. Zero goroutines per
// node.
type Node struct {
	cfg   Config
	id    uint32
	host  *netem.Host
	conn  *netem.Conn
	clk   clock.Clock
	sched *clock.Scheduler
	// skey scopes every scheduler task of this node to one shard, so its
	// timers serialize with each other like a per-node loop would.
	skey string

	mu        sync.Mutex
	buckets   [32][]peer
	records   map[string]record
	published map[string]pub
	pending   map[uint32]*pendingRPC
	nextRPC   uint32
	nextSeq   uint32
	started   bool
	closed    bool
	// fired collects completion callbacks to run after mu is released.
	fired []func()

	// scratch buffers reused across sends (guarded by mu) and receives
	// (serialized by the conn handler).
	txMsg   Message
	txBuf   []byte
	rxMsg   Message
	scratch []peer

	tick *clock.Task

	stats   counters
	obsHits *obs.Counter
	obsMiss *obs.Counter
}

// New creates an overlay node on cfg.Host. Call Start to join.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Host == nil {
		return nil, fmt.Errorf("overlay: Config.Host is required")
	}
	if cfg.Sched == nil {
		return nil, fmt.Errorf("overlay: Config.Sched is required (the overlay has no goroutine timers)")
	}
	n := &Node{
		cfg:       cfg,
		id:        sip.HashAOR(string(cfg.Host.ID())),
		host:      cfg.Host,
		clk:       cfg.Clock,
		sched:     cfg.Sched,
		skey:      "dht/" + string(cfg.Host.ID()),
		records:   make(map[string]record),
		published: make(map[string]pub),
		pending:   make(map[uint32]*pendingRPC),
	}
	if cfg.Obs.Enabled() {
		n.obsHits = cfg.Obs.Counter("overlay.lookups.hits")
		n.obsMiss = cfg.Obs.Counter("overlay.lookups.misses")
	}
	return n, nil
}

// ID returns the node's position in the key space.
func (n *Node) ID() uint32 { return n.id }

// Addr returns the node's transport host ID.
func (n *Node) Addr() netem.NodeID { return n.host.ID() }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	stored := int64(len(n.records))
	n.mu.Unlock()
	return Stats{
		Sent:          n.stats.sent.Load(),
		Received:      n.stats.received.Load(),
		Lookups:       n.stats.lookups.Load(),
		LookupHits:    n.stats.lookupHits.Load(),
		LookupMisses:  n.stats.lookupMisses.Load(),
		StoresServed:  n.stats.storesServed.Load(),
		Republishes:   n.stats.republishes.Load(),
		RepairStores:  n.stats.repairStores.Load(),
		Timeouts:      n.stats.timeouts.Load(),
		Evictions:     n.stats.evictions.Load(),
		StoredRecords: stored,
	}
}

// Start binds the overlay port, seeds the routing table from the bootstrap
// list and begins the join lookup plus the re-publication cycle.
func (n *Node) Start() error {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return fmt.Errorf("overlay: node already started")
	}
	n.started = true
	n.mu.Unlock()
	conn, err := n.host.Listen(n.cfg.Port)
	if err != nil {
		return fmt.Errorf("overlay: bind: %w", err)
	}
	n.conn = conn
	conn.Handle(n.onDatagram)

	n.mu.Lock()
	for _, b := range n.cfg.Bootstrap {
		if b == n.host.ID() {
			continue
		}
		n.addPeerLocked(sip.HashAOR(string(b)), b)
	}
	// Join: locate the neighbourhood of our own ID. The replies populate
	// buckets across prefixes as a side effect.
	n.startLookupLocked(n.id, "", false, nil)
	n.mu.Unlock()
	n.drainFired()

	n.tick = n.sched.Every(n.skey, n.cfg.Republish, n.onTick)
	return nil
}

// Close shuts the node down: future timers stop, pending RPCs die silently.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	for _, p := range n.pending {
		p.timer.Stop()
	}
	n.pending = make(map[uint32]*pendingRPC)
	n.mu.Unlock()
	n.tick.Stop()
	if n.conn != nil {
		n.conn.Close()
	}
}

// Publish announces an AOR → contact binding owned by this node: it is
// stored on the K closest overlay nodes now and re-published every Republish
// interval until Unpublish.
func (n *Node) Publish(aor, contact string) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.nextSeq++
	seq := n.nextSeq
	n.published[aor] = pub{value: contact, seq: seq}
	n.publishOneLocked(aor, contact, seq)
	n.mu.Unlock()
	n.drainFired()
}

// Unpublish stops re-publishing an AOR. Stored replicas age out by TTL.
func (n *Node) Unpublish(aor string) {
	n.mu.Lock()
	delete(n.published, aor)
	n.mu.Unlock()
}

// LookupAsync starts an iterative FIND_VALUE for aor; cb is invoked exactly
// once with the binding's contact, or ok=false when the lookup converges
// without finding one. cb runs on an event-loop worker and must not block.
func (n *Node) LookupAsync(aor string, cb func(contact string, ok bool)) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		cb("", false)
		return
	}
	// Local fast path: we hold a replica or own the binding.
	if p, ok := n.published[aor]; ok {
		n.mu.Unlock()
		cb(p.value, true)
		return
	}
	if r, ok := n.records[aor]; ok && n.clk.Now().Before(r.expires) {
		n.mu.Unlock()
		cb(r.value, true)
		return
	}
	n.stats.lookups.Add(1)
	n.startLookupLocked(sip.HashAOR(aor), aor, true, func(res lookupResult) {
		if res.found {
			n.stats.lookupHits.Add(1)
			n.obsHits.Add(1)
			cb(res.value, true)
		} else {
			n.stats.lookupMisses.Add(1)
			n.obsMiss.Add(1)
			cb("", false)
		}
	})
	n.mu.Unlock()
	n.drainFired()
}

// Lookup is the blocking facade over LookupAsync used by the proxy's
// resolver chain: it waits for the lookup to converge or the timeout to
// elapse. Returns ErrNotFound on a converged miss, ErrTimeout past the
// deadline, ErrClosed when the node is down.
func (n *Node) Lookup(aor string, timeout time.Duration) (string, error) {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return "", ErrClosed
	}
	type outcome struct {
		value string
		ok    bool
	}
	ch := make(chan outcome, 1)
	n.LookupAsync(aor, func(v string, ok bool) { ch <- outcome{v, ok} })
	t := n.clk.NewTimer(timeout)
	defer t.Stop()
	select {
	case out := <-ch:
		if !out.ok {
			return "", ErrNotFound
		}
		return out.value, nil
	case <-t.C():
		return "", ErrTimeout
	}
}

// Peers returns the number of distinct peers across all k-buckets.
func (n *Node) Peers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for i := range n.buckets {
		total += len(n.buckets[i])
	}
	return total
}

// --- periodic work ---------------------------------------------------------

// onTick is the node's single recurring task: expire dead replicas, re-publish
// owned bindings through a fresh iterative lookup (churn-aware placement: the
// K closest *live* nodes get the binding), and directly refresh held replicas
// onto the currently known closest peers so bindings survive the crash of
// their original publisher.
func (n *Node) onTick(time.Time) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	now := n.clk.Now()
	for aor, r := range n.records {
		if !now.Before(r.expires) {
			delete(n.records, aor)
		}
	}
	// Deterministic iteration order: sorted AORs.
	aors := make([]string, 0, len(n.published))
	for aor := range n.published {
		aors = append(aors, aor)
	}
	sort.Strings(aors)
	for _, aor := range aors {
		p := n.published[aor]
		n.stats.republishes.Add(1)
		n.publishOneLocked(aor, p.value, p.seq)
	}
	if !n.cfg.Passive {
		held := make([]string, 0, len(n.records))
		for aor := range n.records {
			held = append(held, aor)
		}
		sort.Strings(held)
		for _, aor := range held {
			r := n.records[aor]
			ttl := r.expires.Sub(now)
			if ttl < time.Second {
				// Not worth forwarding: the floor in ttlSec would store a
				// zero-lifetime replica. The owner's republish (or expiry)
				// settles this binding's fate.
				continue
			}
			n.repairLocked(aor, r.value, r.seq, ttl)
		}
	}
	n.mu.Unlock()
	n.drainFired()
}

// publishOneLocked places a binding on the K closest nodes found by a fresh
// iterative lookup.
func (n *Node) publishOneLocked(aor, value string, seq uint32) {
	key := sip.HashAOR(aor)
	n.startLookupLocked(key, "", false, func(res lookupResult) {
		n.storeTo(res.closest, key, aor, value, seq, n.cfg.TTL)
	})
}

// repairLocked re-stores a held replica directly onto the K closest known
// peers (no lookup round: bucket knowledge is fresh enough between ticks and
// the owner's periodic lookup corrects placement drift).
func (n *Node) repairLocked(aor, value string, seq uint32, ttl time.Duration) {
	key := sip.HashAOR(aor)
	closest := n.closestToLocked(key, n.cfg.K)
	for _, p := range closest {
		n.stats.repairStores.Add(1)
		n.sendStoreLocked(p, key, aor, value, seq, ttl)
	}
}

// storeTo sends STORE for a binding to a set of peers (locks internally).
func (n *Node) storeTo(peers []peer, key uint32, aor, value string, seq uint32, ttl time.Duration) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	for _, p := range peers {
		n.sendStoreLocked(p, key, aor, value, seq, ttl)
	}
	n.mu.Unlock()
	n.drainFired()
}

func (n *Node) sendStoreLocked(p peer, key uint32, aor, value string, seq uint32, ttl time.Duration) {
	m := &n.txMsg
	m.Kind = KindStore
	m.Key = key
	m.Seq = seq
	m.TTLSec = ttlSec(ttl)
	m.AOR = append(m.AOR[:0], aor...)
	m.Value = append(m.Value[:0], value...)
	m.Nodes = m.Nodes[:0]
	n.sendRPCLocked(p, m, KindStored, func(*Message) {}, func() {})
}

// --- k-buckets -------------------------------------------------------------

// bucketIndex maps a peer ID to its k-bucket: shared-prefix length with our
// own ID. Never called with id == n.id.
func (n *Node) bucketIndex(id uint32) int {
	return bits.LeadingZeros32(id ^ n.id)
}

// addPeerLocked inserts a peer, keeping each bucket sorted by ID. A full
// bucket drops the newcomer (Kademlia prefers long-lived peers; eviction
// happens only on RPC timeout), which also keeps the routing table a pure
// function of the peer set — no arrival-order dependence to break replay.
func (n *Node) addPeerLocked(id uint32, addr netem.NodeID) {
	if id == n.id || id == 0 {
		return
	}
	b := n.buckets[n.bucketIndex(id)]
	i := sort.Search(len(b), func(i int) bool { return b[i].id >= id })
	if i < len(b) && b[i].id == id {
		if b[i].addr != addr {
			// Same key-space position, new transport (host restarted under
			// a name hashing identically): take the fresh address.
			b[i].addr = addr
			b[i].addrB = []byte(addr)
		}
		return
	}
	if len(b) >= bucketCap {
		return
	}
	b = append(b, peer{})
	copy(b[i+1:], b[i:])
	b[i] = peer{id: id, addr: addr, addrB: []byte(addr)}
	n.buckets[n.bucketIndex(id)] = b
}

func (n *Node) removePeerLocked(id uint32) {
	if id == n.id || id == 0 {
		return
	}
	idx := n.bucketIndex(id)
	b := n.buckets[idx]
	i := sort.Search(len(b), func(i int) bool { return b[i].id >= id })
	if i < len(b) && b[i].id == id {
		n.buckets[idx] = append(b[:i], b[i+1:]...)
		n.stats.evictions.Add(1)
	}
}

// closestToLocked returns up to k known peers sorted by XOR distance to key
// (ties by ID). The result aliases n.scratch — copy before releasing mu if
// retained.
func (n *Node) closestToLocked(key uint32, k int) []peer {
	n.scratch = n.scratch[:0]
	for i := range n.buckets {
		n.scratch = append(n.scratch, n.buckets[i]...)
	}
	sort.Slice(n.scratch, func(i, j int) bool {
		di, dj := n.scratch[i].id^key, n.scratch[j].id^key
		if di != dj {
			return di < dj
		}
		return n.scratch[i].id < n.scratch[j].id
	})
	if len(n.scratch) > k {
		n.scratch = n.scratch[:k]
	}
	return n.scratch
}

// --- transport -------------------------------------------------------------

func (n *Node) fromID() uint32 {
	if n.cfg.Passive {
		return 0
	}
	return n.id
}

// sendLocked marshals m into the reused tx buffer and ships it.
func (n *Node) sendLocked(m *Message, dst netem.NodeID, port uint16) {
	n.txBuf = m.AppendTo(n.txBuf[:0])
	n.stats.sent.Add(1)
	_ = n.conn.WriteTo(n.txBuf, dst, port)
}

// sendRPCLocked issues a request with a correlation ID and arms its timeout
// on the scheduler. A timeout evicts the peer and reports failure.
func (n *Node) sendRPCLocked(to peer, m *Message, respKind uint8, onReply func(*Message), onTimeout func()) {
	n.nextRPC++
	rpc := n.nextRPC
	m.RPC = rpc
	m.From = n.fromID()
	p := &pendingRPC{kind: respKind, to: to, onReply: onReply, onDone: onTimeout}
	n.pending[rpc] = p
	p.timer = n.sched.After(n.skey, n.cfg.RPCTimeout, func(time.Time) { n.onRPCTimeout(rpc) })
	n.sendLocked(m, to.addr, n.cfg.Port)
}

func (n *Node) onRPCTimeout(rpc uint32) {
	n.mu.Lock()
	p := n.pending[rpc]
	if p == nil || n.closed {
		n.mu.Unlock()
		return
	}
	delete(n.pending, rpc)
	n.stats.timeouts.Add(1)
	n.removePeerLocked(p.to.id)
	p.onDone()
	n.mu.Unlock()
	n.drainFired()
}

// drainFired runs completion callbacks queued while mu was held. Callbacks
// may re-enter the node (Publish continuations do).
func (n *Node) drainFired() {
	for {
		n.mu.Lock()
		fired := n.fired
		n.fired = nil
		n.mu.Unlock()
		if len(fired) == 0 {
			return
		}
		for _, fn := range fired {
			fn()
		}
	}
}

// onDatagram is the inline receive path: parse into the reused rx message,
// refresh the sender's bucket, then serve the request or complete the RPC.
func (n *Node) onDatagram(dg *netem.Datagram) {
	m := &n.rxMsg
	if err := ParseInto(m, dg.Data); err != nil {
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.stats.received.Add(1)
	n.addPeerLocked(m.From, dg.SrcNode)
	switch m.Kind {
	case KindPing:
		n.replyLocked(m, KindPong, dg)
	case KindFindNode:
		n.serveFindLocked(m, dg, false)
	case KindFindValue:
		n.serveFindLocked(m, dg, true)
	case KindStore:
		n.serveStoreLocked(m, dg)
	case KindPong, KindNodes, KindValue, KindStored:
		n.completeRPCLocked(m)
	}
	n.mu.Unlock()
	n.drainFired()
}

// replyLocked sends a minimal response echoing the request's RPC id.
func (n *Node) replyLocked(req *Message, kind uint8, dg *netem.Datagram) {
	r := &n.txMsg
	r.Kind = kind
	r.RPC = req.RPC
	r.From = n.fromID()
	r.Key = 0
	r.Seq = 0
	r.TTLSec = 0
	r.AOR = r.AOR[:0]
	r.Value = r.Value[:0]
	r.Nodes = r.Nodes[:0]
	n.sendLocked(r, dg.SrcNode, dg.SrcPort)
}

// serveFindLocked answers FIND_NODE and FIND_VALUE. A value hit returns the
// binding; otherwise up to a full bucket of closest known peers (excluding
// the asker) guides the iterative lookup onward. The fan-out is bucketCap,
// not the replication factor K: with sparse per-node routing tables a K-sized
// response starves the search and lets it converge on a local minimum that
// differs from the publisher's placement set.
func (n *Node) serveFindLocked(req *Message, dg *netem.Datagram, wantValue bool) {
	key := req.Key
	from := req.From
	r := &n.txMsg
	r.Kind = KindNodes
	r.RPC = req.RPC
	r.Key = key
	r.Seq = 0
	r.TTLSec = 0
	r.Value = r.Value[:0]
	r.Nodes = r.Nodes[:0]
	if wantValue {
		r.Kind = KindValue
		aor := string(req.AOR)
		r.AOR = append(r.AOR[:0], aor...)
		if rec, ok := n.records[aor]; ok && n.clk.Now().Before(rec.expires) {
			r.Value = append(r.Value, rec.value...)
			r.Seq = rec.seq
			r.TTLSec = ttlSec(rec.expires.Sub(n.clk.Now()))
			r.From = n.fromID()
			n.sendLocked(r, dg.SrcNode, dg.SrcPort)
			return
		}
	} else {
		r.AOR = r.AOR[:0]
	}
	for _, p := range n.closestToLocked(key, bucketCap) {
		if p.id == from {
			continue
		}
		r.Nodes = append(r.Nodes, NodeInfo{ID: p.id, Addr: p.addrB})
	}
	r.From = n.fromID()
	n.sendLocked(r, dg.SrcNode, dg.SrcPort)
}

// serveStoreLocked accepts a replica. Sequence numbers make replicas
// convergent: an equal-or-newer seq upserts (refreshing the TTL), an older
// one is ignored — arrival order never matters.
func (n *Node) serveStoreLocked(req *Message, dg *netem.Datagram) {
	if !n.cfg.Passive {
		aor := string(req.AOR)
		cur, exists := n.records[aor]
		if !exists || req.Seq >= cur.seq {
			n.records[aor] = record{
				value:   string(req.Value),
				seq:     req.Seq,
				expires: n.clk.Now().Add(time.Duration(req.TTLSec) * time.Second),
			}
			n.stats.storesServed.Add(1)
		}
	}
	n.replyLocked(req, KindStored, dg)
}

// completeRPCLocked matches a response to its pending request.
func (n *Node) completeRPCLocked(m *Message) {
	p := n.pending[m.RPC]
	if p == nil || p.kind != m.Kind {
		return
	}
	delete(n.pending, m.RPC)
	p.timer.Stop()
	p.onReply(m)
}

// --- iterative lookup ------------------------------------------------------

const (
	candNew uint8 = iota
	candInflight
	candDone
	candFailed
)

type cand struct {
	p     peer
	state uint8
}

type lookupResult struct {
	found bool
	value string
	seq   uint32
	// closest holds the K closest responding peers, the replica set a
	// publish continuation stores to.
	closest []peer
}

// lookup is one iterative FIND_NODE/FIND_VALUE state machine. All methods
// run with n.mu held; progress is driven by RPC completions and timeouts.
type lookup struct {
	n         *Node
	key       uint32
	aor       string
	wantValue bool
	cands     []cand // sorted by (XOR distance to key, id)
	inflight  int
	done      bool
	found     bool
	value     string
	seq       uint32
	onDone    func(lookupResult)
}

// startLookupLocked seeds a lookup from the routing table and fires the
// first alpha queries. onDone (may be nil) is queued on n.fired so it runs
// outside the lock.
func (n *Node) startLookupLocked(key uint32, aor string, wantValue bool, onDone func(lookupResult)) {
	l := &lookup{n: n, key: key, aor: aor, wantValue: wantValue, onDone: onDone}
	for _, p := range n.closestToLocked(key, bucketCap) {
		l.cands = append(l.cands, cand{p: p})
	}
	l.stepLocked()
}

func (l *lookup) dist(id uint32) uint32 { return id ^ l.key }

// mergeLocked inserts newly learned peers into the sorted candidate list.
func (l *lookup) mergeLocked(nodes []NodeInfo) {
	for i := range nodes {
		id := nodes[i].ID
		if id == 0 || id == l.n.id {
			continue
		}
		addr := netem.NodeID(nodes[i].Addr)
		l.n.addPeerLocked(id, addr)
		pos := sort.Search(len(l.cands), func(j int) bool {
			dj, di := l.dist(l.cands[j].p.id), l.dist(id)
			if dj != di {
				return dj >= di
			}
			return l.cands[j].p.id >= id
		})
		if pos < len(l.cands) && l.cands[pos].p.id == id {
			continue
		}
		l.cands = append(l.cands, cand{})
		copy(l.cands[pos+1:], l.cands[pos:])
		l.cands[pos] = cand{p: peer{id: id, addr: addr, addrB: []byte(addr)}}
	}
}

// nextLocked picks the next candidate to query: the closest unqueried one,
// unless the bucketCap closest live candidates have already answered. The
// termination width is the bucket size, NOT the replication factor K: the
// search must map the whole neighborhood around the key, then placement (and
// the result's closest set) takes the K best of it. Terminating at K answers
// lets a reader stop on two mid-distance peers that never heard of the
// publisher's true closest set — persistent misses with no churn at all.
func (l *lookup) nextLocked() int {
	live := 0
	for i := range l.cands {
		switch l.cands[i].state {
		case candNew:
			return i
		case candDone, candInflight:
			live++
			if live >= bucketCap {
				return -1
			}
		}
	}
	return -1
}

func (l *lookup) stepLocked() {
	if l.done {
		return
	}
	if l.found {
		l.finishLocked()
		return
	}
	for l.inflight < l.n.cfg.Alpha {
		i := l.nextLocked()
		if i < 0 {
			break
		}
		l.cands[i].state = candInflight
		l.inflight++
		l.queryLocked(l.cands[i].p)
	}
	if l.inflight == 0 {
		l.finishLocked()
	}
}

func (l *lookup) queryLocked(p peer) {
	n := l.n
	m := &n.txMsg
	m.Kind = KindFindNode
	if l.wantValue {
		m.Kind = KindFindValue
	}
	m.Key = l.key
	m.Seq = 0
	m.TTLSec = 0
	m.AOR = append(m.AOR[:0], l.aor...)
	m.Value = m.Value[:0]
	m.Nodes = m.Nodes[:0]
	respKind := uint8(KindNodes)
	if l.wantValue {
		respKind = KindValue
	}
	id := p.id
	n.sendRPCLocked(p, m, respKind, func(resp *Message) {
		l.onReplyLocked(id, resp)
	}, func() {
		l.onTimeoutLocked(id)
	})
}

func (l *lookup) candIndex(id uint32) int {
	for i := range l.cands {
		if l.cands[i].p.id == id {
			return i
		}
	}
	return -1
}

func (l *lookup) onReplyLocked(id uint32, resp *Message) {
	if l.done {
		return
	}
	if i := l.candIndex(id); i >= 0 && l.cands[i].state == candInflight {
		l.cands[i].state = candDone
		l.inflight--
	}
	if l.wantValue && len(resp.Value) > 0 {
		// First value wins; replicas converge by seq, so any live replica
		// is as authoritative as the overlay gets mid-churn.
		l.found = true
		l.value = string(resp.Value)
		l.seq = resp.Seq
	} else {
		l.mergeLocked(resp.Nodes)
	}
	l.stepLocked()
}

func (l *lookup) onTimeoutLocked(id uint32) {
	if l.done {
		return
	}
	if i := l.candIndex(id); i >= 0 && l.cands[i].state == candInflight {
		l.cands[i].state = candFailed
		l.inflight--
	}
	l.stepLocked()
}

func (l *lookup) finishLocked() {
	if l.done {
		return
	}
	l.done = true
	res := lookupResult{found: l.found, value: l.value, seq: l.seq}
	for i := range l.cands {
		if l.cands[i].state != candDone {
			continue
		}
		res.closest = append(res.closest, l.cands[i].p)
		if len(res.closest) >= l.n.cfg.K {
			break
		}
	}
	if cb := l.onDone; cb != nil {
		l.n.fired = append(l.n.fired, func() { cb(res) })
	}
}

// ttlSec floors a duration to whole seconds. Flooring matters: replica
// repair forwards the *remaining* lifetime, and rounding up would let
// replicas refresh each other past the owner's TTL forever.
func ttlSec(d time.Duration) uint16 {
	s := d / time.Second
	if s < 0 {
		s = 0
	}
	if s > 65535 {
		s = 65535
	}
	return uint16(s)
}
