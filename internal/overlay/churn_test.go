package overlay_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"siphoc/internal/netem"
)

// churnLookup is one recorded lookup outcome. Elapsed is virtual time, so a
// deterministic replay must reproduce it exactly — it doubles as a latency
// fingerprint for the whole RPC/timeout schedule behind the lookup.
type churnLookup struct {
	AOR     string
	Value   string
	OK      bool
	Elapsed time.Duration
}

// churnResult is everything a seeded churn run produces that a replay must
// reproduce bit-identically.
type churnResult struct {
	Lookups []churnLookup
	Faults  []netem.FaultRecord
}

// runChurn executes one seeded churn run: build an N-node overlay, publish
// from stable owners, then crash and restart random non-owner nodes on a
// FaultPlan schedule while a stable client looks bindings up continuously.
func runChurn(t *testing.T, seed int64, nNodes, nPublishers, nEvents, nLookups int) churnResult {
	t.Helper()
	d := newDHTNet(t)
	defer d.close()
	cfg := baseConfig() // K=2 replicas
	d.buildCluster(nNodes, cfg)

	// Stable owners dht-1..dht-nPublishers publish one AOR each; their
	// re-publication loop is what heals replicas lost to churn.
	aors := make([]string, nPublishers)
	for i := range aors {
		aors[i] = fmt.Sprintf("user%d@dht.example", i)
		d.node(netem.NodeID(fmt.Sprintf("dht-%d", i+1))).
			Publish(aors[i], fmt.Sprintf("10.8.%d.1:5060", i))
	}
	d.run(100 * time.Millisecond)

	// Churn schedule: crash a random currently-up pool node every stepGap,
	// restart it outage later. The schedule is a pure function of the seed —
	// availability bookkeeping during building keeps picks valid (never crash
	// a node that is already down at that offset).
	const (
		firstFault = 1 * time.Second
		stepGap    = 400 * time.Millisecond
		outage     = 800 * time.Millisecond
	)
	var pool []netem.NodeID
	for i := nPublishers + 1; i < nNodes; i++ {
		pool = append(pool, netem.NodeID(fmt.Sprintf("dht-%d", i)))
	}
	rng := rand.New(rand.NewSource(seed))
	plan := netem.NewFaultPlan(d.inet.Network(), netem.FaultPlanConfig{Seed: seed})
	downUntil := make(map[netem.NodeID]time.Duration)
	planEnd := firstFault
	for ev := 0; ev < nEvents; ev++ {
		at := firstFault + time.Duration(ev)*stepGap
		victim := pool[rng.Intn(len(pool))]
		for downUntil[victim] > at {
			victim = pool[rng.Intn(len(pool))]
		}
		downUntil[victim] = at + outage
		name := victim
		plan.At(at, "crash "+string(name), func() { d.crash(name) })
		plan.At(at+outage, "restart "+string(name), func() { d.restart(name, cfg, "dht-0") })
		planEnd = at + outage
	}
	if err := plan.Run(); err != nil {
		t.Fatalf("fault plan: %v", err)
	}

	// Lookup loop: the stable client dht-0 resolves the published AORs
	// round-robin while the churn plays out.
	res := churnResult{Lookups: make([]churnLookup, nLookups)}
	client := d.node("dht-0")
	for i := 0; i < nLookups; i++ {
		before := d.fake.Now()
		v, ok := d.lookupVia(client, aors[i%len(aors)], 2*time.Second)
		res.Lookups[i] = churnLookup{
			AOR:     aors[i%len(aors)],
			Value:   v,
			OK:      ok,
			Elapsed: d.fake.Now().Sub(before),
		}
		d.run(30 * time.Millisecond)
	}

	// Let any remaining scheduled faults fire so the log is complete.
	if rest := planEnd + time.Second - d.fake.Now().Sub(d.start); rest > 0 {
		d.run(rest)
	}
	plan.Wait()
	res.Faults = plan.Log()
	return res
}

// TestOverlayChurnProperty is the seeded churn acceptance test: under a
// crash/restart schedule hitting the overlay every 400 ms, a stable client's
// lookup success rate stays >= 99% with K=2 replication, and the entire run —
// every lookup outcome, every virtual-time latency, the executed fault log —
// replays bit-identically for the same seed.
func TestOverlayChurnProperty(t *testing.T) {
	nNodes, nPublishers, nEvents, nLookups := 64, 12, 24, 240
	if testing.Short() || raceEnabled {
		nNodes, nPublishers, nEvents, nLookups = 32, 8, 12, 96
	}

	first := runChurn(t, 42, nNodes, nPublishers, nEvents, nLookups)

	okCount := 0
	for _, l := range first.Lookups {
		if l.OK {
			okCount++
		}
	}
	if min := (len(first.Lookups)*99 + 99) / 100; okCount < min {
		t.Errorf("lookup success %d/%d, want >= %d (99%%)", okCount, len(first.Lookups), min)
	}
	if got, want := len(first.Faults), 2*nEvents; got != want {
		t.Errorf("executed %d faults, want %d", got, want)
	}

	second := runChurn(t, 42, nNodes, nPublishers, nEvents, nLookups)
	if !reflect.DeepEqual(first.Faults, second.Faults) {
		t.Errorf("fault logs diverged between same-seed runs:\n%v\n%v", first.Faults, second.Faults)
	}
	if !reflect.DeepEqual(first.Lookups, second.Lookups) {
		for i := range first.Lookups {
			if first.Lookups[i] != second.Lookups[i] {
				t.Errorf("lookup %d diverged: %+v vs %+v", i, first.Lookups[i], second.Lookups[i])
				break
			}
		}
	}
}
