package overlay_test

import (
	"fmt"
	"testing"
	"time"

	"siphoc/internal/netem"
)

// BenchmarkOverlayLookup pins the end-to-end cost of one iterative DHT
// lookup on a 32-node overlay driven in virtual time: allocs/op is the whole
// system's allocation bill per lookup (client iteration, routing fan-out,
// every RPC on both ends, the event-loop driving), and lookup_ms is the
// virtual-time latency a caller observes. Both are guarded by cmd/benchcmp
// against the committed BENCH_dht.json (>25% growth fails `make bench`).
func BenchmarkOverlayLookup(b *testing.B) {
	d := newDHTNet(b)
	defer d.close()
	cfg := baseConfig()
	d.buildCluster(32, cfg)

	const nAORs = 16
	aors := make([]string, nAORs)
	for i := range aors {
		aors[i] = fmt.Sprintf("user%d@dht.example", i)
		d.node(netem.NodeID(fmt.Sprintf("dht-%d", i+1))).
			Publish(aors[i], fmt.Sprintf("10.8.%d.1:5060", i))
	}
	d.run(100 * time.Millisecond)

	client := d.node("dht-0")
	b.ReportAllocs()
	b.ResetTimer()
	var virt time.Duration
	for i := 0; i < b.N; i++ {
		before := d.fake.Now()
		if _, ok := d.lookupVia(client, aors[i%nAORs], 2*time.Second); !ok {
			b.Fatalf("lookup %d missed on an idle overlay", i)
		}
		virt += d.fake.Now().Sub(before)
	}
	b.ReportMetric(virt.Seconds()*1e3/float64(b.N), "lookup_ms")
}
