//go:build !race

package overlay_test

const raceEnabled = false
