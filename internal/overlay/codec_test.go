package overlay

import (
	"bytes"
	"testing"
)

func sampleMessage() *Message {
	return &Message{
		Kind:   KindValue,
		RPC:    0xdeadbeef,
		From:   42,
		Key:    0x1234abcd,
		Seq:    7,
		TTLSec: 90,
		AOR:    []byte("alice@voicehoc.ch"),
		Value:  []byte("10.0.0.3:5060"),
		Nodes: []NodeInfo{
			{ID: 1, Addr: []byte("dht-1")},
			{ID: 2, Addr: []byte("dht-2")},
			{ID: 3, Addr: []byte("gw-zurich")},
		},
	}
}

// FuzzOverlayMessage: any input must either error or parse to a message whose
// re-encoding is byte-identical to the input — ParseInto rejects trailing
// bytes, so the wire form is canonical and the round trip is exact.
func FuzzOverlayMessage(f *testing.F) {
	f.Add(sampleMessage().Marshal())
	f.Add((&Message{Kind: KindPing, RPC: 1, From: 9}).Marshal())
	f.Add((&Message{Kind: KindFindValue, Key: 0xffffffff, AOR: []byte("x")}).Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := ParseInto(&m, data); err != nil {
			return
		}
		out := m.AppendTo(nil)
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip drift:\n in:  %x\n out: %x\nmsg: %+v", data, out, m)
		}
	})
}

func TestMessageRoundTrip(t *testing.T) {
	m := sampleMessage()
	wire := m.Marshal()
	var got Message
	if err := ParseInto(&got, wire); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.Kind != m.Kind || got.RPC != m.RPC || got.From != m.From ||
		got.Key != m.Key || got.Seq != m.Seq || got.TTLSec != m.TTLSec {
		t.Fatalf("header drift: %+v vs %+v", got, m)
	}
	if !bytes.Equal(got.AOR, m.AOR) || !bytes.Equal(got.Value, m.Value) {
		t.Fatalf("payload drift: %+v vs %+v", got, m)
	}
	if len(got.Nodes) != len(m.Nodes) {
		t.Fatalf("node count %d, want %d", len(got.Nodes), len(m.Nodes))
	}
	for i := range m.Nodes {
		if got.Nodes[i].ID != m.Nodes[i].ID || !bytes.Equal(got.Nodes[i].Addr, m.Nodes[i].Addr) {
			t.Fatalf("node %d drift: %+v vs %+v", i, got.Nodes[i], m.Nodes[i])
		}
	}
}

// TestMessageAllocs pins the codec's allocation budget: Marshal pays exactly
// its one output buffer, AppendTo into a pre-sized buffer and ParseInto with
// a reused Message pay nothing. The DHT hot path (parse request, build reply
// into the node's tx buffer) rides on the zero-alloc pair.
func TestMessageAllocs(t *testing.T) {
	m := sampleMessage()

	if n := testing.AllocsPerRun(100, func() {
		_ = m.Marshal()
	}); n > 1 {
		t.Errorf("Marshal allocs = %v, want <= 1", n)
	}

	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(100, func() {
		buf = m.AppendTo(buf[:0])
	}); n != 0 {
		t.Errorf("AppendTo (pre-sized) allocs = %v, want 0", n)
	}

	wire := m.Marshal()
	var rx Message
	if err := ParseInto(&rx, wire); err != nil { // warm the Nodes backing array
		t.Fatalf("parse: %v", err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := ParseInto(&rx, wire); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("ParseInto (reused) allocs = %v, want 0", n)
	}
}
