package overlay_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/internet"
	"siphoc/internal/netem"
	"siphoc/internal/overlay"
)

// dhtNet is the deterministic overlay test harness: an event-loop Internet
// and a 1-shard scheduler on one fake clock, driven with 1 ms Advance steps
// (the per-hop delay) and the activity-fingerprint settle idiom from the
// event-loop golden tests. Every deadline stays on integer milliseconds, so
// seeded runs replay bit-identically.
type dhtNet struct {
	t     testing.TB
	fake  *clock.Fake
	start time.Time
	inet  *internet.Internet
	sched *clock.Scheduler

	// mu guards nodes and order: churn tests crash and restart nodes from
	// the FaultPlan runner goroutine while the driver polls activity.
	mu    sync.Mutex
	nodes map[netem.NodeID]*overlay.Node
	order []netem.NodeID
}

func newDHTNet(t testing.TB) *dhtNet {
	t.Helper()
	start := time.Unix(1_700_000_000, 0)
	fake := clock.NewFake(start)
	return &dhtNet{
		t:     t,
		fake:  fake,
		start: start,
		inet: internet.New(internet.Config{
			Clock:     fake,
			Delay:     time.Millisecond,
			EventLoop: true,
			Shards:    1,
		}),
		sched: clock.NewScheduler(fake, 1),
		nodes: make(map[netem.NodeID]*overlay.Node),
	}
}

func (d *dhtNet) close() {
	d.mu.Lock()
	var live []*overlay.Node
	for _, id := range d.order {
		if n := d.nodes[id]; n != nil {
			live = append(live, n)
		}
	}
	d.mu.Unlock()
	for _, n := range live {
		n.Close()
	}
	d.sched.Close()
	d.inet.Close()
}

// node returns the named overlay node (nil while crashed).
func (d *dhtNet) node(name netem.NodeID) *overlay.Node {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nodes[name]
}

// addNode brings up one overlay node; cfg.Host/Sched/Clock are filled in.
func (d *dhtNet) addNode(name netem.NodeID, cfg overlay.Config) *overlay.Node {
	d.t.Helper()
	host, err := d.inet.AddHost(name)
	if err != nil {
		d.t.Fatalf("add host %s: %v", name, err)
	}
	cfg.Host = host
	cfg.Sched = d.sched
	cfg.Clock = d.fake
	n, err := overlay.New(cfg)
	if err != nil {
		d.t.Fatalf("new node %s: %v", name, err)
	}
	if err := n.Start(); err != nil {
		d.t.Fatalf("start node %s: %v", name, err)
	}
	d.mu.Lock()
	if _, seen := d.nodes[name]; !seen {
		d.order = append(d.order, name)
	}
	d.nodes[name] = n
	d.mu.Unlock()
	return n
}

// crash closes a node and removes its host, simulating a power-off. Safe to
// call from a FaultPlan runner goroutine.
func (d *dhtNet) crash(name netem.NodeID) {
	d.mu.Lock()
	n := d.nodes[name]
	d.nodes[name] = nil
	d.mu.Unlock()
	if n != nil {
		n.Close()
	}
	d.inet.RemoveHost(name)
}

// restart brings a crashed node back with the same host name (hence the same
// overlay ID) and an empty record store, bootstrapping off boot. Safe to call
// from a FaultPlan runner goroutine.
func (d *dhtNet) restart(name netem.NodeID, cfg overlay.Config, boot netem.NodeID) {
	host, err := d.inet.AddHost(name)
	if err != nil {
		d.t.Errorf("restart host %s: %v", name, err)
		return
	}
	cfg.Host = host
	cfg.Sched = d.sched
	cfg.Clock = d.fake
	cfg.Bootstrap = []netem.NodeID{boot}
	n, err := overlay.New(cfg)
	if err != nil {
		d.t.Errorf("restart node %s: %v", name, err)
		return
	}
	if err := n.Start(); err != nil {
		d.t.Errorf("restart start %s: %v", name, err)
		return
	}
	d.mu.Lock()
	d.nodes[name] = n
	d.mu.Unlock()
}

// activity fingerprints the overlay's progress: message counters plus the
// pending fake-timer count, so a handler that fired but has not re-armed yet
// still reads as busy.
func (d *dhtNet) activity() [2]int64 {
	var sum int64
	d.mu.Lock()
	for _, id := range d.order {
		if n := d.nodes[id]; n != nil {
			s := n.Stats()
			sum += s.Sent + s.Received + s.Timeouts + s.StoresServed
		}
	}
	d.mu.Unlock()
	return [2]int64{sum, int64(d.fake.PendingTimers())}
}

// settle polls until the current virtual instant has drained.
func (d *dhtNet) settle() {
	last, stable := d.activity(), 0
	for i := 0; i < 4000 && stable < 4; i++ {
		runtime.Gosched()
		time.Sleep(50 * time.Microsecond)
		if cur := d.activity(); cur == last {
			stable++
		} else {
			last, stable = cur, 0
		}
	}
}

// advanceStep jumps virtual time toward limit: straight to the next pending
// timer deadline when one is armed, else by a bounded idle step. The bound
// matters — event-loop workers re-arm their shard timer asynchronously after
// it fires, so NextDeadline can transiently report nothing while tasks are
// still queued; an unbounded jump in that window would push the re-armed
// deadline past the target. Capping the step bounds the overshoot to one hop.
func (d *dhtNet) advanceStep(limit time.Time) {
	const maxIdleStep = 25 * time.Millisecond
	now := d.fake.Now()
	step := limit.Sub(now)
	if step > maxIdleStep {
		step = maxIdleStep
	}
	if dl, ok := d.fake.NextDeadline(); ok {
		if due := dl.Sub(now); due > 0 && due < step {
			step = due
		}
	}
	d.fake.Advance(step)
	d.settle()
}

// run advances virtual time through dur, settling after each jump so every
// event instant drains before the next. Idle stretches cost a handful of
// bounded jumps instead of a 1 ms sweep.
func (d *dhtNet) run(dur time.Duration) {
	end := d.fake.Now().Add(dur)
	for d.fake.Now().Before(end) {
		d.advanceStep(end)
	}
}

// buildCluster starts n nodes dht-0 … dht-<n-1>, all bootstrapped off dht-0,
// and lets the join lookups complete.
func (d *dhtNet) buildCluster(n int, cfg overlay.Config) {
	d.t.Helper()
	boot := []netem.NodeID{"dht-0"}
	for i := range n {
		c := cfg
		if i > 0 {
			c.Bootstrap = boot
		}
		d.addNode(netem.NodeID(fmt.Sprintf("dht-%d", i)), c)
	}
	d.settle()
	d.run(100 * time.Millisecond)
}

func baseConfig() overlay.Config {
	return overlay.Config{
		K:          2,
		Alpha:      2,
		TTL:        8 * time.Second,
		Republish:  2 * time.Second,
		RPCTimeout: 100 * time.Millisecond,
	}
}

// lookupVia drives an async lookup to completion and returns its outcome.
// The completion callback fires on an event-loop goroutine, so the result is
// mutex-guarded.
func (d *dhtNet) lookupVia(n *overlay.Node, aor string, wait time.Duration) (string, bool) {
	d.t.Helper()
	var (
		mu   sync.Mutex
		got  string
		ok   bool
		done bool
	)
	n.LookupAsync(aor, func(v string, o bool) {
		mu.Lock()
		got, ok, done = v, o, true
		mu.Unlock()
	})
	deadline := d.fake.Now().Add(wait)
	for {
		mu.Lock()
		fin := done
		mu.Unlock()
		if fin || !d.fake.Now().Before(deadline) {
			break
		}
		d.advanceStep(deadline)
	}
	mu.Lock()
	defer mu.Unlock()
	if !done {
		d.t.Fatalf("lookup %q did not complete within %v", aor, wait)
	}
	return got, ok
}

func TestOverlayPublishLookup(t *testing.T) {
	d := newDHTNet(t)
	defer d.close()
	d.buildCluster(8, baseConfig())

	d.node("dht-3").Publish("alice@dht.example", "10.9.9.1:5060")
	d.run(50 * time.Millisecond)

	if v, ok := d.lookupVia(d.node("dht-7"), "alice@dht.example", time.Second); !ok || v != "10.9.9.1:5060" {
		t.Fatalf("lookup alice = %q, %v; want 10.9.9.1:5060, true", v, ok)
	}
	if _, ok := d.lookupVia(d.node("dht-7"), "nobody@dht.example", time.Second); ok {
		t.Fatal("lookup for unpublished AOR succeeded")
	}
	// The binding landed on exactly K=2 replicas (publisher excluded — its
	// copy lives in the published set, not the record store).
	replicas := 0
	for _, id := range d.order {
		replicas += int(d.nodes[id].Stats().StoredRecords)
	}
	if replicas != 2 {
		t.Fatalf("binding on %d replicas, want 2", replicas)
	}
}

// TestOverlayRepublishHealsFullReplicaLoss kills every node storing a
// binding; the owner's next re-publication round must place fresh replicas
// on the surviving closest nodes.
func TestOverlayRepublishHealsFullReplicaLoss(t *testing.T) {
	d := newDHTNet(t)
	defer d.close()
	d.buildCluster(16, baseConfig())

	d.node("dht-0").Publish("alice@dht.example", "10.9.9.1:5060")
	d.run(50 * time.Millisecond)

	var storers []netem.NodeID
	for _, id := range d.order {
		if d.nodes[id].Stats().StoredRecords > 0 {
			storers = append(storers, id)
		}
	}
	if len(storers) != 2 {
		t.Fatalf("found %d replicas, want 2", len(storers))
	}
	for _, id := range storers {
		d.crash(id)
	}
	// One full republish interval plus slack for the placement lookup.
	d.run(2*time.Second + 500*time.Millisecond)

	if v, ok := d.lookupVia(d.node("dht-15"), "alice@dht.example", time.Second); !ok || v != "10.9.9.1:5060" {
		t.Fatalf("lookup after replica loss = %q, %v; want hit", v, ok)
	}
}

// TestOverlayUnpublishExpires verifies bindings die by TTL once the owner
// stops re-publishing — replica repair must not keep them alive forever.
func TestOverlayUnpublishExpires(t *testing.T) {
	d := newDHTNet(t)
	defer d.close()
	cfg := baseConfig()
	cfg.TTL = 3 * time.Second
	cfg.Republish = time.Second
	d.buildCluster(8, cfg)

	d.node("dht-2").Publish("bob@dht.example", "10.9.9.2:5060")
	d.run(50 * time.Millisecond)
	if _, ok := d.lookupVia(d.node("dht-6"), "bob@dht.example", time.Second); !ok {
		t.Fatal("binding not visible after publish")
	}
	d.node("dht-2").Unpublish("bob@dht.example")
	d.run(5 * time.Second)
	if v, ok := d.lookupVia(d.node("dht-6"), "bob@dht.example", time.Second); ok {
		t.Fatalf("binding still resolvable %v after unpublish: %q", 5*time.Second, v)
	}
}

// TestOverlayGoroutinesIndependentOfN pins the event-loop property: overlay
// nodes own no goroutines — the steady count is the scheduler's shards plus
// the Internet's delivery workers, whatever the fleet size.
func TestOverlayGoroutinesIndependentOfN(t *testing.T) {
	measure := func(n int) int {
		d := newDHTNet(t)
		defer d.close()
		d.buildCluster(n, baseConfig())
		runtime.Gosched()
		return runtime.NumGoroutine()
	}
	small := measure(4)
	large := measure(32)
	if large > small+2 {
		t.Fatalf("goroutines grew with overlay size: %d nodes -> %d, %d nodes -> %d", 4, small, 32, large)
	}
}
