//go:build race

package overlay_test

// raceEnabled reports whether this test binary was built with -race. The
// overlay tests run in virtual time, so the detector cannot make them flake
// — but it multiplies their CPU cost several-fold, so the big seeded churn
// run scales itself down to the -short sizes to keep `make check` bounded
// on small hosts. The full-size run still executes in the plain test suite.
const raceEnabled = true
