package clock

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitCount polls until the counter reaches want or the (real-time) timeout
// expires. Scheduler workers process fake-clock firings asynchronously, so
// assertions after Advance must wait for the worker to catch up.
func waitCount(t *testing.T, c *atomic.Int64, want int64, msg string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Load() >= want {
			if got := c.Load(); got != want {
				t.Fatalf("%s: count %d, want %d", msg, got, want)
			}
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("%s: count %d, want %d (timeout)", msg, c.Load(), want)
}

// settle gives the worker a moment to process anything outstanding, then
// asserts the counter did NOT move past want.
func settle(t *testing.T, c *atomic.Int64, want int64, msg string) {
	t.Helper()
	time.Sleep(20 * time.Millisecond)
	if got := c.Load(); got != want {
		t.Fatalf("%s: count %d, want %d", msg, got, want)
	}
}

func TestSchedulerEveryFake(t *testing.T) {
	clk := NewFake(time.Unix(0, 0))
	s := NewScheduler(clk, 1)
	defer s.Close()

	var fired atomic.Int64
	task := s.Every("node-a", 10*time.Millisecond, func(time.Time) { fired.Add(1) })

	settle(t, &fired, 0, "before first interval")
	for i := 1; i <= 3; i++ {
		clk.Advance(10 * time.Millisecond)
		waitCount(t, &fired, int64(i), "after advance")
	}

	task.Stop()
	clk.Advance(50 * time.Millisecond)
	settle(t, &fired, 3, "after Stop")
}

func TestSchedulerAfterFiresOnce(t *testing.T) {
	clk := NewFake(time.Unix(0, 0))
	s := NewScheduler(clk, 1)
	defer s.Close()

	var fired atomic.Int64
	s.After("node-a", 5*time.Millisecond, func(time.Time) { fired.Add(1) })

	clk.Advance(5 * time.Millisecond)
	waitCount(t, &fired, 1, "one-shot fire")
	clk.Advance(50 * time.Millisecond)
	settle(t, &fired, 1, "one-shot must not re-fire")
}

func TestSchedulerStopBeforeDue(t *testing.T) {
	clk := NewFake(time.Unix(0, 0))
	s := NewScheduler(clk, 1)
	defer s.Close()

	var fired atomic.Int64
	task := s.After("node-a", 5*time.Millisecond, func(time.Time) { fired.Add(1) })
	task.Stop()
	clk.Advance(50 * time.Millisecond)
	settle(t, &fired, 0, "stopped task must not fire")
}

func TestSchedulerEqualDeadlineOrder(t *testing.T) {
	clk := NewFake(time.Unix(0, 0))
	s := NewScheduler(clk, 1)
	defer s.Close()

	var mu sync.Mutex
	var order []int
	var fired atomic.Int64
	for i := 0; i < 3; i++ {
		i := i
		s.After("same-key", 5*time.Millisecond, func(time.Time) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			fired.Add(1)
		})
	}
	clk.Advance(5 * time.Millisecond)
	waitCount(t, &fired, 3, "all three fire")
	mu.Lock()
	defer mu.Unlock()
	for i, got := range order {
		if got != i {
			t.Fatalf("equal-deadline tasks fired out of registration order: %v", order)
		}
	}
}

func TestSchedulerShardClamp(t *testing.T) {
	clk := NewFake(time.Unix(0, 0))
	maxp := runtime.GOMAXPROCS(0)
	for _, req := range []int{0, -1, 1, 4, 1024} {
		s := NewScheduler(clk, req)
		got := s.Shards()
		if got < 1 || got > maxp {
			t.Fatalf("NewScheduler(%d): shards %d outside [1, GOMAXPROCS=%d]", req, got, maxp)
		}
		if req >= 1 && req <= maxp && got != req {
			t.Fatalf("NewScheduler(%d): shards %d, want %d", req, got, req)
		}
		if s.Goroutines() != got {
			t.Fatalf("Goroutines() %d != Shards() %d", s.Goroutines(), got)
		}
		s.Close()
	}
}

func TestSchedulerSameKeySameShard(t *testing.T) {
	clk := NewFake(time.Unix(0, 0))
	s := NewScheduler(clk, 0)
	defer s.Close()
	a := s.shardFor("node-17")
	for i := 0; i < 8; i++ {
		if s.shardFor("node-17") != a {
			t.Fatal("shardFor is not stable for a fixed key")
		}
	}
}

func TestSchedulerSystemClock(t *testing.T) {
	s := NewScheduler(New(), 2)
	var fired atomic.Int64
	s.Every("n", time.Millisecond, func(time.Time) { fired.Add(1) })
	deadline := time.Now().Add(2 * time.Second)
	for fired.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fired.Load() < 3 {
		t.Fatalf("recurring task fired %d times in 2s on the system clock", fired.Load())
	}
	s.Close()
	after := fired.Load()
	time.Sleep(10 * time.Millisecond)
	if fired.Load() != after {
		t.Fatal("task fired after Close")
	}
}

func TestSchedulerPending(t *testing.T) {
	clk := NewFake(time.Unix(0, 0))
	s := NewScheduler(clk, 1)
	defer s.Close()
	if got := s.Pending(); got != 0 {
		t.Fatalf("fresh scheduler Pending = %d", got)
	}
	s.After("a", time.Hour, func(time.Time) {})
	s.Every("b", time.Hour, func(time.Time) {})
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
}
