package clock

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Scheduler is a sharded virtual-time event loop for recurring protocol
// timers. Instead of one goroutine per node per timer (the pattern that
// drowns past a few hundred nodes: ~6 steady goroutines each for OLSR
// HELLO/TC, SLP refresh, SIP retransmissions, ...), every timer is a Task on
// a per-shard min-heap and a bounded pool of min(GOMAXPROCS, shards) worker
// loops pops whole batches of due tasks per tick under a single lock
// acquisition.
//
// Tasks registered under the same key always land on the same shard, so one
// node's timers never run concurrently with each other — protocols keep the
// serialization their per-node loops gave them without paying a goroutine
// for it.
//
// The scheduler runs against any Clock. On a Fake clock a worker arms one
// fake timer per shard for the earliest deadline, exactly like the netem
// delivery scheduler, so deterministic tests drive it with Advance.
type Scheduler struct {
	clk    Clock
	shards []*schedShard
}

// Task is one scheduled timer. Recurring tasks (Every) re-arm themselves
// after each run; one-shot tasks (After) fire once. Stop cancels future
// firings; a run already in progress may still complete concurrently, so
// callbacks must tolerate one post-Stop invocation (every protocol guards
// with its own started/closed flag, as they already did for goroutine
// timers).
type Task struct {
	shard    *schedShard
	fn       func(now time.Time)
	interval time.Duration // 0 => one-shot
	due      time.Time
	seq      uint64
	stopped  atomic.Bool
}

// Stop cancels the task. Safe to call multiple times and from the task's own
// callback.
func (t *Task) Stop() {
	if t == nil {
		return
	}
	t.stopped.Store(true)
}

// Stopped reports whether Stop was called.
func (t *Task) Stopped() bool { return t.stopped.Load() }

// taskHeap is a min-heap of tasks ordered by (due, seq) — the same FIFO
// tie-break as the netem delivery heap, so equal deadlines fire in
// registration order.
type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*Task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

type schedShard struct {
	clk Clock

	mu   sync.Mutex
	heap taskHeap
	seq  uint64

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// NewScheduler creates a scheduler with the given number of shards, each
// driven by its own worker loop. shards <= 0 picks GOMAXPROCS; the effective
// count is clamped to [1, GOMAXPROCS] so the worker pool never exceeds the
// parallelism the runtime will actually grant (the ISSUE's
// min(GOMAXPROCS, shards) bound).
func NewScheduler(clk Clock, shards int) *Scheduler {
	maxp := runtime.GOMAXPROCS(0)
	if shards <= 0 || shards > maxp {
		shards = maxp
	}
	if shards < 1 {
		shards = 1
	}
	s := &Scheduler{clk: clk, shards: make([]*schedShard, shards)}
	for i := range s.shards {
		sh := &schedShard{
			clk:  clk,
			wake: make(chan struct{}, 1),
			stop: make(chan struct{}),
			done: make(chan struct{}),
		}
		s.shards[i] = sh
		go sh.run()
	}
	return s
}

// Shards returns the number of shards (== worker goroutines).
func (s *Scheduler) Shards() int { return len(s.shards) }

// Goroutines returns the steady goroutine cost of the scheduler — one worker
// per shard, independent of how many tasks are registered. The goroutine
// regression test pins scenario bring-up against this.
func (s *Scheduler) Goroutines() int { return len(s.shards) }

// Pending returns the total number of tasks currently queued across all
// shards (stopped-but-unreaped tasks included). Test helper.
func (s *Scheduler) Pending() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += len(sh.heap)
		sh.mu.Unlock()
	}
	return total
}

// shardFor hashes key with FNV-1a, the same cheap stable hash the SLP shards
// and the federation registrar tier use.
func (s *Scheduler) shardFor(key string) *schedShard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return s.shards[h%uint64(len(s.shards))]
}

// Every registers a recurring task: fn first runs after interval and then
// re-arms at Now()+interval after each run — the same cadence as the legacy
// `for { t := clk.NewTimer(interval); <-t.C(); body }` loops it replaces.
func (s *Scheduler) Every(key string, interval time.Duration, fn func(now time.Time)) *Task {
	sh := s.shardFor(key)
	t := &Task{shard: sh, fn: fn, interval: interval}
	sh.add(t, interval)
	return t
}

// After registers a one-shot task firing once after d. d <= 0 fires on the
// worker's next tick.
func (s *Scheduler) After(key string, d time.Duration, fn func(now time.Time)) *Task {
	sh := s.shardFor(key)
	t := &Task{shard: sh, fn: fn}
	sh.add(t, d)
	return t
}

// Close stops all worker loops. Pending tasks are dropped.
func (s *Scheduler) Close() {
	for _, sh := range s.shards {
		close(sh.stop)
	}
	for _, sh := range s.shards {
		<-sh.done
	}
}

func (sh *schedShard) add(t *Task, d time.Duration) {
	if d < 0 {
		d = 0
	}
	sh.mu.Lock()
	t.due = sh.clk.Now().Add(d)
	t.seq = sh.seq
	sh.seq++
	heap.Push(&sh.heap, t)
	first := sh.heap[0] == t
	sh.mu.Unlock()
	if first {
		sh.wakeUp()
	}
}

// rearm pushes a batch of recurring tasks back under one lock acquisition.
func (sh *schedShard) rearm(ts []*Task) {
	if len(ts) == 0 {
		return
	}
	sh.mu.Lock()
	newHead := false
	for _, t := range ts {
		t.seq = sh.seq
		sh.seq++
		heap.Push(&sh.heap, t)
		if sh.heap[0] == t {
			newHead = true
		}
	}
	sh.mu.Unlock()
	if newHead {
		sh.wakeUp()
	}
}

func (sh *schedShard) wakeUp() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// run is the shard worker: batch-pop every due task under one lock
// acquisition, run the callbacks outside the lock, re-arm the recurring
// survivors in one more acquisition, then sleep until the next deadline.
// Structure cloned from the proven netem delivery scheduler.
func (sh *schedShard) run() {
	defer close(sh.done)
	var batch, rearm []*Task
	for {
		sh.mu.Lock()
		now := sh.clk.Now()
		batch = batch[:0]
		for len(sh.heap) > 0 && !sh.heap[0].due.After(now) {
			batch = append(batch, heap.Pop(&sh.heap).(*Task))
		}
		wait, pending := time.Duration(0), false
		if len(sh.heap) > 0 {
			wait, pending = sh.heap[0].due.Sub(now), true
		}
		sh.mu.Unlock()

		rearm = rearm[:0]
		for _, t := range batch {
			if t.stopped.Load() {
				continue
			}
			t.fn(now)
			if t.interval > 0 && !t.stopped.Load() {
				t.due = sh.clk.Now().Add(t.interval)
				rearm = append(rearm, t)
			}
		}
		sh.rearm(rearm)
		if len(batch) > 0 {
			continue // deadlines may have passed while running callbacks
		}
		if !pending {
			select {
			case <-sh.stop:
				return
			case <-sh.wake:
			}
			continue
		}
		t := sh.clk.NewTimer(wait)
		select {
		case <-sh.stop:
			t.Stop()
			return
		case <-sh.wake:
			t.Stop()
		case <-t.C():
		}
	}
}
