// Package clock provides an injectable time source so that protocol timers
// (SIP transactions, AODV route lifetimes, OLSR refresh intervals, SLP TTLs)
// can run against real time in daemons and against a deterministic fake in
// tests and experiments.
package clock

import (
	"sync"
	"time"
)

// Timer is the subset of *time.Timer behaviour the protocols need. Stop
// reports whether the timer was still pending, mirroring time.Timer.Stop.
type Timer interface {
	// C returns the channel on which the firing time is delivered.
	C() <-chan time.Time
	// Stop cancels the timer. It reports false if the timer already fired
	// or was stopped.
	Stop() bool
}

// Clock abstracts the passage of time.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTimer returns a Timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// After is a convenience wrapper equivalent to NewTimer(d).C().
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
}

// System is a Clock backed by the real time package.
type System struct{}

var _ Clock = System{}

// New returns the process-wide real-time clock.
func New() Clock { return System{} }

// Now implements Clock.
func (System) Now() time.Time { return time.Now() }

// NewTimer implements Clock.
func (System) NewTimer(d time.Duration) Timer { return sysTimer{time.NewTimer(d)} }

// After implements Clock.
func (System) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (System) Sleep(d time.Duration) { time.Sleep(d) }

type sysTimer struct{ t *time.Timer }

func (s sysTimer) C() <-chan time.Time { return s.t.C }
func (s sysTimer) Stop() bool          { return s.t.Stop() }

// Fake is a manually advanced Clock for deterministic tests. The zero value
// is not usable; construct with NewFake.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

var _ Clock = (*Fake)(nil)

// NewFake returns a Fake clock starting at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// NewTimer implements Clock.
func (f *Fake) NewTimer(d time.Duration) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTimer{
		clk:  f,
		when: f.now.Add(d),
		ch:   make(chan time.Time, 1),
	}
	if d <= 0 {
		t.fired = true
		t.ch <- f.now
		return t
	}
	f.timers = append(f.timers, t)
	return t
}

// After implements Clock.
func (f *Fake) After(d time.Duration) <-chan time.Time { return f.NewTimer(d).C() }

// Sleep implements Clock. On a Fake clock, Sleep blocks until another
// goroutine advances the clock past the deadline.
func (f *Fake) Sleep(d time.Duration) { <-f.After(d) }

// Advance moves the fake time forward by d, firing any timers whose deadline
// is reached, in deadline order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		next := f.earliestLocked(target)
		if next == nil {
			break
		}
		f.now = next.when
		next.fired = true
		next.ch <- f.now
		f.removeLocked(next)
	}
	f.now = target
	f.mu.Unlock()
}

// Set jumps the fake clock to t (which must not be earlier than Now),
// firing due timers.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	now := f.now
	f.mu.Unlock()
	if d := t.Sub(now); d > 0 {
		f.Advance(d)
	}
}

// PendingTimers reports how many fake timers have not yet fired, which is
// useful in tests asserting that cleanup cancelled everything.
func (f *Fake) PendingTimers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.timers)
}

// NextDeadline returns the earliest pending timer deadline, or ok=false when
// no timer is armed. Deterministic test drivers use it to advance straight to
// the next event instant instead of sweeping fixed steps through idle time.
func (f *Fake) NextDeadline() (time.Time, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var best time.Time
	ok := false
	for _, t := range f.timers {
		if t.fired {
			continue
		}
		if !ok || t.when.Before(best) {
			best, ok = t.when, true
		}
	}
	return best, ok
}

// earliestLocked returns the pending timer with the earliest deadline not
// after limit, or nil.
func (f *Fake) earliestLocked(limit time.Time) *fakeTimer {
	var best *fakeTimer
	for _, t := range f.timers {
		if t.fired || t.when.After(limit) {
			continue
		}
		if best == nil || t.when.Before(best.when) {
			best = t
		}
	}
	return best
}

func (f *Fake) removeLocked(target *fakeTimer) {
	for i, t := range f.timers {
		if t == target {
			f.timers = append(f.timers[:i], f.timers[i+1:]...)
			return
		}
	}
}

type fakeTimer struct {
	clk   *Fake
	when  time.Time
	ch    chan time.Time
	fired bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	if t.fired {
		return false
	}
	t.fired = true
	t.clk.removeLocked(t)
	return true
}
