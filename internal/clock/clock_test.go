package clock

import (
	"testing"
	"time"
)

var epoch = time.Date(2007, 11, 26, 0, 0, 0, 0, time.UTC) // MNCNA'07 day

func TestFakeNowAdvance(t *testing.T) {
	f := NewFake(epoch)
	if got := f.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	f.Advance(90 * time.Second)
	if got, want := f.Now(), epoch.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", got, want)
	}
}

func TestFakeTimerFiresAtDeadline(t *testing.T) {
	f := NewFake(epoch)
	tm := f.NewTimer(10 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired before Advance")
	default:
	}
	f.Advance(9 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired too early")
	default:
	}
	f.Advance(1 * time.Second)
	select {
	case at := <-tm.C():
		if want := epoch.Add(10 * time.Second); !at.Equal(want) {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire at deadline")
	}
}

func TestFakeTimerOrdering(t *testing.T) {
	f := NewFake(epoch)
	t1 := f.NewTimer(3 * time.Second)
	t2 := f.NewTimer(1 * time.Second)
	t3 := f.NewTimer(2 * time.Second)
	f.Advance(5 * time.Second)
	at1, at2, at3 := <-t1.C(), <-t2.C(), <-t3.C()
	if !at2.Before(at3) || !at3.Before(at1) {
		t.Fatalf("firing order wrong: t1=%v t2=%v t3=%v", at1, at2, at3)
	}
}

func TestFakeStopPreventsFire(t *testing.T) {
	f := NewFake(epoch)
	tm := f.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop() = false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	f.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if n := f.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers() = %d, want 0", n)
	}
}

func TestFakeZeroDurationFiresImmediately(t *testing.T) {
	f := NewFake(epoch)
	tm := f.NewTimer(0)
	select {
	case <-tm.C():
	default:
		t.Fatal("zero-duration timer did not fire immediately")
	}
}

func TestFakeSet(t *testing.T) {
	f := NewFake(epoch)
	ch := f.After(time.Minute)
	f.Set(epoch.Add(2 * time.Minute))
	select {
	case <-ch:
	default:
		t.Fatal("After channel not ready following Set past deadline")
	}
	// Set to a time in the past must not rewind.
	f.Set(epoch)
	if got := f.Now(); got.Before(epoch.Add(2 * time.Minute)) {
		t.Fatalf("Set rewound the clock to %v", got)
	}
}

func TestSystemClockMonotone(t *testing.T) {
	c := New()
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if !b.After(a) {
		t.Fatalf("system clock did not advance: %v then %v", a, b)
	}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("system timer did not fire")
	}
}
