// Package voip implements a software SIP phone — the stand-in for the
// out-of-the-box VoIP applications the paper runs on top of SIPHoc (Kphone,
// Twinkle, Minisip). It is deliberately MANET-unaware: it speaks plain
// RFC 3261 to whatever outbound proxy it is configured with, exactly like
// the configuration in the paper's Figure 2 where the outbound proxy is set
// to localhost so that all SIP traffic flows through the SIPHoc proxy.
package voip

import (
	"context"
	"fmt"
	"sync"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/obs"
	"siphoc/internal/rtp"
	"siphoc/internal/sip"
)

// Config mirrors a softphone's account settings (paper Figure 2).
type Config struct {
	// User is the account name, e.g. "alice".
	User string
	// Domain is the SIP provider domain, e.g. "voicehoc.ch".
	Domain string
	// Password holds the account's digest credentials, used when the
	// registrar answers REGISTER with a 401 challenge.
	Password string
	// OutboundProxy is where all SIP traffic is sent. SIPHoc deployments
	// set this to the local node's proxy ("localhost" in the paper).
	OutboundProxy sip.Addr
	// Port is the UA's SIP port (default 5062).
	Port uint16
	// AutoAnswer answers incoming calls automatically after RingDelay
	// (default true — handy for experiments; interactive callers use
	// the Incoming channel instead).
	AutoAnswer bool
	// NoAutoAnswer disables AutoAnswer (kept separate so the zero value
	// of Config auto-answers).
	NoAutoAnswer bool
	// RingDelay is how long the phone "rings" before auto-answering
	// (default 0).
	RingDelay time.Duration
	// RegisterTTL is the registration lifetime requested (default 60s).
	RegisterTTL time.Duration
	// SIP tunes the transaction layer (default sip.SimConfig()).
	SIP sip.Config
	// Clock is the time source (default the system clock).
	Clock clock.Clock
	// Obs records the call-setup anchor span, the media-start span and
	// call counters; it is also propagated to the embedded SIP stack
	// unless SIP.Obs is already set. Nil disables.
	Obs *obs.Observer
	// MediaPacer schedules outgoing RTP frames for all of this phone's
	// calls on a shared scheduler goroutine. Scenario wires one pacer per
	// deployment; nil gives each media session a private pacer.
	MediaPacer *rtp.Pacer
}

func (c Config) withDefaults() Config {
	if c.Port == 0 {
		c.Port = 5062
	}
	if c.RegisterTTL == 0 {
		c.RegisterTTL = 60 * time.Second
	}
	if c.SIP.T1 == 0 {
		c.SIP = sip.SimConfig()
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	if c.SIP.Obs == nil {
		c.SIP.Obs = c.Obs
	}
	return c
}

// Phone is one softphone instance bound to a node.
type Phone struct {
	host *netem.Host
	cfg  Config
	clk  clock.Clock
	obs  *obs.Observer

	// Pre-resolved obs handles; nil when cfg.Obs is nil.
	obsPlaced      *obs.Counter
	obsEstablished *obs.Counter
	obsFailed      *obs.Counter
	obsSetupDelay  *obs.Histogram

	stack *sip.Stack

	mu       sync.Mutex
	cseq     uint32
	calls    map[string]*Call // by Call-ID
	incoming chan *Call
	started  bool
	closed   bool

	wg sync.WaitGroup
}

// New creates a phone on host with the given account configuration.
func New(host *netem.Host, cfg Config) *Phone {
	cfg = cfg.withDefaults()
	p := &Phone{
		host:     host,
		cfg:      cfg,
		clk:      cfg.Clock,
		obs:      cfg.Obs,
		calls:    make(map[string]*Call),
		incoming: make(chan *Call, 8),
	}
	if p.obs.Enabled() {
		p.obsPlaced = p.obs.Counter("voip.calls.placed")
		p.obsEstablished = p.obs.Counter("voip.calls.established")
		p.obsFailed = p.obs.Counter("voip.calls.failed")
		p.obsSetupDelay = p.obs.Histogram("voip.setup.delay", nil)
	}
	return p
}

// AOR returns the phone's address of record, e.g. "alice@voicehoc.ch".
func (p *Phone) AOR() string { return p.cfg.User + "@" + p.cfg.Domain }

// Addr returns the UA's SIP transport address.
func (p *Phone) Addr() sip.Addr {
	return sip.Addr{Node: p.host.ID(), Port: p.cfg.Port}
}

// Incoming delivers calls that are ringing; with AutoAnswer they are also
// delivered, already being answered.
func (p *Phone) Incoming() <-chan *Call { return p.incoming }

// Start binds the UA port.
func (p *Phone) Start() error {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return fmt.Errorf("voip: phone already started")
	}
	p.started = true
	p.mu.Unlock()
	conn, err := p.host.Listen(p.cfg.Port)
	if err != nil {
		return fmt.Errorf("voip: bind UA port: %w", err)
	}
	p.stack = sip.NewStack(conn, p.cfg.SIP)
	p.stack.OnRequest(p.onRequest)
	return nil
}

// Stop hangs up all calls and shuts the UA down.
func (p *Phone) Stop() {
	p.mu.Lock()
	if !p.started || p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	calls := make([]*Call, 0, len(p.calls))
	for _, c := range p.calls {
		calls = append(calls, c)
	}
	p.mu.Unlock()
	for _, c := range calls {
		c.endLocal(0)
	}
	p.stack.Close()
	p.wg.Wait()
}

func (p *Phone) nextCSeq() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cseq++
	return p.cseq
}

func (p *Phone) identity() *sip.NameAddr {
	return &sip.NameAddr{URI: &sip.URI{Scheme: "sip", User: p.cfg.User, Host: p.cfg.Domain}}
}

func (p *Phone) contact() *sip.NameAddr {
	return &sip.NameAddr{URI: &sip.URI{
		Scheme: "sip", User: p.cfg.User, Host: string(p.host.ID()), Port: p.cfg.Port,
	}}
}

// Register registers the phone with its configured account via the outbound
// proxy, blocking until the final response.
func (p *Phone) Register() error {
	return p.register(int(p.cfg.RegisterTTL / time.Second))
}

// Unregister removes the registration (Expires: 0).
func (p *Phone) Unregister() error { return p.register(0) }

func (p *Phone) register(expires int) error {
	build := func() *sip.Message {
		req := sip.NewRequest(sip.MethodRegister, &sip.URI{Scheme: "sip", Host: p.cfg.Domain})
		req.From = p.identity()
		req.From.SetTag(p.stack.NewTag())
		req.To = p.identity()
		req.CallID = p.stack.NewCallID()
		req.CSeq = sip.CSeq{Seq: p.nextCSeq(), Method: sip.MethodRegister}
		req.Contact = []*sip.NameAddr{p.contact()}
		req.Expires = expires
		req.UserAgent = "siphoc-softphone/1.0"
		return req
	}
	send := func(req *sip.Message) (*sip.Message, error) {
		tx, err := p.stack.SendRequest(req, p.cfg.OutboundProxy)
		if err != nil {
			return nil, err
		}
		resp, err := tx.Await()
		if err != nil {
			return nil, fmt.Errorf("voip: register: %w", err)
		}
		return resp, nil
	}
	resp, err := send(build())
	if err != nil {
		return err
	}
	if resp.StatusCode == sip.StatusUnauthorized && p.cfg.Password != "" {
		challenge, ok := resp.Challenge()
		if !ok {
			return fmt.Errorf("voip: 401 without a digest challenge")
		}
		retry := build()
		retry.SetAuthorization(challenge.Answer(
			p.cfg.User, p.cfg.Password, sip.MethodRegister,
			retry.RequestURI.String(), "cn-"+p.stack.NewTag(), 1,
		))
		if resp, err = send(retry); err != nil {
			return err
		}
	}
	if resp.StatusCode != sip.StatusOK {
		return fmt.Errorf("voip: register rejected: %d %s", resp.StatusCode, resp.Reason)
	}
	return nil
}

// Dial places a call to target (an AOR like "bob@voicehoc.ch" or a full SIP
// URI) and returns immediately; use Call.WaitEstablished. It is DialContext
// with a background context.
func (p *Phone) Dial(target string) (*Call, error) {
	return p.DialContext(context.Background(), target)
}

// DialContext places a call like Dial; additionally, cancelling ctx while
// the call is still being set up abandons it with CANCEL (the call then
// concludes with 487 Request Terminated). Cancelling ctx after the call is
// established has no effect.
func (p *Phone) DialContext(ctx context.Context, target string) (*Call, error) {
	uri, err := parseTarget(target)
	if err != nil {
		return nil, err
	}
	c, err := p.newOutgoingCall(uri)
	if err != nil {
		return nil, err
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		c.runOutgoing()
	}()
	if ctx.Done() != nil {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			c.watchContext(ctx)
		}()
	}
	return c, nil
}

func parseTarget(target string) (*sip.URI, error) {
	if len(target) >= 4 && (target[:4] == "sip:" || target[:5] == "sips:") {
		return sip.ParseURI(target)
	}
	return sip.ParseURI("sip:" + target)
}

func (p *Phone) onRequest(tx *sip.ServerTx) {
	req := tx.Request()
	switch req.Method {
	case sip.MethodInvite:
		p.onInvite(tx)
	case sip.MethodAck:
		p.onAck(req)
	case sip.MethodBye:
		p.onBye(tx)
	case sip.MethodCancel:
		p.onCancel(tx)
	case sip.MethodOptions:
		_ = tx.RespondCode(sip.StatusOK, "")
	default:
		_ = tx.RespondCode(sip.StatusBadRequest, "Unsupported method")
	}
}

func (p *Phone) findCall(callID string) *Call {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls[callID]
}

func (p *Phone) addCall(c *Call) {
	p.mu.Lock()
	p.calls[c.callID] = c
	p.mu.Unlock()
}

func (p *Phone) removeCall(callID string) {
	p.mu.Lock()
	delete(p.calls, callID)
	p.mu.Unlock()
}

func (p *Phone) onInvite(tx *sip.ServerTx) {
	req := tx.Request()
	if existing := p.findCall(req.CallID); existing != nil {
		// Retransmitted INVITE of a call we already track.
		return
	}
	c, err := p.newIncomingCall(tx)
	if err != nil {
		_ = tx.RespondCode(sip.StatusInternalError, "")
		return
	}
	p.addCall(c)
	select {
	case p.incoming <- c:
	default:
	}
	_ = tx.RespondCode(sip.StatusRinging, "")
	c.setState(StateRinging)
	if p.cfg.AutoAnswer || !p.cfg.NoAutoAnswer {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			if p.cfg.RingDelay > 0 {
				timer := p.clk.NewTimer(p.cfg.RingDelay)
				<-timer.C()
			}
			_ = c.Answer()
		}()
	}
}

func (p *Phone) onAck(req *sip.Message) {
	if c := p.findCall(req.CallID); c != nil {
		c.confirmEstablished()
	}
}

func (p *Phone) onBye(tx *sip.ServerTx) {
	c := p.findCall(tx.Request().CallID)
	if c == nil {
		_ = tx.RespondCode(sip.StatusCallDoesNotExist, "")
		return
	}
	_ = tx.RespondCode(sip.StatusOK, "")
	c.endRemote()
}

func (p *Phone) onCancel(tx *sip.ServerTx) {
	c := p.findCall(tx.Request().CallID)
	if c == nil {
		_ = tx.RespondCode(sip.StatusCallDoesNotExist, "")
		return
	}
	_ = tx.RespondCode(sip.StatusOK, "")
	c.cancelRemote()
}
