package voip

import (
	"testing"
	"time"

	"siphoc/internal/sip"
)

// TestCancelOutgoingCall exercises hop-by-hop CANCEL through both proxies:
// the caller abandons a ringing call, the callee stops ringing with 487.
func TestCancelOutgoingCall(t *testing.T) {
	f := newFixture(t, false) // manual answer: the call keeps ringing
	alice, bob := f.phones["alice"], f.phones["bob"]
	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		t.Fatal(err)
	}
	var inc *Call
	select {
	case inc = <-bob.Incoming():
	case <-time.After(10 * time.Second):
		t.Fatal("no incoming call")
	}
	// Wait for ringback before cancelling.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && call.State() != StateRinging {
		time.Sleep(5 * time.Millisecond)
	}
	if err := call.Cancel(); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	// The caller leg must conclude with 487.
	if err := call.WaitEnded(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if call.State() != StateFailed || call.FailCode() != sip.StatusRequestTerminated {
		t.Fatalf("caller state=%v code=%d, want failed/487", call.State(), call.FailCode())
	}
	// The callee leg must end too: answering now errors.
	if err := inc.WaitEnded(15 * time.Second); err != nil {
		t.Fatalf("callee leg never ended: %v", err)
	}
	if err := inc.Answer(); err == nil {
		t.Fatal("answered a cancelled call")
	}
}

func TestCancelStateGuards(t *testing.T) {
	f := newFixture(t, true) // auto-answer: call establishes quickly
	alice := f.phones["alice"]
	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Cancelling an established call is a protocol error.
	if err := call.Cancel(); err == nil {
		t.Fatal("cancelled an established call")
	}
	_ = call.Hangup()
}

func TestCancelRacingAnswerIsHarmless(t *testing.T) {
	f := newFixture(t, false)
	alice, bob := f.phones["alice"], f.phones["bob"]
	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		t.Fatal(err)
	}
	inc := <-bob.Incoming()
	// Answer and cancel as close together as the test can manage; either
	// the call establishes or it ends with 487 — never hangs or panics.
	if err := inc.Answer(); err != nil {
		t.Fatal(err)
	}
	_ = call.Cancel() // may race the 200; both outcomes are legal
	estErr := call.WaitEstablished(10 * time.Second)
	if estErr != nil {
		if call.FailCode() != sip.StatusRequestTerminated {
			t.Fatalf("unexpected fail code %d", call.FailCode())
		}
		return
	}
	_ = call.Hangup()
}
